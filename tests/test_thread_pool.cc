/**
 * @file
 * Tests for the worker pool: full coverage of the index range,
 * serial degradation at concurrency 1, caller-help nesting,
 * exception propagation, and future-backed submission.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace scar
{
namespace
{

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    for (int concurrency : {1, 2, 4, 8}) {
        ThreadPool pool(concurrency);
        EXPECT_EQ(pool.concurrency(), concurrency);
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> counts(n);
        pool.parallelFor(n, [&](std::size_t i) { ++counts[i]; });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(counts[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ConcurrencyOneRunsInlineOnCaller)
{
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::set<std::thread::id> seen;
    pool.parallelFor(64, [&](std::size_t) {
        seen.insert(std::this_thread::get_id());
    });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(*seen.begin(), caller);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(8, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 57)
                                          throw std::runtime_error("57");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, SubmitReturnsFutureResult)
{
    for (int concurrency : {1, 4}) {
        ThreadPool pool(concurrency);
        auto future = pool.submit([] { return 6 * 7; });
        EXPECT_EQ(future.get(), 42);
    }
}

TEST(ThreadPool, SubmitPropagatesException)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManySubmissionsAllComplete)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([i] { return i; }));
    int sum = 0;
    for (auto& f : futures)
        sum += f.get();
    EXPECT_EQ(sum, 199 * 200 / 2);
}

TEST(MixSeed, StreamsAreDistinctAndDeterministic)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t s = 0; s < 1000; ++s)
        seen.insert(mixSeed(42, s));
    EXPECT_EQ(seen.size(), 1000u) << "streams must not collide";
    EXPECT_EQ(mixSeed(42, 7), mixSeed(42, 7));
    EXPECT_NE(mixSeed(42, 7), mixSeed(43, 7));
}

} // namespace
} // namespace scar
