/**
 * @file
 * Tests for autoregressive (LLM) serving: the prefill/decode workload
 * builders and their KV-cache footprint, the admission decode queue
 * (boarding, buckets, round planning), one-step schedule tiling,
 * continuous-batching joins and per-sequence retirement at the fleet
 * level, the byte-identical disabled path, determinism across worker
 * pools, and the speculative partial-dispatch admission flag.
 */

#include <gtest/gtest.h>

#include "arch/mcm_templates.h"
#include "common/error.h"
#include "eval/reporter.h"
#include "runtime/arrival.h"
#include "runtime/fleet.h"
#include "runtime/serving_sim.h"
#include "workload/model_zoo.h"
#include "workload/transformer_builder.h"

namespace scar
{
namespace runtime
{
namespace
{

/** A deliberately small decoder so schedule solves stay cheap. */
TransformerConfig
tinyDecoder()
{
    TransformerConfig cfg;
    cfg.name = "chat";
    cfg.numBlocks = 2;
    cfg.dModel = 128;
    cfg.dFf = 256;
    cfg.vocab = 0;
    return cfg;
}

/** One-model LLM catalog around tinyDecoder(). */
std::vector<ServedModel>
llmCatalog(int batchCap)
{
    std::vector<ServedModel> catalog(1);
    TransformerConfig cfg = tinyDecoder();
    catalog[0].model = buildTransformer(cfg);
    catalog[0].model.batch = batchCap;
    catalog[0].rateRps = 100.0;
    catalog[0].llm.autoregressive = true;
    catalog[0].llm.decoder = cfg;
    catalog[0].llm.promptBucket = 64;
    catalog[0].llm.contextBucket = 256;
    catalog[0].llm.maxDecodeSteps = 32;
    return catalog;
}

/** A prefill-completed request ready for the decode queue. */
Request
decodeWaiter(std::int64_t id, int prompt, int output)
{
    Request req;
    req.id = id;
    req.modelIdx = 0;
    req.arrivalSec = 0.0;
    req.dispatchSec = 0.0;
    req.promptTokens = prompt;
    req.outputTokens = output;
    req.generatedTokens = 1;
    req.firstTokenSec = 0.001;
    return req;
}

TEST(TransformerBuilder, LengthBucketRoundsUp)
{
    EXPECT_EQ(llmLengthBucket(1, 64), 64);
    EXPECT_EQ(llmLengthBucket(64, 64), 64);
    EXPECT_EQ(llmLengthBucket(65, 64), 128);
    EXPECT_EQ(llmLengthBucket(256, 256), 256);
    EXPECT_EQ(llmLengthBucket(257, 256), 512);
}

TEST(TransformerBuilder, PrefillVariantEmbedsLengthInName)
{
    const TransformerConfig cfg = tinyDecoder();
    const Model prefill = buildPrefillModel(cfg, 128);
    EXPECT_EQ(prefill.name, "chat.prefill128");
    // Same architecture as the encoder build at seqLen = 128.
    TransformerConfig enc = cfg;
    enc.seqLen = 128;
    EXPECT_EQ(prefill.numLayers(), buildTransformer(enc).numLayers());
}

TEST(TransformerBuilder, DecodeStepKvFootprintGrowsWithContext)
{
    const TransformerConfig cfg = tinyDecoder();
    const Model s64 = buildDecodeStepModel(cfg, 64);
    const Model s256 = buildDecodeStepModel(cfg, 256);
    const Model s1024 = buildDecodeStepModel(cfg, 1024);
    EXPECT_EQ(s256.name, "chat.decode256");
    // The fused-MHA weight side carries the KV cache: the priced
    // footprint must grow strictly with the attended context.
    EXPECT_LT(s64.totalWeightBytes(), s256.totalWeightBytes());
    EXPECT_LT(s256.totalWeightBytes(), s1024.totalWeightBytes());
    // Exactly 2 * ctx * d extra weight elements per block per 1
    // context-token delta (coarse granularity, fp16 handled inside
    // totalWeightBytes uniformly, so compare element deltas via two
    // gaps of equal context ratio).
    const double gapA =
        s256.totalWeightBytes() - s64.totalWeightBytes();
    const double gapB =
        s1024.totalWeightBytes() - s256.totalWeightBytes();
    EXPECT_NEAR(gapB / gapA, 4.0, 1e-9)
        << "KV bytes must scale linearly in context length";
}

TEST(ScheduleCache, RepeatScheduleTilesWindows)
{
    Scenario mix;
    mix.name = "mix";
    mix.models = {buildDecodeStepModel(tinyDecoder(), 256)};
    const auto step = makeCachedSchedule(mix, [](const Scenario& m) {
        ScheduleResult result;
        for (int w = 0; w < 2; ++w) {
            ScheduledWindow sw;
            sw.cost.latencyCycles = 500.0;
            ModelPlacement mp;
            mp.modelIdx = 0;
            mp.segments.push_back(
                {LayerRange{0, m.models[0].numLayers() - 1}, 0});
            sw.placement.models.push_back(mp);
            result.windows.push_back(sw);
        }
        return result;
    });
    EXPECT_EQ(repeatSchedule(step, 1), step);
    const auto tiled = repeatSchedule(step, 3);
    ASSERT_EQ(tiled->windowSec.size(), 6u);
    for (const double sec : tiled->windowSec)
        EXPECT_DOUBLE_EQ(sec, step->windowSec[0]);
    EXPECT_DOUBLE_EQ(tiled->makespanSec, 3.0 * step->makespanSec);
    // Riders complete only at the very last tiled boundary.
    ASSERT_EQ(tiled->lastWindow.size(), 1u);
    EXPECT_EQ(tiled->lastWindow[0], 5);
}

TEST(Admission, DecodeQueueBoardsAndPlansRounds)
{
    const auto catalog = llmCatalog(/*batchCap=*/4);
    AdmissionController admission(catalog);

    admission.enqueueDecode(decodeWaiter(0, 10, 5));
    admission.enqueueDecode(decodeWaiter(1, 20, 9));
    admission.enqueueDecode(decodeWaiter(2, 30, 60));
    EXPECT_EQ(admission.decodeQueuedCount(), 3);
    EXPECT_EQ(admission.decodeQueuedCount(0), 3);

    // Context bucket: max context = 30 + 1 -> 256; partial batch of 3
    // quantizes up to 4.
    const Scenario mix = admission.peekDecodeMix(0);
    ASSERT_EQ(mix.numModels(), 1);
    EXPECT_EQ(mix.models[0].name, "chat.decode256");
    EXPECT_EQ(mix.models[0].batch, 4);

    Dispatch dispatch = admission.formDecodeDispatch(0);
    EXPECT_EQ(dispatch.mix.signature(), mix.signature());
    // Steps: min over riders' remaining tokens (5-1 = 4), under the
    // 32-step cap and far from the 256 bucket edge.
    EXPECT_EQ(dispatch.llmDecodeSteps, 4);
    ASSERT_EQ(dispatch.groups.size(), 1u);
    ASSERT_EQ(dispatch.groups[0].requests.size(), 3u);
    for (const Request& req : dispatch.groups[0].requests)
        EXPECT_EQ(req.ridingDecodeSteps, 4);
    EXPECT_EQ(admission.decodeQueuedCount(), 0);
}

TEST(Admission, DecodeEnqueueRequiresPrefill)
{
    const auto catalog = llmCatalog(4);
    AdmissionController admission(catalog);
    Request raw = decodeWaiter(0, 10, 5);
    raw.firstTokenSec = -1.0; // prefill not done
    EXPECT_THROW(admission.enqueueDecode(raw), FatalError);
}

/**
 * Continuous batching joins a late sequence into the running decode
 * stream: request B finishes its prefill on the second shard while
 * request A's multi-step decode round replays on the first; at A's
 * next step-aligned boundary the round is cut and the merged batch
 * re-forms. The join counter proves the cut happened, and everyone
 * still completes.
 */
TEST(LlmServing, ContinuousJoinsAtStepBoundary)
{
    auto catalog = llmCatalog(/*batchCap=*/4);
    std::vector<std::pair<double, int>> arrivals = {{0.0, 0},
                                                    {0.001, 0}};
    auto trace = traceFromArrivals(catalog, arrivals);
    trace[0].promptTokens = 16;
    trace[0].outputTokens = 200; // long generation: many rounds
    trace[1].promptTokens = 16;
    trace[1].outputTokens = 8;

    FleetOptions options;
    options.shards = 2;
    options.serving.admission.llmBatching =
        LlmBatchingMode::Continuous;
    options.serving.admission.maxQueueDelaySec = 0.0002;
    FleetSimulator fleet(
        catalog, templates::hetSides3x3(templates::kArvrPes),
        options);
    const ServingReport report = fleet.run(trace);

    EXPECT_TRUE(report.llmEnabled);
    EXPECT_EQ(report.completed, 2);
    EXPECT_EQ(report.llmRequests, 2);
    EXPECT_GE(report.llmJoins, 1)
        << "B must join A's in-flight decode stream";
    EXPECT_GT(report.llmDecodeRounds, 1);
    EXPECT_GT(report.llmMeanDecodeBatch, 1.0)
        << "post-join rounds carry both riders";
    EXPECT_GT(report.meanTtftSec, 0.0);
    EXPECT_GT(report.genTokensPerSec, 0.0);
    // Every generated token is accounted for.
    for (const Request& req : fleet.records())
        EXPECT_EQ(req.generatedTokens, req.outputTokens);
}

/**
 * Retirement policy: under Static batch-and-replay the short sequence
 * is locked into the long one's batch and retires with it; under
 * continuous batching it leaves at its own final decode round. The
 * short request's completion time is the whole point of the feature.
 */
TEST(LlmServing, ShortSequenceLeavesEarlyOnlyWhenContinuous)
{
    auto catalog = llmCatalog(/*batchCap=*/2);
    std::vector<std::pair<double, int>> arrivals = {{0.0, 0},
                                                    {0.0001, 0}};
    auto makeTrace = [&]() {
        auto trace = traceFromArrivals(catalog, arrivals);
        trace[0].promptTokens = 16;
        trace[0].outputTokens = 4; // short
        trace[1].promptTokens = 16;
        trace[1].outputTokens = 96; // long tail
        return trace;
    };

    auto runWith = [&](LlmBatchingMode mode) {
        FleetOptions options;
        options.shards = 1;
        options.serving.admission.llmBatching = mode;
        options.serving.admission.maxQueueDelaySec = 0.0002;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        fleet.run(makeTrace());
        double shortDone = -1.0;
        double longDone = -1.0;
        for (const Request& req : fleet.records()) {
            if (req.id == 0)
                shortDone = req.completionSec;
            if (req.id == 1)
                longDone = req.completionSec;
        }
        return std::make_pair(shortDone, longDone);
    };

    const auto [staticShort, staticLong] =
        runWith(LlmBatchingMode::Static);
    EXPECT_DOUBLE_EQ(staticShort, staticLong)
        << "lockstep padding retires with the batch";

    const auto [contShort, contLong] =
        runWith(LlmBatchingMode::Continuous);
    EXPECT_LT(contShort, contLong)
        << "continuous batching frees the short sequence at its own "
           "final round";
    EXPECT_LT(contShort, staticShort);
}

/**
 * The LLM machinery must be invisible to a catalog without
 * autoregressive entries: with every LLM knob armed the rendered
 * report stays byte-identical to the default configuration, and no
 * LLM rows appear.
 */
TEST(LlmServing, DisabledRendersByteIdenticalReports)
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::eyeCod(4);
    catalog[0].rateRps = 200.0;
    catalog[0].sloSec = 0.05;
    catalog[1].model = zoo::handSP(2);
    catalog[1].rateRps = 100.0;
    catalog[1].sloSec = 0.02;
    const auto trace = poissonTrace(catalog, 300, 21);

    auto renderWith = [&](AdmissionOptions admission) {
        FleetOptions options;
        options.shards = 2;
        options.routing = RoutingPolicy::BestFit;
        options.serving.modeledSolveSec = 0.01;
        options.serving.switchOverheadSec = 0.002;
        admission.maxQueueDelaySec = 0.005;
        options.serving.admission = admission;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        const ServingReport report = fleet.run(trace);
        EXPECT_FALSE(report.llmEnabled);
        EXPECT_EQ(report.llmDecodeRounds, 0);
        return describeServingReport(report);
    };

    AdmissionOptions armed;
    armed.llmBatching = LlmBatchingMode::Static; // non-default knob
    const std::string baseline = renderWith(AdmissionOptions{});
    EXPECT_EQ(baseline, renderWith(armed));
    EXPECT_EQ(baseline.find("LLM requests"), std::string::npos);
    EXPECT_EQ(baseline.find("Decode rounds"), std::string::npos);
}

/** Virtual-time LLM serving must not depend on wall-clock solve
 *  concurrency or the engine-thread setting. */
TEST(LlmServing, DeterministicAcrossThreadCounts)
{
    auto catalog = llmCatalog(/*batchCap=*/4);
    catalog[0].rateRps = 400.0;
    catalog[0].llm.meanOutputTokens = 24.0;
    catalog[0].llm.maxOutputTokens = 96;
    catalog[0].llm.maxPromptTokens = 128;
    const auto trace = llmPoissonTrace(catalog, 60, 7);

    auto renderWith = [&](int solveThreads, int engineThreads) {
        ThreadPool pool(solveThreads);
        FleetOptions options;
        options.shards = 2;
        options.engineThreads = engineThreads;
        options.serving.pool = &pool;
        options.serving.modeledSolveSec = 0.002;
        options.serving.admission.maxQueueDelaySec = 0.001;
        options.serving.admission.llmBatching =
            LlmBatchingMode::Continuous;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        ServingReport report = fleet.run(trace);
        // Pin the reporter's engineThreads render gate so the byte
        // comparison also covers the epoch statistics (identical at
        // every thread count by contract).
        report.engineThreads = 8;
        return describeServingReport(report);
    };

    const std::string serial = renderWith(1, 1);
    EXPECT_EQ(serial, renderWith(8, 1));
    EXPECT_EQ(serial, renderWith(8, 8));
    EXPECT_NE(serial.find("Continuous-batching joins"),
              std::string::npos);
}

/**
 * AdmissionOptions::speculativePartialDispatch: a lone request on an
 * idle fleet dispatches immediately instead of aging out the batching
 * timer. Off (the default) preserves the timer-paced baseline.
 */
TEST(Admission, SpeculativePartialDispatchSkipsBatchTimer)
{
    std::vector<ServedModel> catalog(1);
    catalog[0].model = zoo::eyeCod(4); // batch cap 4, one request
    catalog[0].sloSec = 10.0;
    const auto trace =
        traceFromArrivals(catalog, {{0.0, 0}});

    auto runWith = [&](bool speculative) {
        FleetOptions options;
        options.shards = 1;
        options.serving.admission.maxQueueDelaySec = 0.5;
        options.serving.admission.speculativePartialDispatch =
            speculative;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        fleet.run(trace);
        return fleet.records().front().dispatchSec;
    };

    EXPECT_GE(runWith(false), 0.5)
        << "default path waits out the batching timer";
    EXPECT_DOUBLE_EQ(runWith(true), 0.0)
        << "speculative path dispatches on the idle shard at once";
}

} // namespace
} // namespace runtime
} // namespace scar
