/**
 * @file
 * Tests for the description-file front end (paper Figure 4 inputs):
 * workload and MCM config parsing, error reporting, and round-trips
 * through the scheduler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "io/config.h"
#include "sched/scar.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

TEST(IoScenario, ParsesZooModelsWithBatches)
{
    std::istringstream in(R"(# comment
scenario demo
model gptL batch=8
model resNet50 batch=32
)");
    const Scenario sc = io::parseScenario(in);
    EXPECT_EQ(sc.name, "demo");
    ASSERT_EQ(sc.models.size(), 2u);
    EXPECT_EQ(sc.models[0].name, "GPT-L");
    EXPECT_EQ(sc.models[0].batch, 8);
    EXPECT_EQ(sc.models[1].batch, 32);
    EXPECT_EQ(sc.models[0].numLayers(), zoo::gptL(8).numLayers());
}

TEST(IoScenario, DefaultBatchIsOne)
{
    std::istringstream in("scenario s\nmodel eyeCod\n");
    EXPECT_EQ(io::parseScenario(in).models[0].batch, 1);
}

TEST(IoScenario, ParsesCustomModelLayers)
{
    std::istringstream in(R"(scenario custom-demo
model custom name=MyNet batch=2
gemm name=fc1 m=128 n=1024 k=512
conv name=c1 k=64 c=3 r=7 s=7 y=224 x=224 stride=2
pool name=p1 c=64 y=112 x=112 window=2
eltwise name=e1 c=64 y=56 x=56
)");
    const Scenario sc = io::parseScenario(in);
    ASSERT_EQ(sc.models.size(), 1u);
    const Model& m = sc.models[0];
    EXPECT_EQ(m.name, "MyNet");
    ASSERT_EQ(m.numLayers(), 4);
    EXPECT_EQ(m.layers[0].type, OpType::Gemm);
    EXPECT_DOUBLE_EQ(m.layers[0].macs(), 128.0 * 1024 * 512);
    EXPECT_EQ(m.layers[1].type, OpType::Conv2D);
    EXPECT_EQ(m.layers[1].outY(), 112);
    EXPECT_EQ(m.layers[2].type, OpType::Pool);
    EXPECT_EQ(m.layers[3].type, OpType::Elementwise);
}

TEST(IoScenario, RejectsUnknownModel)
{
    std::istringstream in("scenario s\nmodel doesNotExist\n");
    EXPECT_THROW(io::parseScenario(in), FatalError);
}

TEST(IoScenario, RejectsLayerOutsideCustomModel)
{
    std::istringstream in("scenario s\ngemm m=1 n=1 k=1\n");
    EXPECT_THROW(io::parseScenario(in), FatalError);
}

TEST(IoScenario, RejectsEmptyFile)
{
    std::istringstream in("# nothing here\n");
    EXPECT_THROW(io::parseScenario(in), FatalError);
}

TEST(IoScenario, RejectsNonNumericAttribute)
{
    std::istringstream in(
        "scenario s\nmodel custom\ngemm m=abc n=1 k=1\n");
    EXPECT_THROW(io::parseScenario(in), FatalError);
}

TEST(IoMcm, ParsesTemplateReference)
{
    std::istringstream in("mcm pkg\ntemplate hetSides3x3\npes 256\n");
    const Mcm mcm = io::parseMcm(in);
    EXPECT_EQ(mcm.numChiplets(), 9);
    EXPECT_EQ(mcm.chiplet(0).spec.numPes, 256);
    EXPECT_EQ(mcm.numWithDataflow(Dataflow::NvdlaWS), 6);
}

TEST(IoMcm, ParsesCustomMeshWithDataflowMap)
{
    std::istringstream in(R"(mcm custom
mesh 3 2
pes 1024
map NVD RS Shi / Shi RS NVD
)");
    const Mcm mcm = io::parseMcm(in);
    EXPECT_EQ(mcm.name(), "custom");
    EXPECT_EQ(mcm.numChiplets(), 6);
    EXPECT_EQ(mcm.chiplet(0).spec.dataflow, Dataflow::NvdlaWS);
    EXPECT_EQ(mcm.chiplet(1).spec.dataflow, Dataflow::EyerissRS);
    EXPECT_EQ(mcm.chiplet(2).spec.dataflow, Dataflow::ShiOS);
    EXPECT_EQ(mcm.chiplet(3).spec.dataflow, Dataflow::ShiOS);
    EXPECT_TRUE(mcm.chiplet(0).memInterface);
    EXPECT_FALSE(mcm.chiplet(1).memInterface);
}

TEST(IoMcm, RejectsMapShapeMismatch)
{
    std::istringstream in("mcm m\nmesh 3 3\nmap NVD Shi / NVD Shi\n");
    EXPECT_THROW(io::parseMcm(in), FatalError);
}

TEST(IoMcm, RejectsUnknownTemplate)
{
    std::istringstream in("mcm m\ntemplate nope\n");
    EXPECT_THROW(io::parseMcm(in), FatalError);
}

TEST(IoMcm, RejectsUnknownDataflow)
{
    std::istringstream in("mcm m\nmesh 1 1\nmap XYZ\n");
    EXPECT_THROW(io::parseMcm(in), FatalError);
}

TEST(IoMcm, RejectsMissingGeometry)
{
    std::istringstream in("mcm m\npes 64\n");
    EXPECT_THROW(io::parseMcm(in), FatalError);
}

TEST(IoRoundTrip, ParsedConfigsScheduleEndToEnd)
{
    std::istringstream workload(
        "scenario io-demo\nmodel eyeCod batch=8\nmodel handSP "
        "batch=2\n");
    std::istringstream mcmIn(
        "mcm pkg\ntemplate hetTriple3x3\npes 256\n");
    const Scenario sc = io::parseScenario(workload);
    const Mcm mcm = io::parseMcm(mcmIn);
    ScarOptions opts;
    opts.nsplits = 2;
    Scar scar(sc, mcm, opts);
    const ScheduleResult result = scar.run();
    EXPECT_GT(result.metrics.latencySec, 0.0);
    EXPECT_EQ(result.windows.front().assignment.perModel.size(), 2u);
}

TEST(IoFiles, LoadsShippedConfigFiles)
{
    const std::string dir = SCAR_CONFIG_DIR;
    const Scenario sc =
        io::loadScenario(dir + "/workload_datacenter.cfg");
    EXPECT_EQ(sc.models.size(), 4u);
    const Mcm mcm = io::loadMcm(dir + "/mcm_het_sides.cfg");
    EXPECT_EQ(mcm.numChiplets(), 9);
    const Mcm custom = io::loadMcm(dir + "/mcm_custom_mesh.cfg");
    EXPECT_EQ(custom.numWithDataflow(Dataflow::EyerissRS), 3);
}

TEST(IoFiles, MissingFileRaisesFatal)
{
    EXPECT_THROW(io::loadScenario("/nonexistent/file.cfg"), FatalError);
    EXPECT_THROW(io::loadMcm("/nonexistent/file.cfg"), FatalError);
}

} // namespace
} // namespace scar
