/**
 * @file
 * Tests for the SEG engine: enumeration correctness (Theorem 1
 * validity: coverage + exclusivity), capping behaviour, and the
 * Heuristic-1 quick ranking.
 */

#include <gtest/gtest.h>

#include "arch/mcm_templates.h"
#include "sched/segmentation.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

long
binomial(int n, int k)
{
    long r = 1;
    for (int i = 0; i < k; ++i)
        r = r * (n - i) / (i + 1);
    return r;
}

class SegEnumTest
    : public ::testing::TestWithParam<std::pair<int, int>> // layers, maxSegs
{
};

TEST_P(SegEnumTest, CandidatesAreValidPartitions)
{
    const auto [layers, maxSegs] = GetParam();
    Rng rng(1);
    const LayerRange range{3, 3 + layers - 1}; // offset start
    const auto candidates =
        enumerateSegmentations(range, maxSegs, 100000, rng);
    for (const Segmentation& seg : candidates) {
        // Theorem 1: coverage and exclusivity.
        ASSERT_FALSE(seg.segments.empty());
        EXPECT_EQ(seg.segments.front().first, range.first);
        EXPECT_EQ(seg.segments.back().last, range.last);
        for (std::size_t k = 0; k + 1 < seg.segments.size(); ++k) {
            EXPECT_EQ(seg.segments[k + 1].first,
                      seg.segments[k].last + 1);
        }
        EXPECT_LE(seg.numSegments(), maxSegs);
    }
}

TEST_P(SegEnumTest, CountMatchesBinomialSum)
{
    const auto [layers, maxSegs] = GetParam();
    Rng rng(1);
    const LayerRange range{0, layers - 1};
    const auto candidates =
        enumerateSegmentations(range, maxSegs, 100000, rng);
    long expected = 0;
    for (int segs = 1; segs <= std::min(maxSegs, layers); ++segs)
        expected += binomial(layers - 1, segs - 1);
    EXPECT_EQ(static_cast<long>(candidates.size()), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SegEnumTest,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(5, 1),
                      std::make_pair(5, 3), std::make_pair(8, 4),
                      std::make_pair(12, 2), std::make_pair(10, 10)));

TEST(SegEnum, CapLimitsEnumeration)
{
    Rng rng(1);
    const LayerRange range{0, 59}; // C(59, 3) = 32509 > cap
    const auto candidates = enumerateSegmentations(range, 4, 50, rng);
    // Per segment count the cap applies; total stays modest.
    EXPECT_LE(candidates.size(), 4u * 50u + 4u);
    // Sampled candidates are still valid partitions.
    for (const Segmentation& seg : candidates) {
        EXPECT_EQ(seg.segments.front().first, 0);
        EXPECT_EQ(seg.segments.back().last, 59);
    }
}

TEST(SegEnum, MaxSegsClampedToLayerCount)
{
    Rng rng(1);
    const auto candidates =
        enumerateSegmentations(LayerRange{0, 2}, 9, 1000, rng);
    for (const Segmentation& seg : candidates)
        EXPECT_LE(seg.numSegments(), 3);
}

class RankFixture : public ::testing::Test
{
  protected:
    RankFixture()
        : mcm_(templates::hetSides3x3())
    {
        sc_.name = "rank";
        sc_.models = {zoo::bertBase(8)};
        sc_.finalize();
        db_ = std::make_unique<CostDb>(sc_, mcm_);
    }

    Scenario sc_;
    Mcm mcm_;
    std::unique_ptr<CostDb> db_;
};

TEST_F(RankFixture, QuickScorePositiveAndFinite)
{
    Rng rng(3);
    const LayerRange range{0, 11};
    const auto candidates = enumerateSegmentations(range, 3, 1000, rng);
    for (const Segmentation& seg : candidates) {
        const double s = quickScore(*db_, 0, seg, OptTarget::Edp);
        EXPECT_GT(s, 0.0);
        EXPECT_TRUE(std::isfinite(s));
    }
}

TEST_F(RankFixture, RankedListIsSortedByQuickScore)
{
    Rng rng(3);
    SegmentationOptions opts;
    opts.topK = 8;
    opts.pruneK = 8;
    const auto ranked = rankSegmentations(*db_, 0, LayerRange{0, 11}, 3,
                                          OptTarget::Edp, opts, rng);
    for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
        EXPECT_LE(quickScore(*db_, 0, ranked[i], OptTarget::Edp),
                  quickScore(*db_, 0, ranked[i + 1], OptTarget::Edp) +
                      1e-12);
    }
}

TEST_F(RankFixture, DiversityKeepsEverySegmentCount)
{
    Rng rng(3);
    SegmentationOptions opts;
    opts.pruneK = 6;
    const auto ranked = rankSegmentations(*db_, 0, LayerRange{0, 11}, 3,
                                          OptTarget::Edp, opts, rng);
    std::set<int> counts;
    for (const Segmentation& seg : ranked)
        counts.insert(seg.numSegments());
    EXPECT_EQ(counts.size(), 3u); // 1, 2 and 3-segment candidates kept
}

TEST_F(RankFixture, PipeliningLowersQuickLatencyForBatches)
{
    // For a batched model, the best 3-segment candidate must beat the
    // single-segment candidate under the latency target.
    Rng rng(3);
    const LayerRange range{0, 11};
    const auto candidates =
        enumerateSegmentations(range, 3, 100000, rng);
    double best1 = 1e30;
    double best3 = 1e30;
    for (const Segmentation& seg : candidates) {
        const double s = quickScore(*db_, 0, seg, OptTarget::Latency);
        if (seg.numSegments() == 1)
            best1 = std::min(best1, s);
        if (seg.numSegments() == 3)
            best3 = std::min(best3, s);
    }
    EXPECT_LT(best3, best1);
}

} // namespace
} // namespace scar
