/**
 * @file
 * Unit tests for the layer IR: shape math, MAC/traffic accounting,
 * and validation.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "workload/layer.h"

namespace scar
{
namespace
{

Layer
convLayer(std::int64_t k, std::int64_t c, std::int64_t r, std::int64_t s,
          std::int64_t y, std::int64_t x, std::int64_t stride = 1)
{
    Layer layer;
    layer.name = "conv";
    layer.type = OpType::Conv2D;
    layer.dims = LayerDims{k, c, r, s, y, x, stride, stride};
    return layer;
}

TEST(Layer, ConvMacCount)
{
    // 64 filters of 3x64x3x3 over a 56x56 (stride 1, SAME) input.
    const Layer l = convLayer(64, 3, 3, 3, 56, 56);
    EXPECT_DOUBLE_EQ(l.macs(), 64.0 * 3 * 3 * 3 * 56 * 56);
}

TEST(Layer, StridedOutputDims)
{
    const Layer l = convLayer(64, 3, 7, 7, 224, 224, 2);
    EXPECT_EQ(l.outY(), 112);
    EXPECT_EQ(l.outX(), 112);
    // Odd input with stride 2 rounds up (SAME padding).
    const Layer odd = convLayer(8, 8, 3, 3, 7, 7, 2);
    EXPECT_EQ(odd.outY(), 4);
}

TEST(Layer, GemmMapsToUnifiedShape)
{
    const Layer g = makeGemmLayer(0, "g", 128, 5120, 1280);
    EXPECT_EQ(g.type, OpType::Gemm);
    EXPECT_DOUBLE_EQ(g.macs(), 128.0 * 5120 * 1280);
    EXPECT_DOUBLE_EQ(g.weightElems(), 5120.0 * 1280);
    EXPECT_DOUBLE_EQ(g.inputElems(), 128.0 * 1280);
    EXPECT_DOUBLE_EQ(g.outputElems(), 128.0 * 5120);
}

TEST(Layer, DepthwiseMacsAndWeights)
{
    Layer l;
    l.type = OpType::DepthwiseConv;
    l.dims = LayerDims{32, 32, 3, 3, 28, 28, 1, 1};
    EXPECT_DOUBLE_EQ(l.macs(), 32.0 * 3 * 3 * 28 * 28);
    EXPECT_DOUBLE_EQ(l.weightElems(), 32.0 * 3 * 3);
}

TEST(Layer, PoolHasNoWeights)
{
    Layer l;
    l.type = OpType::Pool;
    l.dims = LayerDims{64, 64, 2, 2, 56, 56, 2, 2};
    EXPECT_DOUBLE_EQ(l.weightElems(), 0.0);
    EXPECT_EQ(l.outY(), 28);
}

TEST(Layer, ElementwiseReadsTwoOperands)
{
    Layer l;
    l.type = OpType::Elementwise;
    l.dims = LayerDims{16, 16, 1, 1, 8, 8, 1, 1};
    EXPECT_DOUBLE_EQ(l.inputElems(), 2.0 * 16 * 8 * 8);
    EXPECT_DOUBLE_EQ(l.outputElems(), 16.0 * 8 * 8);
}

TEST(Layer, BytesScaleWithElementSize)
{
    const Layer g = makeGemmLayer(0, "g", 4, 8, 16);
    EXPECT_DOUBLE_EQ(g.weightBytes(),
                     g.weightElems() * kBytesPerElement);
    EXPECT_DOUBLE_EQ(g.inputBytes(), g.inputElems() * kBytesPerElement);
    EXPECT_DOUBLE_EQ(g.outputBytes(),
                     g.outputElems() * kBytesPerElement);
}

TEST(Layer, ValidateRejectsBadDims)
{
    Layer l = convLayer(0, 3, 3, 3, 8, 8);
    EXPECT_THROW(l.validate(), FatalError);
    l = convLayer(4, 3, 3, 3, 0, 8);
    EXPECT_THROW(l.validate(), FatalError);
}

TEST(Layer, ValidateRejectsChannelMismatchForPerChannelOps)
{
    Layer l;
    l.type = OpType::DepthwiseConv;
    l.dims = LayerDims{32, 16, 3, 3, 28, 28, 1, 1};
    EXPECT_THROW(l.validate(), FatalError);
}

TEST(Layer, OpTypeNames)
{
    EXPECT_STREQ(opTypeName(OpType::Conv2D), "conv");
    EXPECT_STREQ(opTypeName(OpType::Gemm), "gemm");
    EXPECT_STREQ(opTypeName(OpType::Pool), "pool");
}

} // namespace
} // namespace scar
