/**
 * @file
 * Tests for the MCM description and the Figure 6 template catalog.
 */

#include <gtest/gtest.h>

#include <functional>

#include "arch/mcm_templates.h"
#include "common/error.h"

namespace scar
{
namespace
{

TEST(Mcm, RejectsIdMismatch)
{
    Topology topo = Topology::mesh(2, 1);
    std::vector<Chiplet> chiplets(2);
    chiplets[0].id = 1; // wrong
    chiplets[1].id = 0;
    chiplets[0].memInterface = true;
    EXPECT_THROW(Mcm("bad", chiplets, topo), FatalError);
}

TEST(Mcm, RequiresMemoryInterface)
{
    Topology topo = Topology::mesh(2, 1);
    std::vector<Chiplet> chiplets(2);
    chiplets[0].id = 0;
    chiplets[1].id = 1;
    EXPECT_THROW(Mcm("bad", chiplets, topo), FatalError);
}

TEST(Mcm, NearestMemInterfaceOnMesh)
{
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    // Side columns host the interfaces; middle column is 1 hop away.
    for (int c = 0; c < mcm.numChiplets(); ++c) {
        const int hops = mcm.hopsToMem(c);
        if (mcm.chiplet(c).memInterface) {
            EXPECT_EQ(hops, 0);
        } else {
            EXPECT_EQ(hops, 1); // middle column of a 3x3
        }
    }
}

TEST(Mcm, SpecForMissingDataflowFallsBack)
{
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const ChipletSpec spec = mcm.specForDataflow(Dataflow::ShiOS);
    EXPECT_EQ(spec.dataflow, Dataflow::ShiOS);
    EXPECT_EQ(spec.numPes, mcm.chiplet(0).spec.numPes);
}

struct TemplateCase
{
    const char* name;
    std::function<Mcm()> make;
    int chiplets;
    int nvdla;
    int shi;
};

class TemplateTest : public ::testing::TestWithParam<TemplateCase>
{
};

TEST_P(TemplateTest, CompositionMatchesPattern)
{
    const Mcm mcm = GetParam().make();
    EXPECT_EQ(mcm.numChiplets(), GetParam().chiplets);
    EXPECT_EQ(mcm.numWithDataflow(Dataflow::NvdlaWS), GetParam().nvdla);
    EXPECT_EQ(mcm.numWithDataflow(Dataflow::ShiOS), GetParam().shi);
}

TEST_P(TemplateTest, HasSideMemoryInterfaces)
{
    const Mcm mcm = GetParam().make();
    EXPECT_FALSE(mcm.memInterfaces().empty());
    for (int c = 0; c < mcm.numChiplets(); ++c)
        EXPECT_GE(mcm.hopsToMem(c), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Figure6, TemplateTest,
    ::testing::Values(
        TemplateCase{"Simba3x3Shi",
                     [] { return templates::simba3x3(Dataflow::ShiOS); },
                     9, 0, 9},
        TemplateCase{"Simba3x3Nvd",
                     [] { return templates::simba3x3(Dataflow::NvdlaWS); },
                     9, 9, 0},
        TemplateCase{"HetCb", [] { return templates::hetCb3x3(); }, 9, 5,
                     4},
        TemplateCase{"HetSides", [] { return templates::hetSides3x3(); },
                     9, 6, 3},
        TemplateCase{"Simba6x6",
                     [] { return templates::simba6x6(Dataflow::NvdlaWS); },
                     36, 36, 0},
        TemplateCase{"HetCross", [] { return templates::hetCross6x6(); },
                     36, 20, 16},
        TemplateCase{"SimbaT",
                     [] {
                         return templates::simbaTriangular(
                             Dataflow::ShiOS);
                     },
                     9, 0, 9},
        TemplateCase{"HetT", [] { return templates::hetTriangular(); }, 9,
                     6, 3},
        TemplateCase{"Mot2x2", [] { return templates::motivational2x2(); },
                     4, 3, 1}),
    [](const ::testing::TestParamInfo<TemplateCase>& info) {
        return info.param.name;
    });

TEST(Templates, HetSidesColumnsAreHomogeneousPipelines)
{
    const Mcm mcm = templates::hetSides3x3();
    // Left column ids 0,3,6 and right column 2,5,8 share a dataflow and
    // are vertically adjacent (homogeneous pipelining chains).
    for (int id : {0, 3, 6, 2, 5, 8})
        EXPECT_EQ(mcm.chiplet(id).spec.dataflow, Dataflow::NvdlaWS);
    for (int id : {1, 4, 7})
        EXPECT_EQ(mcm.chiplet(id).spec.dataflow, Dataflow::ShiOS);
}

TEST(Templates, HetCbNeighborsAlwaysHeterogeneous)
{
    const Mcm mcm = templates::hetCb3x3();
    for (int c = 0; c < mcm.numChiplets(); ++c) {
        for (int n : mcm.topology().neighbors(c)) {
            EXPECT_NE(mcm.chiplet(c).spec.dataflow,
                      mcm.chiplet(n).spec.dataflow);
        }
    }
}

TEST(Templates, ArvrPeCount)
{
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS,
                                        templates::kArvrPes);
    EXPECT_EQ(mcm.chiplet(0).spec.numPes, 256);
}

TEST(Templates, PackageParamsMatchTable2)
{
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    EXPECT_DOUBLE_EQ(mcm.params().bwNopGBps, 100.0);
    EXPECT_DOUBLE_EQ(mcm.params().nopHopLatencyNs, 35.0);
    EXPECT_DOUBLE_EQ(mcm.params().nopEnergyPjPerBit, 2.04);
    EXPECT_DOUBLE_EQ(mcm.params().bwOffchipGBps, 64.0);
    EXPECT_DOUBLE_EQ(mcm.params().dramLatencyNs, 200.0);
    EXPECT_DOUBLE_EQ(mcm.params().dramEnergyPjPerBit, 14.8);
}

// The package signature keys schedule caches by structure: equal for
// structurally identical packages regardless of display name,
// different whenever any schedule-relevant field differs.
TEST(McmSignature, StructurallyIdenticalPackagesShareOne)
{
    const Mcm a = templates::hetSides3x3();
    const Mcm b = templates::hetSides3x3();
    EXPECT_EQ(a.signature(), b.signature());
    EXPECT_FALSE(a.signature().empty());
}

TEST(McmSignature, DisplayNameIsExcluded)
{
    const Mcm base = templates::simba3x3(Dataflow::NvdlaWS);
    const Mcm renamed("SomethingElse", base.chiplets(),
                      base.topology(), base.params());
    EXPECT_EQ(base.signature(), renamed.signature());
}

TEST(McmSignature, DiffersAcrossDataflowPeTopologyAndParams)
{
    const Mcm nvd = templates::simba3x3(Dataflow::NvdlaWS);
    const Mcm shi = templates::simba3x3(Dataflow::ShiOS);
    const Mcm het = templates::hetSides3x3();
    const Mcm small =
        templates::simba3x3(Dataflow::NvdlaWS, templates::kArvrPes);
    const Mcm wide = templates::simba6x6(Dataflow::NvdlaWS);
    const Mcm tri = templates::simbaTriangular(Dataflow::NvdlaWS);
    EXPECT_NE(nvd.signature(), shi.signature());
    EXPECT_NE(nvd.signature(), het.signature());
    EXPECT_NE(nvd.signature(), small.signature());
    EXPECT_NE(nvd.signature(), wide.signature());
    EXPECT_NE(nvd.signature(), tri.signature());

    PackageParams slowDram;
    slowDram.bwOffchipGBps = 32.0;
    const Mcm starved("Simba (NVD)", nvd.chiplets(), nvd.topology(),
                      slowDram);
    EXPECT_NE(nvd.signature(), starved.signature());
}

// Default ostream precision (6 significant digits) would alias
// packages whose constants differ past the 6th digit — and an
// aliased signature is an aliased schedule-cache key. The digest
// must round-trip doubles exactly (max_digits10).
TEST(McmSignature, DistinguishesSubPrecisionParamDifferences)
{
    const Mcm base = templates::simba3x3(Dataflow::NvdlaWS);
    PackageParams tweaked = base.params();
    tweaked.bwOffchipGBps += 1e-5; // invisible at 6 digits (64.0)
    const Mcm close("Simba (NVD)", base.chiplets(), base.topology(),
                    tweaked);
    EXPECT_NE(base.signature(), close.signature());

    std::vector<Chiplet> chiplets = base.chiplets();
    chiplets[0].spec.l2Bytes += 1; // 10485761 vs 10485760
    const Mcm closeL2("Simba (NVD)", chiplets, base.topology(),
                      base.params());
    EXPECT_NE(base.signature(), closeL2.signature());
}

} // namespace
} // namespace scar
