/**
 * @file
 * Cross-module integration sweeps: SCAR end-to-end over the full
 * (template x target) grid on a compact workload, plus system-level
 * invariants the paper's formulation implies (Theorem 1/2 validity,
 * monotonicity properties, baseline orderings).
 */

#include <gtest/gtest.h>

#include <set>

#include "arch/mcm_templates.h"
#include "baselines/nn_baton.h"
#include "baselines/standalone.h"
#include "common/units.h"
#include "eval/pareto.h"
#include "eval/scenario_suite.h"
#include "sched/scar.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

Scenario
sweepScenario()
{
    Scenario sc;
    sc.name = "sweep";
    sc.models = {zoo::eyeCod(6), zoo::sp2Dense(2)};
    sc.finalize();
    return sc;
}

void
expectCoverage(const Scenario& sc, const ScheduleResult& result)
{
    std::vector<int> next(sc.numModels(), 0);
    for (const ScheduledWindow& sw : result.windows) {
        std::set<int> used;
        for (const ModelPlacement& mp : sw.placement.models) {
            for (const PlacedSegment& seg : mp.segments) {
                ASSERT_TRUE(used.insert(seg.chiplet).second);
                ASSERT_EQ(seg.range.first, next[mp.modelIdx]);
                next[mp.modelIdx] = seg.range.last + 1;
            }
        }
    }
    for (int m = 0; m < sc.numModels(); ++m)
        ASSERT_EQ(next[m], sc.models[m].numLayers());
}

struct SweepCase
{
    const char* name;
    std::function<Mcm()> make;
};

class TemplateSweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(TemplateSweep, AllTargetsProduceValidSchedules)
{
    const Scenario sc = sweepScenario();
    const Mcm mcm = GetParam().make();
    for (OptTarget target :
         {OptTarget::Latency, OptTarget::Energy, OptTarget::Edp}) {
        ScarOptions opts;
        opts.target = target;
        opts.nsplits = 2;
        Scar scar(sc, mcm, opts);
        const ScheduleResult result = scar.run();
        expectCoverage(sc, result);
        EXPECT_GT(result.metrics.latencySec, 0.0);
        EXPECT_GT(result.metrics.energyJ, 0.0);
        EXPECT_FALSE(result.candidates.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Templates, TemplateSweep,
    ::testing::Values(
        SweepCase{"SimbaShi",
                  [] {
                      return templates::simba3x3(Dataflow::ShiOS,
                                                 templates::kArvrPes);
                  }},
        SweepCase{"SimbaNvd",
                  [] {
                      return templates::simba3x3(Dataflow::NvdlaWS,
                                                 templates::kArvrPes);
                  }},
        SweepCase{"HetCb",
                  [] { return templates::hetCb3x3(templates::kArvrPes); }},
        SweepCase{"HetSides",
                  [] {
                      return templates::hetSides3x3(templates::kArvrPes);
                  }},
        SweepCase{"HetTri",
                  [] {
                      return templates::hetTriple3x3(templates::kArvrPes);
                  }},
        SweepCase{"SimbaT",
                  [] {
                      return templates::simbaTriangular(
                          Dataflow::NvdlaWS, templates::kArvrPes);
                  }},
        SweepCase{"HetT",
                  [] {
                      return templates::hetTriangular(templates::kArvrPes);
                  }},
        SweepCase{"Mot2x2",
                  [] {
                      return templates::motivational2x2(
                          templates::kArvrPes);
                  }}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
        return info.param.name;
    });

class ScenarioSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ScenarioSweep, ArvrScenariosScheduleEndToEnd)
{
    const Scenario sc = suite::arvrScenario(GetParam());
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    ScarOptions opts;
    opts.nsplits = 2; // keep the sweep fast
    Scar scar(sc, mcm, opts);
    const ScheduleResult result = scar.run();
    expectCoverage(sc, result);
}

INSTANTIATE_TEST_SUITE_P(Arvr, ScenarioSweep, ::testing::Range(6, 11));

TEST(IntegrationInvariants, MoreChipletsNeverHurtMuch)
{
    // A 6x6 package offers a superset of the 3x3's placements; the
    // greedy per-window search is heuristic, so allow 10% slack.
    const Scenario sc = sweepScenario();
    ScarOptions opts;
    opts.nsplits = 2;
    Scar small(sc, templates::simba3x3(Dataflow::NvdlaWS,
                                       templates::kArvrPes),
               opts);
    Scar large(sc, templates::simba6x6(Dataflow::NvdlaWS,
                                       templates::kArvrPes),
               opts);
    EXPECT_LE(large.run().metrics.edp(),
              small.run().metrics.edp() * 1.1);
}

TEST(IntegrationInvariants, ContentionOffNeverSlower)
{
    const Scenario sc = sweepScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    ScarOptions on;
    ScarOptions off;
    off.window.eval.contention = false;
    off.window.eval.dramRoofline = false;
    const Metrics mOn = Scar(sc, mcm, on).run().metrics;
    const Metrics mOff = Scar(sc, mcm, off).run().metrics;
    EXPECT_LE(mOff.latencySec, mOn.latencySec * 1.05);
}

TEST(IntegrationInvariants, ParetoFrontSubsetOfCandidates)
{
    const Scenario sc = sweepScenario();
    const Mcm mcm = templates::hetCb3x3(templates::kArvrPes);
    Scar scar(sc, mcm, ScarOptions{});
    const ScheduleResult result = scar.run();
    const auto front = paretoFront(result.candidates);
    EXPECT_FALSE(front.empty());
    EXPECT_LE(front.size(), result.candidates.size());
    // No candidate dominates a front point.
    for (const Metrics& f : front) {
        for (const Metrics& c : result.candidates)
            EXPECT_FALSE(dominates(c, f));
    }
}

TEST(IntegrationInvariants, BaselineOrderingOnLlmWorkload)
{
    // The cross-baseline ordering underlying Table IV: on an
    // LLM-dominated workload, standalone NVDLA beats standalone Shi by
    // a large factor, and SCAR on the NVDLA mesh beats NN-baton.
    Scenario sc;
    sc.name = "llm";
    sc.models = {zoo::bertBase(4), zoo::emformer(2)};
    sc.finalize();
    const Mcm nvd = templates::simba3x3(Dataflow::NvdlaWS);
    const Mcm shi = templates::simba3x3(Dataflow::ShiOS);

    const double standNvd = scheduleStandalone(sc, nvd).metrics.edp();
    const double standShi = scheduleStandalone(sc, shi).metrics.edp();
    EXPECT_GT(standShi, 2.0 * standNvd);

    const double baton = scheduleNnBaton(sc, nvd).metrics.edp();
    Scar scar(sc, nvd, ScarOptions{});
    EXPECT_LT(scar.run().metrics.edp(), baton);
}

TEST(IntegrationInvariants, SeedChangesOnlyWithinTolerance)
{
    // Different seeds explore different capped samples but converge to
    // comparable schedule quality (within 25%).
    const Scenario sc = sweepScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    ScarOptions a;
    a.seed = 1;
    ScarOptions b;
    b.seed = 12345;
    const double ea = Scar(sc, mcm, a).run().metrics.edp();
    const double eb = Scar(sc, mcm, b).run().metrics.edp();
    EXPECT_LT(std::max(ea, eb) / std::min(ea, eb), 1.25);
}

TEST(IntegrationInvariants, WindowCostsAreSelfConsistent)
{
    const Scenario sc = sweepScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    Scar scar(sc, mcm, ScarOptions{});
    const ScheduleResult result = scar.run();
    for (const ScheduledWindow& sw : result.windows) {
        double maxModel = 0.0;
        double sumEnergy = 0.0;
        for (const ModelWindowCost& mc : sw.cost.perModel) {
            maxModel = std::max(maxModel, mc.latencyCycles);
            sumEnergy += mc.energyNj;
        }
        EXPECT_GE(sw.cost.latencyCycles, maxModel * 0.999);
        EXPECT_NEAR(sw.cost.energyNj, sumEnergy, sumEnergy * 1e-9);
    }
}

} // namespace
} // namespace scar
