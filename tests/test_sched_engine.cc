/**
 * @file
 * Tests for the SCHED engine and the evolutionary SEG driver:
 * feasibility, exclusivity, score ordering, determinism, and
 * pool-size independence of the parallel combo fan-out.
 */

#include <gtest/gtest.h>

#include <set>

#include "arch/mcm_templates.h"
#include "common/thread_pool.h"
#include "sched/evolutionary.h"
#include "sched/sched_engine.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

class SchedEngineTest : public ::testing::Test
{
  protected:
    SchedEngineTest()
        : mcm_(templates::hetSides3x3())
    {
        sc_.name = "sched";
        sc_.models = {zoo::eyeCod(8), zoo::bertBase(2)};
        sc_.finalize();
        db_ = std::make_unique<CostDb>(sc_, mcm_);
        wa_.perModel = {
            LayerRange{0, sc_.models[0].numLayers() - 1},
            LayerRange{0, 11},
        };
        nodes_ = {3, 3};
    }

    Scenario sc_;
    Mcm mcm_;
    std::unique_ptr<CostDb> db_;
    WindowAssignment wa_;
    NodeAllocation nodes_;
};

TEST_F(SchedEngineTest, FindsFeasiblePlacement)
{
    const WindowScheduler sched(*db_, OptTarget::Edp);
    const auto result = sched.search(wa_, nodes_, 1);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.best.placement.models.size(), 2u);
    EXPECT_GT(result.best.cost.latencyCycles, 0.0);
    EXPECT_GT(result.best.cost.energyNj, 0.0);
}

TEST_F(SchedEngineTest, PlacementRespectsExclusivity)
{
    const WindowScheduler sched(*db_, OptTarget::Edp);
    const auto result = sched.search(wa_, nodes_, 1);
    ASSERT_TRUE(result.found);
    std::set<int> used;
    for (const ModelPlacement& mp : result.best.placement.models) {
        for (const PlacedSegment& seg : mp.segments)
            EXPECT_TRUE(used.insert(seg.chiplet).second)
                << "chiplet reused: " << seg.chiplet;
    }
}

TEST_F(SchedEngineTest, SegmentsRespectNodeAllocation)
{
    const WindowScheduler sched(*db_, OptTarget::Edp);
    const auto result = sched.search(wa_, nodes_, 1);
    ASSERT_TRUE(result.found);
    for (const ModelPlacement& mp : result.best.placement.models) {
        EXPECT_LE(static_cast<int>(mp.segments.size()),
                  nodes_[mp.modelIdx]);
    }
}

TEST_F(SchedEngineTest, SegmentsOnAdjacentChiplets)
{
    const WindowScheduler sched(*db_, OptTarget::Edp);
    const auto result = sched.search(wa_, nodes_, 1);
    ASSERT_TRUE(result.found);
    for (const ModelPlacement& mp : result.best.placement.models) {
        for (std::size_t k = 0; k + 1 < mp.segments.size(); ++k) {
            EXPECT_EQ(mcm_.topology().hops(mp.segments[k].chiplet,
                                           mp.segments[k + 1].chiplet),
                      1);
        }
    }
}

TEST_F(SchedEngineTest, TopListIsSortedByScore)
{
    const WindowScheduler sched(*db_, OptTarget::Edp);
    const auto result = sched.search(wa_, nodes_, 1);
    ASSERT_TRUE(result.found);
    EXPECT_GE(result.top.size(), 2u);
    for (std::size_t i = 0; i + 1 < result.top.size(); ++i)
        EXPECT_LE(result.top[i].score, result.top[i + 1].score);
    EXPECT_DOUBLE_EQ(result.best.score, result.top.front().score);
}

TEST_F(SchedEngineTest, DeterministicForFixedSeed)
{
    const WindowScheduler sched(*db_, OptTarget::Edp);
    const auto a = sched.search(wa_, nodes_, 42);
    const auto b = sched.search(wa_, nodes_, 42);
    ASSERT_TRUE(a.found && b.found);
    EXPECT_DOUBLE_EQ(a.best.score, b.best.score);
}

/** The tentpole guarantee: the ranked result is byte-identical at any
 *  pool size, including fully serial. */
TEST_F(SchedEngineTest, PoolSizeDoesNotChangeResults)
{
    WindowSearchOptions serialOpts;
    const WindowScheduler serial(*db_, OptTarget::Edp, serialOpts);
    const auto baseline = serial.search(wa_, nodes_, 42);
    ASSERT_TRUE(baseline.found);

    for (int concurrency : {2, 4, 8}) {
        ThreadPool pool(concurrency);
        WindowSearchOptions opts;
        opts.pool = &pool;
        const WindowScheduler parallel(*db_, OptTarget::Edp, opts);
        const auto result = parallel.search(wa_, nodes_, 42);
        ASSERT_TRUE(result.found);
        ASSERT_EQ(result.top.size(), baseline.top.size())
            << "concurrency " << concurrency;
        for (std::size_t i = 0; i < result.top.size(); ++i) {
            EXPECT_EQ(result.top[i].score, baseline.top[i].score);
            EXPECT_EQ(result.top[i].cost.latencyCycles,
                      baseline.top[i].cost.latencyCycles);
            EXPECT_EQ(result.top[i].cost.energyNj,
                      baseline.top[i].cost.energyNj);
            ASSERT_EQ(result.top[i].placement.models.size(),
                      baseline.top[i].placement.models.size());
            for (std::size_t m = 0;
                 m < result.top[i].placement.models.size(); ++m) {
                const ModelPlacement& got =
                    result.top[i].placement.models[m];
                const ModelPlacement& want =
                    baseline.top[i].placement.models[m];
                EXPECT_EQ(got.modelIdx, want.modelIdx);
                ASSERT_EQ(got.segments.size(), want.segments.size());
                for (std::size_t k = 0; k < got.segments.size(); ++k) {
                    EXPECT_EQ(got.segments[k].chiplet,
                              want.segments[k].chiplet);
                    EXPECT_EQ(got.segments[k].range.first,
                              want.segments[k].range.first);
                    EXPECT_EQ(got.segments[k].range.last,
                              want.segments[k].range.last);
                }
            }
        }
    }
}

TEST_F(SchedEngineTest, LatencyTargetPrefersFasterWindows)
{
    const WindowScheduler latSched(*db_, OptTarget::Latency);
    const WindowScheduler nrgSched(*db_, OptTarget::Energy);
    const auto lat = latSched.search(wa_, nodes_, 1);
    const auto nrg = nrgSched.search(wa_, nodes_, 1);
    ASSERT_TRUE(lat.found && nrg.found);
    // Both searches are heuristic (beam), so allow a small slack.
    EXPECT_LE(lat.best.cost.latencyCycles,
              nrg.best.cost.latencyCycles * 1.05);
    EXPECT_LE(nrg.best.cost.energyNj, lat.best.cost.energyNj * 1.05);
}

TEST_F(SchedEngineTest, SingleNodePerModelStillWorks)
{
    const WindowScheduler sched(*db_, OptTarget::Edp);
    const auto result = sched.search(wa_, {1, 1}, 1);
    ASSERT_TRUE(result.found);
    for (const ModelPlacement& mp : result.best.placement.models)
        EXPECT_EQ(mp.segments.size(), 1u);
}

TEST_F(SchedEngineTest, EntryChipletInfluencesPlacementCost)
{
    const WindowScheduler sched(*db_, OptTarget::Edp);
    const auto fresh = sched.search(wa_, nodes_, 1, {});
    const auto continued = sched.search(wa_, nodes_, 1, {0, 4});
    ASSERT_TRUE(fresh.found && continued.found);
    // Continuing from on-package data can only help (less DRAM).
    EXPECT_LE(continued.best.cost.dramBytes,
              fresh.best.cost.dramBytes + 1.0);
}

TEST_F(SchedEngineTest, MoreModelsThanFitFailsGracefully)
{
    // Allocation vector with a zero for a present model throws.
    const WindowScheduler sched(*db_, OptTarget::Edp);
    EXPECT_THROW(sched.search(wa_, {0, 3}, 1), FatalError);
}

TEST(SchedEngineSmallMcm, WorksOnMotivational2x2)
{
    Scenario sc;
    sc.name = "tiny";
    sc.models = {zoo::eyeCod(2)};
    sc.finalize();
    const Mcm mcm = templates::motivational2x2();
    const CostDb db(sc, mcm);
    const WindowScheduler sched(db, OptTarget::Edp);
    WindowAssignment wa;
    wa.perModel = {LayerRange{0, sc.models[0].numLayers() - 1}};
    const auto result = sched.search(wa, {2}, 1);
    ASSERT_TRUE(result.found);
    EXPECT_LE(result.best.placement.models[0].segments.size(), 2u);
}

class EvoTest : public SchedEngineTest
{
};

TEST_F(EvoTest, FindsFeasiblePlacement)
{
    const EvolutionaryWindowSearch evo(*db_, OptTarget::Edp,
                                       WindowSearchOptions{});
    const auto result = evo.search(wa_, nodes_, 1);
    ASSERT_TRUE(result.found);
    std::set<int> used;
    for (const ModelPlacement& mp : result.best.placement.models) {
        EXPECT_LE(static_cast<int>(mp.segments.size()),
                  nodes_[mp.modelIdx]);
        for (const PlacedSegment& seg : mp.segments)
            EXPECT_TRUE(used.insert(seg.chiplet).second);
    }
}

TEST_F(EvoTest, DeterministicForFixedSeed)
{
    const EvolutionaryWindowSearch evo(*db_, OptTarget::Edp,
                                       WindowSearchOptions{});
    const auto a = evo.search(wa_, nodes_, 7);
    const auto b = evo.search(wa_, nodes_, 7);
    ASSERT_TRUE(a.found && b.found);
    EXPECT_DOUBLE_EQ(a.best.score, b.best.score);
}

TEST_F(EvoTest, PoolSizeDoesNotChangeResults)
{
    WindowSearchOptions serialOpts;
    const EvolutionaryWindowSearch serial(*db_, OptTarget::Edp,
                                          serialOpts);
    const auto baseline = serial.search(wa_, nodes_, 7);
    ASSERT_TRUE(baseline.found);

    for (int concurrency : {4, 8}) {
        ThreadPool pool(concurrency);
        WindowSearchOptions opts;
        opts.pool = &pool;
        const EvolutionaryWindowSearch parallel(*db_, OptTarget::Edp,
                                                opts);
        const auto result = parallel.search(wa_, nodes_, 7);
        ASSERT_TRUE(result.found);
        EXPECT_EQ(result.best.score, baseline.best.score);
        ASSERT_EQ(result.top.size(), baseline.top.size());
        for (std::size_t i = 0; i < result.top.size(); ++i)
            EXPECT_EQ(result.top[i].score, baseline.top[i].score);
    }
}

TEST_F(EvoTest, SeededGenomeMakesEvoCompetitiveWithBruteForce)
{
    const WindowScheduler brute(*db_, OptTarget::Edp);
    const EvolutionaryWindowSearch evo(*db_, OptTarget::Edp,
                                       WindowSearchOptions{});
    const auto b = brute.search(wa_, nodes_, 1);
    const auto e = evo.search(wa_, nodes_, 1);
    ASSERT_TRUE(b.found && e.found);
    // The EA population is seeded with the quick-ranked segmentation,
    // so it should come within 2x of the brute-force score.
    EXPECT_LE(e.best.score, b.best.score * 2.0);
}

TEST_F(EvoTest, RespectsPopulationAndGenerationKnobs)
{
    EvoOptions opts;
    opts.population = 4;
    opts.generations = 2;
    const EvolutionaryWindowSearch evo(*db_, OptTarget::Edp,
                                       WindowSearchOptions{}, opts);
    EXPECT_TRUE(evo.search(wa_, nodes_, 1).found);
}

TEST_F(EvoTest, RejectsDegenerateOptions)
{
    EvoOptions bad;
    bad.population = 1;
    EXPECT_THROW(EvolutionaryWindowSearch(*db_, OptTarget::Edp,
                                          WindowSearchOptions{}, bad),
                 FatalError);
}

// ---- Path memoization (sched_tree.h PathCache) ---------------------

TEST(PathCache, MatchesDirectEnumerationAndMemoizes)
{
    const Topology topo = Topology::mesh(3, 3);
    std::vector<bool> blocked(9, false);
    blocked[4] = true; // knock out the center

    PathCache cache;
    const auto cached = cache.get(topo, 3, blocked, 96);
    const auto direct = enumeratePathsAllRoots(topo, 3, blocked, 96);
    EXPECT_EQ(*cached, direct);

    // A hit returns the very same enumeration (shared storage).
    const auto again = cache.get(topo, 3, blocked, 96);
    EXPECT_EQ(cached.get(), again.get());

    // Different occupancy or length is a different key.
    blocked[4] = false;
    const auto other = cache.get(topo, 3, blocked, 96);
    EXPECT_NE(other.get(), cached.get());
    EXPECT_EQ(*other, enumeratePathsAllRoots(topo, 3, blocked, 96));
    const auto shorter = cache.get(topo, 2, blocked, 96);
    EXPECT_EQ(*shorter, enumeratePathsAllRoots(topo, 2, blocked, 96));
}

} // namespace
} // namespace scar
