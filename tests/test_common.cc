/**
 * @file
 * Unit tests for the common utilities: errors, logging, RNG, units,
 * table and CSV formatting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/csv.h"
#include "common/error.h"
#include "common/flat_hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"

namespace scar
{
namespace
{

TEST(Error, FatalCarriesMessage)
{
    try {
        fatal("bad config: ", 42);
        FAIL() << "fatal() must throw";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("bad config: 42"),
                  std::string::npos);
    }
}

TEST(Error, PanicIsLogicError)
{
    EXPECT_THROW(panic("broken"), PanicError);
    EXPECT_THROW(panic("broken"), std::logic_error);
}

TEST(Error, RequireMacroPassesAndFails)
{
    EXPECT_NO_THROW(SCAR_REQUIRE(1 + 1 == 2, "math"));
    EXPECT_THROW(SCAR_REQUIRE(false, "nope"), FatalError);
}

TEST(Error, AssertMacroPassesAndFails)
{
    EXPECT_NO_THROW(SCAR_ASSERT(true, "fine"));
    EXPECT_THROW(SCAR_ASSERT(false, "bug"), PanicError);
}

TEST(Logging, LevelFiltering)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    inform("this must not crash while silent");
    setLogLevel(before);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniformInt(-3, 9);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, IndexRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.index(13), 13u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(99);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Units, CycleSecondsRoundTrip)
{
    EXPECT_DOUBLE_EQ(cyclesToSeconds(kClockHz), 1.0);
    EXPECT_DOUBLE_EQ(secondsToCycles(cyclesToSeconds(12345.0)), 12345.0);
}

TEST(Units, NsToCyclesAt500Mhz)
{
    // 500 MHz -> 2 ns per cycle.
    EXPECT_DOUBLE_EQ(nsToCycles(2.0), 1.0);
    EXPECT_DOUBLE_EQ(nsToCycles(35.0), 17.5);
}

TEST(Units, BandwidthConversion)
{
    // 64 GB/s at 500 MHz = 128 bytes/cycle.
    EXPECT_DOUBLE_EQ(gbpsToBytesPerCycle(64.0), 128.0);
}

TEST(Units, EnergyConversions)
{
    EXPECT_DOUBLE_EQ(njToJoules(1.0e9), 1.0);
    EXPECT_DOUBLE_EQ(pjToNj(1000.0), 1.0);
}

TEST(Table, RendersAlignedRows)
{
    TextTable table({"A", "Metric"});
    table.addRow({"x", "1.5"});
    table.addRow({"long-name", "2"});
    const std::string out = table.render();
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("| A "), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, RejectsWrongArity)
{
    TextTable table({"A", "B"});
    EXPECT_THROW(table.addRow({"only-one"}), FatalError);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Csv, WritesHeaderAndEscapes)
{
    const std::string path = "/tmp/scar_test_csv.csv";
    {
        CsvWriter csv(path, {"name", "value"});
        csv.addRow({"plain", "1"});
        csv.addRow({"with,comma", "quote\"inside"});
        EXPECT_TRUE(csv.good());
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "name,value");
    std::getline(in, line);
    EXPECT_EQ(line, "plain,1");
    std::getline(in, line);
    EXPECT_EQ(line, "\"with,comma\",\"quote\"\"inside\"");
    std::remove(path.c_str());
}

TEST(Csv, RejectsWrongArity)
{
    CsvWriter csv("/tmp/scar_test_csv2.csv", {"a"});
    EXPECT_THROW(csv.addRow({"x", "y"}), FatalError);
    std::remove("/tmp/scar_test_csv2.csv");
}

// ---- FlatHashMap (the SoloCache / PathCache backing store) ---------

TEST(FlatHashMap, FindInsertAndGrowth)
{
    FlatHashMap<std::vector<int>, int, IntSequenceHash> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find({1, 2, 3}), nullptr);

    // Enough keys to force several rehashes past the 7/8 load factor.
    for (int i = 0; i < 1000; ++i)
        map.insert({i, i * 31, -i}, i);
    EXPECT_EQ(map.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        const int* value = map.find({i, i * 31, -i});
        ASSERT_NE(value, nullptr) << "lost key " << i;
        EXPECT_EQ(*value, i);
    }
    EXPECT_EQ(map.find({1000, 31000, -1000}), nullptr);
    // Prefix/suffix confusion must not alias.
    EXPECT_EQ(map.find({1, 31}), nullptr);
    EXPECT_EQ(map.find({}), nullptr);
}

TEST(FlatHashMap, DuplicateInsertKeepsFirstValue)
{
    FlatHashMap<std::vector<int>, int, IntSequenceHash> map;
    EXPECT_EQ(map.insert({7, 7}, 1), 1);
    // The memoization caches rely on first-write-wins: racing
    // duplicate computations store identical values, so keeping the
    // first is both cheap and correct.
    EXPECT_EQ(map.insert({7, 7}, 2), 1);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(*map.find({7, 7}), 1);
}

} // namespace
} // namespace scar
