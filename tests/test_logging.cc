/**
 * @file
 * Tests for the leveled logger: level-name parsing, the SCAR_LOG_LEVEL
 * environment knob, and the explicit-override precedence rule.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/logging.h"

namespace scar
{
namespace
{

/** RAII save/restore of the process-wide log level. */
struct LevelGuard
{
    LogLevel saved = logLevel();
    ~LevelGuard() { setLogLevel(saved); }
};

TEST(Logging, ParsesEveryLevelNameCaseInsensitively)
{
    LogLevel level = LogLevel::Warn;
    EXPECT_TRUE(parseLogLevel("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevel("INFO", level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_TRUE(parseLogLevel("Warn", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("eRRor", level));
    EXPECT_EQ(level, LogLevel::Error);
    EXPECT_TRUE(parseLogLevel("silent", level));
    EXPECT_EQ(level, LogLevel::Silent);
}

TEST(Logging, RejectsUnknownNamesWithoutTouchingOut)
{
    LogLevel level = LogLevel::Info;
    EXPECT_FALSE(parseLogLevel("loud", level));
    EXPECT_FALSE(parseLogLevel("", level));
    EXPECT_FALSE(parseLogLevel("warn ", level));
    EXPECT_EQ(level, LogLevel::Info);
}

TEST(Logging, AppliesValidEnvironmentLevel)
{
    LevelGuard guard;
    ASSERT_EQ(setenv("SCAR_LOG_LEVEL", "debug", 1), 0);
    EXPECT_TRUE(applyLogLevelFromEnv());
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    ASSERT_EQ(setenv("SCAR_LOG_LEVEL", "error", 1), 0);
    EXPECT_TRUE(applyLogLevelFromEnv());
    EXPECT_EQ(logLevel(), LogLevel::Error);
    unsetenv("SCAR_LOG_LEVEL");
}

TEST(Logging, IgnoresInvalidOrAbsentEnvironmentLevel)
{
    LevelGuard guard;
    setLogLevel(LogLevel::Info);
    ASSERT_EQ(setenv("SCAR_LOG_LEVEL", "verbose", 1), 0);
    EXPECT_FALSE(applyLogLevelFromEnv());
    EXPECT_EQ(logLevel(), LogLevel::Info);
    unsetenv("SCAR_LOG_LEVEL");
    EXPECT_FALSE(applyLogLevelFromEnv());
    EXPECT_EQ(logLevel(), LogLevel::Info);
}

TEST(Logging, ExplicitSetWinsOverLaterEnvState)
{
    LevelGuard guard;
    ASSERT_EQ(setenv("SCAR_LOG_LEVEL", "debug", 1), 0);
    // setLogLevel after the env apply must stick: the env is read
    // once on first use, never re-applied behind the caller's back.
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    unsetenv("SCAR_LOG_LEVEL");
}

} // namespace
} // namespace scar
