/**
 * @file
 * Tests for the MaestroLite intra-chiplet cost model — in particular
 * the dataflow-affinity properties that drive every scheduling result
 * in the paper:
 *  - GEMM / late-CNN layers (large K*C) favor the NVDLA-like
 *    weight-stationary dataflow;
 *  - early CNN layers (large output grids) favor the Shi-diannao-like
 *    output-stationary dataflow.
 */

#include <gtest/gtest.h>

#include "cost/maestro_lite.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

ChipletSpec
spec(Dataflow df, int pes = 4096)
{
    ChipletSpec s;
    s.dataflow = df;
    s.numPes = pes;
    return s;
}

Layer
convLayer(std::int64_t k, std::int64_t c, std::int64_t r, std::int64_t s,
          std::int64_t y, std::int64_t x, std::int64_t stride = 1)
{
    Layer layer;
    layer.name = "conv";
    layer.type = OpType::Conv2D;
    layer.dims = LayerDims{k, c, r, s, y, x, stride, stride};
    return layer;
}

TEST(MaestroLite, GemmFavorsWeightStationary)
{
    const MaestroLite model;
    const Layer gemm = makeGemmLayer(0, "ffn", 128, 5120, 1280);
    const LayerCost ws = model.evalLayer(gemm, spec(Dataflow::NvdlaWS));
    const LayerCost os = model.evalLayer(gemm, spec(Dataflow::ShiOS));
    // The affinity manifests through utilization/latency (the paper's
    // Table IV shows near-equal energies but ~4x latency gaps).
    EXPECT_LT(ws.intraCycles() * 8.0, os.intraCycles());
    EXPECT_LT(ws.intraEnergyNj, os.intraEnergyNj * 2.0);
    EXPECT_LT(os.intraEnergyNj, ws.intraEnergyNj * 2.0);
    // OS has only M=128 output rows to parallelize.
    EXPECT_LT(os.utilization, 0.05);
    EXPECT_GT(ws.utilization, 0.5);
    // EDP (cycles x energy) strongly favors WS.
    EXPECT_LT(ws.intraCycles() * ws.intraEnergyNj,
              0.2 * os.intraCycles() * os.intraEnergyNj);
}

TEST(MaestroLite, EarlyConvFavorsOutputStationary)
{
    const MaestroLite model;
    const Layer conv1 = convLayer(64, 3, 7, 7, 224, 224, 2);
    const LayerCost ws = model.evalLayer(conv1, spec(Dataflow::NvdlaWS));
    const LayerCost os = model.evalLayer(conv1, spec(Dataflow::ShiOS));
    EXPECT_LT(os.intraCycles(), ws.intraCycles());
    EXPECT_GT(os.utilization, 0.5);
    EXPECT_LT(ws.utilization, 0.1); // K*C = 192 of 4096 PEs
}

TEST(MaestroLite, LateConvFavorsWeightStationary)
{
    const MaestroLite model;
    // res5-style: 7x7 spatial, K*C large.
    const Layer late = convLayer(2048, 512, 1, 1, 7, 7, 1);
    const LayerCost ws = model.evalLayer(late, spec(Dataflow::NvdlaWS));
    const LayerCost os = model.evalLayer(late, spec(Dataflow::ShiOS));
    EXPECT_LT(ws.intraCycles(), os.intraCycles());
    EXPECT_LT(os.utilization, 0.05); // 49 output pixels on 4096 PEs
}

TEST(MaestroLite, UtilizationBounded)
{
    const MaestroLite model;
    for (const Layer& l : zoo::resNet50(1).layers) {
        for (Dataflow df : kAllDataflows) {
            const LayerCost cost = model.evalLayer(l, spec(df));
            EXPECT_GT(cost.utilization, 0.0) << l.name;
            EXPECT_LE(cost.utilization, 1.0 + 1e-9) << l.name;
        }
    }
}

TEST(MaestroLite, ComputeCyclesLowerBound)
{
    // Cycles can never beat macs / numPes.
    const MaestroLite model;
    for (const Layer& l : zoo::googleNet(1).layers) {
        for (Dataflow df : kAllDataflows) {
            const LayerCost cost = model.evalLayer(l, spec(df));
            EXPECT_GE(cost.computeCycles * 4096.0, cost.macs * 0.999)
                << l.name;
        }
    }
}

TEST(MaestroLite, MorePesNeverSlower)
{
    const MaestroLite model;
    const Layer gemm = makeGemmLayer(0, "g", 64, 1024, 1024);
    for (Dataflow df : kAllDataflows) {
        const LayerCost small = model.evalLayer(gemm, spec(df, 256));
        const LayerCost big = model.evalLayer(gemm, spec(df, 4096));
        EXPECT_LE(big.computeCycles, small.computeCycles);
    }
}

TEST(MaestroLite, WeightStationaryReadsWeightsOnce)
{
    const MaestroLite model;
    const Layer gemm = makeGemmLayer(0, "g", 128, 2048, 1024);
    const LayerCost ws = model.evalLayer(gemm, spec(Dataflow::NvdlaWS));
    // WS L2 traffic includes weights exactly once.
    EXPECT_GE(ws.l2AccessBytes, gemm.weightBytes());
}

TEST(MaestroLite, OutputStationaryRestreamsPerSpatialPass)
{
    // A conv whose output grid exceeds the PE array forces multiple
    // OS spatial passes, each re-streaming weights and inputs; the WS
    // mapping covers K*C = 4096 in one pass and reads inputs once.
    const MaestroLite model;
    const Layer conv = convLayer(64, 64, 3, 3, 112, 112);
    const LayerCost ws = model.evalLayer(conv, spec(Dataflow::NvdlaWS));
    const LayerCost os = model.evalLayer(conv, spec(Dataflow::ShiOS));
    EXPECT_GT(os.l2AccessBytes, ws.l2AccessBytes);
    // ceil(112*112 / 4096) = 4 passes of weight streaming; the input
    // tile is read once from L2 (PE-local reuse across passes).
    EXPECT_GE(os.l2AccessBytes, 4.0 * conv.weightBytes() +
                                    conv.inputBytes() +
                                    conv.outputBytes());
}

TEST(MaestroLite, OutputStationaryWritesOutputsOnce)
{
    const MaestroLite model;
    const Layer conv = convLayer(64, 64, 3, 3, 56, 56);
    const LayerCost os = model.evalLayer(conv, spec(Dataflow::ShiOS));
    EXPECT_GE(os.l2AccessBytes, conv.outputBytes());
}

TEST(MaestroLite, PoolIsDataflowAgnostic)
{
    const MaestroLite model;
    Layer pool;
    pool.type = OpType::Pool;
    pool.dims = LayerDims{64, 64, 2, 2, 56, 56, 2, 2};
    const LayerCost a = model.evalLayer(pool, spec(Dataflow::NvdlaWS));
    const LayerCost b = model.evalLayer(pool, spec(Dataflow::ShiOS));
    EXPECT_DOUBLE_EQ(a.computeCycles, b.computeCycles);
    EXPECT_DOUBLE_EQ(a.intraEnergyNj, b.intraEnergyNj);
}

TEST(MaestroLite, DepthwiseHandledPerChannel)
{
    const MaestroLite model;
    Layer dw;
    dw.type = OpType::DepthwiseConv;
    dw.dims = LayerDims{128, 128, 3, 3, 56, 56, 1, 1};
    for (Dataflow df : kAllDataflows) {
        const LayerCost cost = model.evalLayer(dw, spec(df));
        EXPECT_GT(cost.computeCycles, 0.0);
        EXPECT_LE(cost.utilization, 1.0 + 1e-9);
    }
}

TEST(MaestroLite, EnergyScalesWithMacsAndTraffic)
{
    const MaestroLite model;
    const Layer small = makeGemmLayer(0, "s", 16, 64, 64);
    const Layer large = makeGemmLayer(0, "l", 64, 256, 256);
    for (Dataflow df : kAllDataflows) {
        EXPECT_LT(model.evalLayer(small, spec(df)).intraEnergyNj,
                  model.evalLayer(large, spec(df)).intraEnergyNj);
    }
}

TEST(MaestroLite, StreamCyclesReflectBandwidth)
{
    const MaestroLite model;
    const Layer gemm = makeGemmLayer(0, "g", 128, 1024, 1024);
    ChipletSpec fast = spec(Dataflow::NvdlaWS);
    ChipletSpec slow = fast;
    slow.bwNocGBps = fast.bwNocGBps / 4.0;
    const LayerCost a = model.evalLayer(gemm, fast);
    const LayerCost b = model.evalLayer(gemm, slow);
    EXPECT_GT(b.streamCycles, a.streamCycles);
    EXPECT_DOUBLE_EQ(b.computeCycles, a.computeCycles);
}

TEST(MaestroLite, FootprintsMatchLayer)
{
    const MaestroLite model;
    const Layer gemm = makeGemmLayer(0, "g", 32, 128, 256);
    const LayerCost cost = model.evalLayer(gemm, spec(Dataflow::NvdlaWS));
    EXPECT_DOUBLE_EQ(cost.weightBytes, gemm.weightBytes());
    EXPECT_DOUBLE_EQ(cost.inputBytes, gemm.inputBytes());
    EXPECT_DOUBLE_EQ(cost.outputBytes, gemm.outputBytes());
}

} // namespace
} // namespace scar
