/**
 * @file
 * Tests for NoP topologies: mesh XY routing, triangular lattices,
 * adjacency-defined graphs, and routing invariants (property-style
 * over all node pairs).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "arch/topology.h"

namespace scar
{
namespace
{

TEST(TopologyMesh, SizeAndNeighbors)
{
    const Topology t = Topology::mesh(3, 3);
    EXPECT_EQ(t.numNodes(), 9);
    EXPECT_TRUE(t.isMesh());
    // Corner has 2 neighbours, center has 4.
    EXPECT_EQ(t.neighbors(0).size(), 2u);
    EXPECT_EQ(t.neighbors(4).size(), 4u);
}

TEST(TopologyMesh, HopsAreManhattan)
{
    const Topology t = Topology::mesh(3, 3);
    for (int a = 0; a < 9; ++a) {
        for (int b = 0; b < 9; ++b) {
            const int manhattan = std::abs(a % 3 - b % 3) +
                                  std::abs(a / 3 - b / 3);
            EXPECT_EQ(t.hops(a, b), manhattan) << a << "->" << b;
        }
    }
}

TEST(TopologyMesh, XyRouteGoesXThenY)
{
    const Topology t = Topology::mesh(3, 3);
    // 0 (0,0) -> 8 (2,2): X first: 0,1,2 then Y: 5,8.
    const std::vector<int> expected{0, 1, 2, 5, 8};
    EXPECT_EQ(t.route(0, 8), expected);
}

TEST(TopologyMesh, RouteLinksMatchRoute)
{
    const Topology t = Topology::mesh(4, 4);
    const auto links = t.routeLinks(0, 15);
    EXPECT_EQ(static_cast<int>(links.size()), t.hops(0, 15));
    // Links chain: dst of one is src of next.
    for (std::size_t i = 0; i + 1 < links.size(); ++i)
        EXPECT_EQ(links[i].second, links[i + 1].first);
}

class MeshPairTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(MeshPairTest, RoutePropertiesHold)
{
    const auto [w, h] = GetParam();
    const Topology t = Topology::mesh(w, h);
    for (int a = 0; a < t.numNodes(); ++a) {
        for (int b = 0; b < t.numNodes(); ++b) {
            const auto path = t.route(a, b);
            ASSERT_FALSE(path.empty());
            EXPECT_EQ(path.front(), a);
            EXPECT_EQ(path.back(), b);
            EXPECT_EQ(static_cast<int>(path.size()) - 1, t.hops(a, b));
            // Consecutive nodes on the path are adjacent.
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                const auto& nbrs = t.neighbors(path[i]);
                EXPECT_NE(std::find(nbrs.begin(), nbrs.end(),
                                    path[i + 1]),
                          nbrs.end());
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshPairTest,
    ::testing::Values(std::make_pair(2, 2), std::make_pair(3, 3),
                      std::make_pair(6, 6), std::make_pair(1, 4),
                      std::make_pair(5, 2)));

TEST(TopologyTriangular, RowsOf234)
{
    const Topology t = Topology::triangular(2, 3);
    EXPECT_EQ(t.numNodes(), 2 + 3 + 4);
    EXPECT_FALSE(t.isMesh());
    // Top-left node: right neighbour + two below.
    EXPECT_EQ(t.neighbors(0).size(), 3u);
}

TEST(TopologyTriangular, ConnectedWithSymmetricHops)
{
    const Topology t = Topology::triangular(2, 3);
    for (int a = 0; a < t.numNodes(); ++a) {
        for (int b = 0; b < t.numNodes(); ++b) {
            EXPECT_GE(t.hops(a, b), 0);
            EXPECT_EQ(t.hops(a, b), t.hops(b, a));
            EXPECT_EQ(t.hops(a, b) == 0, a == b);
        }
    }
}

TEST(TopologyTriangular, BfsRouteIsShortest)
{
    const Topology t = Topology::triangular(2, 3);
    for (int a = 0; a < t.numNodes(); ++a) {
        for (int b = 0; b < t.numNodes(); ++b) {
            const auto path = t.route(a, b);
            EXPECT_EQ(static_cast<int>(path.size()) - 1, t.hops(a, b));
        }
    }
}

TEST(TopologyAdjacency, CustomGraph)
{
    // A 4-node ring.
    const Topology t = Topology::fromAdjacency(
        {{1, 3}, {0, 2}, {1, 3}, {2, 0}});
    EXPECT_EQ(t.numNodes(), 4);
    EXPECT_EQ(t.hops(0, 2), 2);
    EXPECT_EQ(t.hops(0, 1), 1);
}

TEST(TopologyAdjacency, RejectsDisconnectedGraph)
{
    EXPECT_THROW(Topology::fromAdjacency({{1}, {0}, {3}, {2}}),
                 FatalError);
}

TEST(TopologyAdjacency, RejectsOutOfRangeIndex)
{
    EXPECT_THROW(Topology::fromAdjacency({{5}, {0}}), FatalError);
}

// ---- Precomputed route tables and dense link ids -------------------

TEST(TopologyRouteTable, LinkIdsAreDenseAndInvertible)
{
    const Topology t = Topology::mesh(4, 4);
    // A 4x4 mesh has 2 * (3*4 + 3*4) = 48 directed links.
    EXPECT_EQ(t.numLinks(), 48);
    for (int id = 0; id < t.numLinks(); ++id) {
        const Link& link = t.linkById(id);
        EXPECT_EQ(t.linkId(link.first, link.second), id);
        EXPECT_EQ(t.hops(link.first, link.second), 1);
    }
    // Non-adjacent pairs have no link id.
    EXPECT_EQ(t.linkId(0, 2), -1);
    EXPECT_EQ(t.linkId(0, 5), -1);
}

TEST(TopologyRouteTable, CachedRoutesMatchRouting)
{
    for (const Topology& t :
         {Topology::mesh(4, 4), Topology::triangular(3, 3)}) {
        for (int a = 0; a < t.numNodes(); ++a) {
            for (int b = 0; b < t.numNodes(); ++b) {
                const auto path = t.route(a, b);
                const auto& links = t.routeLinks(a, b);
                const auto& ids = t.routeLinkIds(a, b);
                ASSERT_EQ(links.size(), path.size() - 1);
                ASSERT_EQ(ids.size(), links.size());
                for (std::size_t i = 0; i < links.size(); ++i) {
                    EXPECT_EQ(links[i].first, path[i]);
                    EXPECT_EQ(links[i].second, path[i + 1]);
                    EXPECT_EQ(t.linkById(ids[i]), links[i]);
                }
            }
        }
    }
}

} // namespace
} // namespace scar
