/**
 * @file
 * Tests for NoP topologies: mesh XY routing, triangular lattices,
 * adjacency-defined graphs, and routing invariants (property-style
 * over all node pairs).
 */

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "arch/topology.h"

namespace scar
{
namespace
{

TEST(TopologyMesh, SizeAndNeighbors)
{
    const Topology t = Topology::mesh(3, 3);
    EXPECT_EQ(t.numNodes(), 9);
    EXPECT_TRUE(t.isMesh());
    // Corner has 2 neighbours, center has 4.
    EXPECT_EQ(t.neighbors(0).size(), 2u);
    EXPECT_EQ(t.neighbors(4).size(), 4u);
}

TEST(TopologyMesh, HopsAreManhattan)
{
    const Topology t = Topology::mesh(3, 3);
    for (int a = 0; a < 9; ++a) {
        for (int b = 0; b < 9; ++b) {
            const int manhattan = std::abs(a % 3 - b % 3) +
                                  std::abs(a / 3 - b / 3);
            EXPECT_EQ(t.hops(a, b), manhattan) << a << "->" << b;
        }
    }
}

TEST(TopologyMesh, XyRouteGoesXThenY)
{
    const Topology t = Topology::mesh(3, 3);
    // 0 (0,0) -> 8 (2,2): X first: 0,1,2 then Y: 5,8.
    const std::vector<int> expected{0, 1, 2, 5, 8};
    EXPECT_EQ(t.route(0, 8), expected);
}

TEST(TopologyMesh, RouteLinksMatchRoute)
{
    const Topology t = Topology::mesh(4, 4);
    const auto links = t.routeLinks(0, 15);
    EXPECT_EQ(static_cast<int>(links.size()), t.hops(0, 15));
    // Links chain: dst of one is src of next.
    for (std::size_t i = 0; i + 1 < links.size(); ++i)
        EXPECT_EQ(links[i].second, links[i + 1].first);
}

class MeshPairTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(MeshPairTest, RoutePropertiesHold)
{
    const auto [w, h] = GetParam();
    const Topology t = Topology::mesh(w, h);
    for (int a = 0; a < t.numNodes(); ++a) {
        for (int b = 0; b < t.numNodes(); ++b) {
            const auto path = t.route(a, b);
            ASSERT_FALSE(path.empty());
            EXPECT_EQ(path.front(), a);
            EXPECT_EQ(path.back(), b);
            EXPECT_EQ(static_cast<int>(path.size()) - 1, t.hops(a, b));
            // Consecutive nodes on the path are adjacent.
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                const auto& nbrs = t.neighbors(path[i]);
                EXPECT_NE(std::find(nbrs.begin(), nbrs.end(),
                                    path[i + 1]),
                          nbrs.end());
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshPairTest,
    ::testing::Values(std::make_pair(2, 2), std::make_pair(3, 3),
                      std::make_pair(6, 6), std::make_pair(1, 4),
                      std::make_pair(5, 2)));

TEST(TopologyTriangular, RowsOf234)
{
    const Topology t = Topology::triangular(2, 3);
    EXPECT_EQ(t.numNodes(), 2 + 3 + 4);
    EXPECT_FALSE(t.isMesh());
    // Top-left node: right neighbour + two below.
    EXPECT_EQ(t.neighbors(0).size(), 3u);
}

TEST(TopologyTriangular, ConnectedWithSymmetricHops)
{
    const Topology t = Topology::triangular(2, 3);
    for (int a = 0; a < t.numNodes(); ++a) {
        for (int b = 0; b < t.numNodes(); ++b) {
            EXPECT_GE(t.hops(a, b), 0);
            EXPECT_EQ(t.hops(a, b), t.hops(b, a));
            EXPECT_EQ(t.hops(a, b) == 0, a == b);
        }
    }
}

TEST(TopologyTriangular, BfsRouteIsShortest)
{
    const Topology t = Topology::triangular(2, 3);
    for (int a = 0; a < t.numNodes(); ++a) {
        for (int b = 0; b < t.numNodes(); ++b) {
            const auto path = t.route(a, b);
            EXPECT_EQ(static_cast<int>(path.size()) - 1, t.hops(a, b));
        }
    }
}

TEST(TopologyAdjacency, CustomGraph)
{
    // A 4-node ring.
    const Topology t = Topology::fromAdjacency(
        {{1, 3}, {0, 2}, {1, 3}, {2, 0}});
    EXPECT_EQ(t.numNodes(), 4);
    EXPECT_EQ(t.hops(0, 2), 2);
    EXPECT_EQ(t.hops(0, 1), 1);
}

TEST(TopologyAdjacency, RejectsDisconnectedGraph)
{
    EXPECT_THROW(Topology::fromAdjacency({{1}, {0}, {3}, {2}}),
                 FatalError);
}

TEST(TopologyAdjacency, RejectsOutOfRangeIndex)
{
    EXPECT_THROW(Topology::fromAdjacency({{5}, {0}}), FatalError);
}

// ---- Precomputed route tables and dense link ids -------------------

TEST(TopologyRouteTable, LinkIdsAreDenseAndInvertible)
{
    const Topology t = Topology::mesh(4, 4);
    // A 4x4 mesh has 2 * (3*4 + 3*4) = 48 directed links.
    EXPECT_EQ(t.numLinks(), 48);
    for (int id = 0; id < t.numLinks(); ++id) {
        const Link& link = t.linkById(id);
        EXPECT_EQ(t.linkId(link.first, link.second), id);
        EXPECT_EQ(t.hops(link.first, link.second), 1);
    }
    // Non-adjacent pairs have no link id.
    EXPECT_EQ(t.linkId(0, 2), -1);
    EXPECT_EQ(t.linkId(0, 5), -1);
}

TEST(TopologyRouteTable, CachedRoutesMatchRouting)
{
    for (const Topology& t :
         {Topology::mesh(4, 4), Topology::triangular(3, 3)}) {
        for (int a = 0; a < t.numNodes(); ++a) {
            for (int b = 0; b < t.numNodes(); ++b) {
                const auto path = t.route(a, b);
                const auto& links = t.routeLinks(a, b);
                const auto& ids = t.routeLinkIds(a, b);
                ASSERT_EQ(links.size(), path.size() - 1);
                ASSERT_EQ(ids.size(), links.size());
                for (std::size_t i = 0; i < links.size(); ++i) {
                    EXPECT_EQ(links[i].first, path[i]);
                    EXPECT_EQ(links[i].second, path[i + 1]);
                    EXPECT_EQ(t.linkById(ids[i]), links[i]);
                }
            }
        }
    }
}

// ---- Interconnect classes: torus, express, broadcast ---------------

/** Shared route invariants every topology class must satisfy. */
void
expectRouteInvariants(const Topology& t)
{
    for (int a = 0; a < t.numNodes(); ++a) {
        for (int b = 0; b < t.numNodes(); ++b) {
            const auto path = t.route(a, b);
            ASSERT_FALSE(path.empty());
            EXPECT_EQ(path.front(), a);
            EXPECT_EQ(path.back(), b);
            EXPECT_EQ(static_cast<int>(path.size()) - 1, t.hops(a, b));
            const auto& links = t.routeLinks(a, b);
            const auto& ids = t.routeLinkIds(a, b);
            ASSERT_EQ(links.size(), path.size() - 1);
            ASSERT_EQ(ids.size(), links.size());
            for (std::size_t i = 0; i < links.size(); ++i) {
                EXPECT_EQ(links[i].first, path[i]);
                EXPECT_EQ(links[i].second, path[i + 1]);
                EXPECT_EQ(t.linkById(ids[i]), links[i]);
                EXPECT_EQ(t.linkId(links[i].first, links[i].second),
                          ids[i]);
            }
        }
    }
}

TEST(TopologyTorus, WrapLinksAndKind)
{
    const Topology t = Topology::torus(3, 3);
    EXPECT_EQ(t.kind(), TopologyKind::Torus);
    EXPECT_FALSE(t.isMesh());
    EXPECT_EQ(t.numNodes(), 9);
    // Every torus node has exactly 4 neighbours (wraparound rows and
    // columns close the mesh edges).
    for (int n = 0; n < t.numNodes(); ++n)
        EXPECT_EQ(t.neighbors(n).size(), 4u) << "node " << n;
    // Opposite corners are 2 hops via the wraps, not 4.
    EXPECT_EQ(t.hops(0, 8), 2);
}

TEST(TopologyTorus, RoutesNeverExceedMeshHops)
{
    for (const auto& [w, h] :
         {std::pair{3, 3}, std::pair{4, 3}, std::pair{5, 4},
          std::pair{2, 4}}) {
        const Topology torus = Topology::torus(w, h);
        const Topology mesh = Topology::mesh(w, h);
        for (int a = 0; a < torus.numNodes(); ++a) {
            for (int b = 0; b < torus.numNodes(); ++b) {
                EXPECT_LE(torus.hops(a, b), mesh.hops(a, b))
                    << a << "->" << b << " on " << w << "x" << h;
            }
        }
        expectRouteInvariants(torus);
    }
}

TEST(TopologyTorus, Width2HasNoDuplicateLinks)
{
    // A dimension of 2 must not add wrap links on top of the mesh
    // links joining the same nodes.
    const Topology t = Topology::torus(2, 4);
    for (int n = 0; n < t.numNodes(); ++n) {
        std::vector<int> nbrs = t.neighbors(n);
        std::sort(nbrs.begin(), nbrs.end());
        EXPECT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()),
                  nbrs.end())
            << "duplicate adjacency at node " << n;
    }
}

TEST(TopologyExpress, LinksOnlyShortenPaths)
{
    const Topology mesh = Topology::mesh(3, 3);
    const Topology express =
        Topology::expressMesh(3, 3, {{0, 8}, {2, 6}});
    EXPECT_EQ(express.kind(), TopologyKind::ExpressMesh);
    EXPECT_EQ(express.expressLinks().size(), 2u);
    bool somewhereShorter = false;
    for (int a = 0; a < 9; ++a) {
        for (int b = 0; b < 9; ++b) {
            EXPECT_LE(express.hops(a, b), mesh.hops(a, b));
            somewhereShorter |= express.hops(a, b) < mesh.hops(a, b);
        }
    }
    EXPECT_TRUE(somewhereShorter);
    EXPECT_EQ(express.hops(0, 8), 1);
    expectRouteInvariants(express);
}

TEST(TopologyExpress, RejectsDuplicateOfMeshLink)
{
    EXPECT_THROW(Topology::expressMesh(3, 3, {{0, 1}}), FatalError);
    EXPECT_THROW(Topology::expressMesh(3, 3, {{4, 4}}), FatalError);
}

TEST(TopologyBroadcast, PlaneLinksAreOneHopAndTagged)
{
    std::vector<int> all(9);
    for (int i = 0; i < 9; ++i)
        all[i] = i;
    const Topology t = Topology::broadcastMesh(3, 3, all);
    EXPECT_EQ(t.kind(), TopologyKind::BroadcastMesh);
    EXPECT_TRUE(t.hasBroadcastPlane());
    EXPECT_EQ(t.numMedia(), 1);
    // Every pair is now at most 1 hop apart.
    for (int a = 0; a < 9; ++a)
        for (int b = 0; b < 9; ++b)
            EXPECT_EQ(t.hops(a, b), a == b ? 0 : 1);
    // Mesh links stay wired (-1); the non-mesh pairs ride the plane.
    EXPECT_EQ(t.linkMedium(t.linkId(0, 1)), -1);
    EXPECT_GE(t.linkId(0, 8), 0);
    EXPECT_EQ(t.linkMedium(t.linkId(0, 8)), 0);
    expectRouteInvariants(t);
}

TEST(TopologyBroadcast, PartialPlaneMembership)
{
    // Plane over the four corners only.
    const Topology t = Topology::broadcastMesh(3, 3, {0, 2, 6, 8});
    EXPECT_EQ(t.hops(0, 8), 1);
    EXPECT_EQ(t.hops(2, 6), 1);
    // Non-members keep mesh distances.
    EXPECT_EQ(t.hops(1, 7), 2);
    // Corner-to-center is unchanged: the plane only joins members.
    EXPECT_EQ(t.hops(0, 4), 2);
    expectRouteInvariants(t);
}

TEST(TopologyBroadcast, EachDestinationTouchedExactlyOnce)
{
    // A broadcast from a plane member reaches each destination over
    // exactly one plane (or wired) hop: for every destination, the
    // route is a single link, and distinct destinations use distinct
    // links — the "touch each destination exactly once" invariant of
    // the one-to-many flow class.
    std::vector<int> all(9);
    for (int i = 0; i < 9; ++i)
        all[i] = i;
    const Topology t = Topology::broadcastMesh(3, 3, all);
    const int src = 4;
    std::vector<int> seenLinks;
    for (int dst = 0; dst < 9; ++dst) {
        if (dst == src)
            continue;
        const auto& ids = t.routeLinkIds(src, dst);
        ASSERT_EQ(ids.size(), 1u) << "dst " << dst;
        seenLinks.push_back(ids.front());
    }
    std::sort(seenLinks.begin(), seenLinks.end());
    EXPECT_EQ(std::adjacent_find(seenLinks.begin(), seenLinks.end()),
              seenLinks.end());
    EXPECT_EQ(seenLinks.size(), 8u);
}

TEST(TopologyBroadcast, RejectsBadMembers)
{
    EXPECT_THROW(Topology::broadcastMesh(3, 3, {0}), FatalError);
    EXPECT_THROW(Topology::broadcastMesh(3, 3, {0, 0}), FatalError);
    EXPECT_THROW(Topology::broadcastMesh(3, 3, {2, 0}), FatalError);
    EXPECT_THROW(Topology::broadcastMesh(3, 3, {0, 9}), FatalError);
}

TEST(TopologyKindNames, AreStable)
{
    EXPECT_STREQ(topologyKindName(TopologyKind::Mesh), "mesh");
    EXPECT_STREQ(topologyKindName(TopologyKind::Torus), "torus");
    EXPECT_STREQ(topologyKindName(TopologyKind::ExpressMesh),
                 "express-mesh");
    EXPECT_STREQ(topologyKindName(TopologyKind::BroadcastMesh),
                 "broadcast-mesh");
    EXPECT_STREQ(topologyKindName(TopologyKind::Generic), "generic");
}

} // namespace
} // namespace scar
