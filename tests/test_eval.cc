/**
 * @file
 * Tests for the evaluation substrate: metrics, Pareto extraction,
 * scenario suite, and the schedule reporters.
 */

#include <gtest/gtest.h>

#include "arch/mcm_templates.h"
#include "eval/metrics.h"
#include "eval/pareto.h"
#include "eval/reporter.h"
#include "eval/scenario_suite.h"
#include "sched/scar.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

TEST(Metrics, EdpIsProduct)
{
    const Metrics m{2.0, 3.0};
    EXPECT_DOUBLE_EQ(m.edp(), 6.0);
    EXPECT_DOUBLE_EQ(m.value(OptTarget::Latency), 2.0);
    EXPECT_DOUBLE_EQ(m.value(OptTarget::Energy), 3.0);
    EXPECT_DOUBLE_EQ(m.value(OptTarget::Edp), 6.0);
}

TEST(Pareto, DominanceDefinition)
{
    EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}));
    EXPECT_TRUE(dominates({1.0, 2.0}, {2.0, 2.0}));
    EXPECT_FALSE(dominates({1.0, 3.0}, {2.0, 2.0}));
    EXPECT_FALSE(dominates({2.0, 2.0}, {2.0, 2.0})); // equal: no
}

TEST(Pareto, FrontIsNonDominatedAndSorted)
{
    const std::vector<Metrics> pts{{3.0, 1.0}, {1.0, 3.0}, {2.0, 2.0},
                                   {3.0, 3.0}, {2.5, 1.5}};
    const auto front = paretoFront(pts);
    ASSERT_EQ(front.size(), 4u); // (3,3) is dominated
    for (std::size_t i = 0; i + 1 < front.size(); ++i) {
        EXPECT_LT(front[i].latencySec, front[i + 1].latencySec);
        EXPECT_GT(front[i].energyJ, front[i + 1].energyJ);
    }
    for (const Metrics& a : front) {
        for (const Metrics& b : pts)
            EXPECT_FALSE(dominates(b, a) && true);
    }
}

TEST(Pareto, SinglePointFront)
{
    const auto front = paretoFront({{1.0, 1.0}});
    EXPECT_EQ(front.size(), 1u);
}

TEST(Pareto, DuplicatePointsCollapse)
{
    const auto front = paretoFront({{1.0, 1.0}, {1.0, 1.0}});
    EXPECT_EQ(front.size(), 1u);
}

class SuiteTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SuiteTest, ScenarioMatchesTable3)
{
    const Scenario sc = suite::byIndex(GetParam());
    EXPECT_FALSE(sc.models.empty());
    EXPECT_GT(sc.totalLayers(), 0);
    EXPECT_STRNE(suite::scenarioLabel(GetParam()), "?");
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, SuiteTest,
                         ::testing::Range(1, 11));

TEST(Suite, Scenario1HasGptAndBert)
{
    const Scenario sc = suite::datacenterScenario(1);
    ASSERT_EQ(sc.models.size(), 2u);
    EXPECT_EQ(sc.models[0].name, "GPT-L");
    EXPECT_EQ(sc.models[0].batch, 1);
    EXPECT_EQ(sc.models[1].name, "BERT-L");
    EXPECT_EQ(sc.models[1].batch, 3);
}

TEST(Suite, Scenario5HasSixModels)
{
    EXPECT_EQ(suite::datacenterScenario(5).models.size(), 6u);
}

TEST(Suite, ArvrBatchesMatchTable3)
{
    const Scenario sc = suite::arvrScenario(10);
    ASSERT_EQ(sc.models.size(), 2u);
    EXPECT_EQ(sc.models[0].batch, 60); // EyeCod
    EXPECT_EQ(sc.models[1].batch, 45); // HandSP
}

TEST(Suite, InvalidIndexThrows)
{
    EXPECT_THROW(suite::byIndex(0), FatalError);
    EXPECT_THROW(suite::byIndex(11), FatalError);
    EXPECT_THROW(suite::datacenterScenario(6), FatalError);
    EXPECT_THROW(suite::arvrScenario(5), FatalError);
}

TEST(Suite, MotivationalMatchesFigure2)
{
    const Scenario sc = suite::motivational();
    ASSERT_EQ(sc.models.size(), 2u);
    EXPECT_EQ(sc.models[0].numLayers(), 3); // ResNet block convs
    EXPECT_EQ(sc.models[1].numLayers(), 1); // GPT FFN
    EXPECT_EQ(sc.models[1].layers[0].type, OpType::Gemm);
}

TEST(Reporter, DescribesScheduleAndBreakdown)
{
    Scenario sc;
    sc.name = "rep";
    sc.models = {zoo::eyeCod(2), zoo::handSP(1)};
    sc.finalize();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    Scar scar(sc, mcm, ScarOptions{});
    const ScheduleResult result = scar.run();

    const std::string sched = describeSchedule(sc, mcm, result);
    EXPECT_NE(sched.find("EyeCod"), std::string::npos);
    EXPECT_NE(sched.find("HandSP"), std::string::npos);
    EXPECT_NE(sched.find("chpl"), std::string::npos);
    EXPECT_NE(sched.find("EDP"), std::string::npos);

    const std::string breakdown = describeWindowBreakdown(sc, result);
    EXPECT_NE(breakdown.find("ideal tot"), std::string::npos);
    EXPECT_NE(breakdown.find("Window"), std::string::npos);
}

} // namespace
} // namespace scar
