/**
 * @file
 * Tests for request-level boundary preemption: the executor's
 * suspend/resume cursor mechanics, the admission urgency policy, and
 * the fleet-level behavior — an urgent AR/VR request interrupting a
 * long datacenter replay at a window boundary, the degenerate
 * no-op cases, resume safety under LRU eviction, the byte-identical
 * disabled path, and determinism across worker-pool sizes.
 */

#include <gtest/gtest.h>

#include "arch/mcm_templates.h"
#include "common/error.h"
#include "common/units.h"
#include "eval/reporter.h"
#include "runtime/fleet.h"
#include "runtime/serving_sim.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace runtime
{
namespace
{

Scenario
mixOf(std::vector<Model> models)
{
    Scenario sc;
    sc.name = "mix";
    sc.models = std::move(models);
    return sc;
}

/**
 * A hand-built 3-window schedule (1000 cycles per window): model 0
 * completes in window 0, model 1 in window 2. Small enough to reason
 * about every boundary instant exactly.
 */
std::shared_ptr<const CachedSchedule>
threeWindowSchedule(const Scenario& mix)
{
    return makeCachedSchedule(mix, [](const Scenario& m) {
        ScheduleResult result;
        for (int w = 0; w < 3; ++w) {
            ScheduledWindow sw;
            sw.cost.latencyCycles = 1000.0;
            const int model = w == 0 ? 0 : 1;
            ModelPlacement mp;
            mp.modelIdx = model;
            mp.segments.push_back(
                {LayerRange{0, m.models[model].numLayers() - 1}, 0});
            sw.placement.models.push_back(mp);
            result.windows.push_back(sw);
        }
        return result;
    });
}

Dispatch
twoModelDispatch(const Scenario& mix)
{
    Dispatch dispatch;
    dispatch.mix = mix;
    for (int m = 0; m < mix.numModels(); ++m) {
        Request req;
        req.id = m;
        req.modelIdx = m;
        req.arrivalSec = 0.0;
        BatchGroup group;
        group.catalogIdx = m;
        group.batch = 1;
        group.requests.push_back(req);
        dispatch.catalogIdx.push_back(m);
        dispatch.groups.push_back(std::move(group));
    }
    return dispatch;
}

TEST(Executor, WindowBoundariesExposeStableCutPoints)
{
    const Scenario mix = mixOf({zoo::eyeCod(2), zoo::handSP(2)});
    const auto schedule = threeWindowSchedule(mix);
    const auto boundaries = windowBoundaries(schedule->result);
    ASSERT_EQ(boundaries.size(), 3u);
    for (int w = 0; w < 3; ++w) {
        EXPECT_EQ(boundaries[w].windowIdx, w);
        EXPECT_DOUBLE_EQ(boundaries[w].windowCycles, 1000.0);
        EXPECT_DOUBLE_EQ(boundaries[w].startCycles, w * 1000.0);
        EXPECT_DOUBLE_EQ(boundaries[w].endCycles, (w + 1) * 1000.0);
        EXPECT_EQ(boundaries[w].segments, 1);
        EXPECT_EQ(boundaries[w].last, w == 2);
    }
    // The replay view derives its timings from the same metadata.
    ASSERT_EQ(schedule->windowSec.size(), 3u);
    for (int w = 0; w < 3; ++w)
        EXPECT_DOUBLE_EQ(schedule->windowSec[w],
                         cyclesToSeconds(1000.0));
}

TEST(Executor, SuspendResumeContinuesFromSavedCursor)
{
    const Scenario mix = mixOf({zoo::eyeCod(2), zoo::handSP(2)});
    const auto schedule = threeWindowSchedule(mix);
    const double w = schedule->windowSec[0];

    ReplayExecutor executor;
    executor.start(schedule, twoModelDispatch(mix), /*startSec=*/0.0);
    EXPECT_EQ(executor.windowsRemaining(), 3u);

    // Crossing window 0 completes model 0's request, unpreempted.
    WindowTick tick = executor.advance();
    ASSERT_EQ(tick.completed.size(), 1u);
    EXPECT_EQ(tick.completed[0].modelIdx, 0);
    EXPECT_FALSE(tick.completed[0].preempted);
    EXPECT_FALSE(tick.dispatchDone);
    EXPECT_EQ(executor.windowsRemaining(), 2u);

    // Suspend at the boundary: two windows detach, the still-riding
    // request is marked preempted, and the executor frees up.
    SuspendedReplay suspended = executor.suspend();
    EXPECT_FALSE(executor.busy());
    EXPECT_EQ(suspended.window, 1u);
    EXPECT_DOUBLE_EQ(suspended.remainingSec, 2.0 * w);
    const long dispatchesAfterSuspend = executor.dispatchCount();

    // Resume later: the next boundary lands one window after the
    // resume instant, the cursor picks up where it left off, and no
    // new dispatch is counted.
    executor.resume(std::move(suspended), /*startSec=*/5.0);
    EXPECT_TRUE(executor.busy());
    EXPECT_EQ(executor.dispatchCount(), dispatchesAfterSuspend);
    EXPECT_DOUBLE_EQ(executor.nextBoundarySec(), 5.0 + w);

    tick = executor.advance(); // window 1: nothing completes
    EXPECT_TRUE(tick.completed.empty());
    tick = executor.advance(); // window 2: model 1, preempted
    ASSERT_EQ(tick.completed.size(), 1u);
    EXPECT_EQ(tick.completed[0].modelIdx, 1);
    EXPECT_TRUE(tick.completed[0].preempted);
    EXPECT_DOUBLE_EQ(tick.completed[0].completionSec, 5.0 + 2.0 * w);
    // The original dispatch instant survives the round trip.
    EXPECT_DOUBLE_EQ(tick.completed[0].dispatchSec, 0.0);
    EXPECT_TRUE(tick.dispatchDone);
    EXPECT_FALSE(executor.busy());
}

TEST(Admission, UrgentDispatchBoardsOnlyUrgentModels)
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::bertLarge(8); // loose deadline
    catalog[1].model = zoo::googleNet(4); // tight deadline
    AdmissionController admission(catalog);

    auto enqueue = [&](int model, double arrival, double deadline) {
        Request req;
        req.modelIdx = model;
        req.arrivalSec = arrival;
        req.deadlineSec = deadline;
        admission.enqueue(req);
    };
    enqueue(0, 0.0, 10.0);   // datacenter, hours of slack
    enqueue(1, 0.0, 0.05);   // XR frame, 50 ms

    // Urgency crosses at deadline - slack (same expression as the
    // fleet's urgency timer; probe just off the FP knife edge).
    EXPECT_DOUBLE_EQ(admission.earliestDeadlineSec(), 0.05);
    EXPECT_FALSE(admission.urgentQueued(0.029, 0.02));
    EXPECT_TRUE(admission.urgentQueued(0.031, 0.02));

    const Scenario urgentMix = admission.peekUrgentMix(0.031, 0.02);
    ASSERT_EQ(urgentMix.numModels(), 1);
    EXPECT_EQ(urgentMix.models[0].name, catalog[1].model.name);

    Dispatch dispatch = admission.formUrgentDispatch(0.031, 0.02);
    ASSERT_EQ(dispatch.groups.size(), 1u);
    EXPECT_EQ(dispatch.catalogIdx[0], 1);
    // The datacenter request stays queued, still aging toward its
    // normal forced-dispatch timer.
    EXPECT_EQ(admission.queuedCount(), 1);
    EXPECT_FALSE(admission.urgentQueued(0.031, 0.02));
}

/**
 * The headline scenario: a lone XR frame request lands right after a
 * long 5-window BERT replay begins. Without preemption it waits out
 * the full ~86 ms replay and blows its 50 ms deadline; with boundary
 * preemption it cuts in at the next ~17 ms boundary and meets it,
 * while the preempted BERT batch still completes (resume from the
 * saved cursor, no re-solve).
 */
TEST(Preemption, UrgentRequestPreemptsLongReplay)
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::bertLarge(8);
    catalog[0].sloSec = 1.0;
    catalog[1].model = zoo::googleNet(4);
    catalog[1].sloSec = 0.05; // 20 fps frame deadline

    std::vector<std::pair<double, int>> arrivals;
    for (int i = 0; i < 8; ++i)
        arrivals.push_back({0.0, 0}); // full BERT batch at t = 0
    arrivals.push_back({0.005, 1});   // XR frame mid-replay
    const auto trace = traceFromArrivals(catalog, arrivals);

    auto runWith = [&](bool enabled) {
        FleetOptions options;
        options.shards = 1;
        options.serving.preemption.enabled = enabled;
        options.serving.preemption.slackThresholdSec = 0.03;
        options.serving.preemption.resumeOverheadSec = 0.002;
        FleetSimulator fleet(catalog, templates::hetSides3x3(),
                             options);
        return fleet.run(trace);
    };

    const ServingReport off = runWith(false);
    EXPECT_EQ(off.completed, 9);
    EXPECT_GE(off.sloViolations, 1)
        << "the XR frame must miss behind the full BERT replay";
    EXPECT_EQ(off.preemptions, 0);
    EXPECT_FALSE(off.preemptionEnabled);

    const ServingReport on = runWith(true);
    EXPECT_EQ(on.completed, 9);
    EXPECT_EQ(on.sloViolations, 0)
        << "boundary preemption must rescue the XR frame";
    EXPECT_EQ(on.preemptions, 1);
    EXPECT_TRUE(on.preemptionEnabled);
    // All 8 BERT requests rode the suspended replay.
    EXPECT_EQ(on.preemptedRequests, 8);
    EXPECT_GT(on.preemptedP99Sec, 0.0);
    EXPECT_NEAR(on.resumeOverheadSec, 0.002, 1e-12);
    ASSERT_EQ(on.shards.size(), 1u);
    EXPECT_EQ(on.shards[0].preemptions, 1);
}

/**
 * Preempt-at-last-window degenerates to a no-op: a single-window
 * replay offers no interior boundary, so an urgent arrival during it
 * simply waits for the (imminent) natural completion — no suspension
 * is recorded and everything still completes.
 */
TEST(Preemption, SingleWindowReplayIsNeverPreempted)
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::googleNet(4); // solo mix: 1 window
    catalog[0].sloSec = 1.0;
    catalog[1].model = zoo::eyeCod(2);
    catalog[1].sloSec = 0.05;

    std::vector<std::pair<double, int>> arrivals = {
        {0.0, 0}, {0.0, 0}, {0.0, 0}, {0.0, 0}, // full googleNet batch
        {0.0005, 1},                            // urgent mid-replay
    };
    const auto trace = traceFromArrivals(catalog, arrivals);

    FleetOptions options;
    options.shards = 1;
    options.serving.preemption.enabled = true;
    options.serving.preemption.slackThresholdSec = 0.06; // instantly urgent
    options.serving.preemption.resumeOverheadSec = 0.002;
    FleetSimulator fleet(catalog, templates::hetSides3x3(), options);
    const ServingReport report = fleet.run(trace);

    EXPECT_EQ(report.completed, 5);
    EXPECT_EQ(report.preemptions, 0)
        << "a replay in its last window frees at that boundary "
           "anyway — suspending it would be pure overhead";
    EXPECT_EQ(report.preemptedRequests, 0);
    EXPECT_DOUBLE_EQ(report.resumeOverheadSec, 0.0);
}

/**
 * Resume safety under LRU pressure: with a capacity-1 cache, solving
 * the urgent mix evicts the preempted schedule's cache entry while
 * the replay sits suspended. The SuspendedReplay pins the schedule,
 * so the resume completes without re-solving or crashing; the *next*
 * dispatch of the evicted mix re-solves through the normal miss path.
 */
TEST(Preemption, ResumeSurvivesEvictionOfPreemptedScheduleEntry)
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::bertLarge(8);
    catalog[0].sloSec = 10.0;
    catalog[1].model = zoo::googleNet(4);
    catalog[1].sloSec = 0.05;

    std::vector<std::pair<double, int>> arrivals;
    for (int i = 0; i < 8; ++i)
        arrivals.push_back({0.0, 0});
    arrivals.push_back({0.005, 1}); // preempts, evicts BERT's entry
    for (int i = 0; i < 8; ++i)
        arrivals.push_back({0.5, 0}); // BERT again: must re-solve
    const auto trace = traceFromArrivals(catalog, arrivals);

    FleetOptions options;
    options.shards = 1;
    options.serving.cacheCapacity = 1;
    options.serving.preemption.enabled = true;
    options.serving.preemption.slackThresholdSec = 0.03;
    options.serving.preemption.resumeOverheadSec = 0.002;
    FleetSimulator fleet(catalog, templates::hetSides3x3(), options);
    const ServingReport report = fleet.run(trace);

    EXPECT_EQ(report.completed, 17);
    EXPECT_EQ(report.preemptions, 1);
    EXPECT_GE(report.cache.evictions, 2);
    // BERT solved twice (initial + after eviction), XR once.
    EXPECT_EQ(report.cache.misses, 3);
    EXPECT_EQ(report.sloViolations, 0);
}

/**
 * The disabled path is the pre-preemption runtime, byte for byte:
 * even with every preemption knob set, enabled = false must render
 * the identical serving report (rows, columns, and numbers) as a
 * default-constructed configuration.
 */
TEST(Preemption, DisabledRendersByteIdenticalReports)
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::eyeCod(4);
    catalog[0].rateRps = 200.0;
    catalog[0].sloSec = 0.05;
    catalog[1].model = zoo::handSP(2);
    catalog[1].rateRps = 100.0;
    catalog[1].sloSec = 0.02;
    const auto trace = poissonTrace(catalog, 300, 21);

    auto renderWith = [&](PreemptionOptions preemption) {
        FleetOptions options;
        options.shards = 2;
        options.routing = RoutingPolicy::BestFit;
        options.serving.modeledSolveSec = 0.01;
        options.serving.switchOverheadSec = 0.002;
        options.serving.admission.maxQueueDelaySec = 0.005;
        options.serving.preemption = preemption;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        return describeServingReport(fleet.run(trace));
    };

    PreemptionOptions armedButDisabled;
    armedButDisabled.enabled = false;
    armedButDisabled.slackThresholdSec = 0.5; // would fire constantly
    armedButDisabled.resumeOverheadSec = 0.01;
    EXPECT_EQ(renderWith(PreemptionOptions{}),
              renderWith(armedButDisabled));
}

/** Virtual-time preemption behavior must not depend on wall-clock
 *  solve concurrency. */
TEST(Preemption, DeterministicAcrossThreadCounts)
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::eyeCod(4);
    catalog[0].rateRps = 300.0;
    catalog[0].sloSec = 1.0;
    catalog[1].model = zoo::handSP(2);
    catalog[1].rateRps = 150.0;
    catalog[1].sloSec = 0.02; // tight: drives urgency regularly
    const auto trace = poissonTrace(catalog, 250, 5);

    auto runWith = [&](ThreadPool& pool) {
        FleetOptions options;
        options.shards = 2;
        options.routing = RoutingPolicy::LeastLoaded;
        options.serving.pool = &pool;
        options.serving.modeledSolveSec = 0.01;
        options.serving.switchOverheadSec = 0.002;
        options.serving.admission.maxQueueDelaySec = 0.005;
        options.serving.preemption.enabled = true;
        options.serving.preemption.slackThresholdSec = 0.01;
        options.serving.preemption.resumeOverheadSec = 0.002;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        return fleet.run(trace);
    };

    ThreadPool serial(1);
    ThreadPool wide(8);
    const ServingReport a = runWith(serial);
    const ServingReport b = runWith(wide);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.preemptedRequests, b.preemptedRequests);
    EXPECT_DOUBLE_EQ(a.p99LatencySec, b.p99LatencySec);
    EXPECT_DOUBLE_EQ(a.meanLatencySec, b.meanLatencySec);
    EXPECT_DOUBLE_EQ(a.throughputRps, b.throughputRps);
    EXPECT_DOUBLE_EQ(a.resumeOverheadSec, b.resumeOverheadSec);
    EXPECT_DOUBLE_EQ(a.preemptedP99Sec, b.preemptedP99Sec);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
    for (std::size_t s = 0; s < a.shards.size(); ++s) {
        EXPECT_EQ(a.shards[s].preemptions, b.shards[s].preemptions);
        EXPECT_DOUBLE_EQ(a.shards[s].busySec, b.shards[s].busySec);
    }
}

/**
 * Composition with cost-aware routing: with preemption enabled on a
 * BestFit fleet, urgent traffic and datacenter traffic coexist — the
 * run completes everything, preemption fires, and the preempted
 * datacenter batches still finish (their requests are flagged).
 */
TEST(Preemption, ComposesWithBestFitRouting)
{
    // Two heavy datacenter models (bertBase would free a shard
    // before urgency even triggers) and one XR frame model.
    std::vector<ServedModel> catalog(3);
    catalog[0].model = zoo::bertLarge(8);
    catalog[0].sloSec = 1.0;
    catalog[1].model = zoo::gptL(8);
    catalog[1].sloSec = 1.0;
    catalog[2].model = zoo::googleNet(4);
    catalog[2].sloSec = 0.05;

    // Both packages busy with BERT batches, then XR frames that must
    // preempt (no idle shard until ~86 ms).
    std::vector<std::pair<double, int>> arrivals;
    for (int i = 0; i < 8; ++i)
        arrivals.push_back({0.0, 0});
    for (int i = 0; i < 8; ++i)
        arrivals.push_back({0.0001, 1});
    arrivals.push_back({0.01, 2});
    arrivals.push_back({0.012, 2});
    const auto trace = traceFromArrivals(catalog, arrivals);

    FleetOptions options;
    options.shardTemplates = {
        templates::simba3x3(Dataflow::NvdlaWS),
        templates::hetSides3x3()};
    options.routing = RoutingPolicy::BestFit;
    // No deferral: with it on, BestFit parks the second BERT batch
    // waiting for the faster package and the XR frames find an idle
    // shard — a legitimate composition outcome, but this test forces
    // the both-shards-busy case where preemption must fire.
    options.bestFitDefer = false;
    options.serving.switchOverheadSec = 0.002;
    options.serving.preemption.enabled = true;
    options.serving.preemption.slackThresholdSec = 0.03;
    options.serving.preemption.resumeOverheadSec = 0.002;
    FleetSimulator fleet(catalog, templates::hetSides3x3(), options);
    const ServingReport report = fleet.run(trace);

    EXPECT_EQ(report.completed, 18);
    EXPECT_GE(report.preemptions, 1);
    EXPECT_GE(report.preemptedRequests, 8);
    // The XR frames made their deadlines through the fast lane.
    long xrViolations = 0;
    for (const Request& req : fleet.records()) {
        if (req.modelIdx == 2 && req.sloViolated())
            ++xrViolations;
    }
    EXPECT_EQ(xrViolations, 0);
}

} // namespace
} // namespace runtime
} // namespace scar
