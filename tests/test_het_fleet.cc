/**
 * @file
 * Tests for heterogeneous multi-MCM fleets: per-shard package
 * templates, (mix, package)-keyed schedule caches (different
 * templates must never share a cached schedule; identical shards
 * behind a shared cache must still deduplicate), the cost-aware
 * BestFit routing policy and its WindowEvaluator-based completion
 * estimates, and the no-wasted-speculative-solve contract.
 */

#include <gtest/gtest.h>

#include "arch/mcm_templates.h"
#include "common/error.h"
#include "runtime/fleet.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace runtime
{
namespace
{

/** One tiny model at batch cap 1: every dispatch forms the same mix,
 *  so cache sharing is decided purely by the package half of the key. */
std::vector<ServedModel>
singleModelCatalog()
{
    std::vector<ServedModel> catalog(1);
    catalog[0].model = zoo::eyeCod(1);
    catalog[0].rateRps = 100.0;
    catalog[0].sloSec = 0.5;
    return catalog;
}

std::vector<ServedModel>
twoModelCatalog()
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::eyeCod(4);
    catalog[0].rateRps = 200.0;
    catalog[0].sloSec = 0.05;
    catalog[1].model = zoo::handSP(2);
    catalog[1].rateRps = 100.0;
    catalog[1].sloSec = 0.05;
    return catalog;
}

/** A fast (many-PE) and a slow (few-PE) package of the same shape. */
Mcm
fastPackage()
{
    return templates::simba3x3(Dataflow::NvdlaWS, 1024);
}

Mcm
slowPackage()
{
    return templates::simba3x3(Dataflow::NvdlaWS, 64);
}

TEST(HetFleet, PerShardTemplatesServeAndReportTheirNames)
{
    const auto catalog = twoModelCatalog();
    const auto trace = poissonTrace(catalog, 300, 31);
    FleetOptions options;
    options.shardTemplates = {
        templates::hetSides3x3(templates::kArvrPes),
        templates::simba3x3(Dataflow::ShiOS, templates::kArvrPes)};
    options.routing = RoutingPolicy::RoundRobin;
    options.serving.admission.maxQueueDelaySec = 0.005;

    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    ASSERT_EQ(fleet.shardCount(), 2);
    EXPECT_EQ(fleet.mcm(0).name(),
              templates::hetSides3x3(templates::kArvrPes).name());
    EXPECT_EQ(fleet.mcm(1).name(),
              templates::simba3x3(Dataflow::ShiOS,
                                  templates::kArvrPes)
                  .name());

    const ServingReport report = fleet.run(trace);
    EXPECT_EQ(report.completed, 300);
    ASSERT_EQ(report.shards.size(), 2u);
    EXPECT_EQ(report.shards[0].mcmName, fleet.mcm(0).name());
    EXPECT_EQ(report.shards[1].mcmName, fleet.mcm(1).name());
    for (const ShardReport& shard : report.shards)
        EXPECT_GT(shard.dispatches, 0) << "shard " << shard.shardIdx;
}

TEST(HetFleet, HeterogeneousRunsAreDeterministic)
{
    const auto catalog = twoModelCatalog();
    const auto trace = poissonTrace(catalog, 200, 13);
    auto runOnce = [&]() {
        FleetOptions options;
        options.shardTemplates = {
            templates::hetSides3x3(templates::kArvrPes),
            templates::simba3x3(Dataflow::ShiOS,
                                templates::kArvrPes)};
        options.routing = RoutingPolicy::BestFit;
        options.serving.modeledSolveSec = 0.01;
        options.serving.switchOverheadSec = 0.002;
        options.serving.admission.maxQueueDelaySec = 0.005;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        return fleet.run(trace);
    };
    const ServingReport a = runOnce();
    const ServingReport b = runOnce();
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.p99LatencySec, b.p99LatencySec);
    EXPECT_DOUBLE_EQ(a.throughputRps, b.throughputRps);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
    for (std::size_t s = 0; s < a.shards.size(); ++s)
        EXPECT_EQ(a.shards[s].dispatches, b.shards[s].dispatches);
}

TEST(HetFleet, ShardsCountConflictingWithTemplatesIsRejected)
{
    FleetOptions options;
    options.shards = 3;
    options.shardTemplates = {fastPackage(), slowPackage()};
    EXPECT_THROW(FleetSimulator(singleModelCatalog(), fastPackage(),
                                options),
                 FatalError);
}

/**
 * The cache-key regression of the issue: the same mix dispatched on
 * two different package templates must be solved once per template —
 * a schedule searched for one package is meaningless on another —
 * even through one shared cache.
 */
TEST(HetFleet, DifferentTemplatesNeverShareACachedSchedule)
{
    const auto catalog = singleModelCatalog();
    // Two lone requests far apart: each dispatches alone with the
    // identical mix signature; round-robin sends them to shards 0
    // and 1 in turn.
    const auto trace =
        traceFromArrivals(catalog, {{0.0, 0}, {10.0, 0}});

    FleetOptions options;
    options.shardTemplates = {fastPackage(), slowPackage()};
    options.routing = RoutingPolicy::RoundRobin;
    options.sharedCache = true;
    FleetSimulator fleet(catalog, fastPackage(), options);
    const ServingReport report = fleet.run(trace);

    EXPECT_EQ(report.completed, 2);
    ASSERT_EQ(report.shards.size(), 2u);
    EXPECT_EQ(report.shards[0].dispatches, 1);
    EXPECT_EQ(report.shards[1].dispatches, 1);
    EXPECT_EQ(report.cache.misses, 2)
        << "one solve per (mix, package) pair";
    EXPECT_EQ(report.cache.hits, 0);
    EXPECT_EQ(report.uniqueMixes, 2)
        << "the shared store holds one entry per package";
}

/**
 * Interconnect-only variants must never alias. The four Het-Sides
 * packages share every chiplet spec and memory-interface position —
 * they differ in nothing but the topology (torus wrap links, express
 * diagonals, a broadcast plane) — so only the topology prefix of
 * Mcm::signature() keeps their schedule-cache keys apart.
 */
TEST(HetFleet, InterconnectVariantsGetDistinctSignatures)
{
    const std::vector<Mcm> variants = {
        templates::hetSides3x3(templates::kArvrPes),
        templates::hetSidesTorus3x3(templates::kArvrPes),
        templates::hetSidesExpress3x3(templates::kArvrPes),
        templates::hetSidesBroadcast3x3(templates::kArvrPes)};
    for (std::size_t a = 0; a < variants.size(); ++a) {
        for (std::size_t b = a + 1; b < variants.size(); ++b)
            EXPECT_NE(variants[a].signature(), variants[b].signature())
                << variants[a].name() << " vs " << variants[b].name();
    }
}

/**
 * The fleet-level consequence: two shards whose packages differ only
 * in interconnect must each get their own solve through one shared
 * cache — a schedule searched on the mesh is wrong on the torus even
 * though every chiplet matches.
 */
TEST(HetFleet, InterconnectOnlyShardsNeverShareACachedSchedule)
{
    const auto catalog = singleModelCatalog();
    const auto trace =
        traceFromArrivals(catalog, {{0.0, 0}, {10.0, 0}});

    FleetOptions options;
    options.shardTemplates = {
        templates::hetSides3x3(templates::kArvrPes),
        templates::hetSidesTorus3x3(templates::kArvrPes)};
    options.routing = RoutingPolicy::RoundRobin;
    options.sharedCache = true;
    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    const ServingReport report = fleet.run(trace);

    EXPECT_EQ(report.completed, 2);
    ASSERT_EQ(report.shards.size(), 2u);
    EXPECT_EQ(report.shards[0].dispatches, 1);
    EXPECT_EQ(report.shards[1].dispatches, 1);
    EXPECT_EQ(report.cache.misses, 2)
        << "mesh and torus shards must solve separately";
    EXPECT_EQ(report.cache.hits, 0);
    EXPECT_EQ(report.uniqueMixes, 2)
        << "one shared-store entry per interconnect";
}

/** The homogeneous counterpart: identical shards behind a shared
 *  cache still deduplicate — the second shard replays the first
 *  shard's schedule. */
TEST(HetFleet, SharedCacheStillDeduplicatesAcrossIdenticalShards)
{
    const auto catalog = singleModelCatalog();
    const auto trace =
        traceFromArrivals(catalog, {{0.0, 0}, {10.0, 0}});

    FleetOptions options;
    options.shards = 2; // homogeneous copies of the ctor template
    options.routing = RoutingPolicy::RoundRobin;
    options.sharedCache = true;
    FleetSimulator fleet(catalog, fastPackage(), options);
    const ServingReport report = fleet.run(trace);

    EXPECT_EQ(report.completed, 2);
    EXPECT_EQ(report.shards[0].dispatches, 1);
    EXPECT_EQ(report.shards[1].dispatches, 1);
    EXPECT_EQ(report.cache.misses, 1)
        << "identical packages share one schedule";
    EXPECT_EQ(report.cache.hits, 1);
    EXPECT_EQ(report.uniqueMixes, 1);
}

TEST(HetFleet, PerShardCachesKeepTemplateEntriesApart)
{
    const auto catalog = singleModelCatalog();
    const auto trace =
        traceFromArrivals(catalog, {{0.0, 0}, {10.0, 0}});

    FleetOptions options;
    options.shardTemplates = {fastPackage(), slowPackage()};
    options.routing = RoutingPolicy::RoundRobin;
    options.sharedCache = false;
    FleetSimulator fleet(catalog, fastPackage(), options);
    const ServingReport report = fleet.run(trace);

    EXPECT_EQ(report.completed, 2);
    EXPECT_EQ(report.cache.misses, 2);
    EXPECT_EQ(fleet.cache(0).size(), 1u);
    EXPECT_EQ(fleet.cache(1).size(), 1u);
}

TEST(HetFleet, MakespanEstimateRanksFastPackageBelowSlow)
{
    const auto catalog = singleModelCatalog();
    FleetOptions options;
    options.shardTemplates = {fastPackage(), slowPackage()};
    FleetSimulator fleet(catalog, fastPackage(), options);

    Scenario mix;
    mix.name = "probe";
    mix.models = {catalog[0].model};

    const double fast = fleet.estimateMakespanSec(0, mix);
    const double slow = fleet.estimateMakespanSec(1, mix);
    EXPECT_GT(fast, 0.0);
    EXPECT_LT(fast, slow)
        << "a 16x-PE package must estimate a shorter makespan";
    // Memoized: re-estimating is exact, not merely close.
    EXPECT_DOUBLE_EQ(fast, fleet.estimateMakespanSec(0, mix));
}

/** BestFit with every shard idle routes to the package the cost
 *  model ranks fastest for the mix — not to shard 0 by convention. */
TEST(HetFleet, BestFitPicksTheCheaperTemplate)
{
    const auto catalog = singleModelCatalog();
    const auto trace = traceFromArrivals(catalog, {{0.0, 0}});

    for (const bool fastFirst : {true, false}) {
        FleetOptions options;
        options.routing = RoutingPolicy::BestFit;
        if (fastFirst)
            options.shardTemplates = {fastPackage(), slowPackage()};
        else
            options.shardTemplates = {slowPackage(), fastPackage()};
        FleetSimulator fleet(catalog, fastPackage(), options);
        const ServingReport report = fleet.run(trace);
        const int fastShard = fastFirst ? 0 : 1;
        EXPECT_EQ(report.shards[fastShard].dispatches, 1)
            << "fast shard must take the lone dispatch (fastFirst="
            << fastFirst << ")";
        EXPECT_EQ(report.shards[1 - fastShard].dispatches, 0);
    }
}

TEST(HetFleet, BestFitRoutesAreCostOptimalByConstruction)
{
    const auto catalog = twoModelCatalog();
    const auto trace = poissonTrace(catalog, 150, 7);
    FleetOptions options;
    options.shardTemplates = {
        templates::hetSides3x3(templates::kArvrPes),
        templates::simba3x3(Dataflow::ShiOS, templates::kArvrPes)};
    options.routing = RoutingPolicy::BestFit;
    options.serving.admission.maxQueueDelaySec = 0.005;
    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    const ServingReport report = fleet.run(trace);
    EXPECT_EQ(report.completed, 150);
    EXPECT_GT(report.contestedRoutes, 0)
        << "a lightly loaded 2-shard fleet must see contested routes";
    EXPECT_EQ(report.costOptimalRoutes, report.contestedRoutes);
    EXPECT_DOUBLE_EQ(report.costOptimalRouteFrac, 1.0);
}

/**
 * The wasted-speculation regression: a (mix, package) schedule that
 * is already resident — or already solving — in the cache of the
 * shard the dispatch is predicted to land on must not trigger another
 * background solve. Three back-to-back cap-1 requests: the first two
 * park one dispatch per shard (one solve each); the third finds every
 * shard occupied, so the speculative path runs — and must recognize
 * the in-flight solve instead of launching a third.
 */
TEST(HetFleet, SpeculationNeverResolvesAResidentSchedule)
{
    const auto catalog = singleModelCatalog();
    const auto trace = traceFromArrivals(
        catalog, {{0.0, 0}, {0.0005, 0}, {0.001, 0}});

    for (const RoutingPolicy policy :
         {RoutingPolicy::LeastLoaded, RoutingPolicy::BestFit,
          RoutingPolicy::MixAffinity}) {
        FleetOptions options;
        options.shards = 2;
        options.routing = policy;
        options.sharedCache = false; // per-shard caches
        options.speculativeSolve = true;
        options.serving.modeledSolveSec = 0.05;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        const ServingReport report = fleet.run(trace);
        EXPECT_EQ(report.completed, 3) << routingPolicyName(policy);
        // Two caches, one solve each for the single mix; request 3
        // replays from whichever shard frees first. A wasted
        // speculative solve would show as a third miss.
        EXPECT_EQ(report.cache.misses, 2) << routingPolicyName(policy);
        EXPECT_GE(report.cache.hits, 1) << routingPolicyName(policy);
    }
}

} // namespace
} // namespace runtime
} // namespace scar
