/**
 * @file
 * Tests for the online serving runtime: deterministic arrival streams,
 * schedule-cache hit/miss behavior, admission batching, discrete-event
 * replay, and SLO accounting on hand-checkable traces.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/mcm_templates.h"
#include "common/error.h"
#include "eval/reporter.h"
#include "runtime/serving_sim.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace runtime
{
namespace
{

/** Two small AR/VR models as a fast serving catalog. */
std::vector<ServedModel>
smallCatalog()
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::eyeCod(4);
    catalog[0].rateRps = 200.0;
    catalog[0].sloSec = 0.05;
    catalog[1].model = zoo::handSP(2);
    catalog[1].rateRps = 100.0;
    catalog[1].sloSec = 0.05;
    return catalog;
}

TEST(ScenarioSignature, CanonicalAcrossModelOrder)
{
    Scenario a;
    a.name = "a";
    a.models = {zoo::eyeCod(4), zoo::handSP(2)};
    Scenario b;
    b.name = "totally-different-name";
    b.models = {zoo::handSP(2), zoo::eyeCod(4)};
    EXPECT_EQ(a.signature(), b.signature());

    Scenario c;
    c.models = {zoo::eyeCod(8), zoo::handSP(2)};
    EXPECT_NE(a.signature(), c.signature()) << "batch must be keyed";
}

TEST(Arrival, SameSeedSameTrace)
{
    const auto catalog = smallCatalog();
    const auto a = poissonTrace(catalog, 200, 42);
    const auto b = poissonTrace(catalog, 200, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrivalSec, b[i].arrivalSec);
        EXPECT_EQ(a[i].modelIdx, b[i].modelIdx);
        EXPECT_DOUBLE_EQ(a[i].deadlineSec, b[i].deadlineSec);
    }
}

TEST(Arrival, DifferentSeedDifferentTrace)
{
    const auto catalog = smallCatalog();
    const auto a = poissonTrace(catalog, 200, 42);
    const auto b = poissonTrace(catalog, 200, 43);
    bool differs = false;
    for (std::size_t i = 0; i < a.size() && !differs; ++i)
        differs = a[i].arrivalSec != b[i].arrivalSec ||
                  a[i].modelIdx != b[i].modelIdx;
    EXPECT_TRUE(differs);
}

TEST(Arrival, SortedWithDeadlinesAndIds)
{
    const auto catalog = smallCatalog();
    const auto trace = poissonTrace(catalog, 500, 7);
    ASSERT_EQ(trace.size(), 500u);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Request& req = trace[i];
        EXPECT_EQ(req.id, static_cast<std::int64_t>(i));
        if (i > 0) {
            EXPECT_GE(req.arrivalSec, trace[i - 1].arrivalSec);
        }
        EXPECT_GE(req.modelIdx, 0);
        EXPECT_LT(req.modelIdx, 2);
        EXPECT_DOUBLE_EQ(req.deadlineSec,
                         req.arrivalSec +
                             catalog[req.modelIdx].sloSec);
    }
}

TEST(Arrival, RatesShapeTheMix)
{
    auto catalog = smallCatalog();
    catalog[0].rateRps = 900.0;
    catalog[1].rateRps = 100.0;
    const auto trace = poissonTrace(catalog, 2000, 5);
    int first = 0;
    for (const Request& req : trace)
        first += req.modelIdx == 0 ? 1 : 0;
    // ~90% of arrivals should come from the 9x-rate model.
    EXPECT_GT(first, 1600);
    EXPECT_LT(first, 1990);
}

TEST(Arrival, TraceFromArrivalsSortsAndValidates)
{
    const auto catalog = smallCatalog();
    const auto trace = traceFromArrivals(
        catalog, {{0.3, 1}, {0.1, 0}, {0.2, 0}});
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_DOUBLE_EQ(trace[0].arrivalSec, 0.1);
    EXPECT_DOUBLE_EQ(trace[2].arrivalSec, 0.3);
    EXPECT_EQ(trace[2].modelIdx, 1);
    EXPECT_THROW(traceFromArrivals(catalog, {{0.0, 9}}), FatalError);
}

/** A counting compute stub: the cache tests need no real search. */
struct CountingCompute
{
    int calls = 0;

    ScheduleResult
    operator()(const Scenario& mix)
    {
        ++calls;
        ScheduleResult result;
        ScheduledWindow sw;
        sw.cost.latencyCycles = 1000.0;
        for (int m = 0; m < mix.numModels(); ++m) {
            ModelPlacement mp;
            mp.modelIdx = m;
            mp.segments.push_back(
                {LayerRange{0, mix.models[m].numLayers() - 1}, m});
            sw.placement.models.push_back(mp);
        }
        result.windows.push_back(sw);
        return result;
    }
};

Scenario
mixOf(std::vector<Model> models)
{
    Scenario sc;
    sc.name = "mix";
    sc.models = std::move(models);
    return sc;
}

TEST(ScheduleCache, MissThenHitOnRepeatedMix)
{
    ScheduleCache cache;
    CountingCompute counter;
    const auto compute = [&](const Scenario& mix) {
        return counter(mix);
    };
    const Scenario mix = mixOf({zoo::eyeCod(4), zoo::handSP(2)});

    const std::shared_ptr<const CachedSchedule> first =
        cache.getOrCompute(mix, compute);
    EXPECT_EQ(counter.calls, 1);
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.stats().hits, 0);

    const std::shared_ptr<const CachedSchedule> second =
        cache.getOrCompute(mix, compute);
    EXPECT_EQ(counter.calls, 1) << "repeated mix must not recompute";
    EXPECT_EQ(cache.stats().hits, 1);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.5);
}

TEST(ScheduleCache, ChangedMixMisses)
{
    ScheduleCache cache;
    CountingCompute counter;
    const auto compute = [&](const Scenario& mix) {
        return counter(mix);
    };
    cache.getOrCompute(mixOf({zoo::eyeCod(4), zoo::handSP(2)}), compute);
    // Different batch -> different signature.
    cache.getOrCompute(mixOf({zoo::eyeCod(2), zoo::handSP(2)}), compute);
    // Different subset -> different signature.
    cache.getOrCompute(mixOf({zoo::handSP(2)}), compute);
    EXPECT_EQ(counter.calls, 3);
    EXPECT_EQ(cache.size(), 3u);
    // Model order does not matter.
    cache.getOrCompute(mixOf({zoo::handSP(2), zoo::eyeCod(4)}), compute);
    EXPECT_EQ(counter.calls, 3);
    EXPECT_EQ(cache.stats().hits, 1);
}

TEST(ScheduleCache, ReplayViewTracksLastWindows)
{
    CachedSchedule entry;
    entry.mix = mixOf({zoo::eyeCod(4), zoo::handSP(2)});

    // Window 0 holds both models, window 1 only model 1.
    ScheduledWindow w0;
    ModelPlacement mp0;
    mp0.modelIdx = 0;
    mp0.segments.push_back({LayerRange{0, 0}, 0});
    ModelPlacement mp1;
    mp1.modelIdx = 1;
    mp1.segments.push_back({LayerRange{0, 0}, 1});
    w0.placement.models = {mp0, mp1};
    w0.cost.latencyCycles = 500.0e6; // 1 s at the 500 MHz clock
    ScheduledWindow w1;
    ModelPlacement mp1b;
    mp1b.modelIdx = 1;
    mp1b.segments.push_back({LayerRange{1, 1}, 2});
    w1.placement.models = {mp1b};
    w1.cost.latencyCycles = 250.0e6; // 0.5 s
    entry.result.windows = {w0, w1};

    buildReplayView(entry);
    ASSERT_EQ(entry.windowSec.size(), 2u);
    EXPECT_NEAR(entry.windowSec[0], 1.0, 1e-12);
    EXPECT_NEAR(entry.windowSec[1], 0.5, 1e-12);
    EXPECT_NEAR(entry.makespanSec, 1.5, 1e-12);
    EXPECT_EQ(entry.lastWindow[0], 0);
    EXPECT_EQ(entry.lastWindow[1], 1);
}

TEST(Admission, FullBatchTriggersDispatch)
{
    const auto catalog = smallCatalog(); // batches 4 and 2
    AdmissionController admission(catalog, AdmissionOptions{});
    Request req;
    req.modelIdx = 0;
    for (int i = 0; i < 3; ++i) {
        req.id = i;
        req.arrivalSec = 0.001 * i;
        admission.enqueue(req);
        EXPECT_FALSE(admission.ready(req.arrivalSec));
    }
    req.id = 3;
    req.arrivalSec = 0.003;
    admission.enqueue(req);
    EXPECT_TRUE(admission.ready(0.003)) << "4 queued = a full batch";

    Dispatch dispatch = admission.formDispatch(0.003);
    ASSERT_EQ(dispatch.groups.size(), 1u);
    EXPECT_EQ(dispatch.groups[0].batch, 4);
    EXPECT_EQ(dispatch.groups[0].requests.size(), 4u);
    EXPECT_EQ(dispatch.mix.models[0].batch, 4);
    EXPECT_EQ(admission.queuedCount(), 0);
}

TEST(Admission, TimeoutForcesQuantizedPartialBatch)
{
    const auto catalog = smallCatalog();
    AdmissionOptions options;
    options.maxQueueDelaySec = 0.01;
    AdmissionController admission(catalog, options);
    Request req;
    req.modelIdx = 0;
    req.arrivalSec = 0.0;
    admission.enqueue(req);
    req.modelIdx = 0;
    req.id = 1;
    req.arrivalSec = 0.002;
    admission.enqueue(req);
    req.modelIdx = 1;
    req.id = 2;
    req.arrivalSec = 0.005;
    admission.enqueue(req);

    EXPECT_FALSE(admission.ready(0.005));
    EXPECT_DOUBLE_EQ(admission.nextForcedDispatchSec(), 0.01);
    EXPECT_TRUE(admission.ready(admission.nextForcedDispatchSec()))
        << "ready() must agree with the timer instant";

    Dispatch dispatch = admission.formDispatch(0.01);
    // Both queued models join the mix; 3 requests over 2 models.
    ASSERT_EQ(dispatch.groups.size(), 2u);
    EXPECT_EQ(dispatch.groups[0].batch, 2); // 2 queued -> pow2 = 2
    EXPECT_EQ(dispatch.groups[1].batch, 1);
    EXPECT_EQ(dispatch.mix.models[0].batch, 2);
    EXPECT_EQ(admission.queuedCount(), 0);
}

TEST(Executor, CompletesModelsAtTheirLastWindow)
{
    // Build the two-window cached schedule of the replay-view test.
    CachedSchedule entry;
    entry.mix = mixOf({zoo::eyeCod(1), zoo::handSP(1)});

    ScheduledWindow w0;
    ModelPlacement mp0;
    mp0.modelIdx = 0;
    mp0.segments.push_back({LayerRange{0, 0}, 0});
    ModelPlacement mp1;
    mp1.modelIdx = 1;
    mp1.segments.push_back({LayerRange{0, 0}, 1});
    w0.placement.models = {mp0, mp1};
    w0.cost.latencyCycles = 500.0e6; // 1 s
    ScheduledWindow w1;
    ModelPlacement mp1b;
    mp1b.modelIdx = 1;
    mp1b.segments.push_back({LayerRange{1, 1}, 2});
    w1.placement.models = {mp1b};
    w1.cost.latencyCycles = 500.0e6; // 1 s
    entry.result.windows = {w0, w1};
    buildReplayView(entry);

    Dispatch dispatch;
    dispatch.mix = entry.mix;
    dispatch.catalogIdx = {0, 1};
    BatchGroup g0;
    g0.catalogIdx = 0;
    g0.batch = 1;
    Request r0;
    r0.id = 0;
    r0.modelIdx = 0;
    r0.arrivalSec = 1.0;
    g0.requests = {r0};
    BatchGroup g1;
    g1.catalogIdx = 1;
    g1.batch = 1;
    Request r1;
    r1.id = 1;
    r1.modelIdx = 1;
    r1.arrivalSec = 1.5;
    g1.requests = {r1};
    dispatch.groups = {g0, g1};

    ReplayExecutor executor;
    EXPECT_FALSE(executor.busy());
    executor.start(std::make_shared<CachedSchedule>(entry), dispatch,
                   2.0);
    EXPECT_TRUE(executor.busy());
    EXPECT_DOUBLE_EQ(executor.nextBoundarySec(), 3.0);

    WindowTick tick0 = executor.advance();
    EXPECT_DOUBLE_EQ(tick0.timeSec, 3.0);
    ASSERT_EQ(tick0.completed.size(), 1u);
    EXPECT_EQ(tick0.completed[0].id, 0) << "model 0 ends in window 0";
    EXPECT_DOUBLE_EQ(tick0.completed[0].completionSec, 3.0);
    EXPECT_FALSE(tick0.dispatchDone);

    WindowTick tick1 = executor.advance();
    EXPECT_DOUBLE_EQ(tick1.timeSec, 4.0);
    ASSERT_EQ(tick1.completed.size(), 1u);
    EXPECT_EQ(tick1.completed[0].id, 1);
    EXPECT_TRUE(tick1.dispatchDone);
    EXPECT_FALSE(executor.busy());
}

TEST(ServingReport, PercentileNearestRank)
{
    const std::vector<double> sample = {0.4, 0.1, 0.3, 0.2};
    EXPECT_DOUBLE_EQ(percentileSec(sample, 50.0), 0.2);
    EXPECT_DOUBLE_EQ(percentileSec(sample, 100.0), 0.4);
    EXPECT_DOUBLE_EQ(percentileSec(sample, 1.0), 0.1);
    EXPECT_DOUBLE_EQ(percentileSec({}, 50.0), 0.0);
}

/**
 * Hand-checkable 2-request serving run: both requests target the same
 * single-model catalog, far enough apart that each is dispatched
 * alone. Request latencies must equal the batching delay plus the
 * cached schedule's makespan, and SLO accounting must separate the
 * request whose deadline admits that latency from the one whose
 * deadline does not.
 */
TEST(ServingSim, SloAccountingOnTwoRequestTrace)
{
    std::vector<ServedModel> catalog(1);
    catalog[0].model = zoo::eyeCod(2);
    catalog[0].rateRps = 1.0;
    ServingOptions options;
    options.admission.maxQueueDelaySec = 0.01;
    ServingSimulator sim(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);

    // Probe run: learn the single-request makespan of the mix.
    catalog[0].sloSec = std::numeric_limits<double>::infinity();
    ServingReport probe =
        sim.run(traceFromArrivals(catalog, {{0.0, 0}}));
    ASSERT_EQ(probe.completed, 1);
    const double makespan =
        sim.records().front().latencySec() - 0.01;
    ASSERT_GT(makespan, 0.0);

    // Request A's SLO absorbs timeout + makespan; request B's cannot.
    const double latency = 0.01 + makespan;
    catalog[0].sloSec = latency * 2.0;
    ServingSimulator sim2(catalog,
                          templates::hetSides3x3(templates::kArvrPes),
                          options);
    auto trace = traceFromArrivals(catalog, {{0.0, 0}, {10.0, 0}});
    trace[1].deadlineSec = 10.0 + latency * 0.5; // unreachable
    const ServingReport report = sim2.run(trace);

    EXPECT_EQ(report.offered, 2);
    EXPECT_EQ(report.completed, 2);
    EXPECT_EQ(report.dispatches, 2);
    ASSERT_EQ(sim2.records().size(), 2u);
    for (const Request& req : sim2.records())
        EXPECT_NEAR(req.latencySec(), latency, 1e-9)
            << "each lone request waits the timeout then replays "
               "the cached schedule";
    EXPECT_EQ(report.sloViolations, 1);
    EXPECT_DOUBLE_EQ(report.sloViolationRate, 0.5);
    // One mix, scheduled once, replayed once from cache.
    EXPECT_EQ(report.cache.misses, 1);
    EXPECT_EQ(report.cache.hits, 1);
}

TEST(ServingSim, DrainsEveryRequestAndCaches)
{
    const auto catalog = smallCatalog();
    ServingOptions options;
    options.admission.maxQueueDelaySec = 0.005;
    ServingSimulator sim(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    const auto trace = poissonTrace(catalog, 400, 11);
    const ServingReport report = sim.run(trace);

    EXPECT_EQ(report.offered, 400);
    EXPECT_EQ(report.completed, 400);
    EXPECT_GT(report.throughputRps, 0.0);
    EXPECT_GT(report.cache.hits, 0)
        << "repeated mixes must be served from cache";
    EXPECT_EQ(report.uniqueMixes,
              static_cast<long>(sim.cache().size()));
    EXPECT_LE(report.p50LatencySec, report.p95LatencySec);
    EXPECT_LE(report.p95LatencySec, report.p99LatencySec);
    EXPECT_LE(report.p99LatencySec, report.maxLatencySec);

    // Completion records are consistent with the input trace.
    ASSERT_EQ(sim.records().size(), 400u);
    for (const Request& req : sim.records()) {
        EXPECT_TRUE(req.completed());
        EXPECT_GE(req.dispatchSec, req.arrivalSec);
        EXPECT_GT(req.completionSec, req.dispatchSec);
    }

    // A second identical run is served entirely from the warm cache.
    const ServingReport warm = sim.run(trace);
    EXPECT_EQ(warm.cache.misses, 0);
    EXPECT_GT(warm.cache.hits, 0);
    EXPECT_DOUBLE_EQ(warm.p99LatencySec, report.p99LatencySec);
}

TEST(ServingSim, DeterministicForFixedSeed)
{
    const auto catalog = smallCatalog();
    const auto trace = poissonTrace(catalog, 200, 3);
    ServingSimulator a(catalog,
                       templates::hetSides3x3(templates::kArvrPes));
    ServingSimulator b(catalog,
                       templates::hetSides3x3(templates::kArvrPes));
    const ServingReport ra = a.run(trace);
    const ServingReport rb = b.run(trace);
    EXPECT_DOUBLE_EQ(ra.p99LatencySec, rb.p99LatencySec);
    EXPECT_DOUBLE_EQ(ra.throughputRps, rb.throughputRps);
    EXPECT_EQ(ra.cache.misses, rb.cache.misses);
}

TEST(ServingSim, RejectsDuplicateCatalogNames)
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::eyeCod(4);
    catalog[1].model = zoo::eyeCod(2); // same name, different batch
    EXPECT_THROW(
        ServingSimulator(catalog,
                         templates::hetSides3x3(templates::kArvrPes)),
        FatalError)
        << "duplicate names would alias mix signatures";
}

TEST(ServingSim, ReportRendererMentionsKeyMetrics)
{
    const auto catalog = smallCatalog();
    ServingSimulator sim(catalog,
                         templates::hetSides3x3(templates::kArvrPes));
    const ServingReport report =
        sim.run(poissonTrace(catalog, 50, 1));
    const std::string text = describeServingReport(report);
    EXPECT_NE(text.find("Throughput"), std::string::npos);
    EXPECT_NE(text.find("p99"), std::string::npos);
    EXPECT_NE(text.find("SLO violations"), std::string::npos);
    EXPECT_NE(text.find("cache hit rate"), std::string::npos);
}

} // namespace
} // namespace runtime
} // namespace scar
