/**
 * @file
 * Tests for the fleet serving layer: the asynchronous schedule cache
 * (exactly-once concurrent solves, virtual ready instants, LRU
 * bounds), EDF admission under overload, multi-MCM routing, and the
 * determinism contract — wall-clock solve concurrency must never
 * change virtual-time results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "arch/mcm_templates.h"
#include "common/error.h"
#include "runtime/fleet.h"
#include "runtime/serving_sim.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace runtime
{
namespace
{

std::vector<ServedModel>
smallCatalog()
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::eyeCod(4);
    catalog[0].rateRps = 200.0;
    catalog[0].sloSec = 0.05;
    catalog[1].model = zoo::handSP(2);
    catalog[1].rateRps = 100.0;
    catalog[1].sloSec = 0.05;
    return catalog;
}

Scenario
mixOf(std::vector<Model> models)
{
    Scenario sc;
    sc.name = "mix";
    sc.models = std::move(models);
    return sc;
}

/** A self-counting stub compute with an optional wall-clock delay. */
struct SlowCompute
{
    std::atomic<int> calls{0};
    int delayMs = 0;

    ScheduleCache::ComputeFn
    fn()
    {
        return [this](const Scenario& mix) {
            ++calls;
            if (delayMs > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delayMs));
            ScheduleResult result;
            ScheduledWindow sw;
            sw.cost.latencyCycles = 1000.0;
            for (int m = 0; m < mix.numModels(); ++m) {
                ModelPlacement mp;
                mp.modelIdx = m;
                mp.segments.push_back(
                    {LayerRange{0, mix.models[m].numLayers() - 1}, m});
                sw.placement.models.push_back(mp);
            }
            result.windows.push_back(sw);
            return result;
        };
    }
};

TEST(AsyncScheduleCache, ConcurrentGetOrComputeSolvesExactlyOnce)
{
    ThreadPool pool(4);
    AsyncScheduleCache cache(pool);
    SlowCompute compute;
    compute.delayMs = 30;
    const Scenario mix = mixOf({zoo::eyeCod(4), zoo::handSP(2)});

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const CachedSchedule>> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            got[t] = cache.getOrCompute(mix, compute.fn());
        });
    }
    for (std::thread& thread : threads)
        thread.join();

    EXPECT_EQ(compute.calls.load(), 1)
        << "racing callers must share one solve";
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[t].get(), got[0].get());
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.stats().hits, kThreads - 1);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(AsyncScheduleCache, PrefetchLookupJoinLifecycle)
{
    ThreadPool pool(2);
    AsyncScheduleCache cache(pool);
    SlowCompute compute;
    const Scenario mix = mixOf({zoo::eyeCod(4)});

    // Speculative solve usable from virtual t = 5.
    cache.prefetch(mix, compute.fn(), /*readySec=*/5.0);
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.size(), 0u) << "in flight, not yet stored";

    // A dispatch at t = 1 reuses the running solve and learns the
    // virtual instant it lands; no second solve starts.
    const AsyncLookup pending =
        cache.lookup(mix, compute.fn(), /*nowSec=*/1.0,
                     /*modeledSolveSec=*/0.5);
    EXPECT_EQ(pending.schedule, nullptr);
    EXPECT_DOUBLE_EQ(pending.readySec, 5.0);
    EXPECT_FALSE(pending.startedSolve);
    EXPECT_EQ(cache.stats().hits, 1);

    const auto joined = cache.join(mix.signature());
    ASSERT_NE(joined, nullptr);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(compute.calls.load(), 1);

    // Once stored, lookups are usable immediately.
    const AsyncLookup ready =
        cache.lookup(mix, compute.fn(), 6.0, 0.5);
    EXPECT_EQ(ready.schedule.get(), joined.get());
    EXPECT_DOUBLE_EQ(ready.readySec, 6.0);
    EXPECT_EQ(compute.calls.load(), 1);
}

TEST(AsyncScheduleCache, LookupMissLaunchesWithModeledLatency)
{
    ThreadPool pool(2);
    AsyncScheduleCache cache(pool);
    SlowCompute compute;
    const Scenario mix = mixOf({zoo::handSP(2)});
    const AsyncLookup miss =
        cache.lookup(mix, compute.fn(), /*nowSec=*/2.0,
                     /*modeledSolveSec=*/0.25);
    EXPECT_EQ(miss.schedule, nullptr);
    EXPECT_DOUBLE_EQ(miss.readySec, 2.25);
    EXPECT_TRUE(miss.startedSolve);
    EXPECT_EQ(cache.stats().misses, 1);
    cache.drainInFlight();
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(compute.calls.load(), 1);
}

TEST(AsyncScheduleCache, FailedSolveIsErasedAndRetriable)
{
    ThreadPool pool(1); // inline solves: the failure is synchronous
    AsyncScheduleCache cache(pool);
    const Scenario mix = mixOf({zoo::eyeCod(4)});
    SlowCompute good;
    std::atomic<int> calls{0};
    const ScheduleCache::ComputeFn flaky =
        [&](const Scenario& m) -> ScheduleResult {
        if (++calls == 1)
            throw std::runtime_error("transient solver failure");
        return good.fn()(m);
    };

    cache.prefetch(mix, flaky, /*readySec=*/1.0);
    EXPECT_THROW(cache.join(mix.signature()), std::runtime_error);
    EXPECT_EQ(cache.size(), 0u);

    // The poisoned entry must be gone: a fresh lookup relaunches the
    // solve instead of rejoining the dead future.
    const AsyncLookup retry = cache.lookup(mix, flaky, 2.0, 0.1);
    EXPECT_TRUE(retry.startedSolve);
    EXPECT_NE(cache.join(mix.signature()), nullptr);
    EXPECT_EQ(calls.load(), 2);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ScheduleCache, LruEvictsBeyondCapacity)
{
    ScheduleCacheOptions options;
    options.capacity = 2;
    ScheduleCache cache(options);
    SlowCompute compute;
    const Scenario a = mixOf({zoo::eyeCod(1)});
    const Scenario b = mixOf({zoo::eyeCod(2)});
    const Scenario c = mixOf({zoo::eyeCod(4)});

    const auto keepA = cache.getOrCompute(a, compute.fn());
    const auto keepB = cache.getOrCompute(b, compute.fn());
    EXPECT_EQ(cache.size(), 2u);
    cache.getOrCompute(a, compute.fn()); // touch A: B becomes LRU
    EXPECT_EQ(compute.calls.load(), 2);

    cache.getOrCompute(c, compute.fn()); // evicts B
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1);
    EXPECT_EQ(cache.find(b.signature()), nullptr);
    // The evicted entry stays valid for holders of its shared_ptr.
    EXPECT_EQ(keepB->mix.signature(), b.signature());
    EXPECT_FALSE(keepB->windowSec.empty());

    cache.getOrCompute(b, compute.fn()); // re-solve B, evicts A
    EXPECT_EQ(compute.calls.load(), 4);
    EXPECT_EQ(cache.stats().evictions, 2);
    EXPECT_EQ(cache.find(a.signature()), nullptr);
    EXPECT_NE(cache.find(c.signature()), nullptr);
    EXPECT_EQ(keepA->mix.signature(), a.signature());
}

TEST(Fleet, MultiShardCompletesEverythingDeterministically)
{
    const auto catalog = smallCatalog();
    const auto trace = poissonTrace(catalog, 400, 11);
    FleetOptions options;
    options.shards = 3;
    options.routing = RoutingPolicy::RoundRobin;
    options.serving.admission.maxQueueDelaySec = 0.005;

    FleetSimulator a(catalog,
                     templates::hetSides3x3(templates::kArvrPes),
                     options);
    const ServingReport ra = a.run(trace);
    EXPECT_EQ(ra.offered, 400);
    EXPECT_EQ(ra.completed, 400);
    ASSERT_EQ(ra.shards.size(), 3u);
    long shardDispatches = 0;
    for (const ShardReport& shard : ra.shards)
        shardDispatches += shard.dispatches;
    EXPECT_EQ(shardDispatches, ra.dispatches);

    FleetSimulator b(catalog,
                     templates::hetSides3x3(templates::kArvrPes),
                     options);
    const ServingReport rb = b.run(trace);
    EXPECT_DOUBLE_EQ(ra.p99LatencySec, rb.p99LatencySec);
    EXPECT_DOUBLE_EQ(ra.throughputRps, rb.throughputRps);
    EXPECT_EQ(ra.cache.misses, rb.cache.misses);
    for (std::size_t s = 0; s < ra.shards.size(); ++s) {
        EXPECT_EQ(ra.shards[s].dispatches, rb.shards[s].dispatches);
        EXPECT_DOUBLE_EQ(ra.shards[s].busySec, rb.shards[s].busySec);
    }
}

TEST(Fleet, WallClockConcurrencyDoesNotChangeResults)
{
    const auto catalog = smallCatalog();
    const auto trace = poissonTrace(catalog, 250, 5);

    auto runWith = [&](ThreadPool& pool) {
        FleetOptions options;
        options.shards = 2;
        options.routing = RoutingPolicy::LeastLoaded;
        options.serving.pool = &pool;
        options.serving.modeledSolveSec = 0.01;
        options.serving.switchOverheadSec = 0.002;
        options.serving.admission.maxQueueDelaySec = 0.005;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        return fleet.run(trace);
    };

    ThreadPool serial(1);
    ThreadPool wide(8);
    const ServingReport a = runWith(serial);
    const ServingReport b = runWith(wide);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.p99LatencySec, b.p99LatencySec);
    EXPECT_DOUBLE_EQ(a.meanLatencySec, b.meanLatencySec);
    EXPECT_DOUBLE_EQ(a.throughputRps, b.throughputRps);
    EXPECT_DOUBLE_EQ(a.solveStallSec, b.solveStallSec);
    EXPECT_DOUBLE_EQ(a.switchOverheadSec, b.switchOverheadSec);
    EXPECT_EQ(a.dispatches, b.dispatches);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
}

TEST(Fleet, ShardsShareLoadUnderPressure)
{
    auto catalog = smallCatalog();
    catalog[0].rateRps = 2000.0; // saturate one package
    catalog[1].rateRps = 1000.0;
    const auto trace = poissonTrace(catalog, 600, 3);
    FleetOptions options;
    options.shards = 2;
    options.routing = RoutingPolicy::RoundRobin;
    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    const ServingReport report = fleet.run(trace);
    EXPECT_EQ(report.completed, 600);
    for (const ShardReport& shard : report.shards) {
        EXPECT_GT(shard.dispatches, 0) << "shard " << shard.shardIdx;
        EXPECT_GT(shard.utilization, 0.0);
    }
}

TEST(Fleet, MoreShardsFinishSaturatedLoadSooner)
{
    auto catalog = smallCatalog();
    catalog[0].rateRps = 2000.0;
    catalog[1].rateRps = 1000.0;
    const auto trace = poissonTrace(catalog, 500, 9);

    auto horizonWith = [&](int shards) {
        FleetOptions options;
        options.shards = shards;
        options.routing = RoutingPolicy::LeastLoaded;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        return fleet.run(trace).horizonSec;
    };

    const double one = horizonWith(1);
    const double four = horizonWith(4);
    EXPECT_LT(four, one)
        << "a saturated stream must drain faster on more packages";
}

TEST(Fleet, RoutingPoliciesAllServeTheStream)
{
    const auto catalog = smallCatalog();
    const auto trace = poissonTrace(catalog, 200, 17);
    for (const RoutingPolicy policy :
         {RoutingPolicy::RoundRobin, RoutingPolicy::LeastLoaded,
          RoutingPolicy::MixAffinity, RoutingPolicy::BestFit}) {
        for (const bool shared : {true, false}) {
            FleetOptions options;
            options.shards = 2;
            options.routing = policy;
            options.sharedCache = shared;
            FleetSimulator fleet(
                catalog, templates::hetSides3x3(templates::kArvrPes),
                options);
            const ServingReport report = fleet.run(trace);
            EXPECT_EQ(report.completed, 200)
                << routingPolicyName(policy)
                << (shared ? " shared" : " per-shard");
            EXPECT_GT(report.cache.hits, 0);
        }
    }
}

TEST(Fleet, SolveStallIsReportedAndBounded)
{
    const auto catalog = smallCatalog();
    const auto trace = poissonTrace(catalog, 150, 2);
    FleetOptions options;
    options.shards = 1;
    options.serving.modeledSolveSec = 0.05;
    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    const ServingReport report = fleet.run(trace);
    EXPECT_EQ(report.completed, 150);
    // The cold-start dispatch waits out one full modeled solve...
    EXPECT_GE(report.solveStallSec, 0.05 - 1e-9);
    // ...and no dispatch can stall longer than one modeled solve.
    EXPECT_LE(report.solveStallSec,
              0.05 * static_cast<double>(report.dispatches) + 1e-9);
}

TEST(Fleet, SpeculativeSolvesHideStallBehindReplay)
{
    const auto catalog = smallCatalog();
    const auto trace = poissonTrace(catalog, 200, 2);

    auto runWith = [&](bool speculative) {
        FleetOptions options;
        options.shards = 1;
        options.speculativeSolve = speculative;
        options.serving.modeledSolveSec = 0.05;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        return fleet.run(trace);
    };

    const ServingReport blocking = runWith(false);
    const ServingReport async = runWith(true);
    EXPECT_EQ(blocking.completed, 200);
    EXPECT_EQ(async.completed, 200);
    // Overlapping solves with in-flight replay must strictly reduce
    // the time the package idles waiting on the search.
    EXPECT_LT(async.solveStallSec, blocking.solveStallSec);
    EXPECT_LE(async.p99LatencySec, blocking.p99LatencySec);
}

TEST(Fleet, SwitchOverheadChargedOnMixChanges)
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::eyeCod(2);
    catalog[0].rateRps = 1.0;
    catalog[1].model = zoo::handSP(2);
    catalog[1].rateRps = 1.0;

    FleetOptions options;
    options.shards = 1;
    options.serving.switchOverheadSec = 0.01;
    options.serving.admission.maxQueueDelaySec = 0.005;
    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    // Four lone requests, alternating models, far enough apart that
    // each dispatches alone: sigs alternate, so every dispatch after
    // the first re-stages weights.
    const auto trace = traceFromArrivals(
        catalog, {{0.0, 0}, {10.0, 1}, {20.0, 0}, {30.0, 1}});
    const ServingReport report = fleet.run(trace);
    EXPECT_EQ(report.dispatches, 4);
    EXPECT_NEAR(report.switchOverheadSec, 3 * 0.01, 1e-9);
    EXPECT_EQ(report.cache.misses, 2);
    EXPECT_EQ(report.cache.hits, 2);
}

TEST(Fleet, BoundedCacheStillServesEverything)
{
    const auto catalog = smallCatalog();
    const auto trace = poissonTrace(catalog, 300, 23);
    FleetOptions options;
    options.shards = 2;
    options.serving.cacheCapacity = 1; // aggressive eviction
    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    const ServingReport report = fleet.run(trace);
    EXPECT_EQ(report.completed, 300);
    EXPECT_GT(report.cache.evictions, 0)
        << "capacity 1 must evict under multiple mixes";
    EXPECT_LE(fleet.cache(0).size(), 1u);
}

/**
 * EDF boarding order, unit level: the oldest request always boards
 * (the no-starvation guarantee), and among the rest an aged request
 * outranks a fresh one with a tighter deadline.
 */
TEST(Admission, EdfBoardsOldestThenAgedBeforeFreshTightDeadlines)
{
    std::vector<ServedModel> catalog(1);
    catalog[0].model = zoo::handSP(2); // batch cap 2 => take = 2
    AdmissionOptions options;
    options.maxQueueDelaySec = 0.05;
    options.order = QueueOrder::EarliestDeadline;
    AdmissionController admission(catalog, options);

    auto enqueue = [&](std::int64_t id, double arrival,
                       double deadline) {
        Request req;
        req.id = id;
        req.modelIdx = 0;
        req.arrivalSec = arrival;
        req.deadlineSec = deadline;
        admission.enqueue(req);
    };
    // A and B will be aged at dispatch time (waited > 0.05 s); C and
    // D are fresh with far tighter deadlines.
    enqueue(0, 0.000, /*deadline=*/100.0); // A: oldest, loose
    enqueue(1, 0.005, /*deadline=*/90.0);  // B: aged, loose
    enqueue(2, 0.055, /*deadline=*/0.10);  // C: fresh, tight
    enqueue(3, 0.056, /*deadline=*/0.11);  // D: fresh, tight

    const double nowSec = 0.057;
    ASSERT_TRUE(admission.ready(nowSec));
    Dispatch dispatch = admission.formDispatch(nowSec);
    ASSERT_EQ(dispatch.groups.size(), 1u);
    ASSERT_EQ(dispatch.groups[0].requests.size(), 2u);
    // Slot 1: the oldest request, despite the loosest deadline.
    EXPECT_EQ(dispatch.groups[0].requests[0].id, 0);
    // Slot 2: the aged request beats the fresh tight deadlines.
    EXPECT_EQ(dispatch.groups[0].requests[1].id, 1);
    // The fresh pair stays queued, in arrival order.
    EXPECT_EQ(admission.queuedCount(), 2);
    Dispatch rest = admission.formDispatch(nowSec);
    ASSERT_EQ(rest.groups[0].requests.size(), 2u);
    EXPECT_EQ(rest.groups[0].requests[0].id, 2);
    EXPECT_EQ(rest.groups[0].requests[1].id, 3);
}

/**
 * EDF admission under overload: a backlog of 12 same-model requests
 * drains in three batch-4 dispatches. Half the requests carry a
 * deadline only the first two dispatches can meet; FIFO boarding
 * strands some of them in the last dispatch, EDF boards them first.
 */
TEST(Admission, EdfLowersTailViolationsUnderOverload)
{
    std::vector<ServedModel> catalog(1);
    catalog[0].model = zoo::eyeCod(4);
    catalog[0].rateRps = 1.0;

    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    ServingOptions probeOptions;
    probeOptions.admission.maxQueueDelaySec = 0.01;

    // Probe the two makespans: a lone (batch-1) dispatch and a full
    // batch-4 dispatch.
    ServingSimulator probe(catalog, mcm, probeOptions);
    probe.run(traceFromArrivals(catalog, {{0.0, 0}}));
    ASSERT_EQ(probe.records().size(), 1u);
    const double soloMakespan = probe.records()[0].completionSec -
                                probe.records()[0].dispatchSec;
    ServingSimulator probe4(catalog, mcm, probeOptions);
    probe4.run(traceFromArrivals(
        catalog, {{0.0, 0}, {0.0001, 0}, {0.0002, 0}, {0.0003, 0}}));
    ASSERT_EQ(probe4.records().size(), 4u);
    const double batchMakespan = probe4.records()[0].completionSec -
                                 probe4.records()[0].dispatchSec;
    ASSERT_GT(soloMakespan, 0.0);
    ASSERT_GT(batchMakespan, 0.0);

    // Warmup request at t=0 occupies the package from the forced
    // dispatch at 0.01 until tBusy; 12 requests arrive while it is
    // busy and drain as three batch-4 dispatches from tBusy.
    const double tBusy = 0.01 + soloMakespan;
    std::vector<std::pair<double, int>> arrivals = {{0.0, 0}};
    for (int i = 0; i < 12; ++i)
        arrivals.push_back({0.01 + soloMakespan * (0.4 + 0.01 * i), 0});
    auto makeTrace = [&]() {
        auto trace = traceFromArrivals(catalog, arrivals);
        for (std::size_t i = 1; i < trace.size(); ++i) {
            // Even-indexed backlog requests are deadline-critical:
            // reachable from the first two dispatches only.
            trace[i].deadlineSec =
                (i % 2 == 0) ? tBusy + 2.5 * batchMakespan
                             : trace[i].arrivalSec + 1000.0;
        }
        return trace;
    };

    auto violationsWith = [&](QueueOrder order) {
        ServingOptions options = probeOptions;
        options.admission.order = order;
        ServingSimulator sim(catalog, mcm, options);
        const ServingReport report = sim.run(makeTrace());
        EXPECT_EQ(report.completed, 13);
        return report;
    };

    const ServingReport fifo = violationsWith(QueueOrder::FifoArrival);
    const ServingReport edf =
        violationsWith(QueueOrder::EarliestDeadline);
    EXPECT_GT(fifo.sloViolations, 0)
        << "the overload must strand deadline-critical requests in "
           "arrival order";
    EXPECT_LT(edf.sloViolations, fifo.sloViolations);
    EXPECT_LT(edf.sloViolationRate, fifo.sloViolationRate);
}

} // namespace
} // namespace runtime
} // namespace scar
