/**
 * @file
 * Seeded-fuzz smoke test for the communication stack: random grid
 * topologies across all interconnect classes, random phased-fidelity
 * window evaluations. Properties checked:
 *
 *  - every latency/energy is finite and non-negative (no NaN leaks
 *    from the queueing curve or the plane pricing);
 *  - applied M/D/1 factors stay inside [1, 1 + 0.95/0.1];
 *  - queueingFactor is monotone non-decreasing in link load.
 *
 * Seeds are fixed: a failure reproduces exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "arch/mcm.h"
#include "arch/topology.h"
#include "cost/comm_model.h"
#include "cost/cost_db.h"
#include "cost/window_evaluator.h"
#include "workload/model_zoo.h"
#include "workload/scenario.h"

namespace scar
{
namespace
{

/** A random grid topology of any interconnect class. */
Topology
randomTopology(std::mt19937_64& rng)
{
    std::uniform_int_distribution<int> dimDist(2, 5);
    const int w = dimDist(rng);
    const int h = dimDist(rng);
    const int n = w * h;
    std::uniform_int_distribution<int> kindDist(0, 3);
    switch (kindDist(rng)) {
      case 0:
        return Topology::mesh(w, h);
      case 1:
        return Topology::torus(w, h);
      case 2: {
        // Up to two express links between non-adjacent, distinct,
        // not-yet-linked chiplet pairs.
        std::vector<Link> express;
        std::uniform_int_distribution<int> nodeDist(0, n - 1);
        for (int tries = 0;
             tries < 20 && static_cast<int>(express.size()) < 2;
             ++tries) {
            int a = nodeDist(rng);
            int b = nodeDist(rng);
            if (a == b)
                continue;
            if (a > b)
                std::swap(a, b);
            const int manhattan =
                std::abs(a % w - b % w) + std::abs(a / w - b / w);
            if (manhattan <= 1)
                continue;
            bool dup = false;
            for (const Link& e : express)
                dup = dup || (e.first == a && e.second == b);
            if (!dup)
                express.push_back({a, b});
        }
        if (express.empty())
            return Topology::mesh(w, h);
        return Topology::expressMesh(w, h, std::move(express));
      }
      default: {
        std::vector<int> members;
        std::bernoulli_distribution pick(0.5);
        for (int id = 0; id < n; ++id) {
            if (pick(rng))
                members.push_back(id);
        }
        if (static_cast<int>(members.size()) < 2)
            members = {0, n - 1};
        return Topology::broadcastMesh(w, h, std::move(members));
    }
    }
}

/** Wraps a topology into a package (side columns own the DRAM ports). */
Mcm
packageFor(Topology topo, int seed)
{
    const int w = topo.meshWidth();
    const int h = topo.meshHeight();
    std::vector<Chiplet> chiplets;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            Chiplet c;
            c.id = y * w + x;
            c.x = x;
            c.y = y;
            c.memInterface = (x == 0 || x == w - 1);
            c.spec.dataflow =
                (x + y) % 2 == 0 ? Dataflow::NvdlaWS : Dataflow::ShiOS;
            c.spec.numPes = 256;
            chiplets.push_back(c);
        }
    }
    return Mcm("fuzz-" + std::to_string(seed), std::move(chiplets),
               std::move(topo));
}

/** Random valid window placement: distinct chiplets, 1-2 segments. */
WindowPlacement
randomPlacement(const Scenario& sc, int numChiplets,
                std::mt19937_64& rng)
{
    std::vector<int> chipletPool(numChiplets);
    for (int i = 0; i < numChiplets; ++i)
        chipletPool[i] = i;
    std::shuffle(chipletPool.begin(), chipletPool.end(), rng);

    WindowPlacement placement;
    std::size_t next = 0;
    for (int m = 0; m < sc.numModels(); ++m) {
        const int layers = sc.models[m].numLayers();
        std::uniform_int_distribution<int> segDist(1, 2);
        const int want = std::min(segDist(rng), layers);
        if (next + want > chipletPool.size())
            break;
        ModelPlacement mp;
        mp.modelIdx = m;
        if (want == 2) {
            std::uniform_int_distribution<int> cutDist(1, layers - 1);
            const int cut = cutDist(rng);
            mp.segments.push_back({{0, cut - 1}, chipletPool[next++]});
            mp.segments.push_back(
                {{cut, layers - 1}, chipletPool[next++]});
        } else {
            mp.segments.push_back(
                {{0, layers - 1}, chipletPool[next++]});
        }
        placement.models.push_back(std::move(mp));
    }
    return placement;
}

TEST(CommFuzz, PhasedEvaluationsStayFiniteOnRandomTopologies)
{
    Scenario sc;
    sc.name = "fuzz";
    sc.models = {zoo::eyeCod(2), zoo::handSP(1)};
    sc.finalize();
    constexpr double kMaxFactor = 1.0 + 0.95 / (2.0 * (1.0 - 0.95));

    std::mt19937_64 rng(0xF0220808u);
    for (int round = 0; round < 40; ++round) {
        const Mcm mcm = packageFor(randomTopology(rng), round);
        const CostDb db(sc, mcm);
        EvaluatorOptions options;
        options.fidelity = CommFidelity::Phased;
        const WindowEvaluator evaluator(db, options);

        for (int rep = 0; rep < 3; ++rep) {
            const WindowPlacement placement =
                randomPlacement(sc, mcm.numChiplets(), rng);
            if (placement.models.empty())
                continue;
            const WindowCost cost = evaluator.evaluate(placement);
            ASSERT_TRUE(std::isfinite(cost.latencyCycles))
                << mcm.name();
            ASSERT_TRUE(std::isfinite(cost.energyNj)) << mcm.name();
            ASSERT_GE(cost.latencyCycles, 0.0) << mcm.name();
            ASSERT_GE(cost.energyNj, 0.0) << mcm.name();
            ASSERT_GE(cost.dramBytes, 0.0) << mcm.name();
            ASSERT_GE(cost.maxQueueFactor, 1.0) << mcm.name();
            ASSERT_LE(cost.maxQueueFactor, kMaxFactor + 1e-12)
                << mcm.name();
            for (const ModelWindowCost& mc : cost.perModel) {
                ASSERT_TRUE(std::isfinite(mc.latencyCycles));
                ASSERT_GE(mc.latencyCycles, 0.0);
                for (const SegmentCost& seg : mc.segments) {
                    ASSERT_TRUE(
                        std::isfinite(seg.firstSampleCycles));
                    ASSERT_GE(seg.firstSampleCycles, 0.0);
                    ASSERT_GE(seg.steadySampleCycles, 0.0);
                    ASSERT_GE(seg.energyNj, 0.0);
                }
            }
        }
    }
}

TEST(CommFuzz, QueueingFactorIsMonotoneInLoad)
{
    std::mt19937_64 rng(0xBEEF2026u);
    for (int round = 0; round < 25; ++round) {
        const Mcm mcm = packageFor(randomTopology(rng), 1000 + round);
        const CommModel comm(mcm);
        const Topology& topo = mcm.topology();
        std::uniform_int_distribution<int> linkDist(
            0, topo.numLinks() - 1);
        std::uniform_real_distribution<double> windowDist(1.0, 1.0e7);
        const int linkId = linkDist(rng);
        const double windowCycles = windowDist(rng);

        double prev = comm.queueingFactor(0.0, windowCycles, linkId);
        ASSERT_DOUBLE_EQ(prev, 1.0);
        for (double load = 1.0; load <= 1.0e15; load *= 10.0) {
            const double f =
                comm.queueingFactor(load, windowCycles, linkId);
            ASSERT_TRUE(std::isfinite(f));
            ASSERT_GE(f, prev)
                << "load " << load << " on " << mcm.name();
            prev = f;
        }
    }
}

} // namespace
} // namespace scar
