/**
 * @file
 * Tests for the MCM-Reconfig engine: time-window plans, the greedy
 * layer packing of Algorithm 1, and the uniform baseline.
 */

#include <gtest/gtest.h>

#include "arch/mcm_templates.h"
#include "common/error.h"
#include "sched/greedy_packing.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

Scenario
twoModelScenario()
{
    Scenario sc;
    sc.name = "pack";
    sc.models = {zoo::resNet50(2), zoo::bertBase(1)};
    sc.finalize();
    return sc;
}

class PackingTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PackingTest, GreedyPlanIsValidPartition)
{
    const Scenario sc = twoModelScenario();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    const WindowPlan plan = packLayers(db, GetParam());
    // packLayers validates internally; re-validate and check counts.
    plan.validate(sc);
    EXPECT_GE(static_cast<int>(plan.windows.size()), 1);
    EXPECT_LE(static_cast<int>(plan.windows.size()), GetParam() + 1);
    int layers = 0;
    for (const WindowAssignment& wa : plan.windows)
        layers += wa.totalLayers();
    EXPECT_EQ(layers, sc.totalLayers());
}

TEST_P(PackingTest, UniformPlanIsValidPartition)
{
    const Scenario sc = twoModelScenario();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const CostDb db(sc, mcm);
    const WindowPlan plan =
        packLayers(db, GetParam(), PackingPolicy::Uniform);
    plan.validate(sc);
}

INSTANTIATE_TEST_SUITE_P(Nsplits, PackingTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 8));

TEST(Packing, ZeroSplitsYieldsOneWindow)
{
    const Scenario sc = twoModelScenario();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const CostDb db(sc, mcm);
    const WindowPlan plan = packLayers(db, 0);
    EXPECT_EQ(plan.windows.size(), 1u);
    for (int m = 0; m < sc.numModels(); ++m) {
        EXPECT_EQ(plan.windows[0].perModel[m].size(),
                  sc.models[m].numLayers());
    }
}

TEST(Packing, NoEmptyWindowsSurvive)
{
    const Scenario sc = twoModelScenario();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const CostDb db(sc, mcm);
    const WindowPlan plan = packLayers(db, 6);
    for (const WindowAssignment& wa : plan.windows)
        EXPECT_FALSE(wa.empty());
}

TEST(Packing, GreedyBalancesByExpectedTime)
{
    // With periodic boundaries, no window (except possibly the last)
    // should exceed the boundary by more than one deferred layer.
    const Scenario sc = twoModelScenario();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    const int nsplits = 4;
    const WindowPlan plan = packLayers(db, nsplits);

    double horizon = 0.0;
    for (int m = 0; m < sc.numModels(); ++m)
        horizon = std::max(horizon, expectedModelCycles(db, m));
    const double budget = horizon / (nsplits + 1);

    // All windows but the last: per-model expected time within budget
    // (first-fit never overfills a bounded window).
    for (std::size_t w = 0; w + 1 < plan.windows.size(); ++w) {
        for (int m = 0; m < sc.numModels(); ++m) {
            const LayerRange& r = plan.windows[w].perModel[m];
            if (r.empty())
                continue;
            double used = 0.0;
            for (int l = r.first; l <= r.last; ++l)
                used += db.expectedLayerCycles(m, l) *
                        sc.models[m].batch;
            EXPECT_LE(used, budget * (w + 1) + 1e-6)
                << "window " << w << " model " << m;
        }
    }
}

TEST(Packing, HeavyLayersDeferToLaterWindows)
{
    // GPT-L layers are heavy; with many splits the early windows hold
    // fewer GPT layers than a uniform split would give.
    Scenario sc;
    sc.name = "heavy";
    sc.models = {zoo::gptL(1), zoo::eyeCod(1)};
    sc.finalize();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const CostDb db(sc, mcm);
    const WindowPlan plan = packLayers(db, 4);
    // EyeCod (small) finishes in the very first window.
    EXPECT_EQ(plan.windows.front().perModel[1].size(),
              sc.models[1].numLayers());
}

TEST(Packing, ExpectedModelCyclesScalesWithBatch)
{
    Scenario sc1;
    sc1.name = "s1";
    sc1.models = {zoo::eyeCod(1)};
    sc1.finalize();
    Scenario sc3;
    sc3.name = "s3";
    sc3.models = {zoo::eyeCod(3)};
    sc3.finalize();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    // At a fixed chiplet mini-batch the expectation is linear in the
    // batch; the auto mini-batch makes the batched model cheaper.
    const CostDb db1(sc1, mcm, MaestroLite{}, CostDbOptions{1});
    const CostDb db3(sc3, mcm, MaestroLite{}, CostDbOptions{1});
    EXPECT_NEAR(expectedModelCycles(db3, 0),
                3.0 * expectedModelCycles(db1, 0), 1e-6);
    const CostDb db3Auto(sc3, mcm);
    EXPECT_LE(expectedModelCycles(db3Auto, 0),
              expectedModelCycles(db3, 0) * 1.0001);
}

TEST(WindowPlan, ValidateCatchesGaps)
{
    const Scenario sc = twoModelScenario();
    WindowPlan plan;
    plan.windows.resize(1);
    plan.windows[0].perModel.resize(2);
    plan.windows[0].perModel[0] =
        LayerRange{0, sc.models[0].numLayers() - 2}; // one layer short
    plan.windows[0].perModel[1] =
        LayerRange{0, sc.models[1].numLayers() - 1};
    EXPECT_THROW(plan.validate(sc), FatalError);
}

TEST(WindowPlan, ValidateCatchesOutOfOrderRanges)
{
    const Scenario sc = twoModelScenario();
    WindowPlan plan;
    plan.windows.resize(2);
    for (auto& wa : plan.windows)
        wa.perModel.resize(2);
    const int n0 = sc.models[0].numLayers();
    plan.windows[0].perModel[0] = LayerRange{5, n0 - 1};
    plan.windows[1].perModel[0] = LayerRange{0, 4}; // wrong order
    plan.windows[0].perModel[1] =
        LayerRange{0, sc.models[1].numLayers() - 1};
    EXPECT_THROW(plan.validate(sc), FatalError);
}

} // namespace
} // namespace scar
