/**
 * @file
 * Tests for the model zoo and the CNN/transformer builders: structural
 * invariants for every model (parameterized) plus per-model checks
 * against the published architectures.
 */

#include <gtest/gtest.h>

#include <functional>

#include "workload/cnn_builder.h"
#include "workload/model_zoo.h"
#include "workload/transformer_builder.h"

namespace scar
{
namespace
{

struct ZooEntry
{
    const char* name;
    std::function<Model(int)> build;
};

class ZooModelTest : public ::testing::TestWithParam<ZooEntry>
{
};

TEST_P(ZooModelTest, StructurallyValid)
{
    const Model m = GetParam().build(1);
    EXPECT_FALSE(m.layers.empty());
    // finalize() ran in the builder: ids are consecutive.
    for (int i = 0; i < m.numLayers(); ++i)
        EXPECT_EQ(m.layers[i].id, i);
}

TEST_P(ZooModelTest, PositiveComputeAndTraffic)
{
    const Model m = GetParam().build(1);
    EXPECT_GT(m.totalMacs(), 0.0);
    for (const Layer& l : m.layers) {
        EXPECT_GT(l.macs(), 0.0) << l.name;
        EXPECT_GT(l.inputBytes(), 0.0) << l.name;
        EXPECT_GT(l.outputBytes(), 0.0) << l.name;
    }
}

TEST_P(ZooModelTest, BatchIsCarried)
{
    const Model m = GetParam().build(7);
    EXPECT_EQ(m.batch, 7);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooModelTest,
    ::testing::Values(
        ZooEntry{"gptL", [](int b) { return zoo::gptL(b); }},
        ZooEntry{"bertLarge", [](int b) { return zoo::bertLarge(b); }},
        ZooEntry{"bertBase", [](int b) { return zoo::bertBase(b); }},
        ZooEntry{"resNet50", [](int b) { return zoo::resNet50(b); }},
        ZooEntry{"uNet", [](int b) { return zoo::uNet(b); }},
        ZooEntry{"googleNet", [](int b) { return zoo::googleNet(b); }},
        ZooEntry{"d2go", [](int b) { return zoo::d2go(b); }},
        ZooEntry{"planeRcnn", [](int b) { return zoo::planeRcnn(b); }},
        ZooEntry{"midas", [](int b) { return zoo::midas(b); }},
        ZooEntry{"emformer", [](int b) { return zoo::emformer(b); }},
        ZooEntry{"hrvit", [](int b) { return zoo::hrvit(b); }},
        ZooEntry{"handSP", [](int b) { return zoo::handSP(b); }},
        ZooEntry{"eyeCod", [](int b) { return zoo::eyeCod(b); }},
        ZooEntry{"sp2Dense", [](int b) { return zoo::sp2Dense(b); }}),
    [](const ::testing::TestParamInfo<ZooEntry>& info) {
        return info.param.name;
    });

TEST(ModelZoo, ResNet50MacsNearPublished)
{
    // ~4.1 GMACs for one 224x224 inference (published figure).
    const Model m = zoo::resNet50(1);
    EXPECT_GT(m.totalMacs(), 3.5e9);
    EXPECT_LT(m.totalMacs(), 5.5e9);
}

TEST(ModelZoo, ResNet50WeightsNearPublished)
{
    // ~25.5 M parameters at one byte each.
    const Model m = zoo::resNet50(1);
    EXPECT_GT(m.totalWeightBytes(), 20.0e6);
    EXPECT_LT(m.totalWeightBytes(), 30.0e6);
}

TEST(ModelZoo, GptLParameterCountNearPublished)
{
    // GPT-2 Large: ~774 M parameters (incl. 64 M embedding matrix).
    const Model m = zoo::gptL(1);
    EXPECT_GT(m.totalWeightBytes(), 6.0e8);
    EXPECT_LT(m.totalWeightBytes(), 9.5e8);
}

TEST(ModelZoo, BertLargeDeeperThanBase)
{
    EXPECT_GT(zoo::bertLarge(1).numLayers(), zoo::bertBase(1).numLayers());
    EXPECT_GT(zoo::bertLarge(1).totalMacs(), zoo::bertBase(1).totalMacs());
}

TEST(ModelZoo, UNetHas23Convolutions)
{
    const Model m = zoo::uNet(1);
    int convs = 0;
    for (const Layer& l : m.layers) {
        if (l.type == OpType::Conv2D)
            ++convs;
    }
    EXPECT_EQ(convs, 23); // classic U-Net configuration
}

TEST(ModelZoo, TransformersAreAllGemm)
{
    for (const Layer& l : zoo::bertLarge(1).layers)
        EXPECT_EQ(l.type, OpType::Gemm) << l.name;
}

TEST(ModelZoo, CnnsStartSpatiallyLarge)
{
    // First conv of ResNet-50 has a large output grid (Shi-affine).
    const Model resnet = zoo::resNet50(1);
    const Layer& first = resnet.layers.front();
    EXPECT_GT(first.outY() * first.outX(), 10000);
    EXPECT_LT(first.dims.k * first.dims.c, 256);
}

TEST(TransformerBuilder, CoarseLayerCount)
{
    TransformerConfig cfg;
    cfg.name = "t";
    cfg.numBlocks = 4;
    const Model m = buildTransformer(cfg);
    EXPECT_EQ(m.numLayers(), 4 * 3); // MHA + FFN1 + FFN2 per block
}

TEST(TransformerBuilder, FineLayerCount)
{
    TransformerConfig cfg;
    cfg.name = "t";
    cfg.numBlocks = 4;
    cfg.granularity = TransformerGranularity::Fine;
    const Model m = buildTransformer(cfg);
    EXPECT_EQ(m.numLayers(), 4 * 5);
}

TEST(TransformerBuilder, GranularitiesPreserveMacs)
{
    TransformerConfig coarse;
    coarse.name = "t";
    coarse.numBlocks = 6;
    TransformerConfig fine = coarse;
    fine.granularity = TransformerGranularity::Fine;
    const double cm = buildTransformer(coarse).totalMacs();
    const double fm = buildTransformer(fine).totalMacs();
    EXPECT_NEAR(cm / fm, 1.0, 0.05); // fused MHA ~= exact decomposition
}

TEST(TransformerBuilder, VocabAddsEmbedAndHead)
{
    TransformerConfig cfg;
    cfg.name = "t";
    cfg.numBlocks = 2;
    cfg.vocab = 1000;
    const Model m = buildTransformer(cfg);
    EXPECT_EQ(m.layers.front().name, "embed");
    EXPECT_EQ(m.layers.back().name, "lm_head");
    EXPECT_EQ(m.numLayers(), 2 * 3 + 2);
}

TEST(CnnBuilder, TracksShapesThroughLayers)
{
    CnnBuilder b("net", 1, 3, 224, 224);
    b.conv("c1", 64, 7, 7, 2);
    EXPECT_EQ(b.channels(), 64);
    EXPECT_EQ(b.height(), 112);
    b.pool("p1", 3, 2);
    EXPECT_EQ(b.height(), 56);
    b.globalPool("gap");
    EXPECT_EQ(b.height(), 1);
    b.fc("fc", 10);
    EXPECT_EQ(b.channels(), 10);
    const Model m = b.build();
    EXPECT_EQ(m.numLayers(), 4);
}

TEST(CnnBuilder, UpConvDoublesSpatialDims)
{
    CnnBuilder b("net", 1, 8, 16, 16);
    b.upConv("up", 4, 2);
    EXPECT_EQ(b.height(), 32);
    EXPECT_EQ(b.width(), 32);
    EXPECT_EQ(b.channels(), 4);
}

TEST(CnnBuilder, SetChannelsModelsConcat)
{
    CnnBuilder b("net", 1, 8, 16, 16);
    b.conv("c", 4, 3, 3, 1);
    b.setChannels(12); // e.g. concat of two branches
    b.conv("c2", 6, 1, 1, 1);
    const Model m = b.build();
    EXPECT_EQ(m.layers.back().dims.c, 12);
}

} // namespace
} // namespace scar
