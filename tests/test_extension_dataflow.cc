/**
 * @file
 * Tests for the row-stationary (Eyeriss-style) dataflow extension and
 * the three-class Het-Tri MCM template — the |DF| > 2 generality the
 * paper's formulation (Eq. 1) supports and its conclusion motivates.
 */

#include <gtest/gtest.h>

#include <set>

#include "arch/mcm_templates.h"
#include "cost/cost_db.h"
#include "cost/maestro_lite.h"
#include "sched/scar.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

ChipletSpec
spec(Dataflow df, int pes = 4096)
{
    ChipletSpec s;
    s.dataflow = df;
    s.numPes = pes;
    return s;
}

TEST(RowStationary, EnumIsDenselyIndexed)
{
    std::set<int> indices;
    for (Dataflow df : kAllDataflows)
        indices.insert(dataflowIndex(df));
    EXPECT_EQ(static_cast<int>(indices.size()), kNumDataflows);
    EXPECT_EQ(*indices.begin(), 0);
    EXPECT_EQ(*indices.rbegin(), kNumDataflows - 1);
    EXPECT_STREQ(dataflowName(Dataflow::EyerissRS), "RS");
}

TEST(RowStationary, UtilizationBoundedAcrossModels)
{
    const MaestroLite model;
    for (const Layer& l : zoo::resNet50(1).layers) {
        const LayerCost cost =
            model.evalLayer(l, spec(Dataflow::EyerissRS));
        EXPECT_GT(cost.utilization, 0.0) << l.name;
        EXPECT_LE(cost.utilization, 1.0 + 1e-9) << l.name;
        EXPECT_GE(cost.computeCycles * 4096.0, cost.macs * 0.999)
            << l.name;
    }
}

TEST(RowStationary, GeneralistBetweenWsAndOs)
{
    // On a GEMM, RS parallelizes K x rows: far better than OS (rows
    // only), and within a small factor of WS.
    const MaestroLite model;
    const Layer gemm = makeGemmLayer(0, "g", 128, 5120, 1280);
    const double ws =
        model.evalLayer(gemm, spec(Dataflow::NvdlaWS)).intraCycles();
    const double os =
        model.evalLayer(gemm, spec(Dataflow::ShiOS)).intraCycles();
    const double rs =
        model.evalLayer(gemm, spec(Dataflow::EyerissRS)).intraCycles();
    EXPECT_LT(rs, os);
    EXPECT_LT(rs, ws * 4.0);
}

TEST(RowStationary, EarlyConvCompetitiveWithOs)
{
    // Early convs: RS parallelizes rows (large), beating WS.
    const MaestroLite model;
    Layer conv;
    conv.type = OpType::Conv2D;
    conv.dims = LayerDims{64, 3, 7, 7, 224, 224, 2, 2};
    const double ws =
        model.evalLayer(conv, spec(Dataflow::NvdlaWS)).intraCycles();
    const double rs =
        model.evalLayer(conv, spec(Dataflow::EyerissRS)).intraCycles();
    EXPECT_LT(rs, ws);
}

TEST(RowStationary, BatchFoldingAddsRows)
{
    const MaestroLite model;
    const Layer gemm = makeGemmLayer(0, "g", 32, 512, 512);
    const LayerCost b1 =
        model.evalLayer(gemm, spec(Dataflow::EyerissRS), 1);
    const LayerCost b8 =
        model.evalLayer(gemm, spec(Dataflow::EyerissRS), 8);
    EXPECT_LE(b8.computeCycles, b1.computeCycles * 1.0001);
}

TEST(HetTriple, TemplateMixesThreeClasses)
{
    const Mcm mcm = templates::hetTriple3x3();
    EXPECT_EQ(mcm.numChiplets(), 9);
    EXPECT_EQ(mcm.numWithDataflow(Dataflow::NvdlaWS), 3);
    EXPECT_EQ(mcm.numWithDataflow(Dataflow::EyerissRS), 3);
    EXPECT_EQ(mcm.numWithDataflow(Dataflow::ShiOS), 3);
}

TEST(HetTriple, Eq1AveragesOverThreeClasses)
{
    Scenario sc;
    sc.name = "tri";
    sc.models = {zoo::eyeCod(2)};
    sc.finalize();
    const Mcm mcm = templates::hetTriple3x3();
    const CostDb db(sc, mcm);
    double manual = 0.0;
    for (Dataflow df : kAllDataflows)
        manual += db.layerCycles(0, 0, df) / 3.0;
    EXPECT_NEAR(db.expectedLayerCycles(0, 0), manual, 1e-9);
}

TEST(HetTriple, ScarSchedulesOnThreeClassMcm)
{
    Scenario sc;
    sc.name = "tri";
    sc.models = {zoo::eyeCod(8), zoo::handSP(4)};
    sc.finalize();
    const Mcm mcm = templates::hetTriple3x3(templates::kArvrPes);
    ScarOptions opts;
    opts.nsplits = 2;
    Scar scar(sc, mcm, opts);
    const ScheduleResult result = scar.run();
    EXPECT_GT(result.metrics.latencySec, 0.0);
    // Full coverage of both models.
    std::vector<int> next(sc.numModels(), 0);
    for (const ScheduledWindow& sw : result.windows) {
        for (const ModelPlacement& mp : sw.placement.models) {
            for (const PlacedSegment& seg : mp.segments) {
                EXPECT_EQ(seg.range.first, next[mp.modelIdx]);
                next[mp.modelIdx] = seg.range.last + 1;
            }
        }
    }
    for (int m = 0; m < sc.numModels(); ++m)
        EXPECT_EQ(next[m], sc.models[m].numLayers());
}

} // namespace
} // namespace scar
