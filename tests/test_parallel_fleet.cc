/**
 * @file
 * Tests for the planet-scale serving additions: the parallel epoch
 * engine (serial-vs-parallel byte identity of the report, metrics,
 * samples, and trace export at several engine-thread counts), the
 * conservative epoch bound (drainUntil never crosses it and never
 * emits a dispatch-done tick inside an epoch), the hierarchical
 * cluster -> pod -> shard routing index (identical decisions and
 * routing-quality counters to the flat BestFit scan on small
 * fleets), and the signature-striped AsyncScheduleCache (exactly
 * one solve per key under concurrent callers, stripe-count rules).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "arch/mcm_templates.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "eval/reporter.h"
#include "obs/flight_recorder.h"
#include "runtime/fleet.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace runtime
{
namespace
{

std::vector<ServedModel>
twoModelCatalog()
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::eyeCod(4);
    catalog[0].rateRps = 200.0;
    catalog[0].sloSec = 0.05;
    catalog[1].model = zoo::handSP(2);
    catalog[1].rateRps = 100.0;
    catalog[1].sloSec = 0.05;
    return catalog;
}

/** Every observable artifact of one fleet run, rendered to text so
 *  equality checks are byte-for-byte, not field-by-field. */
struct RunArtifacts
{
    std::string report;
    std::string traceJson;
    std::string metricsJson;
    std::string metricsCsv;
    std::string samplesCsv;

    bool operator==(const RunArtifacts& o) const
    {
        return report == o.report && traceJson == o.traceJson &&
               metricsJson == o.metricsJson &&
               metricsCsv == o.metricsCsv &&
               samplesCsv == o.samplesCsv;
    }
};

RunArtifacts
runFleet(FleetOptions options, const std::vector<ServedModel>& catalog,
         int requests, unsigned seed)
{
    obs::FlightRecorder rec;
    options.recorder = &rec;
    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    const auto trace = poissonTrace(catalog, requests, seed);
    RunArtifacts out;
    out.report = describeServingReport(fleet.run(trace));
    out.traceJson = rec.trace().toJson();
    out.metricsJson = rec.metrics().toJson();
    out.metricsCsv = rec.metrics().toCsv();
    out.samplesCsv = rec.samples().toCsv();
    return out;
}

/** A 4-shard heterogeneous BestFit fleet exercising every epoch
 *  hazard at once: deferral, speculation, solve stalls, switches. */
FleetOptions
epochFleetOptions()
{
    FleetOptions options;
    options.shardTemplates = {
        templates::hetSides3x3(templates::kArvrPes),
        templates::simba3x3(Dataflow::ShiOS, templates::kArvrPes),
        templates::hetSides3x3(templates::kArvrPes),
        templates::simba3x3(Dataflow::NvdlaWS, 64)};
    options.routing = RoutingPolicy::BestFit;
    options.serving.modeledSolveSec = 0.01;
    options.serving.switchOverheadSec = 0.002;
    options.serving.admission.maxQueueDelaySec = 0.005;
    return options;
}

TEST(ParallelFleet, EngineThreadsAreByteInvisible)
{
    const auto catalog = twoModelCatalog();
    FleetOptions options = epochFleetOptions();
    options.engineThreads = 1; // serial reference
    const RunArtifacts serial = runFleet(options, catalog, 400, 17);

    // 0 borrows the serving pool; > 1 builds a dedicated engine pool.
    for (const int threads : {0, 4, 8}) {
        options.engineThreads = threads;
        const RunArtifacts parallel =
            runFleet(options, catalog, 400, 17);
        EXPECT_TRUE(serial == parallel)
            << "engineThreads = " << threads
            << " diverged from the serial engine";
    }
}

TEST(ParallelFleet, SingleShardServingPathIsUnchanged)
{
    // The golden serving scenario shape: one shard, RoundRobin. The
    // epoch engine must leave it byte-identical too.
    const auto catalog = twoModelCatalog();
    FleetOptions options;
    options.shards = 1;
    options.routing = RoutingPolicy::RoundRobin;
    options.serving.modeledSolveSec = 0.01;
    options.engineThreads = 1;
    const RunArtifacts serial = runFleet(options, catalog, 250, 3);
    options.engineThreads = 8;
    const RunArtifacts parallel = runFleet(options, catalog, 250, 3);
    EXPECT_TRUE(serial == parallel);
}

TEST(ParallelFleet, PreemptiveFleetsIgnoreEngineThreads)
{
    // Preemption keeps the single-tick path; engineThreads must be
    // inert there, not break it.
    const auto catalog = twoModelCatalog();
    FleetOptions options = epochFleetOptions();
    options.serving.preemption.enabled = true;
    options.serving.preemption.slackThresholdSec = 0.004;
    options.engineThreads = 1;
    const RunArtifacts serial = runFleet(options, catalog, 300, 29);
    options.engineThreads = 8;
    const RunArtifacts parallel = runFleet(options, catalog, 300, 29);
    EXPECT_TRUE(serial == parallel);
}

TEST(ParallelFleet, DrainUntilStopsStrictlyBeforeBound)
{
    // Two windows of 1 s each starting at 2 s: boundaries at 3 and 4.
    CachedSchedule entry;
    Scenario mix;
    mix.name = "mix";
    mix.models = {zoo::eyeCod(1)};
    entry.mix = mix;
    ScheduledWindow w0;
    ModelPlacement mp;
    mp.modelIdx = 0;
    mp.segments.push_back(
        {LayerRange{0, mix.models[0].numLayers() - 1}, 0});
    w0.placement.models = {mp};
    w0.cost.latencyCycles = 500.0e6; // 1 s at the 500 MHz clock
    ScheduledWindow w1 = w0;
    entry.result.windows = {w0, w1};
    buildReplayView(entry);

    Dispatch dispatch;
    dispatch.mix = entry.mix;
    dispatch.catalogIdx = {0};
    BatchGroup g;
    g.catalogIdx = 0;
    g.batch = 1;
    Request r;
    r.id = 0;
    r.modelIdx = 0;
    r.arrivalSec = 1.0;
    g.requests = {r};
    dispatch.groups = {g};

    ReplayExecutor executor;
    executor.start(std::make_shared<CachedSchedule>(entry), dispatch,
                   2.0);
    EXPECT_DOUBLE_EQ(executor.finalBoundarySec(), 4.0);

    // Bound below the first boundary: nothing drains.
    std::vector<WindowTick> ticks;
    EXPECT_EQ(executor.drainUntil(3.0, ticks), 0u);
    EXPECT_TRUE(ticks.empty());
    EXPECT_TRUE(executor.busy());

    // Bound between the boundaries: exactly the first tick, and the
    // executor still owns its final window.
    EXPECT_EQ(executor.drainUntil(3.5, ticks), 1u);
    ASSERT_EQ(ticks.size(), 1u);
    EXPECT_DOUBLE_EQ(ticks[0].timeSec, 3.0);
    EXPECT_FALSE(ticks[0].dispatchDone);
    EXPECT_TRUE(executor.busy());

    // A bound at the final boundary (the epoch engine's cap) leaves
    // the dispatch-done tick for the serial path.
    EXPECT_EQ(executor.drainUntil(executor.finalBoundarySec(), ticks),
              0u);
    EXPECT_TRUE(executor.busy());
    EXPECT_EQ(executor.drainUntil(100.0, ticks), 1u);
    ASSERT_EQ(ticks.size(), 2u);
    EXPECT_TRUE(ticks[1].dispatchDone);
    EXPECT_FALSE(executor.busy());
}

TEST(ParallelFleet, IndexedRoutingMatchesFlatBestFit)
{
    // Acceptance gate: on small fleets the hierarchical index must
    // reproduce the flat scan's decisions and its routing-quality
    // counters exactly. Heterogeneous templates and a Poisson stream
    // keep candidate costs distinct (no eps-level ties).
    const auto catalog = twoModelCatalog();
    for (const bool defer : {true, false}) {
        FleetOptions options = epochFleetOptions();
        options.bestFitDefer = defer;
        options.indexedRouting = false;
        const RunArtifacts flat = runFleet(options, catalog, 400, 11);
        options.indexedRouting = true;
        const RunArtifacts indexed =
            runFleet(options, catalog, 400, 11);
        EXPECT_TRUE(flat == indexed) << "bestFitDefer = " << defer;
    }
}

TEST(ParallelFleet, IndexedRoutingMatchesFlatOnEveryPolicy)
{
    const auto catalog = twoModelCatalog();
    for (const RoutingPolicy policy :
         {RoutingPolicy::RoundRobin, RoutingPolicy::LeastLoaded,
          RoutingPolicy::MixAffinity}) {
        FleetOptions options = epochFleetOptions();
        options.routing = policy;
        options.indexedRouting = false;
        const RunArtifacts flat = runFleet(options, catalog, 300, 23);
        options.indexedRouting = true;
        const RunArtifacts indexed =
            runFleet(options, catalog, 300, 23);
        EXPECT_TRUE(flat == indexed)
            << "policy " << static_cast<int>(policy);
    }
}

TEST(ParallelFleet, IndexedRoutingKeepsCostOptimalityCounters)
{
    const auto catalog = twoModelCatalog();
    FleetOptions options = epochFleetOptions();
    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    const auto trace = poissonTrace(catalog, 400, 31);
    const ServingReport report = fleet.run(trace);
    // BestFit is cost-optimal by construction; the indexed path must
    // keep both the contested count and the optimal count intact.
    EXPECT_GT(report.contestedRoutes, 0);
    EXPECT_EQ(report.costOptimalRoutes, report.contestedRoutes);
    EXPECT_DOUBLE_EQ(report.costOptimalRouteFrac, 1.0);
}

// ---- striped AsyncScheduleCache ------------------------------------

Scenario
mixNamed(const std::string& name, int batch)
{
    Scenario sc;
    sc.name = name;
    sc.models = {zoo::eyeCod(batch)};
    return sc;
}

ScheduleResult
stubSchedule(const Scenario& mix)
{
    ScheduleResult result;
    ScheduledWindow sw;
    sw.cost.latencyCycles = 1000.0;
    for (int m = 0; m < mix.numModels(); ++m) {
        ModelPlacement mp;
        mp.modelIdx = m;
        mp.segments.push_back(
            {LayerRange{0, mix.models[m].numLayers() - 1}, m});
        sw.placement.models.push_back(mp);
    }
    result.windows.push_back(sw);
    return result;
}

TEST(StripedCache, DefaultStripeCountsFollowTheCapacityRule)
{
    ThreadPool pool(2);
    const AsyncScheduleCache unbounded(pool);
    EXPECT_EQ(unbounded.stripeCount(), 16);

    ScheduleCacheOptions bounded;
    bounded.capacity = 8;
    const AsyncScheduleCache lru(pool, bounded);
    EXPECT_EQ(lru.stripeCount(), 1)
        << "a global LRU order needs a global lock";

    const AsyncScheduleCache four(pool, ScheduleCacheOptions{}, 4);
    EXPECT_EQ(four.stripeCount(), 4);

    EXPECT_THROW(AsyncScheduleCache(pool, bounded, 4), FatalError);
}

TEST(StripedCache, SolvesExactlyOncePerKeyUnderConcurrency)
{
    ThreadPool pool(4);
    AsyncScheduleCache cache(pool);
    std::atomic<int> solves{0};
    const auto compute = [&](const Scenario& mix) {
        ++solves;
        return stubSchedule(mix);
    };

    // 8 distinct keys, 4 racing getOrCompute callers per key: each
    // key must solve exactly once and every caller must see the same
    // entry, stripes notwithstanding.
    constexpr int kKeys = 8;
    constexpr int kCallers = 4;
    std::vector<std::shared_ptr<const CachedSchedule>> seen(
        kKeys * kCallers);
    ThreadPool callers(8);
    callers.parallelFor(
        static_cast<std::size_t>(kKeys * kCallers),
        [&](std::size_t i) {
            const int key = static_cast<int>(i) % kKeys;
            seen[i] = cache.getOrCompute(
                mixNamed("mix" + std::to_string(key), key + 1),
                compute);
        });
    EXPECT_EQ(solves.load(), kKeys);
    EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
    for (int key = 0; key < kKeys; ++key)
        for (int c = 1; c < kCallers; ++c)
            EXPECT_EQ(seen[key], seen[c * kKeys + key])
                << "caller " << c << " of key " << key
                << " saw a different entry";

    const ScheduleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, kKeys);
    EXPECT_EQ(stats.hits + stats.misses, kKeys * kCallers);
}

TEST(StripedCache, PrefetchLookupJoinSpanStripes)
{
    ThreadPool pool(2);
    AsyncScheduleCache cache(pool);
    std::atomic<int> solves{0};
    const auto compute = [&](const Scenario& mix) {
        ++solves;
        return stubSchedule(mix);
    };

    for (int k = 0; k < 6; ++k)
        cache.prefetch(mixNamed("pf" + std::to_string(k), k + 1),
                       compute, 0.5);
    // Idempotent per key, regardless of stripe placement.
    for (int k = 0; k < 6; ++k)
        cache.prefetch(mixNamed("pf" + std::to_string(k), k + 1),
                       compute, 0.5);
    cache.drainInFlight();
    EXPECT_EQ(solves.load(), 6);
    EXPECT_EQ(cache.size(), 6u);

    // lookup() joins the stored entries as hits on their stripes.
    for (int k = 0; k < 6; ++k) {
        const Scenario mix = mixNamed("pf" + std::to_string(k), k + 1);
        const AsyncLookup found =
            cache.lookup(mix, compute, 1.0, 0.25);
        EXPECT_NE(found.schedule, nullptr);
        EXPECT_FALSE(found.startedSolve);
        EXPECT_DOUBLE_EQ(found.readySec, 1.0);
    }
    EXPECT_EQ(solves.load(), 6);
    EXPECT_EQ(cache.stats().hits, 6);
}

} // namespace
} // namespace runtime
} // namespace scar
