/**
 * @file
 * Tests for the planet-scale serving additions: the parallel epoch
 * engine (serial-vs-parallel byte identity of the report, metrics,
 * samples, and trace export at several engine-thread counts — on
 * plain, preemptive, and LLM continuous/static fleets), the
 * generalized conservative epoch bound (drainUntil never crosses
 * it, the join/urgency terms land ticks exactly on their cuts, and
 * the bound-term attribution statistics), the hierarchical
 * cluster -> pod -> shard routing index (identical decisions and
 * routing-quality counters to the flat BestFit scan on small
 * fleets), and the signature-striped AsyncScheduleCache (exactly
 * one solve per key under concurrent callers, stripe-count rules).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "arch/mcm_templates.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "eval/reporter.h"
#include "obs/flight_recorder.h"
#include "runtime/arrival.h"
#include "runtime/fleet.h"
#include "workload/model_zoo.h"
#include "workload/transformer_builder.h"

namespace scar
{
namespace runtime
{
namespace
{

std::vector<ServedModel>
twoModelCatalog()
{
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::eyeCod(4);
    catalog[0].rateRps = 200.0;
    catalog[0].sloSec = 0.05;
    catalog[1].model = zoo::handSP(2);
    catalog[1].rateRps = 100.0;
    catalog[1].sloSec = 0.05;
    return catalog;
}

/** Every observable artifact of one fleet run, rendered to text so
 *  equality checks are byte-for-byte, not field-by-field. */
struct RunArtifacts
{
    std::string report;
    std::string traceJson;
    std::string metricsJson;
    std::string metricsCsv;
    std::string samplesCsv;

    bool operator==(const RunArtifacts& o) const
    {
        return report == o.report && traceJson == o.traceJson &&
               metricsJson == o.metricsJson &&
               metricsCsv == o.metricsCsv &&
               samplesCsv == o.samplesCsv;
    }
};

RunArtifacts
runFleet(FleetOptions options, const std::vector<ServedModel>& catalog,
         const std::vector<Request>& trace,
         ServingReport* reportOut = nullptr)
{
    obs::FlightRecorder rec;
    options.recorder = &rec;
    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    RunArtifacts out;
    ServingReport report = fleet.run(trace);
    if (reportOut)
        *reportOut = report;
    // Normalize the render gate before formatting: the epoch-stats
    // section is keyed on engineThreads (so default reports keep the
    // pre-engine format), but the statistics themselves are identical
    // at every thread count. Pinning the field to one off-default
    // value on both sides makes every byte-equality below also cover
    // the epoch counters.
    report.engineThreads = 8;
    out.report = describeServingReport(report);
    out.traceJson = rec.trace().toJson();
    out.metricsJson = rec.metrics().toJson();
    out.metricsCsv = rec.metrics().toCsv();
    out.samplesCsv = rec.samples().toCsv();
    return out;
}

RunArtifacts
runFleet(FleetOptions options, const std::vector<ServedModel>& catalog,
         int requests, unsigned seed, ServingReport* reportOut = nullptr)
{
    return runFleet(std::move(options), catalog,
                    poissonTrace(catalog, requests, seed), reportOut);
}

/** A 4-shard heterogeneous BestFit fleet exercising every epoch
 *  hazard at once: deferral, speculation, solve stalls, switches. */
FleetOptions
epochFleetOptions()
{
    FleetOptions options;
    options.shardTemplates = {
        templates::hetSides3x3(templates::kArvrPes),
        templates::simba3x3(Dataflow::ShiOS, templates::kArvrPes),
        templates::hetSides3x3(templates::kArvrPes),
        templates::simba3x3(Dataflow::NvdlaWS, 64)};
    options.routing = RoutingPolicy::BestFit;
    options.serving.modeledSolveSec = 0.01;
    options.serving.switchOverheadSec = 0.002;
    options.serving.admission.maxQueueDelaySec = 0.005;
    return options;
}

TEST(ParallelFleet, EngineThreadsAreByteInvisible)
{
    const auto catalog = twoModelCatalog();
    FleetOptions options = epochFleetOptions();
    options.engineThreads = 1; // serial reference
    const RunArtifacts serial = runFleet(options, catalog, 400, 17);

    // 0 borrows the serving pool; > 1 builds a dedicated engine pool.
    for (const int threads : {0, 4, 8}) {
        options.engineThreads = threads;
        const RunArtifacts parallel =
            runFleet(options, catalog, 400, 17);
        EXPECT_TRUE(serial == parallel)
            << "engineThreads = " << threads
            << " diverged from the serial engine";
    }
}

TEST(ParallelFleet, SingleShardServingPathIsUnchanged)
{
    // The golden serving scenario shape: one shard, RoundRobin. The
    // epoch engine must leave it byte-identical too.
    const auto catalog = twoModelCatalog();
    FleetOptions options;
    options.shards = 1;
    options.routing = RoutingPolicy::RoundRobin;
    options.serving.modeledSolveSec = 0.01;
    options.engineThreads = 1;
    const RunArtifacts serial = runFleet(options, catalog, 250, 3);
    options.engineThreads = 8;
    const RunArtifacts parallel = runFleet(options, catalog, 250, 3);
    EXPECT_TRUE(serial == parallel);
}

TEST(ParallelFleet, PreemptiveFleetsMatchSerialAtEveryThreadCount)
{
    // Preemptive fleets drain in urgency-capped epochs now (the bound
    // stops strictly before the next deadline-slack crossing, and no
    // epoch forms while a replay is suspended). Full artifacts must
    // stay byte-identical to the serial engine, and the workload must
    // actually exercise both epochs and urgency crossings — a bound
    // that silently excluded every tick would pass a bare equality
    // check.
    const auto catalog = twoModelCatalog();
    FleetOptions options = epochFleetOptions();
    options.serving.preemption.enabled = true;
    options.serving.preemption.slackThresholdSec = 0.004;
    options.engineThreads = 1;
    ServingReport serialReport;
    const RunArtifacts serial =
        runFleet(options, catalog, 300, 29, &serialReport);
    EXPECT_GT(serialReport.epochs, 0)
        << "preemptive fleets must form epochs";
    EXPECT_GT(serialReport.preemptions, 0)
        << "the trace must still exercise urgency crossings";
    for (const int threads : {0, 4, 8}) {
        options.engineThreads = threads;
        const RunArtifacts parallel =
            runFleet(options, catalog, 300, 29);
        EXPECT_TRUE(serial == parallel)
            << "engineThreads = " << threads
            << " diverged under preemption";
    }
}

TEST(ParallelFleet, UrgencyCrossingCapsTheEpoch)
{
    // Regression for the urgency bound term: with queued work and a
    // tight SLO, at least one epoch must end at the deadline-slack
    // crossing (cap attribution kEpochCapUrgency), i.e. crossings are
    // not swallowed into longer epochs and then noticed late. A tight
    // SLO puts the crossing in front of the next replay end and the
    // batching timer, so the urgency term is the binding one.
    auto catalog = twoModelCatalog();
    catalog[0].sloSec = 0.006;
    catalog[1].sloSec = 0.006;
    FleetOptions options = epochFleetOptions();
    options.serving.preemption.enabled = true;
    options.serving.preemption.slackThresholdSec = 0.002;
    ServingReport report;
    (void)runFleet(options, catalog, 300, 29, &report);
    EXPECT_GT(report.preemptions, 0);
    EXPECT_GT(report.epochCapUrgency, 0)
        << "no epoch was capped by the urgency term";
}

/** One-model LLM catalog around a deliberately small decoder. */
std::vector<ServedModel>
llmChatCatalog(int batchCap)
{
    TransformerConfig cfg;
    cfg.name = "chat";
    cfg.numBlocks = 2;
    cfg.dModel = 128;
    cfg.dFf = 256;
    cfg.vocab = 0;
    std::vector<ServedModel> catalog(1);
    catalog[0].model = buildTransformer(cfg);
    catalog[0].model.batch = batchCap;
    catalog[0].rateRps = 100.0;
    catalog[0].llm.autoregressive = true;
    catalog[0].llm.decoder = cfg;
    catalog[0].llm.promptBucket = 64;
    catalog[0].llm.contextBucket = 256;
    catalog[0].llm.maxDecodeSteps = 32;
    return catalog;
}

TEST(ParallelFleet, LlmFleetsMatchSerialAtEveryThreadCount)
{
    // LLM fleets no longer bypass the epoch engine: the join term
    // caps epochs at the next step-aligned cut while decode waiters
    // exist, and the release term at the earliest mid-replay
    // autoregressive completion. Continuous and Static batching must
    // both stay byte-identical to the serial engine across every
    // engine mode (inline / borrowed / dedicated).
    const auto catalog = llmChatCatalog(/*batchCap=*/4);
    const auto trace = llmPoissonTrace(catalog, 80, 7);
    for (const LlmBatchingMode mode :
         {LlmBatchingMode::Continuous, LlmBatchingMode::Static}) {
        FleetOptions options;
        options.shards = 2;
        options.serving.modeledSolveSec = 0.002;
        options.serving.admission.maxQueueDelaySec = 0.001;
        options.serving.admission.llmBatching = mode;
        options.engineThreads = 1;
        ServingReport serialReport;
        const RunArtifacts serial =
            runFleet(options, catalog, trace, &serialReport);
        EXPECT_GT(serialReport.epochs, 0)
            << "LLM fleets must form epochs";
        EXPECT_GT(serialReport.llmDecodeRounds, 0);
        for (const int threads : {0, 4, 8}) {
            options.engineThreads = threads;
            const RunArtifacts parallel =
                runFleet(options, catalog, trace);
            EXPECT_TRUE(serial == parallel)
                << "engineThreads = " << threads << ", mode "
                << static_cast<int>(mode)
                << " diverged on the LLM fleet";
        }
    }
}

TEST(ParallelFleet, JoinLandsExactlyOnTheStepCut)
{
    // Regression for the join bound term: B's prefill finishes while
    // A decodes a long stream, so the join must land on a step-aligned
    // boundary of A's in-flight round — under every engine mode, with
    // the join count intact and all artifacts byte-identical. An
    // off-by-one-ulp join probe would either commit the cut tick
    // inside an epoch (losing the join) or cut a step early.
    auto catalog = llmChatCatalog(/*batchCap=*/4);
    auto trace =
        traceFromArrivals(catalog, {{0.0, 0}, {0.001, 0}});
    trace[0].promptTokens = 16;
    trace[0].outputTokens = 200; // long generation: many rounds
    trace[1].promptTokens = 16;
    trace[1].outputTokens = 8;

    FleetOptions options;
    options.shards = 2;
    options.serving.admission.llmBatching =
        LlmBatchingMode::Continuous;
    options.serving.admission.maxQueueDelaySec = 0.0002;
    options.engineThreads = 1;
    ServingReport serialReport;
    const RunArtifacts serial =
        runFleet(options, catalog, trace, &serialReport);
    EXPECT_GE(serialReport.llmJoins, 1)
        << "B must join A's in-flight decode stream";
    for (const int threads : {0, 4, 8}) {
        options.engineThreads = threads;
        ServingReport report;
        const RunArtifacts parallel =
            runFleet(options, catalog, trace, &report);
        EXPECT_EQ(report.llmJoins, serialReport.llmJoins);
        EXPECT_TRUE(serial == parallel)
            << "engineThreads = " << threads
            << " diverged around the join cut";
    }
}

TEST(ParallelFleet, EpochSectionRendersOnlyOffDefault)
{
    // The reporter's epoch-statistics section is gated on the
    // engineThreads knob: a default run keeps the pre-engine report
    // format byte for byte; any off-default value renders the stats.
    const auto catalog = twoModelCatalog();
    FleetOptions options = epochFleetOptions();
    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    ServingReport report = fleet.run(poissonTrace(catalog, 100, 5));
    EXPECT_EQ(report.engineThreads, 1);
    EXPECT_GT(report.epochs, 0);
    const std::string serial = describeServingReport(report);
    EXPECT_EQ(serial.find("Epoch ticks"), std::string::npos);
    report.engineThreads = 8;
    const std::string parallel = describeServingReport(report);
    EXPECT_NE(parallel.find("Engine threads"), std::string::npos);
    EXPECT_NE(parallel.find("Epoch ticks"), std::string::npos);
    EXPECT_NE(parallel.find("Commit batches"), std::string::npos);
}

TEST(ParallelFleet, EngineModeResolutionIsQueryable)
{
    const auto catalog = twoModelCatalog();
    const auto modeOf = [&](int threads) {
        FleetOptions options;
        options.engineThreads = threads;
        FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        return fleet.engineMode();
    };
    EXPECT_EQ(modeOf(1), EngineMode::Inline);
    EXPECT_EQ(modeOf(0), EngineMode::Borrowed);
    EXPECT_EQ(modeOf(8), EngineMode::Dedicated);
    EXPECT_STREQ(engineModeName(EngineMode::Inline), "inline");
    EXPECT_STREQ(engineModeName(EngineMode::Borrowed),
                 "borrowed-pool");
    EXPECT_STREQ(engineModeName(EngineMode::Dedicated),
                 "dedicated-pool");
}

TEST(ParallelFleet, DrainUntilStopsStrictlyBeforeBound)
{
    // Two windows of 1 s each starting at 2 s: boundaries at 3 and 4.
    CachedSchedule entry;
    Scenario mix;
    mix.name = "mix";
    mix.models = {zoo::eyeCod(1)};
    entry.mix = mix;
    ScheduledWindow w0;
    ModelPlacement mp;
    mp.modelIdx = 0;
    mp.segments.push_back(
        {LayerRange{0, mix.models[0].numLayers() - 1}, 0});
    w0.placement.models = {mp};
    w0.cost.latencyCycles = 500.0e6; // 1 s at the 500 MHz clock
    ScheduledWindow w1 = w0;
    entry.result.windows = {w0, w1};
    buildReplayView(entry);

    Dispatch dispatch;
    dispatch.mix = entry.mix;
    dispatch.catalogIdx = {0};
    BatchGroup g;
    g.catalogIdx = 0;
    g.batch = 1;
    Request r;
    r.id = 0;
    r.modelIdx = 0;
    r.arrivalSec = 1.0;
    g.requests = {r};
    dispatch.groups = {g};

    ReplayExecutor executor;
    executor.start(std::make_shared<CachedSchedule>(entry), dispatch,
                   2.0);
    EXPECT_DOUBLE_EQ(executor.finalBoundarySec(), 4.0);

    // Bound below the first boundary: nothing drains.
    std::vector<WindowTick> ticks;
    EXPECT_EQ(executor.drainUntil(3.0, ticks), 0u);
    EXPECT_TRUE(ticks.empty());
    EXPECT_TRUE(executor.busy());

    // Bound between the boundaries: exactly the first tick, and the
    // executor still owns its final window.
    EXPECT_EQ(executor.drainUntil(3.5, ticks), 1u);
    ASSERT_EQ(ticks.size(), 1u);
    EXPECT_DOUBLE_EQ(ticks[0].timeSec, 3.0);
    EXPECT_FALSE(ticks[0].dispatchDone);
    EXPECT_TRUE(executor.busy());

    // A bound at the final boundary (the epoch engine's cap) leaves
    // the dispatch-done tick for the serial path.
    EXPECT_EQ(executor.drainUntil(executor.finalBoundarySec(), ticks),
              0u);
    EXPECT_TRUE(executor.busy());
    EXPECT_EQ(executor.drainUntil(100.0, ticks), 1u);
    ASSERT_EQ(ticks.size(), 2u);
    EXPECT_TRUE(ticks[1].dispatchDone);
    EXPECT_FALSE(executor.busy());
}

TEST(ParallelFleet, BoundaryProbesAreUlpExact)
{
    // The join/release bound terms only work if the probes reproduce
    // advance()'s boundary instants bit for bit: a probe one ulp
    // early commits the cut tick inside the epoch, one ulp late cuts
    // a window short. Awkward window durations make naive
    // start-plus-prefix-sum arithmetic diverge from the executor's
    // left-to-right accumulation.
    CachedSchedule entry;
    Scenario mix;
    mix.name = "mix";
    mix.models = {zoo::eyeCod(1)};
    entry.mix = mix;
    ModelPlacement mp;
    mp.modelIdx = 0;
    mp.segments.push_back(
        {LayerRange{0, mix.models[0].numLayers() - 1}, 0});
    for (const double cycles :
         {333.3e6, 77.7e6, 123.456e6, 98.7e6, 55.5e6, 222.2e6}) {
        ScheduledWindow w;
        w.placement.models = {mp};
        w.cost.latencyCycles = cycles;
        entry.result.windows.push_back(w);
    }
    buildReplayView(entry);

    Dispatch dispatch;
    dispatch.mix = entry.mix;
    dispatch.catalogIdx = {0};
    BatchGroup g;
    g.catalogIdx = 0;
    g.batch = 1;
    Request r;
    r.id = 0;
    r.modelIdx = 0;
    r.arrivalSec = 0.0;
    g.requests = {r};
    dispatch.groups = {g};

    ReplayExecutor executor;
    executor.start(std::make_shared<CachedSchedule>(entry), dispatch,
                   0.1234567);

    // With 2 windows per step, the step-aligned cuts follow windows 1
    // and 3; window 5 is the final boundary and must never be a cut.
    const double cut1 = executor.nextStepBoundarySec(2);
    std::vector<WindowTick> ticks;
    EXPECT_EQ(executor.drainUntil(cut1, ticks), 1u)
        << "the cut tick itself must stay outside the epoch";
    WindowTick tick = executor.advance();
    EXPECT_EQ(tick.windowIdx, 1);
    EXPECT_EQ(tick.timeSec, cut1)
        << "join probe must match the tick instant bit for bit";

    const double cut2 = executor.nextStepBoundarySec(2);
    EXPECT_GT(cut2, cut1);
    ticks.clear();
    EXPECT_EQ(executor.drainUntil(cut2, ticks), 1u);
    tick = executor.advance();
    EXPECT_EQ(tick.windowIdx, 3);
    EXPECT_EQ(tick.timeSec, cut2);

    // Past the last step-aligned cut only the final (dispatch-done)
    // boundary remains, which the replay-end term already covers.
    EXPECT_EQ(executor.nextStepBoundarySec(2),
              std::numeric_limits<double>::infinity());

    // The release probe lands on the group's last-window boundary on
    // the same exact clock, and an empty predicate selects nothing.
    EXPECT_EQ(executor.earliestGroupEndSec(
                  [](std::size_t) { return true; }),
              executor.finalBoundarySec());
    EXPECT_EQ(executor.earliestGroupEndSec(
                  [](std::size_t) { return false; }),
              std::numeric_limits<double>::infinity());
}

TEST(ParallelFleet, IndexedRoutingMatchesFlatBestFit)
{
    // Acceptance gate: on small fleets the hierarchical index must
    // reproduce the flat scan's decisions and its routing-quality
    // counters exactly. Heterogeneous templates and a Poisson stream
    // keep candidate costs distinct (no eps-level ties).
    const auto catalog = twoModelCatalog();
    for (const bool defer : {true, false}) {
        FleetOptions options = epochFleetOptions();
        options.bestFitDefer = defer;
        options.indexedRouting = false;
        const RunArtifacts flat = runFleet(options, catalog, 400, 11);
        options.indexedRouting = true;
        const RunArtifacts indexed =
            runFleet(options, catalog, 400, 11);
        EXPECT_TRUE(flat == indexed) << "bestFitDefer = " << defer;
    }
}

TEST(ParallelFleet, IndexedRoutingMatchesFlatOnEveryPolicy)
{
    const auto catalog = twoModelCatalog();
    for (const RoutingPolicy policy :
         {RoutingPolicy::RoundRobin, RoutingPolicy::LeastLoaded,
          RoutingPolicy::MixAffinity}) {
        FleetOptions options = epochFleetOptions();
        options.routing = policy;
        options.indexedRouting = false;
        const RunArtifacts flat = runFleet(options, catalog, 300, 23);
        options.indexedRouting = true;
        const RunArtifacts indexed =
            runFleet(options, catalog, 300, 23);
        EXPECT_TRUE(flat == indexed)
            << "policy " << static_cast<int>(policy);
    }
}

TEST(ParallelFleet, IndexedRoutingKeepsCostOptimalityCounters)
{
    const auto catalog = twoModelCatalog();
    FleetOptions options = epochFleetOptions();
    FleetSimulator fleet(catalog,
                         templates::hetSides3x3(templates::kArvrPes),
                         options);
    const auto trace = poissonTrace(catalog, 400, 31);
    const ServingReport report = fleet.run(trace);
    // BestFit is cost-optimal by construction; the indexed path must
    // keep both the contested count and the optimal count intact.
    EXPECT_GT(report.contestedRoutes, 0);
    EXPECT_EQ(report.costOptimalRoutes, report.contestedRoutes);
    EXPECT_DOUBLE_EQ(report.costOptimalRouteFrac, 1.0);
}

// ---- striped AsyncScheduleCache ------------------------------------

Scenario
mixNamed(const std::string& name, int batch)
{
    Scenario sc;
    sc.name = name;
    sc.models = {zoo::eyeCod(batch)};
    return sc;
}

ScheduleResult
stubSchedule(const Scenario& mix)
{
    ScheduleResult result;
    ScheduledWindow sw;
    sw.cost.latencyCycles = 1000.0;
    for (int m = 0; m < mix.numModels(); ++m) {
        ModelPlacement mp;
        mp.modelIdx = m;
        mp.segments.push_back(
            {LayerRange{0, mix.models[m].numLayers() - 1}, m});
        sw.placement.models.push_back(mp);
    }
    result.windows.push_back(sw);
    return result;
}

TEST(StripedCache, DefaultStripeCountsFollowTheCapacityRule)
{
    ThreadPool pool(2);
    const AsyncScheduleCache unbounded(pool);
    EXPECT_EQ(unbounded.stripeCount(), 16);

    ScheduleCacheOptions bounded;
    bounded.capacity = 8;
    const AsyncScheduleCache lru(pool, bounded);
    EXPECT_EQ(lru.stripeCount(), 1)
        << "a global LRU order needs a global lock";

    const AsyncScheduleCache four(pool, ScheduleCacheOptions{}, 4);
    EXPECT_EQ(four.stripeCount(), 4);

    EXPECT_THROW(AsyncScheduleCache(pool, bounded, 4), FatalError);
}

TEST(StripedCache, SolvesExactlyOncePerKeyUnderConcurrency)
{
    ThreadPool pool(4);
    AsyncScheduleCache cache(pool);
    std::atomic<int> solves{0};
    const auto compute = [&](const Scenario& mix) {
        ++solves;
        return stubSchedule(mix);
    };

    // 8 distinct keys, 4 racing getOrCompute callers per key: each
    // key must solve exactly once and every caller must see the same
    // entry, stripes notwithstanding.
    constexpr int kKeys = 8;
    constexpr int kCallers = 4;
    std::vector<std::shared_ptr<const CachedSchedule>> seen(
        kKeys * kCallers);
    ThreadPool callers(8);
    callers.parallelFor(
        static_cast<std::size_t>(kKeys * kCallers),
        [&](std::size_t i) {
            const int key = static_cast<int>(i) % kKeys;
            seen[i] = cache.getOrCompute(
                mixNamed("mix" + std::to_string(key), key + 1),
                compute);
        });
    EXPECT_EQ(solves.load(), kKeys);
    EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
    for (int key = 0; key < kKeys; ++key)
        for (int c = 1; c < kCallers; ++c)
            EXPECT_EQ(seen[key], seen[c * kKeys + key])
                << "caller " << c << " of key " << key
                << " saw a different entry";

    const ScheduleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, kKeys);
    EXPECT_EQ(stats.hits + stats.misses, kKeys * kCallers);
}

TEST(StripedCache, PrefetchLookupJoinSpanStripes)
{
    ThreadPool pool(2);
    AsyncScheduleCache cache(pool);
    std::atomic<int> solves{0};
    const auto compute = [&](const Scenario& mix) {
        ++solves;
        return stubSchedule(mix);
    };

    for (int k = 0; k < 6; ++k)
        cache.prefetch(mixNamed("pf" + std::to_string(k), k + 1),
                       compute, 0.5);
    // Idempotent per key, regardless of stripe placement.
    for (int k = 0; k < 6; ++k)
        cache.prefetch(mixNamed("pf" + std::to_string(k), k + 1),
                       compute, 0.5);
    cache.drainInFlight();
    EXPECT_EQ(solves.load(), 6);
    EXPECT_EQ(cache.size(), 6u);

    // lookup() joins the stored entries as hits on their stripes.
    for (int k = 0; k < 6; ++k) {
        const Scenario mix = mixNamed("pf" + std::to_string(k), k + 1);
        const AsyncLookup found =
            cache.lookup(mix, compute, 1.0, 0.25);
        EXPECT_NE(found.schedule, nullptr);
        EXPECT_FALSE(found.startedSolve);
        EXPECT_DOUBLE_EQ(found.readySec, 1.0);
    }
    EXPECT_EQ(solves.load(), 6);
    EXPECT_EQ(cache.stats().hits, 6);
}

} // namespace
} // namespace runtime
} // namespace scar
