/**
 * @file
 * Tests for the flight recorder: histogram bucket math, metrics
 * export, the virtual-time sampler, Chrome trace-event JSON shape,
 * fleet-trace determinism across solver thread counts, the
 * zero-overhead-when-off contract, and the Scar solve profile.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "arch/mcm_templates.h"
#include "eval/reporter.h"
#include "eval/scenario_suite.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/solve_profile.h"
#include "obs/trace.h"
#include "runtime/arrival.h"
#include "runtime/fleet.h"
#include "sched/scar.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

// ---- Histogram bucket correctness ----------------------------------

TEST(ObsHistogram, BucketIndexFollowsGeometricBounds)
{
    obs::HistogramOptions opts;
    opts.firstBucketUpper = 1.0;
    opts.growth = 2.0;
    opts.buckets = 4; // bounds: 1, 2, 4, 8 (+overflow into last)
    obs::Histogram h(opts);
    EXPECT_EQ(h.bucketIndex(0.0), 0);   // below the layout
    EXPECT_EQ(h.bucketIndex(1.0), 0);   // inclusive upper bound
    EXPECT_EQ(h.bucketIndex(1.0001), 1);
    EXPECT_EQ(h.bucketIndex(2.0), 1);
    EXPECT_EQ(h.bucketIndex(4.0), 2);
    EXPECT_EQ(h.bucketIndex(8.0), 3);
    EXPECT_EQ(h.bucketIndex(1e9), 3);   // overflow absorbed by last
    EXPECT_DOUBLE_EQ(h.bucketUpper(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketUpper(2), 4.0);
}

TEST(ObsHistogram, CountsSumAndExtremaTrackRecords)
{
    obs::Histogram h;
    h.record(0.5);
    h.record(1.5);
    h.record(0.25);
    EXPECT_EQ(h.count(), 3);
    EXPECT_DOUBLE_EQ(h.sum(), 2.25);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.25);
    EXPECT_DOUBLE_EQ(h.maxValue(), 1.5);
    EXPECT_DOUBLE_EQ(h.mean(), 0.75);
    long long bucketTotal = 0;
    for (long long c : h.bucketCounts())
        bucketTotal += c;
    EXPECT_EQ(bucketTotal, 3);
}

TEST(ObsHistogram, PercentileIsBucketUpperClampedToMax)
{
    obs::HistogramOptions opts;
    opts.firstBucketUpper = 1.0;
    opts.growth = 2.0;
    opts.buckets = 8;
    obs::Histogram h(opts);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0); // empty
    for (int i = 0; i < 99; ++i)
        h.record(0.5); // bucket 0, upper bound 1.0
    h.record(100.0);   // one outlier in the tail
    // p50 lands in bucket 0: reported as its upper bound.
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 1.0);
    // p100 would report the tail bucket's upper bound (128), but the
    // estimate is clamped to the true observed max.
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
}

// ---- Metrics registry ----------------------------------------------

TEST(ObsMetrics, InstrumentsAreStableAndExportDeterministically)
{
    obs::MetricsRegistry reg;
    obs::Counter& c = reg.counter("b.count");
    c.inc();
    reg.counter("a.count").inc(41);
    c.inc(); // same instrument as the first call
    reg.gauge("g.util").set(0.5);
    reg.histogram("h.lat").record(0.01);

    EXPECT_EQ(reg.counter("b.count").value(), 2);
    EXPECT_EQ(reg.counter("a.count").value(), 41);

    const std::string json = reg.toJson();
    // Name-ordered export: "a.count" renders before "b.count".
    EXPECT_LT(json.find("a.count"), json.find("b.count"));
    EXPECT_NE(json.find("g.util"), std::string::npos);
    EXPECT_NE(json.find("h.lat"), std::string::npos);

    const std::string csv = reg.toCsv();
    EXPECT_NE(csv.find("counter,a.count,value,41"), std::string::npos);
    EXPECT_NE(csv.find("histogram,h.lat,count,1"), std::string::npos);
    EXPECT_EQ(reg.toJson(), json); // repeated export is stable
}

TEST(ObsSampler, SampleAndHoldStampsScheduledInstants)
{
    obs::TimeSeriesSampler sampler(0.5);
    sampler.setColumns({"x"});
    EXPECT_TRUE(sampler.due(0.0)); // first sample at t = 0
    sampler.push({1.0});
    EXPECT_FALSE(sampler.due(0.49));
    EXPECT_TRUE(sampler.due(0.5));
    sampler.push({2.0});
    // A large event gap leaves several samples due; each push stamps
    // the *scheduled* instant, not the event time.
    EXPECT_TRUE(sampler.due(2.0));
    sampler.push({3.0});
    ASSERT_EQ(sampler.rows().size(), 3u);
    EXPECT_DOUBLE_EQ(sampler.rows()[0][0], 0.0);
    EXPECT_DOUBLE_EQ(sampler.rows()[1][0], 0.5);
    EXPECT_DOUBLE_EQ(sampler.rows()[2][0], 1.0);
    EXPECT_DOUBLE_EQ(sampler.rows()[2][1], 3.0);
    const std::string csv = sampler.toCsv();
    EXPECT_EQ(csv.compare(0, 9, "timeSec,x"), 0);
}

// ---- Trace recorder JSON shape -------------------------------------

/** Counts non-overlapping occurrences of `needle` in `hay`. */
int
countOf(const std::string& hay, const std::string& needle)
{
    int n = 0;
    std::size_t pos = 0;
    while ((pos = hay.find(needle, pos)) != std::string::npos) {
        ++n;
        pos += needle.size();
    }
    return n;
}

TEST(ObsTrace, EmitsChromeTraceEventShapes)
{
    obs::TraceRecorder trace;
    trace.setThreadName(1, "shard 0");
    trace.completeVirtual(1, "w0", "replay", 0.001, 0.002,
                          {obs::argInt("window", 0)});
    trace.instantVirtual(1, "preempt", "preemption", 0.003);
    trace.counterVirtual("queue_depth", 0.0, 3.0);
    trace.asyncBeginVirtual(7, "req a", "request", 0.0005,
                            {obs::argText("model", "a")});
    trace.asyncInstantVirtual(7, "dispatch", "request", 0.001);
    trace.asyncEndVirtual(7, "req a", "request", 0.003);

    const std::string json = trace.toJson();
    EXPECT_EQ(json.compare(0, 15, "{\"traceEvents\":"), 0);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"n\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    // Virtual seconds render as microsecond timestamps.
    EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2000.000"), std::string::npos);
    EXPECT_EQ(trace.size(), 6u);
}

TEST(ObsTrace, WallEventsExcludedFromDefaultExport)
{
    obs::TraceRecorder trace;
    trace.completeVirtual(1, "v", "virt", 0.0, 0.001);
    trace.completeWall(1, "solve", "wall", 0.0, 1234.0);
    const std::string deterministic = trace.toJson();
    EXPECT_EQ(deterministic.find("solve"), std::string::npos);
    const std::string combined = trace.toJson(true);
    EXPECT_NE(combined.find("solve"), std::string::npos);
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.virtualSize(), 1u);
}

// ---- Fleet tracing: determinism + zero-overhead-when-off -----------

std::vector<runtime::ServedModel>
smallCatalog()
{
    std::vector<runtime::ServedModel> catalog(2);
    catalog[0].model = zoo::eyeCod(4);
    catalog[0].rateRps = 200.0;
    catalog[0].sloSec = 0.05;
    catalog[1].model = zoo::handSP(2);
    catalog[1].rateRps = 100.0;
    catalog[1].sloSec = 0.05;
    return catalog;
}

struct TracedRun
{
    std::string trace;
    std::string metrics;
    std::string samples;
    std::string report;
};

TracedRun
runTracedFleet(int solverThreads, bool preemptive)
{
    const auto catalog = smallCatalog();
    const auto trace =
        runtime::poissonTrace(catalog, 120, /*seed=*/11);
    obs::FlightRecorder rec;
    runtime::FleetOptions options;
    options.shards = 2;
    options.routing = runtime::RoutingPolicy::BestFit;
    options.serving.modeledSolveSec = 0.01;
    options.serving.switchOverheadSec = 0.002;
    options.serving.scar.threads = solverThreads;
    if (preemptive) {
        options.serving.preemption.enabled = true;
        options.serving.preemption.slackThresholdSec = 0.5;
        options.serving.preemption.resumeOverheadSec = 0.005;
    }
    options.recorder = &rec;
    runtime::FleetSimulator fleet(
        catalog, templates::hetSides3x3(templates::kArvrPes),
        options);
    const runtime::ServingReport report = fleet.run(trace);
    TracedRun out;
    out.trace = rec.trace().toJson();
    out.metrics = rec.metrics().toJson();
    out.samples = rec.samples().toCsv();
    out.report = describeServingReport(report);
    return out;
}

TEST(ObsFleet, TraceIdenticalAcrossSolverThreadCounts)
{
    const TracedRun at1 = runTracedFleet(1, false);
    const TracedRun at4 = runTracedFleet(4, false);
    const TracedRun at8 = runTracedFleet(8, false);
    EXPECT_EQ(at1.trace, at4.trace);
    EXPECT_EQ(at1.trace, at8.trace);
    EXPECT_EQ(at1.metrics, at4.metrics);
    EXPECT_EQ(at1.metrics, at8.metrics);
    EXPECT_EQ(at1.samples, at4.samples);
    EXPECT_EQ(at1.samples, at8.samples);
}

TEST(ObsFleet, TraceCapturesRequestLifecycleAndReplays)
{
    const TracedRun run = runTracedFleet(1, false);
    // Every request's async track opens and closes; dispatch instants
    // ride inside. 120 arrivals, all completed (no trace truncation).
    EXPECT_EQ(countOf(run.trace, "\"ph\":\"b\""), 120);
    EXPECT_EQ(countOf(run.trace, "\"ph\":\"e\""), 120);
    EXPECT_EQ(countOf(run.trace, "\"name\":\"dispatch\""), 120);
    // Replay window spans on shard tracks, and at least one solve
    // landed as a cache miss before any hit.
    EXPECT_GT(countOf(run.trace, "\"cat\":\"replay\""), 0);
    EXPECT_GT(countOf(run.trace, "\"name\":\"cache-miss\""), 0);
    // The sampler exported the declared columns.
    EXPECT_EQ(run.samples.compare(0, 8, "timeSec,"), 0);
    EXPECT_NE(run.samples.find("queue_depth"), std::string::npos);
    EXPECT_NE(run.samples.find("shard1_busy"), std::string::npos);
}

TEST(ObsFleet, PreemptiveRunRecordsSuspendAndResume)
{
    const TracedRun run = runTracedFleet(1, true);
    EXPECT_GT(countOf(run.trace, "\"name\":\"preempt\""), 0);
    EXPECT_GT(countOf(run.trace, "\"name\":\"resume\""), 0);
    EXPECT_GT(countOf(run.trace, "\"name\":\"preempted\""), 0);
}

TEST(ObsFleet, RecorderDoesNotChangeTheServingReport)
{
    const auto catalog = smallCatalog();
    const auto trace =
        runtime::poissonTrace(catalog, 120, /*seed=*/11);
    auto reportWith = [&](obs::FlightRecorder* rec) {
        runtime::FleetOptions options;
        options.shards = 2;
        options.routing = runtime::RoutingPolicy::BestFit;
        options.serving.modeledSolveSec = 0.01;
        options.serving.switchOverheadSec = 0.002;
        options.serving.scar.threads = 1;
        options.recorder = rec;
        runtime::FleetSimulator fleet(
            catalog, templates::hetSides3x3(templates::kArvrPes),
            options);
        return describeServingReport(fleet.run(trace));
    };
    obs::FlightRecorder rec;
    EXPECT_EQ(reportWith(nullptr), reportWith(&rec));
}

// ---- Per-model latency breakdown -----------------------------------

TEST(ObsReport, PerModelBreakdownSplitsQueueAndExecution)
{
    std::vector<runtime::Request> requests(2);
    requests[0].id = 0;
    requests[0].modelIdx = 0;
    requests[0].arrivalSec = 0.0;
    requests[0].dispatchSec = 0.25;
    requests[0].completionSec = 1.0;
    requests[1].id = 1;
    requests[1].modelIdx = 1;
    requests[1].arrivalSec = 0.0;
    requests[1].dispatchSec = 0.5;
    requests[1].completionSec = 2.0;
    const runtime::ServingReport report = runtime::summarizeServing(
        requests, 2, 1, 2, runtime::ScheduleCacheStats{}, 1,
        {"alpha", "beta"});
    ASSERT_EQ(report.perModel.size(), 2u);
    EXPECT_EQ(report.perModel[0].name, "alpha");
    EXPECT_EQ(report.perModel[0].completed, 1);
    EXPECT_DOUBLE_EQ(report.perModel[0].p50QueueSec, 0.25);
    EXPECT_DOUBLE_EQ(report.perModel[0].p50ExecSec, 0.75);
    EXPECT_DOUBLE_EQ(report.perModel[0].p99LatencySec, 1.0);
    EXPECT_DOUBLE_EQ(report.perModel[1].meanQueueSec, 0.5);
    EXPECT_DOUBLE_EQ(report.perModel[1].meanExecSec, 1.5);
    // Queue + execution reassembles the end-to-end latency.
    EXPECT_DOUBLE_EQ(report.perModel[1].meanQueueSec +
                         report.perModel[1].meanExecSec,
                     report.perModel[1].meanLatencySec);
    // The renderer exposes the split.
    const std::string text = describeServingReport(report);
    EXPECT_NE(text.find("Per-model latency breakdown"),
              std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
}

// ---- Solve profile on the Table-4 datacenter scenario --------------

TEST(ObsSolveProfile, ProfilesDatacenterSolvePhasesAndCaches)
{
    const Scenario sc = suite::datacenterScenario(4);
    const Mcm mcm = templates::hetSides3x3();
    obs::SolveProfile profile;
    ScarOptions options;
    options.threads = 2;
    options.profile = &profile;
    Scar scar(sc, mcm, options);
    const ScheduleResult result = scar.run();

    EXPECT_TRUE(profile.enabled);
    EXPECT_EQ(profile.windows,
              static_cast<std::int64_t>(result.windows.size()));
    EXPECT_GT(profile.totalMs, 0.0);
    EXPECT_GE(profile.totalMs,
              profile.packMs + profile.provisionMs +
                  profile.searchMs - 1.0);
    EXPECT_GT(profile.allocationsSearched, 0);
    EXPECT_GT(profile.windowEvals, 0);
    EXPECT_GT(profile.combosPlaced, 0);
    EXPECT_GT(profile.soloHits + profile.soloMisses, 0);
    EXPECT_GT(profile.pathHits + profile.pathMisses, 0);
    EXPECT_GT(profile.costDbRangeQueries, 0);
    EXPECT_GE(profile.soloHitRate(), 0.0);
    EXPECT_LE(profile.soloHitRate(), 1.0);
    EXPECT_GE(profile.costDbRangeRate(), 0.0);
    EXPECT_LE(profile.costDbRangeRate(), 1.0);

    const std::string summary = profile.summary();
    EXPECT_NE(summary.find("pack"), std::string::npos);
    EXPECT_NE(summary.find("search"), std::string::npos);
    EXPECT_NE(summary.find("PathCache"), std::string::npos);
    EXPECT_NE(summary.find("CostDb"), std::string::npos);
}

TEST(ObsSolveProfile, ProfiledCountersAreExactAtAnyThreadCount)
{
    const Scenario sc = suite::datacenterScenario(4);
    const Mcm mcm = templates::hetSides3x3();
    auto countersAt = [&](int threads) {
        obs::SolveProfile profile;
        ScarOptions options;
        options.threads = threads;
        options.profile = &profile;
        Scar scar(sc, mcm, options);
        scar.run();
        return profile;
    };
    const obs::SolveProfile at1 = countersAt(1);
    const obs::SolveProfile at4 = countersAt(4);
    // Relaxed atomic counts commute: identical totals at any pool
    // size (wall timings are the only run-to-run variant fields).
    EXPECT_EQ(at1.windowEvals, at4.windowEvals);
    EXPECT_EQ(at1.combosPlaced, at4.combosPlaced);
    EXPECT_EQ(at1.soloHits + at1.soloMisses,
              at4.soloHits + at4.soloMisses);
    EXPECT_EQ(at1.costDbRangeQueries, at4.costDbRangeQueries);
    EXPECT_EQ(at1.costDbLayerQueries, at4.costDbLayerQueries);
}

TEST(ObsSolveProfile, UnprofiledRunLeavesScheduleUnchanged)
{
    const Scenario sc = suite::arvrScenario(7);
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    auto serialize = [](const ScheduleResult& r) {
        std::string s;
        for (const ScheduledWindow& w : r.windows) {
            s += std::to_string(w.cost.latencyCycles) + "/" +
                 std::to_string(w.cost.energyNj) + ";";
        }
        return s;
    };
    obs::SolveProfile profile;
    ScarOptions plain;
    plain.threads = 1;
    ScarOptions profiled = plain;
    profiled.profile = &profile;
    Scar a(sc, mcm, plain);
    Scar b(sc, mcm, profiled);
    EXPECT_EQ(serialize(a.run()), serialize(b.run()));
    EXPECT_TRUE(profile.enabled);
}

} // namespace
} // namespace scar
