/**
 * @file
 * Tests for scheduling-tree path enumeration (constrained DFS over the
 * chiplet adjacency, Section IV-D).
 */

#include <gtest/gtest.h>

#include <set>

#include "sched/sched_tree.h"

namespace scar
{
namespace
{

TEST(SchedTree, LengthOnePathsAreRoots)
{
    const Topology topo = Topology::mesh(3, 3);
    const std::vector<bool> blocked(9, false);
    const auto paths = enumeratePaths(topo, 4, 1, blocked, 100);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0], std::vector<int>{4});
}

TEST(SchedTree, PathsAreSimpleAndAdjacent)
{
    const Topology topo = Topology::mesh(3, 3);
    const std::vector<bool> blocked(9, false);
    const auto paths = enumeratePaths(topo, 0, 4, blocked, 10000);
    EXPECT_FALSE(paths.empty());
    for (const auto& path : paths) {
        ASSERT_EQ(path.size(), 4u);
        std::set<int> unique(path.begin(), path.end());
        EXPECT_EQ(unique.size(), path.size()); // simple path
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const auto& nbrs = topo.neighbors(path[i]);
            EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), path[i + 1]),
                      nbrs.end());
        }
    }
}

TEST(SchedTree, BlockedNodesAreAvoided)
{
    const Topology topo = Topology::mesh(3, 3);
    std::vector<bool> blocked(9, false);
    blocked[1] = blocked[3] = true;
    const auto paths = enumeratePaths(topo, 0, 2, blocked, 100);
    EXPECT_TRUE(paths.empty()); // 0's only neighbours are blocked
}

TEST(SchedTree, BlockedRootYieldsNothing)
{
    const Topology topo = Topology::mesh(3, 3);
    std::vector<bool> blocked(9, false);
    blocked[4] = true;
    EXPECT_TRUE(enumeratePaths(topo, 4, 2, blocked, 100).empty());
}

TEST(SchedTree, MaxPathsCapIsRespected)
{
    const Topology topo = Topology::mesh(3, 3);
    const std::vector<bool> blocked(9, false);
    const auto paths = enumeratePaths(topo, 4, 5, blocked, 7);
    EXPECT_EQ(paths.size(), 7u);
}

TEST(SchedTree, KnownCountOnSmallMesh)
{
    // 2x2 mesh, paths of length 2 from node 0: exactly 2 (right, down).
    const Topology topo = Topology::mesh(2, 2);
    const std::vector<bool> blocked(4, false);
    EXPECT_EQ(enumeratePaths(topo, 0, 2, blocked, 100).size(), 2u);
    // Length 4 (Hamiltonian) from a corner of a 2x2: 2 paths.
    EXPECT_EQ(enumeratePaths(topo, 0, 4, blocked, 100).size(), 2u);
}

TEST(SchedTree, AllRootsCoversEveryFreeChiplet)
{
    const Topology topo = Topology::mesh(3, 3);
    std::vector<bool> blocked(9, false);
    blocked[8] = true;
    const auto paths = enumeratePathsAllRoots(topo, 1, blocked, 100);
    // Every unblocked node appears exactly once as a length-1 path.
    EXPECT_EQ(paths.size(), 8u);
    std::set<int> roots;
    for (const auto& p : paths)
        roots.insert(p[0]);
    EXPECT_EQ(roots.size(), 8u);
    EXPECT_EQ(roots.count(8), 0u);
}

TEST(SchedTree, AllRootsSplitsBudget)
{
    const Topology topo = Topology::mesh(3, 3);
    const std::vector<bool> blocked(9, false);
    const auto paths = enumeratePathsAllRoots(topo, 3, blocked, 18);
    EXPECT_LE(paths.size(), 18u);
    // Multiple roots represented (budget split, 2 per root).
    std::set<int> roots;
    for (const auto& p : paths)
        roots.insert(p[0]);
    EXPECT_GT(roots.size(), 4u);
}

TEST(SchedTree, TriangularTopologyWorks)
{
    const Topology topo = Topology::triangular(2, 3);
    const std::vector<bool> blocked(topo.numNodes(), false);
    const auto paths = enumeratePathsAllRoots(topo, 4, blocked, 50);
    EXPECT_FALSE(paths.empty());
    for (const auto& path : paths)
        EXPECT_EQ(path.size(), 4u);
}

} // namespace
} // namespace scar
