/**
 * @file
 * Tests for the PROV engine: Eq. 2 rule-based allocation, the
 * Heuristic-2 node cap, and exhaustive enumeration.
 */

#include <gtest/gtest.h>

#include "arch/mcm_templates.h"
#include "common/error.h"
#include "sched/provisioner.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

struct ProvFixture
{
    ProvFixture()
        : mcm(templates::hetSides3x3())
    {
        sc.name = "prov";
        sc.models = {zoo::gptL(1), zoo::eyeCod(1), zoo::bertBase(1)};
        sc.finalize();
        db = std::make_unique<CostDb>(sc, mcm);
        wa.perModel = {
            LayerRange{0, sc.models[0].numLayers() - 1},
            LayerRange{0, sc.models[1].numLayers() - 1},
            LayerRange{0, sc.models[2].numLayers() - 1},
        };
    }

    Scenario sc;
    Mcm mcm;
    std::unique_ptr<CostDb> db;
    WindowAssignment wa;
};

TEST(Provisioner, RuleAllocatesAtLeastOneNodeEach)
{
    ProvFixture f;
    const auto allocs = provisionNodes(f.wa, *f.db, OptTarget::Edp,
                                       ProvisionerOptions{});
    ASSERT_EQ(allocs.size(), 1u);
    int total = 0;
    for (int m = 0; m < 3; ++m) {
        EXPECT_GE(allocs[0][m], 1);
        total += allocs[0][m];
    }
    EXPECT_LE(total, f.mcm.numChiplets());
}

TEST(Provisioner, RuleGivesHeavyModelsMoreNodes)
{
    ProvFixture f;
    const auto allocs = provisionNodes(f.wa, *f.db, OptTarget::Latency,
                                       ProvisionerOptions{});
    // GPT-L dwarfs EyeCod in expected latency.
    EXPECT_GT(allocs[0][0], allocs[0][1]);
}

TEST(Provisioner, AbsentModelsGetZeroNodes)
{
    ProvFixture f;
    f.wa.perModel[1] = LayerRange{}; // EyeCod absent from this window
    const auto allocs = provisionNodes(f.wa, *f.db, OptTarget::Edp,
                                       ProvisionerOptions{});
    EXPECT_EQ(allocs[0][1], 0);
    EXPECT_GE(allocs[0][0], 1);
    EXPECT_GE(allocs[0][2], 1);
}

TEST(Provisioner, Heuristic2CapIsRespected)
{
    ProvFixture f;
    ProvisionerOptions opts;
    opts.maxNodesPerModel = 2;
    const auto allocs =
        provisionNodes(f.wa, *f.db, OptTarget::Latency, opts);
    for (int m = 0; m < 3; ++m)
        EXPECT_LE(allocs[0][m], 2);
}

TEST(Provisioner, ExhaustiveEnumeratesCompositions)
{
    ProvFixture f;
    ProvisionerOptions opts;
    opts.mode = ProvisionerOptions::Mode::Exhaustive;
    opts.maxCandidates = 0; // unlimited
    const auto allocs =
        provisionNodes(f.wa, *f.db, OptTarget::Edp, opts);
    // Number of (n1,n2,n3) with ni>=1 and sum<=9 is C(9,3) = 84.
    EXPECT_EQ(allocs.size(), 84u);
    for (const auto& alloc : allocs) {
        int total = 0;
        for (int m = 0; m < 3; ++m) {
            EXPECT_GE(alloc[m], 1);
            total += alloc[m];
        }
        EXPECT_LE(total, 9);
    }
}

TEST(Provisioner, ExhaustiveHonorsCandidateCap)
{
    ProvFixture f;
    ProvisionerOptions opts;
    opts.mode = ProvisionerOptions::Mode::Exhaustive;
    opts.maxCandidates = 10;
    const auto allocs =
        provisionNodes(f.wa, *f.db, OptTarget::Edp, opts);
    // The cap bounds the enumeration; the rule-based allocation is
    // always appended so exhaustive search is a superset of the rule.
    EXPECT_LE(allocs.size(), 11u);
    EXPECT_GE(allocs.size(), 10u);
    ProvisionerOptions ruleOpts;
    const auto rule =
        provisionNodes(f.wa, *f.db, OptTarget::Edp, ruleOpts);
    EXPECT_NE(std::find(allocs.begin(), allocs.end(), rule.front()),
              allocs.end());
}

TEST(Provisioner, ExhaustiveHonorsPerModelCap)
{
    ProvFixture f;
    ProvisionerOptions opts;
    opts.mode = ProvisionerOptions::Mode::Exhaustive;
    opts.maxNodesPerModel = 3;
    opts.maxCandidates = 0;
    const auto allocs =
        provisionNodes(f.wa, *f.db, OptTarget::Edp, opts);
    for (const auto& alloc : allocs) {
        for (int m = 0; m < 3; ++m)
            EXPECT_LE(alloc[m], 3);
    }
}

TEST(Provisioner, RejectsEmptyWindow)
{
    ProvFixture f;
    WindowAssignment empty;
    empty.perModel.assign(3, LayerRange{});
    EXPECT_THROW(provisionNodes(empty, *f.db, OptTarget::Edp,
                                ProvisionerOptions{}),
                 FatalError);
}

TEST(Provisioner, TargetChangesExpectationBasis)
{
    // The rule uses E(P_i) of the chosen metric; allocations under
    // latency and energy may differ but both must be feasible.
    ProvFixture f;
    const auto lat = provisionNodes(f.wa, *f.db, OptTarget::Latency,
                                    ProvisionerOptions{});
    const auto nrg = provisionNodes(f.wa, *f.db, OptTarget::Energy,
                                    ProvisionerOptions{});
    int latTotal = 0;
    int nrgTotal = 0;
    for (int m = 0; m < 3; ++m) {
        latTotal += lat[0][m];
        nrgTotal += nrg[0][m];
    }
    EXPECT_LE(latTotal, 9);
    EXPECT_LE(nrgTotal, 9);
}

} // namespace
} // namespace scar
