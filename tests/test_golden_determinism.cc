/**
 * @file
 * Golden determinism suite: the byte-identity contract of the search
 * hot path (docs/ARCHITECTURE.md "Determinism and threading").
 *
 * `Scar::run()` and the serving runtime are pure functions of
 * (scenario, MCM, options, seed): every cost the evaluator produces
 * lands in the returned `ScheduleResult`, so any change to the cost
 * model's arithmetic — including "harmless" reassociation of a sum —
 * is observable. This suite pins the full output down to the last
 * floating-point bit:
 *
 *  - goldens are captured from a reference build (the state BEFORE a
 *    hot-path optimization) by running the test binary with
 *    SCAR_GOLDEN_CAPTURE=1, and committed under tests/golden/;
 *  - every later build must reproduce them byte-for-byte, at 1, 4,
 *    and 8 worker threads, on the Table-4 datacenter and Table-5
 *    AR/VR golden scenarios and on a serving-runtime report;
 *  - floating-point bit patterns are toolchain-dependent (FMA
 *    contraction differs across compilers and -O levels), so the
 *    comparison is gated on a toolchain signature recorded at capture
 *    time: a foreign compiler or build type skips instead of failing
 *    spuriously. The thread-count invariance checks (1 == 4 == 8)
 *    run unconditionally — they need no stored golden.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "arch/mcm_templates.h"
#include "eval/scenario_suite.h"
#include "runtime/serving_sim.h"
#include "sched/scar.h"

namespace scar
{
namespace
{

using runtime::Request;
using runtime::ServedModel;
using runtime::ServingOptions;
using runtime::ServingReport;
using runtime::ServingSimulator;
using runtime::ShardReport;

/** Exact (bit-preserving) rendering of a double. */
std::string
hexDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

void
putD(std::ostringstream& os, const char* tag, double v)
{
    os << tag << '=' << hexDouble(v) << '\n';
}

/**
 * The toolchain fingerprint goldens are valid for. FP bit patterns
 * depend on the compiler (contraction policy), the optimization
 * level, and the target ISA extensions actually enabled (FMA/AVX
 * change contraction and vectorization), so the signature folds in
 * every flag-sensitive macro observable from inside the build. Not
 * airtight — e.g. -O2 vs -O3 are indistinguishable by macro — but a
 * clang build, a Debug/sanitizer build, -Ofast, or -march=native all
 * skip instead of failing spuriously.
 */
std::string
toolchainSignature()
{
    std::ostringstream os;
    os << __VERSION__ << " |"
#ifdef NDEBUG
       << " opt"
#else
       << " noopt"
#endif
#ifdef __OPTIMIZE__
       << " O"
#endif
#ifdef __FAST_MATH__
       << " fastmath"
#endif
#ifdef __FMA__
       << " fma"
#endif
#ifdef __AVX2__
       << " avx2"
#endif
#ifdef __AVX512F__
       << " avx512f"
#endif
        ;
    return os.str();
}

std::string
goldenDir()
{
    if (const char* env = std::getenv("SCAR_GOLDEN_DIR"))
        return env;
#ifdef SCAR_GOLDEN_DIR_DEFAULT
    return SCAR_GOLDEN_DIR_DEFAULT;
#else
    return "tests/golden";
#endif
}

bool
captureMode()
{
    const char* env = std::getenv("SCAR_GOLDEN_CAPTURE");
    return env != nullptr && env[0] != '\0' &&
           std::strcmp(env, "0") != 0;
}

std::string
serialize(const ScheduleResult& result)
{
    std::ostringstream os;
    os << "windows=" << result.windows.size() << '\n';
    for (const ScheduledWindow& w : result.windows) {
        os << "window\n";
        os << "assignment";
        for (const LayerRange& r : w.assignment.perModel)
            os << ' ' << r.first << ':' << r.last;
        os << '\n';
        os << "nodes";
        for (int n : w.nodes)
            os << ' ' << n;
        os << '\n';
        os << "entry";
        for (int e : w.placement.entryChiplet)
            os << ' ' << e;
        os << '\n';
        for (const ModelPlacement& mp : w.placement.models) {
            os << "model " << mp.modelIdx;
            for (const PlacedSegment& seg : mp.segments) {
                os << ' ' << seg.range.first << ':' << seg.range.last
                   << '@' << seg.chiplet;
            }
            os << '\n';
        }
        putD(os, "latencyCycles", w.cost.latencyCycles);
        putD(os, "energyNj", w.cost.energyNj);
        putD(os, "dramBytes", w.cost.dramBytes);
        putD(os, "dramBoundCycles", w.cost.dramBoundCycles);
        os << "maxLinkSharers=" << w.cost.maxLinkSharers << '\n';
        for (const ModelWindowCost& mc : w.cost.perModel) {
            putD(os, "m.latencyCycles", mc.latencyCycles);
            putD(os, "m.energyNj", mc.energyNj);
            for (const SegmentCost& sc : mc.segments) {
                putD(os, "s.first", sc.firstSampleCycles);
                putD(os, "s.steady", sc.steadySampleCycles);
                putD(os, "s.energy", sc.energyNj);
                os << "s.resident=" << (sc.weightsResident ? 1 : 0)
                   << '\n';
            }
        }
    }
    putD(os, "metrics.latency", result.metrics.latencySec);
    putD(os, "metrics.energy", result.metrics.energyJ);
    os << "candidates=" << result.candidates.size() << '\n';
    for (const Metrics& c : result.candidates) {
        putD(os, "c.latency", c.latencySec);
        putD(os, "c.energy", c.energyJ);
    }
    return os.str();
}

std::string
serialize(const ServingReport& report)
{
    std::ostringstream os;
    os << "offered=" << report.offered << '\n'
       << "completed=" << report.completed << '\n'
       << "dispatches=" << report.dispatches << '\n';
    putD(os, "horizonSec", report.horizonSec);
    putD(os, "throughputRps", report.throughputRps);
    putD(os, "meanLatencySec", report.meanLatencySec);
    putD(os, "p50LatencySec", report.p50LatencySec);
    putD(os, "p95LatencySec", report.p95LatencySec);
    putD(os, "p99LatencySec", report.p99LatencySec);
    putD(os, "maxLatencySec", report.maxLatencySec);
    os << "sloViolations=" << report.sloViolations << '\n';
    putD(os, "sloViolationRate", report.sloViolationRate);
    os << "cache.hits=" << report.cache.hits << '\n'
       << "cache.misses=" << report.cache.misses << '\n'
       << "cache.evictions=" << report.cache.evictions << '\n'
       << "uniqueMixes=" << report.uniqueMixes << '\n';
    putD(os, "batchOccupancy", report.batchOccupancy);
    for (const ShardReport& shard : report.shards) {
        os << "shard=" << shard.shardIdx << ' ' << shard.mcmName << ' '
           << shard.dispatches << '\n';
        putD(os, "sh.busySec", shard.busySec);
        putD(os, "sh.utilization", shard.utilization);
        putD(os, "sh.solveStallSec", shard.solveStallSec);
        putD(os, "sh.switchOverheadSec", shard.switchOverheadSec);
        os << "sh.preemptions=" << shard.preemptions << '\n';
    }
    putD(os, "solveStallSec", report.solveStallSec);
    putD(os, "switchOverheadSec", report.switchOverheadSec);
    os << "contestedRoutes=" << report.contestedRoutes << '\n'
       << "costOptimalRoutes=" << report.costOptimalRoutes << '\n';
    putD(os, "costOptimalRouteFrac", report.costOptimalRouteFrac);
    os << "preemptionEnabled=" << (report.preemptionEnabled ? 1 : 0)
       << '\n'
       << "preemptions=" << report.preemptions << '\n';
    putD(os, "resumeOverheadSec", report.resumeOverheadSec);
    os << "preemptedRequests=" << report.preemptedRequests << '\n';
    putD(os, "preemptedP99Sec", report.preemptedP99Sec);
    return os.str();
}

/**
 * Compares `produced` against the stored golden, or (re)writes the
 * golden in capture mode. Skips when the stored toolchain signature
 * does not match this build.
 */
void
checkGolden(const std::string& name, const std::string& produced)
{
    const std::string path = goldenDir() + "/" + name + ".golden.txt";
    const std::string sigPath = goldenDir() + "/toolchain.txt";
    if (captureMode()) {
        std::ofstream sigOut(sigPath);
        ASSERT_TRUE(sigOut.good()) << "cannot write " << sigPath;
        sigOut << toolchainSignature() << '\n';
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << produced;
        SUCCEED() << "captured golden " << path;
        return;
    }

    std::ifstream sigIn(sigPath);
    ASSERT_TRUE(sigIn.good())
        << "missing " << sigPath
        << " — capture goldens first (SCAR_GOLDEN_CAPTURE=1)";
    std::string storedSig;
    std::getline(sigIn, storedSig);
    if (storedSig != toolchainSignature()) {
        GTEST_SKIP() << "goldens captured under a different toolchain "
                        "(stored: "
                     << storedSig << "; this build: "
                     << toolchainSignature()
                     << ") — FP bit patterns are not comparable";
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden " << path;
    std::ostringstream stored;
    stored << in.rdbuf();
    EXPECT_EQ(stored.str(), produced)
        << "hot-path output drifted from the golden " << path
        << " — the optimization changed observable bits";
}

ScheduleResult
runScar(const Scenario& sc, const Mcm& mcm, int threads)
{
    ScarOptions opts;
    opts.threads = threads;
    Scar scar(sc, mcm, opts);
    return scar.run();
}

ServingReport
runServing(int threads)
{
    const Scenario sc4 = suite::datacenterScenario(4);
    const std::vector<double> ratesRps = {12.0, 36.0, 1.5, 48.0};
    const std::vector<double> slosSec = {2.5, 1.5, 2.0, 1.0};
    std::vector<ServedModel> catalog;
    for (std::size_t m = 0; m < sc4.models.size(); ++m) {
        ServedModel sm;
        sm.model = sc4.models[m];
        sm.rateRps = ratesRps[m];
        sm.sloSec = slosSec[m];
        catalog.push_back(std::move(sm));
    }
    ServingOptions options;
    options.admission.maxQueueDelaySec = 0.1;
    options.scar.threads = threads;
    ThreadPool pool(threads);
    options.pool = &pool;
    ServingSimulator sim(catalog, templates::hetSides3x3(), options);
    const std::vector<Request> trace =
        runtime::poissonTrace(catalog, 600, /*seed=*/7);
    return sim.run(trace);
}

// ---- Table-4 datacenter golden scenario (Sc4, Het-Sides 3x3) -------

TEST(GoldenDeterminism, DatacenterSc4ByteIdentical)
{
    const Scenario sc = suite::datacenterScenario(4);
    const Mcm mcm = templates::hetSides3x3();
    const std::string at1 = serialize(runScar(sc, mcm, 1));
    const std::string at4 = serialize(runScar(sc, mcm, 4));
    const std::string at8 = serialize(runScar(sc, mcm, 8));
    // Pool-size invariance needs no golden: always enforced.
    EXPECT_EQ(at1, at4);
    EXPECT_EQ(at1, at8);
    checkGolden("datacenter_sc4", at1);
}

// ---- Table-5 AR/VR golden scenario (Sc7, Het-Sides 3x3 @256 PE) ----

TEST(GoldenDeterminism, ArvrSc7ByteIdentical)
{
    const Scenario sc = suite::arvrScenario(7);
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    const std::string at1 = serialize(runScar(sc, mcm, 1));
    const std::string at4 = serialize(runScar(sc, mcm, 4));
    const std::string at8 = serialize(runScar(sc, mcm, 8));
    EXPECT_EQ(at1, at4);
    EXPECT_EQ(at1, at8);
    checkGolden("arvr_sc7", at1);
}

// ---- Serving-runtime golden (ServingReport over a Poisson trace) ---

TEST(GoldenDeterminism, ServingReportByteIdentical)
{
    const std::string at1 = serialize(runServing(1));
    const std::string at4 = serialize(runServing(4));
    const std::string at8 = serialize(runServing(8));
    EXPECT_EQ(at1, at4);
    EXPECT_EQ(at1, at8);
    checkGolden("serving_sc4", at1);
}

} // namespace
} // namespace scar
