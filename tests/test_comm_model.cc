/**
 * @file
 * Differential tests for the communication stack: the O(1) phased
 * link tables and M/D/1 queueing factors must bit-match a naive
 * per-transfer reference on seeded random windows for every topology
 * class, CommFidelity::Static must reproduce the pre-phase evaluator
 * output byte-for-byte on the Table III scenarios, phased schedules
 * must be bit-identical at any thread count, and broadcast-plane
 * pricing must follow the single-slot model.
 *
 * The naive references here intentionally use ordered maps and
 * per-transfer recomputation — the slow-but-obvious implementations
 * the production tables replaced. Comparisons are exact (EXPECT_EQ on
 * doubles): both sides must execute the same floating-point
 * operations in the same order, which is the contract that keeps the
 * committed goldens stable.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "arch/mcm_templates.h"
#include "common/units.h"
#include "cost/comm_model.h"
#include "cost/cost_db.h"
#include "cost/window_evaluator.h"
#include "eval/scenario_suite.h"
#include "sched/scar.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

/** Exact bit pattern of a double, for byte-identity comparisons. */
std::string
hexDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** The four grid interconnect classes at equal silicon. */
std::vector<Mcm>
interconnectVariants()
{
    std::vector<Mcm> variants;
    variants.push_back(templates::hetSides3x3(templates::kArvrPes));
    variants.push_back(templates::hetSidesTorus3x3(templates::kArvrPes));
    variants.push_back(
        templates::hetSidesExpress3x3(templates::kArvrPes));
    variants.push_back(
        templates::hetSidesBroadcast3x3(templates::kArvrPes));
    return variants;
}

/** One random transfer of a synthetic window. */
struct RefFlow
{
    int src = 0;
    int dst = 0;
    CommPhase phase = CommPhase::Activation;
    double bytes = 0.0;
};

/**
 * Naive per-transfer load accounting: ordered maps keyed by directed
 * link / medium id, walked in the same flow order as
 * PhasedLinkTable::addFlow. load() reproduces the table's
 * medium-aggregation semantics link by link.
 */
class NaiveLoadTable
{
  public:
    explicit NaiveLoadTable(const Topology& topo) : topo_(topo) {}

    void
    add(const RefFlow& f)
    {
        if (f.src == f.dst || f.bytes <= 0.0)
            return;
        for (const Link& link : topo_.routeLinks(f.src, f.dst)) {
            const int id = topo_.linkId(link.first, link.second);
            linkLoads_[{static_cast<int>(f.phase), id}] += f.bytes;
            const int medium = topo_.linkMedium(id);
            if (medium >= 0)
                mediumLoads_[{static_cast<int>(f.phase), medium}] +=
                    f.bytes;
        }
    }

    double
    load(CommPhase phase, int linkId) const
    {
        const int medium = topo_.linkMedium(linkId);
        if (medium >= 0) {
            const auto it =
                mediumLoads_.find({static_cast<int>(phase), medium});
            return it == mediumLoads_.end() ? 0.0 : it->second;
        }
        const auto it =
            linkLoads_.find({static_cast<int>(phase), linkId});
        return it == linkLoads_.end() ? 0.0 : it->second;
    }

  private:
    const Topology& topo_;
    std::map<std::pair<int, int>, double> linkLoads_;
    std::map<std::pair<int, int>, double> mediumLoads_;
};

/** The M/D/1 factor recomputed from first principles per query. */
double
naiveQueueingFactor(const CommModel& comm, double loadBytes,
                    double windowCycles, int linkId)
{
    if (loadBytes <= 0.0 || windowCycles <= 0.0)
        return 1.0;
    const double capacity =
        comm.linkBytesPerCycle(linkId) * windowCycles;
    const double rho = std::min(loadBytes / capacity, 0.95);
    return 1.0 + rho / (2.0 * (1.0 - rho));
}

/**
 * The tentpole differential: on every topology class, 30 seeded
 * random windows (120 total) of up to 64 flows each. The production
 * PhasedLinkTable and queueingFactor must bit-match the naive maps.
 */
TEST(CommDifferential, PhasedTablesMatchNaiveReference)
{
    for (const Mcm& mcm : interconnectVariants()) {
        const Topology& topo = mcm.topology();
        const CommModel comm(mcm);
        std::mt19937_64 rng(0x5CA21234u);
        std::uniform_int_distribution<int> nodeDist(
            0, topo.numNodes() - 1);
        std::uniform_int_distribution<int> phaseDist(
            0, kNumCommPhases - 1);
        std::uniform_int_distribution<int> countDist(1, 64);
        std::uniform_real_distribution<double> bytesDist(1.0, 1.0e7);

        for (int window = 0; window < 30; ++window) {
            std::vector<RefFlow> flows(countDist(rng));
            for (RefFlow& f : flows) {
                f.src = nodeDist(rng);
                f.dst = nodeDist(rng);
                f.phase = static_cast<CommPhase>(phaseDist(rng));
                f.bytes = bytesDist(rng);
            }

            PhasedLinkTable table(topo);
            NaiveLoadTable naive(topo);
            for (const RefFlow& f : flows) {
                if (f.src != f.dst)
                    table.addFlow(f.phase,
                                  topo.routeLinkIds(f.src, f.dst),
                                  f.bytes);
                naive.add(f);
            }

            const double windowCycles = 1000.0 * (window + 1);
            for (int p = 0; p < kNumCommPhases; ++p) {
                const CommPhase phase = static_cast<CommPhase>(p);
                for (int id = 0; id < topo.numLinks(); ++id) {
                    const double fast = table.load(phase, id);
                    const double slow = naive.load(phase, id);
                    ASSERT_EQ(fast, slow)
                        << mcm.name() << " window " << window
                        << " phase " << commPhaseName(phase)
                        << " link " << id << ": "
                        << hexDouble(fast) << " vs "
                        << hexDouble(slow);
                    ASSERT_EQ(
                        comm.queueingFactor(fast, windowCycles, id),
                        naiveQueueingFactor(comm, slow, windowCycles,
                                            id))
                        << mcm.name() << " window " << window
                        << " link " << id;
                }
            }
        }
    }
}

TEST(CommDifferential, QueueingFactorIsFiniteAndBounded)
{
    const Mcm mcm = templates::hetSidesBroadcast3x3();
    const CommModel comm(mcm);
    // Utilization is capped at 0.95, so the factor tops out at 10.5
    // however overloaded the link.
    const double capped = comm.queueingFactor(1.0e18, 1.0, 0);
    EXPECT_TRUE(std::isfinite(capped));
    EXPECT_DOUBLE_EQ(capped, 1.0 + 0.95 / (2.0 * (1.0 - 0.95)));
    EXPECT_LT(capped, 10.51);
    EXPECT_DOUBLE_EQ(comm.queueingFactor(0.0, 1000.0, 0), 1.0);
    EXPECT_DOUBLE_EQ(comm.queueingFactor(1000.0, 0.0, 0), 1.0);
}

// ---- Static byte-identity on the Table III scenarios ---------------

/** Reference model cost; mirrors ModelWindowCost's two scalars. */
struct RefModelCost
{
    double latencyCycles = 0.0;
    double energyNj = 0.0;
};

/**
 * Naive reimplementation of WindowEvaluator::evalModel with the
 * static contention rule applied inline: activation transfers inflate
 * by the max-sharers count of their route, DRAM-side transfers do
 * not. Every arithmetic step matches the production member in order.
 */
template <typename Factor>
RefModelCost
refEvalModel(const CostDb& db, const CommModel& comm,
             const WindowPlacement& placement, const ModelPlacement& mp,
             int bIdx, Factor&& factor)
{
    const Scenario& sc = db.scenario();
    const Mcm& mcm = db.mcm();
    const Model& model = sc.models[mp.modelIdx];
    const int bPrime = db.miniBatchCandidates(mp.modelIdx)[bIdx];
    const int b = model.batch;
    const int steps =
        static_cast<int>(std::ceil(static_cast<double>(b) / bPrime));

    RefModelCost cost;
    double maxSteady = 0.0;
    double sumFirst = 0.0;
    for (std::size_t k = 0; k < mp.segments.size(); ++k) {
        const PlacedSegment& seg = mp.segments[k];
        const int c = seg.chiplet;
        const Dataflow df = mcm.chiplet(c).spec.dataflow;
        const Layer& first = model.layers[seg.range.first];
        const Layer& last = model.layers[seg.range.last];

        const double compute = db.segmentCycles(
            mp.modelIdx, bIdx, df, seg.range.first, seg.range.last);
        const double intraEnergy = db.segmentEnergyNj(
            mp.modelIdx, bIdx, df, seg.range.first, seg.range.last);
        const int mem = mcm.nearestMemInterface(c);

        double ipLat = 0.0;
        double ipEnergy = 0.0;
        if (k == 0) {
            const double bytes = first.inputBytes() * bPrime;
            const int entry =
                mp.modelIdx <
                        static_cast<int>(placement.entryChiplet.size())
                    ? placement.entryChiplet[mp.modelIdx]
                    : -1;
            if (entry >= 0) {
                ipLat = comm.nopLatencyCycles(
                    bytes * factor(entry, c, CommPhase::Activation),
                    entry, c);
                ipEnergy = comm.nopEnergyNj(bytes, entry, c);
            } else {
                ipLat = comm.dramLatencyCycles(
                    bytes * factor(mem, c, CommPhase::Spill), c);
                ipEnergy = comm.dramEnergyNj(bytes, c);
            }
        } else {
            const int prevC = mp.segments[k - 1].chiplet;
            const Layer& prevLast =
                model.layers[mp.segments[k - 1].range.last];
            const double bytes = prevLast.outputBytes() * bPrime;
            ipLat = comm.nopLatencyCycles(
                bytes * factor(prevC, c, CommPhase::Activation), prevC,
                c);
            ipEnergy = comm.nopEnergyNj(bytes, prevC, c);
        }

        double opLat = 0.0;
        double opEnergy = 0.0;
        if (k + 1 == mp.segments.size() &&
            seg.range.last == model.numLayers() - 1) {
            const double bytes = last.outputBytes() * bPrime;
            opLat = comm.dramLatencyCycles(
                bytes * factor(c, mem, CommPhase::Spill), c);
            opEnergy = comm.dramEnergyNj(bytes, c);
        }

        const double weights = db.segmentWeightBytes(
            mp.modelIdx, seg.range.first, seg.range.last);
        const double maxAct =
            db.segmentMaxActBytes(mp.modelIdx, seg.range.first,
                                  seg.range.last) *
            bPrime;
        const bool resident =
            weights + maxAct <= mcm.chiplet(c).spec.l2Bytes;
        const double wLat = comm.dramLatencyCycles(
            weights * factor(mem, c, CommPhase::WeightLoad), c);
        const double wEnergy = comm.dramEnergyNj(weights, c);

        const double steady =
            ipLat + compute + opLat + (resident ? 0.0 : wLat);
        const double firstSample = steady + (resident ? wLat : 0.0);
        cost.energyNj += steps * (intraEnergy + ipEnergy + opEnergy) +
                         wEnergy * (resident ? 1.0 : steps);
        maxSteady = std::max(maxSteady, steady);
        sumFirst += firstSample;
    }
    cost.latencyCycles = sumFirst + (steps - 1) * maxSteady;
    return cost;
}

/**
 * Naive reimplementation of the full static evaluate(): per-model
 * mini-batch choice, flow enumeration into a std::map link-sharer
 * count, static max-sharers factors, DRAM roofline.
 */
WindowCost
refEvaluateStatic(const CostDb& db, const CommModel& comm,
                  const WindowPlacement& placement)
{
    const Scenario& sc = db.scenario();
    const Mcm& mcm = db.mcm();
    const Topology& topo = mcm.topology();
    const auto one = [](int, int, CommPhase) { return 1; };

    std::vector<int> chosenBIdx(placement.models.size(), 0);
    for (std::size_t mi = 0; mi < placement.models.size(); ++mi) {
        const ModelPlacement& mp = placement.models[mi];
        const int numCandidates = static_cast<int>(
            db.miniBatchCandidates(mp.modelIdx).size());
        double bestLat = std::numeric_limits<double>::infinity();
        for (int bIdx = 0; bIdx < numCandidates; ++bIdx) {
            const double lat =
                refEvalModel(db, comm, placement, mp, bIdx, one)
                    .latencyCycles;
            if (lat < bestLat) {
                bestLat = lat;
                chosenBIdx[mi] = bIdx;
            }
        }
    }

    // Flow enumeration in the evaluator's order; only the sharer
    // counts matter for the static factor.
    std::map<Link, int> sharers;
    double totalDramBytes = 0.0;
    auto addFlow = [&](int src, int dst, double bytes) {
        if (src == dst || bytes <= 0.0)
            return;
        for (const Link& link : topo.routeLinks(src, dst))
            ++sharers[link];
    };
    for (std::size_t mi = 0; mi < placement.models.size(); ++mi) {
        const ModelPlacement& mp = placement.models[mi];
        const Model& model = sc.models[mp.modelIdx];
        const int bPrime =
            db.miniBatchCandidates(mp.modelIdx)[chosenBIdx[mi]];
        const int steps = static_cast<int>(std::ceil(
            static_cast<double>(model.batch) / bPrime));
        for (std::size_t k = 0; k < mp.segments.size(); ++k) {
            const PlacedSegment& seg = mp.segments[k];
            const int c = seg.chiplet;
            const int mem = mcm.nearestMemInterface(c);
            const double weights = db.segmentWeightBytes(
                mp.modelIdx, seg.range.first, seg.range.last);
            const double maxAct =
                db.segmentMaxActBytes(mp.modelIdx, seg.range.first,
                                      seg.range.last) *
                bPrime;
            const bool resident =
                weights + maxAct <= mcm.chiplet(c).spec.l2Bytes;
            const double wBytes = weights * (resident ? 1.0 : steps);
            addFlow(mem, c, wBytes);
            totalDramBytes += wBytes;
            if (k == 0) {
                const double inBytes =
                    model.layers[seg.range.first].inputBytes() *
                    model.batch;
                const int entry =
                    mp.modelIdx < static_cast<int>(
                                      placement.entryChiplet.size())
                        ? placement.entryChiplet[mp.modelIdx]
                        : -1;
                if (entry >= 0) {
                    addFlow(entry, c, inBytes);
                } else {
                    addFlow(mem, c, inBytes);
                    totalDramBytes += inBytes;
                }
            } else {
                const PlacedSegment& prev = mp.segments[k - 1];
                addFlow(prev.chiplet, c,
                        model.layers[prev.range.last].outputBytes() *
                            model.batch);
            }
            if (k + 1 == mp.segments.size() &&
                seg.range.last == model.numLayers() - 1) {
                const double outBytes =
                    model.layers[seg.range.last].outputBytes() *
                    model.batch;
                addFlow(c, mem, outBytes);
                totalDramBytes += outBytes;
            }
        }
    }

    auto staticFactor = [&](int src, int dst, CommPhase phase) {
        if (src == dst || phase != CommPhase::Activation)
            return 1;
        int worst = 1;
        for (const Link& link : topo.routeLinks(src, dst)) {
            const auto it = sharers.find(link);
            if (it != sharers.end())
                worst = std::max(worst, it->second);
        }
        return worst;
    };

    WindowCost window;
    window.dramBytes = totalDramBytes;
    for (std::size_t mi = 0; mi < placement.models.size(); ++mi) {
        const RefModelCost modelCost =
            refEvalModel(db, comm, placement, placement.models[mi],
                         chosenBIdx[mi], staticFactor);
        window.latencyCycles =
            std::max(window.latencyCycles, modelCost.latencyCycles);
        window.energyNj += modelCost.energyNj;
    }
    window.dramBoundCycles =
        totalDramBytes / comm.offchipBytesPerCycle();
    window.latencyCycles =
        std::max(window.latencyCycles, window.dramBoundCycles);
    return window;
}

/** Two-segment split of each scenario model over distinct chiplets. */
WindowPlacement
tableScenarioPlacement(const Scenario& sc, int numChiplets)
{
    WindowPlacement placement;
    int nextChiplet = 0;
    for (int m = 0; m < sc.numModels(); ++m) {
        if (nextChiplet + 2 > numChiplets)
            break;
        const int layers = sc.models[m].numLayers();
        ModelPlacement mp;
        mp.modelIdx = m;
        if (layers >= 2) {
            const int mid = layers / 2;
            mp.segments.push_back({{0, mid - 1}, nextChiplet++});
            mp.segments.push_back({{mid, layers - 1}, nextChiplet++});
        } else {
            mp.segments.push_back({{0, layers - 1}, nextChiplet++});
        }
        placement.models.push_back(std::move(mp));
    }
    return placement;
}

TEST(CommDifferential, StaticEvaluatorMatchesNaiveOnTableScenarios)
{
    struct Case
    {
        Scenario scenario;
        Mcm mcm;
    };
    std::vector<Case> cases;
    cases.push_back({suite::datacenterScenario(4),
                     templates::hetSides3x3()});
    cases.push_back({suite::arvrScenario(7),
                     templates::hetSides3x3(templates::kArvrPes)});
    // The same contract must hold on the exotic interconnects the
    // static model now routes over.
    cases.push_back({suite::datacenterScenario(4),
                     templates::hetSidesTorus3x3()});
    cases.push_back({suite::arvrScenario(7),
                     templates::hetSidesBroadcast3x3(
                         templates::kArvrPes)});

    for (const Case& c : cases) {
        const CostDb db(c.scenario, c.mcm);
        const WindowEvaluator evaluator(db); // default: Static
        const WindowPlacement placement =
            tableScenarioPlacement(c.scenario, c.mcm.numChiplets());
        ASSERT_FALSE(placement.models.empty());

        const WindowCost fast = evaluator.evaluate(placement);
        const WindowCost slow =
            refEvaluateStatic(db, evaluator.comm(), placement);
        EXPECT_EQ(fast.latencyCycles, slow.latencyCycles)
            << c.scenario.name << " on " << c.mcm.name() << ": "
            << hexDouble(fast.latencyCycles) << " vs "
            << hexDouble(slow.latencyCycles);
        EXPECT_EQ(fast.energyNj, slow.energyNj)
            << c.scenario.name << " on " << c.mcm.name() << ": "
            << hexDouble(fast.energyNj) << " vs "
            << hexDouble(slow.energyNj);
        EXPECT_EQ(fast.dramBytes, slow.dramBytes);
        EXPECT_EQ(fast.dramBoundCycles, slow.dramBoundCycles);
        EXPECT_DOUBLE_EQ(fast.maxQueueFactor, 1.0)
            << "static fidelity must never apply an M/D/1 factor";
    }
}

// ---- Phased fidelity behavior --------------------------------------

TEST(CommPhased, CongestedWindowAppliesQueueingFactors)
{
    const Scenario sc = suite::datacenterScenario(4);
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    const WindowPlacement placement =
        tableScenarioPlacement(sc, mcm.numChiplets());

    EvaluatorOptions phasedOpts;
    phasedOpts.fidelity = CommFidelity::Phased;
    const WindowEvaluator phased(db, phasedOpts);
    const WindowEvaluator statics(db);

    const WindowCost p = phased.evaluate(placement);
    const WindowCost s = statics.evaluate(placement);
    EXPECT_GT(p.maxQueueFactor, 1.0)
        << "a multi-model window sharing DRAM routes must congest";
    EXPECT_LE(p.maxQueueFactor, 10.5);
    EXPECT_DOUBLE_EQ(s.maxQueueFactor, 1.0);
    // Phased charges weight/spill phases the static model ignores.
    EXPECT_GE(p.latencyCycles, s.latencyCycles * 0.999);
    EXPECT_EQ(p.dramBytes, s.dramBytes)
        << "fidelity changes pricing, never traffic volume";
}

TEST(CommPhased, ScheduleIsBitIdenticalAcrossThreadCounts)
{
    Scenario sc;
    sc.name = "phased-det";
    sc.models = {zoo::eyeCod(2), zoo::handSP(2), zoo::resNet50(1)};
    sc.finalize();
    const Mcm mcm =
        templates::hetSidesBroadcast3x3(templates::kArvrPes);

    auto runAt = [&](int threads) {
        ScarOptions options;
        options.threads = threads;
        options.window.eval.fidelity = CommFidelity::Phased;
        Scar scar(sc, mcm, options);
        const ScheduleResult result = scar.run();
        std::string fingerprint;
        fingerprint += hexDouble(result.metrics.latencySec) + "|" +
                       hexDouble(result.metrics.energyJ);
        for (const ScheduledWindow& w : result.windows) {
            fingerprint += "|" + hexDouble(w.cost.latencyCycles) +
                           ":" + hexDouble(w.cost.energyNj) + ":" +
                           hexDouble(w.cost.maxQueueFactor);
        }
        return fingerprint;
    };

    const std::string serial = runAt(1);
    EXPECT_EQ(serial, runAt(4));
    EXPECT_EQ(serial, runAt(8));
}

// ---- Broadcast-plane pricing ---------------------------------------

TEST(CommBroadcast, PlaneCoveredOneToManyIsASingleSlot)
{
    const Mcm mcm = templates::hetSidesBroadcast3x3();
    const CommModel comm(mcm);
    const double bytes = 4096.0;
    const std::vector<int> all = {1, 2, 3, 4, 5, 6, 7, 8};

    const double slot = comm.broadcastLatencyCycles(bytes, 0, all);
    const double expected =
        bytes / gbpsToBytesPerCycle(mcm.params().bwBroadcastGBps) +
        nsToCycles(mcm.params().nopHopLatencyNs);
    EXPECT_DOUBLE_EQ(slot, expected);
    // One slot regardless of destination count.
    EXPECT_DOUBLE_EQ(comm.broadcastLatencyCycles(bytes, 0, {8}), slot);

    double serialized = 0.0;
    for (const int d : all)
        serialized += comm.nopLatencyCycles(bytes, 0, d);
    EXPECT_LT(slot, serialized);

    const double energy = comm.broadcastEnergyNj(bytes, 0, all);
    EXPECT_DOUBLE_EQ(
        energy,
        pjToNj(bytes * 8.0 * mcm.params().broadcastEnergyPjPerBit));
}

TEST(CommBroadcast, NonMemberSourceSerializesUnicasts)
{
    const Mcm full = templates::hetSidesBroadcast3x3();
    // Rebuild the package on a partial plane (corners only).
    std::vector<Chiplet> chiplets;
    for (int id = 0; id < full.numChiplets(); ++id)
        chiplets.push_back(full.chiplet(id));
    const Mcm corners("Het-Sides-Corners", std::move(chiplets),
                      Topology::broadcastMesh(3, 3, {0, 2, 6, 8}),
                      full.params());
    const CommModel comm(corners);
    const double bytes = 2048.0;

    // Source 4 is off the plane: serialized unicast.
    double serialized = 0.0;
    for (const int d : {0, 2})
        serialized += comm.nopLatencyCycles(bytes, 4, d);
    EXPECT_DOUBLE_EQ(comm.broadcastLatencyCycles(bytes, 4, {0, 2}),
                     serialized);
    // A destination off the plane also disqualifies the single slot.
    double mixed = 0.0;
    for (const int d : {2, 4})
        mixed += comm.nopLatencyCycles(bytes, 0, d);
    EXPECT_DOUBLE_EQ(comm.broadcastLatencyCycles(bytes, 0, {2, 4}),
                     mixed);
    // All-member one-to-many stays one slot.
    const double slot =
        comm.broadcastLatencyCycles(bytes, 0, {2, 6, 8});
    EXPECT_DOUBLE_EQ(
        slot,
        bytes / gbpsToBytesPerCycle(
                    corners.params().bwBroadcastGBps) +
            nsToCycles(corners.params().nopHopLatencyNs));
}

} // namespace
} // namespace scar
