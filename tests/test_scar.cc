/**
 * @file
 * Integration tests for the SCAR facade: full two-level scheduling
 * runs across scenarios, MCM templates, targets, and search modes.
 */

#include <gtest/gtest.h>

#include <set>

#include "arch/mcm_templates.h"
#include "eval/scenario_suite.h"
#include "common/units.h"
#include "sched/scar.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

Scenario
smallScenario()
{
    Scenario sc;
    sc.name = "small";
    sc.models = {zoo::eyeCod(8), zoo::handSP(4)};
    sc.finalize();
    return sc;
}

/** Checks the Theorem 1+2 validity of a full schedule. */
void
expectValidSchedule(const Scenario& sc, const ScheduleResult& result)
{
    std::vector<int> next(sc.numModels(), 0);
    for (const ScheduledWindow& sw : result.windows) {
        std::set<int> used;
        for (const ModelPlacement& mp : sw.placement.models) {
            for (const PlacedSegment& seg : mp.segments) {
                EXPECT_TRUE(used.insert(seg.chiplet).second);
                EXPECT_EQ(seg.range.first, next[mp.modelIdx]);
                next[mp.modelIdx] = seg.range.last + 1;
            }
        }
    }
    for (int m = 0; m < sc.numModels(); ++m)
        EXPECT_EQ(next[m], sc.models[m].numLayers()) << "model " << m;
}

TEST(Scar, ProducesValidCompleteSchedule)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    Scar scar(sc, mcm, ScarOptions{});
    const ScheduleResult result = scar.run();
    expectValidSchedule(sc, result);
    EXPECT_GT(result.metrics.latencySec, 0.0);
    EXPECT_GT(result.metrics.energyJ, 0.0);
}

TEST(Scar, MetricsAreWindowSums)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    Scar scar(sc, mcm, ScarOptions{});
    const ScheduleResult result = scar.run();
    double cycles = 0.0;
    double energy = 0.0;
    for (const ScheduledWindow& sw : result.windows) {
        cycles += sw.cost.latencyCycles;
        energy += sw.cost.energyNj;
    }
    EXPECT_NEAR(result.metrics.latencySec, cyclesToSeconds(cycles),
                1e-12);
    EXPECT_NEAR(result.metrics.energyJ, njToJoules(energy), 1e-12);
    EXPECT_NEAR(result.metrics.edp(),
                result.metrics.latencySec * result.metrics.energyJ,
                1e-15);
}

TEST(Scar, CandidateCloudIsPopulated)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetCb3x3(templates::kArvrPes);
    Scar scar(sc, mcm, ScarOptions{});
    const ScheduleResult result = scar.run();
    EXPECT_GE(result.candidates.size(), 8u);
    for (const Metrics& m : result.candidates) {
        EXPECT_GT(m.latencySec, 0.0);
        EXPECT_GT(m.energyJ, 0.0);
    }
}

TEST(Scar, DeterministicForFixedSeed)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    ScarOptions opts;
    opts.seed = 99;
    const Metrics a = Scar(sc, mcm, opts).run().metrics;
    const Metrics b = Scar(sc, mcm, opts).run().metrics;
    EXPECT_DOUBLE_EQ(a.latencySec, b.latencySec);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
}

/** Bitwise equality of two complete schedule results. */
void
expectIdenticalResults(const ScheduleResult& a, const ScheduleResult& b)
{
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (std::size_t w = 0; w < a.windows.size(); ++w) {
        const ScheduledWindow& wa = a.windows[w];
        const ScheduledWindow& wb = b.windows[w];
        EXPECT_EQ(wa.cost.latencyCycles, wb.cost.latencyCycles);
        EXPECT_EQ(wa.cost.energyNj, wb.cost.energyNj);
        EXPECT_EQ(wa.nodes, wb.nodes);
        ASSERT_EQ(wa.placement.models.size(),
                  wb.placement.models.size());
        for (std::size_t m = 0; m < wa.placement.models.size(); ++m) {
            const ModelPlacement& ma = wa.placement.models[m];
            const ModelPlacement& mb = wb.placement.models[m];
            EXPECT_EQ(ma.modelIdx, mb.modelIdx);
            ASSERT_EQ(ma.segments.size(), mb.segments.size());
            for (std::size_t k = 0; k < ma.segments.size(); ++k) {
                EXPECT_EQ(ma.segments[k].chiplet,
                          mb.segments[k].chiplet);
                EXPECT_EQ(ma.segments[k].range.first,
                          mb.segments[k].range.first);
                EXPECT_EQ(ma.segments[k].range.last,
                          mb.segments[k].range.last);
            }
        }
    }
    EXPECT_EQ(a.metrics.latencySec, b.metrics.latencySec);
    EXPECT_EQ(a.metrics.energyJ, b.metrics.energyJ);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (std::size_t i = 0; i < a.candidates.size(); ++i) {
        EXPECT_EQ(a.candidates[i].latencySec,
                  b.candidates[i].latencySec);
        EXPECT_EQ(a.candidates[i].energyJ, b.candidates[i].energyJ);
    }
}

/** Tentpole acceptance: same seed => byte-identical ScheduleResult
 *  (windows, metrics, candidate order) at 1, 4, and 8 pool threads. */
TEST(Scar, ByteIdenticalAcrossPoolSizes)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    ScarOptions serial;
    serial.seed = 2024;
    serial.threads = 1;
    const ScheduleResult baseline = Scar(sc, mcm, serial).run();

    for (int threads : {4, 8}) {
        ScarOptions opts;
        opts.seed = 2024;
        opts.threads = threads;
        const ScheduleResult result = Scar(sc, mcm, opts).run();
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expectIdenticalResults(baseline, result);
    }
}

TEST(Scar, ByteIdenticalAcrossPoolSizesEvolutionary)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetCross6x6(templates::kArvrPes);
    ScarOptions serial;
    serial.seed = 7;
    serial.threads = 1;
    serial.mode = SearchMode::Evolutionary;
    serial.nsplits = 2;
    const ScheduleResult baseline = Scar(sc, mcm, serial).run();

    for (int threads : {4, 8}) {
        ScarOptions opts = serial;
        opts.threads = threads;
        const ScheduleResult result = Scar(sc, mcm, opts).run();
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expectIdenticalResults(baseline, result);
    }
}

class ScarTargetTest : public ::testing::TestWithParam<OptTarget>
{
};

TEST_P(ScarTargetTest, EveryTargetYieldsValidSchedule)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    ScarOptions opts;
    opts.target = GetParam();
    Scar scar(sc, mcm, opts);
    const ScheduleResult result = scar.run();
    expectValidSchedule(sc, result);
}

INSTANTIATE_TEST_SUITE_P(Targets, ScarTargetTest,
                         ::testing::Values(OptTarget::Latency,
                                           OptTarget::Energy,
                                           OptTarget::Edp),
                         [](const auto& info) {
                             return optTargetName(info.param);
                         });

TEST(Scar, LatencySearchIsNoSlowerThanEnergySearch)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    ScarOptions lat;
    lat.target = OptTarget::Latency;
    ScarOptions nrg;
    nrg.target = OptTarget::Energy;
    const Metrics ml = Scar(sc, mcm, lat).run().metrics;
    const Metrics me = Scar(sc, mcm, nrg).run().metrics;
    EXPECT_LE(ml.latencySec, me.latencySec * 1.05);
}

TEST(Scar, NsplitsControlsWindowCount)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    for (int nsplits : {0, 2, 4}) {
        ScarOptions opts;
        opts.nsplits = nsplits;
        Scar scar(sc, mcm, opts);
        const ScheduleResult result = scar.run();
        EXPECT_LE(static_cast<int>(result.windows.size()), nsplits + 1);
        expectValidSchedule(sc, result);
    }
}

TEST(Scar, EvolutionaryModeProducesValidSchedule)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetCross6x6(templates::kArvrPes);
    ScarOptions opts;
    opts.mode = SearchMode::Evolutionary;
    opts.nsplits = 2;
    Scar scar(sc, mcm, opts);
    const ScheduleResult result = scar.run();
    expectValidSchedule(sc, result);
}

TEST(Scar, ExhaustiveProvisioningNeverWorseThanRule)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    ScarOptions rule;
    ScarOptions exhaustive;
    exhaustive.prov.mode = ProvisionerOptions::Mode::Exhaustive;
    exhaustive.prov.maxCandidates = 64;
    const double ruleEdp = Scar(sc, mcm, rule).run().metrics.edp();
    const double exhEdp =
        Scar(sc, mcm, exhaustive).run().metrics.edp();
    EXPECT_LE(exhEdp, ruleEdp * 1.001);
}

TEST(Scar, CustomScoreIsHonored)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    ScarOptions opts;
    // A latency-dominated custom metric: L^2 * E.
    opts.customScore = [](const Metrics& m) {
        return m.latencySec * m.latencySec * m.energyJ;
    };
    Scar scar(sc, mcm, opts);
    const ScheduleResult result = scar.run();
    EXPECT_GT(result.metrics.latencySec, 0.0);
}

TEST(Scar, UniformPackingAblationRuns)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);
    ScarOptions opts;
    opts.packing = PackingPolicy::Uniform;
    Scar scar(sc, mcm, opts);
    expectValidSchedule(sc, scar.run());
}

TEST(Scar, TriangularTopologyRuns)
{
    const Scenario sc = smallScenario();
    const Mcm mcm = templates::hetTriangular(templates::kArvrPes);
    Scar scar(sc, mcm, ScarOptions{});
    expectValidSchedule(sc, scar.run());
}

TEST(Scar, SingleModelScenarioWorks)
{
    Scenario sc;
    sc.name = "single";
    sc.models = {zoo::eyeCod(4)};
    sc.finalize();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS,
                                        templates::kArvrPes);
    Scar scar(sc, mcm, ScarOptions{});
    expectValidSchedule(sc, scar.run());
}

TEST(Scar, MoreModelsThanChipletsIsRejected)
{
    Scenario sc;
    sc.name = "five";
    sc.models = {zoo::eyeCod(1), zoo::eyeCod(1), zoo::eyeCod(1),
                 zoo::eyeCod(1), zoo::eyeCod(1)};
    sc.finalize();
    const Mcm mcm = templates::motivational2x2(templates::kArvrPes);
    ScarOptions opts;
    opts.nsplits = 0;
    Scar scar(sc, mcm, opts);
    EXPECT_THROW(scar.run(), FatalError);
}

} // namespace
} // namespace scar
