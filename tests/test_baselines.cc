/**
 * @file
 * Tests for the Standalone and NN-baton baseline schedulers.
 */

#include <gtest/gtest.h>

#include "arch/mcm_templates.h"
#include <set>

#include "common/units.h"
#include "baselines/nn_baton.h"
#include "baselines/standalone.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

Scenario
twoSmall()
{
    Scenario sc;
    sc.name = "two";
    sc.models = {zoo::eyeCod(4), zoo::handSP(2)};
    sc.finalize();
    return sc;
}

TEST(Standalone, OneChipletPerModel)
{
    const Scenario sc = twoSmall();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS,
                                        templates::kArvrPes);
    const ScheduleResult result = scheduleStandalone(sc, mcm);
    ASSERT_EQ(result.windows.size(), 1u);
    std::set<int> used;
    for (const ModelPlacement& mp : result.windows[0].placement.models) {
        EXPECT_EQ(mp.segments.size(), 1u);
        EXPECT_TRUE(used.insert(mp.segments[0].chiplet).second);
        EXPECT_EQ(mp.segments[0].range.first, 0);
        EXPECT_EQ(mp.segments[0].range.last,
                  sc.models[mp.modelIdx].numLayers() - 1);
    }
}

TEST(Standalone, LatencyIsMaxOfConcurrentModels)
{
    // One-model scenarios vs the two-model scenario: the pair's
    // latency equals the slower model (plus possible DRAM roofline).
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS,
                                        templates::kArvrPes);
    Scenario a;
    a.name = "a";
    a.models = {zoo::eyeCod(4)};
    a.finalize();
    Scenario b;
    b.name = "b";
    b.models = {zoo::handSP(2)};
    b.finalize();
    const double la = scheduleStandalone(a, mcm).metrics.latencySec;
    const double lb = scheduleStandalone(b, mcm).metrics.latencySec;
    const double lab =
        scheduleStandalone(twoSmall(), mcm).metrics.latencySec;
    EXPECT_GE(lab, std::max(la, lb) * 0.999);
    EXPECT_LE(lab, (la + lb) * 1.001);
}

TEST(Standalone, RejectsMoreModelsThanChiplets)
{
    Scenario sc;
    sc.name = "five";
    for (int i = 0; i < 5; ++i)
        sc.models.push_back(zoo::eyeCod(1));
    sc.finalize();
    const Mcm mcm = templates::motivational2x2(templates::kArvrPes);
    EXPECT_THROW(scheduleStandalone(sc, mcm), FatalError);
}

TEST(Standalone, ShiSlowerThanNvdOnTransformers)
{
    // The headline dataflow-affinity effect at baseline level
    // (Table IV: Standalone (Shi) vs Standalone (NVD) on Sc1-like).
    Scenario sc;
    sc.name = "lm";
    sc.models = {zoo::bertBase(1)};
    sc.finalize();
    const Mcm shi = templates::simba3x3(Dataflow::ShiOS);
    const Mcm nvd = templates::simba3x3(Dataflow::NvdlaWS);
    const Metrics ms = scheduleStandalone(sc, shi).metrics;
    const Metrics mn = scheduleStandalone(sc, nvd).metrics;
    EXPECT_GT(ms.latencySec, mn.latencySec);
    EXPECT_GT(ms.edp(), mn.edp());
}

TEST(NnBaton, SequentialWindowsPerModel)
{
    const Scenario sc = twoSmall();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS,
                                        templates::kArvrPes);
    const ScheduleResult result = scheduleNnBaton(sc, mcm);
    ASSERT_EQ(result.windows.size(), 2u);
    // Sequential: total latency is the sum of the per-model windows.
    const double sum =
        cyclesToSeconds(result.windows[0].cost.latencyCycles +
                        result.windows[1].cost.latencyCycles);
    EXPECT_NEAR(result.metrics.latencySec, sum, 1e-12);
}

TEST(NnBaton, SmallModelsStayOnStartChiplet)
{
    Scenario sc;
    sc.name = "tiny";
    sc.models = {zoo::eyeCod(1)};
    sc.finalize();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS,
                                        templates::kArvrPes);
    const ScheduleResult result = scheduleNnBaton(sc, mcm, 0);
    ASSERT_EQ(result.windows.size(), 1u);
    const auto& mp = result.windows[0].placement.models[0];
    EXPECT_EQ(mp.segments.size(), 1u);
    EXPECT_EQ(mp.segments[0].chiplet, 0);
}

TEST(NnBaton, LargeModelsPartitionAcrossChiplets)
{
    // GPT-L weights (~774 MB) vastly exceed a 10 MB L2: NN-baton must
    // spread the model over several chiplets.
    Scenario sc;
    sc.name = "gpt";
    sc.models = {zoo::gptL(1)};
    sc.finalize();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const ScheduleResult result = scheduleNnBaton(sc, mcm);
    EXPECT_GT(result.windows[0].placement.models[0].segments.size(), 1u);
}

TEST(NnBaton, SequentialSlowerThanConcurrentStandalone)
{
    // NN-baton's model-serial execution loses to the concurrent
    // standalone assignment on latency (Figure 2's premise).
    const Scenario sc = twoSmall();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS,
                                        templates::kArvrPes);
    const double baton = scheduleNnBaton(sc, mcm).metrics.latencySec;
    const double stand =
        scheduleStandalone(sc, mcm).metrics.latencySec;
    EXPECT_GT(baton, stand * 0.999);
}

TEST(NnBaton, RejectsBadStartChiplet)
{
    const Scenario sc = twoSmall();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    EXPECT_THROW(scheduleNnBaton(sc, mcm, 99), FatalError);
}

} // namespace
} // namespace scar
