/**
 * @file
 * Tests for the communication model, cost database, and window
 * evaluator (the Section III-E performance model).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "arch/mcm_templates.h"
#include "common/units.h"
#include "common/error.h"
#include "cost/comm_model.h"
#include "cost/cost_db.h"
#include "cost/window_evaluator.h"
#include "eval/scenario_suite.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace
{

Scenario
tinyScenario()
{
    Scenario sc;
    sc.name = "tiny";
    sc.models = {zoo::eyeCod(2), zoo::bertBase(1)};
    sc.finalize();
    return sc;
}

TEST(CommModel, SameChipletIsFree)
{
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const CommModel comm(mcm);
    EXPECT_DOUBLE_EQ(comm.nopLatencyCycles(1.0e6, 4, 4), 0.0);
    EXPECT_DOUBLE_EQ(comm.nopEnergyNj(1.0e6, 4, 4), 0.0);
}

TEST(CommModel, NopLatencyMatchesFormula)
{
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const CommModel comm(mcm);
    // 0 -> 8 is 4 hops; 100 GB/s at 500 MHz = 200 B/cycle.
    const double bytes = 2000.0;
    const double expected = bytes / 200.0 + 4 * nsToCycles(35.0);
    EXPECT_DOUBLE_EQ(comm.nopLatencyCycles(bytes, 0, 8), expected);
}

TEST(CommModel, NopEnergyScalesWithHops)
{
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const CommModel comm(mcm);
    const double oneHop = comm.nopEnergyNj(1000.0, 0, 1);
    const double fourHops = comm.nopEnergyNj(1000.0, 0, 8);
    EXPECT_DOUBLE_EQ(fourHops, 4.0 * oneHop);
}

TEST(CommModel, DramIncludesFixedLatency)
{
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const CommModel comm(mcm);
    // Chiplet 0 is itself a memory interface: no hops, only DRAM terms.
    const double lat = comm.dramLatencyCycles(1280.0, 0);
    EXPECT_DOUBLE_EQ(lat, 1280.0 / 128.0 + nsToCycles(200.0));
}

TEST(CommModel, DramEnergyUsesTable2Value)
{
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const CommModel comm(mcm);
    // 1000 bytes * 8 bits * 14.8 pJ/bit = 118400 pJ = 118.4 nJ.
    EXPECT_NEAR(comm.dramEnergyNj(1000.0, 0), 118.4, 1e-9);
}

TEST(CostDb, LookupMatchesDirectEvaluation)
{
    const Scenario sc = tinyScenario();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    const MaestroLite model;
    const LayerCost direct = model.evalLayer(
        sc.models[0].layers[0], mcm.specForDataflow(Dataflow::ShiOS));
    const LayerCost& cached = db.cost(0, 0, Dataflow::ShiOS);
    EXPECT_DOUBLE_EQ(cached.computeCycles, direct.computeCycles);
    EXPECT_DOUBLE_EQ(cached.intraEnergyNj, direct.intraEnergyNj);
}

TEST(CostDb, ExpectationIsClassWeightedAverage)
{
    const Scenario sc = tinyScenario();
    const Mcm mcm = templates::hetSides3x3(); // 6 NVD + 3 Shi
    const CostDb db(sc, mcm);
    const double nvd = db.layerCycles(0, 0, Dataflow::NvdlaWS);
    const double shi = db.layerCycles(0, 0, Dataflow::ShiOS);
    const double expected = (6.0 * nvd + 3.0 * shi) / 9.0;
    EXPECT_NEAR(db.expectedLayerCycles(0, 0), expected, 1e-9);
}

TEST(CostDb, HomogeneousExpectationEqualsClassCost)
{
    const Scenario sc = tinyScenario();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    const CostDb db(sc, mcm);
    EXPECT_NEAR(db.expectedLayerCycles(1, 3),
                db.layerCycles(1, 3, Dataflow::NvdlaWS), 1e-9);
}

class WindowEvalTest : public ::testing::Test
{
  protected:
    WindowEvalTest()
        : sc_(tinyScenario()), mcm_(templates::hetSides3x3()),
          db_(sc_, mcm_)
    {}

    WindowPlacement
    wholeModelPlacement(int model, int chiplet) const
    {
        WindowPlacement p;
        ModelPlacement mp;
        mp.modelIdx = model;
        mp.segments.push_back(PlacedSegment{
            LayerRange{0, sc_.models[model].numLayers() - 1}, chiplet});
        p.models.push_back(std::move(mp));
        return p;
    }

    Scenario sc_;
    Mcm mcm_;
    CostDb db_;
};

TEST_F(WindowEvalTest, RejectsChipletOverlap)
{
    const WindowEvaluator eval(db_);
    WindowPlacement p = wholeModelPlacement(0, 2);
    WindowPlacement p2 = wholeModelPlacement(1, 2);
    p.models.push_back(p2.models.front());
    EXPECT_THROW(eval.evaluate(p), FatalError);
}

TEST_F(WindowEvalTest, RejectsNonContiguousSegments)
{
    const WindowEvaluator eval(db_);
    WindowPlacement p;
    ModelPlacement mp;
    mp.modelIdx = 0;
    mp.segments.push_back(PlacedSegment{LayerRange{0, 2}, 0});
    mp.segments.push_back(PlacedSegment{LayerRange{4, 6}, 1}); // gap
    p.models.push_back(std::move(mp));
    EXPECT_THROW(eval.evaluate(p), FatalError);
}

TEST_F(WindowEvalTest, MidModelWindowIsAccepted)
{
    const WindowEvaluator eval(db_);
    WindowPlacement p;
    ModelPlacement mp;
    mp.modelIdx = 1;
    mp.segments.push_back(PlacedSegment{LayerRange{5, 9}, 3});
    p.models.push_back(std::move(mp));
    EXPECT_GT(eval.evaluate(p).latencyCycles, 0.0);
}

TEST_F(WindowEvalTest, LatencyIsMaxOverModelsEnergyIsSum)
{
    const WindowEvaluator eval(db_, {false, false});
    const WindowCost a = eval.evaluate(wholeModelPlacement(0, 0));
    const WindowCost b = eval.evaluate(wholeModelPlacement(1, 8));
    WindowPlacement both = wholeModelPlacement(0, 0);
    both.models.push_back(wholeModelPlacement(1, 8).models.front());
    const WindowCost ab = eval.evaluate(both);
    EXPECT_NEAR(ab.latencyCycles,
                std::max(a.latencyCycles, b.latencyCycles), 1e-6);
    EXPECT_NEAR(ab.energyNj, a.energyNj + b.energyNj, 1e-6);
}

TEST_F(WindowEvalTest, PipeliningHelpsBatchedLatency)
{
    // Split BERT-Base across a 3-chiplet NVDLA pipeline; with batch 1
    // splitting cannot beat the single chiplet (extra handoffs), but
    // it shortens the per-sample critical stage for larger batches.
    Scenario sc;
    sc.name = "b8";
    sc.models = {zoo::bertBase(8)};
    sc.finalize();
    // Force b' = 1 so the batch streams sample by sample and the
    // inter-chiplet pipelining term of the formula is exercised.
    const CostDb db(sc, mcm_, MaestroLite{}, CostDbOptions{1});
    const WindowEvaluator eval(db, {false, false});

    WindowPlacement single;
    ModelPlacement mp;
    mp.modelIdx = 0;
    const int n = sc.models[0].numLayers();
    mp.segments.push_back(PlacedSegment{LayerRange{0, n - 1}, 0});
    single.models.push_back(mp);

    WindowPlacement piped;
    ModelPlacement mp3;
    mp3.modelIdx = 0;
    mp3.segments.push_back(PlacedSegment{LayerRange{0, n / 3}, 0});
    mp3.segments.push_back(
        PlacedSegment{LayerRange{n / 3 + 1, 2 * n / 3}, 3});
    mp3.segments.push_back(
        PlacedSegment{LayerRange{2 * n / 3 + 1, n - 1}, 6});
    piped.models.push_back(mp3);

    const double lat1 = eval.evaluate(single).latencyCycles;
    const double lat3 = eval.evaluate(piped).latencyCycles;
    EXPECT_LT(lat3, lat1);
}

TEST_F(WindowEvalTest, EntryChipletAvoidsDram)
{
    const WindowEvaluator eval(db_, {false, false});
    WindowPlacement fromDram;
    ModelPlacement mp;
    mp.modelIdx = 1;
    mp.segments.push_back(PlacedSegment{LayerRange{5, 9}, 3});
    fromDram.models.push_back(mp);

    WindowPlacement fromChiplet = fromDram;
    fromChiplet.entryChiplet.assign(sc_.numModels(), -1);
    fromChiplet.entryChiplet[1] = 0; // neighbour of chiplet 3

    const WindowCost dram = eval.evaluate(fromDram);
    const WindowCost nop = eval.evaluate(fromChiplet);
    EXPECT_GT(dram.dramBytes, nop.dramBytes);
    EXPECT_LT(nop.energyNj, dram.energyNj);
}

TEST_F(WindowEvalTest, FinalLayerWritesBackToDram)
{
    const WindowEvaluator eval(db_, {false, false});
    // Mid-window (not final layer): no writeback.
    WindowPlacement mid;
    ModelPlacement mp;
    mp.modelIdx = 1;
    mp.segments.push_back(PlacedSegment{LayerRange{0, 9}, 3});
    mid.models.push_back(mp);
    // Final window: same layer count but includes the last layer.
    const int n = sc_.models[1].numLayers();
    WindowPlacement fin;
    ModelPlacement mpf;
    mpf.modelIdx = 1;
    mpf.segments.push_back(PlacedSegment{LayerRange{n - 10, n - 1}, 3});
    fin.models.push_back(mpf);

    // Both include weight traffic; only `fin` adds an output flow.
    const double outBytes =
        sc_.models[1].layers[n - 1].outputBytes();
    const WindowCost mc = eval.evaluate(mid);
    const WindowCost fc = eval.evaluate(fin);
    // The final window's DRAM bytes include the writeback.
    EXPECT_GT(fc.dramBytes, 0.0);
    EXPECT_GT(outBytes, 0.0);
    (void)mc;
}

TEST_F(WindowEvalTest, ContentionNeverReducesLatency)
{
    Scenario sc;
    sc.name = "two";
    sc.models = {zoo::eyeCod(4), zoo::eyeCod(4)};
    sc.finalize();
    const CostDb db(sc, mcm_);
    const WindowEvaluator with(db, {true, true});
    const WindowEvaluator without(db, {false, true});

    // Two pipelines crossing the middle column share links.
    WindowPlacement p;
    for (int m = 0; m < 2; ++m) {
        ModelPlacement mp;
        mp.modelIdx = m;
        const int n = sc.models[m].numLayers();
        const int base = m * 6; // rows 0 and 2
        mp.segments.push_back(PlacedSegment{LayerRange{0, n / 2}, base});
        mp.segments.push_back(
            PlacedSegment{LayerRange{n / 2 + 1, n - 1}, base + 1});
        p.models.push_back(std::move(mp));
    }
    EXPECT_GE(with.evaluate(p).latencyCycles,
              without.evaluate(p).latencyCycles);
}

TEST_F(WindowEvalTest, DramRooflineBoundsWindowLatency)
{
    const WindowEvaluator eval(db_, {false, true});
    const WindowCost cost = eval.evaluate(wholeModelPlacement(1, 0));
    EXPECT_GE(cost.latencyCycles, cost.dramBoundCycles);
    EXPECT_GT(cost.dramBytes, 0.0);
}

TEST_F(WindowEvalTest, NonResidentWeightsStreamPerSample)
{
    // BERT-Base's full-model weights far exceed the 10 MB L2, so the
    // single-chiplet placement streams weights per sample: DRAM bytes
    // scale with batch.
    Scenario sc1;
    sc1.name = "b1";
    sc1.models = {zoo::bertBase(1)};
    sc1.finalize();
    Scenario sc4;
    sc4.name = "b4";
    sc4.models = {zoo::bertBase(4)};
    sc4.finalize();
    const Mcm mcm = templates::simba3x3(Dataflow::NvdlaWS);
    // Fix b' = 1: the residency mechanism streams weights per step.
    const CostDb db1(sc1, mcm, MaestroLite{}, CostDbOptions{1});
    const CostDb db4(sc4, mcm, MaestroLite{}, CostDbOptions{1});
    WindowPlacement p;
    ModelPlacement mp;
    mp.modelIdx = 0;
    mp.segments.push_back(
        PlacedSegment{LayerRange{0, sc1.models[0].numLayers() - 1}, 0});
    p.models.push_back(mp);
    const double d1 = WindowEvaluator(db1).evaluate(p).dramBytes;
    const double d4 = WindowEvaluator(db4).evaluate(p).dramBytes;
    EXPECT_GT(d4, 3.0 * d1);
}

TEST_F(WindowEvalTest, MiniBatchSpeedsUpBatchedModels)
{
    // Processing b' samples concurrently (paper Section III-E) must
    // not be slower than streaming them one at a time: the OS spatial
    // map gains batch parallelism and WS amortizes weight fetches.
    Scenario sc;
    sc.name = "b8";
    sc.models = {zoo::resNet50(8)};
    sc.finalize();
    const CostDb db1(sc, mcm_, MaestroLite{}, CostDbOptions{1});
    const CostDb dbAuto(sc, mcm_, MaestroLite{}, CostDbOptions{0});
    EXPECT_GT(dbAuto.miniBatch(0), 1);

    WindowPlacement p;
    ModelPlacement mp;
    mp.modelIdx = 0;
    const int n = sc.models[0].numLayers();
    mp.segments.push_back(PlacedSegment{LayerRange{0, n - 1}, 1});
    p.models.push_back(mp);

    const WindowCost serial =
        WindowEvaluator(db1, {false, false}).evaluate(p);
    const WindowCost batched =
        WindowEvaluator(dbAuto, {false, false}).evaluate(p);
    EXPECT_LE(batched.latencyCycles, serial.latencyCycles * 1.001);
}

TEST(CostDbMiniBatch, CapacityRuleBoundsMiniBatch)
{
    // GPT-L activations are small relative to L2 but batch is 1;
    // ResNet-50 at batch 32 is capacity-limited below 32.
    Scenario sc;
    sc.name = "mix";
    sc.models = {zoo::gptL(1), zoo::resNet50(32)};
    sc.finalize();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    EXPECT_EQ(db.miniBatch(0), 1); // capped by batch
    EXPECT_GE(db.miniBatch(1), 2);
    EXPECT_LE(db.miniBatch(1), 32);
}

TEST(CostDbMiniBatch, BatchImprovesShiUtilizationOnCnns)
{
    // The mechanism behind the paper's heavy-scenario results: with a
    // chiplet-level mini-batch, output-stationary chiplets regain
    // utilization on mid/late CNN layers.
    const MaestroLite model;
    ChipletSpec shi;
    shi.dataflow = Dataflow::ShiOS;
    Layer conv;
    conv.type = OpType::Conv2D;
    conv.dims = LayerDims{128, 128, 3, 3, 28, 28, 1, 1};
    const LayerCost b1 = model.evalLayer(conv, shi, 1);
    const LayerCost b8 = model.evalLayer(conv, shi, 8);
    EXPECT_GT(b8.utilization, b1.utilization * 3.0);
    EXPECT_LT(b8.computeCycles, b1.computeCycles);
}

// ---- O(1) segment range queries (cost_db.h) ------------------------

TEST(CostDbRangeQueries, MatchPerLayerLoopsBitExactly)
{
    Scenario sc;
    sc.name = "pair";
    sc.models = {zoo::resNet50(4), zoo::bertBase(2)};
    sc.finalize();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);

    for (int m = 0; m < sc.numModels(); ++m) {
        const Model& model = sc.models[m];
        const auto& candidates = db.miniBatchCandidates(m);
        // A spread of ranges incl. single layers and the full model.
        const int n = model.numLayers();
        const std::pair<int, int> ranges[] = {
            {0, 0}, {0, n - 1}, {1, n / 2}, {n / 2, n - 1},
            {n / 3, 2 * n / 3}};
        for (const auto& [first, last] : ranges) {
            // Weight-byte sums and activation maxima are exact.
            double weights = 0.0;
            double maxAct = 0.0;
            for (int l = first; l <= last; ++l) {
                weights += model.layers[l].weightBytes();
                maxAct = std::max(maxAct,
                                  model.layers[l].inputBytes() +
                                      model.layers[l].outputBytes());
            }
            EXPECT_EQ(db.segmentWeightBytes(m, first, last), weights);
            EXPECT_EQ(db.segmentMaxActBytes(m, first, last), maxAct);

            // Cycle/energy sums must be bit-identical to the
            // sequential loop they replaced (the byte-identity
            // contract of Scar::run()).
            for (std::size_t bi = 0; bi < candidates.size(); ++bi) {
                const int bPrime = candidates[bi];
                EXPECT_EQ(db.miniBatchIndex(m, bPrime),
                          static_cast<int>(bi));
                for (Dataflow df : kAllDataflows) {
                    double cycles = 0.0;
                    double energy = 0.0;
                    for (int l = first; l <= last; ++l) {
                        const LayerCost& lc = db.costAt(m, l, df,
                                                        bPrime);
                        cycles += lc.intraCycles() * bPrime;
                        energy += lc.intraEnergyNj * bPrime;
                    }
                    EXPECT_EQ(db.segmentCycles(m, static_cast<int>(bi),
                                               df, first, last),
                              cycles);
                    EXPECT_EQ(db.segmentEnergyNj(
                                  m, static_cast<int>(bi), df, first,
                                  last),
                              energy);
                }
            }
        }
    }
}

// ---- Contention bookkeeping regressions ----------------------------

TEST(WindowEvalContention, EvaluationNeverGrowsLoadTables)
{
    // Regression for the pre-route-table bug where the contention
    // factor read the per-link load map through operator[], inserting
    // zero entries mid-read. The load table is now a fixed-size
    // vector over the topology's precomputed dense link ids, so
    // evaluation must leave every topology table untouched and be
    // fully repeatable.
    Scenario sc;
    sc.name = "pair";
    sc.models = {zoo::resNet50(4), zoo::bertBase(2)};
    sc.finalize();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    const WindowEvaluator eval(db);

    const int linksBefore = mcm.topology().numLinks();

    WindowPlacement placement;
    ModelPlacement a;
    a.modelIdx = 0;
    a.segments = {PlacedSegment{LayerRange{0, 30}, 0},
                  PlacedSegment{LayerRange{31, 71}, 3}};
    ModelPlacement b;
    b.modelIdx = 1;
    b.segments = {PlacedSegment{LayerRange{0, 17}, 2},
                  PlacedSegment{LayerRange{18, 35}, 5}};
    placement.models = {a, b};

    const WindowCost first = eval.evaluate(placement);
    EXPECT_EQ(mcm.topology().numLinks(), linksBefore);
    EXPECT_GE(first.maxLinkSharers, 1);

    // Purity: a second evaluation sees identical state and bits.
    const WindowCost second = eval.evaluate(placement);
    EXPECT_EQ(first.latencyCycles, second.latencyCycles);
    EXPECT_EQ(first.energyNj, second.energyNj);
    EXPECT_EQ(first.dramBytes, second.dramBytes);
    EXPECT_EQ(first.maxLinkSharers, second.maxLinkSharers);
}

TEST(SoloFastPath, BitExactAgainstFullEvaluate)
{
    // The beam search's soloCost goes through evaluateSolo; its
    // pruning thresholds compare those numbers against full-evaluate
    // window costs, so the fast path must be bit-exact, not merely
    // close. Cover single- and multi-segment placements of both
    // models on a heterogeneous package.
    const Scenario sc = tinyScenario();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    const WindowEvaluator eval(db, {false, false});

    std::vector<WindowPlacement> placements;
    for (int model = 0; model < sc.numModels(); ++model) {
        const int last = sc.models[model].numLayers() - 1;
        WindowPlacement whole;
        ModelPlacement mp;
        mp.modelIdx = model;
        mp.segments = {PlacedSegment{LayerRange{0, last}, model}};
        whole.models = {mp};
        placements.push_back(whole);

        WindowPlacement split;
        ModelPlacement sp;
        sp.modelIdx = model;
        sp.segments = {PlacedSegment{LayerRange{0, last / 2}, 1},
                       PlacedSegment{LayerRange{last / 2 + 1, last},
                                     4}};
        split.models = {sp};
        placements.push_back(split);
    }
    for (const WindowPlacement& placement : placements) {
        const WindowCost full = eval.evaluate(placement);
        const SoloWindowCost solo = eval.evaluateSolo(placement);
        EXPECT_EQ(solo.latencyCycles, full.latencyCycles);
        EXPECT_EQ(solo.energyNj, full.energyNj);
    }
}

TEST(SoloFastPath, RequiresSoloConfiguration)
{
    const Scenario sc = tinyScenario();
    const Mcm mcm = templates::hetSides3x3();
    const CostDb db(sc, mcm);
    WindowPlacement p;
    ModelPlacement mp;
    mp.modelIdx = 0;
    mp.segments = {PlacedSegment{
        LayerRange{0, sc.models[0].numLayers() - 1}, 0}};
    p.models = {mp};

    // Contention/roofline on: the fast path would not match evaluate.
    const WindowEvaluator contended(db);
    EXPECT_THROW(contended.evaluateSolo(p), FatalError);
    // More than one model: not a solo window.
    WindowPlacement two = p;
    ModelPlacement other;
    other.modelIdx = 1;
    other.segments = {PlacedSegment{
        LayerRange{0, sc.models[1].numLayers() - 1}, 5}};
    two.models.push_back(other);
    const WindowEvaluator solo(db, {false, false});
    EXPECT_THROW(solo.evaluateSolo(two), FatalError);
}

TEST(CostDb, TableReuseIsCountedAndBitTransparent)
{
    const Scenario sc = tinyScenario();
    const Mcm mcm = templates::hetSides3x3();
    CostDb::clearTableCache();

    // Cold build: every model's tables are built and published.
    const CostDb cold(sc, mcm);
    EXPECT_EQ(cold.tableStats().misses, sc.numModels());
    EXPECT_EQ(cold.tableStats().hits, 0);

    // Same (models, package) content key: full reuse.
    const CostDb warm(sc, mcm);
    EXPECT_EQ(warm.tableStats().hits, sc.numModels());
    EXPECT_EQ(warm.tableStats().misses, 0);

    // A private build answers identically — reuse must never change
    // a single bit of any query.
    CostDbOptions privateBuild;
    privateBuild.reuseTables = false;
    const CostDb fresh(sc, mcm, MaestroLite{}, privateBuild);
    EXPECT_EQ(fresh.tableStats().hits, 0);
    for (int m = 0; m < sc.numModels(); ++m) {
        for (int l = 0; l < sc.models[m].numLayers(); ++l) {
            for (const Dataflow df :
                 {Dataflow::NvdlaWS, Dataflow::ShiOS}) {
                EXPECT_EQ(warm.layerCycles(m, l, df),
                          fresh.layerCycles(m, l, df));
                EXPECT_EQ(warm.layerEnergyNj(m, l, df),
                          fresh.layerEnergyNj(m, l, df));
            }
            EXPECT_EQ(warm.expectedLayerCycles(m, l),
                      fresh.expectedLayerCycles(m, l));
        }
    }

    // A different batch changes the content key: no false sharing.
    Scenario rebatched = sc;
    rebatched.models[0].batch += 1;
    rebatched.finalize();
    const CostDb other(rebatched, mcm);
    EXPECT_EQ(other.tableStats().hits, 1)
        << "the unchanged model still reuses";
    EXPECT_EQ(other.tableStats().misses, 1);
    CostDb::clearTableCache();
}

} // namespace
} // namespace scar
