/**
 * @file
 * Online serving example: a 10k-request Poisson stream of datacenter
 * traffic (paper Table III, scenario 4 models) served on the 3x3
 * Het-Sides MCM.
 *
 * Each model gets an arrival rate proportional to its Table III batch
 * size and an MLPerf-server-style latency SLO. The serving runtime
 * batches queued requests, schedules every new model mix once through
 * the SCAR search, replays cached schedules for repeated mixes, and
 * prints the resulting ServingReport: throughput, latency
 * percentiles, SLO violation rate, and schedule-cache effectiveness.
 */

#include <iostream>

#include "arch/mcm_templates.h"
#include "eval/reporter.h"
#include "eval/scenario_suite.h"
#include "runtime/serving_sim.h"

int
main()
{
    using namespace scar;
    using namespace scar::runtime;

    // The Table III Sc4 datacenter mix: two language models, a
    // segmentation model, and a batched image classifier.
    const Scenario sc4 = suite::datacenterScenario(4);

    // Traffic profile: rates proportional to each model's batch size
    // (aggregate ~150 req/s against a ~230 req/s full-mix ceiling),
    // SLOs in the MLPerf server spirit — looser for the LLM, tighter
    // for the vision models.
    const std::vector<double> ratesRps = {18.0, 55.0, 2.5, 75.0};
    const std::vector<double> slosSec = {2.5, 1.5, 2.0, 1.0};

    std::vector<ServedModel> catalog;
    for (std::size_t m = 0; m < sc4.models.size(); ++m) {
        ServedModel sm;
        sm.model = sc4.models[m];
        sm.rateRps = ratesRps[m];
        sm.sloSec = slosSec[m];
        catalog.push_back(std::move(sm));
    }

    std::cout << "Catalog (" << catalog.size() << " models):\n";
    for (const ServedModel& sm : catalog)
        std::cout << "  " << sm.model.name << ": batch<="
                  << sm.model.batch << ", " << sm.rateRps
                  << " req/s, SLO " << sm.sloSec << " s\n";
    std::cout << "\n";

    ServingOptions options;
    options.admission.maxQueueDelaySec = 0.1;
    ServingSimulator sim(catalog, templates::hetSides3x3(), options);

    const int kRequests = 10000;
    const std::vector<Request> trace =
        poissonTrace(catalog, kRequests, /*seed=*/2024);
    std::cout << "Serving " << kRequests
              << " Poisson requests on Het-Sides 3x3...\n\n";

    const ServingReport report = sim.run(trace);
    std::cout << describeServingReport(report) << "\n";

    if (report.cache.hits == 0) {
        std::cerr << "unexpected: schedule cache never hit\n";
        return 1;
    }
    return 0;
}
