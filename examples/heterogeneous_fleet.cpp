/**
 * @file
 * Heterogeneous fleet example: two *different* packages behind one
 * admission front-end — a throughput-oriented all-NVDLA Simba 3x3
 * next to a latency-oriented Het-Sides 3x3 — serving a blend of
 * GEMM-bound NLP traffic (faster on the NVDLA package) and
 * spatially-bound vision traffic (faster on the Shi-heavy package).
 *
 * Demonstrates the per-shard template API (FleetOptions::
 * shardTemplates), the (mix, package)-keyed schedule caches, and the
 * cost-aware Routing::BestFit policy: every dispatch is scored per
 * shard as backlog + switch overhead + solve wait + makespan (cached
 * schedule, or a WindowEvaluator estimate), so each mix lands on the
 * package that finishes it soonest. Compare the per-shard dispatch
 * counts against least-loaded routing, which ignores what the
 * packages are good at; the report's "Cost-optimal routes" row shows
 * how often each policy agreed with the cost model when it had a
 * choice.
 */

#include <iostream>

#include "arch/mcm_templates.h"
#include "eval/reporter.h"
#include "runtime/fleet.h"
#include "workload/model_zoo.h"

int
main()
{
    using namespace scar;
    using namespace scar::runtime;

    // One GEMM-bound NLP model (about 1.8x faster on the NVDLA
    // package) and one spatially-bound vision model (about 3.2x
    // faster on Het-Sides), both latency-sensitive.
    std::vector<ServedModel> catalog(2);
    catalog[0].model = zoo::bertBase(8);
    catalog[0].rateRps = 250.0;
    catalog[0].sloSec = 0.1;
    catalog[1].model = zoo::googleNet(16);
    catalog[1].rateRps = 700.0;
    catalog[1].sloSec = frameDeadlineSec(20.0);

    std::cout << "Catalog:\n";
    for (const ServedModel& sm : catalog)
        std::cout << "  " << sm.model.name << ": batch<="
                  << sm.model.batch << ", " << sm.rateRps
                  << " req/s, SLO " << sm.sloSec << " s\n";

    const int kRequests = 4000;
    const std::vector<Request> trace =
        poissonTrace(catalog, kRequests, /*seed=*/11);

    for (const RoutingPolicy routing :
         {RoutingPolicy::BestFit, RoutingPolicy::LeastLoaded}) {
        FleetOptions options;
        // One shard per template: the fleet size follows the list.
        options.shardTemplates = {
            templates::simba3x3(Dataflow::NvdlaWS),
            templates::hetSides3x3()};
        options.routing = routing;
        options.serving.modeledSolveSec = 0.005;
        options.serving.switchOverheadSec = 0.002;
        options.serving.admission.maxQueueDelaySec = 0.015;

        std::cout << "\n=== " << kRequests
                  << " Poisson requests, Simba(NVD) + Het-Sides, "
                     "routing: "
                  << routingPolicyName(routing) << " ===\n\n";
        FleetSimulator fleet(
            catalog, templates::simba3x3(Dataflow::NvdlaWS), options);
        const ServingReport report = fleet.run(trace);
        std::cout << describeServingReport(report) << "\n";

        if (report.completed != report.offered) {
            std::cerr << "unexpected: fleet dropped requests\n";
            return 1;
        }
    }
    return 0;
}
