/**
 * @file
 * Datacenter multi-tenancy example (paper Table III, scenario 4):
 * two LLMs, a segmentation model, and a batched image classifier are
 * co-scheduled on a 3x3 heterogeneous MCM. The example compares the
 * main MCM strategies under the EDP search and prints the winning
 * schedule with its per-window latency breakdown (Figure 9/Table VI
 * style).
 */

#include <iostream>

#include "arch/mcm_templates.h"
#include "baselines/standalone.h"
#include "common/table.h"
#include "eval/reporter.h"
#include "sched/scar.h"
#include "workload/model_zoo.h"

int
main()
{
    using namespace scar;

    Scenario scenario;
    scenario.name = "multitenant";
    scenario.models = {zoo::gptL(8), zoo::bertLarge(24), zoo::uNet(1),
                       zoo::resNet50(32)};
    scenario.finalize();

    std::cout << "Workload: " << scenario.name << " ("
              << scenario.numModels() << " models, "
              << scenario.totalLayers() << " layers)\n\n";

    struct Entry
    {
        const char* name;
        Mcm mcm;
        bool standalone;
    };
    std::vector<Entry> entries;
    entries.push_back({"Standalone (NVD)",
                       templates::simba3x3(Dataflow::NvdlaWS), true});
    entries.push_back({"Simba (NVD) + SCAR",
                       templates::simba3x3(Dataflow::NvdlaWS), false});
    entries.push_back({"Het-CB + SCAR", templates::hetCb3x3(), false});
    entries.push_back({"Het-Sides + SCAR", templates::hetSides3x3(),
                       false});

    TextTable table({"Strategy", "Latency (s)", "Energy (J)",
                     "EDP (J*s)"});
    Metrics bestMetrics;
    std::string bestName;
    ScheduleResult bestResult;
    Mcm bestMcm = entries.front().mcm;
    double bestEdp = 1e30;

    for (const Entry& entry : entries) {
        ScheduleResult result;
        if (entry.standalone) {
            result = scheduleStandalone(scenario, entry.mcm);
        } else {
            ScarOptions opts;
            opts.target = OptTarget::Edp;
            Scar scar(scenario, entry.mcm, opts);
            result = scar.run();
        }
        table.addRow({entry.name,
                      TextTable::num(result.metrics.latencySec, 3),
                      TextTable::num(result.metrics.energyJ, 3),
                      TextTable::num(result.metrics.edp(), 3)});
        if (result.metrics.edp() < bestEdp) {
            bestEdp = result.metrics.edp();
            bestName = entry.name;
            bestResult = result;
            bestMcm = entry.mcm;
        }
    }
    std::cout << table.render() << "\n";
    std::cout << "Best strategy: " << bestName << "\n\n";
    std::cout << describeSchedule(scenario, bestMcm, bestResult) << "\n";
    std::cout << describeWindowBreakdown(scenario, bestResult);
    return 0;
}
