/**
 * @file
 * Boundary-preemption example: an XR frame stream with 20 fps
 * deadlines sharing one package with long BERT batch jobs.
 *
 * A BERT-Large batch-8 dispatch replays ~86 ms of schedule windows on
 * Het-Sides 3x3 — nearly two full frame deadlines. Without preemption
 * an XR frame landing just behind such a replay waits it out and
 * misses; with ServingOptions::preemption enabled, the replay is
 * suspended at its next window boundary (the stable cut points
 * exposed by sched/scar.h's WindowBoundary metadata), the urgent
 * frame batch runs, and the suspended replay resumes from its saved
 * cursor, charged only a modeled re-staging overhead.
 *
 * The demo serves the same trace twice — preemption off, then on —
 * and prints both serving reports: compare the SLO-violation row, and
 * note the extra preemption rows (suspensions, resume overhead, the
 * preempted requests' own p99) that appear only in the enabled run.
 */

#include <iostream>

#include "arch/mcm_templates.h"
#include "common/rng.h"
#include "eval/reporter.h"
#include "runtime/fleet.h"
#include "workload/model_zoo.h"

int
main()
{
    using namespace scar;
    using namespace scar::runtime;

    // Datacenter batch jobs (model 0) and two XR frame streams.
    std::vector<ServedModel> catalog(3);
    catalog[0].model = zoo::bertLarge(8);
    catalog[0].sloSec = 0.5;
    catalog[1].model = zoo::googleNet(4);
    catalog[1].rateRps = 100.0;
    catalog[1].sloSec = frameDeadlineSec(20.0);
    catalog[2].model = zoo::eyeCod(4);
    catalog[2].rateRps = 50.0;
    catalog[2].sloSec = frameDeadlineSec(20.0);

    std::cout << "Catalog:\n";
    for (const ServedModel& sm : catalog)
        std::cout << "  " << sm.model.name << ": batch<="
                  << sm.model.batch << ", SLO " << sm.sloSec
                  << " s\n";

    // 3 s of traffic: BERT jobs as bursts of a full batch (long
    // dispatches), XR frames as Poisson streams.
    const double kDurationSec = 3.0;
    std::vector<std::pair<double, int>> arrivals;
    Rng rng(/*seed=*/11);
    for (double t = 0.0;;) {
        t += -std::log(1.0 - rng.uniform()) / 4.0; // 4 jobs/s
        if (t >= kDurationSec)
            break;
        for (int i = 0; i < catalog[0].model.batch; ++i)
            arrivals.push_back({t, 0});
    }
    for (std::size_t m = 1; m < catalog.size(); ++m) {
        for (double t = 0.0;;) {
            t += -std::log(1.0 - rng.uniform()) / catalog[m].rateRps;
            if (t >= kDurationSec)
                break;
            arrivals.push_back({t, static_cast<int>(m)});
        }
    }
    std::sort(arrivals.begin(), arrivals.end());
    const std::vector<Request> trace =
        traceFromArrivals(catalog, std::move(arrivals));

    for (const bool enabled : {false, true}) {
        FleetOptions options;
        options.shards = 1;
        options.serving.modeledSolveSec = 0.005;
        options.serving.switchOverheadSec = 0.001;
        options.serving.admission.maxQueueDelaySec = 0.01;
        options.serving.preemption.enabled = enabled;
        options.serving.preemption.slackThresholdSec = 0.03;
        options.serving.preemption.resumeOverheadSec = 0.001;
        FleetSimulator fleet(catalog, templates::hetSides3x3(),
                             options);
        const ServingReport report = fleet.run(trace);

        std::cout << "\n=== Preemption "
                  << (enabled ? "ON (slack threshold 30 ms)" : "OFF")
                  << " ===\n"
                  << describeServingReport(report);
    }
    std::cout << "\nThe XR frames that waited out full BERT replays "
                 "in the OFF run board\nat the next window boundary "
                 "in the ON run; the suspended BERT batches\nresume "
                 "from their cursor and still meet their 500 ms "
                 "SLO.\n";
    return 0;
}
