/**
 * @file
 * Command-line driver matching the paper's framework interface
 * (Figure 4): takes a multi-model workload description file and an
 * MCM specification file, runs the requested search, and reports the
 * optimized schedule with its expected metrics.
 *
 * Usage:
 *   scar_cli --workload configs/workload_datacenter.cfg \
 *            --mcm configs/mcm_het_sides.cfg \
 *            [--target latency|energy|edp] [--nsplits N] [--evo]
 */

#include <cstring>
#include <iostream>

#include "eval/reporter.h"
#include "io/config.h"
#include "sched/scar.h"

namespace
{

void
usage(const char* argv0)
{
    std::cerr << "usage: " << argv0
              << " --workload FILE --mcm FILE [--target "
                 "latency|energy|edp] [--nsplits N] [--evo]\n";
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace scar;

    std::string workloadPath;
    std::string mcmPath;
    ScarOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto nextValue = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            workloadPath = nextValue();
        } else if (arg == "--mcm") {
            mcmPath = nextValue();
        } else if (arg == "--target") {
            const std::string target = nextValue();
            if (target == "latency") {
                options.target = OptTarget::Latency;
            } else if (target == "energy") {
                options.target = OptTarget::Energy;
            } else if (target == "edp") {
                options.target = OptTarget::Edp;
            } else {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--nsplits") {
            options.nsplits = std::atoi(nextValue());
        } else if (arg == "--evo") {
            options.mode = SearchMode::Evolutionary;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (workloadPath.empty() || mcmPath.empty()) {
        usage(argv[0]);
        return 2;
    }

    try {
        const Scenario scenario = io::loadScenario(workloadPath);
        const Mcm mcm = io::loadMcm(mcmPath);
        Scar scar(scenario, mcm, options);
        const ScheduleResult result = scar.run();
        std::cout << describeSchedule(scenario, mcm, result) << "\n";
        std::cout << describeWindowBreakdown(scenario, result);
        return 0;
    } catch (const FatalError& e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
