/**
 * @file
 * Quickstart: schedule a two-model workload on a heterogeneous 3x3
 * MCM with SCAR and compare against the standalone baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "arch/mcm_templates.h"
#include "baselines/standalone.h"
#include "eval/reporter.h"
#include "sched/scar.h"
#include "workload/model_zoo.h"

int
main()
{
    using namespace scar;

    // 1. Describe the multi-model workload: an image classifier and a
    //    language model deployed together (batch sizes per model).
    Scenario scenario;
    scenario.name = "quickstart";
    scenario.models = {zoo::resNet50(/*batch=*/4),
                       zoo::bertBase(/*batch=*/2)};
    scenario.finalize();

    // 2. Describe the hardware: a 3x3 heterogeneous MCM with NVDLA-like
    //    side columns and a Shi-diannao-like middle column.
    const Mcm mcm = templates::hetSides3x3();

    // 3. Run the SCAR EDP search (defaults: nsplits=4, greedy packing,
    //    rule-based provisioning, brute-force SEG recombination).
    ScarOptions options;
    options.target = OptTarget::Edp;
    Scar scar(scenario, mcm, options);
    const ScheduleResult result = scar.run();

    std::cout << describeSchedule(scenario, mcm, result) << "\n";
    std::cout << describeWindowBreakdown(scenario, result) << "\n";

    // 4. Compare with the standalone baseline on a homogeneous MCM.
    const Mcm nvdla = templates::simba3x3(Dataflow::NvdlaWS);
    const ScheduleResult standalone = scheduleStandalone(scenario, nvdla);

    std::cout << "SCAR (Het-Sides):        EDP "
              << result.metrics.edp() << " J*s\n";
    std::cout << "Standalone (NVD):        EDP "
              << standalone.metrics.edp() << " J*s\n";
    std::cout << "EDP ratio (SCAR/stand.): "
              << result.metrics.edp() / standalone.metrics.edp() << "\n";
    return 0;
}
