/**
 * @file
 * Fleet serving example: the Table III Sc4 datacenter traffic served
 * on a fleet of four Het-Sides 3x3 packages with asynchronous
 * schedule solves.
 *
 * Demonstrates the multi-MCM runtime: one admission front-end batches
 * the stream, dispatches route across the shards (compare the three
 * routing policies), schedule misses solve in the background on the
 * worker pool while the shards keep replaying, and the report shows
 * per-shard utilization plus the modeled solve-stall and
 * weight-restaging overheads.
 */

#include <iostream>

#include "arch/mcm_templates.h"
#include "eval/reporter.h"
#include "eval/scenario_suite.h"
#include "runtime/fleet.h"

int
main()
{
    using namespace scar;
    using namespace scar::runtime;

    const Scenario sc4 = suite::datacenterScenario(4);

    // Scale the single-package example's traffic to a fleet: ~600
    // req/s offered against four packages whose single-package mix
    // ceiling is ~230 req/s.
    const std::vector<double> ratesRps = {72.0, 220.0, 10.0, 300.0};
    const std::vector<double> slosSec = {2.5, 1.5, 2.0, 1.0};

    std::vector<ServedModel> catalog;
    for (std::size_t m = 0; m < sc4.models.size(); ++m) {
        ServedModel sm;
        sm.model = sc4.models[m];
        sm.rateRps = ratesRps[m];
        sm.sloSec = slosSec[m];
        catalog.push_back(std::move(sm));
    }

    std::cout << "Catalog (" << catalog.size() << " models):\n";
    for (const ServedModel& sm : catalog)
        std::cout << "  " << sm.model.name << ": batch<="
                  << sm.model.batch << ", " << sm.rateRps
                  << " req/s, SLO " << sm.sloSec << " s\n";

    const int kRequests = 20000;
    const std::vector<Request> trace =
        poissonTrace(catalog, kRequests, /*seed=*/2024);

    for (const RoutingPolicy routing :
         {RoutingPolicy::RoundRobin, RoutingPolicy::LeastLoaded,
          RoutingPolicy::MixAffinity}) {
        FleetOptions options;
        options.shards = 4;
        options.routing = routing;
        options.serving.admission.maxQueueDelaySec = 0.1;
        // Model the costs a real controller would pay: schedule
        // searches take host time, and switching a package to a new
        // mix re-stages weights.
        options.serving.modeledSolveSec = 0.02;
        options.serving.switchOverheadSec = 0.002;

        std::cout << "\n=== " << kRequests
                  << " Poisson requests, 4x Het-Sides 3x3, routing: "
                  << routingPolicyName(routing) << " ===\n\n";
        FleetSimulator fleet(catalog, templates::hetSides3x3(),
                             options);
        const ServingReport report = fleet.run(trace);
        std::cout << describeServingReport(report) << "\n";

        if (report.completed != report.offered) {
            std::cerr << "unexpected: fleet dropped requests\n";
            return 1;
        }
    }
    return 0;
}
