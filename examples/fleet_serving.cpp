/**
 * @file
 * Fleet serving example: the Table III Sc4 datacenter traffic served
 * on a fleet of four Het-Sides 3x3 packages with asynchronous
 * schedule solves.
 *
 * Demonstrates the multi-MCM runtime: one admission front-end batches
 * the stream, dispatches route across the shards (compare the three
 * routing policies), schedule misses solve in the background on the
 * worker pool while the shards keep replaying, and the report shows
 * per-shard utilization plus the modeled solve-stall and
 * weight-restaging overheads.
 *
 * Observability knobs (all off by default):
 *  - SCAR_FLEET_REQUESTS=N shrinks/grows the trace (CI uses ~2000)
 *  - SCAR_TRACE=1 adds a preemptive LeastLoaded run recorded by a
 *    flight recorder; trace.json/metrics/samples land in SCAR_TRACE_DIR
 *    (default obs/) for Perfetto and scripts/trace_summary.py
 *  - SCAR_PROFILE=1 appends a profiled standalone SCAR solve of the
 *    Sc4 scenario and prints the per-phase/cache-efficacy summary
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "arch/mcm_templates.h"
#include "eval/reporter.h"
#include "eval/scenario_suite.h"
#include "obs/flight_recorder.h"
#include "runtime/fleet.h"
#include "sched/scar.h"

namespace
{

/** Positive-integer env override with a fallback. */
int
envInt(const char* name, int fallback)
{
    const char* raw = std::getenv(name);
    if (!raw || !*raw)
        return fallback;
    const int value = std::atoi(raw);
    return value > 0 ? value : fallback;
}

/** True when `name` is set to anything but "" or "0". */
bool
envFlag(const char* name)
{
    const char* raw = std::getenv(name);
    return raw && *raw && std::string(raw) != "0";
}

} // namespace

int
main()
{
    using namespace scar;
    using namespace scar::runtime;

    const Scenario sc4 = suite::datacenterScenario(4);

    // Scale the single-package example's traffic to a fleet: ~600
    // req/s offered against four packages whose single-package mix
    // ceiling is ~230 req/s.
    const std::vector<double> ratesRps = {72.0, 220.0, 10.0, 300.0};
    const std::vector<double> slosSec = {2.5, 1.5, 2.0, 1.0};

    std::vector<ServedModel> catalog;
    for (std::size_t m = 0; m < sc4.models.size(); ++m) {
        ServedModel sm;
        sm.model = sc4.models[m];
        sm.rateRps = ratesRps[m];
        sm.sloSec = slosSec[m];
        catalog.push_back(std::move(sm));
    }

    std::cout << "Catalog (" << catalog.size() << " models):\n";
    for (const ServedModel& sm : catalog)
        std::cout << "  " << sm.model.name << ": batch<="
                  << sm.model.batch << ", " << sm.rateRps
                  << " req/s, SLO " << sm.sloSec << " s\n";

    const int kRequests = envInt("SCAR_FLEET_REQUESTS", 20000);
    const std::vector<Request> trace =
        poissonTrace(catalog, kRequests, /*seed=*/2024);

    for (const RoutingPolicy routing :
         {RoutingPolicy::RoundRobin, RoutingPolicy::LeastLoaded,
          RoutingPolicy::MixAffinity}) {
        FleetOptions options;
        options.shards = 4;
        options.routing = routing;
        options.serving.admission.maxQueueDelaySec = 0.1;
        // Model the costs a real controller would pay: schedule
        // searches take host time, and switching a package to a new
        // mix re-stages weights.
        options.serving.modeledSolveSec = 0.02;
        options.serving.switchOverheadSec = 0.002;

        std::cout << "\n=== " << kRequests
                  << " Poisson requests, 4x Het-Sides 3x3, routing: "
                  << routingPolicyName(routing) << " ===\n\n";
        FleetSimulator fleet(catalog, templates::hetSides3x3(),
                             options);
        const ServingReport report = fleet.run(trace);
        std::cout << describeServingReport(report) << "\n";

        if (report.completed != report.offered) {
            std::cerr << "unexpected: fleet dropped requests\n";
            return 1;
        }
    }

    // SCAR_TRACE=1: rerun LeastLoaded with boundary preemption and a
    // flight recorder attached, then export the trace bundle. The
    // trace is a pure function of virtual time, so it is byte-
    // identical at any SCAR_THREADS setting (CI cmp's two runs).
    if (auto rec = obs::FlightRecorder::fromEnv()) {
        FleetOptions options;
        // Two shards instead of four: the ~600 req/s offered load now
        // exceeds the fleet ceiling, so queues build, slack shrinks,
        // and the trace exercises suspend/resume.
        options.shards = 2;
        options.routing = RoutingPolicy::LeastLoaded;
        options.serving.admission.maxQueueDelaySec = 0.1;
        options.serving.modeledSolveSec = 0.02;
        options.serving.switchOverheadSec = 0.002;
        options.serving.preemption.enabled = true;
        options.serving.preemption.slackThresholdSec = 0.5;
        options.serving.preemption.resumeOverheadSec = 0.005;
        options.recorder = rec.get();

        std::cout << "\n=== traced run: " << kRequests
                  << " requests, 2 shards, LeastLoaded + preemption"
                  << " ===\n\n";
        FleetSimulator fleet(catalog, templates::hetSides3x3(),
                             options);
        const ServingReport report = fleet.run(trace);
        std::cout << describeServingReport(report) << "\n";
        if (!rec->writeAll()) {
            std::cerr << "failed to write trace bundle to "
                      << rec->options().outDir << "\n";
            return 1;
        }
        std::cout << "trace bundle written to "
                  << rec->options().outDir << "/ ("
                  << rec->trace().virtualSize() << " virtual events)\n";
    }

    // SCAR_PROFILE=1: profile one standalone SCAR solve of the same
    // scenario — per-phase wall time plus cache efficacy.
    if (envFlag("SCAR_PROFILE")) {
        obs::SolveProfile profile;
        ScarOptions options;
        options.profile = &profile;
        std::cout << "\n=== profiled solve: " << sc4.name
                  << " on Het-Sides 3x3 ===\n\n";
        Scar scar(sc4, templates::hetSides3x3(), options);
        scar.run();
        std::cout << profile.summary() << "\n";
    }
    return 0;
}
