/**
 * @file
 * AR/VR real-time example (paper Table III, scenario 6 "AR
 * Assistant"): five concurrent XR models on a 3x3 MCM with small
 * (256-PE) chiplets. Demonstrates:
 *  - the edge chiplet configuration (templates::kArvrPes),
 *  - a user-defined optimization metric (the paper's Discussion
 *    suggests latency-bounded EDP for real-time workloads),
 *  - per-model latency introspection for frame-budget checks.
 */

#include <iostream>

#include "arch/mcm_templates.h"
#include "common/table.h"
#include "common/units.h"
#include "eval/scenario_suite.h"
#include "sched/scar.h"

int
main()
{
    using namespace scar;

    const Scenario scenario = suite::arvrScenario(6); // AR Assistant
    const Mcm mcm = templates::hetSides3x3(templates::kArvrPes);

    // Frame budget for the workload round (e.g. 30 Hz -> 33 ms/frame;
    // the batched workload represents one scheduling round).
    const double latencyBudgetSec = 2.0;

    ScarOptions opts;
    opts.target = OptTarget::Edp;
    // Latency-bounded EDP: schedules above the budget are penalized so
    // the search treats the budget as a soft constraint.
    opts.customScore = [latencyBudgetSec](const Metrics& m) {
        const double penalty =
            m.latencySec > latencyBudgetSec ? 1.0e6 : 1.0;
        return m.edp() * penalty;
    };

    Scar scar(scenario, mcm, opts);
    const ScheduleResult result = scar.run();

    std::cout << "AR Assistant on " << mcm.name() << " ("
              << mcm.chiplet(0).spec.numPes << " PEs/chiplet)\n";
    std::cout << "Round latency: "
              << TextTable::num(result.metrics.latencySec, 4)
              << " s (budget " << latencyBudgetSec << " s, "
              << (result.metrics.latencySec <= latencyBudgetSec
                      ? "met"
                      : "violated")
              << ")\n";
    std::cout << "Energy: " << TextTable::num(result.metrics.energyJ, 4)
              << " J, EDP: " << TextTable::num(result.metrics.edp(), 4)
              << " J*s\n\n";

    // Per-model busy time across windows (idle-wait excluded).
    TextTable table({"Model", "Batch", "Busy time (s)", "Windows"});
    for (int m = 0; m < scenario.numModels(); ++m) {
        double busy = 0.0;
        int windows = 0;
        for (const ScheduledWindow& sw : result.windows) {
            for (std::size_t i = 0; i < sw.placement.models.size();
                 ++i) {
                if (sw.placement.models[i].modelIdx == m) {
                    busy += cyclesToSeconds(
                        sw.cost.perModel[i].latencyCycles);
                    ++windows;
                }
            }
        }
        table.addRow({scenario.models[m].name,
                      std::to_string(scenario.models[m].batch),
                      TextTable::num(busy, 4), std::to_string(windows)});
    }
    std::cout << table.render();
    return 0;
}
