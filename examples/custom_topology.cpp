/**
 * @file
 * Custom-topology example: SCAR generalizes to any connected NoP graph
 * because the scheduling trees follow the adjacency matrix (paper
 * Section V-E). This example builds a 7-chiplet ring-with-chord
 * package from an explicit adjacency list, assigns dataflows by hand,
 * and schedules a two-model workload on it.
 */

#include <iostream>

#include "arch/mcm.h"
#include "common/table.h"
#include "eval/reporter.h"
#include "sched/scar.h"
#include "workload/model_zoo.h"

int
main()
{
    using namespace scar;

    // A 7-node ring with one chord (0-3): node ids 0..6.
    Topology topo = Topology::fromAdjacency({
        {1, 6, 3}, // 0: ring neighbours + chord to 3
        {0, 2},    // 1
        {1, 3},    // 2
        {2, 4, 0}, // 3
        {3, 5},    // 4
        {4, 6},    // 5
        {5, 0},    // 6
    });

    std::vector<Chiplet> chiplets(7);
    for (int id = 0; id < 7; ++id) {
        chiplets[id].id = id;
        chiplets[id].x = id;
        // Alternate dataflows around the ring; nodes 0 and 4 carry the
        // off-chip memory interfaces (the package "sides").
        chiplets[id].spec.dataflow =
            id % 2 == 0 ? Dataflow::NvdlaWS : Dataflow::ShiOS;
        chiplets[id].spec.numPes = 1024;
        chiplets[id].memInterface = (id == 0 || id == 4);
    }
    const Mcm mcm("Ring-7", std::move(chiplets), std::move(topo));

    Scenario scenario;
    scenario.name = "ring-demo";
    scenario.models = {zoo::resNet50(8), zoo::emformer(2)};
    scenario.finalize();

    ScarOptions opts;
    opts.target = OptTarget::Edp;
    opts.nsplits = 2;
    Scar scar(scenario, mcm, opts);
    const ScheduleResult result = scar.run();

    std::cout << "Custom " << mcm.name() << " package: "
              << mcm.numChiplets() << " chiplets, "
              << mcm.numWithDataflow(Dataflow::NvdlaWS) << " NVDLA-like + "
              << mcm.numWithDataflow(Dataflow::ShiOS)
              << " Shi-diannao-like\n\n";
    std::cout << describeSchedule(scenario, mcm, result);

    // Show that routing follows the custom adjacency: the chord makes
    // 0 -> 3 a single hop instead of three.
    std::cout << "\nNoP hops 0->3 (via chord): "
              << mcm.topology().hops(0, 3) << ", 1->4: "
              << mcm.topology().hops(1, 4) << "\n";
    return 0;
}
