#include "workload/transformer_builder.h"

#include "common/error.h"

namespace scar
{

Model
buildTransformer(const TransformerConfig& config)
{
    SCAR_REQUIRE(config.numBlocks >= 1, "transformer needs >= 1 block");
    SCAR_REQUIRE(config.seqLen >= 1 && config.dModel >= 1 && config.dFf >= 1,
                 "transformer dims must be positive");

    Model model;
    model.name = config.name;
    model.batch = config.batch;

    const std::int64_t sl = config.seqLen;
    const std::int64_t d = config.dModel;
    const std::int64_t ff = config.dFf;
    int id = 0;

    auto gemm = [&](const std::string& name, std::int64_t m, std::int64_t n,
                    std::int64_t kRed) {
        model.layers.push_back(makeGemmLayer(id++, name, m, n, kRed));
    };

    if (config.vocab > 0) {
        // Token embedding lookup; modeled as a thin per-token gather
        // GEMM (reduction 1) so it contributes its output traffic.
        gemm("embed", sl, d, 1);
    }

    for (int b = 0; b < config.numBlocks; ++b) {
        const std::string tag = "blk" + std::to_string(b) + ".";
        if (config.granularity == TransformerGranularity::Coarse) {
            // Fused MHA: MACs = sl*d*(4d) [QKV+out proj] + 2*sl^2*d
            // [scores + context] == GEMM(M=sl, N=4d+2sl, K=d).
            gemm(tag + "mha", sl, 4 * d + 2 * sl, d);
        } else {
            gemm(tag + "qkv", sl, 3 * d, d);
            // Fused attention scores (sl x sl x d) + context
            // (sl x d x sl): equals GEMM(M=sl, N=2sl, K=d) in MACs.
            gemm(tag + "attn", sl, 2 * sl, d);
            gemm(tag + "proj", sl, d, d);
        }
        gemm(tag + "ffn1", sl, ff, d);
        gemm(tag + "ffn2", sl, d, ff);
    }

    if (config.vocab > 0) {
        gemm("lm_head", sl, config.vocab, d);
    }

    model.finalize();
    return model;
}

Model
buildPrefillModel(const TransformerConfig& config, std::int64_t promptLen)
{
    SCAR_REQUIRE(promptLen >= 1, "prefill needs >= 1 prompt token");
    TransformerConfig prefill = config;
    prefill.seqLen = promptLen;
    prefill.name = config.name + ".prefill" + std::to_string(promptLen);
    return buildTransformer(prefill);
}

Model
buildDecodeStepModel(const TransformerConfig& config, std::int64_t contextLen)
{
    SCAR_REQUIRE(config.numBlocks >= 1, "transformer needs >= 1 block");
    SCAR_REQUIRE(contextLen >= 1 && config.dModel >= 1 && config.dFf >= 1,
                 "decode-step dims must be positive");

    Model model;
    model.name = config.name + ".decode" + std::to_string(contextLen);
    model.batch = config.batch;

    const std::int64_t ctx = contextLen;
    const std::int64_t d = config.dModel;
    const std::int64_t ff = config.dFf;
    int id = 0;

    auto gemm = [&](const std::string& name, std::int64_t m, std::int64_t n,
                    std::int64_t kRed) {
        model.layers.push_back(makeGemmLayer(id++, name, m, n, kRed));
    };

    if (config.vocab > 0) {
        gemm("embed", 1, d, 1);
    }

    for (int b = 0; b < config.numBlocks; ++b) {
        const std::string tag = "blk" + std::to_string(b) + ".";
        if (config.granularity == TransformerGranularity::Coarse) {
            // Fused MHA for one new token: MACs = d*(4d) [QKV+out
            // proj] + 2*ctx*d [score row + context over the KV cache]
            // == GEMM(M=1, N=4d+2ctx, K=d). The GEMM's weight side
            // (N*K elements) carries the 2*ctx*d KV-cache entries, so
            // the priced footprint grows with generated length.
            gemm(tag + "mha", 1, 4 * d + 2 * ctx, d);
        } else {
            gemm(tag + "qkv", 1, 3 * d, d);
            gemm(tag + "attn", 1, 2 * ctx, d);
            gemm(tag + "proj", 1, d, d);
        }
        gemm(tag + "ffn1", 1, ff, d);
        gemm(tag + "ffn2", 1, d, ff);
    }

    if (config.vocab > 0) {
        gemm("lm_head", 1, config.vocab, d);
    }

    model.finalize();
    return model;
}

std::int64_t
llmLengthBucket(std::int64_t len, std::int64_t bucket)
{
    SCAR_REQUIRE(bucket >= 1, "length bucket must be positive");
    if (len <= bucket)
        return bucket;
    return ((len + bucket - 1) / bucket) * bucket;
}

} // namespace scar
