/**
 * @file
 * Model zoo: programmatic layer-level definitions of every model used
 * by the paper's workload scenarios (Table III).
 *
 * Datacenter suite (MLPerf-derived): GPT-L, BERT-Large, BERT-Base,
 * ResNet-50, U-Net, GoogleNet.
 *
 * AR/VR suite (XRBench-derived): D2GO, PlaneRCNN, MiDaS, Emformer,
 * HRViT, Hand Shape/Pose, EyeCod, Sparse-to-Dense.
 *
 * The transformers and standard CNNs follow their published
 * architectures. The XRBench models have no layer tables in the paper;
 * they are documented proxies matching each model's published depth,
 * channel progression and compute balance (see DESIGN.md §2) — the
 * scheduler consumes only per-layer tensor shapes, so this preserves
 * the scheduling-relevant behaviour.
 */

#ifndef SCAR_WORKLOAD_MODEL_ZOO_H
#define SCAR_WORKLOAD_MODEL_ZOO_H

#include <cstdint>

#include "workload/model.h"

namespace scar
{
namespace zoo
{

/** GPT-2 Large: 36 blocks, d=1280, ff=5120, with embedding + LM head. */
Model gptL(int batch, std::int64_t seqLen = 128);

/** BERT-Large encoder: 24 blocks, d=1024, ff=4096. */
Model bertLarge(int batch, std::int64_t seqLen = 128);

/** BERT-Base encoder: 12 blocks, d=768, ff=3072. */
Model bertBase(int batch, std::int64_t seqLen = 128);

/** ResNet-50 at 224x224x3 (stem + 16 bottlenecks + fc). */
Model resNet50(int batch);

/** U-Net at 512x512x1 (23 convolutions + pools, classic config). */
Model uNet(int batch);

/** GoogleNet (Inception-v1) at 224x224x3, branches flattened. */
Model googleNet(int batch);

/** D2GO mobile object detector: FBNet-style backbone + SSD-ish head. */
Model d2go(int batch);

/** PlaneRCNN plane detector: ResNet-50-FPN backbone + RCNN heads. */
Model planeRcnn(int batch);

/** MiDaS monocular depth: ResNet-50 encoder + refinement decoder. */
Model midas(int batch);

/** Emformer streaming speech recognizer: 20-block transformer. */
Model emformer(int batch);

/** HRViT-b1 semantic segmentation: conv stem + multi-scale ViT blocks. */
Model hrvit(int batch);

/** Hand shape & pose tracker: hourglass-style CNN at 256x256. */
Model handSP(int batch);

/** EyeCod gaze estimator: compact CNN on 128x128 eye crops. */
Model eyeCod(int batch);

/** Sparse-to-dense depth refinement: ResNet-18-style encoder-decoder. */
Model sp2Dense(int batch);

} // namespace zoo
} // namespace scar

#endif // SCAR_WORKLOAD_MODEL_ZOO_H
