/**
 * @file
 * Fluent builder for CNN layer sequences.
 *
 * Tracks the live feature-map shape (channels x height x width) so
 * model-zoo constructors read like the original network definitions.
 */

#ifndef SCAR_WORKLOAD_CNN_BUILDER_H
#define SCAR_WORKLOAD_CNN_BUILDER_H

#include <cstdint>
#include <string>

#include "workload/model.h"

namespace scar
{

/** Builds a Model by appending CNN operators to a tracked tensor shape. */
class CnnBuilder
{
  public:
    /**
     * Starts a network from an input tensor.
     * @param name model name
     * @param batch batch size carried by the model
     * @param channels input channels
     * @param height input height
     * @param width input width
     */
    CnnBuilder(std::string name, int batch, std::int64_t channels,
               std::int64_t height, std::int64_t width);

    /** Appends a dense convolution; updates the tracked shape. */
    CnnBuilder& conv(const std::string& name, std::int64_t k,
                     std::int64_t r, std::int64_t s, std::int64_t stride = 1);

    /** Appends a depthwise convolution (channels preserved). */
    CnnBuilder& dwConv(const std::string& name, std::int64_t r,
                       std::int64_t s, std::int64_t stride = 1);

    /** Appends a pooling layer (channels preserved). */
    CnnBuilder& pool(const std::string& name, std::int64_t window,
                     std::int64_t stride);

    /** Appends a global average pool collapsing spatial dims to 1x1. */
    CnnBuilder& globalPool(const std::string& name);

    /** Appends an elementwise op (e.g. residual add) on current shape. */
    CnnBuilder& eltwise(const std::string& name);

    /** Appends a fully connected layer (GEMM with M=1). */
    CnnBuilder& fc(const std::string& name, std::int64_t outFeatures);

    /**
     * Appends a transposed-convolution upsample: doubles spatial dims
     * by `factor` then convolves to k channels. Modeled as a conv at
     * the upsampled resolution, which matches its MAC count.
     */
    CnnBuilder& upConv(const std::string& name, std::int64_t k,
                       std::int64_t factor = 2);

    /**
     * Overrides the tracked channel count without adding a layer.
     * Used when flattening branchy graphs (concatenations) where the
     * next layer consumes more channels than the last branch produced.
     */
    CnnBuilder& setChannels(std::int64_t channels);

    /** Current tracked channels. */
    std::int64_t channels() const { return c_; }
    /** Current tracked height. */
    std::int64_t height() const { return y_; }
    /** Current tracked width. */
    std::int64_t width() const { return x_; }

    /** Finalizes ids/validation and returns the model. */
    Model build();

  private:
    void push(Layer layer);

    Model model_;
    std::int64_t c_;
    std::int64_t y_;
    std::int64_t x_;
};

} // namespace scar

#endif // SCAR_WORKLOAD_CNN_BUILDER_H
