#include "workload/layer.h"

#include "common/error.h"
#include "common/units.h"

namespace scar
{

const char*
opTypeName(OpType type)
{
    switch (type) {
      case OpType::Conv2D:        return "conv";
      case OpType::DepthwiseConv: return "dwconv";
      case OpType::Gemm:          return "gemm";
      case OpType::Pool:          return "pool";
      case OpType::Elementwise:   return "eltwise";
    }
    return "?";
}

std::int64_t
Layer::outY() const
{
    return (dims.y + dims.strideY - 1) / dims.strideY;
}

std::int64_t
Layer::outX() const
{
    return (dims.x + dims.strideX - 1) / dims.strideX;
}

double
Layer::macs() const
{
    const double spatial = static_cast<double>(outY()) * outX();
    const double window = static_cast<double>(dims.r) * dims.s;
    switch (type) {
      case OpType::Conv2D:
      case OpType::Gemm:
        return static_cast<double>(dims.k) * dims.c * window * spatial;
      case OpType::DepthwiseConv:
        return static_cast<double>(dims.k) * window * spatial;
      case OpType::Pool:
        // Comparisons/adds; charged like MACs (small contribution).
        return static_cast<double>(dims.k) * window * spatial;
      case OpType::Elementwise:
        return static_cast<double>(dims.k) * spatial;
    }
    return 0.0;
}

double
Layer::weightElems() const
{
    switch (type) {
      case OpType::Conv2D:
      case OpType::Gemm:
        return static_cast<double>(dims.k) * dims.c * dims.r * dims.s;
      case OpType::DepthwiseConv:
        return static_cast<double>(dims.k) * dims.r * dims.s;
      case OpType::Pool:
      case OpType::Elementwise:
        return 0.0;
    }
    return 0.0;
}

double
Layer::inputElems() const
{
    const double plane = static_cast<double>(dims.y) * dims.x;
    if (type == OpType::Elementwise) {
        // Two operands of identical shape (e.g. residual add).
        return 2.0 * dims.k * plane;
    }
    return static_cast<double>(dims.c) * plane;
}

double
Layer::outputElems() const
{
    return static_cast<double>(dims.k) * outY() * outX();
}

double
Layer::weightBytes() const
{
    return weightElems() * kBytesPerElement;
}

double
Layer::inputBytes() const
{
    return inputElems() * kBytesPerElement;
}

double
Layer::outputBytes() const
{
    return outputElems() * kBytesPerElement;
}

void
Layer::validate() const
{
    SCAR_REQUIRE(dims.k >= 1 && dims.c >= 1, "layer ", name,
                 ": channel dims must be positive");
    SCAR_REQUIRE(dims.r >= 1 && dims.s >= 1 && dims.y >= 1 && dims.x >= 1,
                 "layer ", name, ": spatial dims must be positive");
    SCAR_REQUIRE(dims.strideY >= 1 && dims.strideX >= 1, "layer ", name,
                 ": strides must be positive");
    if (type == OpType::DepthwiseConv || type == OpType::Pool) {
        SCAR_REQUIRE(dims.k == dims.c, "layer ", name,
                     ": per-channel op needs k == c");
    }
}

Layer
makeGemmLayer(int id, const std::string& name, std::int64_t m,
              std::int64_t n, std::int64_t kRed)
{
    Layer layer;
    layer.id = id;
    layer.name = name;
    layer.type = OpType::Gemm;
    layer.dims = LayerDims{n, kRed, 1, 1, m, 1, 1, 1};
    layer.validate();
    return layer;
}

} // namespace scar
