#include "workload/model.h"

#include "common/error.h"

namespace scar
{

double
Model::totalMacs() const
{
    double total = 0.0;
    for (const Layer& layer : layers)
        total += layer.macs();
    return total;
}

double
Model::totalWeightBytes() const
{
    double total = 0.0;
    for (const Layer& layer : layers)
        total += layer.weightBytes();
    return total;
}

void
Model::finalize()
{
    SCAR_REQUIRE(!layers.empty(), "model ", name, " has no layers");
    SCAR_REQUIRE(batch >= 1, "model ", name, " has batch ", batch);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        layers[i].id = static_cast<int>(i);
        layers[i].validate();
    }
}

} // namespace scar
