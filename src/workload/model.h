/**
 * @file
 * A model is an ordered (topologically sorted) sequence of layers plus
 * a batch size (paper Table III pairs every model with a batch size).
 *
 * Layer dependencies within a model are linear in this representation:
 * layer j consumes layer j-1's output. Branchy graphs (inception
 * modules, U-Net skips) are flattened in topological order; the
 * scheduler only requires a valid topological sequence (Section IV-C
 * segments "topologically sorted model layers").
 */

#ifndef SCAR_WORKLOAD_MODEL_H
#define SCAR_WORKLOAD_MODEL_H

#include <string>
#include <vector>

#include "workload/layer.h"

namespace scar
{

/** One DNN workload: named layer sequence with a batch size. */
struct Model
{
    std::string name;
    int batch = 1;
    std::vector<Layer> layers;

    /** Number of layers. */
    int numLayers() const { return static_cast<int>(layers.size()); }

    /** Total MACs for one sample. */
    double totalMacs() const;

    /** Total weight bytes across all layers. */
    double totalWeightBytes() const;

    /** Re-assigns layer ids to 0..n-1 and validates every layer. */
    void finalize();
};

/** Contiguous [first, last] (inclusive) range of layer indices. */
struct LayerRange
{
    int first = 0;
    int last = -1; ///< inclusive; last < first encodes an empty range

    bool empty() const { return last < first; }
    int size() const { return empty() ? 0 : last - first + 1; }

    bool
    operator==(const LayerRange& other) const
    {
        return first == other.first && last == other.last;
    }
};

} // namespace scar

#endif // SCAR_WORKLOAD_MODEL_H
