/**
 * @file
 * Multi-model workload scenario (paper Definition 1): the collection of
 * all layers from the models deployed together.
 */

#ifndef SCAR_WORKLOAD_SCENARIO_H
#define SCAR_WORKLOAD_SCENARIO_H

#include <string>
#include <vector>

#include "workload/model.h"

namespace scar
{

/** A named set of concurrently deployed models. */
struct Scenario
{
    std::string name;
    std::vector<Model> models;

    /** Number of models |Sc|. */
    int numModels() const { return static_cast<int>(models.size()); }

    /** Total layer count L across all models. */
    int totalLayers() const;

    /** Validates all member models. */
    void finalize();
};

} // namespace scar

#endif // SCAR_WORKLOAD_SCENARIO_H
