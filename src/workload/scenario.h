/**
 * @file
 * Multi-model workload scenario (paper Definition 1): the collection of
 * all layers from the models deployed together.
 */

#ifndef SCAR_WORKLOAD_SCENARIO_H
#define SCAR_WORKLOAD_SCENARIO_H

#include <string>
#include <vector>

#include "workload/model.h"

namespace scar
{

/** A named set of concurrently deployed models. */
struct Scenario
{
    std::string name;
    std::vector<Model> models;

    /** Number of models |Sc|. */
    int numModels() const { return static_cast<int>(models.size()); }

    /** Total layer count L across all models. */
    int totalLayers() const;

    /**
     * Canonical signature of the model mix: the sorted
     * "name#layers=batch" triples joined with '+'. Two scenarios with
     * the same models at the same batch sizes produce the same
     * signature regardless of model order, so the signature can key
     * caches of scheduling results (the schedule search depends only
     * on the mix, not on its listing order or the scenario's display
     * name). Distinct models must carry distinct names — the serving
     * runtime enforces that for its catalog.
     */
    std::string signature() const;

    /** Validates all member models. */
    void finalize();
};

} // namespace scar

#endif // SCAR_WORKLOAD_SCENARIO_H
