#include "workload/scenario.h"

#include <algorithm>

#include "common/error.h"

namespace scar
{

int
Scenario::totalLayers() const
{
    int total = 0;
    for (const Model& model : models)
        total += model.numLayers();
    return total;
}

std::string
Scenario::signature() const
{
    std::vector<std::string> parts;
    parts.reserve(models.size());
    for (const Model& model : models)
        parts.push_back(model.name + "#" +
                        std::to_string(model.numLayers()) + "=" +
                        std::to_string(model.batch));
    std::sort(parts.begin(), parts.end());
    std::string sig;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            sig += '+';
        sig += parts[i];
    }
    return sig;
}

void
Scenario::finalize()
{
    SCAR_REQUIRE(!models.empty(), "scenario ", name, " has no models");
    for (Model& model : models)
        model.finalize();
}

} // namespace scar
