#include "workload/scenario.h"

#include "common/error.h"

namespace scar
{

int
Scenario::totalLayers() const
{
    int total = 0;
    for (const Model& model : models)
        total += model.numLayers();
    return total;
}

void
Scenario::finalize()
{
    SCAR_REQUIRE(!models.empty(), "scenario ", name, " has no models");
    for (Model& model : models)
        model.finalize();
}

} // namespace scar
