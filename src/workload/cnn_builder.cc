#include "workload/cnn_builder.h"

#include "common/error.h"

namespace scar
{

CnnBuilder::CnnBuilder(std::string name, int batch, std::int64_t channels,
                       std::int64_t height, std::int64_t width)
    : c_(channels), y_(height), x_(width)
{
    SCAR_REQUIRE(channels >= 1 && height >= 1 && width >= 1,
                 "CNN input shape must be positive");
    model_.name = std::move(name);
    model_.batch = batch;
}

void
CnnBuilder::push(Layer layer)
{
    layer.id = model_.numLayers();
    layer.validate();
    model_.layers.push_back(std::move(layer));
}

CnnBuilder&
CnnBuilder::conv(const std::string& name, std::int64_t k, std::int64_t r,
                 std::int64_t s, std::int64_t stride)
{
    Layer layer;
    layer.name = name;
    layer.type = OpType::Conv2D;
    layer.dims = LayerDims{k, c_, r, s, y_, x_, stride, stride};
    push(layer);
    c_ = k;
    y_ = model_.layers.back().outY();
    x_ = model_.layers.back().outX();
    return *this;
}

CnnBuilder&
CnnBuilder::dwConv(const std::string& name, std::int64_t r, std::int64_t s,
                   std::int64_t stride)
{
    Layer layer;
    layer.name = name;
    layer.type = OpType::DepthwiseConv;
    layer.dims = LayerDims{c_, c_, r, s, y_, x_, stride, stride};
    push(layer);
    y_ = model_.layers.back().outY();
    x_ = model_.layers.back().outX();
    return *this;
}

CnnBuilder&
CnnBuilder::pool(const std::string& name, std::int64_t window,
                 std::int64_t stride)
{
    Layer layer;
    layer.name = name;
    layer.type = OpType::Pool;
    layer.dims = LayerDims{c_, c_, window, window, y_, x_, stride, stride};
    push(layer);
    y_ = model_.layers.back().outY();
    x_ = model_.layers.back().outX();
    return *this;
}

CnnBuilder&
CnnBuilder::globalPool(const std::string& name)
{
    Layer layer;
    layer.name = name;
    layer.type = OpType::Pool;
    layer.dims = LayerDims{c_, c_, y_, x_, y_, x_, y_, x_};
    push(layer);
    y_ = 1;
    x_ = 1;
    return *this;
}

CnnBuilder&
CnnBuilder::eltwise(const std::string& name)
{
    Layer layer;
    layer.name = name;
    layer.type = OpType::Elementwise;
    layer.dims = LayerDims{c_, c_, 1, 1, y_, x_, 1, 1};
    push(layer);
    return *this;
}

CnnBuilder&
CnnBuilder::fc(const std::string& name, std::int64_t outFeatures)
{
    const std::int64_t inFeatures = c_ * y_ * x_;
    push(makeGemmLayer(model_.numLayers(), name, 1, outFeatures,
                       inFeatures));
    c_ = outFeatures;
    y_ = 1;
    x_ = 1;
    return *this;
}

CnnBuilder&
CnnBuilder::upConv(const std::string& name, std::int64_t k,
                   std::int64_t factor)
{
    SCAR_REQUIRE(factor >= 1, "upConv factor must be >= 1");
    y_ *= factor;
    x_ *= factor;
    return conv(name, k, factor, factor, 1);
}

CnnBuilder&
CnnBuilder::setChannels(std::int64_t channels)
{
    SCAR_REQUIRE(channels >= 1, "channel override must be positive");
    c_ = channels;
    return *this;
}

Model
CnnBuilder::build()
{
    model_.finalize();
    return model_;
}

} // namespace scar
