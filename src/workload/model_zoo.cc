#include "workload/model_zoo.h"

#include "workload/cnn_builder.h"
#include "workload/transformer_builder.h"

namespace scar
{
namespace zoo
{

namespace
{

/**
 * Appends one ResNet bottleneck block (1x1 -> 3x3 -> 1x1 + add).
 * @param downsampleStride stride for the 3x3 (and projection) conv;
 *        a projection conv is emitted when the block changes shape.
 */
void
bottleneck(CnnBuilder& b, const std::string& tag, std::int64_t planes,
           std::int64_t stride, bool project)
{
    b.conv(tag + ".conv1", planes, 1, 1, 1);
    b.conv(tag + ".conv2", planes, 3, 3, stride);
    b.conv(tag + ".conv3", planes * 4, 1, 1, 1);
    if (project)
        b.conv(tag + ".proj", planes * 4, 1, 1, 1);
    b.eltwise(tag + ".add");
}

/** Appends one ResNet basic block (3x3 -> 3x3 + add). */
void
basicBlock(CnnBuilder& b, const std::string& tag, std::int64_t planes,
           std::int64_t stride, bool project)
{
    b.conv(tag + ".conv1", planes, 3, 3, stride);
    b.conv(tag + ".conv2", planes, 3, 3, 1);
    if (project)
        b.conv(tag + ".proj", planes, 1, 1, 1);
    b.eltwise(tag + ".add");
}

/** Appends a ResNet-50 backbone (stem + 3,4,6,3 bottleneck stages). */
void
resNet50Backbone(CnnBuilder& b)
{
    b.conv("conv1", 64, 7, 7, 2);
    b.pool("pool1", 3, 2);
    const int stageBlocks[4] = {3, 4, 6, 3};
    const std::int64_t stagePlanes[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        for (int blk = 0; blk < stageBlocks[stage]; ++blk) {
            const std::int64_t stride =
                (stage > 0 && blk == 0) ? 2 : 1;
            const std::string tag = "res" + std::to_string(stage + 2) +
                                    "_" + std::to_string(blk);
            bottleneck(b, tag, stagePlanes[stage], stride, blk == 0);
        }
    }
}

/** Appends one GoogleNet inception module, branches flattened. */
void
inception(CnnBuilder& b, const std::string& tag, std::int64_t c1,
          std::int64_t c3r, std::int64_t c3, std::int64_t c5r,
          std::int64_t c5, std::int64_t cp)
{
    const std::int64_t cIn = b.channels();
    b.conv(tag + ".1x1", c1, 1, 1, 1);
    b.setChannels(cIn).conv(tag + ".3x3r", c3r, 1, 1, 1);
    b.conv(tag + ".3x3", c3, 3, 3, 1);
    b.setChannels(cIn).conv(tag + ".5x5r", c5r, 1, 1, 1);
    b.conv(tag + ".5x5", c5, 5, 5, 1);
    b.setChannels(cIn).conv(tag + ".poolproj", cp, 1, 1, 1);
    b.setChannels(c1 + c3 + c5 + cp); // concat of the four branches
}

/** Appends an inverted-residual (MobileNet-style) block. */
void
invertedResidual(CnnBuilder& b, const std::string& tag, std::int64_t expand,
                 std::int64_t out, std::int64_t stride)
{
    b.conv(tag + ".expand", expand, 1, 1, 1);
    b.dwConv(tag + ".dw", 3, 3, stride);
    b.conv(tag + ".project", out, 1, 1, 1);
}

} // namespace

Model
gptL(int batch, std::int64_t seqLen)
{
    TransformerConfig config;
    config.name = "GPT-L";
    config.batch = batch;
    config.seqLen = seqLen;
    config.dModel = 1280;
    config.dFf = 5120;
    config.numBlocks = 36;
    config.vocab = 50257;
    return buildTransformer(config);
}

Model
bertLarge(int batch, std::int64_t seqLen)
{
    TransformerConfig config;
    config.name = "BERT-L";
    config.batch = batch;
    config.seqLen = seqLen;
    config.dModel = 1024;
    config.dFf = 4096;
    config.numBlocks = 24;
    return buildTransformer(config);
}

Model
bertBase(int batch, std::int64_t seqLen)
{
    TransformerConfig config;
    config.name = "BERT-B";
    config.batch = batch;
    config.seqLen = seqLen;
    config.dModel = 768;
    config.dFf = 3072;
    config.numBlocks = 12;
    return buildTransformer(config);
}

Model
resNet50(int batch)
{
    CnnBuilder b("ResNet-50", batch, 3, 224, 224);
    resNet50Backbone(b);
    b.globalPool("avgpool");
    b.fc("fc", 1000);
    return b.build();
}

Model
uNet(int batch)
{
    CnnBuilder b("U-Net", batch, 1, 512, 512);
    const std::int64_t enc[4] = {64, 128, 256, 512};
    for (int lvl = 0; lvl < 4; ++lvl) {
        const std::string tag = "enc" + std::to_string(lvl);
        b.conv(tag + ".conv1", enc[lvl], 3, 3, 1);
        b.conv(tag + ".conv2", enc[lvl], 3, 3, 1);
        b.pool(tag + ".pool", 2, 2);
    }
    b.conv("mid.conv1", 1024, 3, 3, 1);
    b.conv("mid.conv2", 1024, 3, 3, 1);
    for (int lvl = 3; lvl >= 0; --lvl) {
        const std::string tag = "dec" + std::to_string(lvl);
        b.upConv(tag + ".up", enc[lvl], 2);
        // Skip connection doubles the input channels of the first conv.
        b.setChannels(enc[lvl] * 2);
        b.conv(tag + ".conv1", enc[lvl], 3, 3, 1);
        b.conv(tag + ".conv2", enc[lvl], 3, 3, 1);
    }
    b.conv("head", 2, 1, 1, 1);
    return b.build();
}

Model
googleNet(int batch)
{
    CnnBuilder b("GoogleNet", batch, 3, 224, 224);
    b.conv("conv1", 64, 7, 7, 2);
    b.pool("pool1", 3, 2);
    b.conv("conv2r", 64, 1, 1, 1);
    b.conv("conv2", 192, 3, 3, 1);
    b.pool("pool2", 3, 2);
    inception(b, "3a", 64, 96, 128, 16, 32, 32);
    inception(b, "3b", 128, 128, 192, 32, 96, 64);
    b.pool("pool3", 3, 2);
    inception(b, "4a", 192, 96, 208, 16, 48, 64);
    inception(b, "4b", 160, 112, 224, 24, 64, 64);
    inception(b, "4c", 128, 128, 256, 24, 64, 64);
    inception(b, "4d", 112, 144, 288, 32, 64, 64);
    inception(b, "4e", 256, 160, 320, 32, 128, 128);
    b.pool("pool4", 3, 2);
    inception(b, "5a", 256, 160, 320, 32, 128, 128);
    inception(b, "5b", 384, 192, 384, 48, 128, 128);
    b.globalPool("avgpool");
    b.fc("fc", 1000);
    return b.build();
}

Model
d2go(int batch)
{
    // FBNetV3-style mobile backbone at 320x320 + SSD-like head.
    CnnBuilder b("D2GO", batch, 3, 320, 320);
    b.conv("stem", 16, 3, 3, 2);
    invertedResidual(b, "ir1", 16, 16, 1);
    invertedResidual(b, "ir2", 64, 24, 2);
    invertedResidual(b, "ir3", 72, 24, 1);
    invertedResidual(b, "ir4", 72, 40, 2);
    invertedResidual(b, "ir5", 120, 40, 1);
    invertedResidual(b, "ir6", 120, 80, 2);
    invertedResidual(b, "ir7", 240, 80, 1);
    invertedResidual(b, "ir8", 240, 112, 1);
    invertedResidual(b, "ir9", 336, 112, 1);
    invertedResidual(b, "ir10", 336, 160, 2);
    invertedResidual(b, "ir11", 480, 160, 1);
    b.conv("head.conv", 320, 1, 1, 1);
    b.conv("head.cls", 240, 3, 3, 1);
    b.conv("head.reg", 120, 3, 3, 1);
    return b.build();
}

Model
planeRcnn(int batch)
{
    // ResNet-50-FPN backbone at 480x640 + RPN and mask/plane heads.
    CnnBuilder b("PlaneRCNN", batch, 3, 480, 640);
    resNet50Backbone(b);
    b.conv("fpn.lateral", 256, 1, 1, 1);
    b.conv("fpn.out", 256, 3, 3, 1);
    b.conv("rpn.conv", 256, 3, 3, 1);
    b.conv("rpn.cls", 3, 1, 1, 1);
    b.setChannels(256).conv("rpn.box", 12, 1, 1, 1);
    b.setChannels(256);
    for (int i = 0; i < 4; ++i)
        b.conv("mask.conv" + std::to_string(i), 256, 3, 3, 1);
    b.upConv("mask.up", 256, 2);
    b.conv("mask.out", 1, 1, 1, 1);
    b.setChannels(256).conv("depth.conv1", 128, 3, 3, 1);
    b.conv("depth.conv2", 64, 3, 3, 1);
    b.conv("depth.out", 1, 1, 1, 1);
    return b.build();
}

Model
midas(int batch)
{
    // ResNet-50 encoder at 384x384 + four-level refinement decoder.
    CnnBuilder b("MiDaS", batch, 3, 384, 384);
    resNet50Backbone(b);
    const std::int64_t dec[4] = {1024, 512, 256, 128};
    for (int lvl = 0; lvl < 4; ++lvl) {
        const std::string tag = "ref" + std::to_string(lvl);
        b.upConv(tag + ".up", dec[lvl], 2);
        b.conv(tag + ".conv1", dec[lvl], 3, 3, 1);
        b.conv(tag + ".conv2", dec[lvl], 3, 3, 1);
    }
    b.conv("out.conv1", 64, 3, 3, 1);
    b.conv("out.conv2", 1, 1, 1, 1);
    return b.build();
}

Model
emformer(int batch)
{
    TransformerConfig config;
    config.name = "Emformer";
    config.batch = batch;
    config.seqLen = 128; // streaming segment + right context
    config.dModel = 512;
    config.dFf = 2048;
    config.numBlocks = 20;
    return buildTransformer(config);
}

Model
hrvit(int batch)
{
    // HRViT-b1 proxy: conv stem, then alternating local convs and
    // attention GEMMs over progressively coarser token grids.
    CnnBuilder b("HRViT", batch, 3, 512, 512);
    b.conv("stem.conv1", 32, 3, 3, 2);
    b.conv("stem.conv2", 64, 3, 3, 2);
    Model model = b.build();
    int id = model.numLayers();
    auto attnStage = [&](const std::string& tag, std::int64_t tokens,
                         std::int64_t dim, int blocks) {
        for (int i = 0; i < blocks; ++i) {
            const std::string p = tag + std::to_string(i);
            model.layers.push_back(makeGemmLayer(
                id++, p + ".mha", tokens, 4 * dim + 2 * tokens, dim));
            model.layers.push_back(
                makeGemmLayer(id++, p + ".ffn1", tokens, 4 * dim, dim));
            model.layers.push_back(
                makeGemmLayer(id++, p + ".ffn2", tokens, dim, 4 * dim));
        }
    };
    attnStage("s1_", 128 * 128, 64, 1);
    attnStage("s2_", 64 * 64, 128, 2);
    attnStage("s3_", 32 * 32, 256, 6);
    attnStage("s4_", 16 * 16, 512, 2);
    // Segmentation head at 1/4 resolution.
    Layer head;
    head.id = id++;
    head.name = "seg.head";
    head.type = OpType::Conv2D;
    head.dims = LayerDims{19, 256, 1, 1, 128, 128, 1, 1};
    model.layers.push_back(head);
    model.finalize();
    return model;
}

Model
handSP(int batch)
{
    // Hand shape-and-pose hourglass CNN on 256x256 crops.
    CnnBuilder b("HandSP", batch, 3, 256, 256);
    b.conv("stem", 64, 7, 7, 2);
    basicBlock(b, "enc1_0", 64, 1, false);
    basicBlock(b, "enc2_0", 128, 2, true);
    basicBlock(b, "enc2_1", 128, 1, false);
    basicBlock(b, "enc3_0", 256, 2, true);
    basicBlock(b, "enc3_1", 256, 1, false);
    basicBlock(b, "enc4_0", 512, 2, true);
    b.upConv("dec3.up", 256, 2);
    b.conv("dec3.conv", 256, 3, 3, 1);
    b.upConv("dec2.up", 128, 2);
    b.conv("dec2.conv", 128, 3, 3, 1);
    b.conv("heatmap", 21, 1, 1, 1);
    b.setChannels(128).globalPool("gap");
    b.fc("pose", 63);
    return b.build();
}

Model
eyeCod(int batch)
{
    // Compact gaze-estimation CNN on 128x128 eye crops.
    CnnBuilder b("EyeCod", batch, 1, 128, 128);
    b.conv("conv1", 32, 5, 5, 2);
    b.conv("conv2", 64, 3, 3, 1);
    b.pool("pool1", 2, 2);
    b.conv("conv3", 96, 3, 3, 1);
    b.conv("conv4", 128, 3, 3, 2);
    b.conv("conv5", 192, 3, 3, 1);
    b.pool("pool2", 2, 2);
    b.conv("conv6", 256, 3, 3, 1);
    b.globalPool("gap");
    b.fc("fc1", 128);
    b.fc("gaze", 3);
    return b.build();
}

Model
sp2Dense(int batch)
{
    // Sparse-to-dense depth network: ResNet-18-style encoder +
    // transposed-conv decoder at 228x304 (paper's KITTI crop scale).
    CnnBuilder b("Sp2Dense", batch, 4, 228, 304);
    b.conv("stem", 64, 7, 7, 2);
    b.pool("pool1", 3, 2);
    basicBlock(b, "enc1_0", 64, 1, false);
    basicBlock(b, "enc1_1", 64, 1, false);
    basicBlock(b, "enc2_0", 128, 2, true);
    basicBlock(b, "enc2_1", 128, 1, false);
    basicBlock(b, "enc3_0", 256, 2, true);
    basicBlock(b, "enc3_1", 256, 1, false);
    basicBlock(b, "enc4_0", 512, 2, true);
    basicBlock(b, "enc4_1", 512, 1, false);
    const std::int64_t dec[4] = {256, 128, 64, 32};
    for (int lvl = 0; lvl < 4; ++lvl) {
        const std::string tag = "dec" + std::to_string(lvl);
        b.upConv(tag + ".up", dec[lvl], 2);
        b.conv(tag + ".conv", dec[lvl], 3, 3, 1);
    }
    b.conv("out", 1, 3, 3, 1);
    return b.build();
}

} // namespace zoo
} // namespace scar
