/**
 * @file
 * Layer-granularity workload IR.
 *
 * SCAR schedules multi-model workloads at the layer granularity
 * (paper Definition 1). Every operator is described by a unified
 * convolution-style shape so the MAESTRO-style cost model can analyze
 * it uniformly:
 *
 *   outputs: K output channels over an OY x OX output grid;
 *   reduction: C input channels over an R x S window.
 *
 * A GEMM of shape M x N x Kred maps to {k=N, c=Kred, r=s=1, y=M, x=1},
 * i.e. M output "pixels" per output channel. This preserves both the
 * MAC count and the parallelism structure each dataflow can exploit.
 */

#ifndef SCAR_WORKLOAD_LAYER_H
#define SCAR_WORKLOAD_LAYER_H

#include <cstdint>
#include <string>

namespace scar
{

/** Operator classes distinguished by the cost model. */
enum class OpType
{
    Conv2D,        ///< dense convolution
    DepthwiseConv, ///< per-channel convolution (k groups, c == k)
    Gemm,          ///< matrix multiply (transformer / FC layers)
    Pool,          ///< max/avg pooling (no weights)
    Elementwise,   ///< residual adds and similar (no weights)
};

/** Human-readable operator-class name. */
const char* opTypeName(OpType type);

/**
 * Unified operator shape (input-relative).
 *
 * y/x are *input* spatial extents; output extents derive from the
 * stride assuming SAME padding (outY = ceil(y/strideY)).
 */
struct LayerDims
{
    std::int64_t k = 1;  ///< output channels (GEMM: N)
    std::int64_t c = 1;  ///< input/reduction channels (GEMM: K)
    std::int64_t r = 1;  ///< filter height
    std::int64_t s = 1;  ///< filter width
    std::int64_t y = 1;  ///< input height (GEMM: M)
    std::int64_t x = 1;  ///< input width
    std::int64_t strideY = 1;
    std::int64_t strideX = 1;
};

/**
 * One schedulable layer: the atomic unit SCAR assigns to chiplets.
 *
 * Shapes are per sample; batching is carried by the owning Model and
 * applied by the pipelining formula of Section III-E.
 */
struct Layer
{
    int id = 0;          ///< index within the owning model (topological)
    std::string name;    ///< diagnostic name, e.g. "conv2_1_3x3"
    OpType type = OpType::Conv2D;
    LayerDims dims;

    /** Output spatial height (SAME padding). */
    std::int64_t outY() const;
    /** Output spatial width (SAME padding). */
    std::int64_t outX() const;

    /** Multiply-accumulate count for one sample. */
    double macs() const;
    /** Weight tensor elements (0 for pool/elementwise). */
    double weightElems() const;
    /** Input activation elements for one sample. */
    double inputElems() const;
    /** Output activation elements for one sample. */
    double outputElems() const;

    /** Weight tensor footprint in bytes. */
    double weightBytes() const;
    /** Input activation footprint in bytes (one sample). */
    double inputBytes() const;
    /** Output activation footprint in bytes (one sample). */
    double outputBytes() const;

    /** Validates shape invariants; raises FatalError when malformed. */
    void validate() const;
};

/** Convenience constructor for a GEMM layer of shape M x N x Kred. */
Layer makeGemmLayer(int id, const std::string& name, std::int64_t m,
                    std::int64_t n, std::int64_t kRed);

} // namespace scar

#endif // SCAR_WORKLOAD_LAYER_H
