/**
 * @file
 * Builder for transformer (encoder/decoder) layer sequences.
 *
 * Each block is emitted as GEMM layers. Two granularities are offered:
 *
 *  - Coarse (default, used by the paper-scale scenarios): 3 layers per
 *    block — a fused multi-head-attention GEMM whose MAC count equals
 *    QKV projection + score + context + output projection, followed by
 *    the two feed-forward GEMMs. This matches the paper's layer counts
 *    to within ~10% (e.g. GPT-L: 110 here vs 120 in Table VI).
 *  - Fine: 5 layers per block (QKV, fused score/context, output
 *    projection, FFN1, FFN2), exactly MAC-preserving per GEMM.
 */

#ifndef SCAR_WORKLOAD_TRANSFORMER_BUILDER_H
#define SCAR_WORKLOAD_TRANSFORMER_BUILDER_H

#include <cstdint>
#include <string>

#include "workload/model.h"

namespace scar
{

/** Block decomposition granularity for transformer models. */
enum class TransformerGranularity { Coarse, Fine };

/** Static description of a transformer architecture. */
struct TransformerConfig
{
    std::string name;
    int batch = 1;
    std::int64_t seqLen = 128;
    std::int64_t dModel = 768;
    std::int64_t dFf = 3072;
    int numBlocks = 12;
    std::int64_t vocab = 0; ///< adds embed + LM-head GEMMs when > 0
    TransformerGranularity granularity = TransformerGranularity::Coarse;
};

/** Generates the layer sequence for the given transformer config. */
Model buildTransformer(const TransformerConfig& config);

} // namespace scar

#endif // SCAR_WORKLOAD_TRANSFORMER_BUILDER_H
