/**
 * @file
 * Builder for transformer (encoder/decoder) layer sequences.
 *
 * Each block is emitted as GEMM layers. Two granularities are offered:
 *
 *  - Coarse (default, used by the paper-scale scenarios): 3 layers per
 *    block — a fused multi-head-attention GEMM whose MAC count equals
 *    QKV projection + score + context + output projection, followed by
 *    the two feed-forward GEMMs. This matches the paper's layer counts
 *    to within ~10% (e.g. GPT-L: 110 here vs 120 in Table VI).
 *  - Fine: 5 layers per block (QKV, fused score/context, output
 *    projection, FFN1, FFN2), exactly MAC-preserving per GEMM.
 */

#ifndef SCAR_WORKLOAD_TRANSFORMER_BUILDER_H
#define SCAR_WORKLOAD_TRANSFORMER_BUILDER_H

#include <cstdint>
#include <string>

#include "workload/model.h"

namespace scar
{

/** Block decomposition granularity for transformer models. */
enum class TransformerGranularity { Coarse, Fine };

/** Static description of a transformer architecture. */
struct TransformerConfig
{
    std::string name;
    int batch = 1;
    std::int64_t seqLen = 128;
    std::int64_t dModel = 768;
    std::int64_t dFf = 3072;
    int numBlocks = 12;
    std::int64_t vocab = 0; ///< adds embed + LM-head GEMMs when > 0
    TransformerGranularity granularity = TransformerGranularity::Coarse;
};

/** Generates the layer sequence for the given transformer config. */
Model buildTransformer(const TransformerConfig& config);

/**
 * Prefill phase of an autoregressive decoder: processes the whole
 * prompt in one pass and produces the first output token. Identical
 * to the encoder-style build at seqLen = promptLen; the model name
 * embeds the prompt length ("<name>.prefill<len>") so schedule-cache
 * keys distinguish length buckets.
 */
Model buildPrefillModel(const TransformerConfig& config,
                        std::int64_t promptLen);

/**
 * One autoregressive decode step attending over `contextLen` cached
 * tokens. Each block is a single-token (M = 1) GEMM sequence whose
 * fused-MHA reduction width grows with the context: weight elements
 * per block include the 2*contextLen*dModel KV-cache entries, so
 * CostDb prices decode steps with length-dependent memory footprints
 * out of the box. Named "<name>.decode<contextLen>".
 */
Model buildDecodeStepModel(const TransformerConfig& config,
                           std::int64_t contextLen);

/**
 * Rounds `len` up to the next multiple of `bucket` (minimum one
 * bucket). Length buckets keep the schedule-cache key space small:
 * every decode step inside a bucket reuses one solved schedule.
 */
std::int64_t llmLengthBucket(std::int64_t len, std::int64_t bucket);

} // namespace scar

#endif // SCAR_WORKLOAD_TRANSFORMER_BUILDER_H
