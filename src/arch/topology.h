/**
 * @file
 * Network-on-package topology.
 *
 * The default is the Simba-style 2D mesh with XY routing; the
 * scheduler itself only consumes adjacency and routes, so any
 * connected graph works (paper Section V-E generalizes to triangular
 * topologies through the adjacency matrix).
 */

#ifndef SCAR_ARCH_TOPOLOGY_H
#define SCAR_ARCH_TOPOLOGY_H

#include <cstdint>
#include <utility>
#include <vector>

namespace scar
{

/** A directed NoP link (src node, dst node). */
using Link = std::pair<int, int>;

/** Connected NoP graph with shortest-path routing. */
class Topology
{
  public:
    /** Builds a width x height 2D mesh (XY-routed). */
    static Topology mesh(int width, int height);

    /**
     * Builds a triangular arrangement: row i (0-based) holds
     * `topRow + i` nodes; each node links to its row neighbours and to
     * the two overlapping nodes of the next row (triangle lattice).
     */
    static Topology triangular(int topRow, int numRows);

    /** Builds a topology from an explicit adjacency list. */
    static Topology fromAdjacency(std::vector<std::vector<int>> adj);

    /** Number of nodes. */
    int numNodes() const { return static_cast<int>(adj_.size()); }

    /** Neighbours of a node. */
    const std::vector<int>& neighbors(int node) const;

    /** Hop count of the routed path between two nodes. */
    int hops(int src, int dst) const;

    /**
     * The routed node sequence from src to dst inclusive.
     * Mesh topologies use deterministic XY routing (paper Section V-A);
     * other topologies use BFS shortest paths.
     */
    std::vector<int> route(int src, int dst) const;

    /**
     * The directed links traversed by route(src, dst), derived from
     * the precomputed routeLinkIds table. Diagnostic/test
     * convenience — the hot path reads routeLinkIds() directly.
     */
    std::vector<Link> routeLinks(int src, int dst) const;

    // ---- Dense link indexing -------------------------------------
    //
    // Every directed adjacency link has a stable dense id in
    // [0, numLinks()), so per-link state (the evaluator's contention
    // loads) can live in flat vectors instead of ordered maps.

    /** Number of directed NoP links (adjacency entries). */
    int numLinks() const { return static_cast<int>(links_.size()); }

    /** Dense id of a directed link; -1 when src->dst is not an edge. */
    int linkId(int src, int dst) const;

    /** The (src, dst) pair of a dense link id. */
    const Link& linkById(int id) const;

    /**
     * The dense link ids traversed by route(src, dst), precomputed
     * for all pairs (empty for src == dst).
     */
    const std::vector<int>& routeLinkIds(int src, int dst) const;

    /** True for XY-routed meshes. */
    bool isMesh() const { return meshWidth_ > 0; }

    /** Mesh width (0 when not a mesh). */
    int meshWidth() const { return meshWidth_; }
    /** Mesh height (0 when not a mesh). */
    int meshHeight() const { return meshHeight_; }

  private:
    Topology() = default;

    void computeHopMatrix();
    void computeRouteTables();
    std::vector<int> bfsPath(int src, int dst) const;

    std::vector<std::vector<int>> adj_;
    std::vector<std::vector<int>> hopMatrix_;
    int meshWidth_ = 0;
    int meshHeight_ = 0;

    std::vector<Link> links_;     ///< dense id -> directed link
    std::vector<int> linkIndex_;  ///< src * n + dst -> id (or -1)
    // All-pairs route cache (link ids per pair), indexed src * n + dst.
    std::vector<std::vector<int>> routeLinkIds_;
};

} // namespace scar

#endif // SCAR_ARCH_TOPOLOGY_H
