/**
 * @file
 * Network-on-package topology.
 *
 * The default is the Simba-style 2D mesh with XY routing; the
 * scheduler itself only consumes adjacency and routes, so any
 * connected graph works (paper Section V-E generalizes to triangular
 * topologies through the adjacency matrix). Beyond the mesh, three
 * interconnect classes are config-selectable:
 *
 *  - torus(): 2D torus — the mesh plus wraparound row/column links,
 *    routed by wraparound XY (each dimension travels its shorter
 *    direction, ties broken toward increasing coordinates);
 *  - expressMesh(): mesh plus express/skip links, BFS-routed — the
 *    link set is a supergraph of the mesh, so routes can only get
 *    shorter (property-tested in tests/test_topology.cc);
 *  - broadcastMesh(): mesh plus a wireless broadcast plane — a
 *    shared-medium link class connecting every pair of plane members
 *    in one hop. Plane links are real directed adjacency entries
 *    (dense ids, route tables, and invariants apply unchanged) tagged
 *    with a medium id; the comm model aggregates congestion across a
 *    medium and prices one-to-many flows in a single shared slot
 *    (cost/comm_model.h).
 */

#ifndef SCAR_ARCH_TOPOLOGY_H
#define SCAR_ARCH_TOPOLOGY_H

#include <cstdint>
#include <utility>
#include <vector>

namespace scar
{

/** A directed NoP link (src node, dst node). */
using Link = std::pair<int, int>;

/** Interconnect class of a topology (selects routing + pricing). */
enum class TopologyKind
{
    Mesh,          ///< 2D mesh, XY routing
    Torus,         ///< 2D torus, wraparound XY routing
    ExpressMesh,   ///< mesh + express links, BFS routing
    BroadcastMesh, ///< mesh + wireless broadcast plane, BFS routing
    Generic        ///< arbitrary adjacency (triangular, custom), BFS
};

/** Display name of a topology kind ("mesh", "torus", ...). */
const char* topologyKindName(TopologyKind kind);

/** Connected NoP graph with shortest-path routing. */
class Topology
{
  public:
    /** Builds a width x height 2D mesh (XY-routed). */
    static Topology mesh(int width, int height);

    /**
     * Builds a width x height 2D torus: the mesh plus wraparound
     * links per row/column (only for dimensions >= 3 — at width or
     * height 2 the wrap would duplicate an existing mesh link).
     * Routed by wraparound XY: each dimension travels whichever
     * direction is shorter, ties toward increasing coordinates.
     */
    static Topology torus(int width, int height);

    /**
     * Builds a mesh with additional express (skip) links. Each entry
     * adds a bidirectional link between two non-adjacent chiplets.
     * Routing is BFS over the combined graph; since the link set is a
     * supergraph of the mesh, every route is at most as long as the
     * mesh route.
     */
    static Topology expressMesh(int width, int height,
                                std::vector<Link> express);

    /**
     * Builds a mesh with a wireless broadcast plane over `members`
     * (chiplet ids, ascending). Every ordered pair of distinct
     * members that is not already mesh-adjacent gets a directed
     * 1-hop plane link tagged with medium id 0; mesh-adjacent pairs
     * keep their wired link (already 1 hop). Passing all nodes as
     * members yields a package-wide plane.
     */
    static Topology broadcastMesh(int width, int height,
                                  std::vector<int> members);

    /**
     * Builds a triangular arrangement: row i (0-based) holds
     * `topRow + i` nodes; each node links to its row neighbours and to
     * the two overlapping nodes of the next row (triangle lattice).
     */
    static Topology triangular(int topRow, int numRows);

    /** Builds a topology from an explicit adjacency list. */
    static Topology fromAdjacency(std::vector<std::vector<int>> adj);

    /** Number of nodes. */
    int numNodes() const { return static_cast<int>(adj_.size()); }

    /** Neighbours of a node. */
    const std::vector<int>& neighbors(int node) const;

    /** Hop count of the routed path between two nodes. */
    int hops(int src, int dst) const;

    /**
     * The routed node sequence from src to dst inclusive.
     * Mesh topologies use deterministic XY routing (paper Section V-A),
     * tori wraparound XY; other topologies use BFS shortest paths.
     */
    std::vector<int> route(int src, int dst) const;

    /**
     * The directed links traversed by route(src, dst), derived from
     * the precomputed routeLinkIds table. Diagnostic/test
     * convenience — the hot path reads routeLinkIds() directly.
     */
    std::vector<Link> routeLinks(int src, int dst) const;

    // ---- Dense link indexing -------------------------------------
    //
    // Every directed adjacency link has a stable dense id in
    // [0, numLinks()), so per-link state (the evaluator's contention
    // loads) can live in flat vectors instead of ordered maps.

    /** Number of directed NoP links (adjacency entries). */
    int numLinks() const { return static_cast<int>(links_.size()); }

    /** Dense id of a directed link; -1 when src->dst is not an edge. */
    int linkId(int src, int dst) const;

    /** The (src, dst) pair of a dense link id. */
    const Link& linkById(int id) const;

    /**
     * The dense link ids traversed by route(src, dst), precomputed
     * for all pairs (empty for src == dst).
     */
    const std::vector<int>& routeLinkIds(int src, int dst) const;

    /** The interconnect class. */
    TopologyKind kind() const { return kind_; }

    /** True for XY-routed meshes (not tori/express/broadcast). */
    bool isMesh() const { return kind_ == TopologyKind::Mesh; }

    /** Grid width (0 for triangular/custom topologies). */
    int meshWidth() const { return meshWidth_; }
    /** Grid height (0 for triangular/custom topologies). */
    int meshHeight() const { return meshHeight_; }

    // ---- Shared-medium (broadcast plane) links -------------------

    /**
     * Medium id of a link: -1 for point-to-point wired links, >= 0
     * for shared-medium (wireless plane) links. All links of one
     * medium contend with each other, not per-link (the comm model
     * aggregates their load; see cost/comm_model.h).
     */
    int linkMedium(int id) const;

    /** Number of shared media (0 without a broadcast plane, else 1). */
    int numMedia() const { return broadcastMembers_.empty() ? 0 : 1; }

    /** True when a wireless broadcast plane is present. */
    bool hasBroadcastPlane() const { return !broadcastMembers_.empty(); }

    /** Plane member chiplet ids, ascending (empty without a plane). */
    const std::vector<int>& broadcastMembers() const
    {
        return broadcastMembers_;
    }

    /** The express link endpoints (empty for non-express meshes). */
    const std::vector<Link>& expressLinks() const { return expressLinks_; }

  private:
    Topology() = default;

    void computeHopMatrix();
    void computeRouteTables();
    std::vector<int> bfsPath(int src, int dst) const;

    static Topology meshSkeleton(int width, int height);

    std::vector<std::vector<int>> adj_;
    std::vector<std::vector<int>> hopMatrix_;
    TopologyKind kind_ = TopologyKind::Generic;
    int meshWidth_ = 0;
    int meshHeight_ = 0;

    std::vector<Link> links_;     ///< dense id -> directed link
    std::vector<int> linkIndex_;  ///< src * n + dst -> id (or -1)
    std::vector<int> linkMedium_; ///< dense id -> medium (-1 wired)
    // All-pairs route cache (link ids per pair), indexed src * n + dst.
    std::vector<std::vector<int>> routeLinkIds_;

    std::vector<int> broadcastMembers_;
    std::vector<Link> expressLinks_;
};

} // namespace scar

#endif // SCAR_ARCH_TOPOLOGY_H
