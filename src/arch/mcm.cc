#include "arch/mcm.h"

#include <limits>
#include <sstream>

#include "common/error.h"

namespace scar
{
namespace
{

/**
 * Serializes the structural fields of a package into one stable
 * string. Doubles print at max_digits10 so any two distinct values
 * serialize distinctly — default ostream precision (6 digits) would
 * alias packages whose constants differ past the 6th digit, and an
 * aliased signature means an aliased schedule-cache key.
 */
std::string
buildSignature(const std::vector<Chiplet>& chiplets,
               const Topology& topo, const PackageParams& params)
{
    std::ostringstream sig;
    sig.precision(std::numeric_limits<double>::max_digits10);
    // Each interconnect class gets its own prefix so two packages
    // differing only in interconnect (mesh vs torus vs broadcast
    // plane over the same chiplets) never alias — the schedule caches
    // key by this string (regression-tested in tests/test_het_fleet.cc).
    switch (topo.kind()) {
      case TopologyKind::Mesh:
        sig << "mesh" << topo.meshWidth() << "x" << topo.meshHeight();
        break;
      case TopologyKind::Torus:
        sig << "torus" << topo.meshWidth() << "x" << topo.meshHeight();
        break;
      case TopologyKind::ExpressMesh:
        sig << "xmesh" << topo.meshWidth() << "x" << topo.meshHeight()
            << "+e";
        for (std::size_t i = 0; i < topo.expressLinks().size(); ++i)
            sig << (i == 0 ? "" : ",") << topo.expressLinks()[i].first
                << "-" << topo.expressLinks()[i].second;
        break;
      case TopologyKind::BroadcastMesh:
        sig << "bmesh" << topo.meshWidth() << "x" << topo.meshHeight()
            << "+p";
        for (std::size_t i = 0; i < topo.broadcastMembers().size(); ++i)
            sig << (i == 0 ? "" : ",") << topo.broadcastMembers()[i];
        break;
      case TopologyKind::Generic:
        sig << "adj";
        for (int n = 0; n < topo.numNodes(); ++n) {
            sig << (n == 0 ? "" : ";");
            for (std::size_t i = 0; i < topo.neighbors(n).size(); ++i)
                sig << (i == 0 ? "" : ",") << topo.neighbors(n)[i];
        }
        break;
    }
    sig << "|nop" << params.bwNopGBps << ":" << params.nopHopLatencyNs
        << ":" << params.nopEnergyPjPerBit;
    sig << "|dram" << params.bwOffchipGBps << ":"
        << params.dramLatencyNs << ":" << params.dramEnergyPjPerBit;
    // Plane constants appear only when a plane exists, so signatures
    // of every pre-existing (wired) package stay byte-stable.
    if (topo.hasBroadcastPlane())
        sig << "|bcast" << params.bwBroadcastGBps << ":"
            << params.broadcastEnergyPjPerBit;
    for (const Chiplet& c : chiplets) {
        sig << "|" << dataflowName(c.spec.dataflow) << ":"
            << c.spec.numPes << ":" << c.spec.bwNocGBps << ":"
            << c.spec.bwMemGBps << ":" << c.spec.l2Bytes;
        if (c.memInterface)
            sig << ":M";
    }
    return sig.str();
}

} // namespace

Mcm::Mcm(std::string name, std::vector<Chiplet> chiplets, Topology topo,
         PackageParams params)
    : name_(std::move(name)), chiplets_(std::move(chiplets)),
      topo_(std::move(topo)), params_(params)
{
    SCAR_REQUIRE(!chiplets_.empty(), "MCM needs at least one chiplet");
    SCAR_REQUIRE(static_cast<int>(chiplets_.size()) == topo_.numNodes(),
                 "chiplet count ", chiplets_.size(),
                 " != topology nodes ", topo_.numNodes());
    for (std::size_t i = 0; i < chiplets_.size(); ++i) {
        SCAR_REQUIRE(chiplets_[i].id == static_cast<int>(i),
                     "chiplet id ", chiplets_[i].id, " at position ", i);
        if (chiplets_[i].memInterface)
            memIfs_.push_back(chiplets_[i].id);
    }
    SCAR_REQUIRE(!memIfs_.empty(),
                 "MCM needs at least one memory-interface chiplet");

    nearestMemIf_.resize(chiplets_.size());
    for (int c = 0; c < numChiplets(); ++c) {
        int best = memIfs_.front();
        for (int m : memIfs_) {
            if (topo_.hops(c, m) < topo_.hops(c, best))
                best = m;
        }
        nearestMemIf_[c] = best;
    }
    signature_ = buildSignature(chiplets_, topo_, params_);
}

const Chiplet&
Mcm::chiplet(int id) const
{
    SCAR_ASSERT(id >= 0 && id < numChiplets(), "bad chiplet id ", id);
    return chiplets_[id];
}

int
Mcm::numWithDataflow(Dataflow df) const
{
    int count = 0;
    for (const Chiplet& c : chiplets_) {
        if (c.spec.dataflow == df)
            ++count;
    }
    return count;
}

int
Mcm::nearestMemInterface(int chipletId) const
{
    SCAR_ASSERT(chipletId >= 0 && chipletId < numChiplets(),
                "bad chiplet id ", chipletId);
    return nearestMemIf_[chipletId];
}

int
Mcm::hopsToMem(int chipletId) const
{
    return topo_.hops(chipletId, nearestMemInterface(chipletId));
}

ChipletSpec
Mcm::specForDataflow(Dataflow df) const
{
    for (const Chiplet& c : chiplets_) {
        if (c.spec.dataflow == df)
            return c.spec;
    }
    // Class not present: return a default-shaped spec with the asked
    // dataflow so expectation formulas remain well defined.
    ChipletSpec spec = chiplets_.front().spec;
    spec.dataflow = df;
    return spec;
}

} // namespace scar
