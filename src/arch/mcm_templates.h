/**
 * @file
 * The MCM chiplet organizations evaluated in the paper (Figure 6).
 *
 * Homogeneous templates ("Simba") carry one dataflow everywhere.
 * Heterogeneous templates mix NVDLA-like and Shi-diannao-like chiplets:
 *  - Het-CB ("checkerboard"): dataflows alternate per position, so
 *    every NoP neighbour pair is heterogeneous;
 *  - Het-Sides: the two side columns are NVDLA-like, the middle column
 *    Shi-diannao-like — each side column is a vertically adjacent
 *    homogeneous pipeline while column crossings are heterogeneous
 *    (Section V-B: Het-Sides offers both homogeneous and heterogeneous
 *    inter-chiplet pipelining, unlike Het-CB);
 *  - Het-Cross (6x6): the central rows/columns form an NVDLA cross,
 *    the four corner quadrants are Shi-diannao (same property at scale);
 *  - Simba-T / Het-T: triangular NoP variants (rows of 2,3,4 chiplets);
 *    Het-T alternates dataflows per row.
 *
 * Memory interfaces sit on the package sides: the left/right mesh
 * columns, or each row's end nodes for triangular packages.
 */

#ifndef SCAR_ARCH_MCM_TEMPLATES_H
#define SCAR_ARCH_MCM_TEMPLATES_H

#include "arch/mcm.h"

namespace scar
{
namespace templates
{

/** Chiplet PE count for the datacenter setting (paper Section V-A). */
constexpr int kDatacenterPes = 4096;
/** Chiplet PE count for the AR/VR setting. */
constexpr int kArvrPes = 256;

/** Homogeneous width x height mesh of the given dataflow. */
Mcm simbaMesh(int width, int height, Dataflow df, int numPes);

/** 3x3 homogeneous mesh ("Simba (Shi)" / "Simba (NVD)"). */
Mcm simba3x3(Dataflow df, int numPes = kDatacenterPes);

/** 6x6 homogeneous mesh ("Simba-6"). */
Mcm simba6x6(Dataflow df, int numPes = kDatacenterPes);

/** 3x3 checkerboard heterogeneous mesh ("Het-CB"). */
Mcm hetCb3x3(int numPes = kDatacenterPes);

/** 3x3 sides-heterogeneous mesh ("Het-Sides"). */
Mcm hetSides3x3(int numPes = kDatacenterPes);

/** 6x6 cross-heterogeneous mesh ("Het-Cross"). */
Mcm hetCross6x6(int numPes = kDatacenterPes);

// ---- Interconnect variants (equal silicon to hetSides3x3: same
// chiplets, specs, and memory interfaces — only the NoP differs).
// These feed bench_comm_fidelity's fidelity x topology sweep.

/** Het-Sides on a 3x3 torus (wraparound XY routing). */
Mcm hetSidesTorus3x3(int numPes = kDatacenterPes);

/** Het-Sides with express links across the mesh diagonals. */
Mcm hetSidesExpress3x3(int numPes = kDatacenterPes);

/** Het-Sides with a package-wide wireless broadcast plane. */
Mcm hetSidesBroadcast3x3(int numPes = kDatacenterPes);

/** Homogeneous width x height torus of the given dataflow. */
Mcm simbaTorus(int width, int height, Dataflow df,
               int numPes = kDatacenterPes);

/** Triangular homogeneous package ("Simba-T"), rows of 2,3,4 chiplets. */
Mcm simbaTriangular(Dataflow df, int numPes = kDatacenterPes);

/** Triangular heterogeneous package ("Het-T"), dataflow alternates per row. */
Mcm hetTriangular(int numPes = kDatacenterPes);

/** 2x2 MCM of the motivational study (3 NVDLA + 1 Shi, Figure 2). */
Mcm motivational2x2(int numPes = kDatacenterPes);

/**
 * Extension template: a 3x3 mesh mixing three dataflow classes — one
 * column each of NVDLA-like, Eyeriss-like row-stationary, and
 * Shi-diannao-like chiplets. Demonstrates the formulation's
 * generality to |DF| > 2 (Eq. 1 averages over any class mix).
 */
Mcm hetTriple3x3(int numPes = kDatacenterPes);

} // namespace templates
} // namespace scar

#endif // SCAR_ARCH_MCM_TEMPLATES_H
