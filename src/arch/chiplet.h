/**
 * @file
 * AI accelerator chiplet description (paper Definition 2):
 * c = {dataflow, N_PE, BW_noc, BW_mem, Sz_mem}.
 */

#ifndef SCAR_ARCH_CHIPLET_H
#define SCAR_ARCH_CHIPLET_H

#include "arch/dataflow.h"

namespace scar
{

/** Microarchitectural parameters of one accelerator chiplet. */
struct ChipletSpec
{
    Dataflow dataflow = Dataflow::NvdlaWS;
    int numPes = 4096;          ///< processing engines (paper: 4096 DC, 256 AR/VR)
    double bwNocGBps = 128.0;   ///< on-chiplet NoC bandwidth (PE array feed)
    double bwMemGBps = 256.0;   ///< L2 shared-memory bandwidth
    double l2Bytes = 10.0 * 1024 * 1024; ///< 10 MB L2 (paper Section V-A)
};

/** One chiplet instance placed on the package. */
struct Chiplet
{
    int id = -1;            ///< node id in the NoP topology
    int x = 0;              ///< grid column (mesh) / column-in-row (tri)
    int y = 0;              ///< grid row
    bool memInterface = false; ///< has a direct off-chip DRAM port
    ChipletSpec spec;
};

} // namespace scar

#endif // SCAR_ARCH_CHIPLET_H
