#include "arch/mcm_templates.h"

#include <functional>

#include "common/error.h"

namespace scar
{
namespace templates
{

namespace
{

/**
 * Builds a grid MCM over an already-constructed grid topology (mesh,
 * torus, express, or broadcast — anything with meshWidth/meshHeight
 * set) with a per-position dataflow assignment. Chiplet specs and
 * memory-interface placement depend only on the grid coordinates, so
 * interconnect variants of one organization differ in nothing but the
 * topology (the "equal silicon" property bench_comm_fidelity gates).
 */
Mcm
gridMcm(const std::string& name, Topology topo, int numPes,
        const std::function<Dataflow(int x, int y)>& assign)
{
    const int width = topo.meshWidth();
    const int height = topo.meshHeight();
    std::vector<Chiplet> chiplets;
    chiplets.reserve(static_cast<std::size_t>(width) * height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            Chiplet c;
            c.id = y * width + x;
            c.x = x;
            c.y = y;
            c.memInterface = (x == 0 || x == width - 1);
            c.spec.dataflow = assign(x, y);
            c.spec.numPes = numPes;
            chiplets.push_back(c);
        }
    }
    return Mcm(name, std::move(chiplets), std::move(topo));
}

/** Builds a mesh MCM with a per-position dataflow assignment. */
Mcm
meshMcm(const std::string& name, int width, int height, int numPes,
        const std::function<Dataflow(int x, int y)>& assign)
{
    return gridMcm(name, Topology::mesh(width, height), numPes, assign);
}

/** The Het-Sides dataflow assignment (side columns NVDLA, middle Shi). */
Dataflow
hetSidesAssign(int x, int)
{
    return (x == 1) ? Dataflow::ShiOS : Dataflow::NvdlaWS;
}

/** All chiplet ids of a width x height grid, ascending. */
std::vector<int>
allNodes(int width, int height)
{
    std::vector<int> ids(static_cast<std::size_t>(width) * height);
    for (std::size_t i = 0; i < ids.size(); ++i)
        ids[i] = static_cast<int>(i);
    return ids;
}

/** Builds the rows-of-(2,3,4) triangular MCM with per-row dataflows. */
Mcm
triangularMcm(const std::string& name, int numPes,
              const std::function<Dataflow(int row)>& assign)
{
    const int kTopRow = 2;
    const int kNumRows = 3;
    Topology topo = Topology::triangular(kTopRow, kNumRows);
    std::vector<Chiplet> chiplets;
    int id = 0;
    for (int row = 0; row < kNumRows; ++row) {
        const int width = kTopRow + row;
        for (int col = 0; col < width; ++col) {
            Chiplet c;
            c.id = id++;
            c.x = col;
            c.y = row;
            c.memInterface = (col == 0 || col == width - 1);
            c.spec.dataflow = assign(row);
            c.spec.numPes = numPes;
            chiplets.push_back(c);
        }
    }
    return Mcm(name, std::move(chiplets), std::move(topo));
}

} // namespace

Mcm
simbaMesh(int width, int height, Dataflow df, int numPes)
{
    const std::string name = std::string("Simba-") + std::to_string(width) +
                             "x" + std::to_string(height) + "(" +
                             dataflowName(df) + ")";
    return meshMcm(name, width, height, numPes,
                   [df](int, int) { return df; });
}

Mcm
simba3x3(Dataflow df, int numPes)
{
    return meshMcm(std::string("Simba(") + dataflowName(df) + ")", 3, 3,
                   numPes, [df](int, int) { return df; });
}

Mcm
simba6x6(Dataflow df, int numPes)
{
    return meshMcm(std::string("Simba-6(") + dataflowName(df) + ")", 6, 6,
                   numPes, [df](int, int) { return df; });
}

Mcm
hetCb3x3(int numPes)
{
    return meshMcm("Het-CB", 3, 3, numPes, [](int x, int y) {
        return (x + y) % 2 == 0 ? Dataflow::NvdlaWS : Dataflow::ShiOS;
    });
}

Mcm
hetSides3x3(int numPes)
{
    return meshMcm("Het-Sides", 3, 3, numPes, [](int x, int) {
        return (x == 1) ? Dataflow::ShiOS : Dataflow::NvdlaWS;
    });
}

Mcm
hetSidesTorus3x3(int numPes)
{
    return gridMcm("Het-Sides-Torus", Topology::torus(3, 3), numPes,
                   hetSidesAssign);
}

Mcm
hetSidesExpress3x3(int numPes)
{
    // Express links join the two mesh diagonals (0<->8, 2<->6): the
    // longest mesh routes (4 hops) collapse to 1.
    return gridMcm("Het-Sides-Express",
                   Topology::expressMesh(3, 3, {{0, 8}, {2, 6}}),
                   numPes, hetSidesAssign);
}

Mcm
hetSidesBroadcast3x3(int numPes)
{
    return gridMcm("Het-Sides-Bcast",
                   Topology::broadcastMesh(3, 3, allNodes(3, 3)),
                   numPes, hetSidesAssign);
}

Mcm
simbaTorus(int width, int height, Dataflow df, int numPes)
{
    const std::string name = std::string("Simba-T") +
                             std::to_string(width) + "x" +
                             std::to_string(height) + "(" +
                             dataflowName(df) + ")";
    return gridMcm(name, Topology::torus(width, height), numPes,
                   [df](int, int) { return df; });
}

Mcm
hetCross6x6(int numPes)
{
    return meshMcm("Het-Cross", 6, 6, numPes, [](int x, int y) {
        const bool onCross = (x == 2 || x == 3 || y == 2 || y == 3);
        return onCross ? Dataflow::NvdlaWS : Dataflow::ShiOS;
    });
}

Mcm
simbaTriangular(Dataflow df, int numPes)
{
    return triangularMcm(std::string("Simba-T(") + dataflowName(df) + ")",
                         numPes, [df](int) { return df; });
}

Mcm
hetTriangular(int numPes)
{
    return triangularMcm("Het-T", numPes, [](int row) {
        return row % 2 == 0 ? Dataflow::NvdlaWS : Dataflow::ShiOS;
    });
}

Mcm
hetTriple3x3(int numPes)
{
    return meshMcm("Het-Tri", 3, 3, numPes, [](int x, int) {
        switch (x) {
          case 0:  return Dataflow::NvdlaWS;
          case 1:  return Dataflow::EyerissRS;
          default: return Dataflow::ShiOS;
        }
    });
}

Mcm
motivational2x2(int numPes)
{
    // Figure 2: chiplets 1,2,4 NVDLA-like, chiplet 3 Shi-diannao-like.
    return meshMcm("Mot-2x2", 2, 2, numPes, [](int x, int y) {
        return (x == 0 && y == 1) ? Dataflow::ShiOS : Dataflow::NvdlaWS;
    });
}

} // namespace templates
} // namespace scar
