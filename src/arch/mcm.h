/**
 * @file
 * MCM AI accelerator description (paper Definition 3):
 * H = {C, BW_offchip, BW_nop} plus the package-level microarchitecture
 * constants of Table II.
 */

#ifndef SCAR_ARCH_MCM_H
#define SCAR_ARCH_MCM_H

#include <string>
#include <vector>

#include "arch/chiplet.h"
#include "arch/topology.h"

namespace scar
{

/** Package/off-chip constants (paper Table II, 28 nm scaled). */
struct PackageParams
{
    double bwNopGBps = 100.0;      ///< NoP bandwidth per chiplet link
    double nopHopLatencyNs = 35.0; ///< NoP interconnect latency per hop
    double nopEnergyPjPerBit = 2.04;
    double bwOffchipGBps = 64.0;   ///< DRAM bandwidth
    double dramLatencyNs = 200.0;  ///< DRAM access latency
    double dramEnergyPjPerBit = 14.8;

    // ---- Wireless broadcast plane (only read when the topology has
    // one; see Topology::broadcastMesh). The shared medium carries
    // one transmission at a time at bwBroadcastGBps, but a single
    // transmission reaches every plane member — one-to-many flows pay
    // one slot (cost/comm_model.h). Defaults follow the wireless-MCM
    // literature: lower bandwidth than a wired hop, near-wired
    // energy per bit, one-hop latency independent of distance.
    double bwBroadcastGBps = 48.0;       ///< shared-medium bandwidth
    double broadcastEnergyPjPerBit = 1.2; ///< per transmission
};

/**
 * A multi-chip module: chiplets + NoP topology + off-chip interfaces.
 *
 * Off-chip DRAM is reachable through memory-interface chiplets placed
 * on the package sides (paper Section III-A / V-A); a transfer between
 * DRAM and chiplet c traverses the NoP from c's nearest interface.
 */
class Mcm
{
  public:
    /**
     * @param name display name of the MCM organization (e.g. "Het-Sides")
     * @param chiplets chiplet list; ids must equal vector positions
     * @param topo NoP topology over the chiplet ids
     * @param params package constants
     */
    Mcm(std::string name, std::vector<Chiplet> chiplets, Topology topo,
        PackageParams params = PackageParams{});

    const std::string& name() const { return name_; }
    int numChiplets() const { return static_cast<int>(chiplets_.size()); }
    const Chiplet& chiplet(int id) const;
    const std::vector<Chiplet>& chiplets() const { return chiplets_; }
    const Topology& topology() const { return topo_; }
    const PackageParams& params() const { return params_; }

    /** Number of chiplets implementing the given dataflow (n_df). */
    int numWithDataflow(Dataflow df) const;

    /** Chiplet ids that carry an off-chip memory interface. */
    const std::vector<int>& memInterfaces() const { return memIfs_; }

    /** Nearest memory-interface chiplet to the given chiplet. */
    int nearestMemInterface(int chipletId) const;

    /** NoP hops from a chiplet to its nearest memory interface. */
    int hopsToMem(int chipletId) const;

    /**
     * A representative spec for each dataflow class present on the
     * package (all chiplets of one class are identical in this work).
     */
    ChipletSpec specForDataflow(Dataflow df) const;

    /**
     * Canonical signature of the package *structure*: topology shape,
     * per-chiplet microarchitecture (dataflow, PEs, bandwidths, L2,
     * memory interface), and the package constants. The display name
     * is deliberately excluded — two packages that schedule
     * identically produce the same signature — so the serving
     * runtime's schedule caches can key results by
     * (mix signature, package signature) and share entries across
     * identical shards while never sharing across different
     * templates. Computed once at construction.
     */
    const std::string& signature() const { return signature_; }

  private:
    std::string name_;
    std::vector<Chiplet> chiplets_;
    Topology topo_;
    PackageParams params_;
    std::vector<int> memIfs_;
    std::vector<int> nearestMemIf_; ///< per chiplet
    std::string signature_;
};

} // namespace scar

#endif // SCAR_ARCH_MCM_H
