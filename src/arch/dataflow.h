/**
 * @file
 * Accelerator dataflow styles (paper Section V-A).
 *
 * The paper builds heterogeneous MCMs from two proven styles [37]:
 *  - NVDLA-like: weight-stationary, spatial parallelism over output
 *    and input channels (K x C). Strong on GEMM-shaped and late CNN
 *    layers where K*C is large; weak on early CNN layers.
 *  - Shi-diannao-like: output-stationary, spatial parallelism over the
 *    output pixel grid (OY x OX). Strong on early CNN layers with
 *    large spatial extents; weak on GEMM layers (few output rows).
 */

#ifndef SCAR_ARCH_DATAFLOW_H
#define SCAR_ARCH_DATAFLOW_H

#include <array>

namespace scar
{

/**
 * Chiplet dataflow class.
 *
 * The paper evaluates NVDLA-like and Shi-diannao-like chiplets; the
 * formulation (Eq. 1 averages over |DF| classes) supports any number,
 * and this repo additionally ships an Eyeriss-style row-stationary
 * class as the extension the conclusion motivates.
 */
enum class Dataflow
{
    NvdlaWS,   ///< weight-stationary, K x C spatial mapping
    ShiOS,     ///< output-stationary, OY x OX spatial mapping
    EyerissRS, ///< row-stationary, K x OY spatial mapping (extension)
};

/** Number of dataflow classes supported on MCMs in this repo. */
constexpr int kNumDataflows = 3;

/** All dataflow classes, for iteration. */
constexpr std::array<Dataflow, kNumDataflows> kAllDataflows = {
    Dataflow::NvdlaWS, Dataflow::ShiOS, Dataflow::EyerissRS};

/** Dense index of a dataflow, for array-backed tables. */
constexpr int
dataflowIndex(Dataflow df)
{
    switch (df) {
      case Dataflow::NvdlaWS:   return 0;
      case Dataflow::ShiOS:     return 1;
      case Dataflow::EyerissRS: return 2;
    }
    return 0;
}

/** Short display name ("NVD" / "Shi" / "RS"). */
constexpr const char*
dataflowName(Dataflow df)
{
    switch (df) {
      case Dataflow::NvdlaWS:   return "NVD";
      case Dataflow::ShiOS:     return "Shi";
      case Dataflow::EyerissRS: return "RS";
    }
    return "?";
}

} // namespace scar

#endif // SCAR_ARCH_DATAFLOW_H
