#include "arch/topology.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace scar
{

const char*
topologyKindName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::Mesh:          return "mesh";
      case TopologyKind::Torus:         return "torus";
      case TopologyKind::ExpressMesh:   return "express-mesh";
      case TopologyKind::BroadcastMesh: return "broadcast-mesh";
      case TopologyKind::Generic:       return "generic";
    }
    return "unknown";
}

Topology
Topology::meshSkeleton(int width, int height)
{
    SCAR_REQUIRE(width >= 1 && height >= 1, "mesh dims must be positive");
    Topology topo;
    topo.meshWidth_ = width;
    topo.meshHeight_ = height;
    const int n = width * height;
    topo.adj_.resize(n);
    auto id = [width](int x, int y) { return y * width + x; };
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            if (x + 1 < width) {
                topo.adj_[id(x, y)].push_back(id(x + 1, y));
                topo.adj_[id(x + 1, y)].push_back(id(x, y));
            }
            if (y + 1 < height) {
                topo.adj_[id(x, y)].push_back(id(x, y + 1));
                topo.adj_[id(x, y + 1)].push_back(id(x, y));
            }
        }
    }
    return topo;
}

Topology
Topology::mesh(int width, int height)
{
    Topology topo = meshSkeleton(width, height);
    topo.kind_ = TopologyKind::Mesh;
    topo.computeHopMatrix();
    topo.computeRouteTables();
    return topo;
}

Topology
Topology::torus(int width, int height)
{
    Topology topo = meshSkeleton(width, height);
    topo.kind_ = TopologyKind::Torus;
    auto id = [width](int x, int y) { return y * width + x; };
    // Wraparound links, appended after the mesh skeleton so mesh link
    // ids stay a prefix. A dimension of 2 already has the "wrap" as
    // its only mesh link; adding it again would duplicate adjacency.
    if (width >= 3) {
        for (int y = 0; y < height; ++y) {
            topo.adj_[id(width - 1, y)].push_back(id(0, y));
            topo.adj_[id(0, y)].push_back(id(width - 1, y));
        }
    }
    if (height >= 3) {
        for (int x = 0; x < width; ++x) {
            topo.adj_[id(x, height - 1)].push_back(id(x, 0));
            topo.adj_[id(x, 0)].push_back(id(x, height - 1));
        }
    }
    topo.computeHopMatrix();
    topo.computeRouteTables();
    return topo;
}

Topology
Topology::expressMesh(int width, int height, std::vector<Link> express)
{
    Topology topo = meshSkeleton(width, height);
    topo.kind_ = TopologyKind::ExpressMesh;
    const int n = width * height;
    for (const Link& e : express) {
        SCAR_REQUIRE(e.first >= 0 && e.first < n && e.second >= 0 &&
                         e.second < n,
                     "express link ", e.first, "->", e.second,
                     " out of range");
        SCAR_REQUIRE(e.first != e.second, "express link must join two "
                                          "distinct chiplets");
        const auto& nbrs = topo.adj_[e.first];
        SCAR_REQUIRE(std::find(nbrs.begin(), nbrs.end(), e.second) ==
                         nbrs.end(),
                     "express link ", e.first, "->", e.second,
                     " duplicates an existing link");
        topo.adj_[e.first].push_back(e.second);
        topo.adj_[e.second].push_back(e.first);
    }
    topo.expressLinks_ = std::move(express);
    topo.computeHopMatrix();
    topo.computeRouteTables();
    return topo;
}

Topology
Topology::broadcastMesh(int width, int height, std::vector<int> members)
{
    Topology topo = meshSkeleton(width, height);
    topo.kind_ = TopologyKind::BroadcastMesh;
    const int n = width * height;
    SCAR_REQUIRE(members.size() >= 2,
                 "broadcast plane needs at least two members");
    for (std::size_t i = 0; i < members.size(); ++i) {
        SCAR_REQUIRE(members[i] >= 0 && members[i] < n,
                     "broadcast member ", members[i], " out of range");
        SCAR_REQUIRE(i == 0 || members[i - 1] < members[i],
                     "broadcast members must be ascending and unique");
    }
    // Directed plane links between every ordered member pair that the
    // mesh does not already join in one hop; appended after the mesh
    // skeleton so mesh link ids stay a prefix.
    std::vector<Link> planeLinks;
    for (const int a : members) {
        for (const int b : members) {
            if (a == b)
                continue;
            const auto& nbrs = topo.adj_[a];
            if (std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end())
                continue;
            topo.adj_[a].push_back(b);
            planeLinks.emplace_back(a, b);
        }
    }
    topo.broadcastMembers_ = std::move(members);
    topo.computeHopMatrix();
    topo.computeRouteTables();
    for (const Link& p : planeLinks)
        topo.linkMedium_[topo.linkId(p.first, p.second)] = 0;
    return topo;
}

Topology
Topology::triangular(int topRow, int numRows)
{
    SCAR_REQUIRE(topRow >= 1 && numRows >= 1,
                 "triangular dims must be positive");
    // Row starts: row i has topRow + i nodes.
    std::vector<int> rowStart(numRows + 1, 0);
    for (int i = 0; i < numRows; ++i)
        rowStart[i + 1] = rowStart[i] + topRow + i;

    Topology topo;
    topo.adj_.resize(rowStart[numRows]);
    auto link = [&](int a, int b) {
        topo.adj_[a].push_back(b);
        topo.adj_[b].push_back(a);
    };
    for (int row = 0; row < numRows; ++row) {
        const int width = topRow + row;
        for (int col = 0; col < width; ++col) {
            const int node = rowStart[row] + col;
            if (col + 1 < width)
                link(node, node + 1);
            if (row + 1 < numRows) {
                // Triangle lattice: a node overlaps two nodes below.
                link(node, rowStart[row + 1] + col);
                link(node, rowStart[row + 1] + col + 1);
            }
        }
    }
    topo.computeHopMatrix();
    topo.computeRouteTables();
    return topo;
}

Topology
Topology::fromAdjacency(std::vector<std::vector<int>> adj)
{
    SCAR_REQUIRE(!adj.empty(), "adjacency must be non-empty");
    const int n = static_cast<int>(adj.size());
    for (const auto& nbrs : adj) {
        for (int v : nbrs)
            SCAR_REQUIRE(v >= 0 && v < n, "adjacency index out of range");
    }
    Topology topo;
    topo.adj_ = std::move(adj);
    topo.computeHopMatrix();
    topo.computeRouteTables();
    return topo;
}

const std::vector<int>&
Topology::neighbors(int node) const
{
    SCAR_ASSERT(node >= 0 && node < numNodes(), "bad node ", node);
    return adj_[node];
}

void
Topology::computeRouteTables()
{
    const int n = numNodes();

    // Dense link ids in (node, adjacency-list) order — deterministic
    // for a given adjacency.
    linkIndex_.assign(static_cast<std::size_t>(n) * n, -1);
    links_.clear();
    for (int u = 0; u < n; ++u) {
        for (int v : adj_[u]) {
            if (linkIndex_[static_cast<std::size_t>(u) * n + v] < 0) {
                linkIndex_[static_cast<std::size_t>(u) * n + v] =
                    static_cast<int>(links_.size());
                links_.emplace_back(u, v);
            }
        }
    }
    linkMedium_.assign(links_.size(), -1);

    // All-pairs routes, derived once from the same route() every
    // caller used before the cache existed.
    routeLinkIds_.assign(static_cast<std::size_t>(n) * n, {});
    for (int src = 0; src < n; ++src) {
        for (int dst = 0; dst < n; ++dst) {
            if (src == dst)
                continue;
            const std::vector<int> path = route(src, dst);
            std::vector<int>& ids =
                routeLinkIds_[static_cast<std::size_t>(src) * n + dst];
            ids.reserve(path.size() - 1);
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                const int id = linkId(path[i], path[i + 1]);
                SCAR_ASSERT(id >= 0, "route hop ", path[i], "->",
                            path[i + 1], " is not an adjacency link");
                ids.push_back(id);
            }
        }
    }
}

void
Topology::computeHopMatrix()
{
    const int n = numNodes();
    hopMatrix_.assign(n, std::vector<int>(n, -1));
    for (int src = 0; src < n; ++src) {
        std::queue<int> frontier;
        hopMatrix_[src][src] = 0;
        frontier.push(src);
        while (!frontier.empty()) {
            const int u = frontier.front();
            frontier.pop();
            for (int v : adj_[u]) {
                if (hopMatrix_[src][v] < 0) {
                    hopMatrix_[src][v] = hopMatrix_[src][u] + 1;
                    frontier.push(v);
                }
            }
        }
        for (int dst = 0; dst < n; ++dst) {
            SCAR_REQUIRE(hopMatrix_[src][dst] >= 0,
                         "topology is disconnected at node ", dst);
        }
    }
}

int
Topology::hops(int src, int dst) const
{
    SCAR_ASSERT(src >= 0 && src < numNodes(), "bad src ", src);
    SCAR_ASSERT(dst >= 0 && dst < numNodes(), "bad dst ", dst);
    return hopMatrix_[src][dst];
}

std::vector<int>
Topology::route(int src, int dst) const
{
    SCAR_ASSERT(src >= 0 && src < numNodes(), "bad src ", src);
    SCAR_ASSERT(dst >= 0 && dst < numNodes(), "bad dst ", dst);
    if (kind_ != TopologyKind::Mesh && kind_ != TopologyKind::Torus)
        return bfsPath(src, dst);

    // Deterministic XY routing: travel along X, then along Y. On the
    // torus each dimension travels whichever direction is shorter
    // (ties toward increasing coordinates), stepping with wraparound.
    const int w = meshWidth_;
    const int h = meshHeight_;
    std::vector<int> path;
    int x = src % w;
    int y = src / w;
    const int dx = dst % w;
    const int dy = dst / w;
    path.push_back(src);
    if (kind_ == TopologyKind::Mesh) {
        while (x != dx) {
            x += (dx > x) ? 1 : -1;
            path.push_back(y * w + x);
        }
        while (y != dy) {
            y += (dy > y) ? 1 : -1;
            path.push_back(y * w + x);
        }
        return path;
    }
    const int stepX = ((dx - x + w) % w <= (x - dx + w) % w) ? 1 : -1;
    while (x != dx) {
        x = (x + stepX + w) % w;
        path.push_back(y * w + x);
    }
    const int stepY = ((dy - y + h) % h <= (y - dy + h) % h) ? 1 : -1;
    while (y != dy) {
        y = (y + stepY + h) % h;
        path.push_back(y * w + x);
    }
    return path;
}

std::vector<Link>
Topology::routeLinks(int src, int dst) const
{
    std::vector<Link> links;
    for (const int id : routeLinkIds(src, dst))
        links.push_back(linkById(id));
    return links;
}

int
Topology::linkId(int src, int dst) const
{
    SCAR_ASSERT(src >= 0 && src < numNodes(), "bad src ", src);
    SCAR_ASSERT(dst >= 0 && dst < numNodes(), "bad dst ", dst);
    return linkIndex_[static_cast<std::size_t>(src) * numNodes() + dst];
}

const Link&
Topology::linkById(int id) const
{
    SCAR_ASSERT(id >= 0 && id < numLinks(), "bad link id ", id);
    return links_[id];
}

int
Topology::linkMedium(int id) const
{
    SCAR_ASSERT(id >= 0 && id < numLinks(), "bad link id ", id);
    return linkMedium_[id];
}

const std::vector<int>&
Topology::routeLinkIds(int src, int dst) const
{
    SCAR_ASSERT(src >= 0 && src < numNodes(), "bad src ", src);
    SCAR_ASSERT(dst >= 0 && dst < numNodes(), "bad dst ", dst);
    return routeLinkIds_[static_cast<std::size_t>(src) * numNodes() +
                         dst];
}

std::vector<int>
Topology::bfsPath(int src, int dst) const
{
    std::vector<int> parent(numNodes(), -1);
    std::queue<int> frontier;
    parent[src] = src;
    frontier.push(src);
    while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop();
        if (u == dst)
            break;
        for (int v : adj_[u]) {
            if (parent[v] < 0) {
                parent[v] = u;
                frontier.push(v);
            }
        }
    }
    SCAR_ASSERT(parent[dst] >= 0, "no path ", src, "->", dst);
    std::vector<int> path;
    for (int v = dst; v != src; v = parent[v])
        path.push_back(v);
    path.push_back(src);
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace scar
