#include "arch/topology.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace scar
{

Topology
Topology::mesh(int width, int height)
{
    SCAR_REQUIRE(width >= 1 && height >= 1, "mesh dims must be positive");
    Topology topo;
    topo.meshWidth_ = width;
    topo.meshHeight_ = height;
    const int n = width * height;
    topo.adj_.resize(n);
    auto id = [width](int x, int y) { return y * width + x; };
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            if (x + 1 < width) {
                topo.adj_[id(x, y)].push_back(id(x + 1, y));
                topo.adj_[id(x + 1, y)].push_back(id(x, y));
            }
            if (y + 1 < height) {
                topo.adj_[id(x, y)].push_back(id(x, y + 1));
                topo.adj_[id(x, y + 1)].push_back(id(x, y));
            }
        }
    }
    topo.computeHopMatrix();
    topo.computeRouteTables();
    return topo;
}

Topology
Topology::triangular(int topRow, int numRows)
{
    SCAR_REQUIRE(topRow >= 1 && numRows >= 1,
                 "triangular dims must be positive");
    // Row starts: row i has topRow + i nodes.
    std::vector<int> rowStart(numRows + 1, 0);
    for (int i = 0; i < numRows; ++i)
        rowStart[i + 1] = rowStart[i] + topRow + i;

    Topology topo;
    topo.adj_.resize(rowStart[numRows]);
    auto link = [&](int a, int b) {
        topo.adj_[a].push_back(b);
        topo.adj_[b].push_back(a);
    };
    for (int row = 0; row < numRows; ++row) {
        const int width = topRow + row;
        for (int col = 0; col < width; ++col) {
            const int node = rowStart[row] + col;
            if (col + 1 < width)
                link(node, node + 1);
            if (row + 1 < numRows) {
                // Triangle lattice: a node overlaps two nodes below.
                link(node, rowStart[row + 1] + col);
                link(node, rowStart[row + 1] + col + 1);
            }
        }
    }
    topo.computeHopMatrix();
    topo.computeRouteTables();
    return topo;
}

Topology
Topology::fromAdjacency(std::vector<std::vector<int>> adj)
{
    SCAR_REQUIRE(!adj.empty(), "adjacency must be non-empty");
    const int n = static_cast<int>(adj.size());
    for (const auto& nbrs : adj) {
        for (int v : nbrs)
            SCAR_REQUIRE(v >= 0 && v < n, "adjacency index out of range");
    }
    Topology topo;
    topo.adj_ = std::move(adj);
    topo.computeHopMatrix();
    topo.computeRouteTables();
    return topo;
}

const std::vector<int>&
Topology::neighbors(int node) const
{
    SCAR_ASSERT(node >= 0 && node < numNodes(), "bad node ", node);
    return adj_[node];
}

void
Topology::computeRouteTables()
{
    const int n = numNodes();

    // Dense link ids in (node, adjacency-list) order — deterministic
    // for a given adjacency.
    linkIndex_.assign(static_cast<std::size_t>(n) * n, -1);
    links_.clear();
    for (int u = 0; u < n; ++u) {
        for (int v : adj_[u]) {
            if (linkIndex_[static_cast<std::size_t>(u) * n + v] < 0) {
                linkIndex_[static_cast<std::size_t>(u) * n + v] =
                    static_cast<int>(links_.size());
                links_.emplace_back(u, v);
            }
        }
    }

    // All-pairs routes, derived once from the same route() every
    // caller used before the cache existed.
    routeLinkIds_.assign(static_cast<std::size_t>(n) * n, {});
    for (int src = 0; src < n; ++src) {
        for (int dst = 0; dst < n; ++dst) {
            if (src == dst)
                continue;
            const std::vector<int> path = route(src, dst);
            std::vector<int>& ids =
                routeLinkIds_[static_cast<std::size_t>(src) * n + dst];
            ids.reserve(path.size() - 1);
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                const int id = linkId(path[i], path[i + 1]);
                SCAR_ASSERT(id >= 0, "route hop ", path[i], "->",
                            path[i + 1], " is not an adjacency link");
                ids.push_back(id);
            }
        }
    }
}

void
Topology::computeHopMatrix()
{
    const int n = numNodes();
    hopMatrix_.assign(n, std::vector<int>(n, -1));
    for (int src = 0; src < n; ++src) {
        std::queue<int> frontier;
        hopMatrix_[src][src] = 0;
        frontier.push(src);
        while (!frontier.empty()) {
            const int u = frontier.front();
            frontier.pop();
            for (int v : adj_[u]) {
                if (hopMatrix_[src][v] < 0) {
                    hopMatrix_[src][v] = hopMatrix_[src][u] + 1;
                    frontier.push(v);
                }
            }
        }
        for (int dst = 0; dst < n; ++dst) {
            SCAR_REQUIRE(hopMatrix_[src][dst] >= 0,
                         "topology is disconnected at node ", dst);
        }
    }
}

int
Topology::hops(int src, int dst) const
{
    SCAR_ASSERT(src >= 0 && src < numNodes(), "bad src ", src);
    SCAR_ASSERT(dst >= 0 && dst < numNodes(), "bad dst ", dst);
    return hopMatrix_[src][dst];
}

std::vector<int>
Topology::route(int src, int dst) const
{
    SCAR_ASSERT(src >= 0 && src < numNodes(), "bad src ", src);
    SCAR_ASSERT(dst >= 0 && dst < numNodes(), "bad dst ", dst);
    if (!isMesh())
        return bfsPath(src, dst);

    // Deterministic XY routing: travel along X, then along Y.
    std::vector<int> path;
    int x = src % meshWidth_;
    int y = src / meshWidth_;
    const int dx = dst % meshWidth_;
    const int dy = dst / meshWidth_;
    path.push_back(src);
    while (x != dx) {
        x += (dx > x) ? 1 : -1;
        path.push_back(y * meshWidth_ + x);
    }
    while (y != dy) {
        y += (dy > y) ? 1 : -1;
        path.push_back(y * meshWidth_ + x);
    }
    return path;
}

std::vector<Link>
Topology::routeLinks(int src, int dst) const
{
    std::vector<Link> links;
    for (const int id : routeLinkIds(src, dst))
        links.push_back(linkById(id));
    return links;
}

int
Topology::linkId(int src, int dst) const
{
    SCAR_ASSERT(src >= 0 && src < numNodes(), "bad src ", src);
    SCAR_ASSERT(dst >= 0 && dst < numNodes(), "bad dst ", dst);
    return linkIndex_[static_cast<std::size_t>(src) * numNodes() + dst];
}

const Link&
Topology::linkById(int id) const
{
    SCAR_ASSERT(id >= 0 && id < numLinks(), "bad link id ", id);
    return links_[id];
}

const std::vector<int>&
Topology::routeLinkIds(int src, int dst) const
{
    SCAR_ASSERT(src >= 0 && src < numNodes(), "bad src ", src);
    SCAR_ASSERT(dst >= 0 && dst < numNodes(), "bad dst ", dst);
    return routeLinkIds_[static_cast<std::size_t>(src) * numNodes() +
                         dst];
}

std::vector<int>
Topology::bfsPath(int src, int dst) const
{
    std::vector<int> parent(numNodes(), -1);
    std::queue<int> frontier;
    parent[src] = src;
    frontier.push(src);
    while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop();
        if (u == dst)
            break;
        for (int v : adj_[u]) {
            if (parent[v] < 0) {
                parent[v] = u;
                frontier.push(v);
            }
        }
    }
    SCAR_ASSERT(parent[dst] >= 0, "no path ", src, "->", dst);
    std::vector<int> path;
    for (int v = dst; v != src; v = parent[v])
        path.push_back(v);
    path.push_back(src);
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace scar
