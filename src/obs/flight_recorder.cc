#include "obs/flight_recorder.h"

#include <cstdlib>
#include <filesystem>

#include "common/logging.h"

namespace scar
{
namespace obs
{

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)),
      samples_(options_.sampleIntervalSec)
{
}

std::unique_ptr<FlightRecorder>
FlightRecorder::fromEnv()
{
    const char* flag = std::getenv("SCAR_TRACE");
    if (flag == nullptr || flag[0] == '\0' ||
        (flag[0] == '0' && flag[1] == '\0')) {
        return nullptr;
    }
    FlightRecorderOptions options;
    if (const char* dir = std::getenv("SCAR_TRACE_DIR")) {
        if (dir[0] != '\0')
            options.outDir = dir;
    }
    if (const char* interval = std::getenv("SCAR_TRACE_SAMPLE_SEC")) {
        char* end = nullptr;
        const double parsed = std::strtod(interval, &end);
        if (end != interval && parsed > 0.0) {
            options.sampleIntervalSec = parsed;
        } else {
            warn("ignoring invalid SCAR_TRACE_SAMPLE_SEC=", interval);
        }
    }
    return std::make_unique<FlightRecorder>(std::move(options));
}

bool
FlightRecorder::writeAll() const
{
    std::error_code ec;
    std::filesystem::create_directories(options_.outDir, ec);
    if (ec) {
        warn("flight recorder: cannot create ", options_.outDir, ": ",
             ec.message());
        return false;
    }
    const std::filesystem::path dir(options_.outDir);
    bool ok = true;
    ok &= trace_.writeJson((dir / "trace.json").string(),
                           options_.wallEventsInTrace);
    ok &= metrics_.writeJson((dir / "metrics.json").string());
    ok &= metrics_.writeCsv((dir / "metrics.csv").string());
    ok &= samples_.writeCsv((dir / "samples.csv").string());
    if (!ok)
        warn("flight recorder: failed writing into ", options_.outDir);
    return ok;
}

} // namespace obs
} // namespace scar
