/**
 * @file
 * Solver profiling types: live search counters and the structured
 * per-solve profile emitted by Scar::run.
 *
 * SearchCounters is the hot-path half — a bag of relaxed atomics the
 * sched/cost layers bump through a nullable pointer, so the disabled
 * path costs one predicted branch per site. SolveProfile is the cold
 * half — a plain snapshot of those counters plus per-phase wall
 * timings, filled once at the end of a profiled solve.
 *
 * Counter values are exact at any thread count (relaxed atomic
 * increments commute); only the wall timings vary run to run.
 */

#ifndef SCAR_OBS_SOLVE_PROFILE_H
#define SCAR_OBS_SOLVE_PROFILE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace scar
{
namespace obs
{

/**
 * Cache-efficacy and fan-out counters bumped inside the window
 * search. All increments use relaxed memory order: counts are
 * aggregates read only after the solve joins its workers.
 */
struct SearchCounters
{
    std::atomic<std::int64_t> soloHits{0};
    std::atomic<std::int64_t> soloMisses{0};
    std::atomic<std::int64_t> pathHits{0};
    std::atomic<std::int64_t> pathMisses{0};
    std::atomic<std::int64_t> windowEvals{0};   ///< evaluator calls
    std::atomic<std::int64_t> combosPlaced{0};  ///< combo fan-out size
    std::atomic<std::int64_t> eaGenerations{0}; ///< EA bred generations
    std::atomic<std::int64_t> costDbRangeQueries{0}; ///< O(1) tables
    std::atomic<std::int64_t> costDbLayerQueries{0}; ///< per-layer path

    /** Bumps a counter through a nullable pointer. */
    static void
    bump(SearchCounters* counters,
         std::atomic<std::int64_t> SearchCounters::* member,
         std::int64_t delta = 1)
    {
        if (counters)
            (counters->*member).fetch_add(delta,
                                          std::memory_order_relaxed);
    }
};

/** Structured result of one profiled Scar::run. */
struct SolveProfile
{
    bool enabled = false; ///< set once a profiled solve fills this

    // Per-phase wall time (milliseconds).
    double totalMs = 0.0;
    double packMs = 0.0;      ///< MCM-Reconfig greedy packing
    double provisionMs = 0.0; ///< PROV node allocation
    double searchMs = 0.0;    ///< SEG+SCHED window searches

    std::int64_t windows = 0;
    std::int64_t allocationsSearched = 0;

    // Counter snapshot (see SearchCounters).
    std::int64_t soloHits = 0;
    std::int64_t soloMisses = 0;
    std::int64_t pathHits = 0;
    std::int64_t pathMisses = 0;
    std::int64_t windowEvals = 0;
    std::int64_t combosPlaced = 0;
    std::int64_t eaGenerations = 0;
    std::int64_t costDbRangeQueries = 0;
    std::int64_t costDbLayerQueries = 0;

    // Cross-solve CostDb table reuse: of this solve's models, how many
    // per-layer table sets came from the process-wide cache vs were
    // built by this solve's CostDb construction (cost/cost_db.h).
    // Filled by Scar::run from CostDb::tableStats(), not from the live
    // SearchCounters — the outcome is fixed at construction time.
    std::int64_t costDbTableHits = 0;
    std::int64_t costDbTableMisses = 0;

    /** Copies the live counters into the snapshot fields. */
    void captureCounters(const SearchCounters& counters);

    /** SoloCache hit fraction in [0, 1]; 0 with no lookups. */
    double soloHitRate() const;

    /** PathCache hit fraction in [0, 1]; 0 with no lookups. */
    double pathHitRate() const;

    /**
     * Fraction of CostDb costings served by the O(1) range tables
     * rather than the per-layer path — the CostDb "hit rate" (the
     * database has no misses; every query is answered).
     */
    double costDbRangeRate() const;

    /**
     * Cross-solve table-reuse fraction in [0, 1]; 0 when no models
     * were costed (or reuse was disabled).
     */
    double costDbTableHitRate() const;

    /** Human-readable multi-line report (table + cache rates). */
    std::string summary() const;
};

} // namespace obs
} // namespace scar

#endif // SCAR_OBS_SOLVE_PROFILE_H
