/**
 * @file
 * Metrics registry for the flight recorder: counters, gauges, and
 * log-bucketed histograms, plus a fixed-interval virtual-time sampler.
 *
 * Instruments are created on first use through the registry and live
 * for the registry's lifetime, so call sites can cache references.
 * Creation is thread-safe; recording into an instrument is not
 * synchronized — the fleet records from its single-threaded event
 * loop, which needs no locking (see src/obs/README.md).
 *
 * Exports are deterministic: instruments emit in name order, and all
 * floating-point values render in shortest-round-trip form.
 */

#ifndef SCAR_OBS_METRICS_H
#define SCAR_OBS_METRICS_H

#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace scar
{
namespace obs
{

/** A monotonically increasing event count. */
class Counter
{
  public:
    void inc(long long delta = 1) { value_ += delta; }
    long long value() const { return value_; }

  private:
    long long value_ = 0;
};

/** A last-write-wins scalar. */
class Gauge
{
  public:
    void set(double value) { value_ = value; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Geometric bucket layout of a Histogram. */
struct HistogramOptions
{
    /** Upper bound of the first bucket (values <= this land there). */
    double firstBucketUpper = 1e-4;
    /** Bucket growth factor; bucket k covers up to first * growth^k. */
    double growth = 2.0;
    /** Bucket count; the last bucket absorbs everything above. */
    int buckets = 40;
};

/**
 * Log-bucketed histogram for latency-like values spanning orders of
 * magnitude. Bucket k covers (upper(k-1), upper(k)] with geometric
 * upper bounds; the first bucket additionally absorbs values below
 * its bound and the last absorbs values above the layout.
 */
class Histogram
{
  public:
    explicit Histogram(HistogramOptions options = HistogramOptions{});

    void record(double value);

    long long count() const { return count_; }
    double sum() const { return sum_; }
    double minValue() const { return min_; }
    double maxValue() const { return max_; }
    double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }

    /** Bucket index a value lands in. */
    int bucketIndex(double value) const;

    /** Inclusive upper bound of bucket k. */
    double bucketUpper(int bucket) const;

    /**
     * Nearest-rank percentile estimate: the upper bound of the bucket
     * holding the p-th percentile observation, clamped to the true
     * observed maximum. p in [0, 100]; 0 with no observations.
     */
    double percentile(double p) const;

    const std::vector<long long>& bucketCounts() const
    {
        return counts_;
    }
    const HistogramOptions& options() const { return options_; }

  private:
    HistogramOptions options_;
    std::vector<long long> counts_;
    long long count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Named instrument store. counter()/gauge()/histogram() create on
 * first use and return stable references; lookups are mutex-guarded.
 */
class MetricsRegistry
{
  public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name,
                         HistogramOptions options = HistogramOptions{});

    /** All instruments as JSON, in name order per kind. */
    std::string toJson() const;

    /** All instruments as kind,name,field,value CSV rows. */
    std::string toCsv() const;

    bool writeJson(const std::string& path) const;
    bool writeCsv(const std::string& path) const;

    /** Drops every instrument. */
    void clear();

  private:
    mutable std::mutex mu_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * Fixed-interval sample-and-hold series over the virtual clock. The
 * fleet's event loop is piecewise-constant between events, so the
 * driver checks due() as simulated time advances and pushes one row
 * per elapsed interval; rows are stamped with the scheduled sample
 * time, not the event time that triggered them.
 */
class TimeSeriesSampler
{
  public:
    explicit TimeSeriesSampler(double intervalSec = 0.05);

    /** Declares the value columns (the time column is implicit). */
    void setColumns(std::vector<std::string> columns);

    bool hasColumns() const { return !columns_.empty(); }
    double intervalSec() const { return intervalSec_; }

    /** True while the next scheduled sample time is <= nowSec. */
    bool due(double nowSec) const { return nextSec_ <= nowSec; }

    /** The virtual time the next push() will be stamped with. */
    double nextSampleSec() const { return nextSec_; }

    /** Appends one row of column values at the next sample time. */
    void push(const std::vector<double>& values);

    const std::vector<std::string>& columns() const { return columns_; }
    const std::vector<std::vector<double>>& rows() const
    {
        return rows_;
    }

    /** CSV export: timeSec followed by the declared columns. */
    std::string toCsv() const;
    bool writeCsv(const std::string& path) const;

    /** Drops all rows and restarts the sampling clock at zero. */
    void reset();

  private:
    double intervalSec_;
    double nextSec_ = 0.0;
    std::vector<std::string> columns_;
    std::vector<std::vector<double>> rows_; ///< row[0] = timeSec
};

} // namespace obs
} // namespace scar

#endif // SCAR_OBS_METRICS_H
