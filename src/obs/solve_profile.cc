#include "obs/solve_profile.h"

#include <algorithm>

#include "common/table.h"

namespace scar
{
namespace obs
{

namespace
{

double
rate(std::int64_t hits, std::int64_t misses)
{
    const std::int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
}

} // namespace

void
SolveProfile::captureCounters(const SearchCounters& counters)
{
    const auto load = [](const std::atomic<std::int64_t>& a) {
        return a.load(std::memory_order_relaxed);
    };
    soloHits = load(counters.soloHits);
    soloMisses = load(counters.soloMisses);
    pathHits = load(counters.pathHits);
    pathMisses = load(counters.pathMisses);
    windowEvals = load(counters.windowEvals);
    combosPlaced = load(counters.combosPlaced);
    eaGenerations = load(counters.eaGenerations);
    costDbRangeQueries = load(counters.costDbRangeQueries);
    costDbLayerQueries = load(counters.costDbLayerQueries);
}

double
SolveProfile::soloHitRate() const
{
    return rate(soloHits, soloMisses);
}

double
SolveProfile::pathHitRate() const
{
    return rate(pathHits, pathMisses);
}

double
SolveProfile::costDbRangeRate() const
{
    return rate(costDbRangeQueries, costDbLayerQueries);
}

double
SolveProfile::costDbTableHitRate() const
{
    return rate(costDbTableHits, costDbTableMisses);
}

std::string
SolveProfile::summary() const
{
    std::string out = "Solve profile (" + std::to_string(windows) +
                      " windows, " +
                      std::to_string(allocationsSearched) +
                      " allocations searched)\n";

    TextTable phases({"phase", "wall ms", "share %"});
    const double total = std::max(totalMs, 1e-12);
    auto phaseRow = [&](const char* name, double ms) {
        phases.addRow({name, TextTable::num(ms, 3),
                       TextTable::num(100.0 * ms / total, 1)});
    };
    phaseRow("pack (MCM-Reconfig)", packMs);
    phaseRow("provision (PROV)", provisionMs);
    phaseRow("window search (SEG+SCHED)", searchMs);
    phaseRow("other", std::max(
                          0.0, totalMs - packMs - provisionMs - searchMs));
    phases.addSeparator();
    phases.addRow({"total", TextTable::num(totalMs, 3), "100.0"});
    out += phases.render();

    TextTable caches({"cache", "hits", "misses", "hit rate %"});
    auto cacheRow = [&](const char* name, std::int64_t hits,
                        std::int64_t misses) {
        caches.addRow({name, std::to_string(hits),
                       std::to_string(misses),
                       TextTable::num(100.0 * rate(hits, misses), 1)});
    };
    cacheRow("SoloCache", soloHits, soloMisses);
    cacheRow("PathCache", pathHits, pathMisses);
    cacheRow("CostDb model tables", costDbTableHits,
             costDbTableMisses);
    caches.addRow({"CostDb range tables",
                   std::to_string(costDbRangeQueries),
                   std::to_string(costDbLayerQueries) + " per-layer",
                   TextTable::num(100.0 * costDbRangeRate(), 1)});
    out += caches.render();

    out += "windows evaluated: " + std::to_string(windowEvals) +
           ", combos placed: " + std::to_string(combosPlaced);
    if (eaGenerations > 0)
        out += ", EA generations: " + std::to_string(eaGenerations);
    out += "\n";
    return out;
}

} // namespace obs
} // namespace scar
