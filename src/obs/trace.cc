#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace scar
{
namespace obs
{

namespace
{

constexpr double kSecToUs = 1e6;

/**
 * Shortest decimal form that round-trips the double exactly, so the
 * exported JSON is deterministic and free of precision noise.
 */
std::string
formatDouble(double value)
{
    char buf[40];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    return buf;
}

/** Timestamps render with fixed nanosecond precision (ts is in µs). */
std::string
formatTimestamp(double tsUs)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", tsUs);
    return buf;
}

void
appendEscaped(std::string& out, const std::string& text)
{
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendArgs(std::string& out, const std::vector<TraceArg>& args)
{
    out += ",\"args\":{";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i != 0)
            out += ',';
        out += '"';
        appendEscaped(out, args[i].key);
        out += "\":";
        if (args[i].quoted) {
            out += '"';
            appendEscaped(out, args[i].value);
            out += '"';
        } else {
            out += args[i].value;
        }
    }
    out += '}';
}

} // namespace

TraceArg
argText(std::string key, std::string value)
{
    return TraceArg{std::move(key), std::move(value), true};
}

TraceArg
argNum(std::string key, double value)
{
    return TraceArg{std::move(key), formatDouble(value), false};
}

TraceArg
argInt(std::string key, long long value)
{
    return TraceArg{std::move(key), std::to_string(value), false};
}

TraceArg
argBool(std::string key, bool value)
{
    return TraceArg{std::move(key), value ? "true" : "false", false};
}

void
TraceRecorder::push(Event event)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(event));
}

void
TraceRecorder::completeVirtual(int tid, std::string name,
                               std::string cat, double startSec,
                               double durSec, std::vector<TraceArg> args)
{
    Event e;
    e.ph = 'X';
    e.tid = tid;
    e.tsUs = startSec * kSecToUs;
    e.durUs = durSec * kSecToUs;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.args = std::move(args);
    push(std::move(e));
}

void
TraceRecorder::instantVirtual(int tid, std::string name, std::string cat,
                              double atSec, std::vector<TraceArg> args)
{
    Event e;
    e.ph = 'i';
    e.tid = tid;
    e.tsUs = atSec * kSecToUs;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.args = std::move(args);
    push(std::move(e));
}

void
TraceRecorder::counterVirtual(const std::string& name, double atSec,
                              double value)
{
    Event e;
    e.ph = 'C';
    e.tid = 0;
    e.tsUs = atSec * kSecToUs;
    e.name = name;
    e.cat = "metric";
    e.args.push_back(argNum("value", value));
    push(std::move(e));
}

void
TraceRecorder::asyncBeginVirtual(std::uint64_t id, std::string name,
                                 std::string cat, double atSec,
                                 std::vector<TraceArg> args)
{
    Event e;
    e.ph = 'b';
    e.hasId = true;
    e.id = id;
    e.tid = 0;
    e.tsUs = atSec * kSecToUs;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.args = std::move(args);
    push(std::move(e));
}

void
TraceRecorder::asyncInstantVirtual(std::uint64_t id, std::string name,
                                   std::string cat, double atSec,
                                   std::vector<TraceArg> args)
{
    Event e;
    e.ph = 'n';
    e.hasId = true;
    e.id = id;
    e.tid = 0;
    e.tsUs = atSec * kSecToUs;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.args = std::move(args);
    push(std::move(e));
}

void
TraceRecorder::asyncEndVirtual(std::uint64_t id, std::string name,
                               std::string cat, double atSec,
                               std::vector<TraceArg> args)
{
    Event e;
    e.ph = 'e';
    e.hasId = true;
    e.id = id;
    e.tid = 0;
    e.tsUs = atSec * kSecToUs;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.args = std::move(args);
    push(std::move(e));
}

void
TraceRecorder::completeWall(int tid, std::string name, std::string cat,
                            double startUs, double durUs,
                            std::vector<TraceArg> args)
{
    Event e;
    e.ph = 'X';
    e.wall = true;
    e.tid = tid;
    e.tsUs = startUs;
    e.durUs = durUs;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.args = std::move(args);
    push(std::move(e));
}

void
TraceRecorder::setThreadName(int tid, std::string name)
{
    std::lock_guard<std::mutex> lock(mu_);
    threadNames_[tid] = std::move(name);
}

void
TraceRecorder::setWallThreadName(int tid, std::string name)
{
    std::lock_guard<std::mutex> lock(mu_);
    wallThreadNames_[tid] = std::move(name);
}

std::size_t
TraceRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::size_t
TraceRecorder::virtualSize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const Event& e : events_) {
        if (!e.wall)
            ++n;
    }
    return n;
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    threadNames_.clear();
    wallThreadNames_.clear();
}

std::string
TraceRecorder::toJson(bool includeWall) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    out.reserve(events_.size() * 96 + 256);
    out += "{\"traceEvents\":[\n";
    bool first = true;
    auto comma = [&]() {
        if (!first)
            out += ",\n";
        first = false;
    };

    // Metadata first: process and thread track names. std::map keeps
    // the emission order deterministic.
    auto processName = [&](int pid, const char* name) {
        comma();
        out += "{\"ph\":\"M\",\"pid\":";
        out += std::to_string(pid);
        out += ",\"tid\":0,\"name\":\"process_name\",\"args\":"
               "{\"name\":\"";
        out += name;
        out += "\"}}";
    };
    processName(kVirtualPid, "fleet (virtual time)");
    if (includeWall)
        processName(kWallPid, "solver (wall time)");
    auto threadName = [&](int pid, int tid, const std::string& name) {
        comma();
        out += "{\"ph\":\"M\",\"pid\":";
        out += std::to_string(pid);
        out += ",\"tid\":";
        out += std::to_string(tid);
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        appendEscaped(out, name);
        out += "\"}}";
    };
    for (const auto& [tid, name] : threadNames_)
        threadName(kVirtualPid, tid, name);
    if (includeWall) {
        for (const auto& [tid, name] : wallThreadNames_)
            threadName(kWallPid, tid, name);
    }

    for (const Event& e : events_) {
        if (e.wall && !includeWall)
            continue;
        comma();
        out += "{\"ph\":\"";
        out += e.ph;
        out += "\",\"pid\":";
        out += std::to_string(e.wall ? kWallPid : kVirtualPid);
        out += ",\"tid\":";
        out += std::to_string(e.tid);
        out += ",\"ts\":";
        out += formatTimestamp(e.tsUs);
        if (e.ph == 'X') {
            out += ",\"dur\":";
            out += formatTimestamp(e.durUs);
        }
        out += ",\"name\":\"";
        appendEscaped(out, e.name);
        out += "\",\"cat\":\"";
        appendEscaped(out, e.cat);
        out += '"';
        if (e.hasId) {
            out += ",\"id\":";
            out += std::to_string(e.id);
        }
        if (e.ph == 'i')
            out += ",\"s\":\"t\"";
        if (!e.args.empty())
            appendArgs(out, e.args);
        out += '}';
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
TraceRecorder::writeJson(const std::string& path, bool includeWall) const
{
    std::ofstream out(path);
    if (!out.good())
        return false;
    out << toJson(includeWall);
    return out.good();
}

} // namespace obs
} // namespace scar
