/**
 * @file
 * Event tracing for the flight recorder: Chrome trace-event spans and
 * instants over the fleet's virtual clock and the solver's wall clock.
 *
 * The recorder keeps two clock domains apart:
 *
 *  - Virtual events carry fleet-simulation timestamps (seconds of
 *    simulated time). They are recorded only from the single-threaded
 *    discrete-event loop, so their insertion order — and therefore the
 *    exported JSON — is deterministic at any solver thread count.
 *  - Wall events carry real elapsed time (microseconds) measured
 *    inside the solver. Their values vary run to run, so toJson()
 *    excludes them by default; pass includeWall = true for a combined
 *    view when determinism does not matter.
 *
 * The export is standard Chrome trace-event JSON ("traceEvents" array
 * of ph = X/i/C/b/n/e/M records), loadable in Perfetto or
 * chrome://tracing. All methods are thread-safe.
 */

#ifndef SCAR_OBS_TRACE_H
#define SCAR_OBS_TRACE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace scar
{
namespace obs
{

/** One "args" entry of a trace event. */
struct TraceArg
{
    std::string key;
    std::string value; ///< pre-rendered JSON value payload
    bool quoted = false; ///< true renders value as a JSON string
};

/** A string-valued trace-event argument. */
TraceArg argText(std::string key, std::string value);

/** A numeric trace-event argument (shortest round-trip formatting). */
TraceArg argNum(std::string key, double value);

/** An integer trace-event argument. */
TraceArg argInt(std::string key, long long value);

/** A boolean trace-event argument. */
TraceArg argBool(std::string key, bool value);

/** Thread-safe trace-event recorder with a virtual/wall split. */
class TraceRecorder
{
  public:
    /** Trace pid used for virtual-clock (fleet) events. */
    static constexpr int kVirtualPid = 1;
    /** Trace pid used for wall-clock (solver) events. */
    static constexpr int kWallPid = 2;

    /** A complete span [startSec, startSec + durSec] in virtual time. */
    void completeVirtual(int tid, std::string name, std::string cat,
                         double startSec, double durSec,
                         std::vector<TraceArg> args = {});

    /** A thread-scoped instant at `atSec` in virtual time. */
    void instantVirtual(int tid, std::string name, std::string cat,
                        double atSec, std::vector<TraceArg> args = {});

    /** A counter sample (ph = C) at `atSec` in virtual time. */
    void counterVirtual(const std::string& name, double atSec,
                        double value);

    /** Opens an async span (ph = b) keyed by `id` in virtual time. */
    void asyncBeginVirtual(std::uint64_t id, std::string name,
                           std::string cat, double atSec,
                           std::vector<TraceArg> args = {});

    /** An instant (ph = n) inside the async span keyed by `id`. */
    void asyncInstantVirtual(std::uint64_t id, std::string name,
                             std::string cat, double atSec,
                             std::vector<TraceArg> args = {});

    /** Closes the async span (ph = e) keyed by `id`. */
    void asyncEndVirtual(std::uint64_t id, std::string name,
                         std::string cat, double atSec,
                         std::vector<TraceArg> args = {});

    /** A complete span on the wall clock (timestamps in microseconds). */
    void completeWall(int tid, std::string name, std::string cat,
                      double startUs, double durUs,
                      std::vector<TraceArg> args = {});

    /** Names a virtual-domain thread track (ph = M metadata). */
    void setThreadName(int tid, std::string name);

    /** Names a wall-domain thread track (ph = M metadata). */
    void setWallThreadName(int tid, std::string name);

    /** Number of recorded events (metadata names excluded). */
    std::size_t size() const;

    /** Number of recorded virtual-domain events. */
    std::size_t virtualSize() const;

    /** Drops all recorded events and track names. */
    void clear();

    /**
     * Renders Chrome trace-event JSON. Wall-clock events are excluded
     * unless `includeWall` is set, keeping the default export
     * byte-identical across solver thread counts.
     */
    std::string toJson(bool includeWall = false) const;

    /** Writes toJson() to a file; returns false on I/O failure. */
    bool writeJson(const std::string& path,
                   bool includeWall = false) const;

  private:
    struct Event
    {
        char ph = 'X';
        bool wall = false;
        bool hasId = false;
        int tid = 0;
        std::uint64_t id = 0;
        double tsUs = 0.0;
        double durUs = 0.0;
        std::string name;
        std::string cat;
        std::vector<TraceArg> args;
    };

    void push(Event event);

    mutable std::mutex mu_;
    std::vector<Event> events_;
    std::map<int, std::string> threadNames_;     ///< virtual tracks
    std::map<int, std::string> wallThreadNames_; ///< wall tracks
};

} // namespace obs
} // namespace scar

#endif // SCAR_OBS_TRACE_H
