#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/error.h"

namespace scar
{
namespace obs
{

namespace
{

/** Shortest decimal form that round-trips the double exactly. */
std::string
formatDouble(double value)
{
    if (std::isinf(value))
        return value > 0 ? "1e999" : "-1e999";
    char buf[40];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    return buf;
}

} // namespace

Histogram::Histogram(HistogramOptions options) : options_(options)
{
    SCAR_REQUIRE(options_.firstBucketUpper > 0.0,
                 "first bucket upper bound must be positive");
    SCAR_REQUIRE(options_.growth > 1.0,
                 "bucket growth factor must exceed 1");
    SCAR_REQUIRE(options_.buckets >= 1, "need at least one bucket");
    counts_.assign(options_.buckets, 0);
}

int
Histogram::bucketIndex(double value) const
{
    // Walk the geometric bounds instead of taking logs: exact at the
    // bucket boundaries and cheap for the bucket counts in use.
    int idx = 0;
    double upper = options_.firstBucketUpper;
    while (value > upper && idx < options_.buckets - 1) {
        upper *= options_.growth;
        ++idx;
    }
    return idx;
}

double
Histogram::bucketUpper(int bucket) const
{
    double upper = options_.firstBucketUpper;
    for (int k = 0; k < bucket; ++k)
        upper *= options_.growth;
    return upper;
}

void
Histogram::record(double value)
{
    ++counts_[bucketIndex(value)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    const long long rank = std::max<long long>(
        1, static_cast<long long>(std::ceil(p / 100.0 * count_)));
    long long seen = 0;
    for (int k = 0; k < options_.buckets; ++k) {
        seen += counts_[k];
        if (seen >= rank)
            return std::min(bucketUpper(k), max_);
    }
    return max_;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_[name];
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[name];
}

Histogram&
MetricsRegistry::histogram(const std::string& name,
                           HistogramOptions options)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(options)).first;
    return it->second;
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    out += "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": " + std::to_string(c.value());
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": " + formatDouble(g.value());
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"count\": " +
               std::to_string(h.count()) +
               ", \"sum\": " + formatDouble(h.sum()) +
               ", \"min\": " +
               formatDouble(h.count() ? h.minValue() : 0.0) +
               ", \"max\": " +
               formatDouble(h.count() ? h.maxValue() : 0.0) +
               ", \"p50\": " + formatDouble(h.percentile(50.0)) +
               ", \"p95\": " + formatDouble(h.percentile(95.0)) +
               ", \"p99\": " + formatDouble(h.percentile(99.0)) + "}";
    }
    out += "\n  }\n}\n";
    return out;
}

std::string
MetricsRegistry::toCsv() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "kind,name,field,value\n";
    for (const auto& [name, c] : counters_) {
        out += "counter," + name + ",value," +
               std::to_string(c.value()) + "\n";
    }
    for (const auto& [name, g] : gauges_) {
        out += "gauge," + name + ",value," + formatDouble(g.value()) +
               "\n";
    }
    for (const auto& [name, h] : histograms_) {
        auto row = [&](const char* field, const std::string& value) {
            out += "histogram," + name + "," + field + "," + value +
                   "\n";
        };
        row("count", std::to_string(h.count()));
        row("sum", formatDouble(h.sum()));
        row("min", formatDouble(h.count() ? h.minValue() : 0.0));
        row("max", formatDouble(h.count() ? h.maxValue() : 0.0));
        row("p50", formatDouble(h.percentile(50.0)));
        row("p95", formatDouble(h.percentile(95.0)));
        row("p99", formatDouble(h.percentile(99.0)));
    }
    return out;
}

bool
MetricsRegistry::writeJson(const std::string& path) const
{
    std::ofstream out(path);
    if (!out.good())
        return false;
    out << toJson();
    return out.good();
}

bool
MetricsRegistry::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out.good())
        return false;
    out << toCsv();
    return out.good();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

TimeSeriesSampler::TimeSeriesSampler(double intervalSec)
    : intervalSec_(intervalSec)
{
    SCAR_REQUIRE(intervalSec_ > 0.0,
                 "sampling interval must be positive");
}

void
TimeSeriesSampler::setColumns(std::vector<std::string> columns)
{
    columns_ = std::move(columns);
}

void
TimeSeriesSampler::push(const std::vector<double>& values)
{
    SCAR_REQUIRE(values.size() == columns_.size(),
                 "sample row arity mismatch: ", values.size(), " vs ",
                 columns_.size(), " columns");
    std::vector<double> row;
    row.reserve(values.size() + 1);
    row.push_back(nextSec_);
    row.insert(row.end(), values.begin(), values.end());
    rows_.push_back(std::move(row));
    nextSec_ += intervalSec_;
}

std::string
TimeSeriesSampler::toCsv() const
{
    std::string out = "timeSec";
    for (const std::string& col : columns_)
        out += "," + col;
    out += "\n";
    for (const std::vector<double>& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i != 0)
                out += ',';
            out += formatDouble(row[i]);
        }
        out += "\n";
    }
    return out;
}

bool
TimeSeriesSampler::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out.good())
        return false;
    out << toCsv();
    return out.good();
}

void
TimeSeriesSampler::reset()
{
    rows_.clear();
    nextSec_ = 0.0;
}

} // namespace obs
} // namespace scar
