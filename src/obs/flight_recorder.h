/**
 * @file
 * FlightRecorder: the one handle the runtime carries for all
 * observability — a trace recorder, a metrics registry, and a
 * virtual-time sampler, written out together.
 *
 * Enabling is explicit: construct a recorder and hand its pointer to
 * FleetOptions::recorder (or call fromEnv() to honor SCAR_TRACE).
 * A null pointer is the disabled state; every hook in the runtime is
 * guarded by that null check, so a disabled run does no observability
 * work at all and stays byte-identical to an uninstrumented build
 * (golden determinism contract, docs/ARCHITECTURE.md).
 *
 * One recorder records one run: the fleet resets the sampler and
 * restarts the trace clock at virtual t = 0 on run().
 */

#ifndef SCAR_OBS_FLIGHT_RECORDER_H
#define SCAR_OBS_FLIGHT_RECORDER_H

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace scar
{
namespace obs
{

/** Output and sampling configuration of a FlightRecorder. */
struct FlightRecorderOptions
{
    /** Directory writeAll() creates and writes into. */
    std::string outDir = "obs";
    /** Virtual-time sampling interval for the time series. */
    double sampleIntervalSec = 0.05;
    /**
     * Include wall-clock solver events in the exported trace. Off by
     * default: wall events vary run to run, and the default export is
     * part of the determinism contract.
     */
    bool wallEventsInTrace = false;
};

/** Bundled trace + metrics + sampler with file export. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(
        FlightRecorderOptions options = FlightRecorderOptions{});

    /**
     * Environment-driven construction: returns a recorder when
     * SCAR_TRACE is set to anything but "" or "0", else nullptr.
     * SCAR_TRACE_DIR overrides the output directory and
     * SCAR_TRACE_SAMPLE_SEC the sampling interval.
     */
    static std::unique_ptr<FlightRecorder> fromEnv();

    TraceRecorder& trace() { return trace_; }
    const TraceRecorder& trace() const { return trace_; }
    MetricsRegistry& metrics() { return metrics_; }
    const MetricsRegistry& metrics() const { return metrics_; }
    TimeSeriesSampler& samples() { return samples_; }
    const TimeSeriesSampler& samples() const { return samples_; }

    const FlightRecorderOptions& options() const { return options_; }

    /**
     * Creates options().outDir and writes trace.json, metrics.json,
     * metrics.csv, and samples.csv into it.
     * @return false if the directory or any file could not be written
     */
    bool writeAll() const;

  private:
    FlightRecorderOptions options_;
    TraceRecorder trace_;
    MetricsRegistry metrics_;
    TimeSeriesSampler samples_;
};

} // namespace obs
} // namespace scar

#endif // SCAR_OBS_FLIGHT_RECORDER_H
