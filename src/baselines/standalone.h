/**
 * @file
 * Standalone baseline (paper Section V-A): every model runs entirely
 * on a single accelerator chiplet; models execute concurrently on
 * distinct chiplets. Used with homogeneous MCMs ("Standalone (Shi)" /
 * "Standalone (NVD)").
 */

#ifndef SCAR_BASELINES_STANDALONE_H
#define SCAR_BASELINES_STANDALONE_H

#include "sched/scar.h"

namespace scar
{

/**
 * Schedules each model onto one chiplet (models ordered by expected
 * compute take the chiplets closest to a memory interface) and
 * evaluates the single resulting window.
 * Requires numModels <= numChiplets.
 */
ScheduleResult scheduleStandalone(const Scenario& scenario, const Mcm& mcm,
                                  EvaluatorOptions evalOpts =
                                      EvaluatorOptions{});

} // namespace scar

#endif // SCAR_BASELINES_STANDALONE_H
