#include "baselines/nn_baton.h"

#include <algorithm>

#include "common/error.h"
#include "common/units.h"
#include "sched/sched_tree.h"

namespace scar
{

namespace
{

/** Splits [0, n) into `parts` near-equal contiguous ranges. */
std::vector<LayerRange>
balancedRanges(int n, int parts)
{
    std::vector<LayerRange> ranges;
    int start = 0;
    for (int p = 0; p < parts; ++p) {
        const int count = n / parts + (p < n % parts ? 1 : 0);
        if (count > 0) {
            ranges.push_back(LayerRange{start, start + count - 1});
            start += count;
        }
    }
    return ranges;
}

/** Max per-segment weight bytes for a balanced split into `parts`. */
double
maxSegmentWeights(const Model& model, int parts)
{
    double worst = 0.0;
    for (const LayerRange& r : balancedRanges(model.numLayers(), parts)) {
        double bytes = 0.0;
        for (int l = r.first; l <= r.last; ++l)
            bytes += model.layers[l].weightBytes();
        worst = std::max(worst, bytes);
    }
    return worst;
}

} // namespace

ScheduleResult
scheduleNnBaton(const Scenario& scenario, const Mcm& mcm, int startChiplet,
                EvaluatorOptions evalOpts)
{
    SCAR_REQUIRE(startChiplet >= 0 && startChiplet < mcm.numChiplets(),
                 "bad start chiplet ", startChiplet);
    const CostDb db(scenario, mcm);
    const WindowEvaluator evaluator(db, evalOpts);
    const double l2 = mcm.chiplet(startChiplet).spec.l2Bytes;

    ScheduleResult result;
    double cycles = 0.0;
    double energyNj = 0.0;

    // One window per model, executed back to back (sequential).
    for (int m = 0; m < scenario.numModels(); ++m) {
        const Model& model = scenario.models[m];

        // Partition only on insufficient resources: grow the chiplet
        // count until each balanced segment's weights fit in L2 (or
        // the package runs out of chiplets).
        int parts = 1;
        while (parts < mcm.numChiplets() &&
               maxSegmentWeights(model, parts) > l2) {
            ++parts;
        }
        parts = std::min(parts, model.numLayers());

        // The model occupies a path starting at the fixed chiplet.
        std::vector<bool> blocked(mcm.numChiplets(), false);
        auto paths = enumeratePaths(mcm.topology(), startChiplet, parts,
                                    blocked, 1);
        SCAR_REQUIRE(!paths.empty(), "no path of length ", parts,
                     " from chiplet ", startChiplet);

        WindowPlacement placement;
        ModelPlacement mp;
        mp.modelIdx = m;
        const auto ranges = balancedRanges(model.numLayers(), parts);
        for (std::size_t k = 0; k < ranges.size(); ++k)
            mp.segments.push_back(PlacedSegment{ranges[k],
                                                paths.front()[k]});
        placement.models.push_back(std::move(mp));

        ScheduledWindow window;
        window.assignment.perModel.resize(scenario.numModels());
        window.assignment.perModel[m] =
            LayerRange{0, model.numLayers() - 1};
        window.nodes.assign(scenario.numModels(), 0);
        window.nodes[m] = parts;
        window.cost = evaluator.evaluate(placement);
        window.placement = std::move(placement);

        cycles += window.cost.latencyCycles;
        energyNj += window.cost.energyNj;
        result.windows.push_back(std::move(window));
    }

    result.metrics = Metrics{cyclesToSeconds(cycles),
                             njToJoules(energyNj)};
    result.candidates.push_back(result.metrics);
    return result;
}

} // namespace scar
