/**
 * @file
 * NN-baton-style baseline scheduler (paper Sections II-C and V).
 *
 * NN-baton [68] targets single-model workloads: a model occupies its
 * starting chiplet and is partitioned across additional chiplets only
 * when a single chiplet's resources do not suffice. It is agnostic to
 * heterogeneous MCM composition. For multi-model workloads it runs the
 * models sequentially from the same starting chiplet (Figure 2, B1).
 */

#ifndef SCAR_BASELINES_NN_BATON_H
#define SCAR_BASELINES_NN_BATON_H

#include "sched/scar.h"

namespace scar
{

/**
 * Schedules the scenario NN-baton style: one time window per model,
 * executed sequentially. A model spreads over the minimum number of
 * chiplets (a path from the starting chiplet) such that every
 * segment's weight working set fits the chiplet L2.
 * @param startChiplet the fixed starting chiplet (default 0)
 */
ScheduleResult scheduleNnBaton(const Scenario& scenario, const Mcm& mcm,
                               int startChiplet = 0,
                               EvaluatorOptions evalOpts =
                                   EvaluatorOptions{});

} // namespace scar

#endif // SCAR_BASELINES_NN_BATON_H
