#include "baselines/standalone.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/units.h"
#include "sched/greedy_packing.h"

namespace scar
{

ScheduleResult
scheduleStandalone(const Scenario& scenario, const Mcm& mcm,
                   EvaluatorOptions evalOpts)
{
    SCAR_REQUIRE(scenario.numModels() <= mcm.numChiplets(),
                 "standalone needs one chiplet per model: ",
                 scenario.numModels(), " models vs ", mcm.numChiplets(),
                 " chiplets");

    const CostDb db(scenario, mcm);
    const WindowEvaluator evaluator(db, evalOpts);

    // Chiplets sorted by proximity to a memory interface; the most
    // compute-hungry models take the closest ports.
    std::vector<int> chipletOrder(mcm.numChiplets());
    std::iota(chipletOrder.begin(), chipletOrder.end(), 0);
    std::sort(chipletOrder.begin(), chipletOrder.end(),
              [&](int a, int b) {
                  return mcm.hopsToMem(a) < mcm.hopsToMem(b);
              });

    std::vector<int> modelOrder(scenario.numModels());
    std::iota(modelOrder.begin(), modelOrder.end(), 0);
    std::sort(modelOrder.begin(), modelOrder.end(), [&](int a, int b) {
        return expectedModelCycles(db, a) > expectedModelCycles(db, b);
    });

    WindowPlacement placement;
    for (int i = 0; i < scenario.numModels(); ++i) {
        const int m = modelOrder[i];
        ModelPlacement mp;
        mp.modelIdx = m;
        mp.segments.push_back(PlacedSegment{
            LayerRange{0, scenario.models[m].numLayers() - 1},
            chipletOrder[i]});
        placement.models.push_back(std::move(mp));
    }

    ScheduledWindow window;
    window.assignment.perModel.resize(scenario.numModels());
    window.nodes.assign(scenario.numModels(), 1);
    for (int m = 0; m < scenario.numModels(); ++m) {
        window.assignment.perModel[m] =
            LayerRange{0, scenario.models[m].numLayers() - 1};
    }
    window.cost = evaluator.evaluate(placement);
    window.placement = std::move(placement);

    ScheduleResult result;
    result.metrics = Metrics{cyclesToSeconds(window.cost.latencyCycles),
                             njToJoules(window.cost.energyNj)};
    result.candidates.push_back(result.metrics);
    result.windows.push_back(std::move(window));
    return result;
}

} // namespace scar
