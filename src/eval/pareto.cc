#include "eval/pareto.h"

#include <algorithm>
#include <limits>

namespace scar
{

bool
dominates(const Metrics& a, const Metrics& b)
{
    const bool noWorse = a.latencySec <= b.latencySec &&
                         a.energyJ <= b.energyJ;
    const bool better = a.latencySec < b.latencySec ||
                        a.energyJ < b.energyJ;
    return noWorse && better;
}

std::vector<Metrics>
paretoFront(const std::vector<Metrics>& points)
{
    std::vector<Metrics> sorted = points;
    std::sort(sorted.begin(), sorted.end(),
              [](const Metrics& a, const Metrics& b) {
                  if (a.latencySec != b.latencySec)
                      return a.latencySec < b.latencySec;
                  return a.energyJ < b.energyJ;
              });
    std::vector<Metrics> front;
    double bestEnergy = std::numeric_limits<double>::infinity();
    for (const Metrics& p : sorted) {
        if (p.energyJ < bestEnergy) {
            front.push_back(p);
            bestEnergy = p.energyJ;
        }
    }
    return front;
}

} // namespace scar
