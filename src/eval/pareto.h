/**
 * @file
 * Pareto-front extraction over (latency, energy) points, used by the
 * Figure 8/11/13 experiment harnesses.
 */

#ifndef SCAR_EVAL_PARETO_H
#define SCAR_EVAL_PARETO_H

#include <vector>

#include "eval/metrics.h"

namespace scar
{

/** True when `a` is no worse than `b` in both axes and better in one. */
bool dominates(const Metrics& a, const Metrics& b);

/**
 * Returns the non-dominated subset (minimizing latency and energy),
 * sorted by ascending latency.
 */
std::vector<Metrics> paretoFront(const std::vector<Metrics>& points);

} // namespace scar

#endif // SCAR_EVAL_PARETO_H
