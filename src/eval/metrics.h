/**
 * @file
 * Optimization metrics (paper Definition 10 and Section IV-E).
 *
 * The scheduler minimizes a user-selected objective: latency, energy,
 * EDP, or a custom function of the two ("Latency Search", "Energy
 * Search", "EDP Search" in the evaluation).
 */

#ifndef SCAR_EVAL_METRICS_H
#define SCAR_EVAL_METRICS_H

#include <functional>

namespace scar
{

/** Built-in optimization targets. */
enum class OptTarget { Latency, Energy, Edp };

/** Display name of a target ("Latency" / "Energy" / "EDP"). */
constexpr const char*
optTargetName(OptTarget target)
{
    switch (target) {
      case OptTarget::Latency: return "Latency";
      case OptTarget::Energy:  return "Energy";
      case OptTarget::Edp:     return "EDP";
    }
    return "?";
}

/** End-to-end evaluation of a schedule in reporting units. */
struct Metrics
{
    double latencySec = 0.0;
    double energyJ = 0.0;

    /** Energy-delay product in J*s. */
    double edp() const { return latencySec * energyJ; }

    /** Scalar value of the chosen target (lower is better). */
    double
    value(OptTarget target) const
    {
        switch (target) {
          case OptTarget::Latency: return latencySec;
          case OptTarget::Energy:  return energyJ;
          case OptTarget::Edp:     return edp();
        }
        return edp();
    }
};

/**
 * User-defined scoring function (lower is better). When set in the
 * scheduler options it overrides the built-in target.
 */
using CustomScoreFn = std::function<double(const Metrics&)>;

} // namespace scar

#endif // SCAR_EVAL_METRICS_H
