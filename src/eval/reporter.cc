#include "eval/reporter.h"

#include <sstream>

#include "common/table.h"
#include "common/units.h"

namespace scar
{

std::string
describeSchedule(const Scenario& scenario, const Mcm& mcm,
                 const ScheduleResult& result)
{
    std::ostringstream out;
    out << "Schedule for " << scenario.name << " on " << mcm.name()
        << "\n";
    double cumulative = 0.0;
    for (std::size_t w = 0; w < result.windows.size(); ++w) {
        const ScheduledWindow& sw = result.windows[w];
        cumulative += cyclesToSeconds(sw.cost.latencyCycles);
        out << "Window " << w << " (cumulative "
            << TextTable::num(cumulative, 3) << " s):\n";
        for (const ModelPlacement& mp : sw.placement.models) {
            const Model& model = scenario.models[mp.modelIdx];
            out << "  " << model.name << ":";
            for (const PlacedSegment& seg : mp.segments) {
                const Chiplet& c = mcm.chiplet(seg.chiplet);
                out << "  L[" << seg.range.first << ".."
                    << seg.range.last << "]->chpl" << seg.chiplet << "("
                    << dataflowName(c.spec.dataflow) << ")";
            }
            out << "\n";
        }
    }
    out << "Totals: latency " << TextTable::num(result.metrics.latencySec, 4)
        << " s, energy " << TextTable::num(result.metrics.energyJ, 4)
        << " J, EDP " << TextTable::num(result.metrics.edp(), 4)
        << " J*s\n";
    return out.str();
}

std::string
describeWindowBreakdown(const Scenario& scenario,
                        const ScheduleResult& result)
{
    const std::size_t numWindows = result.windows.size();
    std::vector<std::string> headers{"Model"};
    for (std::size_t w = 0; w < numWindows; ++w)
        headers.push_back("W" + std::to_string(w));
    headers.push_back("ideal tot");
    headers.push_back("#layers");
    TextTable table(std::move(headers));

    for (int m = 0; m < scenario.numModels(); ++m) {
        std::vector<std::string> row{scenario.models[m].name};
        double ideal = 0.0;
        int layers = 0;
        for (const ScheduledWindow& sw : result.windows) {
            double lat = 0.0;
            for (std::size_t i = 0; i < sw.placement.models.size(); ++i) {
                if (sw.placement.models[i].modelIdx == m) {
                    lat = sw.cost.perModel[i].latencyCycles;
                    break;
                }
            }
            ideal += cyclesToSeconds(lat);
            layers += sw.assignment.perModel[m].size();
            row.push_back(TextTable::num(cyclesToSeconds(lat), 3));
        }
        row.push_back(TextTable::num(ideal, 3));
        row.push_back(std::to_string(layers));
        table.addRow(std::move(row));
    }

    table.addSeparator();
    std::vector<std::string> winRow{"Window"};
    double total = 0.0;
    for (const ScheduledWindow& sw : result.windows) {
        winRow.push_back(
            TextTable::num(cyclesToSeconds(sw.cost.latencyCycles), 3));
        total += cyclesToSeconds(sw.cost.latencyCycles);
    }
    winRow.push_back(TextTable::num(total, 3));
    winRow.push_back(std::to_string(scenario.totalLayers()));
    table.addRow(std::move(winRow));

    return table.render();
}

std::string
describeServingReport(const runtime::ServingReport& report)
{
    std::ostringstream out;
    out << "Serving report (" << report.offered << " offered, "
        << report.completed << " completed, " << report.dispatches
        << " dispatches over "
        << TextTable::num(report.horizonSec, 3) << " s)\n";

    TextTable table({"Metric", "Value"});
    table.addRow({"Throughput (req/s)",
                  TextTable::num(report.throughputRps, 2)});
    table.addRow({"Latency mean (s)",
                  TextTable::num(report.meanLatencySec, 4)});
    table.addRow({"Latency p50 (s)",
                  TextTable::num(report.p50LatencySec, 4)});
    table.addRow({"Latency p95 (s)",
                  TextTable::num(report.p95LatencySec, 4)});
    table.addRow({"Latency p99 (s)",
                  TextTable::num(report.p99LatencySec, 4)});
    table.addRow({"Latency max (s)",
                  TextTable::num(report.maxLatencySec, 4)});
    table.addRow({"SLO violations",
                  std::to_string(report.sloViolations) + " (" +
                      TextTable::num(report.sloViolationRate * 100.0,
                                     2) +
                      "%)"});
    table.addSeparator();
    table.addRow({"Schedule searches (cache misses)",
                  std::to_string(report.cache.misses)});
    table.addRow({"Schedule cache hits",
                  std::to_string(report.cache.hits)});
    table.addRow({"Schedule cache hit rate",
                  TextTable::num(report.cache.hitRate() * 100.0, 2) +
                      "%"});
    table.addRow({"Unique mixes scheduled",
                  std::to_string(report.uniqueMixes)});
    table.addRow({"Batch occupancy",
                  TextTable::num(report.batchOccupancy * 100.0, 1) +
                      "%"});
    table.addSeparator();
    table.addRow({"Solve stall (s)",
                  TextTable::num(report.solveStallSec, 4)});
    table.addRow({"Switch overhead (s)",
                  TextTable::num(report.switchOverheadSec, 4)});
    table.addRow({"Contested routes",
                  std::to_string(report.contestedRoutes)});
    table.addRow({"Cost-optimal routes",
                  std::to_string(report.costOptimalRoutes) + " (" +
                      TextTable::num(
                          report.costOptimalRouteFrac * 100.0, 1) +
                      "%)"});
    // Preemption rows (and the per-shard column below) only render
    // when the feature was on: a run with preemption disabled must
    // report byte-identically to the non-preemptive runtime.
    if (report.preemptionEnabled) {
        table.addSeparator();
        table.addRow({"Boundary preemptions",
                      std::to_string(report.preemptions)});
        table.addRow({"Resume overhead (s)",
                      TextTable::num(report.resumeOverheadSec, 4)});
        table.addRow({"Preempted requests",
                      std::to_string(report.preemptedRequests)});
        table.addRow({"Preempted p99 (s)",
                      TextTable::num(report.preemptedP99Sec, 4)});
    }
    // Autoregressive rows render only when the catalog served an LLM
    // entry: non-LLM runs must report byte-identically to the
    // pre-LLM format.
    if (report.llmEnabled) {
        table.addSeparator();
        table.addRow({"LLM requests",
                      std::to_string(report.llmRequests)});
        table.addRow({"Decode rounds",
                      std::to_string(report.llmDecodeRounds)});
        table.addRow({"Continuous-batching joins",
                      std::to_string(report.llmJoins)});
        table.addRow({"Decode batch mean",
                      TextTable::num(report.llmMeanDecodeBatch, 2)});
        table.addRow({"TTFT mean (s)",
                      TextTable::num(report.meanTtftSec, 4)});
        table.addRow({"TTFT p99 (s)",
                      TextTable::num(report.p99TtftSec, 4)});
        table.addRow({"TPOT mean (s)",
                      TextTable::num(report.meanTpotSec, 4)});
        table.addRow({"Gen tokens/s",
                      TextTable::num(report.genTokensPerSec, 1)});
    }
    // Epoch-engine rows render only for a non-default engineThreads:
    // the statistics are identical at every setting (the epoch path
    // runs inline at 1 too), so gating on the knob keeps default
    // reports byte-identical to the pre-engine format while letting
    // serial-vs-parallel determinism gates compare the stats by
    // normalizing the field on both sides.
    if (report.engineThreads != 1) {
        table.addSeparator();
        table.addRow({"Engine threads",
                      std::to_string(report.engineThreads)});
        table.addRow({"Epochs", std::to_string(report.epochs)});
        table.addRow(
            {"Epoch ticks",
             std::to_string(report.epochTicks) + " (" +
                 TextTable::num(
                     report.epochs > 0
                         ? static_cast<double>(report.epochTicks) /
                               static_cast<double>(report.epochs)
                         : 0.0,
                     2) +
                 "/epoch)"});
        table.addRow(
            {"Commit batches",
             std::to_string(report.epochCommitBatches) + " (mean " +
                 TextTable::num(
                     report.epochCommitBatches > 0
                         ? static_cast<double>(report.epochTicks) /
                               static_cast<double>(
                                   report.epochCommitBatches)
                         : 0.0,
                     2) +
                 ", max " +
                 std::to_string(report.epochMaxCommitBatch) + ")"});
        table.addRow({"Absorbed arrivals",
                      std::to_string(report.epochAbsorbedArrivals)});
        table.addRow(
            {"Epoch caps (end/park/arr/timer/spec/urg/join/rel)",
             std::to_string(report.epochCapReplayEnd) + "/" +
                 std::to_string(report.epochCapParked) + "/" +
                 std::to_string(report.epochCapArrival) + "/" +
                 std::to_string(report.epochCapTimer) + "/" +
                 std::to_string(report.epochCapSpeculation) + "/" +
                 std::to_string(report.epochCapUrgency) + "/" +
                 std::to_string(report.epochCapJoin) + "/" +
                 std::to_string(report.epochCapRelease)});
    }
    out << table.render();

    // Queue-wait vs execution split per model: which component an SLO
    // miss is charged to (batching/routing vs schedule/preemption).
    // Only the model-aware summarize fills perModel, so reports built
    // through the legacy path render unchanged.
    if (!report.perModel.empty()) {
        out << "\nPer-model latency breakdown ("
            << report.perModel.size() << " model"
            << (report.perModel.size() == 1 ? "" : "s")
            << ", queue-wait vs execution)\n";
        TextTable modelTable(
            {"Model", "Completed", "SLO miss", "Mean (s)", "p50 (s)",
             "p95 (s)", "p99 (s)", "Queue p50/p95/p99 (s)",
             "Exec p50/p95/p99 (s)"});
        for (const runtime::ModelServingBreakdown& mb :
             report.perModel) {
            modelTable.addRow(
                {mb.name, std::to_string(mb.completed),
                 std::to_string(mb.sloViolations),
                 TextTable::num(mb.meanLatencySec, 4),
                 TextTable::num(mb.p50LatencySec, 4),
                 TextTable::num(mb.p95LatencySec, 4),
                 TextTable::num(mb.p99LatencySec, 4),
                 TextTable::num(mb.p50QueueSec, 4) + "/" +
                     TextTable::num(mb.p95QueueSec, 4) + "/" +
                     TextTable::num(mb.p99QueueSec, 4),
                 TextTable::num(mb.p50ExecSec, 4) + "/" +
                     TextTable::num(mb.p95ExecSec, 4) + "/" +
                     TextTable::num(mb.p99ExecSec, 4)});
        }
        out << modelTable.render();
    }

    if (!report.shards.empty()) {
        out << "\nPer-shard utilization ("
            << report.shards.size() << " package"
            << (report.shards.size() == 1 ? "" : "s") << ")\n";
        std::vector<std::string> shardHeaders{
            "Shard", "Template", "Dispatches", "Busy (s)",
            "Utilization", "Solve stall (s)", "Switch ovh (s)"};
        if (report.preemptionEnabled)
            shardHeaders.push_back("Preempt");
        TextTable shardTable(std::move(shardHeaders));
        for (const runtime::ShardReport& shard : report.shards) {
            std::vector<std::string> row{
                std::to_string(shard.shardIdx), shard.mcmName,
                std::to_string(shard.dispatches),
                TextTable::num(shard.busySec, 3),
                TextTable::num(shard.utilization * 100.0, 1) + "%",
                TextTable::num(shard.solveStallSec, 4),
                TextTable::num(shard.switchOverheadSec, 4)};
            if (report.preemptionEnabled)
                row.push_back(std::to_string(shard.preemptions));
            shardTable.addRow(std::move(row));
        }
        out << shardTable.render();
    }
    return out.str();
}

} // namespace scar
