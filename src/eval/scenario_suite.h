/**
 * @file
 * The ten multi-model workload scenarios of Table III, plus the
 * motivational mini-workload of Figure 2.
 */

#ifndef SCAR_EVAL_SCENARIO_SUITE_H
#define SCAR_EVAL_SCENARIO_SUITE_H

#include "workload/scenario.h"

namespace scar
{
namespace suite
{

/**
 * Datacenter scenarios (MLPerf-derived, Table III rows 1-5).
 * @param idx scenario number 1..5
 */
Scenario datacenterScenario(int idx);

/**
 * AR/VR scenarios (XRBench-derived, Table III rows 6-10).
 * @param idx scenario number 6..10
 */
Scenario arvrScenario(int idx);

/** Any Table III scenario by its paper number (1..10). */
Scenario byIndex(int idx);

/** Paper label for a scenario number, e.g. "Sc4 (LMs+Seg+Image)". */
const char* scenarioLabel(int idx);

/**
 * The Figure 2 motivational workload: three convolutions from the
 * second ResNet-50 block plus the first GPT feed-forward layer.
 */
Scenario motivational();

} // namespace suite
} // namespace scar

#endif // SCAR_EVAL_SCENARIO_SUITE_H
