#include "eval/scenario_suite.h"

#include "common/error.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace suite
{

Scenario
datacenterScenario(int idx)
{
    Scenario sc;
    switch (idx) {
      case 1:
        sc.name = "Sc1";
        sc.models = {zoo::gptL(1), zoo::bertLarge(3)};
        break;
      case 2:
        sc.name = "Sc2";
        sc.models = {zoo::gptL(1), zoo::bertLarge(3), zoo::resNet50(1)};
        break;
      case 3:
        sc.name = "Sc3";
        sc.models = {zoo::gptL(1), zoo::bertLarge(3), zoo::resNet50(32)};
        break;
      case 4:
        sc.name = "Sc4";
        sc.models = {zoo::gptL(8), zoo::bertLarge(24), zoo::uNet(1),
                     zoo::resNet50(32)};
        break;
      case 5:
        sc.name = "Sc5";
        sc.models = {zoo::gptL(8),     zoo::bertLarge(24),
                     zoo::bertBase(24), zoo::uNet(1),
                     zoo::resNet50(32), zoo::googleNet(32)};
        break;
      default:
        fatal("datacenter scenario index must be 1..5, got ", idx);
    }
    sc.finalize();
    return sc;
}

Scenario
arvrScenario(int idx)
{
    Scenario sc;
    switch (idx) {
      case 6:
        sc.name = "Sc6";
        sc.models = {zoo::d2go(10), zoo::planeRcnn(15), zoo::midas(30),
                     zoo::emformer(3), zoo::hrvit(10)};
        break;
      case 7:
        sc.name = "Sc7";
        sc.models = {zoo::planeRcnn(15), zoo::handSP(45), zoo::midas(30)};
        break;
      case 8:
        sc.name = "Sc8";
        sc.models = {zoo::d2go(30), zoo::emformer(3)};
        break;
      case 9:
        sc.name = "Sc9";
        sc.models = {zoo::eyeCod(60), zoo::handSP(30), zoo::sp2Dense(30)};
        break;
      case 10:
        sc.name = "Sc10";
        sc.models = {zoo::eyeCod(60), zoo::handSP(45)};
        break;
      default:
        fatal("AR/VR scenario index must be 6..10, got ", idx);
    }
    sc.finalize();
    return sc;
}

Scenario
byIndex(int idx)
{
    if (idx >= 1 && idx <= 5)
        return datacenterScenario(idx);
    if (idx >= 6 && idx <= 10)
        return arvrScenario(idx);
    fatal("scenario index must be 1..10, got ", idx);
}

const char*
scenarioLabel(int idx)
{
    switch (idx) {
      case 1:  return "Sc1 (LMs)";
      case 2:  return "Sc2 (LMs+Image)";
      case 3:  return "Sc3 (LMs+Image b32)";
      case 4:  return "Sc4 (LMs+Seg+Image)";
      case 5:  return "Sc5 (LMs+Seg+Images)";
      case 6:  return "Sc6 (AR Assistant)";
      case 7:  return "Sc7 (AR Gaming)";
      case 8:  return "Sc8 (Outdoors)";
      case 9:  return "Sc9 (Social)";
      case 10: return "Sc10 (VR Gaming)";
    }
    return "?";
}

Scenario
motivational()
{
    // Three convolutions of the second ResNet-50 bottleneck (res2_1) at
    // 56x56, and GPT-L's first feed-forward GEMM.
    Model resBlock;
    resBlock.name = "ResNet50-blk2";
    resBlock.batch = 1;
    {
        const Model full = zoo::resNet50(1);
        int found = 0;
        for (const Layer& layer : full.layers) {
            if (layer.name.rfind("res2_1.conv", 0) == 0) {
                resBlock.layers.push_back(layer);
                ++found;
            }
        }
        SCAR_ASSERT(found == 3, "expected 3 convs in res2_1, got ",
                    found);
    }

    Model gptFfn;
    gptFfn.name = "GPT-FFN";
    gptFfn.batch = 1;
    {
        const Model full = zoo::gptL(1);
        for (const Layer& layer : full.layers) {
            if (layer.name == "blk0.ffn1") {
                gptFfn.layers.push_back(layer);
                break;
            }
        }
        SCAR_ASSERT(gptFfn.numLayers() == 1, "GPT ffn1 layer not found");
    }

    Scenario sc;
    sc.name = "Motivational";
    sc.models = {std::move(resBlock), std::move(gptFfn)};
    sc.finalize();
    return sc;
}

} // namespace suite
} // namespace scar
