/**
 * @file
 * Human-readable schedule reports: the Figure 9 window/chiplet
 * allocation view and the Table VI per-window latency breakdown.
 */

#ifndef SCAR_EVAL_REPORTER_H
#define SCAR_EVAL_REPORTER_H

#include <string>

#include "arch/mcm.h"
#include "runtime/serving_report.h"
#include "sched/scar.h"
#include "workload/scenario.h"

namespace scar
{

/**
 * Renders the schedule window by window: which chiplets each model's
 * segments occupy and the cumulative window latencies (Figure 9).
 */
std::string describeSchedule(const Scenario& scenario, const Mcm& mcm,
                             const ScheduleResult& result);

/**
 * Renders the Table VI-style breakdown: per-model latency in each
 * window, the model's ideal (sum of its window latencies), layer
 * counts, and per-window totals.
 */
std::string describeWindowBreakdown(const Scenario& scenario,
                                    const ScheduleResult& result);

/**
 * Renders an online-serving run: traffic totals, latency
 * percentiles, SLO accounting, and schedule-cache effectiveness
 * (runtime/serving_sim.h).
 */
std::string describeServingReport(const runtime::ServingReport& report);

} // namespace scar

#endif // SCAR_EVAL_REPORTER_H
