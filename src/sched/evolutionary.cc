#include "sched/evolutionary.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/error.h"

namespace scar
{

EvolutionaryWindowSearch::EvolutionaryWindowSearch(
    const CostDb& db, OptTarget target, WindowSearchOptions schedOpts,
    EvoOptions evoOpts)
    : db_(db), target_(target), scheduler_(db, target, schedOpts),
      evo_(evoOpts), pool_(schedOpts.pool),
      counters_(schedOpts.counters)
{
    SCAR_REQUIRE(evo_.population >= 2, "population must be >= 2");
    SCAR_REQUIRE(evo_.generations >= 1, "generations must be >= 1");
    SCAR_REQUIRE(evo_.eliteCount < evo_.population,
                 "elite count must be below population");
}

EvolutionaryWindowSearch::Genome
EvolutionaryWindowSearch::randomGenome(const std::vector<int>& present,
                                       const WindowAssignment& wa,
                                       const NodeAllocation& nodes,
                                       Rng& rng) const
{
    Genome genome;
    for (int m : present) {
        const int layers = wa.perModel[m].size();
        const int maxSegs = std::min(nodes[m], layers);
        const int numSegs = rng.uniformInt(1, maxSegs);
        std::set<int> picks;
        while (static_cast<int>(picks.size()) < numSegs - 1)
            picks.insert(rng.uniformInt(0, layers - 2));
        genome.emplace_back(picks.begin(), picks.end());
    }
    return genome;
}

void
EvolutionaryWindowSearch::mutate(Genome& genome,
                                 const std::vector<int>& present,
                                 const WindowAssignment& wa,
                                 const NodeAllocation& nodes,
                                 Rng& rng) const
{
    for (std::size_t i = 0; i < genome.size(); ++i) {
        if (!rng.chance(evo_.mutationProb))
            continue;
        const int m = present[i];
        const int layers = wa.perModel[m].size();
        const int maxSplits = std::min(nodes[m], layers) - 1;
        std::set<int> splits(genome[i].begin(), genome[i].end());
        const int op = rng.uniformInt(0, 2);
        if (op == 0 && static_cast<int>(splits.size()) < maxSplits &&
            layers >= 2) {
            splits.insert(rng.uniformInt(0, layers - 2));
        } else if (op == 1 && !splits.empty()) {
            auto it = splits.begin();
            std::advance(it, rng.index(splits.size()));
            splits.erase(it);
        } else if (!splits.empty() && layers >= 2) {
            auto it = splits.begin();
            std::advance(it, rng.index(splits.size()));
            const int moved =
                std::clamp(*it + (rng.chance(0.5) ? 1 : -1), 0,
                           layers - 2);
            splits.erase(it);
            splits.insert(moved);
        }
        genome[i].assign(splits.begin(), splits.end());
    }
}

std::vector<Segmentation>
EvolutionaryWindowSearch::decode(const Genome& genome,
                                 const std::vector<int>& present,
                                 const WindowAssignment& wa) const
{
    std::vector<Segmentation> segs;
    for (std::size_t i = 0; i < genome.size(); ++i) {
        const LayerRange& range = wa.perModel[present[i]];
        Segmentation seg;
        int first = range.first;
        for (int gap : genome[i]) {
            seg.segments.push_back(LayerRange{first, range.first + gap});
            first = range.first + gap + 1;
        }
        seg.segments.push_back(LayerRange{first, range.last});
        segs.push_back(std::move(seg));
    }
    return segs;
}

WindowScheduler::Result
EvolutionaryWindowSearch::search(const WindowAssignment& wa,
                                 const NodeAllocation& nodes,
                                 std::uint64_t seed,
                                 const std::vector<int>& entry) const
{
    const std::vector<int> present = WindowScheduler::presentModels(wa);
    SCAR_REQUIRE(!present.empty(), "window has no layers to schedule");

    Rng rng(mixSeed(seed, 0x5EEDuLL));

    struct Individual
    {
        Genome genome;
        double fitness = std::numeric_limits<double>::infinity();
        WindowScheduler::Result result;
    };

    // Seed the population: top-1 ranked segmentation + random genomes.
    std::vector<Individual> population;
    {
        Individual seeded;
        Rng seedRng(1);
        for (int m : present) {
            SegmentationOptions segOpts;
            segOpts.topK = 1;
            const auto ranked =
                rankSegmentations(db_, m, wa.perModel[m], nodes[m],
                                  target_, segOpts, seedRng);
            std::vector<int> splits;
            const LayerRange& range = wa.perModel[m];
            for (std::size_t k = 0;
                 k + 1 < ranked.front().segments.size(); ++k) {
                splits.push_back(ranked.front().segments[k].last -
                                 range.first);
            }
            seeded.genome.push_back(std::move(splits));
        }
        population.push_back(std::move(seeded));
    }
    while (static_cast<int>(population.size()) < evo_.population) {
        Individual ind;
        ind.genome = randomGenome(present, wa, nodes, rng);
        population.push_back(std::move(ind));
    }

    // Fitness evaluation is the expensive step (beam placement + full
    // window evaluation) and carries no RNG, so a batch of
    // individuals evaluates in parallel; the shared solo-cost cache
    // only memoizes deterministic values. Candidate lists then merge
    // in population index order for pool-size-independent results.
    WindowScheduler::Result global;
    WindowScheduler::SoloCache soloCache;
    // The EA re-places thousands of genomes on the same topology, so
    // one shared path memo serves the whole run (deterministic
    // values; see PathCache).
    PathCache pathCache;
    pathCache.setCounters(counters_);
    auto evaluateBatch = [&](std::vector<Individual*>& batch) {
        forEachIndex(pool_, batch.size(), [&](std::size_t i) {
            Individual& ind = *batch[i];
            ind.result = scheduler_.placeSegmentations(
                present, decode(ind.genome, present, wa), entry,
                &soloCache, &pathCache);
            ind.fitness = ind.result.found
                              ? ind.result.best.score
                              : std::numeric_limits<double>::infinity();
        });
        for (Individual* ind : batch) {
            if (ind->result.found) {
                global.top.insert(global.top.end(),
                                  ind->result.top.begin(),
                                  ind->result.top.end());
            }
        }
    };

    {
        std::vector<Individual*> batch;
        for (Individual& ind : population)
            batch.push_back(&ind);
        evaluateBatch(batch);
    }

    auto byFitness = [](const Individual& a, const Individual& b) {
        return a.fitness < b.fitness;
    };

    for (int gen = 1; gen < evo_.generations; ++gen) {
        obs::SearchCounters::bump(counters_,
                                  &obs::SearchCounters::eaGenerations);
        std::stable_sort(population.begin(), population.end(),
                         byFitness);
        std::vector<Individual> next(
            population.begin(), population.begin() + evo_.eliteCount);
        auto tournament = [&]() -> const Individual& {
            const Individual& a = population[rng.index(population.size())];
            const Individual& b = population[rng.index(population.size())];
            return a.fitness < b.fitness ? a : b;
        };
        // Selection/crossover/mutation only read the previous
        // generation's fitness, so all children are bred first (one
        // serial RNG stream) and evaluated as one parallel batch.
        while (static_cast<int>(next.size()) < evo_.population) {
            Individual child;
            child.genome = tournament().genome;
            if (rng.chance(evo_.crossoverProb)) {
                const Individual& other = tournament();
                for (std::size_t i = 0; i < child.genome.size(); ++i) {
                    if (rng.chance(0.5))
                        child.genome[i] = other.genome[i];
                }
            }
            mutate(child.genome, present, wa, nodes, rng);
            next.push_back(std::move(child));
        }
        std::vector<Individual*> batch;
        for (std::size_t i = evo_.eliteCount; i < next.size(); ++i)
            batch.push_back(&next[i]);
        evaluateBatch(batch);
        population = std::move(next);
    }

    if (global.top.empty())
        return global;
    std::stable_sort(global.top.begin(), global.top.end(),
                     [](const ScoredPlacement& a,
                        const ScoredPlacement& b) {
                         return a.score < b.score;
                     });
    global.best = global.top.front();
    global.found = true;
    return global;
}

} // namespace scar
