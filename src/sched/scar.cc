#include "sched/scar.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "common/logging.h"
#include "common/units.h"

namespace scar
{

namespace
{

/** Stream tag separating the candidate-cloud RNG from window seeds. */
constexpr std::uint64_t kCloudStream = 0xC10DuLL;

} // namespace

std::vector<WindowBoundary>
windowBoundaries(const ScheduleResult& result)
{
    std::vector<WindowBoundary> boundaries;
    boundaries.reserve(result.windows.size());
    double cumulative = 0.0;
    for (std::size_t w = 0; w < result.windows.size(); ++w) {
        const ScheduledWindow& sw = result.windows[w];
        WindowBoundary boundary;
        boundary.windowIdx = static_cast<int>(w);
        boundary.windowCycles = sw.cost.latencyCycles;
        boundary.startCycles = cumulative;
        cumulative += sw.cost.latencyCycles;
        boundary.endCycles = cumulative;
        for (const ModelPlacement& mp : sw.placement.models)
            boundary.segments += static_cast<int>(mp.segments.size());
        boundary.last = w + 1 == result.windows.size();
        boundaries.push_back(boundary);
    }
    return boundaries;
}

Scar::Scar(Scenario scenario, Mcm mcm, ScarOptions options)
    : scenario_(std::move(scenario)), mcm_(std::move(mcm)),
      options_(options), db_(scenario_, mcm_)
{
    SCAR_REQUIRE(scenario_.numModels() >= 1, "scenario has no models");
    SCAR_REQUIRE(options_.nsplits >= 0, "nsplits must be >= 0");
    SCAR_REQUIRE(options_.threads >= 0, "threads must be >= 0");
    if (options_.pool != nullptr) {
        pool_ = options_.pool;
    } else if (options_.threads == 1) {
        pool_ = nullptr; // fully serial search
    } else if (options_.threads > 1) {
        ownedPool_ = std::make_unique<ThreadPool>(options_.threads);
        pool_ = ownedPool_.get();
    } else {
        pool_ = &ThreadPool::global();
    }
}

WindowScheduler::Result
Scar::searchWindow(const WindowAssignment& wa, const NodeAllocation& nodes,
                   std::uint64_t seed,
                   const std::vector<int>& entry) const
{
    WindowSearchOptions wopts = options_.window;
    wopts.pool = pool_;
    wopts.counters = runCounters_;
    if (options_.mode == SearchMode::Evolutionary) {
        EvolutionaryWindowSearch evo(db_, options_.target, wopts,
                                     options_.evo);
        return evo.search(wa, nodes, seed, entry);
    }
    WindowScheduler scheduler(db_, options_.target, wopts);
    return scheduler.search(wa, nodes, seed, entry);
}

ScheduleResult
Scar::run()
{
    // Profiling scaffolding: a profiled run attaches live counters to
    // the cost database and times each phase on the wall clock. The
    // default path only tests `prof` — never touches the clock — so
    // unprofiled solves stay free of observability work.
    using Clock = std::chrono::steady_clock;
    obs::SolveProfile* const prof = options_.profile;
    obs::SearchCounters counters;
    const auto sinceMs = [](Clock::time_point from) {
        return std::chrono::duration<double, std::milli>(Clock::now() -
                                                         from)
            .count();
    };
    Clock::time_point runStart{};
    Clock::time_point phaseStart{};
    double packMs = 0.0;
    double provisionMs = 0.0;
    double searchMs = 0.0;
    std::int64_t allocationsSearched = 0;
    if (prof) {
        runStart = Clock::now();
        phaseStart = runStart;
        runCounters_ = &counters;
        db_.setCounters(&counters);
    }

    const WindowPlan plan =
        packLayers(db_, options_.nsplits, options_.packing);
    if (prof)
        packMs = sinceMs(phaseStart);
    inform("SCAR: ", scenario_.name, " on ", mcm_.name(), ": ",
           plan.windows.size(), " windows, target ",
           optTargetName(options_.target));

    ScheduleResult result;
    std::vector<std::vector<ScoredPlacement>> windowTops;
    // Where each model's live data sits as windows progress (-1 = DRAM).
    std::vector<int> entry(scenario_.numModels(), -1);

    // Windows run serially — each window's entry chiplets depend on
    // the previous window's best placement — but every (window,
    // allocation) search gets its own seed stream and parallelizes
    // internally.
    for (std::size_t w = 0; w < plan.windows.size(); ++w) {
        const WindowAssignment& wa = plan.windows[w];
        if (prof)
            phaseStart = Clock::now();
        const auto allocations =
            provisionNodes(wa, db_, options_.target, options_.prov);
        if (prof) {
            provisionMs += sinceMs(phaseStart);
            allocationsSearched +=
                static_cast<std::int64_t>(allocations.size());
            phaseStart = Clock::now();
        }
        const std::uint64_t windowSeed =
            mixSeed(options_.seed, static_cast<std::uint64_t>(w));

        WindowScheduler::Result best;
        std::vector<ScoredPlacement> mergedTop;
        for (std::size_t a = 0; a < allocations.size(); ++a) {
            const auto found =
                searchWindow(wa, allocations[a],
                             mixSeed(windowSeed,
                                     static_cast<std::uint64_t>(a)),
                             entry);
            if (!found.found)
                continue;
            mergedTop.insert(mergedTop.end(), found.top.begin(),
                             found.top.end());
            if (!best.found || found.best.score < best.best.score) {
                best.found = true;
                best.best = found.best;
            }
        }
        if (prof)
            searchMs += sinceMs(phaseStart);
        SCAR_REQUIRE(best.found,
                     "no feasible placement found for a window of ",
                     scenario_.name, " on ", mcm_.name());

        std::stable_sort(
            mergedTop.begin(), mergedTop.end(),
            [](const ScoredPlacement& a, const ScoredPlacement& b) {
                return a.score < b.score;
            });
        if (static_cast<int>(mergedTop.size()) >
            options_.window.maxTopCandidates)
            mergedTop.resize(options_.window.maxTopCandidates);

        ScheduledWindow sw;
        sw.assignment = wa;
        sw.nodes.assign(scenario_.numModels(), 0);
        for (const ModelPlacement& mp : best.best.placement.models) {
            sw.nodes[mp.modelIdx] =
                static_cast<int>(mp.segments.size());
            // The model's live data now resides on its tail chiplet.
            entry[mp.modelIdx] = mp.segments.back().chiplet;
        }
        sw.placement = best.best.placement;
        sw.cost = best.best.cost;
        result.windows.push_back(std::move(sw));
        windowTops.push_back(std::move(mergedTop));
    }

    // End-to-end totals: windows execute back to back (Section III-E).
    double cycles = 0.0;
    double energyNj = 0.0;
    for (const ScheduledWindow& sw : result.windows) {
        cycles += sw.cost.latencyCycles;
        energyNj += sw.cost.energyNj;
    }
    result.metrics =
        Metrics{cyclesToSeconds(cycles), njToJoules(energyNj)};

    // Scenario-level candidate cloud for Pareto plots: the i-th ranked
    // placement of each window combined, plus random cross picks from
    // a dedicated stream (independent of how much entropy the window
    // searches consumed).
    Rng cloudRng(mixSeed(options_.seed, kCloudStream));
    std::size_t maxRank = 0;
    for (const auto& top : windowTops)
        maxRank = std::max(maxRank, top.size());
    auto combine = [&](const std::vector<std::size_t>& pick) {
        double c = 0.0;
        double e = 0.0;
        for (std::size_t w = 0; w < windowTops.size(); ++w) {
            const auto& top = windowTops[w];
            const std::size_t idx = std::min(pick[w], top.size() - 1);
            c += top[idx].cost.latencyCycles;
            e += top[idx].cost.energyNj;
        }
        result.candidates.push_back(
            Metrics{cyclesToSeconds(c), njToJoules(e)});
    };
    for (std::size_t rank = 0; rank < maxRank; ++rank)
        combine(std::vector<std::size_t>(windowTops.size(), rank));
    for (int i = 0; i < 48; ++i) {
        std::vector<std::size_t> pick(windowTops.size());
        for (std::size_t w = 0; w < pick.size(); ++w)
            pick[w] = cloudRng.index(std::max<std::size_t>(
                windowTops[w].size(), 1));
        combine(pick);
    }

    if (options_.customScore) {
        // Custom metric consumers rank the candidate cloud themselves;
        // report the best candidate under the custom score as totals.
        const Metrics best = *std::min_element(
            result.candidates.begin(), result.candidates.end(),
            [&](const Metrics& a, const Metrics& b) {
                return options_.customScore(a) < options_.customScore(b);
            });
        if (options_.customScore(best) <
            options_.customScore(result.metrics)) {
            result.metrics = best;
        }
    }

    if (prof) {
        db_.setCounters(nullptr);
        runCounters_ = nullptr;
        prof->enabled = true;
        prof->totalMs = sinceMs(runStart);
        prof->packMs = packMs;
        prof->provisionMs = provisionMs;
        prof->searchMs = searchMs;
        prof->windows = static_cast<std::int64_t>(result.windows.size());
        prof->allocationsSearched = allocationsSearched;
        prof->captureCounters(counters);
        prof->costDbTableHits = db_.tableStats().hits;
        prof->costDbTableMisses = db_.tableStats().misses;
    }
    return result;
}

} // namespace scar
