/**
 * @file
 * SCHED engine (paper Section IV-D): maps layer segments onto physical
 * chiplets within one time window.
 *
 * The scheduling space is a forest of scheduling trees over the NoP
 * adjacency: a tree fixes a root chiplet per model, and a model's
 * candidate schedule is a simple path of length = its segment count
 * through unoccupied chiplets (constrained DFS). Later models are
 * constrained by earlier models' visited nodes.
 *
 * Search organization:
 *  1. Heuristic-1 recombination — the cross product of each model's
 *     top-k segmentations forms the combo list;
 *  2. for each combo, models place in decreasing node-count order via
 *     beam search: path candidates from every free root are scored
 *     with a contention-free single-model evaluation (cached), and
 *     the best `beamWidth` partial placements survive;
 *  3. complete placements are re-scored with the full window evaluator
 *     (contention + DRAM roofline) and ranked.
 *
 * Parallelism and determinism: search() is re-entrant. Randomness
 * comes from a seed value, not a shared generator — each model's
 * segmentation pass draws from its own mixSeed(seed, model) stream.
 * The combo loop and the refinement pass fan out across the optional
 * worker pool; per-combo results are merged in combo index order and
 * ranked with a stable sort, so the returned Result is bit-identical
 * at any pool size (including fully serial).
 *
 * All enumeration caps are explicit in WindowSearchOptions; exceeding
 * a cap logs at debug level rather than failing silently.
 */

#ifndef SCAR_SCHED_SCHED_ENGINE_H
#define SCAR_SCHED_SCHED_ENGINE_H

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "cost/window_evaluator.h"
#include "eval/metrics.h"
#include "sched/provisioner.h"
#include "sched/sched_tree.h"
#include "sched/segmentation.h"
#include "sched/time_window.h"

namespace scar
{

/** Per-window search knobs. */
struct WindowSearchOptions
{
    SegmentationOptions seg;     ///< SEG engine (top-k, enumeration cap)
    int maxPathsPerModel = 96;   ///< DFS path candidates per model
    int beamWidth = 12;          ///< surviving partial placements
    int maxCombos = 64;          ///< segmentation combos explored
    int maxTopCandidates = 32;   ///< ranked placements kept for Pareto
    EvaluatorOptions eval;       ///< final-evaluation options
    /**
     * Worker pool for the combo/refinement fan-out; nullptr runs the
     * search serially. Results are identical either way.
     */
    ThreadPool* pool = nullptr;
    /**
     * Live profiling counters (cache hits, fan-out sizes); nullptr —
     * the default — records nothing and costs one predicted branch
     * per site. Counters never influence search results.
     */
    obs::SearchCounters* counters = nullptr;
};

/** A fully evaluated window placement. */
struct ScoredPlacement
{
    WindowPlacement placement;
    WindowCost cost;
    double score = 0.0;
};

/** Searches the scheduling space of one time window. */
class WindowScheduler
{
  public:
    /** Search outcome: best placement plus a ranked candidate list. */
    struct Result
    {
        bool found = false;
        ScoredPlacement best;
        std::vector<ScoredPlacement> top; ///< ascending score
    };

    /**
     * Thread-safe memo of contention-free single-model costs, shared
     * across the combo fan-out (and, for the evolutionary driver,
     * across a whole EA run). Values are deterministic functions of
     * the key, so concurrent insertion order never changes results.
     * Backed by the open-addressing FlatHashMap (common/flat_hash.h):
     * the pre-PR std::map paid an ordered-tree walk with a full
     * lexicographic vector comparison per node on every probe of the
     * beam search's hottest lookup.
     */
    class SoloCache
    {
      public:
        bool
        find(const std::vector<int>& key,
             std::pair<double, double>& out) const
        {
            std::lock_guard<std::mutex> lock(mu_);
            const auto* value = map_.find(key);
            if (value == nullptr)
                return false;
            out = *value;
            return true;
        }

        void
        insert(std::vector<int> key, std::pair<double, double> value)
        {
            std::lock_guard<std::mutex> lock(mu_);
            map_.insert(std::move(key), value);
        }

      private:
        mutable std::mutex mu_;
        FlatHashMap<std::vector<int>, std::pair<double, double>,
                    IntSequenceHash>
            map_;
    };

    WindowScheduler(const CostDb& db, OptTarget target,
                    WindowSearchOptions opts = WindowSearchOptions{});

    /**
     * Runs the SEG+SCHED search for one window. Re-entrant: safe to
     * call concurrently on the same instance.
     * @param wa layers per model in this window
     * @param nodes PROV allocation (max segments per model)
     * @param seed randomness for capped enumerations; each model's
     *        segmentation pass uses its own mixSeed(seed, model)
     *        stream, so results are reproducible from the seed alone
     * @param entry per-model entry chiplets (-1/empty = DRAM input);
     *        models continuing from a previous window receive their
     *        live data over the NoP from these chiplets
     */
    Result search(const WindowAssignment& wa, const NodeAllocation& nodes,
                  std::uint64_t seed,
                  const std::vector<int>& entry = {}) const;

    /**
     * Evaluates a fixed per-model segmentation choice (used by the
     * evolutionary driver): beam placement + full evaluation.
     * @param segs per-present-model segmentations, aligned with the
     *        present-model order of the window assignment
     * @param sharedCache optional solo-cost memo reused across calls
     *        (the EA shares one per window search); nullptr uses a
     *        private cache
     * @param sharedPaths optional path-enumeration memo reused across
     *        calls (the EA shares one per window search); nullptr
     *        uses a private cache
     */
    Result placeSegmentations(const std::vector<int>& presentModels,
                              const std::vector<Segmentation>& segs,
                              const std::vector<int>& entry = {},
                              SoloCache* sharedCache = nullptr,
                              PathCache* sharedPaths = nullptr) const;

    /** Window-level score of a cost under the chosen target. */
    double score(const WindowCost& cost) const;

    /** Present (non-empty) model indices of a window assignment. */
    static std::vector<int> presentModels(const WindowAssignment& wa);

  private:
    struct BeamState
    {
        std::vector<bool> used;
        std::vector<ModelPlacement> placed;
        double maxLatency = 0.0;
        double sumEnergy = 0.0;
    };

    /** Contention-free (latency, energy) of one placed model. */
    std::pair<double, double> soloCost(int model,
                                       const Segmentation& seg,
                                       const std::vector<int>& path,
                                       int entry, SoloCache& cache) const;

    double partialScore(double maxLatency, double sumEnergy) const;

    void placeCombo(const std::vector<int>& present,
                    const std::vector<Segmentation>& segs,
                    const std::vector<int>& entry, SoloCache& cache,
                    PathCache& paths, Result& result) const;

    /**
     * Placement-aware refinement of Heuristic 1: re-scores pruned
     * segmentation candidates by their best single-model placement on
     * the empty package and keeps the top-k. Candidate scoring fans
     * out across the pool.
     */
    std::vector<Segmentation> refineSegmentations(
        int model, std::vector<Segmentation> pruned, int entry,
        SoloCache& cache, PathCache& paths) const;

    const CostDb& db_;
    OptTarget target_;
    WindowSearchOptions opts_;
    WindowEvaluator fullEval_;
    WindowEvaluator soloEval_;
};

} // namespace scar

#endif // SCAR_SCHED_SCHED_ENGINE_H
