#include "sched/provisioner.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace scar
{

namespace
{

/** Expected value of the target metric for a model's window layers. */
double
expectedWindowMetric(const WindowAssignment& wa, const CostDb& db,
                     OptTarget target, int model)
{
    const LayerRange& range = wa.perModel[model];
    if (range.empty())
        return 0.0;
    const int batch = db.scenario().models[model].batch;
    double cycles = 0.0;
    double energyNj = 0.0;
    for (int l = range.first; l <= range.last; ++l) {
        cycles += db.expectedLayerCycles(model, l) * batch;
        energyNj += db.expectedLayerEnergyNj(model, l) * batch;
    }
    switch (target) {
      case OptTarget::Latency: return cycles;
      case OptTarget::Energy:  return energyNj;
      case OptTarget::Edp:
        return cyclesToSeconds(cycles) * njToJoules(energyNj);
    }
    return cycles;
}

/** Recursively enumerates allocations for the present models. */
void
enumerateAllocations(const std::vector<int>& present, int numChiplets,
                     int perModelCap, int maxCandidates,
                     std::vector<int>& current, std::size_t idx,
                     int used, int numModels,
                     std::vector<NodeAllocation>& out)
{
    if (maxCandidates > 0 &&
        static_cast<int>(out.size()) >= maxCandidates)
        return;
    if (idx == present.size()) {
        NodeAllocation alloc(numModels, 0);
        for (std::size_t i = 0; i < present.size(); ++i)
            alloc[present[i]] = current[i];
        out.push_back(std::move(alloc));
        return;
    }
    const int remainingModels = static_cast<int>(present.size() - idx) - 1;
    const int maxHere = std::min(perModelCap,
                                 numChiplets - used - remainingModels);
    for (int n = 1; n <= maxHere; ++n) {
        current[idx] = n;
        enumerateAllocations(present, numChiplets, perModelCap,
                             maxCandidates, current, idx + 1, used + n,
                             numModels, out);
    }
}

} // namespace

std::vector<NodeAllocation>
provisionNodes(const WindowAssignment& wa, const CostDb& db,
               OptTarget target, const ProvisionerOptions& opts)
{
    const int numModels = static_cast<int>(wa.perModel.size());
    const int numChiplets = db.mcm().numChiplets();

    std::vector<int> present;
    for (int m = 0; m < numModels; ++m) {
        if (!wa.perModel[m].empty())
            present.push_back(m);
    }
    SCAR_REQUIRE(!present.empty(), "window has no layers to provision");
    SCAR_REQUIRE(static_cast<int>(present.size()) <= numChiplets,
                 "more concurrent models (", present.size(),
                 ") than chiplets (", numChiplets, ")");

    const int cap = opts.maxNodesPerModel > 0
                        ? opts.maxNodesPerModel
                        : numChiplets;

    if (opts.mode == ProvisionerOptions::Mode::Exhaustive) {
        std::vector<NodeAllocation> out;
        std::vector<int> current(present.size(), 1);
        enumerateAllocations(present, numChiplets, cap,
                             opts.maxCandidates, current, 0, 0,
                             numModels, out);
        // The exhaustive candidate set is a superset of the rule's
        // allocation even when the enumeration cap truncates it.
        ProvisionerOptions ruleOpts = opts;
        ruleOpts.mode = ProvisionerOptions::Mode::Rule;
        NodeAllocation rule =
            provisionNodes(wa, db, target, ruleOpts).front();
        if (std::find(out.begin(), out.end(), rule) == out.end())
            out.push_back(std::move(rule));
        return out;
    }

    // Rule mode: Eq. 2 with floor 1, Heuristic-2 cap, and repair so the
    // allocations fit on the package.
    std::vector<double> expect(present.size(), 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < present.size(); ++i) {
        expect[i] = expectedWindowMetric(wa, db, target, present[i]);
        total += expect[i];
    }

    NodeAllocation alloc(numModels, 0);
    for (std::size_t i = 0; i < present.size(); ++i) {
        const double share = total > 0.0 ? expect[i] / total
                                         : 1.0 / present.size();
        int nodes = static_cast<int>(std::lround(share * numChiplets));
        nodes = std::clamp(nodes, 1, cap);
        alloc[present[i]] = nodes;
    }

    // Repair: trim the largest allocations until they fit.
    int used = 0;
    for (int m : present)
        used += alloc[m];
    while (used > numChiplets) {
        int largest = present.front();
        for (int m : present) {
            if (alloc[m] > alloc[largest])
                largest = m;
        }
        SCAR_ASSERT(alloc[largest] > 1, "cannot repair node allocation");
        --alloc[largest];
        --used;
    }
    return {alloc};
}

} // namespace scar
