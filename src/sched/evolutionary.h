/**
 * @file
 * Evolutionary SEG search (paper Section V-D): for large MCMs (6x6)
 * the segmentation space outgrows brute-force recombination, so SCAR
 * evolves per-model split-point genomes.
 *
 * Genome: one sorted split-gap list per present model (<= N_i - 1
 * splits). Fitness: beam placement + full window evaluation, exactly
 * the SCHED pipeline. Defaults follow the paper: population 10,
 * 4 generations.
 *
 * Parallelism: genome creation (selection, crossover, mutation) stays
 * serial on one seeded stream — it is cheap and order-sensitive — but
 * fitness evaluation, the expensive placement step, fans out across
 * the worker pool. Tournament selection only reads the previous
 * generation, so deferring child evaluations to a per-generation
 * batch changes nothing; candidate lists merge in population index
 * order, keeping results bit-identical at any pool size.
 */

#ifndef SCAR_SCHED_EVOLUTIONARY_H
#define SCAR_SCHED_EVOLUTIONARY_H

#include <cstdint>

#include "sched/sched_engine.h"

namespace scar
{

/** Evolutionary-algorithm knobs (paper defaults). */
struct EvoOptions
{
    int population = 10;
    int generations = 4;
    double crossoverProb = 0.5; ///< per-model genome exchange
    double mutationProb = 0.4;  ///< per-model split perturbation
    int eliteCount = 2;         ///< genomes carried over unchanged
};

/** Evolves window segmentations; placement remains the SCHED beam. */
class EvolutionaryWindowSearch
{
  public:
    EvolutionaryWindowSearch(const CostDb& db, OptTarget target,
                             WindowSearchOptions schedOpts,
                             EvoOptions evoOpts = EvoOptions{});

    /** Runs the EA for one window; same contract as
     *  WindowScheduler::search (re-entrant, seed-deterministic). */
    WindowScheduler::Result search(const WindowAssignment& wa,
                                   const NodeAllocation& nodes,
                                   std::uint64_t seed,
                                   const std::vector<int>& entry = {}) const;

  private:
    /** Per-model split lists (gap indices local to the window range). */
    using Genome = std::vector<std::vector<int>>;

    Genome randomGenome(const std::vector<int>& present,
                        const WindowAssignment& wa,
                        const NodeAllocation& nodes, Rng& rng) const;
    void mutate(Genome& genome, const std::vector<int>& present,
                const WindowAssignment& wa, const NodeAllocation& nodes,
                Rng& rng) const;
    std::vector<Segmentation> decode(const Genome& genome,
                                     const std::vector<int>& present,
                                     const WindowAssignment& wa) const;

    const CostDb& db_;
    OptTarget target_;
    WindowScheduler scheduler_;
    EvoOptions evo_;
    ThreadPool* pool_;
    obs::SearchCounters* counters_; ///< from schedOpts; may be null
};

} // namespace scar

#endif // SCAR_SCHED_EVOLUTIONARY_H
