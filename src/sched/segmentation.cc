#include "sched/segmentation.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/units.h"
#include "cost/comm_model.h"

namespace scar
{

namespace
{

/** Builds a segmentation from sorted split gaps (split after gap g). */
Segmentation
fromSplits(const LayerRange& range, const std::vector<int>& splits)
{
    Segmentation seg;
    int first = range.first;
    for (int gap : splits) {
        seg.segments.push_back(LayerRange{first, range.first + gap});
        first = range.first + gap + 1;
    }
    seg.segments.push_back(LayerRange{first, range.last});
    return seg;
}

/** Balanced splits: numSegs equal-size parts. */
std::vector<int>
balancedSplits(int layers, int numSegs)
{
    std::vector<int> splits;
    for (int s = 1; s < numSegs; ++s)
        splits.push_back(s * layers / numSegs - 1);
    return splits;
}

/** Number of ways to choose `k` from `n`, saturating at a large cap. */
double
choose(int n, int k)
{
    double result = 1.0;
    for (int i = 0; i < k; ++i) {
        result *= static_cast<double>(n - i) / (i + 1);
        if (result > 1.0e12)
            return 1.0e12;
    }
    return result;
}

} // namespace

std::vector<Segmentation>
enumerateSegmentations(const LayerRange& range, int maxSegs,
                       int capPerCount, Rng& rng)
{
    SCAR_REQUIRE(!range.empty(), "cannot segment an empty range");
    SCAR_REQUIRE(maxSegs >= 1, "need at least one segment");
    const int layers = range.size();
    const int segLimit = std::min(maxSegs, layers);

    std::vector<Segmentation> out;
    for (int numSegs = 1; numSegs <= segLimit; ++numSegs) {
        const int splitsNeeded = numSegs - 1;
        const int gaps = layers - 1;
        const double count = choose(gaps, splitsNeeded);

        if (count <= capPerCount) {
            // Full enumeration of split combinations.
            std::vector<int> splits(splitsNeeded);
            for (int i = 0; i < splitsNeeded; ++i)
                splits[i] = i;
            while (true) {
                out.push_back(fromSplits(range, splits));
                // Next combination in lexicographic order.
                int i = splitsNeeded - 1;
                while (i >= 0 && splits[i] == gaps - splitsNeeded + i)
                    --i;
                if (i < 0)
                    break;
                ++splits[i];
                for (int j = i + 1; j < splitsNeeded; ++j)
                    splits[j] = splits[j - 1] + 1;
            }
        } else {
            debug("segmentation enumeration capped: C(", gaps, ",",
                  splitsNeeded, ") > ", capPerCount);
            std::set<std::vector<int>> seen;
            // Always include the balanced candidate.
            std::vector<int> balanced = balancedSplits(layers, numSegs);
            seen.insert(balanced);
            out.push_back(fromSplits(range, balanced));
            int attempts = 0;
            while (static_cast<int>(seen.size()) < capPerCount &&
                   attempts < capPerCount * 4) {
                ++attempts;
                std::set<int> picks;
                while (static_cast<int>(picks.size()) < splitsNeeded)
                    picks.insert(rng.uniformInt(0, gaps - 1));
                std::vector<int> splits(picks.begin(), picks.end());
                if (seen.insert(splits).second)
                    out.push_back(fromSplits(range, splits));
            }
        }
    }
    return out;
}

double
quickScore(const CostDb& db, int model, const Segmentation& seg,
           OptTarget target)
{
    const Model& m = db.scenario().models[model];
    const int batch = m.batch;
    const CommModel comm(db.mcm());

    double sumCycles = 0.0;
    double maxSeg = 0.0;
    double energyNj = 0.0;
    const std::size_t numSegs = seg.segments.size();
    for (std::size_t k = 0; k < numSegs; ++k) {
        const LayerRange& r = seg.segments[k];
        double cycles = 0.0;
        for (int l = r.first; l <= r.last; ++l) {
            cycles += db.expectedLayerCycles(model, l);
            energyNj += db.expectedLayerEnergyNj(model, l) * batch;
        }
        // 1-hop NoP handoff into this segment (placement-free proxy).
        if (k > 0) {
            const int prevLast = seg.segments[k - 1].last;
            const double bytes = m.layers[prevLast].outputBytes();
            cycles += bytes / comm.nopBytesPerCycle() +
                      comm.hopLatencyCycles();
            energyNj += pjToNj(bytes * 8.0 *
                               db.mcm().params().nopEnergyPjPerBit) *
                        batch;
        }
        sumCycles += cycles;
        maxSeg = std::max(maxSeg, cycles);
    }
    const double latCycles = sumCycles + (batch - 1) * maxSeg;
    const Metrics metrics{cyclesToSeconds(latCycles),
                          njToJoules(energyNj)};
    return metrics.value(target);
}

std::vector<Segmentation>
rankSegmentations(const CostDb& db, int model, const LayerRange& range,
                  int maxSegs, OptTarget target,
                  const SegmentationOptions& opts, Rng& rng)
{
    std::vector<Segmentation> candidates =
        enumerateSegmentations(range, maxSegs, opts.enumCapPerCount, rng);

    std::vector<std::pair<double, std::size_t>> scored;
    scored.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
        scored.emplace_back(quickScore(db, model, candidates[i], target),
                            i);
    std::sort(scored.begin(), scored.end());

    // Per-segment-count diversity: always keep each count's best.
    std::set<int> countsSeen;
    std::vector<std::size_t> picked;
    std::vector<bool> taken(candidates.size(), false);
    for (const auto& [score, idx] : scored) {
        const int count = candidates[idx].numSegments();
        if (countsSeen.insert(count).second) {
            picked.push_back(idx);
            taken[idx] = true;
        }
    }
    for (const auto& [score, idx] : scored) {
        if (static_cast<int>(picked.size()) >= opts.pruneK)
            break;
        if (!taken[idx]) {
            picked.push_back(idx);
            taken[idx] = true;
        }
    }

    // Re-sort the picked set by score so callers see best-first order.
    std::sort(picked.begin(), picked.end(),
              [&](std::size_t a, std::size_t b) {
                  return quickScore(db, model, candidates[a], target) <
                         quickScore(db, model, candidates[b], target);
              });

    std::vector<Segmentation> top;
    top.reserve(picked.size());
    for (std::size_t idx : picked)
        top.push_back(candidates[idx]);
    return top;
}

} // namespace scar
