/**
 * @file
 * Time-window partitioning types (paper Definitions 4 and 6).
 *
 * A window plan assigns every model a contiguous (possibly empty)
 * layer range per window; ranges across windows concatenate to the
 * full model in order (Theorem 2's partition validity).
 */

#ifndef SCAR_SCHED_TIME_WINDOW_H
#define SCAR_SCHED_TIME_WINDOW_H

#include <vector>

#include "workload/scenario.h"

namespace scar
{

/** Layers assigned to one window: one range per model. */
struct WindowAssignment
{
    std::vector<LayerRange> perModel;

    /** True when no model has layers in this window. */
    bool
    empty() const
    {
        for (const LayerRange& r : perModel) {
            if (!r.empty())
                return false;
        }
        return true;
    }

    /** Total layer count in this window. */
    int
    totalLayers() const
    {
        int total = 0;
        for (const LayerRange& r : perModel)
            total += r.size();
        return total;
    }
};

/** The full window partitioning T W(Sc). */
struct WindowPlan
{
    std::vector<WindowAssignment> windows;

    /** Validates Theorem 2: ranges partition every model in order. */
    void validate(const Scenario& scenario) const;
};

} // namespace scar

#endif // SCAR_SCHED_TIME_WINDOW_H
