#include "sched/greedy_packing.h"

#include <algorithm>

#include "common/error.h"

namespace scar
{

double
expectedModelCycles(const CostDb& db, int model)
{
    const Model& m = db.scenario().models[model];
    double total = 0.0;
    for (int l = 0; l < m.numLayers(); ++l)
        total += db.expectedLayerCycles(model, l);
    return total * m.batch;
}

namespace
{

WindowPlan
packGreedy(const CostDb& db, int nsplits)
{
    const Scenario& sc = db.scenario();
    const int numModels = sc.numModels();
    const int numWindows = nsplits + 1;

    // Time horizon: the worst-case expected model latency.
    double horizon = 0.0;
    for (int m = 0; m < numModels; ++m)
        horizon = std::max(horizon, expectedModelCycles(db, m));

    // Periodic cumulative boundaries rho[w].
    std::vector<double> rho(numWindows);
    for (int w = 0; w < numWindows; ++w)
        rho[w] = horizon * (w + 1) / numWindows;

    WindowPlan plan;
    plan.windows.resize(numWindows);
    for (WindowAssignment& wa : plan.windows)
        wa.perModel.resize(numModels);

    for (int m = 0; m < numModels; ++m) {
        const Model& model = sc.models[m];
        int winIdx = 0;
        double usedCycles = 0.0;
        int rangeFirst = 0;

        for (int l = 0; l < model.numLayers(); ++l) {
            const double expected =
                db.expectedLayerCycles(m, l) * model.batch;
            while (true) {
                const bool unbounded = winIdx >= numWindows - 1;
                const double slack =
                    unbounded ? 0.0 : rho[winIdx] - usedCycles;
                if (unbounded || expected <= slack) {
                    usedCycles += expected;
                    break;
                }
                // Close the current window for this model and defer
                // the layer to the next window (Algorithm 1 l.16-20).
                if (l > rangeFirst) {
                    plan.windows[winIdx].perModel[m] =
                        LayerRange{rangeFirst, l - 1};
                    rangeFirst = l;
                }
                usedCycles = rho[winIdx];
                ++winIdx;
            }
        }
        plan.windows[winIdx].perModel[m] =
            LayerRange{rangeFirst, model.numLayers() - 1};
    }
    return plan;
}

WindowPlan
packUniform(const CostDb& db, int nsplits)
{
    const Scenario& sc = db.scenario();
    const int numModels = sc.numModels();
    const int numWindows = nsplits + 1;

    WindowPlan plan;
    plan.windows.resize(numWindows);
    for (WindowAssignment& wa : plan.windows)
        wa.perModel.resize(numModels);

    for (int m = 0; m < numModels; ++m) {
        const int layers = sc.models[m].numLayers();
        int start = 0;
        for (int w = 0; w < numWindows; ++w) {
            const int count = layers / numWindows +
                              (w < layers % numWindows ? 1 : 0);
            if (count > 0) {
                plan.windows[w].perModel[m] =
                    LayerRange{start, start + count - 1};
                start += count;
            }
        }
    }
    return plan;
}

} // namespace

WindowPlan
packLayers(const CostDb& db, int nsplits, PackingPolicy policy)
{
    SCAR_REQUIRE(nsplits >= 0, "nsplits must be >= 0");
    WindowPlan plan = policy == PackingPolicy::GreedyFirstFit
                          ? packGreedy(db, nsplits)
                          : packUniform(db, nsplits);

    // Skip trivial windows with no workloads (Section IV-A).
    std::vector<WindowAssignment> kept;
    for (WindowAssignment& wa : plan.windows) {
        if (!wa.empty())
            kept.push_back(std::move(wa));
    }
    plan.windows = std::move(kept);

    plan.validate(db.scenario());
    return plan;
}

} // namespace scar
