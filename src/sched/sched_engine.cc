#include "sched/sched_engine.h"
#include <functional>
#include <limits>
#include <set>

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"
#include "common/units.h"
#include "sched/sched_tree.h"

namespace scar
{

namespace
{

/** Evaluator options for the cheap per-model beam scoring. */
EvaluatorOptions
soloOptions(const EvaluatorOptions& base)
{
    EvaluatorOptions opts = base;
    opts.contention = false;
    opts.dramRoofline = false;
    return opts;
}

} // namespace

WindowScheduler::WindowScheduler(const CostDb& db, OptTarget target,
                                 WindowSearchOptions opts)
    : db_(db), target_(target), opts_(opts),
      fullEval_(db, opts.eval), soloEval_(db, soloOptions(opts.eval))
{
    SCAR_REQUIRE(opts_.beamWidth >= 1, "beam width must be >= 1");
    SCAR_REQUIRE(opts_.maxPathsPerModel >= 1, "need >= 1 path candidate");
    SCAR_REQUIRE(opts_.maxCombos >= 1, "need >= 1 combo");
}

std::vector<int>
WindowScheduler::presentModels(const WindowAssignment& wa)
{
    std::vector<int> present;
    for (std::size_t m = 0; m < wa.perModel.size(); ++m) {
        if (!wa.perModel[m].empty())
            present.push_back(static_cast<int>(m));
    }
    return present;
}

double
WindowScheduler::score(const WindowCost& cost) const
{
    const Metrics metrics{cyclesToSeconds(cost.latencyCycles),
                          njToJoules(cost.energyNj)};
    return metrics.value(target_);
}

double
WindowScheduler::partialScore(double maxLatency, double sumEnergy) const
{
    switch (target_) {
      case OptTarget::Latency: return maxLatency;
      case OptTarget::Energy:  return sumEnergy;
      case OptTarget::Edp:     return maxLatency * sumEnergy;
    }
    return maxLatency * sumEnergy;
}

std::pair<double, double>
WindowScheduler::soloCost(int model, const Segmentation& seg,
                          const std::vector<int>& path, int entry,
                          SoloCache& cache) const
{
    SCAR_ASSERT(path.size() == seg.segments.size(),
                "path length != segment count");
    std::vector<int> key;
    key.reserve(seg.segments.size() + path.size() + 3);
    key.push_back(model);
    key.push_back(entry);
    for (const LayerRange& r : seg.segments)
        key.push_back(r.last);
    key.push_back(-2);
    key.insert(key.end(), path.begin(), path.end());

    std::pair<double, double> cached;
    if (cache.find(key, cached)) {
        obs::SearchCounters::bump(opts_.counters,
                                  &obs::SearchCounters::soloHits);
        return cached;
    }
    obs::SearchCounters::bump(opts_.counters,
                              &obs::SearchCounters::soloMisses);

    WindowPlacement placement;
    placement.entryChiplet.assign(
        db_.scenario().numModels(), -1);
    placement.entryChiplet[model] = entry;
    ModelPlacement mp;
    mp.modelIdx = model;
    for (std::size_t k = 0; k < path.size(); ++k)
        mp.segments.push_back(PlacedSegment{seg.segments[k], path[k]});
    placement.models.push_back(std::move(mp));

    // Solo fast path: one model, contention-free — skips flow
    // enumeration and the final re-evaluation while returning the
    // same two scalars bit-for-bit (pinned in tests/test_cost.cc).
    const SoloWindowCost cost = soloEval_.evaluateSolo(placement);
    const std::pair<double, double> result{cost.latencyCycles,
                                           cost.energyNj};
    cache.insert(std::move(key), result);
    return result;
}

std::vector<Segmentation>
WindowScheduler::refineSegmentations(int model,
                                     std::vector<Segmentation> pruned,
                                     int entry, SoloCache& cache,
                                     PathCache& pathCache) const
{
    const Topology& topo = db_.mcm().topology();
    const std::vector<bool> noneBlocked(topo.numNodes(), false);

    // Candidate scoring is independent per candidate; fan out and
    // collect by index so the ranking below sees a fixed order.
    std::vector<double> bestScore(
        pruned.size(), std::numeric_limits<double>::infinity());
    std::vector<char> placeable(pruned.size(), 0);
    forEachIndex(opts_.pool, pruned.size(), [&](std::size_t i) {
        const int numSegs = pruned[i].numSegments();
        const auto paths = pathCache.get(
            topo, numSegs, noneBlocked, opts_.maxPathsPerModel);
        double best = std::numeric_limits<double>::infinity();
        for (const auto& path : *paths) {
            const auto [lat, energy] =
                soloCost(model, pruned[i], path, entry, cache);
            const Metrics metrics{cyclesToSeconds(lat),
                                  njToJoules(energy)};
            best = std::min(best, metrics.value(target_));
        }
        bestScore[i] = best;
        placeable[i] = paths->empty() ? 0 : 1;
    });

    std::vector<std::pair<double, std::size_t>> scored;
    for (std::size_t i = 0; i < pruned.size(); ++i) {
        if (placeable[i])
            scored.emplace_back(bestScore[i], i);
    }
    std::sort(scored.begin(), scored.end());

    // Keep the best candidate of every segment count first (the
    // placement step may not be able to realize the preferred count on
    // the chiplets left by other models), then fill by pure score.
    std::vector<Segmentation> top;
    std::set<int> countsSeen;
    std::vector<bool> taken(pruned.size(), false);
    for (const auto& [score, idx] : scored) {
        const int count = pruned[idx].numSegments();
        if (countsSeen.insert(count).second) {
            top.push_back(pruned[idx]);
            taken[idx] = true;
        }
    }
    for (const auto& [score, idx] : scored) {
        if (static_cast<int>(top.size()) >=
            std::max<int>(opts_.seg.topK,
                          static_cast<int>(countsSeen.size())))
            break;
        if (!taken[idx]) {
            top.push_back(pruned[idx]);
            taken[idx] = true;
        }
    }
    return top;
}

void
WindowScheduler::placeCombo(const std::vector<int>& present,
                            const std::vector<Segmentation>& segs,
                            const std::vector<int>& entry,
                            SoloCache& cache, PathCache& pathCache,
                            Result& result) const
{
    const Topology& topo = db_.mcm().topology();
    obs::SearchCounters::bump(opts_.counters,
                              &obs::SearchCounters::combosPlaced);
    auto entryOf = [&](int model) {
        return model < static_cast<int>(entry.size()) ? entry[model] : -1;
    };

    // Place in decreasing segment-count order: the most constrained
    // models claim connected paths first.
    std::vector<std::size_t> order(present.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return segs[a].numSegments() > segs[b].numSegments();
              });

    std::vector<BeamState> beam(1);
    beam.front().used.assign(topo.numNodes(), false);

    for (std::size_t oi = 0; oi < order.size(); ++oi) {
        const std::size_t mi = order[oi];
        const int model = present[mi];
        const Segmentation& seg = segs[mi];
        const int numSegs = seg.numSegments();

        // Score every (state, path) extension first and materialize
        // only the beamWidth survivors: a BeamState copy is several
        // vector allocations, and the pre-PR loop paid it for every
        // candidate just to discard all but the top few. Candidates
        // are generated in (state, path) order and ranked with the
        // same stable sort and score as the materialized states were,
        // so the surviving beam is identical.
        struct Extension
        {
            double maxLatency;
            double sumEnergy;
            int stateIdx;
            int pathIdx;
        };
        std::vector<std::shared_ptr<const PathCache::PathList>>
            statePaths(beam.size());
        std::vector<Extension> candidates;
        for (std::size_t si = 0; si < beam.size(); ++si) {
            const BeamState& state = beam[si];
            statePaths[si] = pathCache.get(
                topo, numSegs, state.used, opts_.maxPathsPerModel);
            const auto& paths = *statePaths[si];
            for (std::size_t pi = 0; pi < paths.size(); ++pi) {
                const auto [lat, energy] = soloCost(
                    model, seg, paths[pi], entryOf(model), cache);
                candidates.push_back(
                    {std::max(state.maxLatency, lat),
                     state.sumEnergy + energy, static_cast<int>(si),
                     static_cast<int>(pi)});
            }
        }
        if (candidates.empty()) {
            debug("beam died placing model ", model, " with ", numSegs,
                  " segments");
            return;
        }
        std::stable_sort(candidates.begin(), candidates.end(),
                         [&](const Extension& a, const Extension& b) {
                             return partialScore(a.maxLatency,
                                                 a.sumEnergy) <
                                    partialScore(b.maxLatency,
                                                 b.sumEnergy);
                         });
        if (static_cast<int>(candidates.size()) > opts_.beamWidth)
            candidates.resize(opts_.beamWidth);

        std::vector<BeamState> next;
        next.reserve(candidates.size());
        for (const Extension& ext : candidates) {
            BeamState grown = beam[ext.stateIdx];
            const auto& path = (*statePaths[ext.stateIdx])[ext.pathIdx];
            for (int node : path)
                grown.used[node] = true;
            ModelPlacement mp;
            mp.modelIdx = model;
            mp.segments.reserve(numSegs);
            for (int k = 0; k < numSegs; ++k) {
                mp.segments.push_back(
                    PlacedSegment{seg.segments[k], path[k]});
            }
            grown.placed.push_back(std::move(mp));
            grown.maxLatency = ext.maxLatency;
            grown.sumEnergy = ext.sumEnergy;
            next.push_back(std::move(grown));
        }
        beam = std::move(next);
    }

    for (const BeamState& state : beam) {
        WindowPlacement placement;
        placement.models = state.placed;
        placement.entryChiplet.assign(db_.scenario().numModels(), -1);
        for (int m : present)
            placement.entryChiplet[m] = entryOf(m);
        ScoredPlacement scored;
        scored.cost = fullEval_.evaluate(placement);
        scored.score = score(scored.cost);
        scored.placement = std::move(placement);
        result.top.push_back(std::move(scored));
    }
}

WindowScheduler::Result
WindowScheduler::search(const WindowAssignment& wa,
                        const NodeAllocation& nodes, std::uint64_t seed,
                        const std::vector<int>& entry) const
{
    const std::vector<int> present = presentModels(wa);
    SCAR_REQUIRE(!present.empty(), "window has no layers to schedule");
    for (int m : present) {
        SCAR_REQUIRE(nodes[m] >= 1, "model ", m,
                     " present but allocated no nodes");
    }
    auto entryOf = [&](int model) {
        return model < static_cast<int>(entry.size()) ? entry[model] : -1;
    };

    // SEG (Heuristic 1): quick prune per model, then placement-aware
    // refinement keeping the top-k per model. Each model draws from
    // its own seed stream, so one model's capped-enumeration sampling
    // never shifts another's.
    SoloCache cache;
    PathCache pathCache;
    pathCache.setCounters(opts_.counters);
    std::vector<std::vector<Segmentation>> segLists;
    segLists.reserve(present.size());
    for (int m : present) {
        Rng segRng(mixSeed(seed, static_cast<std::uint64_t>(m)));
        auto pruned = rankSegmentations(db_, m, wa.perModel[m], nodes[m],
                                        target_, opts_.seg, segRng);
        segLists.push_back(refineSegmentations(m, std::move(pruned),
                                               entryOf(m), cache,
                                               pathCache));
        SCAR_ASSERT(!segLists.back().empty(),
                    "no segmentation candidates for model ", m);
    }

    // Combo enumeration ordered by total rank (best-first), capped.
    std::vector<std::vector<int>> combos;
    {
        // Breadth-first by rank sum: enumerate index vectors whose
        // component sum is s = 0, 1, 2, ... until the cap.
        int maxSum = 0;
        for (const auto& list : segLists)
            maxSum += static_cast<int>(list.size()) - 1;
        for (int s = 0;
             s <= maxSum &&
             static_cast<int>(combos.size()) < opts_.maxCombos;
             ++s) {
            std::vector<int> combo(segLists.size(), 0);
            // Recursive enumeration of fixed-sum index vectors.
            std::function<void(std::size_t, int)> rec =
                [&](std::size_t idx, int remaining) {
                    if (static_cast<int>(combos.size()) >=
                        opts_.maxCombos)
                        return;
                    if (idx + 1 == combo.size()) {
                        if (remaining <
                            static_cast<int>(segLists[idx].size())) {
                            combo[idx] = remaining;
                            combos.push_back(combo);
                        }
                        return;
                    }
                    const int limit = std::min(
                        remaining,
                        static_cast<int>(segLists[idx].size()) - 1);
                    for (int v = 0; v <= limit; ++v) {
                        combo[idx] = v;
                        rec(idx + 1, remaining - v);
                    }
                };
            rec(0, s);
        }
    }

    // Combo placements are independent; fan out across the pool and
    // merge in combo index order so the stable ranking below is
    // identical at any pool size.
    std::vector<Result> comboResults(combos.size());
    forEachIndex(opts_.pool, combos.size(), [&](std::size_t ci) {
        std::vector<Segmentation> segs;
        segs.reserve(combos[ci].size());
        for (std::size_t i = 0; i < combos[ci].size(); ++i)
            segs.push_back(segLists[i][combos[ci][i]]);
        placeCombo(present, segs, entry, cache, pathCache,
                   comboResults[ci]);
    });

    Result result;
    for (Result& cr : comboResults) {
        result.top.insert(result.top.end(),
                          std::make_move_iterator(cr.top.begin()),
                          std::make_move_iterator(cr.top.end()));
    }

    if (result.top.empty()) {
        // Fallback: one segment per model is always placeable when the
        // package has a free chiplet per model (paths of length 1).
        debug("window search fell back to single-segment placement");
        std::vector<Segmentation> segs;
        for (int m : present) {
            Segmentation seg;
            seg.segments.push_back(wa.perModel[m]);
            segs.push_back(std::move(seg));
        }
        placeCombo(present, segs, entry, cache, pathCache, result);
    }

    if (result.top.empty())
        return result;

    std::stable_sort(result.top.begin(), result.top.end(),
                     [](const ScoredPlacement& a,
                        const ScoredPlacement& b) {
                         return a.score < b.score;
                     });
    if (static_cast<int>(result.top.size()) > opts_.maxTopCandidates)
        result.top.resize(opts_.maxTopCandidates);
    result.best = result.top.front();
    result.found = true;
    return result;
}

WindowScheduler::Result
WindowScheduler::placeSegmentations(
    const std::vector<int>& presentModels,
    const std::vector<Segmentation>& segs,
    const std::vector<int>& entry, SoloCache* sharedCache,
    PathCache* sharedPaths) const
{
    Result result;
    SoloCache localCache;
    SoloCache& cache = sharedCache != nullptr ? *sharedCache : localCache;
    PathCache localPaths;
    localPaths.setCounters(opts_.counters);
    PathCache& paths = sharedPaths != nullptr ? *sharedPaths : localPaths;
    placeCombo(presentModels, segs, entry, cache, paths, result);
    if (result.top.empty())
        return result;
    std::stable_sort(result.top.begin(), result.top.end(),
                     [](const ScoredPlacement& a,
                        const ScoredPlacement& b) {
                         return a.score < b.score;
                     });
    if (static_cast<int>(result.top.size()) > opts_.maxTopCandidates)
        result.top.resize(opts_.maxTopCandidates);
    result.best = result.top.front();
    result.found = true;
    return result;
}

} // namespace scar
