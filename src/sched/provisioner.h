/**
 * @file
 * PROV engine (paper Section IV-B): estimates the number of chiplet
 * nodes each model receives in a time window.
 *
 * Node assignments are dataflow-agnostic ("nodes", not chiplets).
 * Two modes:
 *  - Rule (uniform distribution, Eq. 2):
 *      N_i = round(E(P_i) / sum_j E(P_j) * |C|)
 *    with every present model guaranteed at least one node;
 *  - Exhaustive: every allocation vector with N_i >= 1 and
 *    sum N_i <= |C| (ablation, Section V-E).
 *
 * Heuristic 2 (node allocation constraint) caps N_i to bound the
 * segmentation space for models with many small layers.
 */

#ifndef SCAR_SCHED_PROVISIONER_H
#define SCAR_SCHED_PROVISIONER_H

#include <vector>

#include "cost/cost_db.h"
#include "eval/metrics.h"
#include "sched/time_window.h"

namespace scar
{

/** Provisioning configuration. */
struct ProvisionerOptions
{
    enum class Mode { Rule, Exhaustive };
    Mode mode = Mode::Rule;
    /** Heuristic 2: max nodes per model (0 = no constraint). */
    int maxNodesPerModel = 0;
    /** Cap on exhaustive candidates (0 = unlimited). */
    int maxCandidates = 4096;
};

/**
 * A node allocation for one window: nodes[m] chiplets for model m
 * (0 for models absent from the window).
 */
using NodeAllocation = std::vector<int>;

/**
 * Produces candidate node allocations for a window.
 * @param wa window assignment (which models have layers here)
 * @param db cost database for the expectation values E(P_i)
 * @param target performance metric used for E(P_i)
 * @return one allocation in Rule mode, many in Exhaustive mode
 */
std::vector<NodeAllocation> provisionNodes(const WindowAssignment& wa,
                                           const CostDb& db,
                                           OptTarget target,
                                           const ProvisionerOptions& opts);

} // namespace scar

#endif // SCAR_SCHED_PROVISIONER_H
