/**
 * @file
 * SEG engine (paper Section IV-C): partitions a model's window layers
 * into contiguous segments mappable to chiplet nodes.
 *
 * A candidate is a sequence of split points over the topologically
 * sorted layers; at most N_i segments are allowed for a model holding
 * N_i nodes. Heuristic 1 evaluates candidates per model independently
 * with a placement-free pipeline score and keeps the top-k, reducing
 * the product space to a sum (the engine recombines top-k lists).
 */

#ifndef SCAR_SCHED_SEGMENTATION_H
#define SCAR_SCHED_SEGMENTATION_H

#include <vector>

#include "common/rng.h"
#include "cost/cost_db.h"
#include "eval/metrics.h"
#include "workload/model.h"

namespace scar
{

/** One segmentation candidate: contiguous ranges covering the window. */
struct Segmentation
{
    std::vector<LayerRange> segments;

    int numSegments() const { return static_cast<int>(segments.size()); }
};

/** SEG engine knobs. */
struct SegmentationOptions
{
    int topK = 3;              ///< Heuristic-1 candidates kept per model
    int pruneK = 16;           ///< quick-stage survivors before the
                               ///< placement-aware refinement
    int enumCapPerCount = 512; ///< cap on enumerated splits per count
};

/**
 * Enumerates segmentations of `range` into 1..maxSegs contiguous
 * parts. When the combination count for a segment count exceeds
 * `capPerCount`, a deterministic balanced candidate plus random
 * samples are used instead (the cap is logged at debug level).
 */
std::vector<Segmentation> enumerateSegmentations(const LayerRange& range,
                                                 int maxSegs,
                                                 int capPerCount,
                                                 Rng& rng);

/**
 * Heuristic-1 quick ranking: scores each candidate with a
 * placement-free pipeline model (expected layer cycles, 1-hop NoP
 * handoffs) and returns up to pruneK survivors, best first. The best
 * candidate of every segment count is always retained so the
 * placement-aware refinement in the SCHED engine can still choose a
 * different degree of pipelining.
 */
std::vector<Segmentation> rankSegmentations(const CostDb& db, int model,
                                            const LayerRange& range,
                                            int maxSegs, OptTarget target,
                                            const SegmentationOptions& opts,
                                            Rng& rng);

/**
 * The placement-free score used by the ranking (exposed for tests and
 * for the evolutionary search's fitness seeding). Lower is better.
 */
double quickScore(const CostDb& db, int model, const Segmentation& seg,
                  OptTarget target);

} // namespace scar

#endif // SCAR_SCHED_SEGMENTATION_H
