#include "sched/time_window.h"

#include "common/error.h"

namespace scar
{

void
WindowPlan::validate(const Scenario& scenario) const
{
    SCAR_REQUIRE(!windows.empty(), "window plan is empty");
    const int numModels = scenario.numModels();
    std::vector<int> next(numModels, 0);
    for (const WindowAssignment& wa : windows) {
        SCAR_REQUIRE(static_cast<int>(wa.perModel.size()) == numModels,
                     "window arity ", wa.perModel.size(),
                     " != model count ", numModels);
        for (int m = 0; m < numModels; ++m) {
            const LayerRange& r = wa.perModel[m];
            if (r.empty())
                continue;
            SCAR_REQUIRE(r.first == next[m],
                         "window ranges not contiguous for model ", m,
                         ": expected first=", next[m], " got ", r.first);
            SCAR_REQUIRE(r.last < scenario.models[m].numLayers(),
                         "window range exceeds model ", m);
            next[m] = r.last + 1;
        }
    }
    for (int m = 0; m < numModels; ++m) {
        SCAR_REQUIRE(next[m] == scenario.models[m].numLayers(),
                     "model ", m, " not fully covered by windows (",
                     next[m], "/", scenario.models[m].numLayers(), ")");
    }
}

} // namespace scar
