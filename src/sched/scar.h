/**
 * @file
 * SCAR scheduler facade — the public entry point of the library.
 *
 * Wires the four engines of Figure 4 into the two-level search of
 * Figure 3:
 *   MCM-Reconfig (time windows, greedy packing)
 *     -> PROV (node provisioning per window)
 *       -> SEG (layer segmentation, Heuristic 1)
 *         -> SCHED (scheduling trees -> chiplet placement)
 *           -> heterogeneous MCM cost model (scores feed back up)
 *
 * Typical use:
 * @code
 *   Scenario sc = suite::datacenterScenario(4);
 *   Mcm mcm = templates::hetSides3x3();
 *   Scar scar(sc, mcm, ScarOptions{});
 *   ScheduleResult result = scar.run();
 * @endcode
 *
 * Parallelism: the per-window search (combo fan-out, EA population
 * evaluation) runs on a worker pool selected by ScarOptions::threads.
 * Every randomized stage draws from its own mixSeed-derived stream,
 * so run() returns a bit-identical ScheduleResult at any pool size —
 * including fully serial — and is safe to invoke concurrently from
 * multiple threads (e.g. background schedule solves in the serving
 * runtime). Exception: a profiled run (ScarOptions::profile set)
 * attaches live counters to the instance and must run exclusively.
 */

#ifndef SCAR_SCHED_SCAR_H
#define SCAR_SCHED_SCAR_H

#include <cstdint>
#include <memory>

#include "common/thread_pool.h"
#include "obs/solve_profile.h"
#include "sched/evolutionary.h"
#include "sched/greedy_packing.h"
#include "sched/sched_engine.h"

namespace scar
{

/** Search strategy for the per-window SEG space. */
enum class SearchMode
{
    BruteForce,   ///< top-k recombination (paper: all 3x3 experiments)
    Evolutionary, ///< EA over split genomes (paper: 6x6 experiments)
};

/** Top-level scheduler configuration. */
struct ScarOptions
{
    OptTarget target = OptTarget::Edp;
    CustomScoreFn customScore;  ///< optional user metric (scenario level)
    int nsplits = 4;            ///< window boundary points (paper default)
    PackingPolicy packing = PackingPolicy::GreedyFirstFit;
    ProvisionerOptions prov;
    WindowSearchOptions window;
    SearchMode mode = SearchMode::BruteForce;
    EvoOptions evo;
    std::uint64_t seed = 0xC0FFEEuLL;
    /**
     * Search parallelism: 0 uses the process-wide ThreadPool::global()
     * (SCAR_THREADS env / hardware size), 1 forces a fully serial
     * search, N > 1 gives this scheduler a dedicated pool of that
     * concurrency. Ignored when `pool` is set. Results are identical
     * for every setting.
     */
    int threads = 0;
    /** Explicit worker pool override (not owned); wins over threads. */
    ThreadPool* pool = nullptr;
    /**
     * When set, run() fills this with per-phase wall timings and
     * cache-efficacy counters (see obs/solve_profile.h). Profiling
     * never changes the schedule, but a profiled run attaches live
     * counters to this instance's cost database, so run() must then
     * be the only solve using the instance — the concurrent-run
     * guarantee above applies to the default (nullptr) state only.
     */
    obs::SolveProfile* profile = nullptr;
};

/** One scheduled time window of the final schedule. */
struct ScheduledWindow
{
    WindowAssignment assignment;
    NodeAllocation nodes;
    WindowPlacement placement;
    WindowCost cost;
};

/** Complete scheduling outcome for a scenario on an MCM. */
struct ScheduleResult
{
    std::vector<ScheduledWindow> windows;
    Metrics metrics;                  ///< end-to-end totals
    std::vector<Metrics> candidates;  ///< scenario-level Pareto cloud
};

/**
 * One stable cut point of a schedule: the end of window `windowIdx`.
 *
 * The serving runtime replays schedules window by window, and window
 * ends are the only instants where the package holds no in-flight
 * layer work — every placed segment either finished in this window or
 * has not started. That makes boundaries the natural re-entry points
 * for request-level preemption (suspend here, replay something
 * urgent, resume from the same cursor without re-solving), the same
 * cut-point role NN-Baton-style pipeline frameworks assign to stage
 * boundaries. `segments` counts the placed segments inside the ending
 * window: a future finer-grained preemptor could cut between them,
 * so the count is exposed as metadata even though the executor
 * currently only cuts at window ends.
 */
struct WindowBoundary
{
    int windowIdx = 0;         ///< window that ends at this boundary
    double windowCycles = 0.0; ///< latency of the ending window alone
    double startCycles = 0.0;  ///< cumulative latency at window start
    double endCycles = 0.0;    ///< cumulative latency at the boundary
    int segments = 0;          ///< placed segments inside the window
    bool last = false;         ///< the schedule completes here
};

/**
 * The ordered boundary metadata of a schedule, one entry per window.
 * Deterministic in the ScheduleResult alone; the runtime's replay
 * view (runtime/schedule_cache.h) and the boundary preemptor derive
 * their per-window timings from these offsets.
 */
std::vector<WindowBoundary> windowBoundaries(const ScheduleResult& result);

/** The SCAR scheduler. */
class Scar
{
  public:
    /**
     * Builds the layer-cost database and prepares the engines. The
     * scenario and MCM are copied, so temporaries are safe to pass.
     */
    Scar(Scenario scenario, Mcm mcm, ScarOptions options = ScarOptions{});

    /** Runs the full two-level search and returns the best schedule. */
    ScheduleResult run();

    /** The per-layer cost database (offline MAESTRO pass). */
    const CostDb& db() const { return db_; }

    /** The options in effect. */
    const ScarOptions& options() const { return options_; }

  private:
    WindowScheduler::Result searchWindow(const WindowAssignment& wa,
                                         const NodeAllocation& nodes,
                                         std::uint64_t seed,
                                         const std::vector<int>& entry)
        const;

    const Scenario scenario_;
    const Mcm mcm_;
    ScarOptions options_;
    CostDb db_;
    obs::SearchCounters* runCounters_ = nullptr; ///< live in profiled run()
    std::unique_ptr<ThreadPool> ownedPool_; ///< when threads > 1
    ThreadPool* pool_ = nullptr;            ///< null = serial search
};

} // namespace scar

#endif // SCAR_SCHED_SCAR_H
