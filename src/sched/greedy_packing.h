/**
 * @file
 * MCM-Reconfig engine: time-window characterization + the greedy layer
 * packing of Algorithm 1 (paper Section IV-A).
 *
 * The worst-case expected model latency sets the time horizon, which
 * is cut into nsplits+1 periodic windows. Layers pack first-fit into
 * windows by expected execution time (Eq. 1 over dataflow classes,
 * scaled by batch); a layer that would cross a boundary defers to the
 * next window; trailing/trivial windows with no layers are dropped.
 */

#ifndef SCAR_SCHED_GREEDY_PACKING_H
#define SCAR_SCHED_GREEDY_PACKING_H

#include "cost/cost_db.h"
#include "sched/time_window.h"

namespace scar
{

/** Layer-to-window assignment policies. */
enum class PackingPolicy
{
    GreedyFirstFit, ///< Algorithm 1 (default)
    Uniform,        ///< equal layer counts per window (ablation baseline)
};

/**
 * Partitions the scenario into time windows.
 * @param db cost database (provides Eq. 1 expected layer latencies)
 * @param nsplits number of boundary points; yields nsplits+1 windows
 *        before empty-window dropping (paper default: 4)
 * @param policy packing policy
 * @return a validated WindowPlan with at least one window
 */
WindowPlan packLayers(const CostDb& db, int nsplits,
                      PackingPolicy policy = PackingPolicy::GreedyFirstFit);

/**
 * Expected execution cycles of one model's full batch, used for the
 * time-horizon characterization (sum of Eq. 1 over layers x batch).
 */
double expectedModelCycles(const CostDb& db, int model);

} // namespace scar

#endif // SCAR_SCHED_GREEDY_PACKING_H
