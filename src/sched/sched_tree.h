/**
 * @file
 * Scheduling-tree traversal (paper Section IV-D).
 *
 * A scheduling tree's nodes mirror chiplet resources; edges follow the
 * interposer adjacency; a node may appear once per tree (exclusive
 * occupancy). A model's candidate schedule is a simple path of length
 * = its segment count through currently unoccupied chiplets, found by
 * constrained depth-first search from a root chiplet.
 */

#ifndef SCAR_SCHED_SCHED_TREE_H
#define SCAR_SCHED_SCHED_TREE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "arch/topology.h"
#include "common/flat_hash.h"
#include "obs/solve_profile.h"

namespace scar
{

/**
 * Enumerates simple paths of exactly `length` nodes starting at
 * `root`, avoiding nodes marked in `blocked`, up to `maxPaths` paths.
 * @return paths as node-id sequences (each of size `length`)
 */
std::vector<std::vector<int>> enumeratePaths(const Topology& topo,
                                             int root, int length,
                                             const std::vector<bool>& blocked,
                                             int maxPaths);

/**
 * Enumerates candidate paths from every unblocked root, capped at
 * `maxTotal` overall (caps are split across roots).
 */
std::vector<std::vector<int>> enumeratePathsAllRoots(
    const Topology& topo, int length, const std::vector<bool>& blocked,
    int maxTotal);

/**
 * Thread-safe memo of enumeratePathsAllRoots results keyed by
 * (path length, blocked-node bitmask).
 *
 * The beam search re-enumerates paths for every beam state, and beam
 * states collapse onto few distinct (length, occupancy) keys — every
 * combo of a window search starts from the same empty package, and
 * most beams agree on which chiplets earlier models claimed. The
 * cached value is a pure function of the key (the DFS is
 * deterministic and RNG-free), so sharing one cache across the combo
 * fan-out — or across a whole EA run — cannot change any result,
 * whatever the thread interleaving.
 *
 * Topologies with more than 64 nodes don't fit the bitmask key and
 * bypass the cache (correct, just unmemoized).
 */
class PathCache
{
  public:
    using PathList = std::vector<std::vector<int>>;

    /**
     * The memoized enumeration for (length, blocked), computed on
     * miss. One cache serves one (topology, maxTotal) pair — the
     * topology and cap are pinned by the first get() and asserted on
     * every later call, since neither is part of the memo key.
     */
    std::shared_ptr<const PathList> get(const Topology& topo,
                                        int length,
                                        const std::vector<bool>& blocked,
                                        int maxTotal);

    /**
     * Attaches (or detaches, with nullptr) hit/miss counters for
     * profiled solves. Bitmask bypasses (> 64 nodes) count as misses.
     */
    void setCounters(obs::SearchCounters* counters)
    {
        counters_ = counters;
    }

  private:
    struct Key
    {
        std::uint64_t blockedMask = 0;
        int length = 0;

        bool
        operator==(const Key& other) const
        {
            return blockedMask == other.blockedMask &&
                   length == other.length;
        }
    };

    struct KeyHash
    {
        std::uint64_t
        operator()(const Key& key) const
        {
            return mixBits(key.blockedMask ^
                           (static_cast<std::uint64_t>(key.length)
                            << 56));
        }
    };

    mutable std::mutex mu_;
    FlatHashMap<Key, std::shared_ptr<const PathList>, KeyHash> map_;
    const Topology* topo_ = nullptr; ///< pinned by the first get()
    int maxTotal_ = -1;              ///< pinned by the first get()
    obs::SearchCounters* counters_ = nullptr; ///< profiled solves only
};

} // namespace scar

#endif // SCAR_SCHED_SCHED_TREE_H
