/**
 * @file
 * Scheduling-tree traversal (paper Section IV-D).
 *
 * A scheduling tree's nodes mirror chiplet resources; edges follow the
 * interposer adjacency; a node may appear once per tree (exclusive
 * occupancy). A model's candidate schedule is a simple path of length
 * = its segment count through currently unoccupied chiplets, found by
 * constrained depth-first search from a root chiplet.
 */

#ifndef SCAR_SCHED_SCHED_TREE_H
#define SCAR_SCHED_SCHED_TREE_H

#include <vector>

#include "arch/topology.h"

namespace scar
{

/**
 * Enumerates simple paths of exactly `length` nodes starting at
 * `root`, avoiding nodes marked in `blocked`, up to `maxPaths` paths.
 * @return paths as node-id sequences (each of size `length`)
 */
std::vector<std::vector<int>> enumeratePaths(const Topology& topo,
                                             int root, int length,
                                             const std::vector<bool>& blocked,
                                             int maxPaths);

/**
 * Enumerates candidate paths from every unblocked root, capped at
 * `maxTotal` overall (caps are split across roots).
 */
std::vector<std::vector<int>> enumeratePathsAllRoots(
    const Topology& topo, int length, const std::vector<bool>& blocked,
    int maxTotal);

} // namespace scar

#endif // SCAR_SCHED_SCHED_TREE_H
