#include "sched/sched_tree.h"

#include <algorithm>

#include "common/error.h"

namespace scar
{

namespace
{

void
dfs(const Topology& topo, int node, int remaining,
    std::vector<bool>& visited, std::vector<int>& path, int maxPaths,
    std::vector<std::vector<int>>& out)
{
    if (static_cast<int>(out.size()) >= maxPaths)
        return;
    path.push_back(node);
    visited[node] = true;
    if (remaining == 1) {
        out.push_back(path);
    } else {
        for (int next : topo.neighbors(node)) {
            if (!visited[next])
                dfs(topo, next, remaining - 1, visited, path, maxPaths,
                    out);
        }
    }
    visited[node] = false;
    path.pop_back();
}

} // namespace

std::vector<std::vector<int>>
enumeratePaths(const Topology& topo, int root, int length,
               const std::vector<bool>& blocked, int maxPaths)
{
    SCAR_REQUIRE(length >= 1, "path length must be >= 1");
    SCAR_REQUIRE(static_cast<int>(blocked.size()) == topo.numNodes(),
                 "blocked mask arity mismatch");
    std::vector<std::vector<int>> out;
    if (blocked[root])
        return out;
    std::vector<bool> visited = blocked;
    std::vector<int> path;
    dfs(topo, root, length, visited, path, maxPaths, out);
    return out;
}

std::vector<std::vector<int>>
enumeratePathsAllRoots(const Topology& topo, int length,
                       const std::vector<bool>& blocked, int maxTotal)
{
    std::vector<int> roots;
    for (int n = 0; n < topo.numNodes(); ++n) {
        if (!blocked[n])
            roots.push_back(n);
    }
    std::vector<std::vector<int>> out;
    if (roots.empty())
        return out;
    const int perRoot =
        std::max(1, maxTotal / static_cast<int>(roots.size()));
    for (int root : roots) {
        if (static_cast<int>(out.size()) >= maxTotal)
            break;
        const int budget = std::min(
            perRoot, maxTotal - static_cast<int>(out.size()));
        auto paths = enumeratePaths(topo, root, length, blocked, budget);
        out.insert(out.end(), paths.begin(), paths.end());
    }
    return out;
}

std::shared_ptr<const PathCache::PathList>
PathCache::get(const Topology& topo, int length,
               const std::vector<bool>& blocked, int maxTotal)
{
    if (topo.numNodes() > 64) {
        obs::SearchCounters::bump(counters_,
                                  &obs::SearchCounters::pathMisses);
        return std::make_shared<const PathList>(
            enumeratePathsAllRoots(topo, length, blocked, maxTotal));
    }

    Key key;
    key.length = length;
    for (int n = 0; n < topo.numNodes(); ++n) {
        if (blocked[n])
            key.blockedMask |= std::uint64_t{1} << n;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        SCAR_ASSERT(topo_ == nullptr || topo_ == &topo,
                    "PathCache shared across different topologies");
        SCAR_ASSERT(maxTotal_ < 0 || maxTotal_ == maxTotal,
                    "PathCache shared across different maxTotal caps");
        topo_ = &topo;
        maxTotal_ = maxTotal;
        if (const auto* cached = map_.find(key)) {
            obs::SearchCounters::bump(counters_,
                                      &obs::SearchCounters::pathHits);
            return *cached;
        }
        obs::SearchCounters::bump(counters_,
                                  &obs::SearchCounters::pathMisses);
    }

    // Enumerate outside the lock: concurrent misses on one key then
    // race benign duplicates (identical values), and insert() keeps
    // the first.
    auto paths = std::make_shared<const PathList>(
        enumeratePathsAllRoots(topo, length, blocked, maxTotal));
    std::lock_guard<std::mutex> lock(mu_);
    return map_.insert(key, std::move(paths));
}

} // namespace scar
