/**
 * @file
 * Description-file front end (paper Figure 4): the scheduling
 * framework receives (1) multi-model workload description files and
 * (2) an MCM hardware specification file. This module parses a small
 * line-oriented format into Scenario and Mcm objects.
 *
 * Workload file:
 * @code
 *   scenario my-workload
 *   model gptL batch=8
 *   model resNet50 batch=32
 *   model custom name=MyNet batch=2
 *     gemm name=fc1 m=128 n=1024 k=512
 *     conv name=c1 k=64 c=3 r=7 s=7 y=224 x=224 stride=2
 * @endcode
 * Zoo model names match the builders in workload/model_zoo.h
 * (gptL, bertLarge, bertBase, resNet50, uNet, googleNet, d2go,
 * planeRcnn, midas, emformer, hrvit, handSP, eyeCod, sp2Dense).
 *
 * MCM file:
 * @code
 *   mcm my-package
 *   template hetSides3x3        # any Figure 6 template, or:
 *   # mesh 3 3
 *   # map NVD Shi NVD / NVD Shi NVD / NVD Shi NVD
 *   pes 4096
 * @endcode
 *
 * Custom-mesh files (the `mesh`/`map` form) may also select an
 * interconnect class (arch/topology.h):
 * @code
 *   topology torus              # mesh (default) | torus |
 *                               # express | broadcast
 *   express 0 8                 # one express link per line
 *   broadcast all               # or: broadcast 0 4 8 ...
 * @endcode
 * `express` lines require `topology express`; `broadcast` requires
 * `topology broadcast`. Template names additionally include the
 * interconnect variants hetSidesTorus3x3, hetSidesExpress3x3, and
 * hetSidesBroadcast3x3.
 *
 * Lines starting with '#' and blank lines are ignored. Errors raise
 * FatalError with the offending line number.
 */

#ifndef SCAR_IO_CONFIG_H
#define SCAR_IO_CONFIG_H

#include <istream>
#include <string>

#include "arch/mcm.h"
#include "workload/scenario.h"

namespace scar
{
namespace io
{

/** Parses a workload description from a stream. */
Scenario parseScenario(std::istream& in);

/** Parses a workload description file. */
Scenario loadScenario(const std::string& path);

/** Parses an MCM description from a stream. */
Mcm parseMcm(std::istream& in);

/** Parses an MCM description file. */
Mcm loadMcm(const std::string& path);

} // namespace io
} // namespace scar

#endif // SCAR_IO_CONFIG_H
