#include "io/config.h"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <vector>

#include "arch/mcm_templates.h"
#include "common/error.h"
#include "workload/model_zoo.h"

namespace scar
{
namespace io
{

namespace
{

/** A parsed line: the keyword plus positional and key=value tokens. */
struct ConfigLine
{
    int number = 0;
    std::string keyword;
    std::vector<std::string> positional;
    std::map<std::string, std::string> kv;

    bool has(const std::string& key) const { return kv.count(key) > 0; }

    std::string
    str(const std::string& key) const
    {
        auto it = kv.find(key);
        SCAR_REQUIRE(it != kv.end(), "line ", number,
                     ": missing attribute '", key, "'");
        return it->second;
    }

    std::int64_t
    num(const std::string& key) const
    {
        const std::string value = str(key);
        try {
            return std::stoll(value);
        } catch (const std::exception&) {
            fatal("line ", number, ": attribute '", key,
                  "' is not a number: ", value);
        }
    }

    std::int64_t
    numOr(const std::string& key, std::int64_t fallback) const
    {
        return has(key) ? num(key) : fallback;
    }
};

/** Tokenizes one line; returns false for blanks and comments. */
bool
parseLine(const std::string& raw, int number, ConfigLine& out)
{
    const std::size_t hash = raw.find('#');
    const std::string text =
        hash == std::string::npos ? raw : raw.substr(0, hash);
    std::istringstream iss(text);
    std::string token;
    out = ConfigLine{};
    out.number = number;
    while (iss >> token) {
        if (out.keyword.empty()) {
            out.keyword = token;
        } else if (token.find('=') != std::string::npos) {
            const std::size_t eq = token.find('=');
            out.kv[token.substr(0, eq)] = token.substr(eq + 1);
        } else {
            out.positional.push_back(token);
        }
    }
    return !out.keyword.empty();
}

using ZooBuilder = std::function<Model(int)>;

const std::map<std::string, ZooBuilder>&
zooBuilders()
{
    static const std::map<std::string, ZooBuilder> builders = {
        {"gptL", [](int b) { return zoo::gptL(b); }},
        {"bertLarge", [](int b) { return zoo::bertLarge(b); }},
        {"bertBase", [](int b) { return zoo::bertBase(b); }},
        {"resNet50", [](int b) { return zoo::resNet50(b); }},
        {"uNet", [](int b) { return zoo::uNet(b); }},
        {"googleNet", [](int b) { return zoo::googleNet(b); }},
        {"d2go", [](int b) { return zoo::d2go(b); }},
        {"planeRcnn", [](int b) { return zoo::planeRcnn(b); }},
        {"midas", [](int b) { return zoo::midas(b); }},
        {"emformer", [](int b) { return zoo::emformer(b); }},
        {"hrvit", [](int b) { return zoo::hrvit(b); }},
        {"handSP", [](int b) { return zoo::handSP(b); }},
        {"eyeCod", [](int b) { return zoo::eyeCod(b); }},
        {"sp2Dense", [](int b) { return zoo::sp2Dense(b); }},
    };
    return builders;
}

Dataflow
parseDataflow(const std::string& token, int line)
{
    if (token == "NVD")
        return Dataflow::NvdlaWS;
    if (token == "Shi")
        return Dataflow::ShiOS;
    if (token == "RS")
        return Dataflow::EyerissRS;
    fatal("line ", line, ": unknown dataflow '", token,
          "' (expected NVD, Shi, or RS)");
}

/** Appends a custom layer described by a config line. */
void
appendCustomLayer(Model& model, const ConfigLine& line)
{
    Layer layer;
    layer.id = model.numLayers();
    layer.name = line.has("name")
                     ? line.str("name")
                     : line.keyword + std::to_string(layer.id);
    if (line.keyword == "gemm") {
        model.layers.push_back(
            makeGemmLayer(layer.id, layer.name, line.num("m"),
                          line.num("n"), line.num("k")));
        return;
    }
    if (line.keyword == "conv" || line.keyword == "dwconv") {
        layer.type = line.keyword == "conv" ? OpType::Conv2D
                                            : OpType::DepthwiseConv;
        const std::int64_t stride = line.numOr("stride", 1);
        layer.dims = LayerDims{line.num("k"),
                               line.keyword == "conv" ? line.num("c")
                                                      : line.num("k"),
                               line.numOr("r", 3), line.numOr("s", 3),
                               line.num("y"), line.num("x"), stride,
                               stride};
    } else if (line.keyword == "pool") {
        layer.type = OpType::Pool;
        const std::int64_t window = line.numOr("window", 2);
        const std::int64_t stride = line.numOr("stride", window);
        layer.dims = LayerDims{line.num("c"), line.num("c"), window,
                               window, line.num("y"), line.num("x"),
                               stride, stride};
    } else if (line.keyword == "eltwise") {
        layer.type = OpType::Elementwise;
        layer.dims = LayerDims{line.num("c"), line.num("c"), 1, 1,
                               line.num("y"), line.num("x"), 1, 1};
    } else {
        fatal("line ", line.number, ": unknown layer kind '",
              line.keyword, "'");
    }
    layer.validate();
    model.layers.push_back(std::move(layer));
}

} // namespace

Scenario
parseScenario(std::istream& in)
{
    Scenario sc;
    Model* currentCustom = nullptr;
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
        ++number;
        ConfigLine line;
        if (!parseLine(raw, number, line))
            continue;

        if (line.keyword == "scenario") {
            SCAR_REQUIRE(!line.positional.empty(), "line ", number,
                         ": scenario needs a name");
            sc.name = line.positional.front();
        } else if (line.keyword == "model") {
            SCAR_REQUIRE(!line.positional.empty(), "line ", number,
                         ": model needs a kind");
            const std::string kind = line.positional.front();
            const int batch =
                static_cast<int>(line.numOr("batch", 1));
            if (kind == "custom") {
                Model model;
                model.name = line.has("name") ? line.str("name")
                                              : "custom";
                model.batch = batch;
                sc.models.push_back(std::move(model));
                currentCustom = &sc.models.back();
            } else {
                auto it = zooBuilders().find(kind);
                SCAR_REQUIRE(it != zooBuilders().end(), "line ",
                             number, ": unknown zoo model '", kind,
                             "'");
                sc.models.push_back(it->second(batch));
                currentCustom = nullptr;
            }
        } else {
            SCAR_REQUIRE(currentCustom != nullptr, "line ", number,
                         ": layer line outside a custom model");
            appendCustomLayer(*currentCustom, line);
        }
    }
    SCAR_REQUIRE(!sc.models.empty(), "workload file defines no models");
    sc.finalize();
    return sc;
}

Scenario
loadScenario(const std::string& path)
{
    std::ifstream in(path);
    SCAR_REQUIRE(in.good(), "cannot open workload file: ", path);
    return parseScenario(in);
}

Mcm
parseMcm(std::istream& in)
{
    std::string name = "custom-mcm";
    std::string templateName;
    int meshW = 0;
    int meshH = 0;
    int pes = templates::kDatacenterPes;
    std::vector<std::vector<Dataflow>> map;
    std::string topoKind = "mesh";
    std::vector<Link> expressLinks;
    std::vector<int> broadcastMembers;
    bool broadcastAll = false;

    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
        ++number;
        ConfigLine line;
        if (!parseLine(raw, number, line))
            continue;
        if (line.keyword == "mcm") {
            SCAR_REQUIRE(!line.positional.empty(), "line ", number,
                         ": mcm needs a name");
            name = line.positional.front();
        } else if (line.keyword == "template") {
            SCAR_REQUIRE(!line.positional.empty(), "line ", number,
                         ": template needs a name");
            templateName = line.positional.front();
        } else if (line.keyword == "mesh") {
            SCAR_REQUIRE(line.positional.size() == 2, "line ", number,
                         ": mesh needs width and height");
            meshW = std::stoi(line.positional[0]);
            meshH = std::stoi(line.positional[1]);
        } else if (line.keyword == "pes") {
            SCAR_REQUIRE(!line.positional.empty(), "line ", number,
                         ": pes needs a count");
            pes = std::stoi(line.positional.front());
        } else if (line.keyword == "topology") {
            SCAR_REQUIRE(!line.positional.empty(), "line ", number,
                         ": topology needs a kind (mesh, torus, "
                         "express, broadcast)");
            topoKind = line.positional.front();
            SCAR_REQUIRE(topoKind == "mesh" || topoKind == "torus" ||
                             topoKind == "express" ||
                             topoKind == "broadcast",
                         "line ", number, ": unknown topology kind '",
                         topoKind, "'");
        } else if (line.keyword == "express") {
            SCAR_REQUIRE(line.positional.size() == 2, "line ", number,
                         ": express needs two chiplet ids");
            expressLinks.emplace_back(std::stoi(line.positional[0]),
                                      std::stoi(line.positional[1]));
        } else if (line.keyword == "broadcast") {
            SCAR_REQUIRE(!line.positional.empty(), "line ", number,
                         ": broadcast needs 'all' or member ids");
            if (line.positional.front() == "all") {
                broadcastAll = true;
            } else {
                for (const std::string& token : line.positional)
                    broadcastMembers.push_back(std::stoi(token));
            }
        } else if (line.keyword == "map") {
            // Row-major dataflow map; '/' separates mesh rows.
            map.emplace_back();
            for (const std::string& token : line.positional) {
                if (token == "/") {
                    map.emplace_back();
                } else {
                    map.back().push_back(
                        parseDataflow(token, number));
                }
            }
        } else {
            fatal("line ", number, ": unknown MCM keyword '",
                  line.keyword, "'");
        }
    }

    if (!templateName.empty()) {
        using TemplateFn = std::function<Mcm(int)>;
        const std::map<std::string, TemplateFn> catalog = {
            {"simba3x3Nvd",
             [](int p) { return templates::simba3x3(Dataflow::NvdlaWS, p); }},
            {"simba3x3Shi",
             [](int p) { return templates::simba3x3(Dataflow::ShiOS, p); }},
            {"simba6x6Nvd",
             [](int p) { return templates::simba6x6(Dataflow::NvdlaWS, p); }},
            {"simba6x6Shi",
             [](int p) { return templates::simba6x6(Dataflow::ShiOS, p); }},
            {"hetCb3x3", [](int p) { return templates::hetCb3x3(p); }},
            {"hetSides3x3",
             [](int p) { return templates::hetSides3x3(p); }},
            {"hetCross6x6",
             [](int p) { return templates::hetCross6x6(p); }},
            {"hetTriple3x3",
             [](int p) { return templates::hetTriple3x3(p); }},
            {"simbaTriangularNvd",
             [](int p) {
                 return templates::simbaTriangular(Dataflow::NvdlaWS, p);
             }},
            {"simbaTriangularShi",
             [](int p) {
                 return templates::simbaTriangular(Dataflow::ShiOS, p);
             }},
            {"hetTriangular",
             [](int p) { return templates::hetTriangular(p); }},
            {"hetSidesTorus3x3",
             [](int p) { return templates::hetSidesTorus3x3(p); }},
            {"hetSidesExpress3x3",
             [](int p) { return templates::hetSidesExpress3x3(p); }},
            {"hetSidesBroadcast3x3",
             [](int p) { return templates::hetSidesBroadcast3x3(p); }},
        };
        auto it = catalog.find(templateName);
        SCAR_REQUIRE(it != catalog.end(), "unknown MCM template '",
                     templateName, "'");
        return it->second(pes);
    }

    SCAR_REQUIRE(meshW > 0 && meshH > 0,
                 "MCM file needs a 'template' or a 'mesh' line");
    SCAR_REQUIRE(static_cast<int>(map.size()) == meshH,
                 "dataflow map has ", map.size(), " rows, mesh needs ",
                 meshH);
    for (const auto& row : map) {
        SCAR_REQUIRE(static_cast<int>(row.size()) == meshW,
                     "dataflow map row has ", row.size(),
                     " entries, mesh needs ", meshW);
    }

    SCAR_REQUIRE(expressLinks.empty() || topoKind == "express",
                 "'express' lines require 'topology express'");
    SCAR_REQUIRE((broadcastMembers.empty() && !broadcastAll) ||
                     topoKind == "broadcast",
                 "'broadcast' lines require 'topology broadcast'");
    Topology topo = Topology::mesh(meshW, meshH);
    if (topoKind == "torus") {
        topo = Topology::torus(meshW, meshH);
    } else if (topoKind == "express") {
        topo = Topology::expressMesh(meshW, meshH,
                                     std::move(expressLinks));
    } else if (topoKind == "broadcast") {
        if (broadcastAll || broadcastMembers.empty()) {
            broadcastMembers.resize(
                static_cast<std::size_t>(meshW) * meshH);
            for (std::size_t i = 0; i < broadcastMembers.size(); ++i)
                broadcastMembers[i] = static_cast<int>(i);
        }
        topo = Topology::broadcastMesh(meshW, meshH,
                                       std::move(broadcastMembers));
    }
    std::vector<Chiplet> chiplets;
    for (int y = 0; y < meshH; ++y) {
        for (int x = 0; x < meshW; ++x) {
            Chiplet c;
            c.id = y * meshW + x;
            c.x = x;
            c.y = y;
            c.memInterface = (x == 0 || x == meshW - 1);
            c.spec.dataflow = map[y][x];
            c.spec.numPes = pes;
            chiplets.push_back(c);
        }
    }
    return Mcm(name, std::move(chiplets), std::move(topo));
}

Mcm
loadMcm(const std::string& path)
{
    std::ifstream in(path);
    SCAR_REQUIRE(in.good(), "cannot open MCM file: ", path);
    return parseMcm(in);
}

} // namespace io
} // namespace scar
