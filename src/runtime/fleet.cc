#include "runtime/fleet.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/error.h"
#include "common/logging.h"

namespace scar
{
namespace runtime
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

/** FNV-1a: a stable signature hash (std::hash varies per platform). */
std::size_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 1469598103934665603uLL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211uLL;
    }
    return static_cast<std::size_t>(h);
}

} // namespace

const char*
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin:  return "round-robin";
      case RoutingPolicy::LeastLoaded: return "least-loaded";
      case RoutingPolicy::MixAffinity: return "mix-affinity";
    }
    return "unknown";
}

FleetSimulator::FleetSimulator(std::vector<ServedModel> catalog,
                               Mcm mcm, FleetOptions options)
    : catalog_(std::move(catalog)), mcm_(std::move(mcm)),
      options_(options)
{
    SCAR_REQUIRE(!catalog_.empty(), "fleet: empty catalog");
    SCAR_REQUIRE(options_.shards >= 1, "fleet: need >= 1 shard");
    SCAR_REQUIRE(static_cast<int>(catalog_.size()) <=
                     mcm_.numChiplets(),
                 "fleet: more catalog models than chiplets");
    SCAR_REQUIRE(options_.serving.modeledSolveSec >= 0.0,
                 "fleet: negative modeledSolveSec");
    SCAR_REQUIRE(options_.serving.switchOverheadSec >= 0.0,
                 "fleet: negative switchOverheadSec");
    // Mix signatures key the schedule cache by model name, so two
    // catalog entries sharing a name would silently replay each
    // other's schedules — as would names containing the signature's
    // own delimiter characters.
    std::set<std::string> names;
    for (const ServedModel& sm : catalog_) {
        SCAR_REQUIRE(sm.model.name.find_first_of("#=+") ==
                         std::string::npos,
                     "fleet: catalog model name '", sm.model.name,
                     "' contains a signature delimiter (#, =, +)");
        SCAR_REQUIRE(names.insert(sm.model.name).second,
                     "fleet: duplicate catalog model name ",
                     sm.model.name);
    }

    pool_ = options_.serving.pool != nullptr ? options_.serving.pool
                                             : &ThreadPool::global();
    const ScheduleCacheOptions cacheOpts{
        options_.serving.cacheCapacity};
    const int numCaches =
        options_.sharedCache ? 1 : options_.shards;
    for (int c = 0; c < numCaches; ++c)
        caches_.push_back(
            std::make_unique<AsyncScheduleCache>(*pool_, cacheOpts));
    shards_.resize(options_.shards);
    for (int s = 0; s < options_.shards; ++s)
        shards_[s].cache =
            caches_[options_.sharedCache ? 0 : s].get();
}

const AsyncScheduleCache&
FleetSimulator::cache(int shard) const
{
    SCAR_REQUIRE(shard >= 0 &&
                     shard < static_cast<int>(shards_.size()),
                 "fleet: cache index ", shard, " out of range");
    return *shards_[shard].cache;
}

AsyncScheduleCache&
FleetSimulator::cacheForSpeculation(const std::string& signature)
{
    if (options_.sharedCache)
        return *caches_[0];
    if (options_.routing == RoutingPolicy::MixAffinity)
        return *caches_[fnv1a(signature) % caches_.size()];
    // Round-robin / least-loaded: the dispatch will consult whichever
    // shard becomes available first — mid-replay (busyUntilSec) or
    // parked waiting on a solve (pendingReadySec) — so warm that
    // shard's cache.
    int target = -1;
    double freeAt = 0.0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        double availableAt;
        if (shards_[s].executor.busy())
            availableAt = shards_[s].busyUntilSec;
        else if (shards_[s].hasPending)
            availableAt = shards_[s].pendingReadySec;
        else
            continue;
        if (target < 0 || availableAt < freeAt) {
            target = static_cast<int>(s);
            freeAt = availableAt;
        }
    }
    return *shards_[target < 0 ? 0 : target].cache;
}

int
FleetSimulator::routeDispatch(const std::string& signature)
{
    const std::size_t n = shards_.size();
    auto isCandidate = [&](std::size_t s) {
        return !shards_[s].executor.busy() && !shards_[s].hasPending;
    };
    auto leastLoaded = [&]() {
        int best = -1;
        for (std::size_t s = 0; s < n; ++s) {
            if (!isCandidate(s))
                continue;
            if (best < 0 || shards_[s].busySec < shards_[best].busySec)
                best = static_cast<int>(s);
        }
        return best;
    };
    switch (options_.routing) {
      case RoutingPolicy::RoundRobin:
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t s = (rrNext_ + k) % n;
            if (isCandidate(s)) {
                rrNext_ = s + 1;
                return static_cast<int>(s);
            }
        }
        return -1;
      case RoutingPolicy::LeastLoaded:
        return leastLoaded();
      case RoutingPolicy::MixAffinity: {
        const std::size_t target = fnv1a(signature) % n;
        if (isCandidate(target))
            return static_cast<int>(target);
        return leastLoaded();
      }
    }
    return -1;
}

ServingReport
FleetSimulator::run(const std::vector<Request>& trace)
{
    for (std::size_t i = 1; i < trace.size(); ++i)
        SCAR_REQUIRE(trace[i - 1].arrivalSec <= trace[i].arrivalSec,
                     "fleet: trace not sorted by arrival time");

    // Per-run accounting reset; caches persist across runs.
    ScheduleCacheStats before;
    for (const auto& cache : caches_) {
        const ScheduleCacheStats s = cache->stats();
        before.hits += s.hits;
        before.misses += s.misses;
        before.evictions += s.evictions;
    }
    for (Shard& shard : shards_) {
        SCAR_REQUIRE(!shard.executor.busy() && !shard.hasPending,
                     "fleet: run() while a shard is mid-dispatch");
        shard.dispatchesBefore = shard.executor.dispatchCount();
        shard.busySec = 0.0;
        shard.solveStallSec = 0.0;
        shard.switchOverheadSec = 0.0;
        shard.lastSig.clear();
    }
    AdmissionController admission(catalog_,
                                  options_.serving.admission);
    records_.clear();
    records_.reserve(trace.size());
    long paddedSlots = 0;

    const ScheduleCache::ComputeFn compute =
        [this](const Scenario& mix) {
            ScarOptions so = options_.serving.scar;
            // Default the search onto the fleet's pool, but let an
            // explicit scar.pool or scar.threads setting win — the
            // ScarOptions contract (threads = 1 forces a serial
            // search) must keep working inside the serving runtime.
            if (so.pool == nullptr && so.threads == 0)
                so.pool = pool_;
            Scar scar(mix, mcm_, so);
            return scar.run();
        };

    auto anyBusyOrPending = [&]() {
        for (const Shard& shard : shards_) {
            if (shard.executor.busy() || shard.hasPending)
                return true;
        }
        return false;
    };
    auto anyCandidate = [&]() {
        for (const Shard& shard : shards_) {
            if (!shard.executor.busy() && !shard.hasPending)
                return true;
        }
        return false;
    };

    std::size_t next = 0; // next arrival to admit
    double nowSec = 0.0;
    // The speculative peek only changes when the queues do; skip the
    // Scenario/signature rebuild on the (frequent) other events.
    long queueEpoch = 0;
    long lastSpeculativeEpoch = -1;
    while (next < trace.size() || admission.queuedCount() > 0 ||
           anyBusyOrPending()) {
        // 1. Start parked dispatches whose schedule is usable now.
        bool started = false;
        for (Shard& shard : shards_) {
            if (!shard.hasPending || shard.executor.busy() ||
                shard.pendingReadySec > nowSec)
                continue;
            // Wall-clock join: blocks only if the background solve is
            // still running; the virtual clock is unaffected. Cache
            // hits parked their schedule at lookup time.
            auto schedule =
                shard.pendingSchedule != nullptr
                    ? std::move(shard.pendingSchedule)
                    : shard.cache->join(shard.pendingSig);
            double startSec = nowSec;
            if (!shard.lastSig.empty() &&
                shard.lastSig != shard.pendingSig &&
                options_.serving.switchOverheadSec > 0.0) {
                startSec += options_.serving.switchOverheadSec;
                shard.switchOverheadSec +=
                    options_.serving.switchOverheadSec;
            }
            shard.busySec += schedule->makespanSec;
            shard.busyUntilSec = startSec + schedule->makespanSec;
            shard.lastSig = shard.pendingSig;
            shard.executor.start(std::move(schedule),
                                 std::move(shard.pending), startSec);
            shard.hasPending = false;
            shard.pendingSig.clear();
            shard.pendingSchedule.reset();
            started = true;
        }
        if (started)
            continue;

        // 2. Free shard + ready batch: form and park a dispatch.
        if (admission.ready(nowSec) && anyCandidate()) {
            ++queueEpoch;
            Dispatch dispatch = admission.formDispatch(nowSec);
            for (const BatchGroup& group : dispatch.groups)
                paddedSlots += group.batch;
            const std::string sig = dispatch.mix.signature();
            const int target = routeDispatch(sig);
            SCAR_ASSERT(target >= 0, "fleet: no routable shard");
            Shard& shard = shards_[target];
            const AsyncLookup found = shard.cache->lookup(
                dispatch.mix, compute, nowSec,
                options_.serving.modeledSolveSec);
            shard.hasPending = true;
            shard.pending = std::move(dispatch);
            shard.pendingSig = sig;
            shard.pendingReadySec = found.readySec;
            shard.pendingSchedule = found.schedule;
            shard.solveStallSec +=
                std::max(0.0, found.readySec - nowSec);
            continue;
        }

        // 3. Ready batch but every shard occupied: solve the would-be
        // mix in the background so the search overlaps the replays.
        // Only worthwhile when solves cost virtual time — with a free
        // (modeledSolveSec = 0) solve there is no stall to hide, and
        // speculating on transient peek mixes would just burn extra
        // searches and distort the hit-rate counters.
        if (options_.speculativeSolve &&
            options_.serving.modeledSolveSec > 0.0 &&
            admission.ready(nowSec) &&
            queueEpoch != lastSpeculativeEpoch) {
            lastSpeculativeEpoch = queueEpoch;
            const Scenario peeked = admission.peekMix();
            cacheForSpeculation(peeked.signature())
                .prefetch(peeked, compute,
                          nowSec +
                              options_.serving.modeledSolveSec);
        }

        // 4. Advance the virtual clock to the next event.
        const double tArrival =
            next < trace.size() ? trace[next].arrivalSec : kInf;
        double tBoundary = kInf;
        int boundaryShard = -1;
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            if (!shards_[s].executor.busy())
                continue;
            const double t = shards_[s].executor.nextBoundarySec();
            if (t < tBoundary) {
                tBoundary = t;
                boundaryShard = static_cast<int>(s);
            }
        }
        double tPending = kInf;
        for (const Shard& shard : shards_) {
            if (shard.hasPending && !shard.executor.busy())
                tPending = std::min(tPending, shard.pendingReadySec);
        }
        // The batching timer only matters while a shard can accept a
        // dispatch: busy shards dispatch as soon as they free up.
        const double tTimer =
            (anyCandidate() && admission.queuedCount() > 0)
                ? admission.nextForcedDispatchSec()
                : kInf;

        const double tNext =
            std::min({tArrival, tBoundary, tPending, tTimer});
        SCAR_REQUIRE(tNext < kInf,
                     "fleet: event loop stalled with ",
                     admission.queuedCount(), " queued requests");
        nowSec = std::max(nowSec, tNext);

        if (tArrival <= tBoundary && tArrival <= tPending &&
            tArrival <= tTimer) {
            admission.enqueue(trace[next]);
            ++next;
            ++queueEpoch;
        } else if (tBoundary <= tPending && tBoundary <= tTimer) {
            WindowTick tick = shards_[boundaryShard].executor.advance();
            for (Request& req : tick.completed)
                records_.push_back(req);
        }
        // Pending-ready and timer events need no action beyond
        // advancing the clock: the loop head fires next iteration.
    }

    // Promote stray speculative solves so stats and cache sizes are
    // settled (and no background work bleeds past the run).
    for (const auto& cache : caches_)
        cache->drainInFlight();

    ScheduleCacheStats delta;
    long cachedMixes = 0;
    for (const auto& cache : caches_) {
        const ScheduleCacheStats s = cache->stats();
        delta.hits += s.hits;
        delta.misses += s.misses;
        delta.evictions += s.evictions;
        cachedMixes += static_cast<long>(cache->size());
    }
    delta.hits -= before.hits;
    delta.misses -= before.misses;
    delta.evictions -= before.evictions;

    long dispatches = 0;
    for (const Shard& shard : shards_)
        dispatches +=
            shard.executor.dispatchCount() - shard.dispatchesBefore;

    ServingReport report = summarizeServing(
        records_, static_cast<long>(trace.size()), dispatches,
        paddedSlots, delta, cachedMixes);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const Shard& shard = shards_[s];
        ShardReport sr;
        sr.shardIdx = static_cast<int>(s);
        sr.dispatches =
            shard.executor.dispatchCount() - shard.dispatchesBefore;
        sr.busySec = shard.busySec;
        sr.utilization = report.horizonSec > 0.0
                             ? shard.busySec / report.horizonSec
                             : 0.0;
        sr.solveStallSec = shard.solveStallSec;
        sr.switchOverheadSec = shard.switchOverheadSec;
        report.solveStallSec += shard.solveStallSec;
        report.switchOverheadSec += shard.switchOverheadSec;
        report.shards.push_back(sr);
    }
    inform("fleet: ", report.completed, "/", report.offered,
           " requests over ", shards_.size(), " shard(s) (",
           routingPolicyName(options_.routing), ") in ",
           report.dispatches, " dispatches, ", delta.misses,
           " schedule solves (", cachedMixes, " mixes cached)");
    return report;
}

} // namespace runtime
} // namespace scar
