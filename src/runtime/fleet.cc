#include "runtime/fleet.h"

#include <algorithm>
#include <array>
#include <limits>
#include <set>
#include <tuple>

#include "common/error.h"
#include "common/logging.h"
#include "common/units.h"
#include "cost/window_evaluator.h"

namespace scar
{
namespace runtime
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Cost ties below this are considered equal (routing tie-breaks). */
constexpr double kCostTieEps = 1e-12;

/** Bound on the (mix, package) -> makespan-estimate memo; far above
 *  any realistic distinct-pair count per simulator, it only guards
 *  unbounded growth over very long mix-churning lifetimes. */
constexpr std::size_t kMakespanMemoCap = 65536;

/** FNV-1a: a stable signature hash (std::hash varies per platform). */
std::size_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 1469598103934665603uLL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211uLL;
    }
    return static_cast<std::size_t>(h);
}

using ClassIndex =
    std::map<std::string, std::set<std::pair<double, int>>>;
using ClassHeads = std::set<std::tuple<double, int, std::string>>;

/** Inserts (key, shard) under cls, keeping `heads` = the minimum of
 *  every non-empty class set. */
void
insertClassed(ClassIndex& byClass, ClassHeads& heads,
              const std::string& cls, std::pair<double, int> entry)
{
    auto& bucket = byClass[cls];
    if (bucket.empty()) {
        bucket.insert(entry);
        heads.insert({entry.first, entry.second, cls});
        return;
    }
    const std::pair<double, int> head = *bucket.begin();
    bucket.insert(entry);
    if (entry < head) {
        heads.erase({head.first, head.second, cls});
        heads.insert({entry.first, entry.second, cls});
    }
}

/** Removes (key, shard) from cls, keeping `heads` consistent. */
void
eraseClassed(ClassIndex& byClass, ClassHeads& heads,
             const std::string& cls, std::pair<double, int> entry)
{
    const auto it = byClass.find(cls);
    SCAR_ASSERT(it != byClass.end(),
                "fleet: routing index class missing on erase");
    auto& bucket = it->second;
    const bool wasHead = *bucket.begin() == entry;
    bucket.erase(entry);
    if (wasHead) {
        heads.erase({entry.first, entry.second, cls});
        if (!bucket.empty())
            heads.insert({bucket.begin()->first,
                          bucket.begin()->second, cls});
    }
    if (bucket.empty())
        byClass.erase(it);
}

} // namespace

const char*
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin:  return "round-robin";
      case RoutingPolicy::LeastLoaded: return "least-loaded";
      case RoutingPolicy::MixAffinity: return "mix-affinity";
      case RoutingPolicy::BestFit:     return "best-fit";
    }
    return "unknown";
}

FleetSimulator::FleetSimulator(std::vector<ServedModel> catalog,
                               Mcm mcm, FleetOptions options)
    : catalog_(std::move(catalog)), options_(std::move(options))
{
    SCAR_REQUIRE(!catalog_.empty(), "fleet: empty catalog");
    SCAR_REQUIRE(options_.shards >= 1, "fleet: need >= 1 shard");
    SCAR_REQUIRE(options_.serving.modeledSolveSec >= 0.0,
                 "fleet: negative modeledSolveSec");
    SCAR_REQUIRE(options_.serving.switchOverheadSec >= 0.0,
                 "fleet: negative switchOverheadSec");
    SCAR_REQUIRE(options_.serving.preemption.slackThresholdSec >= 0.0,
                 "fleet: negative preemption slack threshold");
    SCAR_REQUIRE(options_.serving.preemption.resumeOverheadSec >= 0.0,
                 "fleet: negative preemption resume overhead");
    SCAR_REQUIRE(options_.engineThreads >= 0,
                 "fleet: negative engineThreads");
    SCAR_REQUIRE(options_.cacheStripes >= 0,
                 "fleet: negative cacheStripes");
    // Mix signatures key the schedule cache by model name, so two
    // catalog entries sharing a name would silently replay each
    // other's schedules — as would names containing the signature's
    // own delimiter characters.
    std::set<std::string> names;
    for (const ServedModel& sm : catalog_) {
        SCAR_REQUIRE(sm.model.name.find_first_of("#=+@") ==
                         std::string::npos,
                     "fleet: catalog model name '", sm.model.name,
                     "' contains a signature delimiter (#, =, +, @)");
        SCAR_REQUIRE(names.insert(sm.model.name).second,
                     "fleet: duplicate catalog model name ",
                     sm.model.name);
        if (sm.llm.autoregressive)
            llmEnabled_ = true;
    }
    llmStreams_.assign(catalog_.size(), 0);

    // Heterogeneous fleets: one shard per listed template; otherwise
    // `shards` homogeneous copies of the constructor template.
    if (!options_.shardTemplates.empty()) {
        const int n =
            static_cast<int>(options_.shardTemplates.size());
        SCAR_REQUIRE(options_.shards == 1 || options_.shards == n,
                     "fleet: shards = ", options_.shards,
                     " conflicts with ", n, " shard templates");
        options_.shards = n;
        templates_ = std::move(options_.shardTemplates);
    } else {
        templates_.assign(options_.shards, mcm);
    }
    for (const Mcm& tpl : templates_)
        SCAR_REQUIRE(static_cast<int>(catalog_.size()) <=
                         tpl.numChiplets(),
                     "fleet: more catalog models than chiplets on ",
                     tpl.name());

    pool_ = options_.serving.pool != nullptr ? options_.serving.pool
                                             : &ThreadPool::global();
    const ScheduleCacheOptions cacheOpts{
        options_.serving.cacheCapacity};
    const int numCaches =
        options_.sharedCache ? 1 : options_.shards;
    for (int c = 0; c < numCaches; ++c)
        caches_.push_back(std::make_unique<AsyncScheduleCache>(
            *pool_, cacheOpts, options_.cacheStripes));
    shards_.resize(options_.shards);
    for (int s = 0; s < options_.shards; ++s) {
        shards_[s].cache =
            caches_[options_.sharedCache ? 0 : s].get();
    }

    // Routing pods: shards sharing a (package template, schedule
    // cache) pair are interchangeable up to their previous-mix class,
    // so they fold into one pod of the cluster -> pod -> shard
    // hierarchy. '|' appears in neither half, so the key is injective.
    std::map<std::string, int> podIndex;
    podOf_.resize(shards_.size(), -1);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const std::string key =
            templates_[s].signature() + "|" +
            std::to_string(options_.sharedCache ? 0
                                                : static_cast<int>(s));
        const auto [it, inserted] =
            podIndex.emplace(key, static_cast<int>(pods_.size()));
        if (inserted)
            pods_.emplace_back();
        pods_[it->second].shards.push_back(static_cast<int>(s));
        podOf_[s] = it->second;
    }
    idx_.resize(shards_.size());

    // Epoch engine concurrency: 1 drains inline, 0 borrows the
    // serving pool, > 1 owns a dedicated pool. Output is identical
    // at every setting.
    if (options_.engineThreads == 0) {
        enginePool_ = pool_;
        engineMode_ = EngineMode::Borrowed;
    } else if (options_.engineThreads > 1) {
        ownedEnginePool_ =
            std::make_unique<ThreadPool>(options_.engineThreads);
        enginePool_ = ownedEnginePool_.get();
        engineMode_ = EngineMode::Dedicated;
    }
    debug("fleet: epoch engine ", engineModeDescription(), ", ",
          shards_.size(), " shards, indexedRouting=",
          options_.indexedRouting ? "on" : "off",
          llmEnabled_ ? ", llm bound terms armed" : "",
          options_.serving.preemption.enabled
              ? ", urgency bound term armed"
              : "");
}

const char*
engineModeName(EngineMode mode)
{
    switch (mode) {
    case EngineMode::Inline: return "inline";
    case EngineMode::Borrowed: return "borrowed-pool";
    case EngineMode::Dedicated: return "dedicated-pool";
    }
    return "?";
}

std::string
FleetSimulator::engineModeDescription() const
{
    switch (engineMode_) {
    case EngineMode::Inline:
        return "inline (engineThreads = 1: epoch drains run on the "
               "event thread)";
    case EngineMode::Borrowed:
        return "borrowed serving pool (engineThreads = 0: " +
               std::to_string(pool_->concurrency()) +
               "-way shared pool)";
    case EngineMode::Dedicated:
        return "dedicated pool (" +
               std::to_string(options_.engineThreads) + " threads)";
    }
    return "?";
}

const AsyncScheduleCache&
FleetSimulator::cache(int shard) const
{
    SCAR_REQUIRE(shard >= 0 &&
                     shard < static_cast<int>(shards_.size()),
                 "fleet: cache index ", shard, " out of range");
    return *shards_[shard].cache;
}

const Mcm&
FleetSimulator::mcm(int shard) const
{
    SCAR_REQUIRE(shard >= 0 &&
                     shard < static_cast<int>(templates_.size()),
                 "fleet: template index ", shard, " out of range");
    return templates_[shard];
}

std::string
FleetSimulator::cacheKey(const std::string& mixSig,
                         std::size_t shard) const
{
    // '@' appears in neither signature alphabet (model names are
    // checked at construction), so the concatenation is injective.
    return mixSig + "@" + templates_[shard].signature();
}

double
FleetSimulator::estimateMakespanSec(int shard, const Scenario& mix)
{
    SCAR_REQUIRE(shard >= 0 &&
                     shard < static_cast<int>(templates_.size()),
                 "fleet: estimate shard ", shard, " out of range");
    return estimateMakespanKeyed(
        cacheKey(mix.signature(), static_cast<std::size_t>(shard)),
        static_cast<std::size_t>(shard), mix);
}

double
FleetSimulator::estimateMakespanKeyed(const std::string& key,
                                      std::size_t shard,
                                      const Scenario& mix)
{
    SCAR_REQUIRE(mix.numModels() <=
                     templates_[shard].numChiplets(),
                 "fleet: estimate needs one chiplet per model (",
                 mix.numModels(), " models on ",
                 templates_[shard].numChiplets(), " chiplets)");
    auto it = makespanEstimates_.find(key);
    if (it != makespanEstimates_.end())
        return it->second;

    // One single-window pass over a crude but composition-aware
    // placement: each model as one whole-model segment on the unused
    // chiplet whose dataflow class minimizes its total layer cycles,
    // heaviest model choosing first. Far coarser than the searched
    // schedule, but computed in microseconds, and it sees what makes
    // one package cheaper than another for this mix — the dataflow
    // classes on offer — which is all routing needs to *rank*
    // candidate templates.
    const Mcm& tpl = templates_[shard];
    const CostDb db(mix, tpl);
    // The estimate keeps the evaluator's defaults (contention +
    // roofline on) but follows the serving configuration's comm
    // fidelity: at CommFidelity::Phased, queueing congestion on the
    // estimate placement's weight/spill flows is exactly what lets
    // BestFit see a saturated interconnect that the static count
    // ignores (gated in bench_comm_fidelity).
    EvaluatorOptions evalOpts;
    evalOpts.fidelity = options_.serving.scar.window.eval.fidelity;
    const WindowEvaluator evaluator(db, evalOpts);

    struct ModelWork
    {
        int modelIdx;
        double bestCycles;
    };
    std::vector<ModelWork> order;
    std::vector<std::array<double, kNumDataflows>> cyclesByDf(
        mix.numModels());
    for (int m = 0; m < mix.numModels(); ++m) {
        double best = kInf;
        for (const Dataflow df : kAllDataflows) {
            double total = 0.0;
            for (int l = 0; l < mix.models[m].numLayers(); ++l)
                total += db.layerCycles(m, l, df);
            cyclesByDf[m][dataflowIndex(df)] = total;
            if (tpl.numWithDataflow(df) > 0)
                best = std::min(best, total);
        }
        order.push_back({m, best});
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const ModelWork& a, const ModelWork& b) {
                         return a.bestCycles > b.bestCycles;
                     });

    std::vector<bool> used(tpl.numChiplets(), false);
    WindowPlacement placement;
    placement.models.resize(mix.numModels());
    for (const ModelWork& mw : order) {
        int bestChiplet = -1;
        double bestCycles = kInf;
        for (int c = 0; c < tpl.numChiplets(); ++c) {
            if (used[c])
                continue;
            const double cycles =
                cyclesByDf[mw.modelIdx][dataflowIndex(
                    tpl.chiplet(c).spec.dataflow)];
            if (bestChiplet < 0 || cycles < bestCycles) {
                bestChiplet = c;
                bestCycles = cycles;
            }
        }
        used[bestChiplet] = true;
        ModelPlacement mp;
        mp.modelIdx = mw.modelIdx;
        mp.segments.push_back(
            {LayerRange{0,
                        mix.models[mw.modelIdx].numLayers() - 1},
             bestChiplet});
        placement.models[mw.modelIdx] = std::move(mp);
    }
    const double sec =
        cyclesToSeconds(evaluator.evaluate(placement).latencyCycles);
    // Keep the memo bounded like the schedule caches it parallels; a
    // wholesale reset is fine because re-deriving an estimate is a
    // microsecond-scale single-window pass.
    if (makespanEstimates_.size() >= kMakespanMemoCap)
        makespanEstimates_.clear();
    makespanEstimates_.emplace(key, sec);
    return sec;
}

double
FleetSimulator::dispatchCostSec(std::size_t shard,
                                const std::string& mixSig,
                                const Scenario& mix, double nowSec,
                                bool urgent)
{
    const Shard& sh = shards_[shard];
    const PreemptionOptions& preemption =
        options_.serving.preemption;
    // A shard owing a resume must replay the suspended remainder
    // (plus the modeled re-staging) before any non-urgent dispatch
    // can claim it; an urgent dispatch jumps that queue, so its cost
    // excludes the tail.
    const double suspendedTailSec =
        sh.hasSuspended && !urgent
            ? preemption.resumeOverheadSec +
                  sh.suspended.remainingSec
            : 0.0;
    // Backlog: zero for an idle candidate; for an occupied shard the
    // replay end, or the parked dispatch's projected replay end. An
    // urgent dispatch against a busy, preemptable shard waits only
    // until the next window boundary — where the preemptor cuts in —
    // rather than the full replay (at the last window the two
    // coincide: the shard frees at that boundary either way).
    double waitSec = suspendedTailSec;
    if (sh.executor.busy()) {
        if (urgent && preemption.enabled && !sh.hasSuspended)
            waitSec +=
                std::max(0.0, sh.executor.nextBoundarySec() - nowSec);
        else
            waitSec += std::max(0.0, sh.busyUntilSec - nowSec);
    } else if (sh.hasPending) {
        waitSec += std::max(0.0, sh.pendingEndSec - nowSec);
    }

    const std::string key = cacheKey(mixSig, shard);
    // The replay running right before this dispatch would be the
    // current one when busy, the parked one when a dispatch waits for
    // its solve, and the last finished one otherwise.
    const std::string& prevKey =
        sh.executor.busy()
            ? sh.lastKey
            : (sh.hasPending ? sh.pendingKey : sh.lastKey);
    double switchSec = 0.0;
    if (!prevKey.empty() && prevKey != key)
        switchSec = options_.serving.switchOverheadSec;

    const CachePeek peek = sh.cache->peek(key);
    double solveSec = 0.0;
    double makespanSec;
    if (peek.schedule != nullptr) {
        makespanSec = peek.schedule->makespanSec;
    } else if (peek.inFlight) {
        // An in-flight solve lands while the backlog drains; only
        // the part outlasting the wait delays this dispatch.
        solveSec = std::max(0.0, peek.readySec - nowSec - waitSec);
        makespanSec = estimateMakespanKeyed(key, shard, mix);
    } else {
        solveSec = options_.serving.modeledSolveSec;
        makespanSec = estimateMakespanKeyed(key, shard, mix);
    }
    return waitSec + switchSec + solveSec + makespanSec;
}

int
FleetSimulator::routeDispatch(const std::string& mixSig,
                              const Scenario& mix, double nowSec,
                              bool allowDefer, bool urgent)
{
    // The indexed cluster -> pod -> shard path covers every policy
    // when preemption is off (then no shard is ever suspended and no
    // dispatch urgent — the two things the flat scan below handles
    // specially). Preemptive fleets stay on the flat scan;
    // indexedRouting = false forces it for A/B validation.
    if (options_.indexedRouting &&
        !options_.serving.preemption.enabled)
        return routeIndexed(mixSig, mix, nowSec, allowDefer);

    const std::size_t n = shards_.size();
    // A shard parking a suspended replay is reserved for its resume:
    // only urgent dispatches (the reason it was preempted at all) may
    // claim it first — otherwise arbitrary ready batches could starve
    // the preempted requests indefinitely.
    auto isCandidate = [&](std::size_t s) {
        return !shards_[s].executor.busy() &&
               !shards_[s].hasPending &&
               (urgent || !shards_[s].hasSuspended);
    };
    // Per-shard completion costs, computed at most once per routing
    // decision and shared between BestFit's pick and the
    // routing-quality accounting below.
    std::vector<double> costSec;
    auto costs = [&]() -> const std::vector<double>& {
        if (costSec.empty()) {
            costSec.reserve(n);
            for (std::size_t s = 0; s < n; ++s)
                costSec.push_back(
                    dispatchCostSec(s, mixSig, mix, nowSec, urgent));
        }
        return costSec;
    };
    auto leastLoaded = [&]() {
        int best = -1;
        for (std::size_t s = 0; s < n; ++s) {
            if (!isCandidate(s))
                continue;
            if (best < 0 || shards_[s].busySec < shards_[best].busySec)
                best = static_cast<int>(s);
        }
        return best;
    };
    auto bestFit = [&]() {
        // Lowest estimated completion cost; with allowDefer the
        // occupied shards compete too, charged their backlog. Ties
        // go to the idle shard, then the least-loaded, then the
        // lowest index — the homogeneous-fleet degeneration of
        // BestFit. When the cheapest shard is occupied, return -1:
        // the dispatch defers until that shard frees rather than
        // starting sooner on a package that would finish later.
        // Deferral is myopic about the queue behind this dispatch,
        // so the caller disables it under overflow — otherwise a
        // saturated preferred shard would starve the rest of the
        // fleet while the backlog compounds.
        int best = -1;
        double bestCost = kInf;
        for (std::size_t s = 0; s < n; ++s) {
            if (!allowDefer && !isCandidate(s))
                continue;
            const double cost = costs()[s];
            bool better = best < 0 || cost < bestCost - kCostTieEps;
            if (!better && cost < bestCost + kCostTieEps) {
                const bool candidate = isCandidate(s);
                const bool bestCandidate = isCandidate(best);
                better = (candidate && !bestCandidate) ||
                         (candidate == bestCandidate &&
                          shards_[s].busySec < shards_[best].busySec);
            }
            if (better) {
                best = static_cast<int>(s);
                bestCost = cost;
            }
        }
        if (best < 0)
            return -1;
        if (isCandidate(best))
            return best;
        // An occupied shard won: defer only while its backlog fits
        // the deferral horizon (next boundary / solve-ready plus one
        // makespan of this mix); past it, the batch takes the best
        // idle candidate instead of waiting out a long replay.
        if (deferralWithinHorizon(static_cast<std::size_t>(best),
                                  mixSig, mix, nowSec))
            return -1;
        int cbest = -1;
        double cbestCost = kInf;
        for (std::size_t s = 0; s < n; ++s) {
            if (!isCandidate(s))
                continue;
            const double cost = costs()[s];
            bool better =
                cbest < 0 || cost < cbestCost - kCostTieEps;
            if (!better && cost < cbestCost + kCostTieEps)
                better = shards_[s].busySec <
                         shards_[cbest].busySec;
            if (better) {
                cbest = static_cast<int>(s);
                cbestCost = cost;
            }
        }
        return cbest;
    };

    int chosen = -1;
    switch (options_.routing) {
      case RoutingPolicy::RoundRobin:
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t s = (rrNext_ + k) % n;
            if (isCandidate(s)) {
                rrNext_ = s + 1;
                chosen = static_cast<int>(s);
                break;
            }
        }
        break;
      case RoutingPolicy::LeastLoaded:
        chosen = leastLoaded();
        break;
      case RoutingPolicy::MixAffinity: {
        const std::size_t target = fnv1a(mixSig) % n;
        chosen = isCandidate(target) ? static_cast<int>(target)
                                     : leastLoaded();
        break;
      }
      case RoutingPolicy::BestFit:
        chosen = bestFit();
        break;
    }
    if (chosen < 0)
        return -1;

    // Routing-quality accounting: when the policy actually had a
    // choice, did it pick a candidate the cost model also ranks
    // cheapest? (BestFit is cost-optimal by construction; the others
    // reveal how much completion time their heuristic leaves behind.)
    std::size_t candidates = 0;
    for (std::size_t s = 0; s < n; ++s)
        candidates += isCandidate(s) ? 1 : 0;
    if (candidates >= 2) {
        ++contestedRoutes_;
        double minCost = kInf;
        for (std::size_t s = 0; s < n; ++s) {
            if (isCandidate(s))
                minCost = std::min(minCost, costs()[s]);
        }
        if (costs()[chosen] <= minCost + kCostTieEps)
            ++costOptimalRoutes_;
    }
    return chosen;
}

int
FleetSimulator::speculationTarget(const std::string& mixSig,
                                  const Scenario& mix, double nowSec,
                                  bool urgent)
{
    const std::size_t n = shards_.size();
    int target = -1;
    switch (options_.routing) {
      case RoutingPolicy::MixAffinity:
        target = static_cast<int>(fnv1a(mixSig) % n);
        break;
      case RoutingPolicy::BestFit: {
        // Predict with the dispatch cost model itself, availability
        // waits included: the shard BestFit would pick once free.
        // For an urgent mix the costs see boundary-preemption waits,
        // so the solve warms the shard the preemptor will suspend.
        double bestCost = kInf;
        for (std::size_t s = 0; s < n; ++s) {
            const double cost =
                dispatchCostSec(s, mixSig, mix, nowSec, urgent);
            if (target < 0 || cost < bestCost - kCostTieEps) {
                target = static_cast<int>(s);
                bestCost = cost;
            }
        }
        break;
      }
      case RoutingPolicy::RoundRobin:
      case RoutingPolicy::LeastLoaded: {
        // The dispatch will consult whichever shard becomes available
        // first — mid-replay (busyUntilSec) or parked waiting on a
        // solve (pendingReadySec) — so warm that shard's cache.
        double freeAt = 0.0;
        for (std::size_t s = 0; s < n; ++s) {
            double availableAt;
            if (shards_[s].executor.busy())
                availableAt = shards_[s].busyUntilSec;
            else if (shards_[s].hasPending)
                availableAt = shards_[s].pendingReadySec;
            else
                continue;
            if (target < 0 || availableAt < freeAt) {
                target = static_cast<int>(s);
                freeAt = availableAt;
            }
        }
        break;
      }
    }
    if (target < 0)
        target = 0;
    // A schedule already resident (or already solving) in the
    // predicted target's cache makes a speculative solve pure waste:
    // the dispatch-time lookup will hit. Before (mix, package) keys,
    // only the shared-cache configuration was protected against this
    // by prefetch idempotence.
    const std::string key =
        cacheKey(mixSig, static_cast<std::size_t>(target));
    if (shards_[target].cache->peek(key).known())
        return -1;
    return target;
}

void
FleetSimulator::resumeSuspended(Shard& shard, double nowSec)
{
    SCAR_REQUIRE(shard.hasSuspended && !shard.executor.busy() &&
                     !shard.hasPending,
                 "fleet: resume on a shard not parking a suspended "
                 "replay");
    const double overheadSec =
        options_.serving.preemption.resumeOverheadSec;
    const double startSec = nowSec + overheadSec;
    shard.resumeOverheadSec += overheadSec;
    if (obs::FlightRecorder* const rec = options_.recorder) {
        const int tid =
            static_cast<int>(&shard - shards_.data()) + 1;
        rec->trace().instantVirtual(
            tid, "resume", "preemption", nowSec,
            {obs::argNum("remaining_sec",
                         shard.suspended.remainingSec)});
        if (overheadSec > 0.0)
            rec->trace().completeVirtual(tid, "resume-overhead",
                                         "overhead", nowSec,
                                         overheadSec);
        rec->metrics().counter("preemption.resumes").inc();
    }
    // Add back the remainder that suspension subtracted; the replay
    // continues from its saved cursor, never re-solved (the
    // SuspendedReplay pins the schedule, so even an LRU-evicted
    // cache entry stays valid).
    shard.busySec += shard.suspended.remainingSec;
    shard.busyUntilSec = startSec + shard.suspended.remainingSec;
    shard.traceWindowStartSec = startSec;
    shard.lastKey = shard.suspendedKey;
    shard.hasSuspended = false;
    shard.executor.resume(std::move(shard.suspended), startSec);
    shard.suspended = SuspendedReplay{};
    shard.suspendedKey.clear();
}

void
FleetSimulator::syncShard(std::size_t s)
{
    Shard& sh = shards_[s];
    ShardIndexKeys& k = idx_[s];
    Pod& pod = pods_[podOf_[s]];
    const int si = static_cast<int>(s);

    // Retract the keys the shard is registered under. Every index
    // mutation flows through this function, so the stored snapshot
    // keys are exact.
    if (k.inBoundary)
        boundaryQueue_.erase({k.boundarySec, si});
    if (k.inPendingQ)
        pendingQueue_.erase({k.pendingSec, si});
    if (k.inBusyEnd)
        busyEndQueue_.erase({k.busyEndSec, si});
    if (k.inFree) {
        freeShards_.erase(si);
        freeByBusy_.erase({k.freeBusySec, si});
        eraseClassed(pod.freeByClass, pod.freeHeads, k.freeClass,
                     {k.freeBusySec, si});
    }
    if (k.inOcc)
        eraseClassed(pod.occByClass, pod.occHeads, k.occClass,
                     {k.occAvailSec, si});
    if (k.suspendedAny)
        --suspendedCount_;
    if (k.suspendedIdle)
        --suspendedIdleCount_;

    // Re-derive from the shard's current state.
    const bool busy = sh.executor.busy();
    k.inBoundary = busy;
    k.inBusyEnd = busy;
    if (busy) {
        k.boundarySec = sh.executor.nextBoundarySec();
        boundaryQueue_.insert({k.boundarySec, si});
        // The epoch bound keys on the executor's accumulated final
        // boundary, not busyUntilSec: the two can differ by ulps and
        // an epoch must never admit a dispatch-done tick.
        k.busyEndSec = sh.executor.finalBoundarySec();
        busyEndQueue_.insert({k.busyEndSec, si});
    }
    k.inPendingQ = sh.hasPending && !busy;
    if (k.inPendingQ) {
        k.pendingSec = sh.pendingReadySec;
        pendingQueue_.insert({k.pendingSec, si});
    }
    k.suspendedAny = sh.hasSuspended;
    if (k.suspendedAny)
        ++suspendedCount_;
    k.suspendedIdle = sh.hasSuspended && !busy && !sh.hasPending;
    if (k.suspendedIdle)
        ++suspendedIdleCount_;

    // Candidate rule of routeDispatch's non-urgent path.
    const bool candidate = !busy && !sh.hasPending && !sh.hasSuspended;
    k.inFree = candidate;
    if (candidate) {
        k.freeBusySec = sh.busySec;
        k.freeClass = sh.lastKey;
        freeShards_.insert(si);
        freeByBusy_.insert({k.freeBusySec, si});
        insertClassed(pod.freeByClass, pod.freeHeads, k.freeClass,
                      {k.freeBusySec, si});
    }
    // Occupied shards index by availability instant (replay end or
    // parked dispatch's projected end) — the dispatchCostSec wait is
    // monotone in it, so the earliest-available shard of a class is
    // its cheapest. prevKey follows dispatchCostSec: the running
    // replay's key when busy, the parked dispatch's otherwise.
    const bool occupied = busy || sh.hasPending;
    k.inOcc = occupied;
    if (occupied) {
        k.occClass = busy ? sh.lastKey : sh.pendingKey;
        k.occAvailSec = busy ? sh.busyUntilSec : sh.pendingEndSec;
        insertClassed(pod.occByClass, pod.occHeads, k.occClass,
                      {k.occAvailSec, si});
    }
}

void
FleetSimulator::rebuildCalendar()
{
    boundaryQueue_.clear();
    pendingQueue_.clear();
    busyEndQueue_.clear();
    freeShards_.clear();
    freeByBusy_.clear();
    suspendedCount_ = 0;
    suspendedIdleCount_ = 0;
    for (Pod& pod : pods_) {
        pod.freeByClass.clear();
        pod.freeHeads.clear();
        pod.occByClass.clear();
        pod.occHeads.clear();
    }
    idx_.assign(shards_.size(), ShardIndexKeys{});
    for (std::size_t s = 0; s < shards_.size(); ++s)
        syncShard(s);
}

std::vector<int>
FleetSimulator::candidateReps(const std::string& mixSig) const
{
    std::vector<int> reps;
    for (const Pod& pod : pods_) {
        if (pod.freeByClass.empty())
            continue;
        const std::string match = cacheKey(
            mixSig, static_cast<std::size_t>(pod.shards.front()));
        // No-switch candidates: the matching class and the
        // never-dispatched class cost the same, so their joint
        // cheapest — min by (busySec, shard) — represents both.
        const std::pair<double, int>* noSwitch = nullptr;
        for (const std::string& cls :
             {match, std::string()}) {
            const auto it = pod.freeByClass.find(cls);
            if (it == pod.freeByClass.end())
                continue;
            const std::pair<double, int>& head = *it->second.begin();
            if (noSwitch == nullptr || head < *noSwitch)
                noSwitch = &head;
        }
        if (noSwitch != nullptr)
            reps.push_back(noSwitch->second);
        // Switching candidates all pay the same overhead, so the
        // first class head outside the two no-switch classes — at
        // most two skips — is the cheapest of them all.
        for (const auto& head : pod.freeHeads) {
            const std::string& cls = std::get<2>(head);
            if (cls == match || cls.empty())
                continue;
            reps.push_back(std::get<1>(head));
            break;
        }
    }
    std::sort(reps.begin(), reps.end());
    return reps;
}

std::vector<int>
FleetSimulator::occupiedReps(const std::string& mixSig) const
{
    std::vector<int> reps;
    for (const Pod& pod : pods_) {
        if (pod.occByClass.empty())
            continue;
        const std::string match = cacheKey(
            mixSig, static_cast<std::size_t>(pod.shards.front()));
        const auto it = pod.occByClass.find(match);
        if (it != pod.occByClass.end())
            reps.push_back(it->second.begin()->second);
        // An occupied shard always has a non-empty class (it holds
        // or parks a dispatch), so only the match class is skipped.
        for (const auto& head : pod.occHeads) {
            if (std::get<2>(head) == match)
                continue;
            reps.push_back(std::get<1>(head));
            break;
        }
    }
    std::sort(reps.begin(), reps.end());
    return reps;
}

bool
FleetSimulator::deferralWithinHorizon(std::size_t s,
                                      const std::string& mixSig,
                                      const Scenario& mix,
                                      double nowSec)
{
    const Shard& sh = shards_[s];
    // The shard's next chance to take work: its next window boundary
    // while replaying (the instant preemption could cut in), or its
    // parked solve's ready instant.
    const double nextFreeSec = sh.executor.busy()
                                   ? sh.executor.nextBoundarySec()
                                   : sh.pendingReadySec;
    const std::string key = cacheKey(mixSig, s);
    const CachePeek peek = sh.cache->peek(key);
    const double makespanSec =
        peek.schedule != nullptr
            ? peek.schedule->makespanSec
            : estimateMakespanKeyed(key, s, mix);
    const double horizonSec =
        std::max(0.0, nextFreeSec - nowSec) + makespanSec;
    const double occWaitSec = std::max(
        0.0, (sh.executor.busy() ? sh.busyUntilSec : sh.pendingEndSec) -
                 nowSec);
    return occWaitSec <= horizonSec + kCostTieEps;
}

int
FleetSimulator::routeIndexed(const std::string& mixSig,
                             const Scenario& mix, double nowSec,
                             bool allowDefer)
{
    // Preemption is off on this path, so the candidate set is
    // exactly freeShards_ (no shard ever parks a suspended replay).
    const std::size_t nCand = freeShards_.size();
    std::map<int, double> costMemo;
    auto costOf = [&](int s) {
        const auto it = costMemo.find(s);
        if (it != costMemo.end())
            return it->second;
        const double c = dispatchCostSec(
            static_cast<std::size_t>(s), mixSig, mix, nowSec, false);
        costMemo.emplace(s, c);
        return c;
    };
    std::vector<int> reps;
    auto ensureReps = [&]() {
        if (reps.empty())
            reps = candidateReps(mixSig);
    };
    auto leastLoaded = [&]() {
        return freeByBusy_.empty() ? -1 : freeByBusy_.begin()->second;
    };
    // Folds the serial BestFit scan over the given shards (sorted by
    // index, so the iteration-order tie-breaks match the flat loop).
    auto fold = [&](const std::vector<int>& pool,
                    bool candidatesOnly) {
        int best = -1;
        double bestCost = kInf;
        for (const int s : pool) {
            const bool candidate = idx_[s].inFree;
            if (candidatesOnly && !candidate)
                continue;
            const double cost = costOf(s);
            bool better = best < 0 || cost < bestCost - kCostTieEps;
            if (!better && cost < bestCost + kCostTieEps) {
                const bool bestCandidate = idx_[best].inFree;
                better =
                    (candidate && !bestCandidate) ||
                    (candidate == bestCandidate &&
                     shards_[s].busySec < shards_[best].busySec);
            }
            if (better) {
                best = s;
                bestCost = cost;
            }
        }
        return best;
    };

    int chosen = -1;
    switch (options_.routing) {
      case RoutingPolicy::RoundRobin: {
        if (!freeShards_.empty()) {
            auto it = freeShards_.lower_bound(
                static_cast<int>(rrNext_));
            if (it == freeShards_.end())
                it = freeShards_.begin();
            chosen = *it;
            rrNext_ = static_cast<std::size_t>(chosen) + 1;
        }
        break;
      }
      case RoutingPolicy::LeastLoaded:
        chosen = leastLoaded();
        break;
      case RoutingPolicy::MixAffinity: {
        const int target =
            static_cast<int>(fnv1a(mixSig) % shards_.size());
        chosen = freeShards_.count(target) > 0 ? target
                                               : leastLoaded();
        break;
      }
      case RoutingPolicy::BestFit: {
        ensureReps();
        std::vector<int> pool = reps;
        if (allowDefer) {
            const std::vector<int> occ = occupiedReps(mixSig);
            pool.insert(pool.end(), occ.begin(), occ.end());
            std::sort(pool.begin(), pool.end());
        }
        const int best = fold(pool, false);
        if (best < 0) {
            chosen = -1;
        } else if (idx_[best].inFree) {
            chosen = best;
        } else if (deferralWithinHorizon(
                       static_cast<std::size_t>(best), mixSig, mix,
                       nowSec)) {
            chosen = -1; // defer: the occupied shard frees in time
        } else {
            // Past the deferral horizon: best idle candidate instead.
            chosen = fold(pool, true);
        }
        break;
      }
    }
    if (chosen < 0)
        return -1;

    // Routing-quality accounting, identical to the flat scan: the
    // pod representatives cover every pod's cheapest candidate, so
    // their minimum is the fleet-wide minimum candidate cost.
    if (nCand >= 2) {
        ++contestedRoutes_;
        ensureReps();
        double minCost = kInf;
        for (const int s : reps)
            minCost = std::min(minCost, costOf(s));
        if (costOf(chosen) <= minCost + kCostTieEps)
            ++costOptimalRoutes_;
    }
    return chosen;
}

ServingReport
FleetSimulator::run(const std::vector<Request>& trace)
{
    for (std::size_t i = 1; i < trace.size(); ++i)
        SCAR_REQUIRE(trace[i - 1].arrivalSec <= trace[i].arrivalSec,
                     "fleet: trace not sorted by arrival time");

    // Per-run accounting reset; caches persist across runs.
    ScheduleCacheStats before;
    for (const auto& cache : caches_) {
        const ScheduleCacheStats s = cache->stats();
        before.hits += s.hits;
        before.misses += s.misses;
        before.evictions += s.evictions;
    }
    for (Shard& shard : shards_) {
        SCAR_REQUIRE(!shard.executor.busy() && !shard.hasPending &&
                         !shard.hasSuspended,
                     "fleet: run() while a shard is mid-dispatch");
        shard.dispatchesBefore = shard.executor.dispatchCount();
        shard.busySec = 0.0;
        shard.solveStallSec = 0.0;
        shard.switchOverheadSec = 0.0;
        shard.preemptions = 0;
        shard.resumeOverheadSec = 0.0;
        shard.lastKey.clear();
        shard.llmWindowsPerStep = 1;
    }
    contestedRoutes_ = 0;
    costOptimalRoutes_ = 0;
    llmDecodeRounds_ = 0;
    llmJoins_ = 0;
    llmBoardedSum_ = 0;
    epochStats_ = EpochStats{};
    std::fill(llmStreams_.begin(), llmStreams_.end(), 0);
    // Flight recorder: rec == nullptr is the disabled state, and every
    // hook below sits behind that check — a disabled run does no
    // observability work and stays byte-identical to an uninstrumented
    // build. All recorded events carry virtual timestamps and are
    // emitted from this single-threaded loop, so an enabled trace is
    // deterministic at any solver thread count.
    obs::FlightRecorder* const rec = options_.recorder;
    if (rec) {
        rec->trace().setThreadName(0, "fleet");
        for (std::size_t s = 0; s < shards_.size(); ++s)
            rec->trace().setThreadName(
                static_cast<int>(s) + 1,
                "shard " + std::to_string(s) + " (" +
                    templates_[s].name() + ")");
        std::vector<std::string> columns{"queue_depth", "busy_shards",
                                         "cache_hit_rate"};
        for (std::size_t s = 0; s < shards_.size(); ++s)
            columns.push_back("shard" + std::to_string(s) + "_busy");
        for (const ServedModel& sm : catalog_)
            columns.push_back("queue_" + sm.model.name);
        rec->samples().reset();
        rec->samples().setColumns(std::move(columns));
    }
    AdmissionController admission(catalog_,
                                  options_.serving.admission);
    records_.clear();
    records_.reserve(trace.size());
    long paddedSlots = 0;

    // One compute closure per shard: a schedule is only meaningful
    // for the package it was searched on.
    std::vector<ScheduleCache::ComputeFn> computes;
    computes.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const Mcm* tpl = &templates_[s];
        computes.push_back([this, tpl](const Scenario& mix) {
            ScarOptions so = options_.serving.scar;
            // Default the search onto the fleet's pool, but let an
            // explicit scar.pool or scar.threads setting win — the
            // ScarOptions contract (threads = 1 forces a serial
            // search) must keep working inside the serving runtime.
            if (so.pool == nullptr && so.threads == 0)
                so.pool = pool_;
            Scar scar(mix, *tpl, so);
            return scar.run();
        });
    }

    // The per-run reset above cleared lastKey (the routing class)
    // and the accounting the calendar keys snapshot, so re-derive
    // every index entry before the loop reads them.
    rebuildCalendar();

    auto anyBusyOrPending = [&]() {
        return !boundaryQueue_.empty() || !pendingQueue_.empty() ||
               suspendedCount_ > 0;
    };
    // Mirrors routeDispatch's candidate rule: a shard parking a
    // suspended replay only counts for urgent dispatches.
    auto anyCandidate = [&](bool urgent) {
        return !freeShards_.empty() ||
               (urgent && suspendedIdleCount_ > 0);
    };
    const PreemptionOptions& preemption =
        options_.serving.preemption;
    // Preemption-eligibility: some queued request's slack has shrunk
    // to the threshold. Gated on `enabled` first so a disabled run
    // never evaluates the urgency predicates (bit-identical to the
    // non-preemptive runtime).
    auto urgentQueued = [&](double nowSec) {
        return preemption.enabled &&
               admission.urgentQueued(nowSec,
                                      preemption.slackThresholdSec);
    };

    std::size_t next = 0; // next arrival to admit
    double nowSec = 0.0;
    // The speculative peek only changes when the queues do; skip the
    // Scenario/signature rebuild on the (frequent) other events.
    long queueEpoch = 0;
    long lastSpeculativeEpoch = -1;
    // Fixed-interval sampling on the virtual clock. The fleet state
    // is piecewise-constant between events (sample-and-hold), so the
    // value at each scheduled instant is the value now; rows are
    // stamped with the scheduled time, and the headline series double
    // as ph = C counter tracks in the trace. Fired at the loop head
    // and after each epoch-committed tick (the serial loop fires a
    // tick's due samples at the head of the following iteration, so
    // an epoch commit replays the same interleaving — the sampled
    // state is provably constant across an epoch's ticks).
    auto fireSamples = [&]() {
        while (rec && rec->samples().due(nowSec)) {
            const double atSec = rec->samples().nextSampleSec();
            const double queueDepth = admission.queuedCount();
            int busyShards = 0;
            for (const Shard& shard : shards_)
                busyShards += shard.executor.busy() ? 1 : 0;
            const long long cacheHits =
                rec->metrics().counter("cache.hits").value();
            const long long cacheMisses =
                rec->metrics().counter("cache.misses").value();
            const double hitRate =
                cacheHits + cacheMisses > 0
                    ? static_cast<double>(cacheHits) /
                          static_cast<double>(cacheHits + cacheMisses)
                    : 0.0;
            std::vector<double> row;
            row.reserve(3 + shards_.size() + catalog_.size());
            row.push_back(queueDepth);
            row.push_back(busyShards);
            row.push_back(hitRate);
            for (const Shard& shard : shards_)
                row.push_back(shard.executor.busy() ? 1.0 : 0.0);
            for (std::size_t m = 0; m < catalog_.size(); ++m)
                row.push_back(admission.queuedCount(
                    static_cast<int>(m)));
            rec->samples().push(row);
            rec->trace().counterVirtual("queue_depth", atSec,
                                        queueDepth);
            rec->trace().counterVirtual("busy_shards", atSec,
                                        busyShards);
            rec->trace().counterVirtual("cache_hit_rate", atSec,
                                        hitRate);
        }
    };
    // One crossed window boundary: the replay span, the completed
    // requests' records and lifecycle events. Shared verbatim by the
    // serial boundary branch and the epoch commit so both emit the
    // exact same byte stream.
    auto commitTick = [&](int shardIdx, WindowTick& tick) {
        Shard& sh = shards_[shardIdx];
        if (rec)
            rec->trace().completeVirtual(
                shardIdx + 1,
                "w" + std::to_string(tick.windowIdx), "replay",
                sh.traceWindowStartSec,
                tick.timeSec - sh.traceWindowStartSec,
                {obs::argInt("window", tick.windowIdx)});
        sh.traceWindowStartSec = tick.timeSec;
        // Autoregressive transition. For an LLM request a "completion"
        // at a window boundary is the end of one prefill or one decode
        // round, not necessarily the end of the request: unfinished
        // sequences re-enter the decode queue, and tick.completed is
        // filtered down to the truly retiring requests before the
        // generic record loop below. Empty for non-LLM catalogs, so a
        // run without LLM entries takes the pre-LLM path bit-for-bit.
        if (llmEnabled_ && !tick.completed.empty()) {
            // A decode round carries riders stamped by
            // formDecodeDispatch; at least one is unfinished (a fully
            // finished group retired at its previous round).
            bool decodeRound = false;
            for (const Request& req : tick.completed) {
                if (req.ridingDecodeSteps > 0) {
                    decodeRound = true;
                    break;
                }
            }
            bool allFinished = true;
            if (decodeRound) {
                for (Request& req : tick.completed) {
                    req.generatedTokens += req.ridingDecodeSteps;
                    req.ridingDecodeSteps = 0;
                    if (req.generatedTokens < req.outputTokens)
                        allFinished = false;
                }
                if (tick.dispatchDone)
                    --llmStreams_[tick.completed.front().modelIdx];
            }
            const bool lockstep =
                options_.serving.admission.llmBatching ==
                LlmBatchingMode::Static;
            std::vector<Request> retiring;
            retiring.reserve(tick.completed.size());
            for (Request& req : tick.completed) {
                if (!catalog_[req.modelIdx].llm.autoregressive) {
                    retiring.push_back(std::move(req));
                    continue;
                }
                if (!decodeRound) {
                    // Prefill completion = the first output token.
                    req.firstTokenSec = tick.timeSec;
                    req.generatedTokens = 1;
                    if (rec)
                        rec->trace().asyncInstantVirtual(
                            static_cast<std::uint64_t>(req.id),
                            "first-token", "request", tick.timeSec);
                }
                const bool finished =
                    req.generatedTokens >= req.outputTokens;
                // Static decode batches retire in lockstep: finished
                // members ride as padding until the whole batch is
                // done.
                if (finished &&
                    (!decodeRound || !lockstep || allFinished)) {
                    retiring.push_back(std::move(req));
                    continue;
                }
                req.completionSec = -1.0;
                admission.enqueueDecode(req);
                ++queueEpoch;
            }
            tick.completed = std::move(retiring);
        }
        for (Request& req : tick.completed) {
            records_.push_back(req);
            if (rec) {
                const std::string& model =
                    catalog_[req.modelIdx].model.name;
                const double queueSec =
                    req.dispatchSec - req.arrivalSec;
                const double execSec =
                    req.completionSec - req.dispatchSec;
                rec->trace().asyncEndVirtual(
                    static_cast<std::uint64_t>(req.id),
                    "req " + model, "request", tick.timeSec,
                    {obs::argNum("latency_sec", req.latencySec()),
                     obs::argNum("queue_sec", queueSec),
                     obs::argNum("exec_sec", execSec),
                     obs::argBool("slo_violated", req.sloViolated()),
                     obs::argBool("preempted", req.preempted)});
                rec->metrics().counter("requests.completed").inc();
                if (req.sloViolated())
                    rec->metrics()
                        .counter("requests.slo_violations")
                        .inc();
                rec->metrics()
                    .histogram("latency_sec")
                    .record(req.latencySec());
                rec->metrics()
                    .histogram("queue_wait_sec")
                    .record(queueSec);
                rec->metrics()
                    .histogram("exec_sec")
                    .record(execSec);
            }
        }
    };
    // Admits the next trace arrival: shared by the serial arrival
    // branch and the epoch drain (which absorbs arrivals that can
    // only enqueue). Timestamps come from the request itself, so the
    // rendered trace is identical on either path.
    auto commitArrival = [&]() {
        admission.enqueue(trace[next]);
        if (rec) {
            const Request& req = trace[next];
            const std::string& model =
                catalog_[req.modelIdx].model.name;
            std::vector<obs::TraceArg> args{
                obs::argText("model", model)};
            if (req.deadlineSec < kInf)
                args.push_back(
                    obs::argNum("deadline_sec", req.deadlineSec));
            rec->trace().asyncBeginVirtual(
                static_cast<std::uint64_t>(req.id), "req " + model,
                "request", req.arrivalSec, std::move(args));
            rec->metrics().counter("requests.arrived").inc();
        }
        ++next;
        ++queueEpoch;
    };
    while (next < trace.size() || admission.queuedCount() > 0 ||
           (llmEnabled_ && admission.decodeQueuedCount() > 0) ||
           anyBusyOrPending()) {
        fireSamples();

        // Urgency is loop-invariant within one event iteration
        // (nothing below changes the queues before the next event),
        // so the O(queued) deadline scan runs once per iteration.
        const bool urgent = urgentQueued(nowSec);

        // 0. Resume suspended replays on idle shards. While an urgent
        // request is queued the shard stays reserved for it (that is
        // what it was preempted for — and serving a back-to-back
        // urgent batch before resuming avoids a pointless
        // resume/re-preempt cycle); the moment urgency clears, the
        // preempted replay continues from its cursor.
        bool resumed = false;
        if (suspendedCount_ > 0) {
            for (Shard& shard : shards_) {
                if (!shard.hasSuspended || shard.executor.busy() ||
                    shard.hasPending || urgent)
                    continue;
                resumeSuspended(shard, nowSec);
                syncShard(static_cast<std::size_t>(&shard -
                                                   shards_.data()));
                resumed = true;
            }
        }
        if (resumed)
            continue;

        // 1. Start parked dispatches whose schedule is usable now.
        // The pending queue holds exactly the parked-idle shards
        // keyed by ready instant, so the due set is its prefix; the
        // serial loop visited shards in index order, so sort the due
        // indices before starting them (start order fixes the trace
        // event order and the switch-overhead charging instant).
        bool started = false;
        std::vector<int> dueIdx;
        for (const auto& [readySec, si] : pendingQueue_) {
            if (readySec > nowSec)
                break;
            dueIdx.push_back(si);
        }
        std::sort(dueIdx.begin(), dueIdx.end());
        for (const int si : dueIdx) {
            Shard& shard = shards_[si];
            // Wall-clock join: blocks only if the background solve is
            // still running; the virtual clock is unaffected. Cache
            // hits parked their schedule at lookup time.
            auto schedule =
                shard.pendingSchedule != nullptr
                    ? std::move(shard.pendingSchedule)
                    : shard.cache->join(shard.pendingKey);
            // A decode round replays the cached *one-step* schedule
            // llmDecodeSteps times; the cache key stays the one-step
            // signature so every round of the same (context bucket,
            // batch) shares one cached solve. llmWindowsPerStep marks
            // the step-aligned boundaries for the join cut.
            if (shard.pending.llmDecodeSteps > 0) {
                shard.llmWindowsPerStep =
                    static_cast<int>(schedule->windowSec.size());
                if (shard.pending.llmDecodeSteps > 1)
                    schedule = repeatSchedule(
                        schedule, shard.pending.llmDecodeSteps);
            } else {
                shard.llmWindowsPerStep = 1;
            }
            double startSec = nowSec;
            if (!shard.lastKey.empty() &&
                shard.lastKey != shard.pendingKey &&
                options_.serving.switchOverheadSec > 0.0) {
                startSec += options_.serving.switchOverheadSec;
                shard.switchOverheadSec +=
                    options_.serving.switchOverheadSec;
                if (rec)
                    rec->trace().completeVirtual(
                        static_cast<int>(&shard - shards_.data()) + 1,
                        "switch", "overhead", nowSec,
                        options_.serving.switchOverheadSec);
            }
            if (rec) {
                for (const BatchGroup& group : shard.pending.groups)
                    for (const Request& req : group.requests)
                        rec->trace().asyncInstantVirtual(
                            static_cast<std::uint64_t>(req.id),
                            "dispatch", "request", startSec);
            }
            shard.busySec += schedule->makespanSec;
            shard.busyUntilSec = startSec + schedule->makespanSec;
            shard.traceWindowStartSec = startSec;
            shard.lastKey = shard.pendingKey;
            shard.executor.start(std::move(schedule),
                                 std::move(shard.pending), startSec);
            shard.hasPending = false;
            shard.pendingKey.clear();
            shard.pendingSchedule.reset();
            syncShard(static_cast<std::size_t>(si));
            started = true;
        }
        if (started)
            continue;

        // 1.5 Decode rounds: a free shard and decode-queue waiters
        // form a single-model decode dispatch with no batching timer
        // (generation cadence dominates; a waiting sequence is never
        // better off idle). Runs before step 2 so decode streams keep
        // their cadence against competing prefill batches. Waiters
        // appear only at commitTick (prefill completion, round end or
        // join cut), so the very next loop iteration sees them here —
        // the event calendar needs no extra timer for decode work.
        if (llmEnabled_ && !freeShards_.empty() &&
            admission.decodeQueuedCount() > 0) {
            const bool continuous =
                options_.serving.admission.llmBatching ==
                LlmBatchingMode::Continuous;
            int decodeModel = -1;
            for (std::size_t m = 0; m < catalog_.size(); ++m) {
                const int waiters =
                    admission.decodeQueuedCount(static_cast<int>(m));
                if (waiters == 0)
                    continue;
                // Continuous batching holds waiters for the running
                // stream's next step boundary (join cut) instead of
                // opening a rival round — unless a full batch is
                // already waiting, which earns its own stream.
                if (continuous && llmStreams_[m] > 0 &&
                    waiters < catalog_[m].model.batch)
                    continue;
                decodeModel = static_cast<int>(m);
                break;
            }
            if (decodeModel >= 0) {
                const Scenario peeked =
                    admission.peekDecodeMix(decodeModel);
                const std::string sig = peeked.signature();
                const int target = routeDispatch(
                    sig, peeked, nowSec, /*allowDefer=*/false,
                    /*urgent=*/false);
                SCAR_ASSERT(target >= 0,
                            "fleet: decode round found no shard with "
                            "free shards available");
                ++queueEpoch;
                Dispatch dispatch =
                    admission.formDecodeDispatch(decodeModel);
                SCAR_ASSERT(dispatch.mix.signature() == sig,
                            "fleet: decode dispatch mix diverged "
                            "from the routed peek");
                // Decode rounds do not add padded slots: occupancy
                // stays a prefill-batching metric, and each request
                // would otherwise be charged once per round. Decode
                // batch fill is reported as llmMeanDecodeBatch.
                ++llmStreams_[decodeModel];
                ++llmDecodeRounds_;
                llmBoardedSum_ += static_cast<long>(
                    dispatch.groups.front().requests.size());
                Shard& shard = shards_[target];
                const std::string key =
                    cacheKey(sig, static_cast<std::size_t>(target));
                const AsyncLookup found = shard.cache->lookup(
                    key, dispatch.mix, computes[target], nowSec,
                    options_.serving.modeledSolveSec);
                double endSec = found.readySec;
                if (!shard.lastKey.empty() && shard.lastKey != key)
                    endSec += options_.serving.switchOverheadSec;
                // One-step makespan times the round's step count.
                endSec +=
                    (found.schedule != nullptr
                         ? found.schedule->makespanSec
                         : estimateMakespanKeyed(
                               key,
                               static_cast<std::size_t>(target),
                               dispatch.mix)) *
                    dispatch.llmDecodeSteps;
                shard.hasPending = true;
                shard.pending = std::move(dispatch);
                shard.pendingKey = key;
                shard.pendingReadySec = found.readySec;
                shard.pendingEndSec = endSec;
                shard.pendingSchedule = found.schedule;
                syncShard(static_cast<std::size_t>(target));
                shard.solveStallSec +=
                    std::max(0.0, found.readySec - nowSec);
                if (rec) {
                    const int tid = target + 1;
                    const bool hit = !found.startedSolve;
                    rec->trace().instantVirtual(
                        tid, hit ? "cache-hit" : "cache-miss",
                        "cache", nowSec, {obs::argText("mix", sig)});
                    rec->metrics()
                        .counter(hit ? "cache.hits" : "cache.misses")
                        .inc();
                    rec->metrics().counter("dispatches.decode").inc();
                    if (found.readySec > nowSec)
                        rec->trace().completeVirtual(
                            tid, "solve-stall", "stall", nowSec,
                            found.readySec - nowSec,
                            {obs::argText("mix", sig)});
                }
                continue;
            }
        }

        // 2. Free shard + ready batch: route, then form and park a
        // dispatch. Routing happens on the peeked mix *before* the
        // queues are consumed so BestFit can defer: when an occupied
        // shard's projected completion beats every idle candidate,
        // the batch stays queued and is re-routed at the next event
        // (typically when the preferred shard frees up).
        bool deferred = false;
        // Speculative partial dispatch: with the flag set, a shard
        // that would otherwise idle claims whatever is queued right
        // now instead of waiting out the batching timer.
        const bool partialReady =
            options_.serving.admission.speculativePartialDispatch &&
            admission.queuedCount() > 0 && !freeShards_.empty();
        if ((admission.ready(nowSec) || urgent || partialReady) &&
            anyCandidate(urgent)) {
            // An urgent batch boards only the models holding an
            // urgent request (shortest possible fast lane) and is
            // dispatchable regardless of batch-fill / aging state.
            const Scenario peeked =
                urgent ? admission.peekUrgentMix(
                             nowSec, preemption.slackThresholdSec)
                       : admission.peekMix();
            const std::string sig = peeked.signature();
            // Overflow check: padded dispatch batches cover every
            // queued request unless some queue exceeded its cap, in
            // which case requests stay behind and deferral would
            // starve the fleet's throughput.
            int batchSlots = 0;
            for (const Model& model : peeked.models)
                batchSlots += model.batch;
            // Never defer an urgent dispatch: it exists because some
            // request cannot afford to wait for a better package.
            const bool allowDefer =
                options_.bestFitDefer && !urgent &&
                admission.queuedCount() <= batchSlots;
            const int target =
                routeDispatch(sig, peeked, nowSec, allowDefer, urgent);
            if (target < 0) {
                deferred = true;
            } else {
                ++queueEpoch;
                Dispatch dispatch =
                    urgent ? admission.formUrgentDispatch(
                                 nowSec, preemption.slackThresholdSec)
                           : admission.formDispatch(nowSec);
                SCAR_ASSERT(dispatch.mix.signature() == sig,
                            "fleet: dispatch mix diverged from the "
                            "routed peek");
                for (const BatchGroup& group : dispatch.groups)
                    paddedSlots += group.batch;
                Shard& shard = shards_[target];
                const std::string key =
                    cacheKey(sig, static_cast<std::size_t>(target));
                const AsyncLookup found = shard.cache->lookup(
                    key, dispatch.mix, computes[target], nowSec,
                    options_.serving.modeledSolveSec);
                double endSec = found.readySec;
                if (!shard.lastKey.empty() && shard.lastKey != key)
                    endSec += options_.serving.switchOverheadSec;
                endSec +=
                    found.schedule != nullptr
                        ? found.schedule->makespanSec
                        : estimateMakespanKeyed(
                              key, static_cast<std::size_t>(target),
                              dispatch.mix);
                shard.hasPending = true;
                shard.pending = std::move(dispatch);
                shard.pendingKey = key;
                shard.pendingReadySec = found.readySec;
                shard.pendingEndSec = endSec;
                shard.pendingSchedule = found.schedule;
                syncShard(static_cast<std::size_t>(target));
                shard.solveStallSec +=
                    std::max(0.0, found.readySec - nowSec);
                if (rec) {
                    const int tid = target + 1;
                    // lookup() counts joining an in-flight solve as a
                    // hit; only a lookup that launched the solve is a
                    // miss (matches ScheduleCacheStats).
                    const bool hit = !found.startedSolve;
                    rec->trace().instantVirtual(
                        tid, hit ? "cache-hit" : "cache-miss",
                        "cache", nowSec, {obs::argText("mix", sig)});
                    rec->metrics()
                        .counter(hit ? "cache.hits" : "cache.misses")
                        .inc();
                    rec->metrics()
                        .counter(urgent ? "dispatches.urgent"
                                        : "dispatches.regular")
                        .inc();
                    if (found.readySec > nowSec)
                        rec->trace().completeVirtual(
                            tid, "solve-stall", "stall", nowSec,
                            found.readySec - nowSec,
                            {obs::argText("mix", sig)});
                }
                continue;
            }
        }
        if (deferred && rec)
            rec->metrics().counter("routing.deferrals").inc();

        // 3. Ready batch but every shard occupied: solve the would-be
        // mix in the background so the search overlaps the replays.
        // Only worthwhile when solves cost virtual time — with a free
        // (modeledSolveSec = 0) solve there is no stall to hide, and
        // speculating on transient peek mixes would just burn extra
        // searches and distort the hit-rate counters.
        if (options_.speculativeSolve &&
            options_.serving.modeledSolveSec > 0.0 &&
            (admission.ready(nowSec) || urgent) &&
            queueEpoch != lastSpeculativeEpoch) {
            lastSpeculativeEpoch = queueEpoch;
            // Under urgency the next dispatch out is the urgent mix,
            // so that is the schedule worth warming.
            const Scenario peeked =
                urgent ? admission.peekUrgentMix(
                             nowSec, preemption.slackThresholdSec)
                       : admission.peekMix();
            const std::string peekedSig = peeked.signature();
            const int target =
                speculationTarget(peekedSig, peeked, nowSec, urgent);
            if (target >= 0) {
                shards_[target].cache->prefetch(
                    cacheKey(peekedSig,
                             static_cast<std::size_t>(target)),
                    peeked, computes[target],
                    nowSec + options_.serving.modeledSolveSec);
                if (rec) {
                    rec->trace().instantVirtual(
                        target + 1, "speculative-solve", "cache",
                        nowSec, {obs::argText("mix", peekedSig)});
                    rec->metrics()
                        .counter("solves.speculative")
                        .inc();
                }
            }
        }

        // 4. Advance the virtual clock to the next event. The
        // calendar's ordered sets hand over each next-event time in
        // O(log N); the boundary head ties exactly like the old scan
        // (strict <, so the lowest shard index wins equal times —
        // set order is (time, idx)).
        const double tArrival =
            next < trace.size() ? trace[next].arrivalSec : kInf;
        double tBoundary = kInf;
        int boundaryShard = -1;
        if (!boundaryQueue_.empty()) {
            tBoundary = boundaryQueue_.begin()->first;
            boundaryShard = boundaryQueue_.begin()->second;
        }
        const double tPending = !pendingQueue_.empty()
                                    ? pendingQueue_.begin()->first
                                    : kInf;
        // The batching timer only matters while a shard can accept a
        // dispatch: busy shards dispatch as soon as they free up. A
        // deferred batch is already past its timer — its next chance
        // is a state change (boundary / solve-ready / arrival), and
        // re-arming the elapsed timer would spin the loop in place.
        const double tTimer =
            (!deferred && anyCandidate(false) &&
             admission.queuedCount() > 0)
                ? admission.nextForcedDispatchSec()
                : kInf;
        // Urgency timer: the instant the next queued request's slack
        // crosses the preemption threshold, an urgent dispatch can
        // claim an idle shard without waiting for batch fill or the
        // forced-dispatch timer. Only armed while a candidate exists
        // (with none, the urgent batch's next chance is a window
        // boundary — where the preemptor acts — so boundary events
        // already cover it) and while not already urgent (step 2
        // either dispatched or, with no candidate, boundaries drive
        // progress; re-arming an elapsed instant would spin).
        const double tUrgent =
            (preemption.enabled && !urgent &&
             admission.queuedCount() > 0 && anyCandidate(true))
                ? admission.earliestDeadlineSec() -
                      preemption.slackThresholdSec
                : kInf;

        const double tNext = std::min(
            {tArrival, tBoundary, tPending, tTimer, tUrgent});
        SCAR_REQUIRE(tNext < kInf,
                     "fleet: event loop stalled with ",
                     admission.queuedCount(), " queued requests");
        nowSec = std::max(nowSec, tNext);

        if (tArrival <= tBoundary && tArrival <= tPending &&
            tArrival <= tTimer && tArrival <= tUrgent) {
            commitArrival();
        } else if (tBoundary <= tPending && tBoundary <= tTimer &&
                   tBoundary <= tUrgent) {
            // Epoch drain. The serial loop's steps 0-3 are provably
            // no-ops strictly before the conservative bound B — the
            // min over every next-possible-routing-decision term
            // (docs/ARCHITECTURE.md tabulates each with its proof
            // sketch):
            //  - no suspension is parked (the gate below), so step 0
            //    never fires;
            //  - no parked schedule comes due before tPending >= B;
            //  - no shard frees mid-epoch (a dispatch-done tick lands
            //    at its final boundary >= B), so the candidate set is
            //    frozen and steps 1.5/2 cannot dispatch before the
            //    timer or an arrival, both >= B;
            //  - step 3 already speculated on the current queue
            //    epoch, or the guard caps B at the forced-dispatch
            //    instant where ready() could newly turn true;
            //  - under preemption, B <= the next urgency crossing U:
            //    for every tick t < U the per-tick urgency predicate
            //    (t >= deadline - slack, the same FP expression as
            //    U) is false bit-for-bit, so the preempt check after
            //    each committed tick is a no-op — and the queued
            //    deadlines cannot change inside the epoch because
            //    arrivals are never absorbed under preemption;
            //  - on LLM fleets, B stops strictly before the earliest
            //    step-aligned boundary where a decode round with
            //    already-queued waiters could take a join cut, and
            //    before the earliest mid-replay autoregressive
            //    completion (it enqueues decode waiters, moving the
            //    decode queues / queue epoch) — so decode queues,
            //    llmStreams_, and the join-cut predicate stay frozen
            //    across every committed tick, and the per-tick join
            //    check is a provable no-op.
            // So every window tick strictly before B commits with no
            // interleaved routing decision, and the busy shards can
            // drain their tick runs in parallel. Commit order — a
            // k-way merge on (timeSec, shardIdx) — replays the serial
            // scan's tie-break (strict <, lowest index wins, one
            // shard's equal-time run drains contiguously), and the
            // sample block fires after each tick exactly like the
            // serial loop head does, so report, metrics, and trace
            // come out byte-identical at any engine-thread count.
            bool epochDone = false;
            // Per-event serial fallbacks: a deferred dispatch
            // re-routes after every tick, and a preemptive fleet
            // with a parked suspension (step 0 resumes re-check
            // per tick) or an already-urgent queue (the very next
            // boundary suspends) stays on the single-tick path.
            if (!deferred &&
                (!preemption.enabled ||
                 (suspendedCount_ == 0 && !urgent))) {
                // With no free shard (and none freeing before the
                // bound), no urgency, and speculation off, an
                // arrival strictly inside the epoch can only
                // enqueue — every routing decision needs a candidate
                // shard, and none appears until >= bound — so
                // arrivals are absorbed into the commit stream
                // (merged by timestamp, arrival wins ties like the
                // serial branch order) instead of capping the epoch.
                // This is what lets a saturated fleet's epochs span
                // whole replay windows rather than one inter-arrival
                // gap. Preemption disables absorption: an absorbed
                // arrival could carry an earlier deadline and move
                // the urgency crossing into the epoch's past.
                const bool absorbArrivals =
                    freeShards_.empty() &&
                    !options_.speculativeSolve &&
                    !preemption.enabled;
                // Fold the bound terms cheapest-first, remembering
                // which term capped the epoch (ties keep the first —
                // the attribution priority in EpochBoundTerm order).
                double bound = kInf;
                int cap = kEpochCapReplayEnd;
                auto consider = [&](double t, int term) {
                    if (t < bound) {
                        bound = t;
                        cap = term;
                    }
                };
                if (!busyEndQueue_.empty())
                    consider(busyEndQueue_.begin()->first,
                             kEpochCapReplayEnd);
                consider(tPending, kEpochCapParked);
                if (!absorbArrivals)
                    consider(tArrival, kEpochCapArrival);
                consider(tTimer, kEpochCapTimer);
                if (options_.speculativeSolve &&
                    options_.serving.modeledSolveSec > 0.0 &&
                    admission.queuedCount() > 0 &&
                    queueEpoch != lastSpeculativeEpoch)
                    consider(admission.nextForcedDispatchSec(),
                             kEpochCapSpeculation);
                // Preemption-aware term: the next urgency crossing,
                // on the same FP expression as the urgency timer —
                // unconditioned on candidate availability, because a
                // crossing is a routing decision either way (with a
                // candidate step 2 dispatches the urgent batch; with
                // none the next boundary tick suspends a replay).
                if (preemption.enabled &&
                    admission.queuedCount() > 0)
                    consider(admission.earliestDeadlineSec() -
                                 preemption.slackThresholdSec,
                             kEpochCapUrgency);
                // Join-aware LLM terms, per busy shard.
                if (llmEnabled_) {
                    const bool continuous =
                        options_.serving.admission.llmBatching ==
                        LlmBatchingMode::Continuous;
                    for (const auto& [tb, si] : boundaryQueue_) {
                        (void)tb;
                        const Shard& sh = shards_[si];
                        const Dispatch& running =
                            sh.executor.dispatch();
                        if (running.llmDecodeSteps > 0) {
                            // Decode round: riders retire only at
                            // the round's final boundary — the
                            // replay-end term already covers that
                            // slot release — so the in-epoch hazard
                            // is a join cut at the next step-aligned
                            // boundary once waiters are queued for
                            // the round's model.
                            if (continuous &&
                                admission.decodeQueuedCount(
                                    running.catalogIdx.front()) > 0)
                                consider(
                                    sh.executor.nextStepBoundarySec(
                                        sh.llmWindowsPerStep),
                                    kEpochCapJoin);
                        } else {
                            // Prefill/mixed replay: an autoregressive
                            // group completing mid-replay enqueues
                            // decode waiters (commitTick bumps the
                            // decode queue and the queue epoch — a
                            // routing-decision source), so the bound
                            // stops strictly before the earliest
                            // such completion.
                            consider(
                                sh.executor.earliestGroupEndSec(
                                    [&](std::size_t m) {
                                        return catalog_
                                            [running.catalogIdx[m]]
                                                .llm.autoregressive;
                                    }),
                                kEpochCapRelease);
                        }
                    }
                }
                if (tBoundary < bound) {
                    // Only the prefix with a next boundary inside the
                    // epoch has ticks to drain.
                    std::vector<int> busyIdx;
                    for (const auto& [t, si] : boundaryQueue_) {
                        if (t >= bound)
                            break;
                        busyIdx.push_back(si);
                    }
                    std::vector<std::vector<WindowTick>> ticks(
                        busyIdx.size());
                    auto drainOne = [&](std::size_t i) {
                        shards_[busyIdx[i]].executor.drainUntil(
                            bound, ticks[i]);
                    };
                    if (enginePool_ != nullptr && busyIdx.size() > 1)
                        enginePool_->parallelFor(busyIdx.size(),
                                                 drainOne);
                    else
                        for (std::size_t i = 0; i < busyIdx.size();
                             ++i)
                            drainOne(i);
                    // Merge-commit on the event thread.
                    std::set<std::tuple<double, int, std::size_t>>
                        heads;
                    std::vector<std::size_t> cur(busyIdx.size(), 0);
                    std::size_t committed = 0;
                    for (std::size_t i = 0; i < busyIdx.size(); ++i)
                        if (!ticks[i].empty())
                            heads.insert({ticks[i].front().timeSec,
                                          busyIdx[i], i});
                    while (!heads.empty() ||
                           (absorbArrivals && next < trace.size() &&
                            trace[next].arrivalSec < bound)) {
                        const double tTick =
                            heads.empty()
                                ? kInf
                                : std::get<0>(*heads.begin());
                        if (absorbArrivals && next < trace.size() &&
                            trace[next].arrivalSec < bound &&
                            trace[next].arrivalSec <= tTick) {
                            nowSec = trace[next].arrivalSec;
                            commitArrival();
                            fireSamples();
                            ++epochStats_.absorbedArrivals;
                            continue;
                        }
                        const auto [t, si, i] = *heads.begin();
                        heads.erase(heads.begin());
                        // Batched commit: every consecutive tick of
                        // this shard that precedes the next other-
                        // shard head in (timeSec, shardIdx) order —
                        // and any absorbable arrival — commits as
                        // one run without re-touching the merge set.
                        // The committed sequence is exactly the
                        // per-tick merge's (the loop conditions
                        // replicate the set's ordering and the
                        // arrival-wins-ties branch above), so
                        // artifacts stay byte-identical; what
                        // batching removes is the per-tick
                        // erase/insert — the serial commit work the
                        // saturated shard sweep decays on.
                        double tOther = kInf;
                        int siOther =
                            std::numeric_limits<int>::max();
                        if (!heads.empty()) {
                            tOther = std::get<0>(*heads.begin());
                            siOther = std::get<1>(*heads.begin());
                        }
                        long batch = 0;
                        for (;;) {
                            WindowTick& tick = ticks[i][cur[i]];
                            ++cur[i];
                            ++batch;
                            nowSec = tick.timeSec;
                            commitTick(si, tick);
                            fireSamples();
                            ++committed;
                            if (cur[i] >= ticks[i].size())
                                break;
                            const double tn =
                                ticks[i][cur[i]].timeSec;
                            if (tn > tOther ||
                                (tn == tOther && si > siOther))
                                break;
                            if (absorbArrivals &&
                                next < trace.size() &&
                                trace[next].arrivalSec < bound &&
                                trace[next].arrivalSec <= tn)
                                break;
                        }
                        if (cur[i] < ticks[i].size())
                            heads.insert(
                                {ticks[i][cur[i]].timeSec, si, i});
                        ++epochStats_.commitBatches;
                        epochStats_.maxCommitBatch = std::max(
                            epochStats_.maxCommitBatch, batch);
                        if (rec)
                            rec->metrics()
                                .histogram("epoch.commit_batch",
                                           {1.0, 2.0, 16})
                                .record(static_cast<double>(batch));
                    }
                    if (committed > 0) {
                        for (const int si : busyIdx)
                            syncShard(static_cast<std::size_t>(si));
                        epochDone = true;
                        ++epochStats_.epochs;
                        epochStats_.ticks +=
                            static_cast<long>(committed);
                        ++epochStats_.caps[cap];
                    }
                }
            }
            if (!epochDone) {
                // Single-tick path: a pending deferral, a parked
                // suspension or already-urgent queue, or an epoch
                // whose bound already sits at the head boundary
                // (e.g. a shard in its final window, a join cut, a
                // mid-replay LLM release, an urgency crossing).
                Shard& sh = shards_[boundaryShard];
                WindowTick tick = sh.executor.advance();
                commitTick(boundaryShard, tick);
                // Boundary preemption: an urgent request is waiting,
                // no shard can take it, and this replay just reached
                // a cut point with windows still ahead — suspend it
                // here; the next loop iteration dispatches the urgent
                // batch onto the freed shard. When the tick ended the
                // dispatch the shard frees naturally (preempting at
                // the last window is the degenerate no-op), and a
                // shard already parking a suspended replay is never
                // preempted again (depth 1).
                if (!tick.dispatchDone && !sh.hasSuspended &&
                    urgentQueued(nowSec) && !anyCandidate(true)) {
                    sh.suspended = sh.executor.suspend();
                    sh.hasSuspended = true;
                    sh.suspendedKey = sh.lastKey;
                    // The remaining windows will be re-charged at
                    // resume.
                    sh.busySec -= sh.suspended.remainingSec;
                    ++sh.preemptions;
                    if (rec) {
                        rec->trace().instantVirtual(
                            boundaryShard + 1, "preempt",
                            "preemption", tick.timeSec,
                            {obs::argInt("next_window",
                                         static_cast<long long>(
                                             sh.suspended.window)),
                             obs::argNum(
                                 "remaining_sec",
                                 sh.suspended.remainingSec)});
                        // suspend() just marked every still-riding
                        // request preempted; tag their lifecycle
                        // tracks.
                        for (const BatchGroup& group :
                             sh.suspended.dispatch.groups)
                            for (const Request& req : group.requests)
                                if (req.preempted)
                                    rec->trace().asyncInstantVirtual(
                                        static_cast<std::uint64_t>(
                                            req.id),
                                        "preempted", "request",
                                        tick.timeSec);
                        rec->metrics()
                            .counter("preemption.suspends")
                            .inc();
                    }
                }
                // Continuous-batching join cut: waiters queued for the
                // model decoding on this shard, and the replay just
                // reached a step-aligned boundary with steps still
                // ahead — cut the round here (suspend without the
                // preemption mark), credit the riders with the steps
                // already replayed, and send everyone back to the
                // decode queue. The next iteration's step 1.5 forms
                // the merged round on the freed shard. Riders cannot
                // finish mid-round (the round's step count never
                // exceeds any rider's remaining tokens), so all of
                // them re-queue.
                if (llmEnabled_ && !tick.dispatchDone &&
                    !sh.hasSuspended && sh.executor.busy() &&
                    options_.serving.admission.llmBatching ==
                        LlmBatchingMode::Continuous) {
                    const Dispatch& running = sh.executor.dispatch();
                    const int model = running.llmDecodeSteps > 0
                                          ? running.catalogIdx.front()
                                          : -1;
                    if (model >= 0 &&
                        admission.decodeQueuedCount(model) > 0 &&
                        (tick.windowIdx + 1) % sh.llmWindowsPerStep ==
                            0) {
                        const int stepsDone =
                            (tick.windowIdx + 1) /
                            sh.llmWindowsPerStep;
                        SuspendedReplay cut =
                            sh.executor.suspend(false);
                        sh.busySec -= cut.remainingSec;
                        --llmStreams_[model];
                        ++llmJoins_;
                        int riders = 0;
                        for (BatchGroup& group : cut.dispatch.groups) {
                            for (Request& req : group.requests) {
                                if (req.ridingDecodeSteps > 0)
                                    req.generatedTokens += stepsDone;
                                req.ridingDecodeSteps = 0;
                                req.completionSec = -1.0;
                                admission.enqueueDecode(req);
                                ++riders;
                            }
                        }
                        ++queueEpoch;
                        if (rec) {
                            rec->trace().instantVirtual(
                                boundaryShard + 1, "decode-join",
                                "llm", tick.timeSec,
                                {obs::argInt(
                                     "riders",
                                     static_cast<long long>(riders)),
                                 obs::argInt(
                                     "steps_done",
                                     static_cast<long long>(
                                         stepsDone))});
                            rec->metrics()
                                .counter("llm.joins")
                                .inc();
                        }
                    }
                }
                syncShard(static_cast<std::size_t>(boundaryShard));
            }
        }
        // Pending-ready, timer, and urgency events need no action
        // beyond advancing the clock: the loop head fires next
        // iteration.
    }

    // Promote stray speculative solves so stats and cache sizes are
    // settled (and no background work bleeds past the run).
    for (const auto& cache : caches_)
        cache->drainInFlight();

    ScheduleCacheStats delta;
    long cachedMixes = 0;
    for (const auto& cache : caches_) {
        const ScheduleCacheStats s = cache->stats();
        delta.hits += s.hits;
        delta.misses += s.misses;
        delta.evictions += s.evictions;
        cachedMixes += static_cast<long>(cache->size());
    }
    delta.hits -= before.hits;
    delta.misses -= before.misses;
    delta.evictions -= before.evictions;

    long dispatches = 0;
    for (const Shard& shard : shards_)
        dispatches +=
            shard.executor.dispatchCount() - shard.dispatchesBefore;

    std::vector<std::string> modelNames;
    modelNames.reserve(catalog_.size());
    for (const ServedModel& sm : catalog_)
        modelNames.push_back(sm.model.name);
    ServingReport report = summarizeServing(
        records_, static_cast<long>(trace.size()), dispatches,
        paddedSlots, delta, cachedMixes, modelNames, enginePool_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const Shard& shard = shards_[s];
        ShardReport sr;
        sr.shardIdx = static_cast<int>(s);
        sr.mcmName = templates_[s].name();
        sr.dispatches =
            shard.executor.dispatchCount() - shard.dispatchesBefore;
        sr.busySec = shard.busySec;
        sr.utilization = report.horizonSec > 0.0
                             ? shard.busySec / report.horizonSec
                             : 0.0;
        sr.solveStallSec = shard.solveStallSec;
        sr.switchOverheadSec = shard.switchOverheadSec;
        sr.preemptions = shard.preemptions;
        report.solveStallSec += shard.solveStallSec;
        report.switchOverheadSec += shard.switchOverheadSec;
        report.preemptions += shard.preemptions;
        report.resumeOverheadSec += shard.resumeOverheadSec;
        report.shards.push_back(sr);
    }
    report.preemptionEnabled = options_.serving.preemption.enabled;
    report.llmEnabled = llmEnabled_;
    // Epoch-engine statistics. The numbers are identical at every
    // engineThreads value (the epoch path runs at all of them —
    // inline at 1); the reporter renders them only when != 1, so
    // default runs stay byte-identical.
    report.engineThreads = options_.engineThreads;
    report.epochs = epochStats_.epochs;
    report.epochTicks = epochStats_.ticks;
    report.epochCommitBatches = epochStats_.commitBatches;
    report.epochMaxCommitBatch = epochStats_.maxCommitBatch;
    report.epochAbsorbedArrivals = epochStats_.absorbedArrivals;
    report.epochCapReplayEnd = epochStats_.caps[kEpochCapReplayEnd];
    report.epochCapParked = epochStats_.caps[kEpochCapParked];
    report.epochCapArrival = epochStats_.caps[kEpochCapArrival];
    report.epochCapTimer = epochStats_.caps[kEpochCapTimer];
    report.epochCapSpeculation =
        epochStats_.caps[kEpochCapSpeculation];
    report.epochCapUrgency = epochStats_.caps[kEpochCapUrgency];
    report.epochCapJoin = epochStats_.caps[kEpochCapJoin];
    report.epochCapRelease = epochStats_.caps[kEpochCapRelease];
    if (llmEnabled_) {
        report.llmDecodeRounds = llmDecodeRounds_;
        report.llmJoins = llmJoins_;
        report.llmMeanDecodeBatch =
            llmDecodeRounds_ > 0
                ? static_cast<double>(llmBoardedSum_) /
                      static_cast<double>(llmDecodeRounds_)
                : 0.0;
    }
    if (rec) {
        rec->metrics().gauge("horizon_sec").set(report.horizonSec);
        rec->metrics()
            .gauge("throughput_rps")
            .set(report.throughputRps);
        rec->metrics()
            .gauge("slo_violation_rate")
            .set(report.sloViolationRate);
        rec->metrics()
            .gauge("batch_occupancy")
            .set(report.batchOccupancy);
        // Epoch-engine counters (the per-batch size histogram was
        // recorded inline). Deterministic at any engineThreads.
        rec->metrics().counter("epoch.epochs").inc(
            epochStats_.epochs);
        rec->metrics().counter("epoch.ticks").inc(epochStats_.ticks);
        rec->metrics()
            .counter("epoch.commit_batches")
            .inc(epochStats_.commitBatches);
        rec->metrics()
            .counter("epoch.absorbed_arrivals")
            .inc(epochStats_.absorbedArrivals);
    }
    report.contestedRoutes = contestedRoutes_;
    report.costOptimalRoutes = costOptimalRoutes_;
    report.costOptimalRouteFrac =
        contestedRoutes_ > 0
            ? static_cast<double>(costOptimalRoutes_) /
                  static_cast<double>(contestedRoutes_)
            : 1.0;
    inform("fleet: ", report.completed, "/", report.offered,
           " requests over ", shards_.size(), " shard(s) (",
           routingPolicyName(options_.routing), ") in ",
           report.dispatches, " dispatches, ", delta.misses,
           " schedule solves (", cachedMixes, " mixes cached)");
    if (options_.serving.preemption.enabled)
        inform("fleet: ", report.preemptions,
               " boundary preemptions, ", report.preemptedRequests,
               " preempted requests resumed");
    if (llmEnabled_)
        inform("fleet: ", report.llmDecodeRounds, " decode rounds, ",
               report.llmJoins, " continuous-batching joins");
    return report;
}

} // namespace runtime
} // namespace scar
