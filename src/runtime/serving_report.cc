#include "runtime/serving_report.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"

namespace scar
{
namespace runtime
{

namespace
{

/** Nearest-rank percentile of an ascending-sorted sample. */
double
sortedPercentile(const std::vector<double>& sorted, double p)
{
    SCAR_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (sorted.empty())
        return 0.0;
    // The ceil(p/100 * n)-th smallest value (1-based).
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * sorted.size()));
    return sorted[rank == 0 ? 0 : rank - 1];
}

} // namespace

double
percentileSec(std::vector<double> latencies, double p)
{
    std::sort(latencies.begin(), latencies.end());
    return sortedPercentile(latencies, p);
}

ServingReport
summarizeServing(const std::vector<Request>& requests, long offered,
                 long dispatches, long paddedSlots,
                 const ScheduleCacheStats& cacheStats, long uniqueMixes)
{
    return summarizeServing(requests, offered, dispatches, paddedSlots,
                            cacheStats, uniqueMixes, {});
}

ServingReport
summarizeServing(const std::vector<Request>& requests, long offered,
                 long dispatches, long paddedSlots,
                 const ScheduleCacheStats& cacheStats, long uniqueMixes,
                 const std::vector<std::string>& modelNames)
{
    return summarizeServing(requests, offered, dispatches, paddedSlots,
                            cacheStats, uniqueMixes, modelNames,
                            nullptr);
}

ServingReport
summarizeServing(const std::vector<Request>& requests, long offered,
                 long dispatches, long paddedSlots,
                 const ScheduleCacheStats& cacheStats, long uniqueMixes,
                 const std::vector<std::string>& modelNames,
                 ThreadPool* pool)
{
    ServingReport report;
    report.offered = offered;
    report.dispatches = dispatches;
    report.cache = cacheStats;
    report.uniqueMixes = uniqueMixes;

    std::vector<double> latencies;
    latencies.reserve(requests.size());
    std::vector<double> preemptedLatencies;
    double sum = 0.0;
    for (const Request& req : requests) {
        if (!req.completed())
            continue;
        ++report.completed;
        const double lat = req.latencySec();
        latencies.push_back(lat);
        sum += lat;
        report.maxLatencySec = std::max(report.maxLatencySec, lat);
        report.horizonSec =
            std::max(report.horizonSec, req.completionSec);
        if (req.sloViolated())
            ++report.sloViolations;
        if (req.preempted) {
            ++report.preemptedRequests;
            preemptedLatencies.push_back(lat);
        }
    }
    if (!preemptedLatencies.empty()) {
        std::sort(preemptedLatencies.begin(),
                  preemptedLatencies.end());
        report.preemptedP99Sec =
            sortedPercentile(preemptedLatencies, 99.0);
    }
    // Autoregressive token metrics: TTFT (arrival -> first token,
    // i.e. the prefill completion) and TPOT (decode cadence over the
    // remaining outputTokens - 1 tokens).
    {
        std::vector<double> ttfts;
        double ttftSum = 0.0;
        double tpotSum = 0.0;
        long tpotCount = 0;
        std::int64_t genTokens = 0;
        for (const Request& req : requests) {
            if (!req.completed() || req.outputTokens <= 0)
                continue;
            ++report.llmRequests;
            genTokens += req.outputTokens;
            const double ttft = req.ttftSec();
            ttfts.push_back(ttft);
            ttftSum += ttft;
            if (req.outputTokens > 1) {
                tpotSum += (req.completionSec - req.firstTokenSec) /
                           (req.outputTokens - 1);
                ++tpotCount;
            }
        }
        if (report.llmRequests > 0) {
            report.meanTtftSec = ttftSum / report.llmRequests;
            std::sort(ttfts.begin(), ttfts.end());
            report.p99TtftSec = sortedPercentile(ttfts, 99.0);
        }
        if (tpotCount > 0)
            report.meanTpotSec = tpotSum / tpotCount;
        if (report.horizonSec > 0.0)
            report.genTokensPerSec = genTokens / report.horizonSec;
    }
    if (report.completed > 0) {
        report.meanLatencySec = sum / report.completed;
        std::sort(latencies.begin(), latencies.end());
        report.p50LatencySec = sortedPercentile(latencies, 50.0);
        report.p95LatencySec = sortedPercentile(latencies, 95.0);
        report.p99LatencySec = sortedPercentile(latencies, 99.0);
        report.sloViolationRate =
            static_cast<double>(report.sloViolations) / report.completed;
    }
    if (report.horizonSec > 0.0)
        report.throughputRps = report.completed / report.horizonSec;
    if (paddedSlots > 0)
        report.batchOccupancy =
            static_cast<double>(report.completed) / paddedSlots;

    // Per-model queue-wait vs execution decomposition. latency =
    // (dispatch - arrival) + (completion - dispatch): the first term
    // is admission/batching/routing delay, the second the replay
    // (suspension gaps included for preempted requests). Each model's
    // scan, sorts, and percentiles touch only its own slot, so the
    // catalog fans out over the pool (inline when pool is null).
    report.perModel.resize(modelNames.size());
    forEachIndex(pool, modelNames.size(), [&](std::size_t m) {
        ModelServingBreakdown mb;
        mb.modelIdx = static_cast<int>(m);
        mb.name = modelNames[m];
        std::vector<double> total;
        std::vector<double> queue;
        std::vector<double> exec;
        double totalSum = 0.0;
        double queueSum = 0.0;
        double execSum = 0.0;
        for (const Request& req : requests) {
            if (!req.completed() ||
                req.modelIdx != static_cast<int>(m))
                continue;
            ++mb.completed;
            if (req.sloViolated())
                ++mb.sloViolations;
            const double lat = req.latencySec();
            const double queueSec = req.dispatchSec - req.arrivalSec;
            const double execSec = req.completionSec - req.dispatchSec;
            total.push_back(lat);
            queue.push_back(queueSec);
            exec.push_back(execSec);
            totalSum += lat;
            queueSum += queueSec;
            execSum += execSec;
        }
        if (mb.completed == 0) {
            report.perModel[m] = std::move(mb);
            return;
        }
        std::sort(total.begin(), total.end());
        std::sort(queue.begin(), queue.end());
        std::sort(exec.begin(), exec.end());
        mb.meanLatencySec = totalSum / mb.completed;
        mb.p50LatencySec = sortedPercentile(total, 50.0);
        mb.p95LatencySec = sortedPercentile(total, 95.0);
        mb.p99LatencySec = sortedPercentile(total, 99.0);
        mb.meanQueueSec = queueSum / mb.completed;
        mb.p50QueueSec = sortedPercentile(queue, 50.0);
        mb.p95QueueSec = sortedPercentile(queue, 95.0);
        mb.p99QueueSec = sortedPercentile(queue, 99.0);
        mb.meanExecSec = execSum / mb.completed;
        mb.p50ExecSec = sortedPercentile(exec, 50.0);
        mb.p95ExecSec = sortedPercentile(exec, 95.0);
        mb.p99ExecSec = sortedPercentile(exec, 99.0);
        report.perModel[m] = std::move(mb);
    });
    return report;
}

} // namespace runtime
} // namespace scar
