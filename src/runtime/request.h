/**
 * @file
 * Online serving request types.
 *
 * The offline scheduler (sched/scar.h) answers "how should this model
 * mix share the MCM"; the serving runtime answers "what happens when
 * requests for those models arrive continuously". A Request is one
 * inference demand for one catalog model, carrying an arrival time and
 * an SLO deadline:
 *  - datacenter models use MLPerf-style per-request latency targets;
 *  - AR/VR models use frame deadlines (1/fps of the XRBench cadence).
 *
 * Times are virtual seconds on the simulator clock (the window replay
 * converts schedule cycles through common/units.h).
 */

#ifndef SCAR_RUNTIME_REQUEST_H
#define SCAR_RUNTIME_REQUEST_H

#include <cstdint>
#include <limits>

#include "workload/model.h"
#include "workload/transformer_builder.h"

namespace scar
{
namespace runtime
{

/**
 * Autoregressive serving profile for a catalog model. When
 * `autoregressive` is set, the catalog entry's `model` field only
 * names the family and caps the batch; the runtime builds per-request
 * prefill and per-step decode variants from `decoder`
 * (workload/transformer_builder.h) with prompt/context lengths
 * rounded up to the bucket sizes, so one solved schedule covers every
 * request inside a bucket.
 */
struct LlmProfile
{
    bool autoregressive = false;
    /** Decoder architecture; name/batch are taken from the catalog. */
    TransformerConfig decoder;
    /** Prompt lengths round up to this bucket for prefill variants. */
    std::int64_t promptBucket = 64;
    /** Context lengths round up to this bucket for decode variants. */
    std::int64_t contextBucket = 256;
    /** Max decode steps a single decode round may batch together. */
    int maxDecodeSteps = 32;
    /** Mean prompt length for generated traffic (arrival.h). */
    std::int64_t meanPromptTokens = 128;
    /** Prompt length cap for generated traffic. */
    std::int64_t maxPromptTokens = 512;
    /** Mean of the geometric output-length draw (long-tail chat). */
    double meanOutputTokens = 64.0;
    /** Output length cap for generated traffic. */
    std::int64_t maxOutputTokens = 512;
};

/** One model offered for serving, with its traffic and SLO profile. */
struct ServedModel
{
    Model model;          ///< layers + max batch the cost model sees
    double rateRps = 1.0; ///< mean Poisson arrival rate (requests/s)
    /**
     * Per-request latency SLO in seconds (arrival to completion).
     * Infinity disables SLO accounting for the model.
     */
    double sloSec = std::numeric_limits<double>::infinity();
    /** Autoregressive decode profile; default = plain one-shot model. */
    LlmProfile llm;
};

/** Frame-deadline SLO for an AR/VR model running at the given fps. */
inline double
frameDeadlineSec(double fps)
{
    return 1.0 / fps;
}

/** One inference request against a catalog model. */
struct Request
{
    std::int64_t id = -1;
    int modelIdx = -1;       ///< index into the serving catalog
    double arrivalSec = 0.0;
    /** Absolute deadline: arrival + the model's SLO. */
    double deadlineSec = std::numeric_limits<double>::infinity();
    /** When the request's batch started executing (-1 = not yet). */
    double dispatchSec = -1.0;
    /** When the request's model finished its layers (-1 = not yet). */
    double completionSec = -1.0;
    /**
     * True when the request's replay was suspended at a window
     * boundary to serve a more urgent dispatch and later resumed
     * (runtime/executor.h). The serving report aggregates the tail
     * latency of these requests separately — the cost side of the
     * preemption trade.
     */
    bool preempted = false;

    // ---- autoregressive (LLM) state ------------------------------
    // Zero `outputTokens` marks a plain one-shot request; the fields
    // below are inert then and the serving paths ignore them.

    /** Prompt tokens consumed by the prefill pass (LLM only). */
    int promptTokens = 0;
    /** Total output tokens to generate; >= 1 for LLM requests. */
    int outputTokens = 0;
    /** Tokens generated so far (prefill completion yields the 1st). */
    int generatedTokens = 0;
    /** Virtual time the first token landed (-1 = prefill pending). */
    double firstTokenSec = -1.0;
    /**
     * Decode steps the rider's current decode round advances; stamped
     * at dispatch formation, consumed (credited to generatedTokens)
     * when the round completes or is cut for a continuous-batching
     * join. Zero outside a decode round.
     */
    int ridingDecodeSteps = 0;
    /**
     * Static batch-and-replay identity: riders locked into one decode
     * batch share an id and retire together. -1 = not locked
     * (continuous mode never locks).
     */
    std::int64_t llmBatchId = -1;

    bool completed() const { return completionSec >= 0.0; }

    /** True once the prefill pass produced the first token. */
    bool prefillDone() const { return firstTokenSec >= 0.0; }

    /** Prompt + generated context length the KV cache holds. */
    std::int64_t
    contextTokens() const
    {
        return static_cast<std::int64_t>(promptTokens) + generatedTokens;
    }

    /** Time to first token; only meaningful once prefill completed. */
    double ttftSec() const { return firstTokenSec - arrivalSec; }

    /** End-to-end latency; only meaningful once completed. */
    double latencySec() const { return completionSec - arrivalSec; }

    /** True when the request completed past its deadline. */
    bool
    sloViolated() const
    {
        return completed() && completionSec > deadlineSec;
    }
};

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_REQUEST_H
