/**
 * @file
 * Online serving request types.
 *
 * The offline scheduler (sched/scar.h) answers "how should this model
 * mix share the MCM"; the serving runtime answers "what happens when
 * requests for those models arrive continuously". A Request is one
 * inference demand for one catalog model, carrying an arrival time and
 * an SLO deadline:
 *  - datacenter models use MLPerf-style per-request latency targets;
 *  - AR/VR models use frame deadlines (1/fps of the XRBench cadence).
 *
 * Times are virtual seconds on the simulator clock (the window replay
 * converts schedule cycles through common/units.h).
 */

#ifndef SCAR_RUNTIME_REQUEST_H
#define SCAR_RUNTIME_REQUEST_H

#include <cstdint>
#include <limits>

#include "workload/model.h"

namespace scar
{
namespace runtime
{

/** One model offered for serving, with its traffic and SLO profile. */
struct ServedModel
{
    Model model;          ///< layers + max batch the cost model sees
    double rateRps = 1.0; ///< mean Poisson arrival rate (requests/s)
    /**
     * Per-request latency SLO in seconds (arrival to completion).
     * Infinity disables SLO accounting for the model.
     */
    double sloSec = std::numeric_limits<double>::infinity();
};

/** Frame-deadline SLO for an AR/VR model running at the given fps. */
inline double
frameDeadlineSec(double fps)
{
    return 1.0 / fps;
}

/** One inference request against a catalog model. */
struct Request
{
    std::int64_t id = -1;
    int modelIdx = -1;       ///< index into the serving catalog
    double arrivalSec = 0.0;
    /** Absolute deadline: arrival + the model's SLO. */
    double deadlineSec = std::numeric_limits<double>::infinity();
    /** When the request's batch started executing (-1 = not yet). */
    double dispatchSec = -1.0;
    /** When the request's model finished its layers (-1 = not yet). */
    double completionSec = -1.0;
    /**
     * True when the request's replay was suspended at a window
     * boundary to serve a more urgent dispatch and later resumed
     * (runtime/executor.h). The serving report aggregates the tail
     * latency of these requests separately — the cost side of the
     * preemption trade.
     */
    bool preempted = false;

    bool completed() const { return completionSec >= 0.0; }

    /** End-to-end latency; only meaningful once completed. */
    double latencySec() const { return completionSec - arrivalSec; }

    /** True when the request completed past its deadline. */
    bool
    sloViolated() const
    {
        return completed() && completionSec > deadlineSec;
    }
};

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_REQUEST_H
