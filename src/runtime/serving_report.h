/**
 * @file
 * Serving-quality metrics aggregated over one simulated run: the
 * online counterpart of eval/metrics.h's offline Metrics.
 *
 * Latency percentiles follow the serving-benchmark convention
 * (MLPerf server scenario): per-request end-to-end latency from
 * arrival to completion, ranked; pX is the smallest observed latency
 * with at least X% of requests at or below it.
 */

#ifndef SCAR_RUNTIME_SERVING_REPORT_H
#define SCAR_RUNTIME_SERVING_REPORT_H

#include <string>
#include <vector>

#include "runtime/request.h"
#include "runtime/schedule_cache.h"

namespace scar
{

class ThreadPool;

namespace runtime
{

/** Per-package accounting in a fleet run. */
struct ShardReport
{
    int shardIdx = 0;
    /** Display name of the shard's MCM template (heterogeneous
     *  fleets list different names per row). */
    std::string mcmName;
    long dispatches = 0;
    double busySec = 0.0;        ///< virtual time spent replaying
    double utilization = 0.0;    ///< busySec / report horizon
    /** Virtual idle time spent waiting for a schedule solve. */
    double solveStallSec = 0.0;
    /** Modeled weight re-staging paid on mix switches. */
    double switchOverheadSec = 0.0;
    /** Replays suspended at a window boundary for an urgent batch. */
    long preemptions = 0;
};

/**
 * Per-model latency decomposition: end-to-end latency split into the
 * queue-wait component (arrival -> batch dispatch) and the execution
 * component (dispatch -> completion, replay time plus any suspension
 * gap). Queue wait is where batching policy and routing show up;
 * execution is where the schedule and preemption do — the split tells
 * which knob an SLO miss is charged to.
 */
struct ModelServingBreakdown
{
    int modelIdx = -1;    ///< catalog index
    std::string name;     ///< catalog model name
    long completed = 0;
    long sloViolations = 0;

    double meanLatencySec = 0.0;
    double p50LatencySec = 0.0;
    double p95LatencySec = 0.0;
    double p99LatencySec = 0.0;

    double meanQueueSec = 0.0;
    double p50QueueSec = 0.0;
    double p95QueueSec = 0.0;
    double p99QueueSec = 0.0;

    double meanExecSec = 0.0;
    double p50ExecSec = 0.0;
    double p95ExecSec = 0.0;
    double p99ExecSec = 0.0;
};

/** Aggregate serving statistics for one simulated stream. */
struct ServingReport
{
    long offered = 0;      ///< requests in the input stream
    long completed = 0;    ///< requests that finished
    long dispatches = 0;   ///< co-scheduled batches executed
    double horizonSec = 0.0; ///< virtual time at last completion

    double throughputRps = 0.0; ///< completed / horizon

    double meanLatencySec = 0.0;
    double p50LatencySec = 0.0;
    double p95LatencySec = 0.0;
    double p99LatencySec = 0.0;
    double maxLatencySec = 0.0;

    long sloViolations = 0;
    double sloViolationRate = 0.0; ///< violations / completed

    ScheduleCacheStats cache; ///< misses == Scar::run invocations
    long uniqueMixes = 0;     ///< cached schedules across all shards

    /** Mean dispatched-batch occupancy: requests / padded slots. */
    double batchOccupancy = 0.0;

    /** Per-model queue-wait vs execution latency split. Filled only
     *  by the model-aware summarizeServing overload; empty keeps the
     *  rendered report byte-identical to the pre-breakdown format. */
    std::vector<ModelServingBreakdown> perModel;

    /** Per-shard accounting (one entry per MCM package). */
    std::vector<ShardReport> shards;
    /** Fleet totals of the per-shard stall/overhead columns. */
    double solveStallSec = 0.0;
    double switchOverheadSec = 0.0;

    // Routing quality: of the dispatches where the routing policy had
    // a real choice (>= 2 idle candidate shards), how many went to a
    // candidate the BestFit cost model also ranks cheapest. 1.0 for
    // BestFit by construction; for the heuristic policies the gap
    // measures completion time left on the table — most visible on
    // heterogeneous fleets where shards run the same mix at different
    // speeds.
    long contestedRoutes = 0;
    long costOptimalRoutes = 0;
    double costOptimalRouteFrac = 1.0; ///< 1.0 when uncontested

    // Boundary preemption (runtime/executor.h). preemptionEnabled
    // gates the extra reporter rows so a run with preemption disabled
    // renders byte-identically to the pre-preemption reports.
    bool preemptionEnabled = false;
    /** Replays suspended at a window boundary across all shards. */
    long preemptions = 0;
    /** Modeled weight re-staging charged when suspended replays
     *  resumed. */
    double resumeOverheadSec = 0.0;
    /** Completed requests whose replay was suspended at least once. */
    long preemptedRequests = 0;
    /** p99 latency over just those requests — the tail the preempted
     *  (typically datacenter) traffic pays for the urgent fast lane. */
    double preemptedP99Sec = 0.0;

    // Autoregressive serving (runtime/request.h LlmProfile).
    // llmEnabled gates the extra reporter rows so a run without LLM
    // catalog entries renders byte-identically to the pre-LLM format.
    bool llmEnabled = false;
    /** Completed autoregressive requests (outputTokens > 0). */
    long llmRequests = 0;
    /** Decode rounds dispatched across all shards. */
    long llmDecodeRounds = 0;
    /** Continuous-batching join cuts (suspend + merged re-dispatch). */
    long llmJoins = 0;
    /** Mean riders per decode round (decode-batch occupancy). */
    double llmMeanDecodeBatch = 0.0;
    /** Time-to-first-token stats over completed LLM requests. */
    double meanTtftSec = 0.0;
    double p99TtftSec = 0.0;
    /** Mean time-per-output-token past the first (decode cadence). */
    double meanTpotSec = 0.0;
    /** Generated tokens per virtual second over the run horizon. */
    double genTokensPerSec = 0.0;

    // Parallel epoch engine (runtime/fleet.h). The statistics are a
    // pure function of virtual time — identical at every
    // engineThreads value — but the reporter renders them only when
    // engineThreads != 1, so a default (serial-inline) run keeps the
    // pre-engine report format byte for byte.
    int engineThreads = 1;
    /** Epochs that committed at least one tick. */
    long epochs = 0;
    /** Window-boundary ticks committed through epochs (the rest went
     *  through the single-tick path). */
    long epochTicks = 0;
    /** Same-shard tick runs committed as one merge-set update. */
    long epochCommitBatches = 0;
    long epochMaxCommitBatch = 0;
    /** Arrivals absorbed into epoch commit streams. */
    long epochAbsorbedArrivals = 0;
    // Which bound term capped each committed epoch.
    long epochCapReplayEnd = 0;   ///< earliest busy replay's final end
    long epochCapParked = 0;      ///< earliest parked-solve ready
    long epochCapArrival = 0;     ///< next unabsorbed arrival
    long epochCapTimer = 0;       ///< batching-timer maturity
    long epochCapSpeculation = 0; ///< speculative-solve guard
    long epochCapUrgency = 0;     ///< next preemption urgency crossing
    long epochCapJoin = 0;        ///< earliest step-aligned join cut
    long epochCapRelease = 0;     ///< earliest mid-replay LLM release
};

/**
 * Empirical percentile of a latency sample (p in [0, 100]), using the
 * nearest-rank definition. Returns 0 for an empty sample.
 */
double percentileSec(std::vector<double> latencies, double p);

/**
 * Builds the report from completed per-request records and the run's
 * cache statistics.
 * @param requests completed requests (records with completionSec set)
 * @param offered size of the input stream
 * @param dispatches number of executed dispatches
 * @param paddedSlots total dispatched batch slots (incl. padding)
 * @param cacheStats schedule-cache counters after the run
 * @param uniqueMixes distinct mixes scheduled
 */
ServingReport summarizeServing(const std::vector<Request>& requests,
                               long offered, long dispatches,
                               long paddedSlots,
                               const ScheduleCacheStats& cacheStats,
                               long uniqueMixes);

/**
 * As above, and additionally fills ServingReport::perModel — one
 * queue-wait vs execution latency breakdown per catalog model.
 * @param modelNames catalog model names; modelIdx indexes this list
 */
ServingReport summarizeServing(const std::vector<Request>& requests,
                               long offered, long dispatches,
                               long paddedSlots,
                               const ScheduleCacheStats& cacheStats,
                               long uniqueMixes,
                               const std::vector<std::string>& modelNames);

/**
 * As above, with the per-model breakdowns computed on the pool (one
 * task per catalog model — each model's sorts and percentiles are
 * independent). Results are byte-identical to the serial overload;
 * a null pool runs inline.
 */
ServingReport summarizeServing(const std::vector<Request>& requests,
                               long offered, long dispatches,
                               long paddedSlots,
                               const ScheduleCacheStats& cacheStats,
                               long uniqueMixes,
                               const std::vector<std::string>& modelNames,
                               ThreadPool* pool);

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_SERVING_REPORT_H
