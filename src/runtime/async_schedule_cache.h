/**
 * @file
 * Asynchronous schedule cache: future-backed schedule solves on the
 * worker pool, so a cache miss no longer stalls the serving event
 * loop while Scar::run searches.
 *
 * Two clocks are in play and must not be confused:
 *  - Wall time: how long the background Scar::run actually takes on
 *    the pool. The event loop only blocks on it at join(), the moment
 *    a shard actually needs the schedule to start replaying.
 *  - Virtual time: the simulator clock. A solve started at virtual
 *    instant t is *usable* from t + modeledSolveSec — the modeled
 *    latency of running the search on the package's host. Keeping the
 *    usable instant virtual (recorded at solve start) makes serving
 *    results bit-identical regardless of how fast the wall-clock
 *    solve happens to finish.
 *
 * Lifecycle of a signature:
 *   absent --prefetch/lookup--> in flight (future + virtual readySec)
 *          --join (at virtual readySec)--> stored (ScheduleCache LRU)
 *
 * In-flight entries are promoted to the LRU store only by join() (the
 * deterministic event loop) or drainInFlight() (end of run), never by
 * the background worker, so the store's contents — and therefore LRU
 * eviction order — depend only on virtual time.
 *
 * getOrCompute() is the blocking convenience path (and the
 * concurrency contract: racing callers on one signature run the solve
 * exactly once); the serving loop uses prefetch/lookup/join.
 *
 * Counters: misses = solves launched (speculative prefetches
 * included), hits = dispatch-time lookups served without launching a
 * solve (ready or already in flight).
 *
 * Sharding: an unbounded cache is split into K independently locked
 * stripes by a stable hash of the signature, so a planet-scale fleet
 * whose solver workers and event engine hammer one shared cache do
 * not serialize on a single mutex. Striping an unbounded cache is a
 * pure partition — every key maps to exactly one stripe, so hit/miss
 * counts, exactly-once solve dedup, and stored contents are identical
 * to the single-lock cache. A *bounded* cache always uses one stripe:
 * per-stripe LRU lists would evict in a different order than the one
 * global list the capacity contract promises.
 */

#ifndef SCAR_RUNTIME_ASYNC_SCHEDULE_CACHE_H
#define SCAR_RUNTIME_ASYNC_SCHEDULE_CACHE_H

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "runtime/schedule_cache.h"

namespace scar
{
namespace runtime
{

/** Outcome of a dispatch-time cache consultation. */
struct AsyncLookup
{
    /** The schedule when already usable, nullptr while solving. */
    std::shared_ptr<const CachedSchedule> schedule;
    /** Virtual instant the schedule is (or becomes) usable. */
    double readySec = 0.0;
    /** True when this lookup launched a new background solve. */
    bool startedSolve = false;
};

/** Non-mutating probe result (routing cost estimation). */
struct CachePeek
{
    /** The stored schedule, nullptr when absent or still solving. */
    std::shared_ptr<const CachedSchedule> schedule;
    /** True while a background solve for the key is running. */
    bool inFlight = false;
    /** Virtual usable instant of the in-flight solve. */
    double readySec = 0.0;

    /** Stored or in flight. */
    bool known() const { return schedule != nullptr || inFlight; }
};

/** Thread-safe, future-backed schedule cache over a worker pool. */
class AsyncScheduleCache
{
  public:
    using ComputeFn = ScheduleCache::ComputeFn;

    /**
     * @param pool workers for background solves (not owned); with
     *        concurrency 1 solves run inline — the blocking PR 1 path
     * @param options LRU bound for the completed-schedule store
     * @param stripes lock stripes: 0 picks the default (16 when the
     *        store is unbounded, 1 when a capacity is set — a global
     *        LRU order needs a global lock); an explicit count must
     *        be 1 when options.capacity > 0
     */
    explicit AsyncScheduleCache(
        ThreadPool& pool,
        ScheduleCacheOptions options = ScheduleCacheOptions{},
        int stripes = 0);

    /**
     * Blocks until every background solve has finished: solve tasks
     * reference caller-owned state (the compute closure), so they
     * must never outlive the cache — even when a run aborts with an
     * exception before its normal drainInFlight().
     */
    ~AsyncScheduleCache();

    /**
     * Blocking path: returns the schedule for the mix, solving at
     * most once per key even under concurrent callers — the first
     * caller computes (on its own thread), the rest wait on the
     * shared future. Keys by the mix signature; the explicit-key
     * variant lets the fleet key by (mix, package) instead.
     */
    std::shared_ptr<const CachedSchedule>
    getOrCompute(const Scenario& mix, const ComputeFn& compute);
    std::shared_ptr<const CachedSchedule>
    getOrCompute(const std::string& key, const Scenario& mix,
                 const ComputeFn& compute);

    /**
     * Begins a background solve for the mix unless its key is
     * already stored or in flight (idempotent — the serving loop
     * calls this speculatively whenever a batch is ready but every
     * shard is busy).
     * @param readySec virtual instant the result becomes usable
     */
    void prefetch(const Scenario& mix, const ComputeFn& compute,
                  double readySec);
    void prefetch(const std::string& key, const Scenario& mix,
                  const ComputeFn& compute, double readySec);

    /**
     * Dispatch-time consultation: a usable schedule counts a hit; an
     * in-flight solve counts a hit and reports when it lands; an
     * unknown key counts a miss and launches the solve with
     * readySec = nowSec + modeledSolveSec.
     */
    AsyncLookup lookup(const Scenario& mix, const ComputeFn& compute,
                       double nowSec, double modeledSolveSec);
    AsyncLookup lookup(const std::string& key, const Scenario& mix,
                       const ComputeFn& compute, double nowSec,
                       double modeledSolveSec);

    /**
     * Non-mutating probe: reports whether the key is stored or in
     * flight (and the in-flight virtual ready instant) without
     * touching the LRU order or the hit/miss counters. Cost-aware
     * routing peeks at every candidate shard's cache; only the
     * eventual dispatch-time lookup() may count and touch.
     */
    CachePeek peek(const std::string& key) const;

    /**
     * Waits (wall clock) for the signature's solve and promotes it
     * into the store. The signature must be stored or in flight —
     * i.e. join() only follows a prefetch/lookup/getOrCompute.
     */
    std::shared_ptr<const CachedSchedule>
    join(const std::string& signature);

    /**
     * Joins every in-flight solve (end of a serving run), so
     * speculative solves are stored before stats are read and no
     * background work bleeds past run boundaries.
     */
    void drainInFlight();

    /** Counter snapshot summed over the stripes (each locked in
     *  turn; exact once background solves have quiesced). */
    ScheduleCacheStats stats() const;

    /** Completed schedules in the store (in-flight excluded). */
    std::size_t size() const;

    std::size_t capacity() const;

    /** Lock stripes the signature space is sharded over. */
    int stripeCount() const
    {
        return static_cast<int>(stripes_.size());
    }

  private:
    using Future =
        std::shared_future<std::shared_ptr<const CachedSchedule>>;

    struct Inflight
    {
        Future future;
        double readySec = 0.0;
    };

    /** One independently locked shard of the signature space. */
    struct Stripe
    {
        explicit Stripe(ScheduleCacheOptions options)
            : store(options)
        {
        }
        mutable std::mutex mu;
        ScheduleCache store;
        std::map<std::string, Inflight> inflight;
        ScheduleCacheStats stats;
    };

    Stripe& stripeFor(const std::string& signature);
    const Stripe& stripeFor(const std::string& signature) const;

    /**
     * Registers the signature as in flight in its stripe and returns
     * the solve task for the caller to submit *after releasing the
     * stripe lock* (a zero-worker pool runs submissions inline, and
     * the solve must never execute under a cache lock). Caller must
     * hold stripe.mu and have checked absence.
     */
    std::function<void()> launchLocked(Stripe& stripe,
                                       const std::string& signature,
                                       const Scenario& mix,
                                       const ComputeFn& compute,
                                       double readySec);

    std::shared_ptr<const CachedSchedule>
    joinStripe(Stripe& stripe, const std::string& signature);

    ThreadPool& pool_;
    std::vector<std::unique_ptr<Stripe>> stripes_;
};

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_ASYNC_SCHEDULE_CACHE_H
