#include "runtime/arrival.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace scar
{
namespace runtime
{
namespace
{

/** Exponential inter-arrival gap at the given rate. */
double
expGap(Rng& rng, double rateRps)
{
    // Invert the CDF on a (0, 1] uniform so the log argument is
    // never zero.
    const double u = 1.0 - rng.uniform();
    return -std::log(u) / rateRps;
}

} // namespace

std::vector<Request>
poissonTrace(const std::vector<ServedModel>& catalog, int numRequests,
             std::uint64_t seed)
{
    SCAR_REQUIRE(!catalog.empty(), "poissonTrace: empty catalog");
    SCAR_REQUIRE(numRequests >= 0, "poissonTrace: negative count");
    for (const ServedModel& sm : catalog)
        SCAR_REQUIRE(sm.rateRps > 0.0, "poissonTrace: model ",
                     sm.model.name, " has non-positive rate");

    Rng rng(seed);
    // Next pending arrival per model; the merge repeatedly commits the
    // earliest one and redraws that model's gap. Draw order is fully
    // determined by the arrival order, so the trace is reproducible.
    std::vector<double> next(catalog.size());
    for (std::size_t m = 0; m < catalog.size(); ++m)
        next[m] = expGap(rng, catalog[m].rateRps);

    std::vector<Request> trace;
    trace.reserve(numRequests);
    for (int i = 0; i < numRequests; ++i) {
        std::size_t pick = 0;
        for (std::size_t m = 1; m < catalog.size(); ++m) {
            if (next[m] < next[pick])
                pick = m;
        }
        Request req;
        req.id = i;
        req.modelIdx = static_cast<int>(pick);
        req.arrivalSec = next[pick];
        req.deadlineSec = next[pick] + catalog[pick].sloSec;
        trace.push_back(req);
        next[pick] += expGap(rng, catalog[pick].rateRps);
    }
    return trace;
}

std::vector<Request>
llmPoissonTrace(const std::vector<ServedModel>& catalog,
                int numRequests, std::uint64_t seed)
{
    std::vector<Request> trace =
        poissonTrace(catalog, numRequests, seed);
    // Token lengths come from their own stream so adding them never
    // perturbs the arrival pattern.
    Rng rng(mixSeed(seed, 0x11F0uLL));
    for (Request& req : trace) {
        const LlmProfile& llm = catalog[req.modelIdx].llm;
        if (!llm.autoregressive)
            continue;
        const int maxPrompt = static_cast<int>(llm.maxPromptTokens);
        // Mean of two uniforms: triangular around maxPrompt / 2,
        // shifted toward the profile mean by mixing in a draw capped
        // at 2 * mean.
        const int capped = static_cast<int>(std::min<std::int64_t>(
            2 * llm.meanPromptTokens, llm.maxPromptTokens));
        const int a = rng.uniformInt(1, std::max(1, capped));
        const int b = rng.uniformInt(1, std::max(1, maxPrompt));
        req.promptTokens = std::max(1, (a + b) / 2);
        // Geometric output length (inverse CDF) with mean
        // meanOutputTokens: the long tail a few requests decode far
        // past the batch median.
        const double mean = std::max(1.0, llm.meanOutputTokens);
        const double p = 1.0 / mean;
        const double u = 1.0 - rng.uniform(); // (0, 1]
        const std::int64_t draw =
            1 + static_cast<std::int64_t>(
                    std::floor(std::log(u) / std::log(1.0 - p)));
        req.outputTokens = static_cast<int>(
            std::min<std::int64_t>(std::max<std::int64_t>(draw, 1),
                                   llm.maxOutputTokens));
    }
    return trace;
}

std::vector<Request>
traceFromArrivals(const std::vector<ServedModel>& catalog,
                  std::vector<std::pair<double, int>> arrivals)
{
    SCAR_REQUIRE(!catalog.empty(), "traceFromArrivals: empty catalog");
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    std::vector<Request> trace;
    trace.reserve(arrivals.size());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const auto& [timeSec, modelIdx] = arrivals[i];
        SCAR_REQUIRE(modelIdx >= 0 &&
                         modelIdx < static_cast<int>(catalog.size()),
                     "traceFromArrivals: model index ", modelIdx,
                     " outside catalog of ", catalog.size());
        SCAR_REQUIRE(timeSec >= 0.0,
                     "traceFromArrivals: negative arrival time");
        Request req;
        req.id = static_cast<std::int64_t>(i);
        req.modelIdx = modelIdx;
        req.arrivalSec = timeSec;
        req.deadlineSec = timeSec + catalog[modelIdx].sloSec;
        trace.push_back(req);
    }
    return trace;
}

} // namespace runtime
} // namespace scar
