/**
 * @file
 * Discrete-event replay executor: plays a cached SCAR schedule
 * window-by-window on a virtual clock.
 *
 * One dispatch occupies the whole MCM (the offline schedule already
 * time-shares the package across the mix's models), so the executor
 * models the accelerator as a single resource replaying the cached
 * windows back to back — the Section III-E execution semantics. Each
 * window boundary is one event: crossing the end of window w
 * completes every request whose model placed its final layers in w
 * (the WindowEvaluator latencies captured in the cached schedule
 * determine each boundary's instant). Requests in later windows keep
 * running until their own boundary.
 *
 * Boundary preemption: window ends are the only instants where the
 * package holds no in-flight layer work (sched/scar.h's
 * WindowBoundary metadata), so a replay can be suspend()ed exactly
 * there — the remaining windows, the still-riding requests, and the
 * boundary cursor detach into a SuspendedReplay — and later
 * resume()d from the saved cursor without re-solving the schedule.
 * The fleet charges the modeled weight re-staging overhead of a
 * resume on the virtual clock; the executor itself only moves the
 * cursor. A suspended replay keeps its own shared_ptr to the cached
 * schedule, so LRU eviction while it waits cannot invalidate it.
 */

#ifndef SCAR_RUNTIME_EXECUTOR_H
#define SCAR_RUNTIME_EXECUTOR_H

#include <limits>
#include <memory>
#include <vector>

#include "common/error.h"
#include "runtime/admission.h"
#include "runtime/schedule_cache.h"

namespace scar
{
namespace runtime
{

/** The executor's report for one crossed window boundary. */
struct WindowTick
{
    double timeSec = 0.0;  ///< absolute end instant of the window
    int windowIdx = -1;    ///< which schedule window just finished
    /** Requests completed at this boundary, completionSec filled in. */
    std::vector<Request> completed;
    /** True when this was the dispatch's last window (MCM now free). */
    bool dispatchDone = false;
};

/**
 * A replay detached at a window boundary by ReplayExecutor::suspend.
 *
 * Holds everything resume() needs to continue the dispatch from its
 * saved boundary cursor: the schedule reference (eviction-safe), the
 * dispatch with its still-riding requests, the index of the next
 * window to replay, and the total duration of the remaining windows
 * (the backlog cost-aware routing charges for a suspended shard).
 */
struct SuspendedReplay
{
    std::shared_ptr<const CachedSchedule> schedule;
    Dispatch dispatch;
    std::size_t window = 0;     ///< next window to replay on resume
    double remainingSec = 0.0;  ///< sum of windowSec[window..end]
};

/** Replays cached schedules for one dispatch at a time. */
class ReplayExecutor
{
  public:
    /** True while a dispatch is replaying. */
    bool busy() const { return busy_; }

    /**
     * Begins replaying the cached schedule of a dispatch at startSec.
     * The schedule must have been computed for the dispatch's mix
     * (same model count and order); the executor holds a reference,
     * so an LRU-evicted schedule stays valid until the replay ends.
     * Requires !busy().
     */
    void start(std::shared_ptr<const CachedSchedule> schedule,
               Dispatch dispatch, double startSec);

    /**
     * Absolute time of the next window boundary. Requires busy().
     */
    double nextBoundarySec() const;

    /**
     * Crosses the next window boundary, completing the requests whose
     * models end there. Requires busy(); clears busy() on the last
     * window.
     */
    WindowTick advance();

    /**
     * Batch advance for the parallel epoch engine (runtime/fleet.cc):
     * crosses every boundary strictly before boundSec, appending each
     * tick to `out` in replay order, and stops at the first boundary
     * at or past the bound (or when the dispatch ends). Equivalent to
     * calling advance() in a loop while nextBoundarySec() < boundSec;
     * exists so a fleet epoch can drain each shard independently —
     * the method touches only this executor's state.
     * @return the number of ticks appended
     */
    std::size_t drainUntil(double boundSec,
                           std::vector<WindowTick>& out);

    /**
     * Absolute time of the replay's *last* boundary, on the same
     * accumulated clock advance() uses (windowEndSec_ summed window
     * by window). This is the exact instant busy() clears — the
     * fleet's busyUntilSec (startSec + makespanSec, one rounding) can
     * differ from it by ulps, and the epoch engine's conservative
     * bound must never admit a dispatch-done tick, so it keys on this
     * value. Requires busy().
     */
    double finalBoundarySec() const;

    /**
     * Epoch-bound probe for continuous-batching joins: the absolute
     * instant of the next *step-aligned, non-final* window boundary —
     * the earliest place the fleet's join-cut rule
     * ((windowIdx + 1) % windowsPerStep == 0 on a non-dispatchDone
     * tick) could cut this decode round to merge fresh waiters.
     * Accumulated forward from the next boundary in advance()'s exact
     * rounding order, so the returned instant equals the matching
     * tick's timeSec bit for bit and a drainUntil() at this bound
     * stops strictly before the cut. Returns +infinity when no such
     * boundary remains. Requires busy().
     */
    double nextStepBoundarySec(int windowsPerStep) const;

    /**
     * Epoch-bound probe for mid-replay completions: the earliest
     * boundary instant at which any dispatch group selected by
     * `pred(groupIdx)` replays its last window (and so completes its
     * requests mid-replay — for autoregressive groups that completion
     * enqueues decode waiters, a routing-decision source the epoch
     * bound must not cross). Same exact accumulation as
     * nextStepBoundarySec(). Returns +infinity when no selected group
     * completes at or after the next boundary. Requires busy().
     */
    template <typename Pred>
    double earliestGroupEndSec(Pred pred) const
    {
        SCAR_REQUIRE(busy_,
                     "executor: earliestGroupEndSec while idle");
        // Window durations are non-negative, so the earliest ending
        // window index is also the earliest ending instant.
        int firstEnd = std::numeric_limits<int>::max();
        for (std::size_t m = 0; m < dispatch_.groups.size(); ++m) {
            const int last = schedule_->lastWindow[m];
            if (last >= static_cast<int>(window_) && last < firstEnd &&
                pred(m))
                firstEnd = last;
        }
        if (firstEnd == std::numeric_limits<int>::max())
            return std::numeric_limits<double>::infinity();
        return boundaryInstantSec(static_cast<std::size_t>(firstEnd));
    }

    /**
     * Windows not yet fully replayed, the upcoming one included.
     * Requires busy(). 1 means the replay ends at the next boundary —
     * preempting then is a no-op (the package frees anyway), which is
     * why advance()-then-check, not suspend(), handles the
     * last-window case.
     */
    std::size_t windowsRemaining() const;

    /**
     * Detaches the in-flight replay at the current boundary cursor
     * and frees the executor. Must be called exactly at a boundary —
     * i.e. directly after an advance() whose tick was not
     * dispatchDone — so no window is partially replayed. Every
     * request still riding (its model completes in a remaining
     * window) is marked preempted when `markPreempted` is set; the
     * continuous-batching join cut passes false — cutting a decode
     * round to merge waiting requests is a policy choice in the
     * riders' favor, not a preemption cost the report should tally.
     * Requires busy().
     */
    SuspendedReplay suspend(bool markPreempted = true);

    /**
     * Continues a suspended replay from its saved cursor at startSec:
     * the next boundary lands at startSec + that window's duration.
     * Unlike start(), the requests' dispatchSec is left untouched
     * (their batch already started once) and no new dispatch is
     * counted. Requires !busy().
     */
    void resume(SuspendedReplay replay, double startSec);

    /** Dispatches started so far (for report bookkeeping). */
    long dispatchCount() const { return dispatches_; }

    /**
     * The in-flight dispatch (the fleet inspects decode-round
     * metadata at window boundaries). Requires busy().
     */
    const Dispatch& dispatch() const;

  private:
    /**
     * Exact boundary instant of window j >= window_: windowEndSec_
     * plus the durations of windows (window_, j], accumulated left to
     * right — the same rounding sequence advance() applies, so the
     * result matches the future tick's timeSec bit for bit.
     */
    double boundaryInstantSec(std::size_t j) const;

    bool busy_ = false;
    std::shared_ptr<const CachedSchedule> schedule_;
    Dispatch dispatch_;
    std::size_t window_ = 0;   ///< next boundary to cross
    double windowEndSec_ = 0.0; ///< absolute end of that window
    double finalBoundarySec_ = 0.0; ///< accumulated last-window end
    long dispatches_ = 0;
};

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_EXECUTOR_H
