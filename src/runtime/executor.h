/**
 * @file
 * Discrete-event replay executor: plays a cached SCAR schedule
 * window-by-window on a virtual clock.
 *
 * One dispatch occupies the whole MCM (the offline schedule already
 * time-shares the package across the mix's models), so the executor
 * models the accelerator as a single resource replaying the cached
 * windows back to back — the Section III-E execution semantics. Each
 * window boundary is one event: crossing the end of window w
 * completes every request whose model placed its final layers in w
 * (the WindowEvaluator latencies captured in the cached schedule
 * determine each boundary's instant). Requests in later windows keep
 * running until their own boundary.
 */

#ifndef SCAR_RUNTIME_EXECUTOR_H
#define SCAR_RUNTIME_EXECUTOR_H

#include <memory>
#include <vector>

#include "runtime/admission.h"
#include "runtime/schedule_cache.h"

namespace scar
{
namespace runtime
{

/** The executor's report for one crossed window boundary. */
struct WindowTick
{
    double timeSec = 0.0;  ///< absolute end instant of the window
    int windowIdx = -1;    ///< which schedule window just finished
    /** Requests completed at this boundary, completionSec filled in. */
    std::vector<Request> completed;
    /** True when this was the dispatch's last window (MCM now free). */
    bool dispatchDone = false;
};

/** Replays cached schedules for one dispatch at a time. */
class ReplayExecutor
{
  public:
    /** True while a dispatch is replaying. */
    bool busy() const { return busy_; }

    /**
     * Begins replaying the cached schedule of a dispatch at startSec.
     * The schedule must have been computed for the dispatch's mix
     * (same model count and order); the executor holds a reference,
     * so an LRU-evicted schedule stays valid until the replay ends.
     * Requires !busy().
     */
    void start(std::shared_ptr<const CachedSchedule> schedule,
               Dispatch dispatch, double startSec);

    /**
     * Absolute time of the next window boundary. Requires busy().
     */
    double nextBoundarySec() const;

    /**
     * Crosses the next window boundary, completing the requests whose
     * models end there. Requires busy(); clears busy() on the last
     * window.
     */
    WindowTick advance();

    /** Dispatches started so far (for report bookkeeping). */
    long dispatchCount() const { return dispatches_; }

  private:
    bool busy_ = false;
    std::shared_ptr<const CachedSchedule> schedule_;
    Dispatch dispatch_;
    std::size_t window_ = 0;   ///< next boundary to cross
    double windowEndSec_ = 0.0; ///< absolute end of that window
    long dispatches_ = 0;
};

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_EXECUTOR_H
