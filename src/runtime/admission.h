/**
 * @file
 * Admission and batching policy for the serving runtime.
 *
 * Requests queue per catalog model. A model becomes "ready" when a
 * full batch (its catalog batch size, the one the cost model's
 * mini-batch derivation understands) is queued, or when its oldest
 * request has waited longer than maxQueueDelaySec. When the MCM is
 * free and at least one model is ready, the controller drains every
 * model with pending work into one dispatch: the co-scheduled mix.
 *
 * Partially filled batches are rounded up to the next power of two
 * (capped at the catalog batch) so the space of dispatched batch
 * sizes — and therefore of mix signatures that trigger a fresh
 * Scar::run() — stays small; the unfilled slots model the padding a
 * real batching server would submit. Re-scheduling is thereby driven
 * purely by mix changes: the schedule cache re-runs the search only
 * when the dispatched (model, batch) signature is new.
 *
 * Preemption eligibility: a queued request whose slack
 * (deadline - now) has shrunk to the serving runtime's configured
 * threshold is "urgent" — it can no longer afford to wait out the
 * backlog or an in-flight replay. The urgent-dispatch path
 * (urgentQueued / peekUrgentMix / formUrgentDispatch) boards only the
 * models holding such a request, so the preemptive dispatch the fleet
 * squeezes in at a window boundary stays as short as possible; the
 * non-urgent queues keep aging toward their normal forced-dispatch
 * timer. All urgency comparisons use the expression
 * `nowSec >= deadlineSec - slackSec` so the fleet's urgency timer and
 * the eligibility test agree bit-for-bit at the crossing instant
 * (the same FP-symmetry rule ready() and nextForcedDispatchSec()
 * follow).
 */

#ifndef SCAR_RUNTIME_ADMISSION_H
#define SCAR_RUNTIME_ADMISSION_H

#include <cstdint>
#include <deque>
#include <vector>

#include "runtime/request.h"
#include "workload/scenario.h"

namespace scar
{
namespace runtime
{

/**
 * Which queued requests ride when a dispatch cannot take everyone.
 */
enum class QueueOrder
{
    /** Oldest arrivals first (the PR 1 behavior). */
    FifoArrival,
    /**
     * Earliest SLO deadline first (EDF). Under overload — more
     * queued requests than the batch cap — the deadline-critical
     * requests board the next dispatch instead of waiting out the
     * backlog, which lowers the tail violation rate whenever request
     * deadlines are heterogeneous (e.g. interactive vs background
     * traffic against the same model).
     */
    EarliestDeadline,
};

/**
 * How autoregressive decode rounds batch requests (only meaningful
 * for catalog entries with LlmProfile::autoregressive set).
 */
enum class LlmBatchingMode
{
    /**
     * Batch-and-replay baseline: the requests boarding a decode round
     * are locked into one batch that decodes in lockstep until every
     * member reaches its output length; finished members ride along
     * as padding and retire with the batch, and later arrivals wait
     * for the next batch.
     */
    Static,
    /**
     * Continuous batching: waiting requests join the in-flight decode
     * stream at the next step-aligned window boundary (the fleet cuts
     * the replay with ReplayExecutor::suspend) and finished sequences
     * retire at their own final step, shrinking the dispatched mix.
     */
    Continuous,
};

/** Batching knobs. */
struct AdmissionOptions
{
    /**
     * Oldest-request age that forces a partial-batch dispatch, in
     * seconds. Smaller values favor latency, larger values favor
     * full batches (throughput).
     */
    double maxQueueDelaySec = 0.05;
    /** Round partial batches up to powers of two (signature hygiene). */
    bool quantizeBatches = true;
    /** Boarding order when a queue exceeds the batch cap. */
    QueueOrder order = QueueOrder::FifoArrival;
    /** Decode-round batching policy for autoregressive models. */
    LlmBatchingMode llmBatching = LlmBatchingMode::Continuous;
    /**
     * Dispatch a partial batch as soon as a shard would otherwise sit
     * idle, instead of waiting out maxQueueDelaySec for the batch to
     * fill. Raises occupancy under bursty load (and decode-batch
     * occupancy under continuous batching) at the cost of smaller
     * batches. Off by default: the timer-paced behavior is the
     * baseline the goldens pin.
     */
    bool speculativePartialDispatch = false;
};

/** One model's share of a dispatch. */
struct BatchGroup
{
    int catalogIdx = -1;
    /** Dispatched batch size (>= requests.size() when padded). */
    int batch = 0;
    /** Requests riding in this batch, oldest first. */
    std::vector<Request> requests;
};

/** A co-scheduled batch of requests: the unit the executor replays. */
struct Dispatch
{
    Scenario mix;                 ///< scenario handed to the scheduler
    std::vector<int> catalogIdx;  ///< mix.models[i] -> catalog index
    std::vector<BatchGroup> groups; ///< aligned with mix.models
    /**
     * Decode steps this dispatch advances each rider by (0 = not a
     * decode round). A decode round replays the one-step schedule
     * this many times (schedule_cache.h repeatSchedule), so the
     * schedule-cache key — the one-step mix signature — is shared by
     * every round of the same (context bucket, batch).
     */
    int llmDecodeSteps = 0;
};

/** Per-model queues plus the dispatch-forming policy. */
class AdmissionController
{
  public:
    AdmissionController(const std::vector<ServedModel>& catalog,
                        AdmissionOptions options = AdmissionOptions{});

    /** Admits an arrived request into its model queue. */
    void enqueue(const Request& request);

    /** Total queued requests across models. */
    int queuedCount() const;

    /** Queued requests of one catalog model (observability sampling). */
    int queuedCount(int model) const;

    /**
     * True when some model has a ready batch at the given time: a
     * full batch queued, or an oldest request older than
     * maxQueueDelaySec.
     */
    bool ready(double nowSec) const;

    /**
     * Forms a dispatch at nowSec, consuming the queued requests. All
     * models with pending work join the mix (partial batches
     * included) so the package is shared the way the offline
     * scheduler optimizes for. Requires ready(nowSec).
     */
    Dispatch formDispatch(double nowSec);

    /**
     * The mix formDispatch would build right now, without consuming
     * any queue. The serving loop uses this to begin a speculative
     * background schedule solve while every shard is still busy; the
     * actual dispatch later re-checks the (possibly grown) mix.
     */
    Scenario peekMix() const;

    /**
     * Earliest future instant at which a queued request's age crosses
     * maxQueueDelaySec (infinity when no requests are queued). Used
     * by the event loop to schedule its batching timer.
     */
    double nextForcedDispatchSec() const;

    /**
     * Earliest SLO deadline among all queued requests (infinity when
     * none are queued). `earliestDeadlineSec() - slackSec` is the
     * instant the next request turns urgent — the fleet's preemption
     * timer.
     */
    double earliestDeadlineSec() const;

    /**
     * Preemption-eligibility test: true when some queued request's
     * slack at nowSec is at or below slackSec (evaluated as
     * `nowSec >= deadlineSec - slackSec`; a negative slack — an
     * already-blown deadline — still counts, minimizing lateness).
     */
    bool urgentQueued(double nowSec, double slackSec) const;

    /**
     * The mix formUrgentDispatch would build right now: only the
     * models holding an urgent request, at their dispatched batch
     * sizes. Requires urgentQueued(nowSec, slackSec).
     */
    Scenario peekUrgentMix(double nowSec, double slackSec) const;

    /**
     * Forms a dispatch draining only the urgent models' queues
     * (boarding order as in formDispatch); the other models' requests
     * stay queued and keep aging toward their forced-dispatch timer.
     * Requires urgentQueued(nowSec, slackSec).
     */
    Dispatch formUrgentDispatch(double nowSec, double slackSec);

    // ---- autoregressive decode queue -----------------------------
    // Requests whose prefill has completed but whose output length is
    // not reached wait here between decode rounds. Decode rounds are
    // single-model dispatches formed by the fleet whenever a shard is
    // free (no batching timer: generation throughput dominates).

    /** Queues a prefill-completed request for its next decode round. */
    void enqueueDecode(const Request& request);

    /** Total decode-waiting requests across models. */
    int decodeQueuedCount() const;

    /** Decode-waiting requests of one catalog model. */
    int decodeQueuedCount(int model) const;

    /**
     * The single-model mix formDecodeDispatch would build for this
     * model right now: the one-step decode variant at the boarders'
     * context bucket and quantized batch. Requires waiters.
     */
    Scenario peekDecodeMix(int model) const;

    /**
     * Forms a decode round for one model, consuming the boarding
     * requests. Boarding follows options().llmBatching: Continuous
     * boards the FIFO prefix up to the batch cap; Static boards the
     * oldest locked batch if one is waiting, else locks a fresh one.
     * Each boarded request is stamped with ridingDecodeSteps = the
     * round's step count (0 for finished lockstep padding); the
     * dispatch carries llmDecodeSteps > 0.
     */
    Dispatch formDecodeDispatch(int model);

    const std::vector<ServedModel>& catalog() const { return catalog_; }

    const AdmissionOptions& options() const { return options_; }

  private:
    int dispatchBatch(std::size_t model) const;
    /** Queue positions boarding the next decode round of `model`. */
    std::vector<std::size_t> decodeBoarders(std::size_t model) const;
    /**
     * The scheduled model for queue `m`: the catalog model, or for
     * autoregressive entries the prefill variant at the queue's max
     * prompt bucket (identical in peek and form, so the mix-signature
     * handshake with the fleet holds).
     */
    Model scheduledModel(std::size_t model) const;
    /** True when queue `model` holds a request urgent at nowSec. */
    bool modelUrgent(std::size_t model, double nowSec,
                     double slackSec) const;
    /** The shared mix-building path of peekMix / peekUrgentMix. */
    Scenario peekFrom(const std::vector<bool>& take) const;
    /** The shared queue-draining path of formDispatch /
     *  formUrgentDispatch. */
    Dispatch formFrom(double nowSec, const std::vector<bool>& take);

    std::vector<ServedModel> catalog_;
    AdmissionOptions options_;
    std::vector<std::deque<Request>> queues_; ///< per model, FIFO
    /** Per-model decode-round waiting rooms (LLM entries only). */
    std::vector<std::deque<Request>> decodeQueues_;
    /** Next Static-mode locked-batch id (monotone, deterministic). */
    std::int64_t nextLlmBatchId_ = 0;
};

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_ADMISSION_H
