#include "runtime/admission.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace scar
{
namespace runtime
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Smallest power of two >= n. */
int
nextPow2(int n)
{
    int p = 1;
    while (p < n)
        p *= 2;
    return p;
}

} // namespace

AdmissionController::AdmissionController(
    const std::vector<ServedModel>& catalog, AdmissionOptions options)
    : catalog_(catalog), options_(options), queues_(catalog.size())
{
    SCAR_REQUIRE(!catalog_.empty(), "admission: empty catalog");
    for (const ServedModel& sm : catalog_)
        SCAR_REQUIRE(sm.model.batch >= 1, "admission: model ",
                     sm.model.name, " has batch ", sm.model.batch);
    SCAR_REQUIRE(options_.maxQueueDelaySec >= 0.0,
                 "admission: negative maxQueueDelaySec");
}

void
AdmissionController::enqueue(const Request& request)
{
    SCAR_REQUIRE(request.modelIdx >= 0 &&
                     request.modelIdx <
                         static_cast<int>(catalog_.size()),
                 "admission: request model ", request.modelIdx,
                 " outside catalog");
    queues_[request.modelIdx].push_back(request);
}

int
AdmissionController::queuedCount() const
{
    int total = 0;
    for (const auto& q : queues_)
        total += static_cast<int>(q.size());
    return total;
}

int
AdmissionController::queuedCount(int model) const
{
    SCAR_REQUIRE(model >= 0 &&
                     model < static_cast<int>(queues_.size()),
                 "admission: queue index ", model, " outside catalog");
    return static_cast<int>(queues_[model].size());
}

bool
AdmissionController::ready(double nowSec) const
{
    for (std::size_t m = 0; m < queues_.size(); ++m) {
        const auto& q = queues_[m];
        if (q.empty())
            continue;
        if (static_cast<int>(q.size()) >= catalog_[m].model.batch)
            return true;
        // Same expression as nextForcedDispatchSec so the two agree
        // bit-for-bit at the timer instant (a - b >= d can round the
        // other way and livelock the event loop).
        if (nowSec >= q.front().arrivalSec + options_.maxQueueDelaySec)
            return true;
    }
    return false;
}

int
AdmissionController::dispatchBatch(std::size_t model) const
{
    const int queued = static_cast<int>(queues_[model].size());
    const int cap = catalog_[model].model.batch;
    if (queued >= cap)
        return cap;
    return options_.quantizeBatches
               ? std::min(nextPow2(queued), cap)
               : queued;
}

Dispatch
AdmissionController::formDispatch(double nowSec)
{
    SCAR_REQUIRE(ready(nowSec), "admission: formDispatch while idle");
    return formFrom(nowSec,
                    std::vector<bool>(queues_.size(), true));
}

Dispatch
AdmissionController::formFrom(double nowSec,
                              const std::vector<bool>& take)
{
    Dispatch dispatch;
    dispatch.mix.name = "mix";
    for (std::size_t m = 0; m < queues_.size(); ++m) {
        auto& q = queues_[m];
        if (q.empty() || !take[m])
            continue;
        BatchGroup group;
        group.catalogIdx = static_cast<int>(m);
        group.batch = dispatchBatch(m);
        const int boardCount =
            std::min(static_cast<int>(q.size()), group.batch);
        if (options_.order == QueueOrder::EarliestDeadline &&
            boardCount < static_cast<int>(q.size())) {
            // Overload boarding. Starvation bound: the queue front —
            // the oldest request, the one driving the forced-dispatch
            // timer — always boards, so every dispatch makes
            // head-of-line progress and a request admitted behind k
            // others boards within k dispatches, whatever its
            // deadline. The remaining slots go to requests that have
            // waited past maxQueueDelaySec first (older traffic
            // outranks fresh tight-deadline arrivals), then earliest
            // deadline, with the queue-position tie-break making the
            // order total and deterministic.
            auto agedOut = [&](const Request& req) {
                return nowSec >=
                       req.arrivalSec + options_.maxQueueDelaySec;
            };
            // Only the `boardCount` best boarders are needed, so a
            // partial sort over indices suffices.
            std::vector<std::size_t> byDeadline(q.size());
            for (std::size_t i = 0; i < q.size(); ++i)
                byDeadline[i] = i;
            std::partial_sort(
                byDeadline.begin(), byDeadline.begin() + boardCount,
                byDeadline.end(),
                [&](std::size_t a, std::size_t b) {
                    if (a == 0 || b == 0)
                        return a == 0; // oldest always boards
                    const bool agedA = agedOut(q[a]);
                    const bool agedB = agedOut(q[b]);
                    if (agedA != agedB)
                        return agedA;
                    if (q[a].deadlineSec != q[b].deadlineSec)
                        return q[a].deadlineSec < q[b].deadlineSec;
                    return a < b;
                });
            std::vector<bool> boarded(q.size(), false);
            for (int i = 0; i < boardCount; ++i) {
                boarded[byDeadline[i]] = true;
                group.requests.push_back(q[byDeadline[i]]);
            }
            std::deque<Request> remaining;
            for (std::size_t i = 0; i < q.size(); ++i) {
                if (!boarded[i])
                    remaining.push_back(q[i]);
            }
            q = std::move(remaining);
        } else {
            for (int i = 0; i < boardCount; ++i) {
                group.requests.push_back(q.front());
                q.pop_front();
            }
        }
        // The scheduled model carries the dispatched batch size: the
        // mix signature (and so the schedule-cache key) reflects the
        // padded batch, not the raw queue depth.
        Model scheduled = catalog_[m].model;
        scheduled.batch = group.batch;
        dispatch.mix.models.push_back(std::move(scheduled));
        dispatch.catalogIdx.push_back(static_cast<int>(m));
        dispatch.groups.push_back(std::move(group));
    }
    return dispatch;
}

Scenario
AdmissionController::peekMix() const
{
    return peekFrom(std::vector<bool>(queues_.size(), true));
}

Scenario
AdmissionController::peekFrom(const std::vector<bool>& take) const
{
    Scenario mix;
    mix.name = "mix";
    for (std::size_t m = 0; m < queues_.size(); ++m) {
        if (queues_[m].empty() || !take[m])
            continue;
        Model scheduled = catalog_[m].model;
        scheduled.batch = dispatchBatch(m);
        mix.models.push_back(std::move(scheduled));
    }
    return mix;
}

bool
AdmissionController::modelUrgent(std::size_t model, double nowSec,
                                 double slackSec) const
{
    for (const Request& req : queues_[model]) {
        // Same expression as the fleet's urgency timer
        // (earliestDeadlineSec() - slackSec) so the two agree
        // bit-for-bit at the crossing instant.
        if (nowSec >= req.deadlineSec - slackSec)
            return true;
    }
    return false;
}

double
AdmissionController::earliestDeadlineSec() const
{
    double earliest = kInf;
    for (const auto& q : queues_) {
        for (const Request& req : q)
            earliest = std::min(earliest, req.deadlineSec);
    }
    return earliest;
}

bool
AdmissionController::urgentQueued(double nowSec, double slackSec) const
{
    for (std::size_t m = 0; m < queues_.size(); ++m) {
        if (modelUrgent(m, nowSec, slackSec))
            return true;
    }
    return false;
}

Scenario
AdmissionController::peekUrgentMix(double nowSec,
                                   double slackSec) const
{
    std::vector<bool> take(queues_.size());
    for (std::size_t m = 0; m < queues_.size(); ++m)
        take[m] = modelUrgent(m, nowSec, slackSec);
    return peekFrom(take);
}

Dispatch
AdmissionController::formUrgentDispatch(double nowSec, double slackSec)
{
    SCAR_REQUIRE(urgentQueued(nowSec, slackSec),
                 "admission: formUrgentDispatch without an urgent "
                 "request queued");
    std::vector<bool> take(queues_.size());
    for (std::size_t m = 0; m < queues_.size(); ++m)
        take[m] = modelUrgent(m, nowSec, slackSec);
    return formFrom(nowSec, take);
}

double
AdmissionController::nextForcedDispatchSec() const
{
    double earliest = kInf;
    for (const auto& q : queues_) {
        if (q.empty())
            continue;
        earliest = std::min(earliest, q.front().arrivalSec +
                                          options_.maxQueueDelaySec);
    }
    return earliest;
}

} // namespace runtime
} // namespace scar
