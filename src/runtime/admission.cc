#include "runtime/admission.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace scar
{
namespace runtime
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Smallest power of two >= n. */
int
nextPow2(int n)
{
    int p = 1;
    while (p < n)
        p *= 2;
    return p;
}

/** Quantized decode-round batch for `boarded` riders. */
int
decodeRoundBatch(int boarded, int cap, bool quantize)
{
    if (boarded >= cap)
        return cap;
    return quantize ? std::min(nextPow2(boarded), cap) : boarded;
}

/** Context bucket and step count one decode round covers. */
struct DecodeRound
{
    std::int64_t ctxBucket = 0;
    int steps = 1;
};

/**
 * Plans the round for the given boarders: price the KV footprint at
 * the max rider context rounded up to the bucket, and advance by the
 * largest step count that (a) no unfinished rider overshoots its
 * output length, (b) no rider's context outgrows the priced bucket,
 * (c) stays within the profile's per-round cap.
 */
DecodeRound
planDecodeRound(const ServedModel& sm, const std::deque<Request>& q,
                const std::vector<std::size_t>& boarders)
{
    std::int64_t maxCtx = 1;
    int minRemaining = sm.llm.maxDecodeSteps;
    for (const std::size_t i : boarders) {
        const Request& req = q[i];
        maxCtx = std::max(maxCtx, req.contextTokens());
        const int remaining = req.outputTokens - req.generatedTokens;
        if (remaining > 0)
            minRemaining = std::min(minRemaining, remaining);
    }
    DecodeRound round;
    round.ctxBucket = llmLengthBucket(maxCtx, sm.llm.contextBucket);
    const std::int64_t toBucketEdge = round.ctxBucket - maxCtx + 1;
    round.steps = static_cast<int>(std::min<std::int64_t>(
        std::min(minRemaining, sm.llm.maxDecodeSteps), toBucketEdge));
    round.steps = std::max(round.steps, 1);
    return round;
}

} // namespace

AdmissionController::AdmissionController(
    const std::vector<ServedModel>& catalog, AdmissionOptions options)
    : catalog_(catalog), options_(options), queues_(catalog.size()),
      decodeQueues_(catalog.size())
{
    SCAR_REQUIRE(!catalog_.empty(), "admission: empty catalog");
    for (const ServedModel& sm : catalog_) {
        SCAR_REQUIRE(sm.model.batch >= 1, "admission: model ",
                     sm.model.name, " has batch ", sm.model.batch);
        if (sm.llm.autoregressive) {
            SCAR_REQUIRE(sm.llm.decoder.dModel >= 1 &&
                             sm.llm.decoder.dFf >= 1 &&
                             sm.llm.decoder.numBlocks >= 1,
                         "admission: model ", sm.model.name,
                         " has an invalid decoder config");
            SCAR_REQUIRE(sm.llm.promptBucket >= 1 &&
                             sm.llm.contextBucket >= 1 &&
                             sm.llm.maxDecodeSteps >= 1,
                         "admission: model ", sm.model.name,
                         " has invalid LLM buckets");
        }
    }
    SCAR_REQUIRE(options_.maxQueueDelaySec >= 0.0,
                 "admission: negative maxQueueDelaySec");
}

void
AdmissionController::enqueue(const Request& request)
{
    SCAR_REQUIRE(request.modelIdx >= 0 &&
                     request.modelIdx <
                         static_cast<int>(catalog_.size()),
                 "admission: request model ", request.modelIdx,
                 " outside catalog");
    queues_[request.modelIdx].push_back(request);
}

int
AdmissionController::queuedCount() const
{
    int total = 0;
    for (const auto& q : queues_)
        total += static_cast<int>(q.size());
    return total;
}

int
AdmissionController::queuedCount(int model) const
{
    SCAR_REQUIRE(model >= 0 &&
                     model < static_cast<int>(queues_.size()),
                 "admission: queue index ", model, " outside catalog");
    return static_cast<int>(queues_[model].size());
}

bool
AdmissionController::ready(double nowSec) const
{
    for (std::size_t m = 0; m < queues_.size(); ++m) {
        const auto& q = queues_[m];
        if (q.empty())
            continue;
        if (static_cast<int>(q.size()) >= catalog_[m].model.batch)
            return true;
        // Same expression as nextForcedDispatchSec so the two agree
        // bit-for-bit at the timer instant (a - b >= d can round the
        // other way and livelock the event loop).
        if (nowSec >= q.front().arrivalSec + options_.maxQueueDelaySec)
            return true;
    }
    return false;
}

int
AdmissionController::dispatchBatch(std::size_t model) const
{
    const int queued = static_cast<int>(queues_[model].size());
    const int cap = catalog_[model].model.batch;
    if (queued >= cap)
        return cap;
    return options_.quantizeBatches
               ? std::min(nextPow2(queued), cap)
               : queued;
}

Dispatch
AdmissionController::formDispatch(double nowSec)
{
    // The speculative path dispatches partial batches before the
    // batching timer: any queued work suffices.
    SCAR_REQUIRE(ready(nowSec) || (options_.speculativePartialDispatch &&
                                   queuedCount() > 0),
                 "admission: formDispatch while idle");
    return formFrom(nowSec,
                    std::vector<bool>(queues_.size(), true));
}

Dispatch
AdmissionController::formFrom(double nowSec,
                              const std::vector<bool>& take)
{
    Dispatch dispatch;
    dispatch.mix.name = "mix";
    for (std::size_t m = 0; m < queues_.size(); ++m) {
        auto& q = queues_[m];
        if (q.empty() || !take[m])
            continue;
        BatchGroup group;
        group.catalogIdx = static_cast<int>(m);
        group.batch = dispatchBatch(m);
        // Derive the scheduled model before draining the queue: the
        // prefill variant's bucket scans the queued prompts, and the
        // peeked signature the fleet routed on saw the full queue.
        Model scheduled = scheduledModel(m);
        const int boardCount =
            std::min(static_cast<int>(q.size()), group.batch);
        if (options_.order == QueueOrder::EarliestDeadline &&
            boardCount < static_cast<int>(q.size())) {
            // Overload boarding. Starvation bound: the queue front —
            // the oldest request, the one driving the forced-dispatch
            // timer — always boards, so every dispatch makes
            // head-of-line progress and a request admitted behind k
            // others boards within k dispatches, whatever its
            // deadline. The remaining slots go to requests that have
            // waited past maxQueueDelaySec first (older traffic
            // outranks fresh tight-deadline arrivals), then earliest
            // deadline, with the queue-position tie-break making the
            // order total and deterministic.
            auto agedOut = [&](const Request& req) {
                return nowSec >=
                       req.arrivalSec + options_.maxQueueDelaySec;
            };
            // Only the `boardCount` best boarders are needed, so a
            // partial sort over indices suffices.
            std::vector<std::size_t> byDeadline(q.size());
            for (std::size_t i = 0; i < q.size(); ++i)
                byDeadline[i] = i;
            std::partial_sort(
                byDeadline.begin(), byDeadline.begin() + boardCount,
                byDeadline.end(),
                [&](std::size_t a, std::size_t b) {
                    if (a == 0 || b == 0)
                        return a == 0; // oldest always boards
                    const bool agedA = agedOut(q[a]);
                    const bool agedB = agedOut(q[b]);
                    if (agedA != agedB)
                        return agedA;
                    if (q[a].deadlineSec != q[b].deadlineSec)
                        return q[a].deadlineSec < q[b].deadlineSec;
                    return a < b;
                });
            std::vector<bool> boarded(q.size(), false);
            for (int i = 0; i < boardCount; ++i) {
                boarded[byDeadline[i]] = true;
                group.requests.push_back(q[byDeadline[i]]);
            }
            std::deque<Request> remaining;
            for (std::size_t i = 0; i < q.size(); ++i) {
                if (!boarded[i])
                    remaining.push_back(q[i]);
            }
            q = std::move(remaining);
        } else {
            for (int i = 0; i < boardCount; ++i) {
                group.requests.push_back(q.front());
                q.pop_front();
            }
        }
        // The scheduled model carries the dispatched batch size: the
        // mix signature (and so the schedule-cache key) reflects the
        // padded batch, not the raw queue depth.
        scheduled.batch = group.batch;
        dispatch.mix.models.push_back(std::move(scheduled));
        dispatch.catalogIdx.push_back(static_cast<int>(m));
        dispatch.groups.push_back(std::move(group));
    }
    return dispatch;
}

Scenario
AdmissionController::peekMix() const
{
    return peekFrom(std::vector<bool>(queues_.size(), true));
}

Scenario
AdmissionController::peekFrom(const std::vector<bool>& take) const
{
    Scenario mix;
    mix.name = "mix";
    for (std::size_t m = 0; m < queues_.size(); ++m) {
        if (queues_[m].empty() || !take[m])
            continue;
        Model scheduled = scheduledModel(m);
        scheduled.batch = dispatchBatch(m);
        mix.models.push_back(std::move(scheduled));
    }
    return mix;
}

Model
AdmissionController::scheduledModel(std::size_t model) const
{
    const ServedModel& sm = catalog_[model];
    if (!sm.llm.autoregressive)
        return sm.model;
    // Prefill variant at the queue's max prompt, bucket-rounded. The
    // max ranges over the whole queue — not just the boarders — so
    // peekMix and formDispatch trivially agree on the signature the
    // fleet's routing handshake asserts; the cost is mild over-padding
    // when a long-prompt request waits behind the batch cap.
    std::int64_t maxPrompt = 1;
    for (const Request& req : queues_[model])
        maxPrompt = std::max(
            maxPrompt, static_cast<std::int64_t>(req.promptTokens));
    TransformerConfig cfg = sm.llm.decoder;
    cfg.name = sm.model.name;
    return buildPrefillModel(
        cfg, llmLengthBucket(maxPrompt, sm.llm.promptBucket));
}

bool
AdmissionController::modelUrgent(std::size_t model, double nowSec,
                                 double slackSec) const
{
    for (const Request& req : queues_[model]) {
        // Same expression as the fleet's urgency timer
        // (earliestDeadlineSec() - slackSec) so the two agree
        // bit-for-bit at the crossing instant.
        if (nowSec >= req.deadlineSec - slackSec)
            return true;
    }
    return false;
}

double
AdmissionController::earliestDeadlineSec() const
{
    double earliest = kInf;
    for (const auto& q : queues_) {
        for (const Request& req : q)
            earliest = std::min(earliest, req.deadlineSec);
    }
    return earliest;
}

bool
AdmissionController::urgentQueued(double nowSec, double slackSec) const
{
    for (std::size_t m = 0; m < queues_.size(); ++m) {
        if (modelUrgent(m, nowSec, slackSec))
            return true;
    }
    return false;
}

Scenario
AdmissionController::peekUrgentMix(double nowSec,
                                   double slackSec) const
{
    std::vector<bool> take(queues_.size());
    for (std::size_t m = 0; m < queues_.size(); ++m)
        take[m] = modelUrgent(m, nowSec, slackSec);
    return peekFrom(take);
}

Dispatch
AdmissionController::formUrgentDispatch(double nowSec, double slackSec)
{
    SCAR_REQUIRE(urgentQueued(nowSec, slackSec),
                 "admission: formUrgentDispatch without an urgent "
                 "request queued");
    std::vector<bool> take(queues_.size());
    for (std::size_t m = 0; m < queues_.size(); ++m)
        take[m] = modelUrgent(m, nowSec, slackSec);
    return formFrom(nowSec, take);
}

void
AdmissionController::enqueueDecode(const Request& request)
{
    SCAR_REQUIRE(request.modelIdx >= 0 &&
                     request.modelIdx <
                         static_cast<int>(catalog_.size()),
                 "admission: decode request model ", request.modelIdx,
                 " outside catalog");
    SCAR_REQUIRE(catalog_[request.modelIdx].llm.autoregressive,
                 "admission: decode enqueue for non-LLM model ",
                 catalog_[request.modelIdx].model.name);
    SCAR_REQUIRE(request.prefillDone(),
                 "admission: decode enqueue before prefill");
    decodeQueues_[request.modelIdx].push_back(request);
}

int
AdmissionController::decodeQueuedCount() const
{
    int total = 0;
    for (const auto& q : decodeQueues_)
        total += static_cast<int>(q.size());
    return total;
}

int
AdmissionController::decodeQueuedCount(int model) const
{
    SCAR_REQUIRE(model >= 0 &&
                     model < static_cast<int>(decodeQueues_.size()),
                 "admission: decode queue index ", model,
                 " outside catalog");
    return static_cast<int>(decodeQueues_[model].size());
}

std::vector<std::size_t>
AdmissionController::decodeBoarders(std::size_t model) const
{
    const auto& q = decodeQueues_[model];
    const int cap = catalog_[model].model.batch;
    std::vector<std::size_t> boarders;
    if (options_.llmBatching == LlmBatchingMode::Static) {
        // A waiting locked batch outranks fresh arrivals and boards
        // whole (its members only ever enter and leave the queue
        // together, so every member is present).
        std::int64_t minId = -1;
        for (const Request& req : q) {
            if (req.llmBatchId >= 0 &&
                (minId < 0 || req.llmBatchId < minId))
                minId = req.llmBatchId;
        }
        if (minId >= 0) {
            for (std::size_t i = 0; i < q.size(); ++i) {
                if (q[i].llmBatchId == minId)
                    boarders.push_back(i);
            }
            return boarders;
        }
    }
    const std::size_t count =
        std::min(q.size(), static_cast<std::size_t>(cap));
    for (std::size_t i = 0; i < count; ++i)
        boarders.push_back(i);
    return boarders;
}

Scenario
AdmissionController::peekDecodeMix(int model) const
{
    SCAR_REQUIRE(decodeQueuedCount(model) > 0,
                 "admission: peekDecodeMix on empty decode queue");
    const std::size_t m = static_cast<std::size_t>(model);
    const ServedModel& sm = catalog_[m];
    const std::vector<std::size_t> boarders = decodeBoarders(m);
    const DecodeRound round =
        planDecodeRound(sm, decodeQueues_[m], boarders);
    TransformerConfig cfg = sm.llm.decoder;
    cfg.name = sm.model.name;
    Model scheduled = buildDecodeStepModel(cfg, round.ctxBucket);
    scheduled.batch =
        decodeRoundBatch(static_cast<int>(boarders.size()),
                         sm.model.batch, options_.quantizeBatches);
    Scenario mix;
    mix.name = "mix";
    mix.models.push_back(std::move(scheduled));
    return mix;
}

Dispatch
AdmissionController::formDecodeDispatch(int model)
{
    SCAR_REQUIRE(decodeQueuedCount(model) > 0,
                 "admission: formDecodeDispatch on empty decode "
                 "queue");
    const std::size_t m = static_cast<std::size_t>(model);
    const ServedModel& sm = catalog_[m];
    auto& q = decodeQueues_[m];
    const std::vector<std::size_t> boarders = decodeBoarders(m);
    const DecodeRound round = planDecodeRound(sm, q, boarders);

    BatchGroup group;
    group.catalogIdx = model;
    group.batch =
        decodeRoundBatch(static_cast<int>(boarders.size()),
                         sm.model.batch, options_.quantizeBatches);
    std::vector<bool> boarded(q.size(), false);
    for (const std::size_t i : boarders) {
        boarded[i] = true;
        Request req = q[i];
        if (options_.llmBatching == LlmBatchingMode::Static &&
            req.llmBatchId < 0)
            req.llmBatchId = nextLlmBatchId_;
        // Finished lockstep padding rides without advancing.
        req.ridingDecodeSteps =
            req.generatedTokens >= req.outputTokens ? 0 : round.steps;
        group.requests.push_back(std::move(req));
    }
    if (options_.llmBatching == LlmBatchingMode::Static)
        ++nextLlmBatchId_;
    std::deque<Request> remaining;
    for (std::size_t i = 0; i < q.size(); ++i) {
        if (!boarded[i])
            remaining.push_back(q[i]);
    }
    q = std::move(remaining);

    TransformerConfig cfg = sm.llm.decoder;
    cfg.name = sm.model.name;
    Model scheduled = buildDecodeStepModel(cfg, round.ctxBucket);
    scheduled.batch = group.batch;

    Dispatch dispatch;
    dispatch.mix.name = "mix";
    dispatch.mix.models.push_back(std::move(scheduled));
    dispatch.catalogIdx.push_back(model);
    dispatch.groups.push_back(std::move(group));
    dispatch.llmDecodeSteps = round.steps;
    return dispatch;
}

double
AdmissionController::nextForcedDispatchSec() const
{
    double earliest = kInf;
    for (const auto& q : queues_) {
        if (q.empty())
            continue;
        earliest = std::min(earliest, q.front().arrivalSec +
                                          options_.maxQueueDelaySec);
    }
    return earliest;
}

} // namespace runtime
} // namespace scar
