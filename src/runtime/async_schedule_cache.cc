#include "runtime/async_schedule_cache.h"

#include <utility>
#include <vector>

#include "common/error.h"
#include "common/logging.h"

namespace scar
{
namespace runtime
{

AsyncScheduleCache::AsyncScheduleCache(ThreadPool& pool,
                                       ScheduleCacheOptions options)
    : pool_(pool), store_(options)
{
}

AsyncScheduleCache::~AsyncScheduleCache()
{
    // wait() (unlike get()) does not rethrow a failed solve, so this
    // drain is exception-free; abandoned results are simply dropped.
    for (;;) {
        Future pending;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (inflight_.empty())
                return;
            pending = inflight_.begin()->second.future;
            inflight_.erase(inflight_.begin());
        }
        pending.wait();
    }
}

std::function<void()>
AsyncScheduleCache::launchLocked(const std::string& signature,
                                 const Scenario& mix,
                                 const ComputeFn& compute,
                                 double readySec)
{
    ++stats_.misses;
    debug("async schedule cache: solve #", stats_.misses, " for mix ",
          signature);
    auto promise = std::make_shared<
        std::promise<std::shared_ptr<const CachedSchedule>>>();
    inflight_.emplace(signature,
                      Inflight{promise->get_future().share(),
                               readySec});
    // The worker only fulfills the promise; promotion into the LRU
    // store happens at join() on the (virtual-time) event loop, so
    // store contents never depend on wall-clock solve speed. Copy mix
    // and compute: the caller's references may die before the worker
    // runs. The task is returned rather than submitted here because
    // a zero-worker pool runs submissions inline — the solve must
    // not execute under mu_.
    return [promise, mix, compute] {
        try {
            promise->set_value(makeCachedSchedule(mix, compute));
        } catch (...) {
            promise->set_exception(std::current_exception());
        }
    };
}

std::shared_ptr<const CachedSchedule>
AsyncScheduleCache::getOrCompute(const Scenario& mix,
                                 const ComputeFn& compute)
{
    return getOrCompute(mix.signature(), mix, compute);
}

std::shared_ptr<const CachedSchedule>
AsyncScheduleCache::getOrCompute(const std::string& key,
                                 const Scenario& mix,
                                 const ComputeFn& compute)
{
    Future pending;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (auto hit = store_.find(key)) {
            ++stats_.hits;
            return hit;
        }
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            ++stats_.hits;
            pending = it->second.future;
        }
    }
    if (pending.valid())
        return pending.get();

    // First caller for this signature: register the in-flight entry,
    // then compute on this thread (the caller would block anyway, and
    // computing here cannot starve the pool of workers).
    auto promise = std::make_shared<
        std::promise<std::shared_ptr<const CachedSchedule>>>();
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Double-check: another thread may have won the race between
        // the two critical sections.
        if (auto hit = store_.find(key)) {
            ++stats_.hits;
            return hit;
        }
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            ++stats_.hits;
            pending = it->second.future;
        } else {
            ++stats_.misses;
            inflight_.emplace(
                key, Inflight{promise->get_future().share(), 0.0});
        }
    }
    if (pending.valid())
        return pending.get();

    std::shared_ptr<const CachedSchedule> entry;
    try {
        entry = makeCachedSchedule(mix, compute);
    } catch (...) {
        promise->set_exception(std::current_exception());
        {
            // Drop the poisoned in-flight entry so a later caller can
            // retry the solve instead of rejoining the dead future.
            std::lock_guard<std::mutex> lock(mu_);
            inflight_.erase(key);
        }
        throw;
    }
    promise->set_value(entry);
    {
        std::lock_guard<std::mutex> lock(mu_);
        store_.insert(key, entry);
        inflight_.erase(key);
    }
    return entry;
}

void
AsyncScheduleCache::prefetch(const Scenario& mix,
                             const ComputeFn& compute, double readySec)
{
    prefetch(mix.signature(), mix, compute, readySec);
}

void
AsyncScheduleCache::prefetch(const std::string& key,
                             const Scenario& mix,
                             const ComputeFn& compute, double readySec)
{
    std::function<void()> solve;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (store_.find(key) != nullptr || inflight_.count(key) > 0)
            return;
        solve = launchLocked(key, mix, compute, readySec);
    }
    pool_.submit(std::move(solve));
}

AsyncLookup
AsyncScheduleCache::lookup(const Scenario& mix,
                           const ComputeFn& compute, double nowSec,
                           double modeledSolveSec)
{
    return lookup(mix.signature(), mix, compute, nowSec,
                  modeledSolveSec);
}

AsyncLookup
AsyncScheduleCache::lookup(const std::string& key, const Scenario& mix,
                           const ComputeFn& compute, double nowSec,
                           double modeledSolveSec)
{
    AsyncLookup result;
    std::function<void()> solve;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (auto hit = store_.find(key)) {
            ++stats_.hits;
            result.schedule = std::move(hit);
            result.readySec = nowSec;
            return result;
        }
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            ++stats_.hits; // the running solve is reused, not restarted
            result.readySec = std::max(nowSec, it->second.readySec);
            return result;
        }
        solve = launchLocked(key, mix, compute,
                             nowSec + modeledSolveSec);
    }
    pool_.submit(std::move(solve));
    result.readySec = nowSec + modeledSolveSec;
    result.startedSolve = true;
    return result;
}

CachePeek
AsyncScheduleCache::peek(const std::string& key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    CachePeek result;
    result.schedule = store_.peek(key);
    if (result.schedule != nullptr)
        return result;
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
        result.inFlight = true;
        result.readySec = it->second.readySec;
    }
    return result;
}

std::shared_ptr<const CachedSchedule>
AsyncScheduleCache::join(const std::string& signature)
{
    Future pending;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (auto hit = store_.find(signature))
            return hit;
        auto it = inflight_.find(signature);
        SCAR_REQUIRE(it != inflight_.end(),
                     "async schedule cache: join of unknown mix ",
                     signature);
        pending = it->second.future;
    }
    // Wall-clock wait outside the lock. A failed solve is erased
    // before rethrowing so the signature can be retried rather than
    // pinning a dead future in the in-flight map forever.
    std::shared_ptr<const CachedSchedule> entry;
    try {
        entry = pending.get();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        inflight_.erase(signature);
        throw;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (inflight_.erase(signature) > 0)
            store_.insert(signature, entry);
    }
    return entry;
}

void
AsyncScheduleCache::drainInFlight()
{
    for (;;) {
        std::string next;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (inflight_.empty())
                return;
            next = inflight_.begin()->first;
        }
        join(next);
    }
}

ScheduleCacheStats
AsyncScheduleCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    ScheduleCacheStats stats = stats_;
    stats.evictions = store_.stats().evictions;
    return stats;
}

std::size_t
AsyncScheduleCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return store_.size();
}

} // namespace runtime
} // namespace scar
