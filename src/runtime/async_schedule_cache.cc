#include "runtime/async_schedule_cache.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/logging.h"

namespace scar
{
namespace runtime
{

namespace
{

/** Default stripe count for an unbounded (capacity 0) cache. */
constexpr int kDefaultStripes = 16;

/** FNV-1a over the signature: stable across platforms, unlike
 *  std::hash, so stripe placement (and thus per-stripe stats) is
 *  reproducible everywhere. */
std::size_t
stripeHash(const std::string& s)
{
    std::uint64_t h = 1469598103934665603uLL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211uLL;
    }
    return static_cast<std::size_t>(h);
}

} // namespace

AsyncScheduleCache::AsyncScheduleCache(ThreadPool& pool,
                                       ScheduleCacheOptions options,
                                       int stripes)
    : pool_(pool)
{
    if (stripes == 0)
        stripes = options.capacity > 0 ? 1 : kDefaultStripes;
    SCAR_REQUIRE(stripes >= 1, "async schedule cache: stripes = ",
                 stripes);
    SCAR_REQUIRE(options.capacity == 0 || stripes == 1,
                 "async schedule cache: a bounded store needs a "
                 "single stripe (global LRU order), got ", stripes);
    stripes_.reserve(static_cast<std::size_t>(stripes));
    for (int i = 0; i < stripes; ++i)
        stripes_.push_back(std::make_unique<Stripe>(options));
}

AsyncScheduleCache::~AsyncScheduleCache()
{
    // wait() (unlike get()) does not rethrow a failed solve, so this
    // drain is exception-free; abandoned results are simply dropped.
    for (const auto& stripe : stripes_) {
        for (;;) {
            Future pending;
            {
                std::lock_guard<std::mutex> lock(stripe->mu);
                if (stripe->inflight.empty())
                    break;
                pending = stripe->inflight.begin()->second.future;
                stripe->inflight.erase(stripe->inflight.begin());
            }
            pending.wait();
        }
    }
}

AsyncScheduleCache::Stripe&
AsyncScheduleCache::stripeFor(const std::string& signature)
{
    return *stripes_[stripeHash(signature) % stripes_.size()];
}

const AsyncScheduleCache::Stripe&
AsyncScheduleCache::stripeFor(const std::string& signature) const
{
    return *stripes_[stripeHash(signature) % stripes_.size()];
}

std::function<void()>
AsyncScheduleCache::launchLocked(Stripe& stripe,
                                 const std::string& signature,
                                 const Scenario& mix,
                                 const ComputeFn& compute,
                                 double readySec)
{
    ++stripe.stats.misses;
    debug("async schedule cache: solve for mix ", signature);
    auto promise = std::make_shared<
        std::promise<std::shared_ptr<const CachedSchedule>>>();
    stripe.inflight.emplace(signature,
                            Inflight{promise->get_future().share(),
                                     readySec});
    // The worker only fulfills the promise; promotion into the LRU
    // store happens at join() on the (virtual-time) event loop, so
    // store contents never depend on wall-clock solve speed. Copy mix
    // and compute: the caller's references may die before the worker
    // runs. The task is returned rather than submitted here because
    // a zero-worker pool runs submissions inline — the solve must
    // not execute under the stripe lock.
    return [promise, mix, compute] {
        try {
            promise->set_value(makeCachedSchedule(mix, compute));
        } catch (...) {
            promise->set_exception(std::current_exception());
        }
    };
}

std::shared_ptr<const CachedSchedule>
AsyncScheduleCache::getOrCompute(const Scenario& mix,
                                 const ComputeFn& compute)
{
    return getOrCompute(mix.signature(), mix, compute);
}

std::shared_ptr<const CachedSchedule>
AsyncScheduleCache::getOrCompute(const std::string& key,
                                 const Scenario& mix,
                                 const ComputeFn& compute)
{
    Stripe& stripe = stripeFor(key);
    Future pending;
    {
        std::lock_guard<std::mutex> lock(stripe.mu);
        if (auto hit = stripe.store.find(key)) {
            ++stripe.stats.hits;
            return hit;
        }
        auto it = stripe.inflight.find(key);
        if (it != stripe.inflight.end()) {
            ++stripe.stats.hits;
            pending = it->second.future;
        }
    }
    if (pending.valid())
        return pending.get();

    // First caller for this signature: register the in-flight entry,
    // then compute on this thread (the caller would block anyway, and
    // computing here cannot starve the pool of workers).
    auto promise = std::make_shared<
        std::promise<std::shared_ptr<const CachedSchedule>>>();
    {
        std::lock_guard<std::mutex> lock(stripe.mu);
        // Double-check: another thread may have won the race between
        // the two critical sections.
        if (auto hit = stripe.store.find(key)) {
            ++stripe.stats.hits;
            return hit;
        }
        auto it = stripe.inflight.find(key);
        if (it != stripe.inflight.end()) {
            ++stripe.stats.hits;
            pending = it->second.future;
        } else {
            ++stripe.stats.misses;
            stripe.inflight.emplace(
                key, Inflight{promise->get_future().share(), 0.0});
        }
    }
    if (pending.valid())
        return pending.get();

    std::shared_ptr<const CachedSchedule> entry;
    try {
        entry = makeCachedSchedule(mix, compute);
    } catch (...) {
        promise->set_exception(std::current_exception());
        {
            // Drop the poisoned in-flight entry so a later caller can
            // retry the solve instead of rejoining the dead future.
            std::lock_guard<std::mutex> lock(stripe.mu);
            stripe.inflight.erase(key);
        }
        throw;
    }
    promise->set_value(entry);
    {
        std::lock_guard<std::mutex> lock(stripe.mu);
        stripe.store.insert(key, entry);
        stripe.inflight.erase(key);
    }
    return entry;
}

void
AsyncScheduleCache::prefetch(const Scenario& mix,
                             const ComputeFn& compute, double readySec)
{
    prefetch(mix.signature(), mix, compute, readySec);
}

void
AsyncScheduleCache::prefetch(const std::string& key,
                             const Scenario& mix,
                             const ComputeFn& compute, double readySec)
{
    Stripe& stripe = stripeFor(key);
    std::function<void()> solve;
    {
        std::lock_guard<std::mutex> lock(stripe.mu);
        if (stripe.store.find(key) != nullptr ||
            stripe.inflight.count(key) > 0)
            return;
        solve = launchLocked(stripe, key, mix, compute, readySec);
    }
    pool_.submit(std::move(solve));
}

AsyncLookup
AsyncScheduleCache::lookup(const Scenario& mix,
                           const ComputeFn& compute, double nowSec,
                           double modeledSolveSec)
{
    return lookup(mix.signature(), mix, compute, nowSec,
                  modeledSolveSec);
}

AsyncLookup
AsyncScheduleCache::lookup(const std::string& key, const Scenario& mix,
                           const ComputeFn& compute, double nowSec,
                           double modeledSolveSec)
{
    Stripe& stripe = stripeFor(key);
    AsyncLookup result;
    std::function<void()> solve;
    {
        std::lock_guard<std::mutex> lock(stripe.mu);
        if (auto hit = stripe.store.find(key)) {
            ++stripe.stats.hits;
            result.schedule = std::move(hit);
            result.readySec = nowSec;
            return result;
        }
        auto it = stripe.inflight.find(key);
        if (it != stripe.inflight.end()) {
            // The running solve is reused, not restarted.
            ++stripe.stats.hits;
            result.readySec = std::max(nowSec, it->second.readySec);
            return result;
        }
        solve = launchLocked(stripe, key, mix, compute,
                             nowSec + modeledSolveSec);
    }
    pool_.submit(std::move(solve));
    result.readySec = nowSec + modeledSolveSec;
    result.startedSolve = true;
    return result;
}

CachePeek
AsyncScheduleCache::peek(const std::string& key) const
{
    const Stripe& stripe = stripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    CachePeek result;
    result.schedule = stripe.store.peek(key);
    if (result.schedule != nullptr)
        return result;
    auto it = stripe.inflight.find(key);
    if (it != stripe.inflight.end()) {
        result.inFlight = true;
        result.readySec = it->second.readySec;
    }
    return result;
}

std::shared_ptr<const CachedSchedule>
AsyncScheduleCache::joinStripe(Stripe& stripe,
                               const std::string& signature)
{
    Future pending;
    {
        std::lock_guard<std::mutex> lock(stripe.mu);
        if (auto hit = stripe.store.find(signature))
            return hit;
        auto it = stripe.inflight.find(signature);
        SCAR_REQUIRE(it != stripe.inflight.end(),
                     "async schedule cache: join of unknown mix ",
                     signature);
        pending = it->second.future;
    }
    // Wall-clock wait outside the lock. A failed solve is erased
    // before rethrowing so the signature can be retried rather than
    // pinning a dead future in the in-flight map forever.
    std::shared_ptr<const CachedSchedule> entry;
    try {
        entry = pending.get();
    } catch (...) {
        std::lock_guard<std::mutex> lock(stripe.mu);
        stripe.inflight.erase(signature);
        throw;
    }
    {
        std::lock_guard<std::mutex> lock(stripe.mu);
        if (stripe.inflight.erase(signature) > 0)
            stripe.store.insert(signature, entry);
    }
    return entry;
}

std::shared_ptr<const CachedSchedule>
AsyncScheduleCache::join(const std::string& signature)
{
    return joinStripe(stripeFor(signature), signature);
}

void
AsyncScheduleCache::drainInFlight()
{
    for (const auto& stripe : stripes_) {
        for (;;) {
            std::string next;
            {
                std::lock_guard<std::mutex> lock(stripe->mu);
                if (stripe->inflight.empty())
                    break;
                next = stripe->inflight.begin()->first;
            }
            joinStripe(*stripe, next);
        }
    }
}

ScheduleCacheStats
AsyncScheduleCache::stats() const
{
    ScheduleCacheStats stats;
    for (const auto& stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe->mu);
        stats.hits += stripe->stats.hits;
        stats.misses += stripe->stats.misses;
        stats.evictions += stripe->store.stats().evictions;
    }
    return stats;
}

std::size_t
AsyncScheduleCache::size() const
{
    std::size_t total = 0;
    for (const auto& stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe->mu);
        total += stripe->store.size();
    }
    return total;
}

std::size_t
AsyncScheduleCache::capacity() const
{
    return stripes_.front()->store.capacity();
}

} // namespace runtime
} // namespace scar
