#include "runtime/schedule_cache.h"

#include "common/error.h"
#include "common/logging.h"
#include "common/units.h"

namespace scar
{
namespace runtime
{

void
buildReplayView(CachedSchedule& entry)
{
    entry.windowSec.clear();
    entry.lastWindow.assign(entry.mix.numModels(), -1);
    entry.makespanSec = 0.0;
    // The per-window durations come from the schedule's stable
    // boundary metadata — the same cut points the boundary preemptor
    // suspends and resumes at.
    for (const WindowBoundary& boundary : windowBoundaries(entry.result)) {
        // windowCycles (not endCycles - startCycles): the replay
        // durations must stay bit-identical to the pre-metadata code,
        // and a difference of cumulative sums is not.
        const double sec = cyclesToSeconds(boundary.windowCycles);
        entry.windowSec.push_back(sec);
        entry.makespanSec += sec;
        const ScheduledWindow& sw =
            entry.result.windows[boundary.windowIdx];
        for (const ModelPlacement& mp : sw.placement.models) {
            if (!mp.segments.empty())
                entry.lastWindow[mp.modelIdx] = boundary.windowIdx;
        }
    }
    for (int m = 0; m < entry.mix.numModels(); ++m)
        SCAR_REQUIRE(entry.lastWindow[m] >= 0,
                     "schedule for mix ", entry.mix.signature(),
                     " never places model ", entry.mix.models[m].name);
}

std::shared_ptr<const CachedSchedule>
makeCachedSchedule(const Scenario& mix,
                   const ScheduleCache::ComputeFn& compute)
{
    auto entry = std::make_shared<CachedSchedule>();
    entry->mix = mix;
    entry->result = compute(mix);
    SCAR_REQUIRE(!entry->result.windows.empty(),
                 "schedule cache: compute returned an empty schedule ",
                 "for mix ", mix.signature());
    buildReplayView(*entry);
    return entry;
}

std::shared_ptr<const CachedSchedule>
repeatSchedule(const std::shared_ptr<const CachedSchedule>& step,
               int times)
{
    SCAR_REQUIRE(step != nullptr, "repeatSchedule: null step schedule");
    SCAR_REQUIRE(times >= 1, "repeatSchedule: times must be >= 1");
    if (times == 1)
        return step;
    auto entry = std::make_shared<CachedSchedule>();
    entry->mix = step->mix;
    entry->result = step->result;
    const std::size_t perStep = step->windowSec.size();
    entry->windowSec.reserve(perStep * static_cast<std::size_t>(times));
    // Sequential summation, matching both buildReplayView and the
    // executor's boundary walk bit-for-bit.
    entry->makespanSec = 0.0;
    for (int t = 0; t < times; ++t) {
        for (const double sec : step->windowSec) {
            entry->windowSec.push_back(sec);
            entry->makespanSec += sec;
        }
    }
    entry->lastWindow.assign(
        step->lastWindow.size(),
        static_cast<int>(perStep) * times - 1);
    return entry;
}

ScheduleCache::ScheduleCache(ScheduleCacheOptions options)
    : options_(options)
{
}

void
ScheduleCache::touch(Entry& entry)
{
    lru_.splice(lru_.begin(), lru_, entry.lruIt);
}

std::shared_ptr<const CachedSchedule>
ScheduleCache::find(const std::string& signature)
{
    auto it = entries_.find(signature);
    if (it == entries_.end())
        return nullptr;
    touch(it->second);
    return it->second.schedule;
}

void
ScheduleCache::insert(const std::string& signature,
                      std::shared_ptr<const CachedSchedule> schedule)
{
    SCAR_REQUIRE(schedule != nullptr,
                 "schedule cache: inserting null schedule for ",
                 signature);
    auto it = entries_.find(signature);
    if (it != entries_.end()) {
        it->second.schedule = std::move(schedule);
        touch(it->second);
        return;
    }
    lru_.push_front(signature);
    entries_.emplace(signature,
                     Entry{std::move(schedule), lru_.begin()});
    if (options_.capacity > 0 && entries_.size() > options_.capacity) {
        const std::string& victim = lru_.back();
        debug("schedule cache: evicting LRU mix ", victim);
        entries_.erase(victim);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

std::shared_ptr<const CachedSchedule>
ScheduleCache::peek(const std::string& signature) const
{
    auto it = entries_.find(signature);
    return it == entries_.end() ? nullptr : it->second.schedule;
}

std::shared_ptr<const CachedSchedule>
ScheduleCache::getOrCompute(const Scenario& mix,
                            const ComputeFn& compute)
{
    return getOrCompute(mix.signature(), mix, compute);
}

std::shared_ptr<const CachedSchedule>
ScheduleCache::getOrCompute(const std::string& key,
                            const Scenario& mix,
                            const ComputeFn& compute)
{
    if (auto hit = find(key)) {
        ++stats_.hits;
        return hit;
    }
    ++stats_.misses;
    debug("schedule cache miss #", stats_.misses, ": scheduling mix ",
          key);
    auto entry = makeCachedSchedule(mix, compute);
    insert(key, entry);
    return entry;
}

} // namespace runtime
} // namespace scar
