#include "runtime/schedule_cache.h"

#include "common/error.h"
#include "common/logging.h"
#include "common/units.h"

namespace scar
{
namespace runtime
{

void
buildReplayView(CachedSchedule& entry)
{
    entry.windowSec.clear();
    entry.lastWindow.assign(entry.mix.numModels(), -1);
    entry.makespanSec = 0.0;
    for (std::size_t w = 0; w < entry.result.windows.size(); ++w) {
        const ScheduledWindow& sw = entry.result.windows[w];
        const double sec = cyclesToSeconds(sw.cost.latencyCycles);
        entry.windowSec.push_back(sec);
        entry.makespanSec += sec;
        for (const ModelPlacement& mp : sw.placement.models) {
            if (!mp.segments.empty())
                entry.lastWindow[mp.modelIdx] = static_cast<int>(w);
        }
    }
    for (int m = 0; m < entry.mix.numModels(); ++m)
        SCAR_REQUIRE(entry.lastWindow[m] >= 0,
                     "schedule for mix ", entry.mix.signature(),
                     " never places model ", entry.mix.models[m].name);
}

const CachedSchedule&
ScheduleCache::getOrCompute(const Scenario& mix,
                            const ComputeFn& compute)
{
    const std::string key = mix.signature();
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++stats_.hits;
        return it->second;
    }
    ++stats_.misses;
    debug("schedule cache miss #", stats_.misses, ": scheduling mix ",
          key);
    CachedSchedule entry;
    entry.mix = mix;
    entry.result = compute(mix);
    SCAR_REQUIRE(!entry.result.windows.empty(),
                 "schedule cache: compute returned an empty schedule ",
                 "for mix ", key);
    buildReplayView(entry);
    return entries_.emplace(key, std::move(entry)).first->second;
}

} // namespace runtime
} // namespace scar
