#include "runtime/serving_sim.h"

namespace scar
{
namespace runtime
{

FleetOptions
ServingSimulator::singleShard(ServingOptions options)
{
    FleetOptions fleet;
    fleet.serving = std::move(options);
    fleet.shards = 1;
    return fleet;
}

ServingSimulator::ServingSimulator(std::vector<ServedModel> catalog,
                                   Mcm mcm, ServingOptions options)
    : fleet_(std::move(catalog), std::move(mcm),
             singleShard(std::move(options)))
{
}

ServingReport
ServingSimulator::run(const std::vector<Request>& trace)
{
    return fleet_.run(trace);
}

} // namespace runtime
} // namespace scar
