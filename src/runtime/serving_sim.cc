#include "runtime/serving_sim.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/error.h"
#include "common/logging.h"

namespace scar
{
namespace runtime
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

ServingSimulator::ServingSimulator(std::vector<ServedModel> catalog,
                                   Mcm mcm, ServingOptions options)
    : catalog_(std::move(catalog)), mcm_(std::move(mcm)),
      options_(options)
{
    SCAR_REQUIRE(!catalog_.empty(), "serving: empty catalog");
    SCAR_REQUIRE(static_cast<int>(catalog_.size()) <=
                     mcm_.numChiplets(),
                 "serving: more catalog models than chiplets");
    // Mix signatures key the schedule cache by model name, so two
    // catalog entries sharing a name would silently replay each
    // other's schedules — as would names containing the signature's
    // own delimiter characters.
    std::set<std::string> names;
    for (const ServedModel& sm : catalog_) {
        SCAR_REQUIRE(sm.model.name.find_first_of("#=+") ==
                         std::string::npos,
                     "serving: catalog model name '", sm.model.name,
                     "' contains a signature delimiter (#, =, +)");
        SCAR_REQUIRE(names.insert(sm.model.name).second,
                     "serving: duplicate catalog model name ",
                     sm.model.name);
    }
}

ServingReport
ServingSimulator::run(const std::vector<Request>& trace)
{
    for (std::size_t i = 1; i < trace.size(); ++i)
        SCAR_REQUIRE(trace[i - 1].arrivalSec <= trace[i].arrivalSec,
                     "serving: trace not sorted by arrival time");

    const ScheduleCacheStats before = cache_.stats();
    AdmissionController admission(catalog_, options_.admission);
    ReplayExecutor executor;
    records_.clear();
    records_.reserve(trace.size());
    long paddedSlots = 0;

    const ScheduleCache::ComputeFn compute =
        [this](const Scenario& mix) {
            Scar scar(mix, mcm_, options_.scar);
            return scar.run();
        };

    std::size_t next = 0; // next arrival to admit
    double nowSec = 0.0;
    while (next < trace.size() || admission.queuedCount() > 0 ||
           executor.busy()) {
        // Free MCM + ready batch: dispatch before advancing time.
        if (!executor.busy() && admission.ready(nowSec)) {
            Dispatch dispatch = admission.formDispatch(nowSec);
            for (const BatchGroup& group : dispatch.groups)
                paddedSlots += group.batch;
            const CachedSchedule& schedule =
                cache_.getOrCompute(dispatch.mix, compute);
            executor.start(schedule, std::move(dispatch), nowSec);
            continue;
        }

        const double tArrival =
            next < trace.size() ? trace[next].arrivalSec : kInf;
        const double tWindow =
            executor.busy() ? executor.nextBoundarySec() : kInf;
        // The batching timer only matters while the MCM is idle: a
        // busy package dispatches again as soon as it frees up.
        const double tTimer =
            (!executor.busy() && admission.queuedCount() > 0)
                ? admission.nextForcedDispatchSec()
                : kInf;

        const double tNext = std::min({tArrival, tWindow, tTimer});
        SCAR_REQUIRE(tNext < kInf,
                     "serving: event loop stalled with ",
                     admission.queuedCount(), " queued requests");
        nowSec = std::max(nowSec, tNext);

        if (tArrival <= tWindow && tArrival <= tTimer) {
            admission.enqueue(trace[next]);
            ++next;
        } else if (tWindow <= tTimer) {
            WindowTick tick = executor.advance();
            for (Request& req : tick.completed)
                records_.push_back(req);
        }
        // Timer events need no action beyond advancing the clock:
        // the dispatch check at the loop head fires next iteration.
    }

    ScheduleCacheStats delta = cache_.stats();
    delta.hits -= before.hits;
    delta.misses -= before.misses;
    ServingReport report = summarizeServing(
        records_, static_cast<long>(trace.size()),
        executor.dispatchCount(), paddedSlots, delta,
        static_cast<long>(cache_.size()));
    inform("serving: ", report.completed, "/", report.offered,
           " requests in ", report.dispatches, " dispatches, ",
           delta.misses, " schedule searches (",
           cache_.size(), " mixes cached)");
    return report;
}

} // namespace runtime
} // namespace scar
