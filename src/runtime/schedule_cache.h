/**
 * @file
 * Schedule cache: memoizes the expensive two-level SCAR search per
 * unique model mix.
 *
 * The offline search (Scar::run) depends only on the scheduled mix —
 * which models at which batch sizes — and on the fixed MCM, never on
 * request identities or arrival times. The serving runtime therefore
 * keys cached ScheduleResults by Scenario::signature(): the first
 * dispatch of a mix pays the search (a miss), every later dispatch of
 * the same mix replays the cached schedule (a hit). Hit/miss counts
 * are exposed so serving reports can show how much search the cache
 * avoided.
 *
 * Each entry also precomputes the replay view the discrete-event
 * executor needs: per-window durations in seconds and, per model, the
 * index of the last window holding its layers (a model's requests
 * complete when that window's end boundary is crossed).
 */

#ifndef SCAR_RUNTIME_SCHEDULE_CACHE_H
#define SCAR_RUNTIME_SCHEDULE_CACHE_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sched/scar.h"
#include "workload/scenario.h"

namespace scar
{
namespace runtime
{

/** A memoized schedule plus its replay view. */
struct CachedSchedule
{
    Scenario mix;               ///< the scenario that was scheduled
    ScheduleResult result;

    /** Duration of each schedule window in seconds, replay order. */
    std::vector<double> windowSec;
    /** Per mix-model index of its last populated window. */
    std::vector<int> lastWindow;
    /** Total back-to-back makespan of one replay, in seconds. */
    double makespanSec = 0.0;
};

/** Cache effectiveness counters. */
struct ScheduleCacheStats
{
    long hits = 0;
    long misses = 0; ///< == number of Scar::run invocations

    long lookups() const { return hits + misses; }

    double
    hitRate() const
    {
        return lookups() == 0
                   ? 0.0
                   : static_cast<double>(hits) / lookups();
    }
};

/** Signature-keyed store of scheduling results. */
class ScheduleCache
{
  public:
    /** Runs the schedule search for a mix on a cache miss. */
    using ComputeFn = std::function<ScheduleResult(const Scenario&)>;

    /**
     * Returns the cached schedule for the mix, invoking compute only
     * when the mix signature has not been seen. The returned
     * reference stays valid for the cache's lifetime (entries are
     * never evicted).
     */
    const CachedSchedule& getOrCompute(const Scenario& mix,
                                       const ComputeFn& compute);

    const ScheduleCacheStats& stats() const { return stats_; }

    /** Number of distinct mixes scheduled so far. */
    std::size_t size() const { return entries_.size(); }

  private:
    std::map<std::string, CachedSchedule> entries_;
    ScheduleCacheStats stats_;
};

/** Builds the replay view of a schedule (exposed for testing). */
void buildReplayView(CachedSchedule& entry);

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_SCHEDULE_CACHE_H
