/**
 * @file
 * Schedule cache: memoizes the expensive two-level SCAR search per
 * unique model mix.
 *
 * The offline search (Scar::run) depends only on the scheduled mix —
 * which models at which batch sizes — and on the fixed MCM, never on
 * request identities or arrival times. The serving runtime therefore
 * keys cached ScheduleResults by Scenario::signature(): the first
 * dispatch of a mix pays the search (a miss), every later dispatch of
 * the same mix replays the cached schedule (a hit). Hit/miss counts
 * are exposed so serving reports can show how much search the cache
 * avoided.
 *
 * Entries are handed out as shared_ptr<const CachedSchedule>: the
 * cache may be bounded by an LRU capacity, and eviction must not
 * invalidate a schedule an executor is still replaying — the replay
 * keeps its own reference alive.
 *
 * Each entry also precomputes the replay view the discrete-event
 * executor needs: per-window durations in seconds and, per model, the
 * index of the last window holding its layers (a model's requests
 * complete when that window's end boundary is crossed).
 *
 * This class is single-threaded; the serving runtime wraps it in
 * AsyncScheduleCache (runtime/async_schedule_cache.h) for concurrent
 * background solves.
 */

#ifndef SCAR_RUNTIME_SCHEDULE_CACHE_H
#define SCAR_RUNTIME_SCHEDULE_CACHE_H

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sched/scar.h"
#include "workload/scenario.h"

namespace scar
{
namespace runtime
{

/** A memoized schedule plus its replay view. */
struct CachedSchedule
{
    Scenario mix;               ///< the scenario that was scheduled
    ScheduleResult result;

    /** Duration of each schedule window in seconds, replay order. */
    std::vector<double> windowSec;
    /** Per mix-model index of its last populated window. */
    std::vector<int> lastWindow;
    /** Total back-to-back makespan of one replay, in seconds. */
    double makespanSec = 0.0;
};

/** Cache effectiveness counters. */
struct ScheduleCacheStats
{
    long hits = 0;
    long misses = 0;     ///< == number of Scar::run invocations
    long evictions = 0;  ///< LRU entries dropped at capacity

    long lookups() const { return hits + misses; }

    double
    hitRate() const
    {
        return lookups() == 0
                   ? 0.0
                   : static_cast<double>(hits) / lookups();
    }
};

/** Cache sizing knobs. */
struct ScheduleCacheOptions
{
    /**
     * Maximum cached schedules; the least-recently-used entry is
     * evicted beyond this. 0 keeps every schedule (the PR 1
     * behavior). Evicted entries stay alive for any executor still
     * holding their shared_ptr.
     */
    std::size_t capacity = 0;
};

/** Signature-keyed LRU store of scheduling results. */
class ScheduleCache
{
  public:
    /** Runs the schedule search for a mix on a cache miss. */
    using ComputeFn = std::function<ScheduleResult(const Scenario&)>;

    explicit ScheduleCache(
        ScheduleCacheOptions options = ScheduleCacheOptions{});

    /**
     * Returns the cached schedule for the mix, invoking compute only
     * when the mix signature is absent. The returned shared_ptr stays
     * valid after eviction.
     */
    std::shared_ptr<const CachedSchedule>
    getOrCompute(const Scenario& mix, const ComputeFn& compute);

    /**
     * Explicit-key variant: the fleet runtime keys entries by
     * (mix signature, package signature) so shards with different MCM
     * templates never share a schedule, while identical shards still
     * deduplicate through one shared cache.
     */
    std::shared_ptr<const CachedSchedule>
    getOrCompute(const std::string& key, const Scenario& mix,
                 const ComputeFn& compute);

    /**
     * The cached schedule for a signature, or nullptr. Touches the
     * LRU order but not the hit/miss counters (the async layer keeps
     * its own).
     */
    std::shared_ptr<const CachedSchedule>
    find(const std::string& signature);

    /**
     * Non-mutating probe: the cached schedule without touching the
     * LRU order or any counter. Routing cost estimation peeks at
     * candidate shards' caches and must not perturb eviction order.
     */
    std::shared_ptr<const CachedSchedule>
    peek(const std::string& signature) const;

    /** Inserts a computed schedule, evicting LRU beyond capacity. */
    void insert(const std::string& signature,
                std::shared_ptr<const CachedSchedule> schedule);

    const ScheduleCacheStats& stats() const { return stats_; }

    /** Number of distinct mixes currently cached. */
    std::size_t size() const { return entries_.size(); }

    std::size_t capacity() const { return options_.capacity; }

  private:
    struct Entry
    {
        std::shared_ptr<const CachedSchedule> schedule;
        std::list<std::string>::iterator lruIt;
    };

    void touch(Entry& entry);

    ScheduleCacheOptions options_;
    std::map<std::string, Entry> entries_;
    std::list<std::string> lru_; ///< most recently used at the front
    ScheduleCacheStats stats_;
};

/**
 * Computes, validates, and replay-views a schedule for a mix: the
 * shared miss path of the sync and async caches.
 */
std::shared_ptr<const CachedSchedule>
makeCachedSchedule(const Scenario& mix,
                   const ScheduleCache::ComputeFn& compute);

/** Builds the replay view of a schedule (exposed for testing). */
void buildReplayView(CachedSchedule& entry);

/**
 * Tiles a one-step schedule `times` back to back: the replay view of
 * an autoregressive decode round that advances every rider by `times`
 * tokens. The cache keeps only the one-step entry (so every round of
 * the same context bucket and batch shares one solved schedule); the
 * fleet wraps it per dispatch. Every model's lastWindow moves to the
 * final tiled window — decode riders complete, or rejoin the decode
 * queue, together at the round's end.
 */
std::shared_ptr<const CachedSchedule>
repeatSchedule(const std::shared_ptr<const CachedSchedule>& step,
               int times);

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_SCHEDULE_CACHE_H
