/**
 * @file
 * Multi-MCM fleet serving: one admission front-end routing batched
 * dispatches across N accelerator packages — homogeneous copies of
 * one template or a heterogeneous mix of templates — with
 * asynchronous (future-backed) schedule solves. The step from one
 * package toward the "millions of users" scale of the roadmap.
 *
 * Event loop (one virtual clock across the fleet):
 *  - arrivals enqueue into the shared admission controller;
 *  - when a batch is ready and a shard is free, the dispatch forms
 *    and consults that shard's AsyncScheduleCache: a ready schedule
 *    starts replaying immediately (plus a modeled weight re-staging
 *    overhead when the shard switches mixes); an unsolved mix starts
 *    a background solve and the shard waits until the solve's
 *    *virtual* ready instant — that wait is the reported solve-stall
 *    time;
 *  - when a batch is ready but every shard is busy, the would-be
 *    mix's solve is started speculatively in the background for the
 *    shard the dispatch is predicted to land on, so the search
 *    overlaps the in-flight replays instead of stalling them (the
 *    PR 1 executor blocked the whole loop here). No solve is
 *    launched when the predicted target already holds the schedule;
 *  - boundary preemption (opt-in, PreemptionOptions): when a queued
 *    request's slack shrinks to the threshold while every shard is
 *    occupied, the first in-flight replay to cross a window boundary
 *    is suspended there (executor.h SuspendedReplay), the urgent
 *    models' batch dispatches onto the freed shard, and the
 *    suspended replay resumes from its saved cursor once the shard
 *    quiets down — charged a modeled re-staging overhead on the
 *    virtual clock, never re-solved. A shard parks at most one
 *    suspended replay (no nested preemption), non-urgent dispatches
 *    cannot claim a shard that owes a resume, and a replay already
 *    in its last window is never suspended (preempting there is a
 *    no-op — the shard frees at that boundary anyway).
 *
 * Heterogeneous fleets: FleetOptions::shardTemplates gives each shard
 * its own McmConfig-style package (e.g. an NVDLA-heavy package for
 * GEMM-bound datacenter mixes next to a Shi-diannao-heavy package for
 * early-CNN AR/VR mixes). A schedule is only valid for the package it
 * was searched on, so every cache entry is keyed by
 * (mix signature, Mcm::signature()): different templates never share
 * a schedule, while identical shards behind a shared cache still
 * deduplicate fleet-wide.
 *
 * Routing policies pick the shard for a formed dispatch among the
 * currently idle shards: round-robin (fair rotation), least-loaded
 * (lowest accumulated busy time), mix-affinity (hash of the mix
 * signature, which concentrates each mix's schedules — and weight
 * residency — on one shard), or best-fit (cost-aware: estimated
 * completion instant of the dispatch on each candidate — cached
 * schedule makespan when resident, a WindowEvaluator-based estimate
 * otherwise, plus solve wait and switch overhead — lowest wins, ties
 * fall back to least-loaded). BestFit is what makes a heterogeneous
 * fleet pay off: it sends each mix to the package that executes it
 * fastest instead of to an arbitrary hash bucket.
 *
 * Determinism: everything observable (latencies, routing, stall
 * accounting, cache contents) is a function of virtual time only;
 * wall-clock solve speed affects how long run() takes, never what it
 * returns.
 *
 * Parallel epoch engine: between two consecutive *routing-decision*
 * events, the only events in the fleet are window-boundary crossings
 * — pure replay bookkeeping that touches one shard each. run()
 * exploits that: it computes the conservative lookahead bound B as
 * the min over every next-possible-routing-decision term — next
 * arrival, min parked-solve ready, batching timer, speculation
 * instant, earliest busy shard's replay end, plus (LLM fleets) the
 * earliest step-aligned join cut a decode replay with fresh waiters
 * could take and the earliest mid-replay autoregressive completion
 * (it enqueues decode waiters), plus (preemptive fleets) the next
 * urgency crossing on the same FP expression as the urgency timer —
 * lets every busy shard drain all its boundaries strictly before B
 * concurrently (engineThreads), and then commits the ticks in
 * (time, shard index) order — exactly the order the serial loop
 * would have produced, including the flight-recorder trace and
 * sampler rows, so the report and trace are byte-identical at any
 * engineThreads value. Runs of consecutive same-shard ticks that
 * precede every other shard's head in that order commit as one
 * batch (a single merge-set update per run; syncShard already runs
 * once per shard per epoch). Epochs are skipped only around a
 * deferred dispatch and while a preempted replay awaits its resume
 * (both re-inspect the fleet after every tick, so they stay on the
 * serial path); docs/ARCHITECTURE.md tabulates every bound term
 * with its conservativeness argument.
 *
 * Event calendar: the per-event O(shards) scans of the serial loop
 * (next boundary, next parked-ready, candidate checks) are replaced
 * by incrementally maintained ordered indexes — a boundary queue, a
 * parked-solve queue, a replay-end queue, and free/occupied shard
 * sets — all updated at a single choke point (syncShard) whenever a
 * shard changes state, so picking the next event is O(log shards).
 *
 * Hierarchical routing: shards are grouped into pods of identical
 * (package template, schedule cache) pairs — the cluster -> pod ->
 * shard hierarchy. Within a pod, every idle shard with the same
 * previous-mix class (same last replayed key, or never dispatched)
 * has the *same* BestFit cost for a given mix, and the occupied cost
 * is monotone in the shard's availability instant, so each pod is
 * represented by O(1) cheapest-in-class heads and BestFit folds over
 * O(pods) representatives instead of all N shards — O(log N)
 * maintenance per state change. The fold replays the serial
 * tie-break rules over the representatives, so the chosen shard and
 * the routing-quality counters match the flat scan (the one
 * documented exception: chains of distinct costs spaced closer than
 * the 1e-12 tie epsilon can tie-break differently).
 */

#ifndef SCAR_RUNTIME_FLEET_H
#define SCAR_RUNTIME_FLEET_H

#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "arch/mcm.h"
#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "runtime/admission.h"
#include "runtime/arrival.h"
#include "runtime/async_schedule_cache.h"
#include "runtime/executor.h"
#include "runtime/serving_report.h"
#include "sched/scar.h"

namespace scar
{
namespace runtime
{

/** How a formed dispatch picks among idle shards. */
enum class RoutingPolicy
{
    RoundRobin,  ///< fair rotation over idle shards
    LeastLoaded, ///< idle shard with the least accumulated busy time
    MixAffinity, ///< hash(mix signature) -> shard, fallback least-loaded
    /**
     * Cost-aware: every shard — idle or occupied — is scored by the
     * estimated completion time of this dispatch on it: current
     * backlog (replay end / parked-solve end) + switch overhead +
     * solve wait + schedule makespan (cached, or a cheap
     * window-evaluator estimate), with least-loaded tie-breaking.
     * The dispatch goes to the cheapest idle shard; when an occupied
     * shard is strictly cheaper (its backlog wait is smaller than
     * the other package's makespan handicap), the dispatch is
     * *deferred* until that shard frees up. The only policy that
     * consults the cost model instead of queue depths — essential on
     * heterogeneous fleets, where deferral keeps slow-on-this-mix
     * packages free for the traffic they are good at.
     */
    BestFit,
};

const char* routingPolicyName(RoutingPolicy policy);

/**
 * Request-level boundary-preemption knobs.
 *
 * AR/VR frame deadlines are an order of magnitude tighter than
 * datacenter SLOs; without preemption a 20 fps request landing behind
 * a long datacenter replay waits the full remaining makespan and
 * blows its deadline. With preemption enabled, a replay is suspended
 * at its next window boundary whenever a queued request's slack falls
 * to the threshold and no shard is free, the urgent batch runs, and
 * the suspended replay resumes from its cursor.
 */
struct PreemptionOptions
{
    /** Master switch. Disabled reproduces the non-preemptive runtime
     *  bit-for-bit (the urgency checks are never evaluated). */
    bool enabled = false;
    /**
     * A queued request is urgent once its slack (deadline - now) is
     * at or below this, in seconds. Larger values preempt earlier
     * (safer for the urgent request, more disruption); 0 preempts
     * only at the deadline instant itself.
     */
    double slackThresholdSec = 0.02;
    /**
     * Modeled weight re-staging charged on the virtual clock when a
     * suspended replay resumes — the preemption analogue of
     * ServingOptions::switchOverheadSec (the urgent dispatch itself
     * pays the ordinary switch overhead on the way in).
     */
    double resumeOverheadSec = 0.0;
};

/** Serving-simulation configuration (single package). */
struct ServingOptions
{
    ScarOptions scar;           ///< options for each cache-miss search
    AdmissionOptions admission; ///< batching policy
    /**
     * Modeled virtual latency of one schedule solve (the time the
     * package's host would spend searching). 0 keeps the PR 1
     * semantics: solves are free on the virtual clock and only cost
     * wall time.
     */
    double modeledSolveSec = 0.0;
    /**
     * Modeled weight re-staging overhead charged before a shard
     * starts replaying a different mix than its previous dispatch.
     */
    double switchOverheadSec = 0.0;
    /** LRU capacity per schedule cache (0 = unbounded). */
    std::size_t cacheCapacity = 0;
    /** Request-level boundary preemption (off by default). */
    PreemptionOptions preemption;
    /**
     * Worker pool for background solves and the search fan-out
     * inside each solve (not owned); nullptr uses
     * ThreadPool::global().
     */
    ThreadPool* pool = nullptr;
};

/** Fleet-level configuration. */
struct FleetOptions
{
    ServingOptions serving;
    int shards = 1;                ///< MCM packages (copies of the
                                   ///< constructor template when
                                   ///< shardTemplates is empty)
    RoutingPolicy routing = RoutingPolicy::RoundRobin;
    /**
     * Per-shard package templates for a heterogeneous fleet. Empty
     * (the default) keeps the homogeneous behavior: `shards` copies
     * of the constructor's template. Non-empty overrides the fleet
     * size — one shard per listed template (`shards` must then be
     * left at 1 or match the template count). Every template must
     * offer at least as many chiplets as the catalog has models.
     */
    std::vector<Mcm> shardTemplates;
    /**
     * Start a background solve for the would-be mix whenever a batch
     * is ready but every shard is busy, hiding the modeled solve
     * latency behind in-flight replays. The solve targets the shard
     * the dispatch is predicted to land on and is skipped when that
     * shard's cache already holds (or is already solving) the
     * schedule. Disabling reproduces the PR 1 blocking pipeline: a
     * new mix's search begins only at dispatch time and the shard
     * idles through all of it.
     */
    bool speculativeSolve = true;
    /**
     * BestFit only: allow deferring a dispatch when an occupied
     * shard's projected completion beats every idle candidate
     * (waiting for the right package instead of starting sooner on
     * the wrong one). Deferral helps steady traffic whose package
     * gaps exceed typical backlog waits, but while a batch waits it
     * keeps absorbing new arrivals — under bursty phase changes that
     * capture effect can cost more than the better package saves, so
     * it is toggleable. Ignored by the other routing policies.
     *
     * Deferral horizon: a dispatch only waits for an occupied shard
     * when that wait is bounded by the shard's next window boundary
     * plus one makespan of the deferred mix — the preemption-style
     * horizon at which the shard could plausibly take the work. An
     * occupied shard whose full replay backlog stretches past that
     * horizon never captures a deferral (it used to: the old bound
     * was the whole backlog, so a long replay on the "right" package
     * could park a batch for many makespans while idle shards sat
     * empty); past the horizon the dispatch goes to the best idle
     * candidate instead.
     */
    bool bestFitDefer = true;
    /**
     * Route through the hierarchical cluster -> pod -> shard index
     * (O(log N) candidates per dispatch) instead of the flat O(N)
     * shard scan. The indexed path reproduces the flat scan's
     * choices — same cost model, same tie-breaks — so this exists
     * only as an A/B lever for validation and for measuring the
     * routing speedup; preemptive fleets always use the flat scan
     * (suspension states change candidates mid-replay). Equality can
     * diverge only on exact cost ties closer than the routing
     * epsilon, which real (heterogeneous, staggered) traffic does
     * not produce.
     */
    bool indexedRouting = true;
    /**
     * Concurrency of the epoch engine draining window boundaries
     * between state-changing events: 1 (the default) drains inline
     * on the caller; 0 borrows the serving worker pool; > 1 builds a
     * dedicated engine pool of that many threads. The exported
     * report and flight-recorder trace are byte-identical at every
     * setting — the engine only parallelizes provably independent
     * per-shard replay bookkeeping and commits it in the serial
     * event order.
     *
     * Interactions: the setting is independent of `indexedRouting`
     * (routing picks shards at epoch edges; the engine only drains
     * between them — enable both for large fleets). LLM fleets and
     * preemptive fleets run under the engine too (join-aware /
     * urgency-aware bound terms); nothing disables the resolved
     * engine mode, only per-event serial fallbacks (deferred
     * dispatch, suspended replay awaiting resume) shorten epochs.
     * The resolved mode is queryable via engineMode() and logged at
     * LogLevel::Debug by the constructor, so A/B sweeps cannot
     * silently run serial.
     */
    int engineThreads = 1;
    /**
     * Lock stripes per AsyncScheduleCache (0 picks the cache's
     * default: 16 for an unbounded store, 1 when cacheCapacity
     * bounds it — a global LRU order needs a global lock). Striping
     * is a pure partition of the key space, so counters and contents
     * are unaffected; it only removes mutex contention when many
     * engine threads and solver workers share one global cache.
     */
    int cacheStripes = 0;
    /**
     * One schedule cache shared by every shard (each (mix, package)
     * pair solved once fleet-wide) versus a private cache per shard
     * (pairs re-solved per shard, but no cross-shard coupling — pair
     * with MixAffinity routing to keep each mix on one shard).
     * Entries are keyed by (mix signature, package signature) either
     * way, so heterogeneous templates never alias.
     */
    bool sharedCache = true;
    /**
     * Flight recorder for this fleet (not owned; nullptr disables all
     * observability). When set, run() records the full per-request
     * lifecycle (arrival -> queue -> dispatch -> replay windows ->
     * completion/preemption) as virtual-time trace events, bumps the
     * metrics registry, and samples queue depth / shard busyness /
     * cache hit rate on the recorder's fixed virtual interval.
     * Recording never changes a run's observable behavior: every hook
     * sits behind the null check, and the trace is a pure function of
     * virtual time, so it is byte-identical at any solver thread
     * count. One recorder should observe one run at a time — run()
     * resets the sampler and assumes the trace starts at t = 0.
     */
    obs::FlightRecorder* recorder = nullptr;
};

/**
 * The resolved concurrency mode of the parallel epoch engine (from
 * FleetOptions::engineThreads; see engineModeName for rendering).
 */
enum class EngineMode
{
    Inline,    ///< engineThreads == 1: drains run on the event thread
    Borrowed,  ///< engineThreads == 0: drains on the serving pool
    Dedicated, ///< engineThreads > 1: drains on an owned engine pool
};

const char* engineModeName(EngineMode mode);

/** Simulates serving one request stream on a fleet of MCMs. */
class FleetSimulator
{
  public:
    /**
     * @param catalog the served models (traffic profile + SLOs)
     * @param mcm the package template; every shard is a copy unless
     *        options.shardTemplates assigns per-shard packages
     * @param options fleet + serving knobs
     */
    FleetSimulator(std::vector<ServedModel> catalog, Mcm mcm,
                   FleetOptions options = FleetOptions{});

    /**
     * Serves one request trace to completion and returns the
     * aggregate report (per-shard utilization, solve-stall and
     * switch-overhead totals included). Schedule caches persist
     * across run() calls; the report's cache counters cover this run
     * only.
     */
    ServingReport run(const std::vector<Request>& trace);

    /** Per-request completion records of the most recent run. */
    const std::vector<Request>& records() const { return records_; }

    /** The schedule cache of a shard (all shards share cache 0 when
     *  sharedCache is set). */
    const AsyncScheduleCache& cache(int shard = 0) const;

    int shardCount() const
    {
        return static_cast<int>(shards_.size());
    }

    const std::vector<ServedModel>& catalog() const { return catalog_; }

    /** The package template of a shard (shard 0 by default, which is
     *  the constructor template in a homogeneous fleet). */
    const Mcm& mcm(int shard = 0) const;

    /**
     * The resolved epoch-engine concurrency mode. Nothing disables
     * the engine outright — LLM and preemptive fleets run under it
     * with join-/urgency-aware bound terms — but per-event serial
     * fallbacks (a deferred dispatch, a suspended replay awaiting
     * resume) can shorten or skip individual epochs. The constructor
     * also logs the resolution at LogLevel::Debug.
     */
    EngineMode engineMode() const { return engineMode_; }

    /** Human-readable engine-mode resolution, e.g.
     *  "dedicated pool (8 threads)". */
    std::string engineModeDescription() const;

    /**
     * The completion-cost estimate BestFit uses for a mix on a
     * shard's package when no solved schedule is resident: a
     * single-window WindowEvaluator pass over a trivial one-segment-
     * per-model placement, in seconds. Deterministic, memoized per
     * (mix, package) signature pair. Exposed for tests and for
     * offline what-if tooling.
     */
    double estimateMakespanSec(int shard, const Scenario& mix);

  private:
    struct Shard
    {
        ReplayExecutor executor;
        AsyncScheduleCache* cache = nullptr;
        // Formed dispatch waiting for its schedule's virtual ready
        // instant (the executor is idle while one is parked here).
        bool hasPending = false;
        Dispatch pending;
        std::string pendingKey; ///< (mix, package) cache key
        double pendingReadySec = 0.0;
        /** Projected end of the parked dispatch's replay (solve
         *  ready + switch + makespan or its estimate): the backlog
         *  proxy BestFit charges for a parked shard. */
        double pendingEndSec = 0.0;
        /** Set when the dispatch-time lookup already had the
         *  schedule; spares the join() re-lookup on cache hits. */
        std::shared_ptr<const CachedSchedule> pendingSchedule;
        // A replay suspended at a window boundary, waiting to resume
        // once the shard quiets down. At most one per shard; a shard
        // owing a resume only accepts *urgent* dispatches until the
        // suspended replay has finished.
        bool hasSuspended = false;
        SuspendedReplay suspended;
        std::string suspendedKey; ///< (mix, package) key of the suspended replay
        // Per-run accounting.
        long dispatchesBefore = 0; ///< executor count at run start
        double busyUntilSec = 0.0; ///< end of the current replay
        double busySec = 0.0;
        double solveStallSec = 0.0;
        double switchOverheadSec = 0.0;
        long preemptions = 0;
        double resumeOverheadSec = 0.0;
        std::string lastKey; ///< (mix, package) key of the previous replay
        /** Trace bookkeeping: start instant of the window currently
         *  replaying (the span start when the next boundary ticks). */
        double traceWindowStartSec = 0.0;
        /** Windows per decode step of the replaying dispatch (1 for
         *  non-decode dispatches). A decode round replays the cached
         *  one-step schedule llmDecodeSteps times, so only every
         *  llmWindowsPerStep-th boundary is a step boundary — the
         *  instants where a continuous-batching join may cut the
         *  replay. */
        int llmWindowsPerStep = 1;
    };

    /** The (mix signature, package signature) key of shard s. */
    std::string cacheKey(const std::string& mixSig,
                         std::size_t shard) const;

    /** estimateMakespanSec with the (mix, package) memo key already
     *  derived — the internal fast path: every runtime caller holds
     *  the key it just used against the schedule cache. */
    double estimateMakespanKeyed(const std::string& key,
                                 std::size_t shard,
                                 const Scenario& mix);

    /**
     * BestFit's completion-cost estimate for dispatching the mix on
     * shard s at nowSec: availability wait + switch overhead + solve
     * wait + makespan (cached when resident, estimated otherwise).
     * With `urgent` set and preemption enabled, a busy shard is
     * charged only the wait to its next window boundary — the instant
     * boundary preemption would free it — instead of its full replay
     * backlog, so cost-aware decisions (speculation targeting,
     * deferral) see the same completion instants the preemptive
     * executor will actually deliver. A shard owing a resume is
     * additionally charged the resume overhead plus the suspended
     * replay's remaining windows for non-urgent traffic.
     */
    double dispatchCostSec(std::size_t shard,
                           const std::string& mixSig,
                           const Scenario& mix, double nowSec,
                           bool urgent);

    /**
     * Picks the target among idle pending-free shards (for urgent
     * dispatches, shards parking a suspended replay qualify too —
     * they are reserved *against non-urgent* claims only). Returns -1
     * when there is no idle candidate — or, under BestFit with
     * allowDefer, when an occupied shard's projected completion
     * beats every idle candidate and the dispatch should wait for it
     * (the caller defers: the queue is left intact and re-routed on
     * the next event). Deferral is a latency play and only sound
     * while the queue fits in this one dispatch; under overflow the
     * caller passes allowDefer = false so every package keeps
     * contributing throughput.
     */
    int routeDispatch(const std::string& mixSig, const Scenario& mix,
                      double nowSec, bool allowDefer, bool urgent);

    /**
     * The shard a speculative solve for this mix should warm: the
     * affinity shard (MixAffinity), the cost-cheapest shard counting
     * availability waits (BestFit), or the busy shard that frees up
     * first — the likeliest dispatch target — otherwise. For an
     * urgent mix the cost model sees boundary-preemption waits, so
     * the predicted target is the replay the preemptor will actually
     * suspend. Returns -1 when the predicted target's cache already
     * holds or is already solving the (mix, package) schedule, so no
     * background solve is wasted re-deriving a resident schedule
     * (previously only the shared-cache configuration was protected
     * against this).
     */
    int speculationTarget(const std::string& mixSig,
                          const Scenario& mix, double nowSec,
                          bool urgent);

    /**
     * Restarts a shard's suspended replay at nowSec plus the modeled
     * resume overhead, restoring the busy/accounting state suspension
     * subtracted. Requires an idle shard with a parked replay.
     */
    void resumeSuspended(Shard& shard, double nowSec);

    /** Ordered (key, shard) indexes: class -> cheapest-first shards. */
    using ClassIndex =
        std::map<std::string, std::set<std::pair<double, int>>>;
    /** The head (cheapest entry) of every class, globally ordered. */
    using ClassHeads = std::set<std::tuple<double, int, std::string>>;

    /**
     * One routing pod: the shards sharing a (package template,
     * schedule cache) pair. Within a pod a given mix has one cache
     * key, one makespan estimate, and one switch-overhead rule per
     * previous-mix class, so the cheapest candidate of each class —
     * the head of its (busySec, shard) set — represents every shard
     * of that class in the BestFit fold. Occupied shards are indexed
     * by availability instant: their cost is monotone in it, so the
     * earliest-available shard of a class is its cheapest.
     */
    struct Pod
    {
        std::vector<int> shards;
        ClassIndex freeByClass; ///< (busySec, shard) per class
        ClassHeads freeHeads;
        ClassIndex occByClass;  ///< (availEndSec, shard) per class
        ClassHeads occHeads;
    };

    /** The calendar/index keys shard s is currently registered
     *  under, so syncShard can erase them exactly before re-deriving
     *  the shard's state. */
    struct ShardIndexKeys
    {
        bool inBoundary = false;
        double boundarySec = 0.0;
        bool inPendingQ = false;
        double pendingSec = 0.0;
        bool inBusyEnd = false;
        double busyEndSec = 0.0;
        bool inFree = false;
        double freeBusySec = 0.0;
        std::string freeClass;
        bool inOcc = false;
        double occAvailSec = 0.0;
        std::string occClass;
        bool suspendedAny = false;
        bool suspendedIdle = false;
    };

    /**
     * The single choke point keeping every calendar and routing
     * index consistent with shard s's state. Called after each
     * mutation of a shard (park, start, tick, suspend, resume, epoch
     * drain); O(log N) per call.
     */
    void syncShard(std::size_t s);

    /** Re-syncs every shard (run() entry, after the per-run reset). */
    void rebuildCalendar();

    /**
     * The candidate representatives for mixSig: for every pod, the
     * cheapest idle shard of the matching / never-dispatched classes
     * and the cheapest idle shard that would pay a switch — at most
     * two per pod, covering the pod's full candidate cost range —
     * sorted by shard index so a fold over them replays the serial
     * scan's tie-breaks.
     */
    std::vector<int> candidateReps(const std::string& mixSig) const;

    /** As candidateReps, for the occupied (busy or parked) shards:
     *  the earliest-available shard of the matching class and of the
     *  cheapest switching class per pod. */
    std::vector<int> occupiedReps(const std::string& mixSig) const;

    /**
     * The satellite deferral-horizon rule shared by the flat and
     * indexed BestFit paths: deferring to occupied shard s is only
     * allowed while the wait for it (its backlog end) stays within
     * the preemption-style horizon — the shard's next free event
     * (window boundary when replaying, solve-ready when parked) plus
     * one makespan of the deferred mix.
     */
    bool deferralWithinHorizon(std::size_t s,
                               const std::string& mixSig,
                               const Scenario& mix, double nowSec);

    /**
     * The O(pods) BestFit pick over class representatives; same
     * contract as the flat fold in routeDispatch (returns -1 to
     * defer). Only used when preemption is off — urgent traffic and
     * suspended-shard reservations stay on the flat scan.
     */
    int routeIndexed(const std::string& mixSig, const Scenario& mix,
                     double nowSec, bool allowDefer);

    std::vector<ServedModel> catalog_;
    FleetOptions options_;
    std::vector<Mcm> templates_; ///< one per shard
    ThreadPool* pool_;
    std::vector<std::unique_ptr<AsyncScheduleCache>> caches_;
    std::vector<Shard> shards_;
    std::vector<Request> records_;
    std::size_t rrNext_ = 0; ///< round-robin cursor

    // --- Event calendar (see syncShard) ---
    std::vector<ShardIndexKeys> idx_;          ///< one per shard
    std::set<std::pair<double, int>> boundaryQueue_; ///< busy shards
    std::set<std::pair<double, int>> pendingQueue_;  ///< parked shards
    std::set<std::pair<double, int>> busyEndQueue_;  ///< replay ends
    std::set<int> freeShards_; ///< idle, unparked, not suspended
    std::set<std::pair<double, int>> freeByBusy_; ///< (busySec, shard)
    int suspendedCount_ = 0;     ///< shards owing a resume
    int suspendedIdleCount_ = 0; ///< ... of which currently idle

    // --- Hierarchical routing (cluster -> pod -> shard) ---
    std::vector<Pod> pods_;
    std::vector<int> podOf_; ///< shard -> pod

    // --- Epoch engine ---
    ThreadPool* enginePool_ = nullptr; ///< nullptr = inline drain
    std::unique_ptr<ThreadPool> ownedEnginePool_;
    EngineMode engineMode_ = EngineMode::Inline;

    /** Which bound term capped an epoch (per-run statistics; the
     *  order is the attribution priority on exact ties). */
    enum EpochBoundTerm
    {
        kEpochCapReplayEnd = 0, ///< earliest busy replay's final end
        kEpochCapParked,        ///< earliest parked-solve ready
        kEpochCapArrival,       ///< next unabsorbed arrival
        kEpochCapTimer,         ///< batching-timer maturity
        kEpochCapSpeculation,   ///< speculative-solve guard
        kEpochCapUrgency,       ///< next preemption urgency crossing
        kEpochCapJoin,          ///< earliest step-aligned join cut
        kEpochCapRelease,       ///< earliest mid-replay LLM release
        kEpochBoundTermCount,
    };

    /** Per-run epoch-engine statistics (reset by run(); surfaced in
     *  ServingReport and, behind the recorder, obs/ metrics). */
    struct EpochStats
    {
        long epochs = 0;
        long ticks = 0;             ///< boundary ticks committed in epochs
        long commitBatches = 0;     ///< same-shard runs committed as one
        long maxCommitBatch = 0;
        long absorbedArrivals = 0;
        long caps[kEpochBoundTermCount] = {};
    };
    EpochStats epochStats_;

    /** Memoized WindowEvaluator makespan estimates, keyed like the
     *  schedule caches by (mix, package) signature. */
    std::map<std::string, double> makespanEstimates_;
    // Per-run routing-quality accounting (reset by run()).
    long contestedRoutes_ = 0;   ///< dispatches with >= 2 candidates
    long costOptimalRoutes_ = 0; ///< contested picks matching BestFit

    // --- Autoregressive serving (continuous batching) ---
    /** Any catalog entry has LlmProfile::autoregressive set. Gates
     *  every LLM code path (a catalog without LLM entries runs the
     *  pre-LLM event loop byte-for-byte) and arms the epoch engine's
     *  join-cut and mid-replay-release bound terms: decode requeues
     *  and join cuts are event-loop decisions, so the epoch bound
     *  stops strictly before the first boundary where one could
     *  occur and leaves that tick to the serial path. */
    bool llmEnabled_ = false;
    /** In-flight decode rounds (parked or replaying) per catalog
     *  model. Continuous batching dispatches a second concurrent
     *  round for a model only when a full batch of waiters exists;
     *  otherwise waiters join the running stream at its next step
     *  boundary. */
    std::vector<int> llmStreams_;
    // Per-run LLM accounting (reset by run()).
    long llmDecodeRounds_ = 0;
    long llmJoins_ = 0;
    long llmBoardedSum_ = 0; ///< riders across all decode rounds
};

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_FLEET_H
