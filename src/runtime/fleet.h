/**
 * @file
 * Multi-MCM fleet serving: one admission front-end routing batched
 * dispatches across N identical accelerator packages, with
 * asynchronous (future-backed) schedule solves — the step from one
 * package toward the "millions of users" scale of the roadmap.
 *
 * Event loop (one virtual clock across the fleet):
 *  - arrivals enqueue into the shared admission controller;
 *  - when a batch is ready and a shard is free, the dispatch forms
 *    and consults that shard's AsyncScheduleCache: a ready schedule
 *    starts replaying immediately (plus a modeled weight re-staging
 *    overhead when the shard switches mixes); an unsolved mix starts
 *    a background solve and the shard waits until the solve's
 *    *virtual* ready instant — that wait is the reported solve-stall
 *    time;
 *  - when a batch is ready but every shard is busy, the would-be
 *    mix's solve is started speculatively in the background, so the
 *    search overlaps the in-flight replays instead of stalling them
 *    (the PR 1 executor blocked the whole loop here).
 *
 * Routing policies pick the shard for a formed dispatch among the
 * currently idle shards: round-robin (fair rotation), least-loaded
 * (lowest accumulated busy time), or mix-affinity (hash of the mix
 * signature, which concentrates each mix's schedules — and weight
 * residency — on one shard; particularly effective with per-shard
 * caches).
 *
 * Determinism: everything observable (latencies, routing, stall
 * accounting, cache contents) is a function of virtual time only;
 * wall-clock solve speed affects how long run() takes, never what it
 * returns.
 */

#ifndef SCAR_RUNTIME_FLEET_H
#define SCAR_RUNTIME_FLEET_H

#include <memory>
#include <string>
#include <vector>

#include "arch/mcm.h"
#include "common/thread_pool.h"
#include "runtime/admission.h"
#include "runtime/arrival.h"
#include "runtime/async_schedule_cache.h"
#include "runtime/executor.h"
#include "runtime/serving_report.h"
#include "sched/scar.h"

namespace scar
{
namespace runtime
{

/** How a formed dispatch picks among idle shards. */
enum class RoutingPolicy
{
    RoundRobin,  ///< fair rotation over idle shards
    LeastLoaded, ///< idle shard with the least accumulated busy time
    MixAffinity, ///< hash(mix signature) -> shard, fallback least-loaded
};

const char* routingPolicyName(RoutingPolicy policy);

/** Serving-simulation configuration (single package). */
struct ServingOptions
{
    ScarOptions scar;           ///< options for each cache-miss search
    AdmissionOptions admission; ///< batching policy
    /**
     * Modeled virtual latency of one schedule solve (the time the
     * package's host would spend searching). 0 keeps the PR 1
     * semantics: solves are free on the virtual clock and only cost
     * wall time.
     */
    double modeledSolveSec = 0.0;
    /**
     * Modeled weight re-staging overhead charged before a shard
     * starts replaying a different mix than its previous dispatch.
     */
    double switchOverheadSec = 0.0;
    /** LRU capacity per schedule cache (0 = unbounded). */
    std::size_t cacheCapacity = 0;
    /**
     * Worker pool for background solves and the search fan-out
     * inside each solve (not owned); nullptr uses
     * ThreadPool::global().
     */
    ThreadPool* pool = nullptr;
};

/** Fleet-level configuration. */
struct FleetOptions
{
    ServingOptions serving;
    int shards = 1;                ///< identical MCM packages
    RoutingPolicy routing = RoutingPolicy::RoundRobin;
    /**
     * Start a background solve for the would-be mix whenever a batch
     * is ready but every shard is busy, hiding the modeled solve
     * latency behind in-flight replays. Disabling reproduces the
     * PR 1 blocking pipeline: a new mix's search begins only at
     * dispatch time and the shard idles through all of it.
     */
    bool speculativeSolve = true;
    /**
     * One schedule cache shared by every shard (each mix solved
     * once fleet-wide) versus a private cache per shard (mixes
     * re-solved per shard, but no cross-shard coupling — pair with
     * MixAffinity routing to keep each mix on one shard).
     */
    bool sharedCache = true;
};

/** Simulates serving one request stream on a fleet of MCMs. */
class FleetSimulator
{
  public:
    /**
     * @param catalog the served models (traffic profile + SLOs)
     * @param mcm the package template; every shard is a copy
     * @param options fleet + serving knobs
     */
    FleetSimulator(std::vector<ServedModel> catalog, Mcm mcm,
                   FleetOptions options = FleetOptions{});

    /**
     * Serves one request trace to completion and returns the
     * aggregate report (per-shard utilization, solve-stall and
     * switch-overhead totals included). Schedule caches persist
     * across run() calls; the report's cache counters cover this run
     * only.
     */
    ServingReport run(const std::vector<Request>& trace);

    /** Per-request completion records of the most recent run. */
    const std::vector<Request>& records() const { return records_; }

    /** The schedule cache of a shard (all shards share cache 0 when
     *  sharedCache is set). */
    const AsyncScheduleCache& cache(int shard = 0) const;

    int shardCount() const
    {
        return static_cast<int>(shards_.size());
    }

    const std::vector<ServedModel>& catalog() const { return catalog_; }
    const Mcm& mcm() const { return mcm_; }

  private:
    struct Shard
    {
        ReplayExecutor executor;
        AsyncScheduleCache* cache = nullptr;
        // Formed dispatch waiting for its schedule's virtual ready
        // instant (the executor is idle while one is parked here).
        bool hasPending = false;
        Dispatch pending;
        std::string pendingSig;
        double pendingReadySec = 0.0;
        /** Set when the dispatch-time lookup already had the
         *  schedule; spares the join() re-lookup on cache hits. */
        std::shared_ptr<const CachedSchedule> pendingSchedule;
        // Per-run accounting.
        long dispatchesBefore = 0; ///< executor count at run start
        double busyUntilSec = 0.0; ///< end of the current replay
        double busySec = 0.0;
        double solveStallSec = 0.0;
        double switchOverheadSec = 0.0;
        std::string lastSig; ///< mix of the previous replay
    };

    /** Picks the target among idle pending-free shards (-1 = none). */
    int routeDispatch(const std::string& signature);

    /**
     * The cache a speculative solve for this signature lands in: the
     * shared cache, the affinity shard's cache, or — for the other
     * routing policies with per-shard caches — the cache of the busy
     * shard that frees up first, the likeliest dispatch target.
     */
    AsyncScheduleCache& cacheForSpeculation(const std::string& signature);

    std::vector<ServedModel> catalog_;
    Mcm mcm_;
    FleetOptions options_;
    ThreadPool* pool_;
    std::vector<std::unique_ptr<AsyncScheduleCache>> caches_;
    std::vector<Shard> shards_;
    std::vector<Request> records_;
    std::size_t rrNext_ = 0; ///< round-robin cursor
};

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_FLEET_H
