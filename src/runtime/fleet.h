/**
 * @file
 * Multi-MCM fleet serving: one admission front-end routing batched
 * dispatches across N accelerator packages — homogeneous copies of
 * one template or a heterogeneous mix of templates — with
 * asynchronous (future-backed) schedule solves. The step from one
 * package toward the "millions of users" scale of the roadmap.
 *
 * Event loop (one virtual clock across the fleet):
 *  - arrivals enqueue into the shared admission controller;
 *  - when a batch is ready and a shard is free, the dispatch forms
 *    and consults that shard's AsyncScheduleCache: a ready schedule
 *    starts replaying immediately (plus a modeled weight re-staging
 *    overhead when the shard switches mixes); an unsolved mix starts
 *    a background solve and the shard waits until the solve's
 *    *virtual* ready instant — that wait is the reported solve-stall
 *    time;
 *  - when a batch is ready but every shard is busy, the would-be
 *    mix's solve is started speculatively in the background for the
 *    shard the dispatch is predicted to land on, so the search
 *    overlaps the in-flight replays instead of stalling them (the
 *    PR 1 executor blocked the whole loop here). No solve is
 *    launched when the predicted target already holds the schedule;
 *  - boundary preemption (opt-in, PreemptionOptions): when a queued
 *    request's slack shrinks to the threshold while every shard is
 *    occupied, the first in-flight replay to cross a window boundary
 *    is suspended there (executor.h SuspendedReplay), the urgent
 *    models' batch dispatches onto the freed shard, and the
 *    suspended replay resumes from its saved cursor once the shard
 *    quiets down — charged a modeled re-staging overhead on the
 *    virtual clock, never re-solved. A shard parks at most one
 *    suspended replay (no nested preemption), non-urgent dispatches
 *    cannot claim a shard that owes a resume, and a replay already
 *    in its last window is never suspended (preempting there is a
 *    no-op — the shard frees at that boundary anyway).
 *
 * Heterogeneous fleets: FleetOptions::shardTemplates gives each shard
 * its own McmConfig-style package (e.g. an NVDLA-heavy package for
 * GEMM-bound datacenter mixes next to a Shi-diannao-heavy package for
 * early-CNN AR/VR mixes). A schedule is only valid for the package it
 * was searched on, so every cache entry is keyed by
 * (mix signature, Mcm::signature()): different templates never share
 * a schedule, while identical shards behind a shared cache still
 * deduplicate fleet-wide.
 *
 * Routing policies pick the shard for a formed dispatch among the
 * currently idle shards: round-robin (fair rotation), least-loaded
 * (lowest accumulated busy time), mix-affinity (hash of the mix
 * signature, which concentrates each mix's schedules — and weight
 * residency — on one shard), or best-fit (cost-aware: estimated
 * completion instant of the dispatch on each candidate — cached
 * schedule makespan when resident, a WindowEvaluator-based estimate
 * otherwise, plus solve wait and switch overhead — lowest wins, ties
 * fall back to least-loaded). BestFit is what makes a heterogeneous
 * fleet pay off: it sends each mix to the package that executes it
 * fastest instead of to an arbitrary hash bucket.
 *
 * Determinism: everything observable (latencies, routing, stall
 * accounting, cache contents) is a function of virtual time only;
 * wall-clock solve speed affects how long run() takes, never what it
 * returns.
 */

#ifndef SCAR_RUNTIME_FLEET_H
#define SCAR_RUNTIME_FLEET_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/mcm.h"
#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "runtime/admission.h"
#include "runtime/arrival.h"
#include "runtime/async_schedule_cache.h"
#include "runtime/executor.h"
#include "runtime/serving_report.h"
#include "sched/scar.h"

namespace scar
{
namespace runtime
{

/** How a formed dispatch picks among idle shards. */
enum class RoutingPolicy
{
    RoundRobin,  ///< fair rotation over idle shards
    LeastLoaded, ///< idle shard with the least accumulated busy time
    MixAffinity, ///< hash(mix signature) -> shard, fallback least-loaded
    /**
     * Cost-aware: every shard — idle or occupied — is scored by the
     * estimated completion time of this dispatch on it: current
     * backlog (replay end / parked-solve end) + switch overhead +
     * solve wait + schedule makespan (cached, or a cheap
     * window-evaluator estimate), with least-loaded tie-breaking.
     * The dispatch goes to the cheapest idle shard; when an occupied
     * shard is strictly cheaper (its backlog wait is smaller than
     * the other package's makespan handicap), the dispatch is
     * *deferred* until that shard frees up. The only policy that
     * consults the cost model instead of queue depths — essential on
     * heterogeneous fleets, where deferral keeps slow-on-this-mix
     * packages free for the traffic they are good at.
     */
    BestFit,
};

const char* routingPolicyName(RoutingPolicy policy);

/**
 * Request-level boundary-preemption knobs.
 *
 * AR/VR frame deadlines are an order of magnitude tighter than
 * datacenter SLOs; without preemption a 20 fps request landing behind
 * a long datacenter replay waits the full remaining makespan and
 * blows its deadline. With preemption enabled, a replay is suspended
 * at its next window boundary whenever a queued request's slack falls
 * to the threshold and no shard is free, the urgent batch runs, and
 * the suspended replay resumes from its cursor.
 */
struct PreemptionOptions
{
    /** Master switch. Disabled reproduces the non-preemptive runtime
     *  bit-for-bit (the urgency checks are never evaluated). */
    bool enabled = false;
    /**
     * A queued request is urgent once its slack (deadline - now) is
     * at or below this, in seconds. Larger values preempt earlier
     * (safer for the urgent request, more disruption); 0 preempts
     * only at the deadline instant itself.
     */
    double slackThresholdSec = 0.02;
    /**
     * Modeled weight re-staging charged on the virtual clock when a
     * suspended replay resumes — the preemption analogue of
     * ServingOptions::switchOverheadSec (the urgent dispatch itself
     * pays the ordinary switch overhead on the way in).
     */
    double resumeOverheadSec = 0.0;
};

/** Serving-simulation configuration (single package). */
struct ServingOptions
{
    ScarOptions scar;           ///< options for each cache-miss search
    AdmissionOptions admission; ///< batching policy
    /**
     * Modeled virtual latency of one schedule solve (the time the
     * package's host would spend searching). 0 keeps the PR 1
     * semantics: solves are free on the virtual clock and only cost
     * wall time.
     */
    double modeledSolveSec = 0.0;
    /**
     * Modeled weight re-staging overhead charged before a shard
     * starts replaying a different mix than its previous dispatch.
     */
    double switchOverheadSec = 0.0;
    /** LRU capacity per schedule cache (0 = unbounded). */
    std::size_t cacheCapacity = 0;
    /** Request-level boundary preemption (off by default). */
    PreemptionOptions preemption;
    /**
     * Worker pool for background solves and the search fan-out
     * inside each solve (not owned); nullptr uses
     * ThreadPool::global().
     */
    ThreadPool* pool = nullptr;
};

/** Fleet-level configuration. */
struct FleetOptions
{
    ServingOptions serving;
    int shards = 1;                ///< MCM packages (copies of the
                                   ///< constructor template when
                                   ///< shardTemplates is empty)
    RoutingPolicy routing = RoutingPolicy::RoundRobin;
    /**
     * Per-shard package templates for a heterogeneous fleet. Empty
     * (the default) keeps the homogeneous behavior: `shards` copies
     * of the constructor's template. Non-empty overrides the fleet
     * size — one shard per listed template (`shards` must then be
     * left at 1 or match the template count). Every template must
     * offer at least as many chiplets as the catalog has models.
     */
    std::vector<Mcm> shardTemplates;
    /**
     * Start a background solve for the would-be mix whenever a batch
     * is ready but every shard is busy, hiding the modeled solve
     * latency behind in-flight replays. The solve targets the shard
     * the dispatch is predicted to land on and is skipped when that
     * shard's cache already holds (or is already solving) the
     * schedule. Disabling reproduces the PR 1 blocking pipeline: a
     * new mix's search begins only at dispatch time and the shard
     * idles through all of it.
     */
    bool speculativeSolve = true;
    /**
     * BestFit only: allow deferring a dispatch when an occupied
     * shard's projected completion beats every idle candidate
     * (waiting for the right package instead of starting sooner on
     * the wrong one). Deferral helps steady traffic whose package
     * gaps exceed typical backlog waits, but while a batch waits it
     * keeps absorbing new arrivals — under bursty phase changes that
     * capture effect can cost more than the better package saves, so
     * it is toggleable. Ignored by the other routing policies.
     */
    bool bestFitDefer = true;
    /**
     * One schedule cache shared by every shard (each (mix, package)
     * pair solved once fleet-wide) versus a private cache per shard
     * (pairs re-solved per shard, but no cross-shard coupling — pair
     * with MixAffinity routing to keep each mix on one shard).
     * Entries are keyed by (mix signature, package signature) either
     * way, so heterogeneous templates never alias.
     */
    bool sharedCache = true;
    /**
     * Flight recorder for this fleet (not owned; nullptr disables all
     * observability). When set, run() records the full per-request
     * lifecycle (arrival -> queue -> dispatch -> replay windows ->
     * completion/preemption) as virtual-time trace events, bumps the
     * metrics registry, and samples queue depth / shard busyness /
     * cache hit rate on the recorder's fixed virtual interval.
     * Recording never changes a run's observable behavior: every hook
     * sits behind the null check, and the trace is a pure function of
     * virtual time, so it is byte-identical at any solver thread
     * count. One recorder should observe one run at a time — run()
     * resets the sampler and assumes the trace starts at t = 0.
     */
    obs::FlightRecorder* recorder = nullptr;
};

/** Simulates serving one request stream on a fleet of MCMs. */
class FleetSimulator
{
  public:
    /**
     * @param catalog the served models (traffic profile + SLOs)
     * @param mcm the package template; every shard is a copy unless
     *        options.shardTemplates assigns per-shard packages
     * @param options fleet + serving knobs
     */
    FleetSimulator(std::vector<ServedModel> catalog, Mcm mcm,
                   FleetOptions options = FleetOptions{});

    /**
     * Serves one request trace to completion and returns the
     * aggregate report (per-shard utilization, solve-stall and
     * switch-overhead totals included). Schedule caches persist
     * across run() calls; the report's cache counters cover this run
     * only.
     */
    ServingReport run(const std::vector<Request>& trace);

    /** Per-request completion records of the most recent run. */
    const std::vector<Request>& records() const { return records_; }

    /** The schedule cache of a shard (all shards share cache 0 when
     *  sharedCache is set). */
    const AsyncScheduleCache& cache(int shard = 0) const;

    int shardCount() const
    {
        return static_cast<int>(shards_.size());
    }

    const std::vector<ServedModel>& catalog() const { return catalog_; }

    /** The package template of a shard (shard 0 by default, which is
     *  the constructor template in a homogeneous fleet). */
    const Mcm& mcm(int shard = 0) const;

    /**
     * The completion-cost estimate BestFit uses for a mix on a
     * shard's package when no solved schedule is resident: a
     * single-window WindowEvaluator pass over a trivial one-segment-
     * per-model placement, in seconds. Deterministic, memoized per
     * (mix, package) signature pair. Exposed for tests and for
     * offline what-if tooling.
     */
    double estimateMakespanSec(int shard, const Scenario& mix);

  private:
    struct Shard
    {
        ReplayExecutor executor;
        AsyncScheduleCache* cache = nullptr;
        // Formed dispatch waiting for its schedule's virtual ready
        // instant (the executor is idle while one is parked here).
        bool hasPending = false;
        Dispatch pending;
        std::string pendingKey; ///< (mix, package) cache key
        double pendingReadySec = 0.0;
        /** Projected end of the parked dispatch's replay (solve
         *  ready + switch + makespan or its estimate): the backlog
         *  proxy BestFit charges for a parked shard. */
        double pendingEndSec = 0.0;
        /** Set when the dispatch-time lookup already had the
         *  schedule; spares the join() re-lookup on cache hits. */
        std::shared_ptr<const CachedSchedule> pendingSchedule;
        // A replay suspended at a window boundary, waiting to resume
        // once the shard quiets down. At most one per shard; a shard
        // owing a resume only accepts *urgent* dispatches until the
        // suspended replay has finished.
        bool hasSuspended = false;
        SuspendedReplay suspended;
        std::string suspendedKey; ///< (mix, package) key of the suspended replay
        // Per-run accounting.
        long dispatchesBefore = 0; ///< executor count at run start
        double busyUntilSec = 0.0; ///< end of the current replay
        double busySec = 0.0;
        double solveStallSec = 0.0;
        double switchOverheadSec = 0.0;
        long preemptions = 0;
        double resumeOverheadSec = 0.0;
        std::string lastKey; ///< (mix, package) key of the previous replay
        /** Trace bookkeeping: start instant of the window currently
         *  replaying (the span start when the next boundary ticks). */
        double traceWindowStartSec = 0.0;
    };

    /** The (mix signature, package signature) key of shard s. */
    std::string cacheKey(const std::string& mixSig,
                         std::size_t shard) const;

    /** estimateMakespanSec with the (mix, package) memo key already
     *  derived — the internal fast path: every runtime caller holds
     *  the key it just used against the schedule cache. */
    double estimateMakespanKeyed(const std::string& key,
                                 std::size_t shard,
                                 const Scenario& mix);

    /**
     * BestFit's completion-cost estimate for dispatching the mix on
     * shard s at nowSec: availability wait + switch overhead + solve
     * wait + makespan (cached when resident, estimated otherwise).
     * With `urgent` set and preemption enabled, a busy shard is
     * charged only the wait to its next window boundary — the instant
     * boundary preemption would free it — instead of its full replay
     * backlog, so cost-aware decisions (speculation targeting,
     * deferral) see the same completion instants the preemptive
     * executor will actually deliver. A shard owing a resume is
     * additionally charged the resume overhead plus the suspended
     * replay's remaining windows for non-urgent traffic.
     */
    double dispatchCostSec(std::size_t shard,
                           const std::string& mixSig,
                           const Scenario& mix, double nowSec,
                           bool urgent);

    /**
     * Picks the target among idle pending-free shards (for urgent
     * dispatches, shards parking a suspended replay qualify too —
     * they are reserved *against non-urgent* claims only). Returns -1
     * when there is no idle candidate — or, under BestFit with
     * allowDefer, when an occupied shard's projected completion
     * beats every idle candidate and the dispatch should wait for it
     * (the caller defers: the queue is left intact and re-routed on
     * the next event). Deferral is a latency play and only sound
     * while the queue fits in this one dispatch; under overflow the
     * caller passes allowDefer = false so every package keeps
     * contributing throughput.
     */
    int routeDispatch(const std::string& mixSig, const Scenario& mix,
                      double nowSec, bool allowDefer, bool urgent);

    /**
     * The shard a speculative solve for this mix should warm: the
     * affinity shard (MixAffinity), the cost-cheapest shard counting
     * availability waits (BestFit), or the busy shard that frees up
     * first — the likeliest dispatch target — otherwise. For an
     * urgent mix the cost model sees boundary-preemption waits, so
     * the predicted target is the replay the preemptor will actually
     * suspend. Returns -1 when the predicted target's cache already
     * holds or is already solving the (mix, package) schedule, so no
     * background solve is wasted re-deriving a resident schedule
     * (previously only the shared-cache configuration was protected
     * against this).
     */
    int speculationTarget(const std::string& mixSig,
                          const Scenario& mix, double nowSec,
                          bool urgent);

    /**
     * Restarts a shard's suspended replay at nowSec plus the modeled
     * resume overhead, restoring the busy/accounting state suspension
     * subtracted. Requires an idle shard with a parked replay.
     */
    void resumeSuspended(Shard& shard, double nowSec);

    std::vector<ServedModel> catalog_;
    FleetOptions options_;
    std::vector<Mcm> templates_; ///< one per shard
    ThreadPool* pool_;
    std::vector<std::unique_ptr<AsyncScheduleCache>> caches_;
    std::vector<Shard> shards_;
    std::vector<Request> records_;
    std::size_t rrNext_ = 0; ///< round-robin cursor
    /** Memoized WindowEvaluator makespan estimates, keyed like the
     *  schedule caches by (mix, package) signature. */
    std::map<std::string, double> makespanEstimates_;
    // Per-run routing-quality accounting (reset by run()).
    long contestedRoutes_ = 0;   ///< dispatches with >= 2 candidates
    long costOptimalRoutes_ = 0; ///< contested picks matching BestFit
};

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_FLEET_H
