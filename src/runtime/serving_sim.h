/**
 * @file
 * Online serving simulator: the top-level runtime loop that turns the
 * offline Scar facade into a streaming backend.
 *
 * The discrete-event loop interleaves three event sources on one
 * virtual clock:
 *  - request arrivals (the input trace, runtime/arrival.h);
 *  - batching timers (admission's forced-dispatch deadline);
 *  - window boundaries of the dispatch currently replaying.
 *
 * Whenever the MCM is free and the admission controller has a ready
 * batch, the queued requests are drained into a dispatch, its mix is
 * resolved through the schedule cache (Scar::run only on a new mix
 * signature), and the cached schedule replays window-by-window on the
 * executor. Completed requests accumulate per-request records from
 * which the ServingReport is summarized.
 */

#ifndef SCAR_RUNTIME_SERVING_SIM_H
#define SCAR_RUNTIME_SERVING_SIM_H

#include <vector>

#include "arch/mcm.h"
#include "runtime/admission.h"
#include "runtime/arrival.h"
#include "runtime/executor.h"
#include "runtime/schedule_cache.h"
#include "runtime/serving_report.h"
#include "sched/scar.h"

namespace scar
{
namespace runtime
{

/** Serving-simulation configuration. */
struct ServingOptions
{
    ScarOptions scar;           ///< options for each cache-miss search
    AdmissionOptions admission; ///< batching policy
};

/** Simulates serving a request stream on one MCM. */
class ServingSimulator
{
  public:
    /**
     * @param catalog the served models (traffic profile + SLOs); each
     *        model's batch is the maximum dispatched batch size
     * @param mcm the accelerator; copied, shared by every schedule
     * @param options scheduler + batching knobs
     */
    ServingSimulator(std::vector<ServedModel> catalog, Mcm mcm,
                     ServingOptions options = ServingOptions{});

    /**
     * Serves one request trace to completion (every request admitted
     * and executed) and returns the aggregate report. The schedule
     * cache persists across run() calls, so a second run over the
     * same traffic pattern is served entirely from cache; the
     * returned report's cache counters cover this run only.
     */
    ServingReport run(const std::vector<Request>& trace);

    /** Per-request completion records of the most recent run. */
    const std::vector<Request>& records() const { return records_; }

    /** The (persistent) schedule cache. */
    const ScheduleCache& cache() const { return cache_; }

    const std::vector<ServedModel>& catalog() const { return catalog_; }
    const Mcm& mcm() const { return mcm_; }

  private:
    std::vector<ServedModel> catalog_;
    Mcm mcm_;
    ServingOptions options_;
    ScheduleCache cache_;
    std::vector<Request> records_;
};

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_SERVING_SIM_H
