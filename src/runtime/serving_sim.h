/**
 * @file
 * Online serving simulator: the top-level runtime loop that turns the
 * offline Scar facade into a streaming backend.
 *
 * Since the fleet refactor this is a thin facade over FleetSimulator
 * with a single shard: one admission controller, one replay executor,
 * and an asynchronous schedule cache whose misses solve on the worker
 * pool instead of blocking the event loop (runtime/fleet.h documents
 * the loop; runtime/async_schedule_cache.h the virtual/wall clock
 * split). With the default options — no modeled solve latency, no
 * switch overhead, unbounded cache — the virtual-time behavior is
 * exactly the original blocking simulator's.
 *
 * Request-level boundary preemption is available through
 * ServingOptions::preemption: with it enabled, a queued request whose
 * slack shrinks to the threshold suspends the in-flight replay at its
 * next window boundary, runs as an urgent dispatch, and the suspended
 * replay resumes from its saved cursor (runtime/executor.h). The
 * default — disabled — reproduces the non-preemptive runtime
 * bit-for-bit.
 *
 * For multiple packages, heterogeneous per-shard templates, routing
 * policies (including the cost-aware BestFit), or per-shard caches,
 * use FleetSimulator directly.
 */

#ifndef SCAR_RUNTIME_SERVING_SIM_H
#define SCAR_RUNTIME_SERVING_SIM_H

#include <vector>

#include "arch/mcm.h"
#include "runtime/fleet.h"

namespace scar
{
namespace runtime
{

/** Simulates serving a request stream on one MCM. */
class ServingSimulator
{
  public:
    /**
     * @param catalog the served models (traffic profile + SLOs); each
     *        model's batch is the maximum dispatched batch size
     * @param mcm the accelerator; copied, shared by every schedule
     * @param options scheduler + batching + async-solve knobs
     */
    ServingSimulator(std::vector<ServedModel> catalog, Mcm mcm,
                     ServingOptions options = ServingOptions{});

    /**
     * Serves one request trace to completion (every request admitted
     * and executed) and returns the aggregate report. The schedule
     * cache persists across run() calls, so a second run over the
     * same traffic pattern is served entirely from cache; the
     * returned report's cache counters cover this run only.
     */
    ServingReport run(const std::vector<Request>& trace);

    /** Per-request completion records of the most recent run. */
    const std::vector<Request>& records() const
    {
        return fleet_.records();
    }

    /** The (persistent) schedule cache. */
    const AsyncScheduleCache& cache() const { return fleet_.cache(); }

    const std::vector<ServedModel>& catalog() const
    {
        return fleet_.catalog();
    }
    const Mcm& mcm() const { return fleet_.mcm(); }

  private:
    static FleetOptions singleShard(ServingOptions options);

    FleetSimulator fleet_;
};

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_SERVING_SIM_H
