#include "runtime/executor.h"

#include "common/error.h"

namespace scar
{
namespace runtime
{

void
ReplayExecutor::start(std::shared_ptr<const CachedSchedule> schedule,
                      Dispatch dispatch, double startSec)
{
    SCAR_REQUIRE(!busy_, "executor: start while a dispatch is running");
    SCAR_REQUIRE(schedule != nullptr, "executor: start without schedule");
    SCAR_REQUIRE(schedule->mix.models.size() ==
                     dispatch.mix.models.size(),
                 "executor: schedule/dispatch mix arity mismatch");
    SCAR_REQUIRE(!schedule->windowSec.empty(),
                 "executor: schedule has no windows");
    busy_ = true;
    schedule_ = std::move(schedule);
    dispatch_ = std::move(dispatch);
    window_ = 0;
    windowEndSec_ = startSec + schedule_->windowSec.front();
    ++dispatches_;
    for (BatchGroup& group : dispatch_.groups) {
        for (Request& req : group.requests)
            req.dispatchSec = startSec;
    }
}

double
ReplayExecutor::nextBoundarySec() const
{
    SCAR_REQUIRE(busy_, "executor: nextBoundarySec while idle");
    return windowEndSec_;
}

WindowTick
ReplayExecutor::advance()
{
    SCAR_REQUIRE(busy_, "executor: advance while idle");
    WindowTick tick;
    tick.timeSec = windowEndSec_;
    tick.windowIdx = static_cast<int>(window_);

    // A dispatch group's model index within the mix equals its
    // position: formDispatch builds mix.models and groups in lockstep.
    for (std::size_t m = 0; m < dispatch_.groups.size(); ++m) {
        if (schedule_->lastWindow[m] != static_cast<int>(window_))
            continue;
        for (Request req : dispatch_.groups[m].requests) {
            req.completionSec = windowEndSec_;
            tick.completed.push_back(req);
        }
    }

    ++window_;
    if (window_ == schedule_->windowSec.size()) {
        tick.dispatchDone = true;
        busy_ = false;
        schedule_.reset();
    } else {
        windowEndSec_ += schedule_->windowSec[window_];
    }
    return tick;
}

} // namespace runtime
} // namespace scar
