#include "runtime/executor.h"

#include <limits>

#include "common/error.h"

namespace scar
{
namespace runtime
{

void
ReplayExecutor::start(std::shared_ptr<const CachedSchedule> schedule,
                      Dispatch dispatch, double startSec)
{
    SCAR_REQUIRE(!busy_, "executor: start while a dispatch is running");
    SCAR_REQUIRE(schedule != nullptr, "executor: start without schedule");
    SCAR_REQUIRE(schedule->mix.models.size() ==
                     dispatch.mix.models.size(),
                 "executor: schedule/dispatch mix arity mismatch");
    SCAR_REQUIRE(!schedule->windowSec.empty(),
                 "executor: schedule has no windows");
    busy_ = true;
    schedule_ = std::move(schedule);
    dispatch_ = std::move(dispatch);
    window_ = 0;
    windowEndSec_ = startSec + schedule_->windowSec.front();
    // Replicate advance()'s rounding sequence exactly: the final
    // boundary must equal the windowEndSec_ the last advance() will
    // report, bit for bit.
    finalBoundarySec_ = windowEndSec_;
    for (std::size_t w = 1; w < schedule_->windowSec.size(); ++w)
        finalBoundarySec_ += schedule_->windowSec[w];
    ++dispatches_;
    for (BatchGroup& group : dispatch_.groups) {
        for (Request& req : group.requests) {
            // Only the first boarding stamps the dispatch instant: an
            // LLM request re-dispatched for later decode rounds keeps
            // its original queue-wait accounting.
            if (req.dispatchSec < 0.0)
                req.dispatchSec = startSec;
        }
    }
}

const Dispatch&
ReplayExecutor::dispatch() const
{
    SCAR_REQUIRE(busy_, "executor: dispatch() while idle");
    return dispatch_;
}

double
ReplayExecutor::nextBoundarySec() const
{
    SCAR_REQUIRE(busy_, "executor: nextBoundarySec while idle");
    return windowEndSec_;
}

double
ReplayExecutor::finalBoundarySec() const
{
    SCAR_REQUIRE(busy_, "executor: finalBoundarySec while idle");
    return finalBoundarySec_;
}

WindowTick
ReplayExecutor::advance()
{
    SCAR_REQUIRE(busy_, "executor: advance while idle");
    WindowTick tick;
    tick.timeSec = windowEndSec_;
    tick.windowIdx = static_cast<int>(window_);

    // A dispatch group's model index within the mix equals its
    // position: formDispatch builds mix.models and groups in lockstep.
    for (std::size_t m = 0; m < dispatch_.groups.size(); ++m) {
        if (schedule_->lastWindow[m] != static_cast<int>(window_))
            continue;
        for (Request req : dispatch_.groups[m].requests) {
            req.completionSec = windowEndSec_;
            tick.completed.push_back(req);
        }
    }

    ++window_;
    if (window_ == schedule_->windowSec.size()) {
        tick.dispatchDone = true;
        busy_ = false;
        schedule_.reset();
    } else {
        windowEndSec_ += schedule_->windowSec[window_];
    }
    return tick;
}

std::size_t
ReplayExecutor::drainUntil(double boundSec,
                           std::vector<WindowTick>& out)
{
    std::size_t ticks = 0;
    while (busy_ && windowEndSec_ < boundSec) {
        out.push_back(advance());
        ++ticks;
    }
    return ticks;
}

double
ReplayExecutor::boundaryInstantSec(std::size_t j) const
{
    double t = windowEndSec_;
    for (std::size_t w = window_ + 1; w <= j; ++w)
        t += schedule_->windowSec[w];
    return t;
}

double
ReplayExecutor::nextStepBoundarySec(int windowsPerStep) const
{
    SCAR_REQUIRE(busy_, "executor: nextStepBoundarySec while idle");
    SCAR_REQUIRE(windowsPerStep > 0,
                 "executor: non-positive step grid");
    const std::size_t step = static_cast<std::size_t>(windowsPerStep);
    const std::size_t n = schedule_->windowSec.size();
    double t = windowEndSec_;
    // Walk boundary instants forward on advance()'s accumulated
    // clock; the final boundary (w == n - 1) is dispatchDone, not a
    // cut point, so the loop excludes it.
    for (std::size_t w = window_; w + 1 < n; ++w) {
        if ((w + 1) % step == 0)
            return t;
        t += schedule_->windowSec[w + 1];
    }
    return std::numeric_limits<double>::infinity();
}

std::size_t
ReplayExecutor::windowsRemaining() const
{
    SCAR_REQUIRE(busy_, "executor: windowsRemaining while idle");
    return schedule_->windowSec.size() - window_;
}

SuspendedReplay
ReplayExecutor::suspend(bool markPreempted)
{
    SCAR_REQUIRE(busy_, "executor: suspend while idle");
    SuspendedReplay replay;
    replay.window = window_;
    for (std::size_t w = window_; w < schedule_->windowSec.size(); ++w)
        replay.remainingSec += schedule_->windowSec[w];
    // Requests whose model already completed (lastWindow < window_)
    // left through earlier ticks; everything still riding is
    // preempted.
    if (markPreempted) {
        for (std::size_t m = 0; m < dispatch_.groups.size(); ++m) {
            if (schedule_->lastWindow[m] <
                static_cast<int>(window_))
                continue;
            for (Request& req : dispatch_.groups[m].requests)
                req.preempted = true;
        }
    }
    replay.schedule = std::move(schedule_);
    replay.dispatch = std::move(dispatch_);
    busy_ = false;
    window_ = 0;
    windowEndSec_ = 0.0;
    return replay;
}

void
ReplayExecutor::resume(SuspendedReplay replay, double startSec)
{
    SCAR_REQUIRE(!busy_, "executor: resume while a dispatch is running");
    SCAR_REQUIRE(replay.schedule != nullptr,
                 "executor: resume without a suspended schedule");
    SCAR_REQUIRE(replay.window < replay.schedule->windowSec.size(),
                 "executor: resume cursor past the last window");
    busy_ = true;
    schedule_ = std::move(replay.schedule);
    dispatch_ = std::move(replay.dispatch);
    window_ = replay.window;
    windowEndSec_ = startSec + schedule_->windowSec[window_];
    finalBoundarySec_ = windowEndSec_;
    for (std::size_t w = window_ + 1; w < schedule_->windowSec.size();
         ++w)
        finalBoundarySec_ += schedule_->windowSec[w];
}

} // namespace runtime
} // namespace scar
