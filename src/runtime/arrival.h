/**
 * @file
 * Request stream generation: deterministic-seeded Poisson arrivals per
 * catalog model, and trace-driven arrivals for replaying recorded
 * traffic.
 *
 * Poisson streams draw exponential inter-arrival gaps per model (rate
 * = ServedModel::rateRps) from one seeded Rng and merge the per-model
 * streams in time order, so a (catalog, seed, count) triple always
 * yields the identical trace — experiments are reproducible from the
 * seed recorded in the logs, matching the determinism convention of
 * common/rng.h.
 */

#ifndef SCAR_RUNTIME_ARRIVAL_H
#define SCAR_RUNTIME_ARRIVAL_H

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/request.h"

namespace scar
{
namespace runtime
{

/**
 * Generates a merged Poisson request trace over the catalog.
 *
 * @param catalog served models; rateRps must be > 0 for every model
 * @param numRequests total requests across all models
 * @param seed Rng seed; same (catalog, numRequests, seed) -> same trace
 * @return requests sorted by arrival time with ids 0..numRequests-1
 *         and deadlines set from each model's sloSec
 */
std::vector<Request> poissonTrace(const std::vector<ServedModel>& catalog,
                                  int numRequests,
                                  std::uint64_t seed = 0xC0FFEEuLL);

/**
 * Builds a request trace from explicit (arrivalSec, modelIdx) pairs,
 * e.g. replayed from a recorded production trace. Arrivals are sorted
 * by time; deadlines come from the catalog SLOs.
 */
std::vector<Request> traceFromArrivals(
    const std::vector<ServedModel>& catalog,
    std::vector<std::pair<double, int>> arrivals);

/**
 * Chat-style autoregressive trace: poissonTrace arrivals, plus per
 * request a prompt length and a target output length drawn from each
 * LLM model's LlmProfile. Prompt lengths are uniform on
 * [1, maxPromptTokens] biased toward meanPromptTokens (mean of two
 * uniform draws, clamped); output lengths are geometric with mean
 * meanOutputTokens capped at maxOutputTokens — the long-tail length
 * mix where continuous batching beats batch-and-replay. Requests of
 * non-autoregressive catalog entries pass through untouched. The
 * token draws use a stream split from the seed, so the arrival
 * pattern is identical to poissonTrace(catalog, numRequests, seed).
 */
std::vector<Request> llmPoissonTrace(
    const std::vector<ServedModel>& catalog, int numRequests,
    std::uint64_t seed = 0xC0FFEEuLL);

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_ARRIVAL_H
