/**
 * @file
 * Request stream generation: deterministic-seeded Poisson arrivals per
 * catalog model, and trace-driven arrivals for replaying recorded
 * traffic.
 *
 * Poisson streams draw exponential inter-arrival gaps per model (rate
 * = ServedModel::rateRps) from one seeded Rng and merge the per-model
 * streams in time order, so a (catalog, seed, count) triple always
 * yields the identical trace — experiments are reproducible from the
 * seed recorded in the logs, matching the determinism convention of
 * common/rng.h.
 */

#ifndef SCAR_RUNTIME_ARRIVAL_H
#define SCAR_RUNTIME_ARRIVAL_H

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/request.h"

namespace scar
{
namespace runtime
{

/**
 * Generates a merged Poisson request trace over the catalog.
 *
 * @param catalog served models; rateRps must be > 0 for every model
 * @param numRequests total requests across all models
 * @param seed Rng seed; same (catalog, numRequests, seed) -> same trace
 * @return requests sorted by arrival time with ids 0..numRequests-1
 *         and deadlines set from each model's sloSec
 */
std::vector<Request> poissonTrace(const std::vector<ServedModel>& catalog,
                                  int numRequests,
                                  std::uint64_t seed = 0xC0FFEEuLL);

/**
 * Builds a request trace from explicit (arrivalSec, modelIdx) pairs,
 * e.g. replayed from a recorded production trace. Arrivals are sorted
 * by time; deadlines come from the catalog SLOs.
 */
std::vector<Request> traceFromArrivals(
    const std::vector<ServedModel>& catalog,
    std::vector<std::pair<double, int>> arrivals);

} // namespace runtime
} // namespace scar

#endif // SCAR_RUNTIME_ARRIVAL_H
