#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>

#include "common/error.h"

namespace scar
{

ThreadPool::ThreadPool(int concurrency)
{
    if (concurrency <= 0)
        concurrency = defaultConcurrency();
    SCAR_REQUIRE(concurrency >= 1, "thread pool concurrency must be >= 1");
    workers_.reserve(concurrency - 1);
    for (int w = 0; w + 1 < concurrency; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

int
ThreadPool::defaultConcurrency()
{
    if (const char* env = std::getenv("SCAR_THREADS")) {
        const int v = std::atoi(env);
        if (v >= 1)
            return v;
    }
#ifdef SCAR_DEFAULT_THREADS
    if (SCAR_DEFAULT_THREADS >= 1)
        return SCAR_DEFAULT_THREADS;
#endif
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : static_cast<int>(hw);
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool(defaultConcurrency());
    return pool;
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    /**
     * Shared loop state. Tasks claim indices from `next`; a late task
     * that starts after the loop finished claims nothing and only
     * touches this control block (kept alive by shared_ptr), never
     * the caller-owned body.
     */
    struct Ctl
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::size_t total = 0;
        const std::function<void(std::size_t)>* body = nullptr;
        std::mutex mu;
        std::condition_variable cv;
        std::exception_ptr error; ///< first failure wins (guarded by mu)
    };
    auto ctl = std::make_shared<Ctl>();
    ctl->total = n;
    ctl->body = &body;

    const auto work = [](const std::shared_ptr<Ctl>& c) {
        for (;;) {
            const std::size_t i = c->next.fetch_add(1);
            if (i >= c->total)
                break;
            try {
                (*c->body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(c->mu);
                if (!c->error)
                    c->error = std::current_exception();
            }
            if (c->done.fetch_add(1) + 1 == c->total) {
                std::lock_guard<std::mutex> lock(c->mu);
                c->cv.notify_all();
            }
        }
    };

    const std::size_t helpers = std::min(workers_.size(), n - 1);
    for (std::size_t h = 0; h < helpers; ++h)
        enqueue([ctl, work] { work(ctl); });
    work(ctl);

    std::unique_lock<std::mutex> lock(ctl->mu);
    ctl->cv.wait(lock,
                 [&] { return ctl->done.load() >= ctl->total; });
    if (ctl->error)
        std::rethrow_exception(ctl->error);
}

} // namespace scar
