/**
 * @file
 * Minimal leveled logger for scheduler progress and diagnostics.
 *
 * Follows gem5's message taxonomy: inform() for normal status, warn()
 * for suspicious-but-survivable conditions, error() for failures the
 * caller handles. Verbosity is a process-wide setting so benches can
 * silence search progress; the SCAR_LOG_LEVEL environment variable
 * (error/warn/info/debug/silent) selects the initial level, applied
 * once on first logger use and overridable by setLogLevel().
 */

#ifndef SCAR_COMMON_LOGGING_H
#define SCAR_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace scar
{

/** Severity levels, in increasing order of importance. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Silent = 4
};

/** Sets the global minimum level that is actually printed. */
void setLogLevel(LogLevel level);

/** Returns the current global log level. */
LogLevel logLevel();

/**
 * Parses a level name ("debug", "info", "warn", "error", "silent",
 * case-insensitive) into `out`.
 * @return false — leaving `out` untouched — on any other input
 */
bool parseLogLevel(const std::string& text, LogLevel& out);

/**
 * Re-reads SCAR_LOG_LEVEL and applies it. Called automatically once
 * on first logger use; exposed so tests and long-lived embedders can
 * re-apply a changed environment.
 * @return true when the variable was set to a valid level name
 */
bool applyLogLevelFromEnv();

namespace detail
{

void logMessage(LogLevel level, const std::string& msg);

template <typename... Args>
void
logFormatted(LogLevel level, Args&&... args)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::ostringstream oss;
    (oss << ... << args);
    logMessage(level, oss.str());
}

} // namespace detail

/** Logs a debug-level message (hidden by default). */
template <typename... Args>
void
debug(Args&&... args)
{
    detail::logFormatted(LogLevel::Debug, std::forward<Args>(args)...);
}

/** Logs an informational status message. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::logFormatted(LogLevel::Info, std::forward<Args>(args)...);
}

/** Logs a warning about a suspicious but non-fatal condition. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::logFormatted(LogLevel::Warn, std::forward<Args>(args)...);
}

/** Logs an error the caller survives (panics abort instead). */
template <typename... Args>
void
error(Args&&... args)
{
    detail::logFormatted(LogLevel::Error, std::forward<Args>(args)...);
}

} // namespace scar

#endif // SCAR_COMMON_LOGGING_H
