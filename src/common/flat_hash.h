/**
 * @file
 * Minimal open-addressing hash map for the search hot path.
 *
 * The per-window search memoizes millions of small lookups (solo
 * segment costs, path enumerations) whose keys are short integer
 * sequences. `std::map` pays an ordered-tree walk with a full
 * lexicographic key comparison per node; `FlatHashMap` stores entries
 * in one flat array with linear probing, so a hit costs one hash and
 * (almost always) one probe. The map only grows — the memoization
 * caches never erase — which keeps probing tombstone-free.
 *
 * Not a general-purpose container: no erase, no iteration order
 * guarantees, keys and values must be movable. Determinism note: the
 * caches built on this map store values that are pure functions of
 * their key, so lookup/insertion order (and therefore thread
 * interleaving) can never change what a query returns.
 */

#ifndef SCAR_COMMON_FLAT_HASH_H
#define SCAR_COMMON_FLAT_HASH_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace scar
{

/** splitmix64 finalizer: the 64-bit avalanche used for all hashing. */
inline std::uint64_t
mixBits(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15uLL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9uLL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebuLL;
    return x ^ (x >> 31);
}

/** Hash for small integer-sequence keys (e.g. std::vector<int>). */
struct IntSequenceHash
{
    template <typename Seq>
    std::uint64_t
    operator()(const Seq& seq) const
    {
        std::uint64_t h = mixBits(static_cast<std::uint64_t>(seq.size()));
        for (const auto v : seq)
            h = mixBits(h ^ static_cast<std::uint64_t>(
                                static_cast<std::int64_t>(v)));
        return h;
    }
};

/**
 * Open-addressing (linear probing) hash map with power-of-two
 * capacity. Insert-only; rehashes at 7/8 load.
 */
template <typename Key, typename Value, typename Hash>
class FlatHashMap
{
  public:
    FlatHashMap() = default;

    std::size_t size() const { return size_; }

    /** Pointer to the value for `key`, or nullptr when absent. */
    const Value*
    find(const Key& key) const
    {
        if (buckets_.empty())
            return nullptr;
        const std::size_t mask = buckets_.size() - 1;
        std::size_t i = static_cast<std::size_t>(hash_(key)) & mask;
        while (occupied_[i]) {
            if (buckets_[i].first == key)
                return &buckets_[i].second;
            i = (i + 1) & mask;
        }
        return nullptr;
    }

    /**
     * Inserts (key, value) unless the key is already present.
     * @return the stored value (the existing one on duplicate keys).
     *         Unlike std::unordered_map, the reference is invalidated
     *         by any later insert (rehash moves the flat storage) —
     *         copy it out before inserting again.
     */
    const Value&
    insert(Key key, Value value)
    {
        if (buckets_.empty() ||
            (size_ + 1) * 8 > buckets_.size() * 7) {
            rehash(buckets_.empty() ? 16 : buckets_.size() * 2);
        }
        const std::size_t mask = buckets_.size() - 1;
        std::size_t i = static_cast<std::size_t>(hash_(key)) & mask;
        while (occupied_[i]) {
            if (buckets_[i].first == key)
                return buckets_[i].second;
            i = (i + 1) & mask;
        }
        occupied_[i] = 1;
        buckets_[i] = {std::move(key), std::move(value)};
        ++size_;
        return buckets_[i].second;
    }

  private:
    void
    rehash(std::size_t newCapacity)
    {
        std::vector<std::pair<Key, Value>> oldBuckets;
        std::vector<std::uint8_t> oldOccupied;
        oldBuckets.swap(buckets_);
        oldOccupied.swap(occupied_);
        buckets_.resize(newCapacity);
        occupied_.assign(newCapacity, 0);
        const std::size_t mask = newCapacity - 1;
        for (std::size_t b = 0; b < oldBuckets.size(); ++b) {
            if (!oldOccupied[b])
                continue;
            std::size_t i = static_cast<std::size_t>(
                                hash_(oldBuckets[b].first)) &
                            mask;
            while (occupied_[i])
                i = (i + 1) & mask;
            occupied_[i] = 1;
            buckets_[i] = std::move(oldBuckets[b]);
        }
    }

    std::vector<std::pair<Key, Value>> buckets_;
    std::vector<std::uint8_t> occupied_;
    std::size_t size_ = 0;
    Hash hash_;
};

} // namespace scar

#endif // SCAR_COMMON_FLAT_HASH_H
