/**
 * @file
 * ASCII table formatting for the experiment harness.
 *
 * Bench binaries print paper-style tables (Table IV, Table V, ...) with
 * this helper so every experiment emits uniformly aligned rows.
 */

#ifndef SCAR_COMMON_TABLE_H
#define SCAR_COMMON_TABLE_H

#include <string>
#include <vector>

namespace scar
{

/** Accumulates rows of string cells and renders an aligned table. */
class TextTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Appends one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Appends a horizontal separator row. */
    void addSeparator();

    /** Renders the table with padded columns. */
    std::string render() const;

    /** Number of data rows added so far (separators excluded). */
    std::size_t rowCount() const { return numDataRows_; }

    /** Formats a double with the given precision, for cell values. */
    static std::string num(double value, int precision = 3);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; // empty row == separator
    std::size_t numDataRows_ = 0;
};

} // namespace scar

#endif // SCAR_COMMON_TABLE_H
