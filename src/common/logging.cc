#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace scar
{

namespace
{

std::atomic<LogLevel> globalLevel{LogLevel::Warn};
std::once_flag envOnce;

const char*
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Silent: return "silent";
    }
    return "?";
}

/**
 * Applies SCAR_LOG_LEVEL exactly once, lazily: the first level query
 * or explicit set wins the race against later env reads, so explicit
 * setLogLevel() calls are never clobbered by a delayed env apply.
 */
void
ensureEnvApplied()
{
    std::call_once(envOnce, [] { applyLogLevelFromEnv(); });
}

} // namespace

void
setLogLevel(LogLevel level)
{
    ensureEnvApplied();
    globalLevel.store(level);
}

LogLevel
logLevel()
{
    ensureEnvApplied();
    return globalLevel.load();
}

bool
parseLogLevel(const std::string& text, LogLevel& out)
{
    std::string lower = text;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "debug") {
        out = LogLevel::Debug;
    } else if (lower == "info") {
        out = LogLevel::Info;
    } else if (lower == "warn") {
        out = LogLevel::Warn;
    } else if (lower == "error") {
        out = LogLevel::Error;
    } else if (lower == "silent") {
        out = LogLevel::Silent;
    } else {
        return false;
    }
    return true;
}

bool
applyLogLevelFromEnv()
{
    const char* env = std::getenv("SCAR_LOG_LEVEL");
    if (env == nullptr || env[0] == '\0')
        return false;
    LogLevel level;
    if (!parseLogLevel(env, level)) {
        // Straight to logMessage: warn() would re-enter the env
        // initialization running right now.
        detail::logMessage(LogLevel::Warn,
                           std::string("ignoring invalid "
                                       "SCAR_LOG_LEVEL=") +
                               env);
        return false;
    }
    globalLevel.store(level);
    return true;
}

namespace detail
{

void
logMessage(LogLevel level, const std::string& msg)
{
    // One composed insertion: schedule solves log from pool worker
    // threads, and separate insertions would interleave mid-line.
    std::string line;
    line.reserve(msg.size() + 16);
    line.append("[scar:").append(levelTag(level)).append("] ");
    line.append(msg).append("\n");
    std::cerr << line;
}

} // namespace detail

} // namespace scar
