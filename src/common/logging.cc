#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace scar
{

namespace
{

std::atomic<LogLevel> globalLevel{LogLevel::Warn};

const char*
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Silent: return "silent";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level);
}

LogLevel
logLevel()
{
    return globalLevel.load();
}

namespace detail
{

void
logMessage(LogLevel level, const std::string& msg)
{
    // One composed insertion: schedule solves log from pool worker
    // threads, and separate insertions would interleave mid-line.
    std::string line;
    line.reserve(msg.size() + 16);
    line.append("[scar:").append(levelTag(level)).append("] ");
    line.append(msg).append("\n");
    std::cerr << line;
}

} // namespace detail

} // namespace scar
