/**
 * @file
 * Small CSV writer used by bench binaries to dump raw series for
 * figure regeneration (Pareto points, sweep curves).
 */

#ifndef SCAR_COMMON_CSV_H
#define SCAR_COMMON_CSV_H

#include <fstream>
#include <string>
#include <vector>

namespace scar
{

/** Writes rows of string cells to a file in RFC-4180-ish CSV form. */
class CsvWriter
{
  public:
    /**
     * Opens the output file and writes the header row.
     * @param path destination file path
     * @param headers column names
     */
    CsvWriter(const std::string& path, std::vector<std::string> headers);

    /** Appends one row (quotes cells containing separators). */
    void addRow(const std::vector<std::string>& cells);

    /** True if the output stream is healthy. */
    bool good() const { return out_.good(); }

  private:
    void writeRow(const std::vector<std::string>& cells);

    std::ofstream out_;
    std::size_t arity_;
};

} // namespace scar

#endif // SCAR_COMMON_CSV_H
