/**
 * @file
 * Deterministic random number generation for the evolutionary search.
 *
 * All stochastic components take an explicit Rng so experiments are
 * reproducible from a seed recorded in the experiment logs.
 */

#ifndef SCAR_COMMON_RNG_H
#define SCAR_COMMON_RNG_H

#include <cstdint>
#include <random>

#include "common/error.h"

namespace scar
{

/**
 * Derives an independent stream seed from a base seed and a stream
 * index (splitmix64 finalizer). The parallel search uses this to give
 * every window, segmentation pass, and combo its own deterministic
 * RNG stream: results no longer depend on how much entropy a
 * previously run task consumed, so loops can fan out across threads
 * and still reproduce the serial schedule bit for bit.
 */
inline std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15uLL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9uLL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBuLL;
    return z ^ (z >> 31);
}

/** Seeded pseudo-random source wrapping std::mt19937_64. */
class Rng
{
  public:
    /** Constructs with an explicit seed (default fixed for repeatability). */
    explicit Rng(std::uint64_t seed = 0xC0FFEEuLL) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int
    uniformInt(int lo, int hi)
    {
        SCAR_ASSERT(lo <= hi, "uniformInt bounds inverted: ", lo, ">", hi);
        std::uniform_int_distribution<int> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform size_t index in [0, n). Requires n > 0. */
    std::size_t
    index(std::size_t n)
    {
        SCAR_ASSERT(n > 0, "index() needs non-empty range");
        std::uniform_int_distribution<std::size_t> dist(0, n - 1);
        return dist(engine_);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        return dist(engine_);
    }

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /** Underlying engine, for std::shuffle. */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace scar

#endif // SCAR_COMMON_RNG_H
