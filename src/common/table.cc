#include "common/table.h"

#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace scar
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SCAR_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    SCAR_REQUIRE(cells.size() == headers_.size(),
                 "row arity ", cells.size(), " != header arity ",
                 headers_.size());
    rows_.push_back(std::move(cells));
    ++numDataRows_;
}

void
TextTable::addSeparator()
{
    rows_.emplace_back(); // empty marker row
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto renderLine = [&](const std::vector<std::string>& cells) {
        std::ostringstream oss;
        oss << "|";
        for (std::size_t i = 0; i < headers_.size(); ++i) {
            const std::string& cell = i < cells.size() ? cells[i] : "";
            oss << " " << cell
                << std::string(widths[i] - cell.size(), ' ') << " |";
        }
        oss << "\n";
        return oss.str();
    };

    auto separator = [&]() {
        std::ostringstream oss;
        oss << "+";
        for (std::size_t w : widths)
            oss << std::string(w + 2, '-') << "+";
        oss << "\n";
        return oss.str();
    };

    std::ostringstream out;
    out << separator() << renderLine(headers_) << separator();
    for (const auto& row : rows_) {
        if (row.empty()) {
            out << separator();
        } else {
            out << renderLine(row);
        }
    }
    out << separator();
    return out.str();
}

} // namespace scar
