#include "common/csv.h"

#include "common/error.h"

namespace scar
{

namespace
{

std::string
escapeCell(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> headers)
    : out_(path), arity_(headers.size())
{
    SCAR_REQUIRE(arity_ > 0, "CSV needs at least one column");
    SCAR_REQUIRE(out_.good(), "cannot open CSV output: ", path);
    writeRow(headers);
}

void
CsvWriter::addRow(const std::vector<std::string>& cells)
{
    SCAR_REQUIRE(cells.size() == arity_,
                 "CSV row arity ", cells.size(), " != ", arity_);
    writeRow(cells);
}

void
CsvWriter::writeRow(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out_ << ",";
        out_ << escapeCell(cells[i]);
    }
    out_ << "\n";
}

} // namespace scar
