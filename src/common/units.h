/**
 * @file
 * Unit conventions used across the cost models.
 *
 * Internal conventions (normative for every module):
 *  - time:   cycles (double, to allow fractional analytical estimates)
 *            at the package clock (default 500 MHz, paper Table IV note);
 *  - data:   bytes (int8 operands as in Simba, 1 byte/element);
 *  - energy: nanojoules.
 * Helpers below convert to the reporting units used by the paper
 * (seconds, joules, joule-seconds).
 */

#ifndef SCAR_COMMON_UNITS_H
#define SCAR_COMMON_UNITS_H

namespace scar
{

/** Package clock frequency used to convert cycles to seconds. */
constexpr double kClockHz = 500.0e6;

/** Bytes per tensor element (int8 operands, as in Simba). */
constexpr int kBytesPerElement = 1;

/** Converts a cycle count at kClockHz to seconds. */
constexpr double
cyclesToSeconds(double cycles)
{
    return cycles / kClockHz;
}

/** Converts seconds to cycles at kClockHz. */
constexpr double
secondsToCycles(double seconds)
{
    return seconds * kClockHz;
}

/** Converts nanoseconds to cycles at kClockHz. */
constexpr double
nsToCycles(double ns)
{
    return ns * 1.0e-9 * kClockHz;
}

/** Converts nanojoules to joules. */
constexpr double
njToJoules(double nj)
{
    return nj * 1.0e-9;
}

/** Converts picojoules to nanojoules. */
constexpr double
pjToNj(double pj)
{
    return pj * 1.0e-3;
}

/** Converts gigabytes-per-second to bytes-per-cycle at kClockHz. */
constexpr double
gbpsToBytesPerCycle(double gbps)
{
    return gbps * 1.0e9 / kClockHz;
}

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;

} // namespace scar

#endif // SCAR_COMMON_UNITS_H
