/**
 * @file
 * Error-reporting helpers, modeled after gem5's fatal()/panic() split:
 * fatal for user-caused conditions (bad configuration), panic for
 * internal invariant violations (simulator bugs).
 */

#ifndef SCAR_COMMON_ERROR_H
#define SCAR_COMMON_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace scar
{

/** Thrown when user-provided configuration or input is invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Thrown when an internal invariant is violated (a SCAR bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg)
        : std::logic_error("panic: " + msg)
    {}
};

namespace detail
{

/** Concatenates any streamable arguments into one message string. */
template <typename... Args>
std::string
concatMessage(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/**
 * Raises a FatalError. Use for conditions caused by the caller/user,
 * e.g. malformed scenarios or inconsistent MCM configurations.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    throw FatalError(detail::concatMessage(std::forward<Args>(args)...));
}

/**
 * Raises a PanicError. Use for conditions that indicate a bug in SCAR
 * itself, regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    throw PanicError(detail::concatMessage(std::forward<Args>(args)...));
}

/** Checks a user-input condition; raises FatalError with context if false. */
#define SCAR_REQUIRE(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::scar::fatal("requirement '", #cond, "' failed at ",           \
                          __FILE__, ":", __LINE__, ": ", __VA_ARGS__);      \
        }                                                                   \
    } while (0)

/** Checks an internal invariant; raises PanicError with context if false. */
#define SCAR_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::scar::panic("assertion '", #cond, "' failed at ",             \
                          __FILE__, ":", __LINE__, ": ", __VA_ARGS__);      \
        }                                                                   \
    } while (0)

} // namespace scar

#endif // SCAR_COMMON_ERROR_H
