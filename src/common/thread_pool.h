/**
 * @file
 * Fixed-size worker pool: the parallel execution substrate shared by
 * the search engines (combo fan-out, EA population evaluation) and
 * the serving runtime (background schedule solves).
 *
 * Concurrency model:
 *  - A pool of `concurrency` is the caller thread plus concurrency-1
 *    workers, so ThreadPool(1) has no workers and degrades to fully
 *    serial inline execution — the `-DSCAR_THREADS=1` CI job exercises
 *    exactly this path.
 *  - parallelFor(n, body) runs body(0..n-1) with the caller claiming
 *    indices alongside the workers (caller-help). Because the caller
 *    always participates and tasks claim indices from a shared atomic
 *    counter, nested parallelFor calls from inside pool tasks cannot
 *    deadlock: worst case the nested loop runs entirely on the
 *    already-running thread.
 *  - submit(fn) enqueues a future-backed task; with no workers it runs
 *    fn inline at submit time, which reduces the async schedule cache
 *    to the blocking PR 1 behavior under SCAR_THREADS=1.
 *
 * Determinism contract: the pool provides raw concurrency only. All
 * SCAR search results are bit-identical at any pool size because the
 * parallelized loops (a) derive per-task RNG streams from
 * mixSeed(seed, index) rather than sharing one generator, and (b)
 * merge per-task results in fixed index order before any ranking.
 */

#ifndef SCAR_COMMON_THREAD_POOL_H
#define SCAR_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace scar
{

/** Fixed-size worker pool with parallelFor and task futures. */
class ThreadPool
{
  public:
    /**
     * @param concurrency total parallelism including the caller
     *        thread (>= 1); 0 picks defaultConcurrency()
     */
    explicit ThreadPool(int concurrency = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total parallelism: worker threads + the calling thread. */
    int concurrency() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /**
     * The process-wide default pool, sized by the SCAR_THREADS
     * environment variable, else the SCAR_DEFAULT_THREADS build
     * option, else std::thread::hardware_concurrency().
     */
    static ThreadPool& global();

    /** The concurrency global() is (or would be) created with. */
    static int defaultConcurrency();

    /**
     * Runs body(i) for every i in [0, n) and blocks until all
     * complete. The caller participates, so the call never deadlocks
     * even when issued from inside a pool task. The first exception
     * thrown by any body is rethrown after the loop drains.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& body);

    /**
     * Enqueues fn on the pool and returns its future. With zero
     * workers (concurrency 1) fn runs inline before returning.
     */
    template <typename F>
    auto
    submit(F&& fn) -> std::future<decltype(fn())>
    {
        using R = decltype(fn());
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return future;
        }
        enqueue([task] { (*task)(); });
        return future;
    }

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * Runs body(0..n-1) on the pool, or inline when pool is null — the
 * shared dispatch idiom of every optionally-parallel loop (combo
 * fan-out, segmentation refinement, EA fitness batches).
 */
inline void
forEachIndex(ThreadPool* pool, std::size_t n,
             const std::function<void(std::size_t)>& body)
{
    if (pool != nullptr) {
        pool->parallelFor(n, body);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        body(i);
}

} // namespace scar

#endif // SCAR_COMMON_THREAD_POOL_H
