/**
 * @file
 * Intra-chiplet energy constants.
 *
 * Package-level energies (NoP, DRAM) come from the paper's Table II
 * and live in PackageParams. The per-MAC and per-L2-byte energies are
 * not given by the paper; the values below are 28 nm int8 estimates in
 * line with the accelerator literature (MAC ~0.8 pJ including local
 * register traffic, large SRAM ~6 pJ/byte). EXPERIMENTS.md reports the
 * resulting absolute magnitudes alongside the paper's.
 */

#ifndef SCAR_COST_ENERGY_TABLE_H
#define SCAR_COST_ENERGY_TABLE_H

namespace scar
{

/** Energy-per-event table used by the intra-chiplet cost model. */
struct EnergyParams
{
    double macPj = 0.8;       ///< one MAC incl. PE-local register traffic
    double l2PjPerByte = 6.0; ///< one byte moved to/from the 10 MB L2
};

} // namespace scar

#endif // SCAR_COST_ENERGY_TABLE_H
