/**
 * @file
 * Window evaluator: the heterogeneous-MCM cost model of Section III-E.
 *
 * Input: a placement of each model's window layers as contiguous layer
 * segments on distinct chiplets. Output: window latency/energy.
 *
 * Latency composition per model m with segments sg_1..sg_n, batch b,
 * and the chiplet-level mini-batch b' derived by the CostDb:
 *
 *   Lat(SG_m) = sum_k Lat(sg_k | b') + (b/b' - 1) * max_k Lat(sg_k | b')
 *
 * where Lat(sg | b') = Lat_ip_com + sum_l Lat_comp(l) + Lat_op_com.
 * Communication placement: the first segment loads its input from
 * DRAM (or over the NoP from the model's entry chiplet when the model
 * continues from a previous window), consecutive segments hand off
 * over the NoP (consumer side), and the segment holding the model's
 * final layer writes back to DRAM; weights always stream from DRAM —
 * once per window when the segment's weights fit in L2 alongside its
 * activation working set, otherwise once per sample.
 *
 * The NoP contention term delta supports two fidelities
 * (EvaluatorOptions::fidelity, see cost/comm_model.h):
 *
 *  - CommFidelity::Static (default): count flows per routed link
 *    within the window and inflate each activation flow's
 *    transmission time by the maximum number of flows sharing any of
 *    its links (the paper's model);
 *  - CommFidelity::Phased: split the window's flows into phases
 *    (weight-load / activation-exchange / off-chip spill), accumulate
 *    per-phase per-link byte loads into a PhasedLinkTable, and
 *    inflate every flow — including DRAM-side weight and spill
 *    traffic — by the M/D/1 queueing factor of its route's bottleneck
 *    link at the window's contention-free latency, memoized per
 *    (src, dst, phase).
 *
 * A package-level DRAM roofline bounds the window latency from below
 * by total off-chip bytes / off-chip bandwidth.
 */

#ifndef SCAR_COST_WINDOW_EVALUATOR_H
#define SCAR_COST_WINDOW_EVALUATOR_H

#include <vector>

#include "cost/comm_model.h"
#include "cost/cost_db.h"
#include "workload/model.h"

namespace scar
{

/** One contiguous run of a model's layers mapped to one chiplet. */
struct PlacedSegment
{
    LayerRange range;
    int chiplet = -1;
};

/** All of one model's segments within a window, in execution order. */
struct ModelPlacement
{
    int modelIdx = -1;
    std::vector<PlacedSegment> segments;
};

/** A complete window placement across models. */
struct WindowPlacement
{
    std::vector<ModelPlacement> models;

    /**
     * Where each model's live activation resides when the window
     * starts: entryChiplet[modelIdx] is a chiplet id, or -1 when the
     * input must come from DRAM (first window / fresh input). An empty
     * vector means all models load from DRAM. Mirrors the paper's
     * observation that chiplet-to-chiplet passing avoids off-chip
     * read/writes at segment boundaries.
     */
    std::vector<int> entryChiplet;
};

/** Cost of one placed segment. */
struct SegmentCost
{
    double firstSampleCycles = 0.0;  ///< incl. one-time weight load
    double steadySampleCycles = 0.0; ///< recurring per-sample cycles
    double energyNj = 0.0;           ///< total over the batch
    bool weightsResident = true;     ///< weights fit in L2 for the window
};

/** Cost of one model inside a window. */
struct ModelWindowCost
{
    double latencyCycles = 0.0;
    double energyNj = 0.0;
    std::vector<SegmentCost> segments;
};

/** Cost of a whole window. */
struct WindowCost
{
    double latencyCycles = 0.0;     ///< max over models, DRAM-roofline'd
    double energyNj = 0.0;          ///< sum over models
    double dramBytes = 0.0;         ///< total off-chip traffic
    double dramBoundCycles = 0.0;   ///< the roofline component
    int maxLinkSharers = 1;         ///< contention diagnostic
    /** Largest M/D/1 factor applied (1.0 unless fidelity is Phased). */
    double maxQueueFactor = 1.0;
    std::vector<ModelWindowCost> perModel;
};

/**
 * Cost of a contention-free single-model window, as returned by the
 * solo fast path. Carries exactly the two scalars `soloCost` consumes;
 * both are bit-identical to the corresponding WindowCost fields.
 */
struct SoloWindowCost
{
    double latencyCycles = 0.0;
    double energyNj = 0.0;
};

/** Evaluation knobs. */
struct EvaluatorOptions
{
    bool contention = true;   ///< model the NoP traffic-conflict delta
    bool dramRoofline = true; ///< apply the off-chip bandwidth bound
    /**
     * Contention fidelity (inert when contention is off). Static is
     * the paper's max-sharers count and keeps every golden
     * byte-identical by construction; Phased is the opt-in
     * time-phased queueing estimate (cost/comm_model.h).
     */
    CommFidelity fidelity = CommFidelity::Static;
};

/** Evaluates window placements on one (scenario, MCM) pair. */
class WindowEvaluator
{
  public:
    WindowEvaluator(const CostDb& db,
                    EvaluatorOptions options = EvaluatorOptions{});

    /**
     * Evaluates one window placement.
     * Requires: segment ranges valid; every chiplet hosts at most one
     * segment within the window (exclusive occupancy, Section IV-D).
     */
    WindowCost evaluate(const WindowPlacement& placement) const;

    /**
     * Fast path for the beam search's solo scoring: a single model,
     * contention and DRAM roofline off (the `soloOptions` evaluator
     * configuration). Skips flow enumeration, the contention tables,
     * and the final re-evaluation pass — the mini-batch selection loop
     * already prices every candidate, so the winner's latency/energy
     * are returned directly. Both scalars are bit-identical to the
     * `evaluate()` result on the same placement because candidate
     * pricing goes through the same `evalModel` member in the same
     * floating-point operation order (pinned in tests/test_cost.cc).
     * Requires: exactly one placed model; contention and dramRoofline
     * disabled in the evaluator options.
     */
    SoloWindowCost evaluateSolo(const WindowPlacement& placement) const;

    /** The underlying per-transfer communication model. */
    const CommModel& comm() const { return comm_; }

    /** The cost database in use. */
    const CostDb& db() const { return db_; }

  private:
    struct Flow
    {
        int src = -1;
        int dst = -1;
        double bytes = 0.0;
        bool offchip = false;
        CommPhase phase = CommPhase::Activation;
    };

    void validate(const WindowPlacement& placement) const;
    void validateSolo(const WindowPlacement& placement) const;

    /** Entry chiplet of a model, -1 when its input comes from DRAM. */
    int entryOf(const WindowPlacement& placement, int modelIdx) const;
    double segmentWeights(int modelIdx, const PlacedSegment& seg) const;
    bool segmentResident(int modelIdx, const PlacedSegment& seg,
                         int bPrime) const;

    /**
     * Prices one model's placement at mini-batch candidate `bIdx`,
     * inflating every transfer's bytes by the supplied contention
     * factor `factor(src, dst, phase)`. The static factor returns 1
     * for non-activation phases, so DRAM-side sites multiply by 1 —
     * bit-identical to the pre-phase code that applied no factor
     * there. The factor is a templated callable, so the inner loop
     * carries no std::function allocation or indirect call. Shared
     * verbatim by evaluate() and evaluateSolo() — the solo fast
     * path's bit-exactness contract rests on both going through this
     * one function.
     */
    template <typename Factor>
    ModelWindowCost evalModel(const WindowPlacement& placement,
                              const ModelPlacement& mp, int bIdx,
                              Factor&& factor) const;

    const CostDb& db_;
    CommModel comm_;
    EvaluatorOptions options_;
};

} // namespace scar

#endif // SCAR_COST_WINDOW_EVALUATOR_H
